module profileme

go 1.22
