// Quickstart: assemble a small program, run it on the out-of-order
// simulator with ProfileMe instruction sampling, and print the profile —
// the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"profileme/internal/asm"
	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/profile"
	"profileme/internal/sim"
)

// A toy kernel: sum an array, with an unpredictable branch on element
// parity and a multiply on the odd path.
const src = `
.proc main
    lda  r1, 20000(zero)     ; iterations
    lda  r16, table(zero)
loop:
    ld   r2, 0(r16)          ; load next element
    and  r3, r2, #1
    beq  r3, even            ; data-dependent parity branch
    mul  r4, r4, r2          ; odd: long-latency multiply
    br   next
even:
    add  r5, r5, r2
next:
    add  r16, r16, #8
    and  r16, r16, #0x21ff8  ; wrap over a 1024-element ring
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp
.data
.org 0x20000
table:
`

func main() {
	// 1. Assemble the program and give it data.
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 1024; i++ {
		// Mix the index so element parities are unpredictable (a plain
		// odd multiplier would alternate and the predictor would learn it).
		prog.Data[0x20000+i*8] = (i * 0x9e3779b97f4a7c15) >> 31
	}

	// 2. Configure the machine (4-wide out-of-order, 21264-flavoured) and
	// the ProfileMe unit: sample one instruction every ~256 fetched.
	ccfg := cpu.DefaultConfig()
	unit := core.MustNewUnit(core.Config{
		MeanInterval: 256,
		Window:       80,
		BufferDepth:  8,
		CountMode:    core.CountInstructions,
		IntervalMode: core.IntervalGeometric,
		Seed:         1,
	})

	// 3. The profiling software: a per-PC aggregation database whose
	// handler runs on each sampling interrupt.
	db := profile.NewDB(256, 80, ccfg.SustainedIssueWidth)

	// 4. Wire everything together and run.
	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	pipe.AttachProfileMe(unit, db.Handler())
	res, err := pipe.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report.
	fmt.Printf("retired %d instructions in %d cycles (CPI %.2f), %d mispredicts\n",
		res.Retired, res.Cycles, res.CPI(), res.Mispredicts)
	fmt.Printf("%d profiling interrupts delivered %d samples\n\n",
		res.Interrupts, db.Samples())
	fmt.Print(db.Report(prog, 12))

	// Per-instruction event rates single out the trouble spots.
	if pc, ok := prog.Label("loop"); ok {
		beqPC := pc + 2*4 // the beq
		if acc := db.Get(beqPC); acc != nil {
			fmt.Printf("\nthe parity branch at %s mispredicts on %.0f%% of samples\n",
				prog.SymbolFor(beqPC),
				100*profile.RateEstimate(acc.EventCount(core.EvMispredict), acc.Samples))
		}
	}
}
