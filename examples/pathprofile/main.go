// Pathprofile: capture global branch history in ProfileMe samples and
// reconstruct the hot execution paths through a program's control-flow
// graph (§5.3) — the feedback a trace-scheduling compiler wants.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/pathprof"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

func main() {
	// The gcc-flavoured kernel: branchy recursive expression evaluation.
	prog := workload.GCC(300_000)

	// Sample with ProfileMe; each record carries the branch history
	// register captured at fetch.
	unit := core.MustNewUnit(core.Config{
		MeanInterval: 199,
		Window:       80,
		BufferDepth:  16,
		CountMode:    core.CountInstructions,
		IntervalMode: core.IntervalGeometric,
		Seed:         2,
	})
	var samples []core.Sample
	ccfg := cpu.DefaultConfig()
	ccfg.InterruptCost = 0
	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	pipe.AttachProfileMe(unit, func(ss []core.Sample) { samples = append(samples, ss...) })
	if _, err := pipe.Run(0); err != nil {
		log.Fatal(err)
	}

	// A second run with dense paired sampling feeds the §5.2 edge
	// profile: pairs at fetch distance 1 observe CFG edges directly.
	edges := profile.NewEdgeProfile(37, 30)
	unit2 := core.MustNewUnit(core.Config{
		Paired: true, MeanInterval: 37, Window: 30, BufferDepth: 32,
		CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 8,
	})
	src2 := sim.NewMachineSource(sim.New(prog), 0)
	pipe2, err := cpu.New(prog, src2, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	pipe2.AttachProfileMe(unit2, edges.Handler())
	if _, err := pipe2.Run(0); err != nil {
		log.Fatal(err)
	}

	// Reconstruct a path for every retired sample, intraprocedurally,
	// using 8 bits of history — what a 1997 predictor kept.
	g := pathprof.NewCFG(prog)
	rc := pathprof.NewReconstructor(g, pathprof.DefaultLimits())

	const histLen = 8
	unique, ambiguous, dead := 0, 0, 0
	pathCount := map[string]int{}
	for _, s := range samples {
		r := s.First
		if !r.Retired() {
			continue
		}
		paths, truncated := rc.Consistent(r.PC, r.History, histLen, pathprof.Intraproc, nil)
		switch {
		case truncated || len(paths) > 1:
			ambiguous++
		case len(paths) == 0:
			dead++
		default:
			unique++
			pathCount[renderPath(prog, paths[0])]++
		}
	}

	fmt.Printf("%d samples: %d unique paths, %d ambiguous, %d dead ends (history = %d bits)\n\n",
		len(samples), unique, ambiguous, dead, histLen)

	type hot struct {
		path  string
		count int
	}
	var hots []hot
	for p, c := range pathCount {
		hots = append(hots, hot{p, c})
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].count != hots[j].count {
			return hots[i].count > hots[j].count
		}
		return hots[i].path < hots[j].path
	})
	fmt.Println("hottest uniquely-reconstructed path segments:")
	for i, h := range hots {
		if i >= 8 {
			break
		}
		fmt.Printf("%4dx  %s\n", h.count, h.path)
	}

	fmt.Println("\ncontrol-flow edge frequencies from paired samples (§5.2):")
	fmt.Print(edges.Report(prog, 8))
}

// renderPath compacts a backward path into "start <- ... <- end" form with
// symbolized block boundaries (consecutive PCs elided).
func renderPath(prog *isa.Program, p pathprof.Path) string {
	var parts []string
	for i := 0; i < len(p); i++ {
		// Keep the first PC of each straight-line run (walking backward).
		if i == 0 || p[i] != p[i-1]-isa.InstBytes {
			parts = append(parts, prog.SymbolFor(p[i]))
		}
	}
	return strings.Join(parts, " <- ")
}
