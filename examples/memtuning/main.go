// Memtuning: use the effective addresses that ProfileMe captures for
// memory operations to find cache-set conflicts and hot miss pages — the
// §7 "cache and TLB hit rate enhancement" feedback (the paper's CML-buffer
// equivalent), with no extra hardware beyond the Profile Registers.
package main

import (
	"fmt"
	"log"
	"sort"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

func main() {
	// The vortex-flavoured record store: a 256 KB hashed table whose
	// probes conflict in the 64 KB data cache.
	prog := workload.Vortex(400_000)

	ccfg := cpu.DefaultConfig()
	ccfg.InterruptCost = 0
	unit := core.MustNewUnit(core.Config{
		MeanInterval: 128,
		Window:       80,
		BufferDepth:  32,
		CountMode:    core.CountInstructions,
		IntervalMode: core.IntervalGeometric,
		Seed:         4,
	})

	// The handler keeps only what this analysis needs: miss addresses.
	type missInfo struct {
		addr uint64
		pc   uint64
		l2   bool
	}
	var misses []missInfo
	var memSamples int
	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	pipe.AttachProfileMe(unit, func(ss []core.Sample) {
		for _, s := range ss {
			r := s.First
			if !r.AddrValid {
				continue
			}
			memSamples++
			if r.Events.Has(core.EvDCacheMiss) {
				misses = append(misses, missInfo{r.Addr, r.PC, r.Events.Has(core.EvL2Miss)})
			}
		}
	})
	res, err := pipe.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: %d instructions, CPI %.2f\n", res.Retired, res.CPI())
	fmt.Printf("%d memory-op samples, %d with D-cache misses (%.1f%%)\n\n",
		memSamples, len(misses), 100*float64(len(misses))/float64(max(1, memSamples)))

	// Group sampled miss addresses by D-cache set: a few overloaded sets
	// mean conflict misses that page recoloring could spread out.
	dcache := pipe.Hierarchy().DCache()
	setCount := map[uint64]int{}
	pageCount := map[uint64]int{}
	for _, m := range misses {
		setCount[dcache.SetIndex(m.addr)]++
		pageCount[m.addr>>13]++ // 8 KB pages
	}

	fmt.Printf("distinct D-cache sets with sampled misses: %d of %d\n",
		len(setCount), dcache.Config().SizeBytes/(dcache.Config().LineBytes*dcache.Config().Assoc))
	printTop("hottest conflict sets (set -> sampled misses)", setCount, 8, func(k uint64) string {
		return fmt.Sprintf("set %4d", k)
	})
	printTop("hottest miss pages (8 KB pages -> sampled misses)", pageCount, 8, func(k uint64) string {
		return fmt.Sprintf("page %#x", k<<13)
	})

	// Per-instruction attribution: which loads to prefetch or reschedule.
	pcMiss := map[uint64]int{}
	for _, m := range misses {
		pcMiss[m.pc]++
	}
	printTop("miss-heavy instructions (candidates for prefetching)", pcMiss, 5, func(k uint64) string {
		in, _ := prog.At(k)
		return fmt.Sprintf("%-14s %s", prog.SymbolFor(k), in)
	})
}

func printTop(title string, counts map[uint64]int, n int, label func(uint64) string) {
	type kv struct {
		k uint64
		v int
	}
	var all []kv
	for k, v := range counts {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	fmt.Printf("\n%s:\n", title)
	for i, e := range all {
		if i >= n {
			break
		}
		fmt.Printf("  %s  %d\n", label(e.k), e.v)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
