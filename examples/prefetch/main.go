// Prefetch: close the paper's §7 feedback loop — profile a program with
// ProfileMe, detect a miss-heavy strided load from its sampled effective
// addresses and memory latencies, insert prefetch instructions ahead of
// it, and measure the speedup of the rewritten program.
package main

import (
	"fmt"
	"log"

	"profileme/internal/asm"
	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/pgo"
	"profileme/internal/profile"
	"profileme/internal/sim"
)

// The workload walks an index array: each 64-byte cell stores the offset
// of the next, so the loaded value feeds the next address and every cache
// miss stalls the loop — exactly the correlation-profiling case of Luk &
// Mowry that the paper cites.
func buildKernel(iters int) *isa.Program {
	b := asm.NewBuilder()
	b.Org(0x200000).DataLabel("arr")
	for i := 0; i < 8192; i++ {
		b.Word(64)
		b.Space(56)
	}
	b.Proc("main")
	b.LdI(1, int64(iters))
	b.LdaLabel(16, "arr")
	b.Label("loop")
	b.Ld(2, 16, 0)
	b.Add(16, 16, 2)
	b.OpI(isa.OpAnd, 16, 16, 0x27ffc0)
	b.OpI(isa.OpOr, 16, 16, 0x200000)
	b.Add(3, 3, 2)
	b.SubI(1, 1, 1)
	b.Bne(1, "loop")
	b.Ret().EndProc()
	return b.MustBuild()
}

func run(p *isa.Program, db *profile.DB) cpu.Result {
	ccfg := cpu.DefaultConfig()
	ccfg.InterruptCost = 0
	src := sim.NewMachineSource(sim.New(p), 0)
	pipe, err := cpu.New(p, src, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	if db != nil {
		unit := core.MustNewUnit(core.Config{
			MeanInterval: 40, Window: 80, BufferDepth: 32,
			CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 6,
		})
		pipe.AttachProfileMe(unit, db.Handler())
	}
	res, err := pipe.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	prog := buildKernel(20000)

	// 1. Profile, retaining sampled effective addresses per PC.
	db := profile.NewDB(40, 80, 4)
	db.RetainAddrs = 16
	base := run(prog, db)
	fmt.Printf("baseline: %d cycles (CPI %.2f)\n", base.Cycles, base.CPI())

	// 2. Analyze: miss-heavy loads with detectable strides.
	cands := pgo.Analyze(db, prog, pgo.DefaultAnalyzeOptions())
	if len(cands) == 0 {
		log.Fatal("no prefetch candidates found")
	}
	fmt.Println("\nprefetch candidates (from sampled miss rates, latencies, addresses):")
	for _, c := range cands {
		fmt.Printf("  %-12s miss %5.1f%%  mem-lat %6.1f cycles  stride %d\n",
			prog.SymbolFor(c.PC), 100*c.MissRate, c.MeanLat, c.Stride)
	}

	// 3. Rewrite: prefetch 8 strides ahead of each strided candidate.
	re, err := pgo.InsertPrefetches(prog, pgo.PlanPrefetches(cands, 8))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Verify equivalence and measure.
	m1, m2 := sim.New(prog), sim.New(re)
	if _, err := m1.Run(0, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := m2.Run(0, nil); err != nil {
		log.Fatal(err)
	}
	if m1.Reg(3) != m2.Reg(3) {
		log.Fatal("rewritten program computes a different result")
	}
	opt := run(re, nil)
	fmt.Printf("\noptimized: %d cycles (CPI %.2f)\n", opt.Cycles, opt.CPI())
	fmt.Printf("speedup: %.2fx — same architectural result, verified\n",
		float64(base.Cycles)/float64(opt.Cycles))
}
