// Bottleneck: use paired sampling to find where issue slots actually go
// to waste — and show that ranking instructions by latency alone names
// the wrong loop, the paper's core argument (§6, Figure 7).
package main

import (
	"fmt"
	"log"
	"sort"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

// row is one static instruction's estimated totals.
type row struct {
	pc             uint64
	loop           string
	latency        float64 // estimated total in-progress latency
	wasted, useful float64
}

func main() {
	// The paper's three-loop program: a serial multiply chain (loop A), a
	// cache-resident pointer chase (loop B), and a high-ILP loop (loop C)
	// that runs the most iterations.
	prog := workload.Figure7Program(8000)
	loops := workload.Figure7Loops(prog)

	ccfg := cpu.DefaultConfig()
	ccfg.InterruptCost = 0
	unit := core.MustNewUnit(core.Config{
		Paired:       true,
		MeanInterval: 40,
		Window:       80,
		BufferDepth:  64,
		CountMode:    core.CountInstructions,
		IntervalMode: core.IntervalGeometric,
		Seed:         3,
	})
	db := profile.NewDB(40, 80, ccfg.SustainedIssueWidth)

	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	pipe.AttachProfileMe(unit, db.Handler())
	res, err := pipe.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	if db.Samples() > 0 {
		db.S = float64(res.FetchedOnPath) / float64(db.Samples()) // realized interval
	}

	var rows []row
	for _, pc := range db.PCs() {
		acc := db.Get(pc)
		if acc == nil || acc.Samples < 20 {
			continue
		}
		loop := ""
		for name, rng := range loops {
			if pc >= rng[0] && pc < rng[1] {
				loop = name
			}
		}
		if loop == "" {
			continue
		}
		wasted, total, useful, ok := db.WastedSlots(pc)
		if !ok {
			continue
		}
		rows = append(rows, row{pc, loop, total / float64(ccfg.SustainedIssueWidth), wasted, useful})
	}

	byLatency := append([]row(nil), rows...)
	sort.Slice(byLatency, func(i, j int) bool { return byLatency[i].latency > byLatency[j].latency })
	byWasted := append([]row(nil), rows...)
	sort.Slice(byWasted, func(i, j int) bool { return byWasted[i].wasted > byWasted[j].wasted })

	fmt.Printf("run: %d instructions, %d cycles, %d paired samples\n\n",
		res.Retired, res.Cycles, db.Pairs())

	fmt.Println("top 5 by TOTAL LATENCY (the naive bottleneck ranking):")
	printRows(prog, byLatency[:5])
	fmt.Println("\ntop 5 by WASTED ISSUE SLOTS (the paired-sampling ranking):")
	printRows(prog, byWasted[:5])

	fmt.Printf("\nlatency points at %s; wasted slots point at %s —\n",
		byLatency[0].loop, byWasted[0].loop)
	fmt.Println("the high-ILP loop accumulates latency but keeps the machine busy;")
	fmt.Println("the serial loop is where issue slots actually die.")
}

func printRows(prog interface{ SymbolFor(uint64) string }, rows []row) {
	fmt.Printf("  %-12s %-12s %14s %14s %14s\n", "loop", "pc", "est.latency", "est.wasted", "est.useful")
	for _, r := range rows {
		fmt.Printf("  %-12s %-12s %14.0f %14.0f %14.0f\n",
			r.loop, prog.SymbolFor(r.pc), r.latency, r.wasted, r.useful)
	}
}
