// Package profileme is a from-scratch Go reproduction of "ProfileMe:
// Hardware Support for Instruction-Level Profiling on Out-of-Order
// Processors" (Dean, Hicks, Waldspurger, Weihl, Chrysos; MICRO-30, 1997).
//
// The library lives under internal/ as one package per subsystem:
//
//   - internal/core — the ProfileMe hardware itself (§4): random
//     instruction selection, the ProfileMe tag, Profile Registers, paired
//     sampling and interrupt buffering.
//   - internal/cpu — the out-of-order Alpha-21264-flavoured timing
//     pipeline the hardware plugs into; internal/mem, internal/bpred,
//     internal/isa, internal/asm and internal/sim are its substrates.
//   - internal/profile — the profiling software (§5): sample database,
//     frequency estimators, paired-sample concurrency analysis.
//   - internal/pathprof — path reconstruction from branch history (§5.3).
//   - internal/counters — the baseline event-counter hardware (§2.2).
//   - internal/workload — the synthetic SPECint95-flavoured benchmark
//     suite and the per-figure microbenchmarks.
//   - internal/experiments — one harness per table/figure of the paper.
//
// The executables are cmd/pmsim (run a workload under the profiler) and
// cmd/figures (regenerate every table and figure). Runnable walkthroughs
// live in examples/. The benchmarks in bench_test.go regenerate each
// experiment under `go test -bench`.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package profileme
