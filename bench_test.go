// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per experiment), the DESIGN.md §5 ablations, and raw
// simulator-performance measurements. Custom metrics carry the
// experiment's headline numbers into the benchmark output so that
// `go test -bench . -benchmem` reproduces the evaluation end to end.
package profileme_test

import (
	"testing"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/experiments"
	"profileme/internal/pathprof"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

// ------------------------------------------------------- paper figures --

// BenchmarkFigure2EventCounterSkew regenerates Figure 2: event-counter
// interrupt PC attribution on in-order vs out-of-order pipelines.
// Metrics: 90%-spread of delivered PCs (offsets) for each machine.
func BenchmarkFigure2EventCounterSkew(b *testing.B) {
	cfg := experiments.DefaultFigure2Config()
	cfg.Iters, cfg.Nops = 1500, 120
	var res *experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.InOrder.Spread(0.9)), "inorder-spread")
	b.ReportMetric(float64(res.OutOfOrder.Spread(0.9)), "ooo-spread")
}

// BenchmarkFigure3Convergence regenerates Figure 3: convergence of sampled
// per-PC estimates. Metrics: fraction of points inside the 1±1/sqrt(x)
// envelope (expected ~2/3) and median relative error at the finest
// interval.
func BenchmarkFigure3Convergence(b *testing.B) {
	cfg := experiments.DefaultFigure3Config()
	cfg.Benchmarks = []string{"compress", "ijpeg", "li"}
	cfg.Scale = 300_000
	cfg.Intervals = []float64{50, 500}
	var res *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	var pooled []experiments.Figure3Point
	for _, s := range res.Series {
		if s.Interval == 50 {
			pooled = append(pooled, s.Retire...)
		}
	}
	b.ReportMetric(experiments.EnvelopeFraction(pooled), "envelope-frac")
	b.ReportMetric(experiments.MedianAbsError(pooled), "median-err")
}

// BenchmarkFigure6PathProfiles regenerates Figure 6: path reconstruction
// success rates. Metrics: pooled intraprocedural success at 8 history bits
// for the three schemes.
func BenchmarkFigure6PathProfiles(b *testing.B) {
	cfg := experiments.DefaultFigure6Config()
	cfg.Benchmarks = []string{"compress", "gcc"}
	cfg.GeneratedSeeds = []uint64{11}
	cfg.Scale = 120_000
	cfg.Eval.MaxInst = 120_000
	cfg.Eval.HistoryLens = []int{1, 4, 8, 12}
	var res *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	li := 2 // history length 8
	b.ReportMetric(res.Rate(0, pathprof.SchemeExecCounts, li), "exec@8")
	b.ReportMetric(res.Rate(0, pathprof.SchemeHistory, li), "history@8")
	b.ReportMetric(res.Rate(0, pathprof.SchemeHistoryPair, li), "pair@8")
}

// BenchmarkFigure7WastedSlots regenerates Figure 7: total latency vs
// wasted issue slots via paired sampling. Metrics: the serial and parallel
// loops' waste per available slot (ground truth).
func BenchmarkFigure7WastedSlots(b *testing.B) {
	cfg := experiments.DefaultFigure7Config()
	cfg.Iters = 6000
	var res *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	rate := func(loop string) float64 {
		var w, l int64
		for _, p := range res.Points {
			if p.Loop == loop {
				w += p.Wasted
				l += p.Latency
			}
		}
		if l == 0 {
			return 0
		}
		return float64(w) / float64(4*l)
	}
	b.ReportMetric(rate("A-serial"), "serial-wastefrac")
	b.ReportMetric(rate("C-parallel"), "parallel-wastefrac")
}

// BenchmarkTable1Latencies regenerates Table 1: per-stage latencies on the
// stress kernels. Metric: mem-latency kernel's load issue->completion.
func BenchmarkTable1Latencies(b *testing.B) {
	cfg := experiments.DefaultTable1Config()
	cfg.Iters = 6000
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Kernel == "mem-latency" {
			b.ReportMetric(row.MemLat, "memload-cycles")
		}
		if row.Kernel == "dep-stall" {
			b.ReportMetric(row.Lat[1], "depstall-cycles")
		}
	}
}

// BenchmarkSection6WindowedIPC regenerates the §6 statistics. Metrics:
// overall retire-weighted CoV of windowed IPC and the largest per-
// benchmark max/min ratio.
func BenchmarkSection6WindowedIPC(b *testing.B) {
	cfg := experiments.DefaultSection6Config()
	cfg.Scale = 120_000
	var res *experiments.Section6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Section6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	maxRatio := 0.0
	for _, row := range res.Rows {
		if row.MaxMinRatio > maxRatio {
			maxRatio = row.MaxMinRatio
		}
	}
	b.ReportMetric(res.OverallCoV, "weighted-cov")
	b.ReportMetric(maxRatio, "max-ipc-ratio")
}

// ------------------------------------------------------------ ablations --

// BenchmarkAblationSelectionMode compares the two instruction-selection
// modes of §4.1.1: counting predicted-path instructions vs counting fetch
// opportunities. Metric: useful sample yield (retired-instruction samples
// per delivered sample).
func BenchmarkAblationSelectionMode(b *testing.B) {
	prog := workload.Compress(150_000)
	for _, mode := range []core.CountMode{core.CountInstructions, core.CountFetchOpportunities} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var yield float64
			for i := 0; i < b.N; i++ {
				ucfg := core.DefaultConfig()
				ucfg.MeanInterval = 100
				ucfg.CountMode = mode
				unit := core.MustNewUnit(ucfg)
				var total, useful int
				src := sim.NewMachineSource(sim.New(prog), 0)
				pipe, err := cpu.New(prog, src, cpu.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				pipe.AttachProfileMe(unit, func(ss []core.Sample) {
					for _, s := range ss {
						total++
						if s.First.Retired() {
							useful++
						}
					}
				})
				if _, err := pipe.Run(0); err != nil {
					b.Fatal(err)
				}
				if total > 0 {
					yield = float64(useful) / float64(total)
				}
			}
			b.ReportMetric(yield, "useful-yield")
		})
	}
}

// BenchmarkAblationSampleBuffer sweeps the §4.3 sample-buffer depth.
// Metric: interrupt-stall cycles as a fraction of the run — buffering
// amortizes delivery cost.
func BenchmarkAblationSampleBuffer(b *testing.B) {
	prog := workload.Ijpeg(150_000)
	for _, depth := range []int{1, 4, 16, 64} {
		depth := depth
		b.Run("depth"+itoa(depth), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				ucfg := core.DefaultConfig()
				ucfg.MeanInterval = 200
				ucfg.BufferDepth = depth
				unit := core.MustNewUnit(ucfg)
				src := sim.NewMachineSource(sim.New(prog), 0)
				pipe, err := cpu.New(prog, src, cpu.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				pipe.AttachProfileMe(unit, func([]core.Sample) {})
				res, err := pipe.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				overhead = float64(res.InterruptStall) / float64(res.Cycles)
			}
			b.ReportMetric(100*overhead, "overhead-%")
		})
	}
}

// BenchmarkAblationFixedInterval compares fixed vs randomized sampling
// intervals. Metric: worst per-PC bias (max |estimate/actual - 1| over hot
// instructions) — fixed intervals alias with loop periods.
func BenchmarkAblationFixedInterval(b *testing.B) {
	// A loop whose body length divides the fixed interval aliases badly.
	prog := workload.Figure2Program(18, 40_000) // 21-instruction loop body
	for _, mode := range []core.IntervalMode{core.IntervalFixed, core.IntervalGeometric} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				ucfg := core.DefaultConfig()
				ucfg.MeanInterval = 84 // 4 x loop length: total aliasing
				ucfg.IntervalMode = mode
				unit := core.MustNewUnit(ucfg)
				db := profile.NewDB(84, 0, 4)
				src := sim.NewMachineSource(sim.New(prog), 0)
				ccfg := cpu.DefaultConfig()
				ccfg.InterruptCost = 0
				pipe, err := cpu.New(prog, src, ccfg)
				if err != nil {
					b.Fatal(err)
				}
				pipe.AttachProfileMe(unit, db.Handler())
				res, err := pipe.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				if db.Samples() > 0 {
					db.S = float64(res.FetchedOnPath) / float64(db.Samples())
				}
				worst = worstBias(pipe, db)
			}
			b.ReportMetric(worst, "worst-pc-bias")
		})
	}
}

// worstBias compares per-PC sampled estimates against ground truth for
// hot instructions and returns the worst relative deviation.
func worstBias(pipe *cpu.Pipeline, db *profile.DB) float64 {
	worst := 0.0
	for _, st := range pipe.PerPC() {
		if st.Retired < 1000 {
			continue
		}
		est := db.EstimatedCount(st.PC)
		dev := est/float64(st.Fetched) - 1
		if dev < 0 {
			dev = -dev
		}
		if dev > worst {
			worst = dev
		}
	}
	return worst
}

// BenchmarkAblationNoWrongPath disables wrong-path fetch: aborted-sample
// visibility (a core ProfileMe claim) should vanish. Metric: fraction of
// samples that are aborted instructions, with and without wrong-path
// fetch.
func BenchmarkAblationNoWrongPath(b *testing.B) {
	prog := workload.Go(150_000)
	for _, noWrong := range []bool{false, true} {
		noWrong := noWrong
		name := "wrongpath"
		if noWrong {
			name = "nowrongpath"
		}
		b.Run(name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				ccfg := cpu.DefaultConfig()
				ccfg.NoWrongPath = noWrong
				ucfg := core.DefaultConfig()
				ucfg.MeanInterval = 100
				ucfg.CountMode = core.CountFetchOpportunities
				unit := core.MustNewUnit(ucfg)
				var total, aborted int
				src := sim.NewMachineSource(sim.New(prog), 0)
				pipe, err := cpu.New(prog, src, ccfg)
				if err != nil {
					b.Fatal(err)
				}
				pipe.AttachProfileMe(unit, func(ss []core.Sample) {
					for _, s := range ss {
						if s.First.Events.Has(core.EvNoInstruction) {
							continue
						}
						total++
						if !s.First.Retired() {
							aborted++
						}
					}
				})
				if _, err := pipe.Run(0); err != nil {
					b.Fatal(err)
				}
				if total > 0 {
					frac = float64(aborted) / float64(total)
				}
			}
			b.ReportMetric(100*frac, "aborted-%")
		})
	}
}

// ---------------------------------------------------- simulator speed --

// BenchmarkPipeline measures raw timing-simulator throughput per suite
// benchmark (instructions simulated per second).
func BenchmarkPipeline(b *testing.B) {
	for _, name := range []string{"compress", "ijpeg", "li", "perl"} {
		bench, _ := workload.ByName(name)
		prog := bench.Build(100_000)
		b.Run(name, func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				src := sim.NewMachineSource(sim.New(prog), 0)
				pipe, err := cpu.New(prog, src, cpu.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				res, err := pipe.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				insts += res.Retired
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "inst/s")
		})
	}
}

// BenchmarkFunctionalSim measures the functional simulator alone.
func BenchmarkFunctionalSim(b *testing.B) {
	bench, _ := workload.ByName("compress")
	prog := bench.Build(100_000)
	var insts uint64
	for i := 0; i < b.N; i++ {
		n, err := sim.New(prog).Run(0, nil)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkSamplingOverhead sweeps the sampling interval and reports the
// run-time dilation caused by profiling interrupts — the paper's
// "overhead may be decreased arbitrarily by reducing the sampling rate".
func BenchmarkSamplingOverhead(b *testing.B) {
	prog := workload.Ijpeg(120_000)
	base := int64(0)
	{
		src := sim.NewMachineSource(sim.New(prog), 0)
		pipe, err := cpu.New(prog, src, cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		res, err := pipe.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		base = res.Cycles
	}
	for _, interval := range []float64{64, 512, 4096} {
		interval := interval
		b.Run("interval"+itoa(int(interval)), func(b *testing.B) {
			var dilation float64
			for i := 0; i < b.N; i++ {
				ucfg := core.DefaultConfig()
				ucfg.MeanInterval = interval
				unit := core.MustNewUnit(ucfg)
				src := sim.NewMachineSource(sim.New(prog), 0)
				pipe, err := cpu.New(prog, src, cpu.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				pipe.AttachProfileMe(unit, func([]core.Sample) {})
				res, err := pipe.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				dilation = float64(res.Cycles)/float64(base) - 1
			}
			b.ReportMetric(100*dilation, "slowdown-%")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}

// BenchmarkBlindSpot regenerates the §2.2 blind-spot comparison. Metrics:
// fraction of counter interrupts attributed inside uninterruptible code
// (expected ~0) vs the ProfileMe sample fraction (expected ~true share).
func BenchmarkBlindSpot(b *testing.B) {
	cfg := experiments.DefaultBlindSpotConfig()
	cfg.Iters = 8000
	var res *experiments.BlindSpotResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.BlindSpot(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.TrueShare, "true-share")
	b.ReportMetric(res.CounterShare, "counter-share")
	b.ReportMetric(res.ProfileShare, "profileme-share")
}

// BenchmarkEdgeProfile measures edge-frequency estimation from paired
// samples (§5.2). Metric: relative error of the hottest edge's estimated
// execution count against ground truth.
func BenchmarkEdgeProfile(b *testing.B) {
	prog := workload.Compress(200_000)
	var relErr float64
	for i := 0; i < b.N; i++ {
		const (
			interval = 50
			window   = 40
		)
		unit := core.MustNewUnit(core.Config{
			Paired: true, MeanInterval: interval, Window: window, BufferDepth: 32,
			CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 9,
		})
		edges := profile.NewEdgeProfile(interval, window)
		ccfg := cpu.DefaultConfig()
		ccfg.InterruptCost = 0
		src := sim.NewMachineSource(sim.New(prog), 0)
		pipe, err := cpu.New(prog, src, ccfg)
		if err != nil {
			b.Fatal(err)
		}
		pipe.AttachProfileMe(unit, edges.Handler())
		if _, err := pipe.Run(0); err != nil {
			b.Fatal(err)
		}
		hot := edges.Hot(1)
		if len(hot) == 0 {
			b.Fatal("no edges observed")
		}
		// Ground truth: dynamic edge count from the functional stream.
		var trueCount float64
		m := sim.New(prog)
		var prevPC uint64
		first := true
		for !m.Halted() {
			r, ok, err := m.Step()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			if !first && prevPC == hot[0].Edge.From && r.PC == hot[0].Edge.To {
				trueCount++
			}
			prevPC, first = r.PC, false
		}
		if trueCount > 0 {
			relErr = hot[0].Estimate/trueCount - 1
			if relErr < 0 {
				relErr = -relErr
			}
		}
	}
	b.ReportMetric(relErr, "hottest-edge-relerr")
}

// BenchmarkAblationPairWindow sweeps the paired-sampling window W
// (§5.2.1: "conservatively chosen to include any pair of instructions
// that may be simultaneously in flight"). A window smaller than the
// in-flight range misses useful overlap beyond it, deflating the useful
// estimate and inflating wasted slots. Metric: estimated/true useful
// issue slots over the Figure 7 program.
func BenchmarkAblationPairWindow(b *testing.B) {
	for _, window := range []int{10, 40, 80, 160} {
		window := window
		b.Run("W"+itoa(window), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				prog := workload.Figure7Program(3000)
				ccfg := cpu.DefaultConfig()
				ccfg.TrackWastedSlots = true
				ccfg.InterruptCost = 0
				unit := core.MustNewUnit(core.Config{
					Paired: true, MeanInterval: 40, Window: window, BufferDepth: 64,
					CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 3,
				})
				db := profile.NewDB(40, window, ccfg.SustainedIssueWidth)
				src := sim.NewMachineSource(sim.New(prog), 0)
				pipe, err := cpu.New(prog, src, ccfg)
				if err != nil {
					b.Fatal(err)
				}
				pipe.AttachProfileMe(unit, db.Handler())
				res, err := pipe.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				if db.Samples() > 0 {
					db.S = float64(res.FetchedOnPath) / float64(db.Samples())
				}
				var estUseful, trueUseful float64
				for _, st := range pipe.PerPC() {
					if st.Retired < 1000 {
						continue
					}
					if _, _, u, ok := db.WastedSlots(st.PC); ok {
						estUseful += u
						trueUseful += float64(st.UsefulSlots)
					}
				}
				if trueUseful > 0 {
					ratio = estUseful / trueUseful
				}
			}
			b.ReportMetric(ratio, "est/true-useful")
		})
	}
}

// BenchmarkPrefetchPGO runs the §7 profile-guided prefetching loop end to
// end (profile -> stride detection -> rewrite -> rerun). Metric: speedup
// of the rewritten program.
func BenchmarkPrefetchPGO(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		s, err := experiments.PrefetchSpeedup(8000)
		if err != nil {
			b.Fatal(err)
		}
		speedup = s
	}
	if speedup < 1.5 {
		b.Fatalf("speedup %.2f", speedup)
	}
	b.ReportMetric(speedup, "speedup-x")
}

// BenchmarkWWComparison runs the §8 comparison against Westcott & White's
// IID-restricted sampling. Metrics: each sampler's hot-instruction
// coverage and worst per-PC bias at matched sample budgets.
func BenchmarkWWComparison(b *testing.B) {
	cfg := experiments.DefaultWWConfig()
	cfg.Scale = 1_000_000
	cfg.Period = 6
	var res *experiments.WWResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.WW(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.IIDCoverage, "iid-coverage")
	b.ReportMetric(res.PMCoverage, "pm-coverage")
	b.ReportMetric(res.IIDWorstBias, "iid-worst-bias")
	b.ReportMetric(res.PMWorstBias, "pm-worst-bias")
}

// BenchmarkMultiprocess runs the §4.1.3 context-register demonstration:
// two processes time-sliced on one core with a shared memory hierarchy
// and one ProfileMe unit. Metrics: cache-interference factors and the
// median bias of the demultiplexed profile.
func BenchmarkMultiprocess(b *testing.B) {
	cfg := experiments.DefaultMultiprocessConfig()
	cfg.Scale = 150_000
	var res *experiments.MultiprocessResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Multiprocess(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := res.Check(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.InterferenceA, "interference-a")
	b.ReportMetric(res.InterferenceB, "interference-b")
	b.ReportMetric(res.BiasA, "demux-median-bias")
}
