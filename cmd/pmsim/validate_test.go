package main

import (
	"strings"
	"testing"
	"time"
)

// okFlags is a baseline that must validate; each case perturbs it.
func okFlags() flagValues {
	return flagValues{
		chaos:    0,
		fleet:    0,
		shards:   4,
		interval: 512,
		scale:    200_000,
		set:      map[string]bool{},
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flagValues)
		wantErr string // "" = must pass
	}{
		{"defaults", func(v *flagValues) {}, ""},
		{"chaos in range", func(v *flagValues) { v.chaos = 0.5 }, ""},
		{"chaos one", func(v *flagValues) { v.chaos = 1 }, ""},
		{"chaos negative", func(v *flagValues) { v.chaos = -0.1 }, "-chaos"},
		{"chaos above one", func(v *flagValues) { v.chaos = 1.5 }, "-chaos"},
		{"fleet zero explicit", func(v *flagValues) { v.fleet = 0; v.set["fleet"] = true }, "-fleet"},
		{"fleet negative explicit", func(v *flagValues) { v.fleet = -2; v.set["fleet"] = true }, "-fleet"},
		{"fleet default zero ok", func(v *flagValues) { v.fleet = 0 }, ""},
		{"fleet positive", func(v *flagValues) { v.fleet = 8; v.set["fleet"] = true }, ""},
		{"shards zero explicit", func(v *flagValues) { v.shards = 0; v.set["shards"] = true }, "-shards"},
		{"deadline zero explicit", func(v *flagValues) { v.deadline = 0; v.set["deadline"] = true }, "-deadline"},
		{"deadline negative explicit", func(v *flagValues) { v.deadline = -time.Second; v.set["deadline"] = true }, "-deadline"},
		{"deadline unset zero ok", func(v *flagValues) { v.deadline = 0 }, ""},
		{"deadline positive", func(v *flagValues) { v.deadline = time.Minute; v.set["deadline"] = true }, ""},
		{"watchdog negative", func(v *flagValues) { v.watchdog = -1 }, "-watchdog"},
		{"watchdog zero disables", func(v *flagValues) { v.watchdog = 0 }, ""},
		{"interval below one", func(v *flagValues) { v.interval = 0.5 }, "-interval"},
		{"scale zero", func(v *flagValues) { v.scale = 0 }, "-scale"},
		{"resume without checkpoint", func(v *flagValues) { v.resume = true }, "-resume"},
		{"resume with checkpoint", func(v *flagValues) { v.resume = true; v.ckptDir = "/tmp/c" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := okFlags()
			tc.mutate(&v)
			err := v.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
