// Command pmsim runs a workload on the out-of-order timing simulator with
// ProfileMe instruction sampling attached, and prints the run summary and
// the hot-instruction profile the sampling software accumulated.
//
// Examples:
//
//	pmsim -bench compress                  # profile the compress kernel
//	pmsim -bench li -scale 500000 -top 20  # a bigger run, longer report
//	pmsim -gen 42                          # profile a generated program
//	pmsim -bench ijpeg -paired             # paired sampling + concurrency
//	pmsim -bench go -inorder               # 21164-like in-order pipeline
//
// Fleet mode runs a supervised profiling campaign — benchmark × shards
// jobs across a worker pool with retries, checkpointing, and graceful
// drain on SIGINT/SIGTERM:
//
//	pmsim -bench compress -fleet 4 -shards 16 -checkpoint /tmp/camp
//	pmsim -bench compress -fleet 4 -shards 16 -checkpoint /tmp/camp -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/faultinject"
	"profileme/internal/isa"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "suite benchmark to run ("+strings.Join(workload.Names(), ", ")+")")
		genSeed   = flag.Uint64("gen", 0, "run a generated program with this seed instead of a suite benchmark")
		scale     = flag.Int("scale", 200_000, "approximate dynamic instruction count")
		interval  = flag.Float64("interval", 512, "mean sampling interval (fetched instructions)")
		paired    = flag.Bool("paired", false, "enable paired sampling")
		ways      = flag.Int("ways", 0, "N-way sampling (0/1 single; 2 = paired; up to 8)")
		window    = flag.Int("window", 80, "paired-sampling window W")
		buffer    = flag.Int("buffer", 8, "samples buffered per interrupt")
		countMode = flag.String("count", "instructions", "selection counting: instructions | opportunities")
		intMode   = flag.String("randomize", "geometric", "interval randomization: geometric | uniform | fixed")
		top       = flag.Int("top", 15, "hot instructions to print")
		inorder   = flag.Bool("inorder", false, "use the in-order (21164-like) configuration")
		disasm    = flag.Bool("disasm", false, "print the program disassembly before running")
		byProc    = flag.Bool("proc", false, "also print the per-procedure rollup")
		edges     = flag.Bool("edges", false, "also print the paired-sample edge profile (implies -paired)")
		saveTo    = flag.String("save", "", "save the profile database to a file")
		chaos     = flag.Float64("chaos", 0, "fault-injection rate 0..1: drop/delay/coalesce interrupts, stall drains, overwrite and corrupt samples")
		chaosSeed = flag.Uint64("chaos-seed", 1, "fault-injection RNG seed")
		list      = flag.Bool("list", false, "list the suite benchmarks and exit")

		fleetN     = flag.Int("fleet", 0, "fleet mode: run a supervised campaign across this many workers")
		submitURL  = flag.String("submit", "", "fleet mode: also POST each completed shard profile to this collector; comma-separated URLs add transport-failover fallbacks (e.g. http://localhost:7000)")
		recordPath = flag.String("record", "", "fleet mode: tee every shard submission into this trace file (replayable with pmtraffic replay; works with or without -submit)")
		shards     = flag.Int("shards", 4, "fleet mode: sampling shards per benchmark")
		checkpoint = flag.String("checkpoint", "", "fleet mode: checkpoint directory for crash-safe campaign state")
		resume     = flag.Bool("resume", false, "fleet mode: resume the campaign in -checkpoint instead of starting fresh")
		deadline   = flag.Duration("deadline", 0, "per-job wall-clock deadline, enforced as real cancellation (0 = none)")
		fleetSeed  = flag.Uint64("seed", 1, "fleet mode: campaign seed; per-shard sampling seeds derive from it")
		watchdog   = flag.Int("watchdog", cpu.DefaultWatchdogCycles, "retire-progress watchdog bound in cycles (0 disables livelock detection)")
	)
	flag.Parse()
	if *list {
		for _, b := range workload.Suite() {
			fmt.Printf("%-10s %s\n", b.Name, b.Notes)
		}
		return
	}
	if *edges {
		*paired = true
	}

	set := explicitFlags(flag.CommandLine)
	fv := flagValues{
		chaos:    *chaos,
		fleet:    *fleetN,
		shards:   *shards,
		deadline: *deadline,
		watchdog: *watchdog,
		interval: *interval,
		scale:    *scale,
		resume:   *resume,
		ckptDir:  *checkpoint,
		submit:   *submitURL,
		record:   *recordPath,
		set:      set,
	}
	if err := fv.validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *fleetN > 0 || *resume {
		benches, err := parseBenches(*benchName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(benches) == 0 && *genSeed == 0 {
			fmt.Fprintf(os.Stderr, "pmsim: fleet mode needs -bench <name[,name...]> or -gen <seed>; benchmarks: %s\n",
				strings.Join(workload.Names(), ", "))
			os.Exit(2)
		}
		ccfg := cpu.DefaultConfig()
		if *inorder {
			ccfg = cpu.InOrderConfig()
		}
		ccfg.WatchdogCycles = *watchdog
		workers := *fleetN
		if workers == 0 {
			workers = 1 // -resume without -fleet
		}
		os.Exit(runFleet(fleetOptions{
			benches:    benches,
			genSeed:    *genSeed,
			scale:      *scale,
			shards:     *shards,
			workers:    workers,
			interval:   *interval,
			buffer:     *buffer,
			chaos:      *chaos,
			seed:       *fleetSeed,
			deadline:   *deadline,
			checkpoint: *checkpoint,
			resume:     *resume,
			ccfg:       ccfg,
			top:        *top,
			saveTo:     *saveTo,
			submitURL:  *submitURL,
			recordPath: *recordPath,
		}))
	}

	prog, name, err := pickProgram(*benchName, *genSeed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *disasm {
		fmt.Print(prog.Disassemble())
	}

	ccfg := cpu.DefaultConfig()
	if *inorder {
		ccfg = cpu.InOrderConfig()
	}
	ccfg.WatchdogCycles = *watchdog
	cm := core.CountInstructions
	if *countMode == "opportunities" {
		cm = core.CountFetchOpportunities
	}
	im := core.IntervalGeometric
	switch *intMode {
	case "uniform":
		im = core.IntervalUniform
	case "fixed":
		im = core.IntervalFixed
	}
	ucfg := core.Config{
		Paired:       *paired,
		Ways:         *ways,
		MeanInterval: *interval,
		Window:       *window,
		BufferDepth:  *buffer,
		CountMode:    cm,
		IntervalMode: im,
		Seed:         1,
	}
	unit, err := core.NewUnit(ucfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	db := profile.NewDB(*interval, *window, ccfg.SustainedIssueWidth)
	edgeDB := profile.NewEdgeProfile(*interval, *window)

	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dbHandler := db.Handler()
	edgeHandler := edgeDB.Handler()
	pipe.AttachProfileMe(unit, func(ss []core.Sample) {
		dbHandler(ss)
		if *edges {
			edgeHandler(ss)
		}
	})
	var plan *faultinject.Plan
	if *chaos != 0 {
		plan, err = faultinject.NewPlan(*chaosSeed, faultinject.Uniform(*chaos))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		unit.AttachFaults(plan)
		pipe.AttachFaults(plan)
	}
	// Ctrl-C / SIGTERM cancels the run through the same context machinery
	// the fleet uses: the pipeline finalizes at the next cycle batch and
	// hands back the partial result, which is still reported and saved —
	// an interrupted profiling run degrades to a shorter one, it does not
	// vanish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, *deadline,
			fmt.Errorf("pmsim: -deadline %v expired", *deadline))
		defer cancel()
	}
	res, err := pipe.RunContext(ctx, 0)
	interrupted := errors.Is(err, cpu.ErrCanceled)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stop() // a second signal now kills the process the default way
	if err := src.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "pmsim: %v\n", err)
		fmt.Fprintln(os.Stderr, "pmsim: interrupted — the report and any saved database cover only the completed portion of the run")
	}

	printSummary(name, res, pipe, unit)
	if plan != nil {
		// Hardware-side losses feed the database's loss correction; the
		// realized interval is then computed over everything the hardware
		// captured, so loss-corrected estimates re-center on the truth.
		st := unit.Stats()
		db.RecordLoss(st.SamplesDropped + st.SamplesOverwritten)
		if captured := st.Captured(); captured > 0 {
			db.S = float64(res.FetchedOnPath) / float64(captured)
		}
		printDegradation(plan, db, res, st)
	} else if db.Samples() > 0 {
		// Scale estimates by the realized interval.
		db.S = float64(res.FetchedOnPath) / float64(db.Samples())
	}
	fmt.Println()
	fmt.Print(db.Report(prog, *top))
	if *byProc {
		fmt.Println("\nper-procedure rollup:")
		fmt.Print(profile.ProcReport(db, prog))
	}
	if *paired {
		printConcurrency(db, prog, *top)
	}
	if *edges {
		fmt.Println()
		fmt.Print(edgeDB.Report(prog, *top))
	}
	if *saveTo != "" {
		// Atomic save: a failed write leaves any previous database at
		// this path untouched (profile.SaveFile writes temp+fsync+rename).
		if err := profile.SaveFile(db, *saveTo); err != nil {
			fmt.Fprintf(os.Stderr, "pmsim: profile database NOT saved: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nprofile database saved to %s\n", *saveTo)
	}
	if interrupted {
		os.Exit(1)
	}
}

// printDegradation reports what fault injection did to the sampling stack
// and how badly the profile degraded.
func printDegradation(plan *faultinject.Plan, db *profile.DB, res cpu.Result, st core.Stats) {
	c := plan.Counts()
	fmt.Printf("chaos: %d delivered, %d dropped, %d overwritten, %d corrupt-rejected; estimated loss rate %.1f%%\n",
		db.Samples(), st.SamplesDropped, st.SamplesOverwritten, db.CorruptRejected(),
		100*db.LossRate())
	fmt.Printf("chaos faults: %d interrupts suppressed, %d delayed, %d coalesced, %d drains stalled (%d hold cycles), %d samples corrupted\n",
		c.InterruptsDropped, c.InterruptsDelayed, c.InterruptsCoalesced, c.DrainsStalled,
		res.InterruptHoldCycles, c.SamplesCorrupted)
}

func pickProgram(bench string, genSeed uint64, scale int) (*isa.Program, string, error) {
	if genSeed != 0 {
		gc := workload.DefaultGenConfig()
		gc.Seed = genSeed
		gc.MainIters = scale / 250
		return workload.Generate(gc), fmt.Sprintf("generated(seed=%d)", genSeed), nil
	}
	if bench == "" {
		return nil, "", fmt.Errorf("pmsim: pass -bench <name> or -gen <seed>; benchmarks: %s",
			strings.Join(workload.Names(), ", "))
	}
	b, ok := workload.ByName(bench)
	if !ok {
		return nil, "", fmt.Errorf("pmsim: unknown benchmark %q", bench)
	}
	return b.Build(scale), bench, nil
}

func printSummary(name string, res cpu.Result, pipe *cpu.Pipeline, unit *core.Unit) {
	fmt.Printf("%s: %d instructions retired in %d cycles (IPC %.2f, CPI %.2f)\n",
		name, res.Retired, res.Cycles, res.IPC(), res.CPI())
	fmt.Printf("fetched: %d on-path, %d wrong-path, %d empty slots\n",
		res.FetchedOnPath, res.FetchedOffPath, res.EmptyFetchSlots)
	fmt.Printf("mispredicts: %d   replay traps: %d\n", res.Mispredicts, res.ReplayTraps)
	lk, mp := pipe.Predictor().Accuracy()
	if lk > 0 {
		fmt.Printf("branch accuracy: %.2f%% of %d resolved\n", 100*(1-float64(mp)/float64(lk)), lk)
	}
	dc := pipe.Hierarchy().DCache()
	if acc, miss := dc.Stats(); acc > 0 {
		fmt.Printf("dcache: %d accesses, %.2f%% miss\n", acc, 100*float64(miss)/float64(acc))
	}
	st := unit.Stats()
	fmt.Printf("profileme: %d samples (%d off-path, %d empty), %d interrupts, %d stall cycles (%.2f%% of run)\n",
		st.SamplesBuffered, st.OffPath, st.EmptySelected, res.Interrupts, res.InterruptStall,
		100*float64(res.InterruptStall)/float64(res.Cycles))
}

func printConcurrency(db *profile.DB, prog *isa.Program, top int) {
	fmt.Println("\npaired-sampling concurrency metrics (top instructions by wasted slots):")
	fmt.Printf("%-12s %-24s %12s %12s %12s %8s\n",
		"pc", "instruction", "wasted", "total-slots", "useful", "nearIPC")
	type row struct {
		pc                    uint64
		wasted, total, useful float64
		ipc                   float64
	}
	var rows []row
	for _, pc := range db.PCs() {
		w, t, u, ok := db.WastedSlots(pc)
		if !ok {
			continue
		}
		ipc, _ := db.NeighborhoodIPC(pc)
		rows = append(rows, row{pc, w, t, u, ipc})
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].wasted > rows[i].wasted {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	if len(rows) > top {
		rows = rows[:top]
	}
	for _, r := range rows {
		dis := ""
		if in, ok := prog.At(r.pc); ok {
			dis = in.String()
		}
		fmt.Printf("%-12s %-24s %12.0f %12.0f %12.0f %8.2f\n",
			prog.SymbolFor(r.pc), dis, r.wasted, r.total, r.useful, r.ipc)
	}
}
