package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"profileme/internal/cpu"
	"profileme/internal/profile"
	"profileme/internal/runner"
	"profileme/internal/traffic"
	"profileme/internal/workload"
)

// fleetOptions is everything fleet mode needs, assembled from flags that
// already passed validate.
type fleetOptions struct {
	benches    []string // suite benchmarks; empty means a generated program
	genSeed    uint64
	scale      int
	shards     int
	workers    int
	interval   float64
	buffer     int
	chaos      float64
	seed       uint64
	deadline   time.Duration
	checkpoint string
	resume     bool
	ccfg       cpu.Config
	top        int
	saveTo     string
	submitURL  string
	recordPath string
	quiet      bool
}

// splitSubmitURLs expands the -submit value: a comma-separated list of
// collector URLs, primary first. validate already checked each entry.
func splitSubmitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// fleetJobs expands benchmark × shards into the campaign job list. Shards
// of one benchmark run the same program and differ only by sampling seed
// (derived per job ID by the runner), which is exactly the independent-
// runs setup the profile merge assumes.
func fleetJobs(o fleetOptions) []runner.Job {
	var jobs []runner.Job
	if len(o.benches) == 0 {
		for s := 0; s < o.shards; s++ {
			jobs = append(jobs, runner.Job{
				ID:        fmt.Sprintf("gen%d/s%03d", o.genSeed, s),
				GenSeed:   o.genSeed,
				Scale:     o.scale,
				ChaosRate: o.chaos,
			})
		}
		return jobs
	}
	for _, b := range o.benches {
		for s := 0; s < o.shards; s++ {
			jobs = append(jobs, runner.Job{
				ID:        fmt.Sprintf("%s/s%03d", b, s),
				Bench:     b,
				Scale:     o.scale,
				ChaosRate: o.chaos,
			})
		}
	}
	return jobs
}

// runFleet executes (or resumes) a profiling campaign and returns the
// process exit code: 0 when every job completed, 1 when jobs were
// dead-lettered, the campaign was drained early, or the fleet itself
// failed.
func runFleet(o fleetOptions) int {
	cfg := runner.Config{
		Workers:       o.workers,
		Deadline:      o.deadline,
		Interval:      o.interval,
		BufferDepth:   o.buffer,
		Seed:          o.seed,
		CheckpointDir: o.checkpoint,
		CPU:           o.ccfg,
	}
	if !o.quiet {
		cfg.Log = os.Stderr
	}
	if o.submitURL != "" {
		// Each completed shard is also POSTed to the collector (a pmsimd
		// or a pmrouter); undeliverable shards stay in the local aggregate
		// and the report counts them as degradation, not failure. Extra
		// comma-separated URLs are transport-failover fallbacks — same
		// tier, different frontend.
		urls := splitSubmitURLs(o.submitURL)
		cfg.Sink = runner.NewHTTPSink(urls[0], urls[1:]...)
	}
	if o.recordPath != "" {
		// -record tees every shard submission into a trace (wall-clock
		// offsets, cohort = benchmark list) that pmtraffic replay can
		// re-run later. With no -submit the fleet records without
		// delivering anywhere.
		f, err := os.Create(o.recordPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmsim: -record:", err)
			return 2
		}
		w, err := traffic.NewWriter(f, traffic.Meta{Source: "pmsim -record"})
		if err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "pmsim: -record:", err)
			return 2
		}
		cohort := strings.Join(o.benches, ",")
		if cohort == "" {
			cohort = fmt.Sprintf("gen%d", o.genSeed)
		}
		cfg.Sink = traffic.NewRecordingSink(cfg.Sink, w, cohort)
		defer func() {
			if err := f.Sync(); err != nil {
				fmt.Fprintln(os.Stderr, "pmsim: -record sync:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pmsim: -record close:", err)
			}
			fmt.Printf("pmsim: %d shard submissions recorded to %s\n", w.Count(), o.recordPath)
		}()
	}
	jobs := fleetJobs(o)

	var (
		f   *runner.Fleet
		err error
	)
	if o.resume {
		f, err = runner.Resume(cfg, jobs)
	} else {
		f, err = runner.New(cfg, jobs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// SIGINT/SIGTERM starts a graceful drain: dispatch stops, in-flight
	// jobs get the grace period, and a final checkpoint is written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, runErr := f.Run(ctx)
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
	}
	fmt.Print(rep.String())

	if db := f.Profile(); db != nil {
		// Per-instruction attribution needs one program image; with a
		// multi-benchmark campaign the aggregate spans several.
		if len(o.benches) <= 1 {
			prog, _, err := pickProgram(firstBench(o.benches), o.genSeed, o.scale)
			if err == nil {
				fmt.Println()
				fmt.Print(db.Report(prog, o.top))
			}
		} else {
			fmt.Printf("\naggregate spans %d benchmarks; per-instruction report skipped (use one -bench to attribute PCs)\n",
				len(o.benches))
		}
		if o.saveTo != "" {
			if err := profile.SaveFile(db, o.saveTo); err != nil {
				fmt.Fprintf(os.Stderr, "pmsim: profile database NOT saved: %v\n", err)
				return 1
			}
			fmt.Printf("\naggregate profile database saved to %s\n", o.saveTo)
		}
	}

	switch {
	case runErr != nil:
		return 1
	case rep.DeadLettered > 0 || rep.Drained:
		return 1
	default:
		return 0
	}
}

func firstBench(benches []string) string {
	if len(benches) == 0 {
		return ""
	}
	return benches[0]
}

// parseBenches splits and validates a comma-separated -bench list for
// fleet mode ("" is fine when -gen selects a generated program).
func parseBenches(arg string) ([]string, error) {
	if arg == "" {
		return nil, nil
	}
	var benches []string
	for _, b := range strings.Split(arg, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if _, ok := workload.ByName(b); !ok {
			return nil, fmt.Errorf("pmsim: unknown benchmark %q; benchmarks: %s",
				b, strings.Join(workload.Names(), ", "))
		}
		benches = append(benches, b)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("pmsim: -bench %q names no benchmark", arg)
	}
	return benches, nil
}
