package main

import (
	"flag"
	"fmt"
	"strings"
	"time"
)

// flagValues carries the parsed flags that validate checks up front, plus
// the set of flag names the user passed explicitly (flag.Visit): -fleet,
// -shards and -deadline have meaningful zero defaults, so only explicit
// nonsense is rejected for them.
type flagValues struct {
	chaos    float64
	fleet    int
	shards   int
	deadline time.Duration
	watchdog int
	interval float64
	scale    int
	resume   bool
	ckptDir  string
	submit   string
	record   string
	set      map[string]bool
}

func explicitFlags(fs *flag.FlagSet) map[string]bool {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// validate rejects bad flag combinations before any simulator state is
// built, so misuse fails fast with a clear message instead of surfacing
// as a confusing mid-run error.
func (v flagValues) validate() error {
	switch {
	case v.chaos < 0 || v.chaos > 1:
		return fmt.Errorf("pmsim: -chaos %g out of range: fault rate must be in [0,1]", v.chaos)
	case v.set["fleet"] && v.fleet < 1:
		return fmt.Errorf("pmsim: -fleet %d: the worker pool needs at least 1 worker", v.fleet)
	case v.set["shards"] && v.shards < 1:
		return fmt.Errorf("pmsim: -shards %d: a campaign needs at least 1 shard per benchmark", v.shards)
	case v.set["deadline"] && v.deadline <= 0:
		return fmt.Errorf("pmsim: -deadline %v: per-job deadline must be positive", v.deadline)
	case v.watchdog < 0:
		return fmt.Errorf("pmsim: -watchdog %d: retire-progress bound must be ≥ 0 (0 disables it)", v.watchdog)
	case v.interval < 1:
		return fmt.Errorf("pmsim: -interval %g: mean sampling interval must be ≥ 1", v.interval)
	case v.scale < 1:
		return fmt.Errorf("pmsim: -scale %d: instruction budget must be ≥ 1", v.scale)
	case v.resume && v.ckptDir == "":
		return fmt.Errorf("pmsim: -resume needs -checkpoint <dir> pointing at the campaign to continue")
	case v.submit != "" && v.fleet < 1 && !v.resume:
		return fmt.Errorf("pmsim: -submit delivers fleet shards; combine it with -fleet <workers> (or -resume)")
	case v.record != "" && v.fleet < 1 && !v.resume:
		return fmt.Errorf("pmsim: -record captures fleet shard submissions; combine it with -fleet <workers> (or -resume)")
	}
	if v.submit != "" {
		// -submit accepts a comma-separated list: primary collector (or
		// router) first, transport-failover fallbacks after.
		for _, u := range strings.Split(v.submit, ",") {
			u = strings.TrimSpace(u)
			if u == "" || (!strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://")) {
				return fmt.Errorf("pmsim: -submit %q: collector URL must start with http:// or https://", u)
			}
		}
	}
	return nil
}
