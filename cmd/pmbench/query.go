package main

// Query-path benchmark (-queries): exact vs sketch hot-PC serving on a
// large aggregate while the merge loop is under flood — the workload the
// sketch-backed read path exists for. The headline number is the
// speedup of the published-view sketch query over the deep-copy exact
// path; the BENCH_query.json gate requires it to stay ≥ MinQuerySpeedup
// and the sketch's top-N to agree with the exact top-N once the flood
// pauses. The speedup is a ratio of two measurements taken on the same
// machine in the same run, so the gate needs no calibration scaling.

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"profileme/internal/core"
	"profileme/internal/profile"
)

const (
	// queryDBPCs is the distinct-PC population of the benchmark
	// aggregate: large enough that the exact path's O(DB log DB) scan is
	// the dominant cost (the ISSUE/acceptance target: a 1M-PC DB).
	queryDBPCs = 1 << 20
	// queryHotSet is the size of the skewed-tail population that gets
	// extra samples so the aggregate has realistic mass, and queryCliff
	// PCs get cliffWeight samples each — far above the sketch's worst-case
	// floor of N/K (~2.4k here), so the true top-N is unambiguous even
	// under the sketch's error bound and the overlap gate is not flaky.
	queryHotSet = 1024
	queryCliff  = queryTopN
	cliffWeight = 20000
	// queryTopN is the n of the benchmarked hot-PC query.
	queryTopN = 10
	// MinQuerySpeedup is the hard floor -check enforces on
	// sketchQPS/exactQPS.
	MinQuerySpeedup = 10.0
	// minQueryOverlap is how many of the sketch's top-N must also be in
	// the exact top-N (flood paused) for the sketch to count as correct.
	minQueryOverlap = 9
)

// QueryMeasurement is one serving path's throughput under merge flood.
type QueryMeasurement struct {
	Name    string  `json:"name"`
	Queries int     `json:"queries"`
	NsPerOp float64 `json:"ns_per_op"`
	QPS     float64 `json:"qps"`
}

// QueryBaseline is the BENCH_query.json schema.
type QueryBaseline struct {
	Notes     string `json:"notes"`
	GoVersion string `json:"go_version"`
	DBPCs     int    `json:"db_pcs"`
	TopN      int    `json:"top_n"`
	// Exact is the read-locked deep-copy path (SafeDB.HotPCsExact),
	// Sketch the lock-free published-view path (SafeDB.HotPCs), Window
	// the ring-merged "last 30s" path — all measured with a concurrent
	// merge flood running.
	Exact  QueryMeasurement `json:"exact"`
	Sketch QueryMeasurement `json:"sketch"`
	Window QueryMeasurement `json:"window"`
	// MergesDuringRun counts flood merges completed while measuring —
	// proof the writer was actually contending.
	MergesDuringRun uint64 `json:"merges_during_run"`
	// Speedup = Sketch.QPS / Exact.QPS; the -check gate requires
	// MinSpeedup ≤ Speedup, and MinSpeedup is recorded for the reader.
	Speedup    float64 `json:"speedup"`
	MinSpeedup float64 `json:"min_speedup"`
	// Overlap is |sketch top-N ∩ exact top-N| with the flood paused.
	Overlap int `json:"overlap"`
}

// queryRecord builds one minimal valid retired record for pc.
func queryRecord(pc uint64, lat int64) core.Record {
	r := core.Record{PC: pc, LoadComplete: -1, Events: core.EvRetired}
	for i := range r.StageCycle {
		r.StageCycle[i] = -1
	}
	r.StageCycle[core.StageFetch] = 0
	r.StageCycle[core.StageRetire] = lat
	return r
}

// buildQueryDB constructs the 1M-PC aggregate: every PC sampled once, a
// zipf-ish warm tail on top, and a cliff of queryCliff heavy hitters
// whose counts dwarf the sketch floor.
func buildQueryDB() *profile.DB {
	db := profile.NewDB(512, 0, 4)
	for i := 0; i < queryDBPCs; i++ {
		pc := 0x10000000 + 4*uint64(i)
		db.Add(core.Sample{First: queryRecord(pc, int64(5+i%40))})
	}
	// Warm tail: rank r gets ~ 2*queryHotSet/(r+1) extra samples. These
	// stay below the sketch floor — they are mass, not answers.
	for r := 0; r < queryHotSet; r++ {
		pc := 0x10000000 + 4*uint64(r*7919%queryDBPCs)
		extra := 2*queryHotSet/(r+1) + 1
		for j := 0; j < extra; j++ {
			db.Add(core.Sample{First: queryRecord(pc, int64(5+j%40))})
		}
	}
	// The cliff: the PCs every hot-PC query should return.
	for r := 0; r < queryCliff; r++ {
		pc := 0x10000000 + 4*uint64(r*99991%queryDBPCs)
		for j := 0; j < cliffWeight; j++ {
			db.Add(core.Sample{First: queryRecord(pc, int64(5+j%40))})
		}
	}
	return db
}

// buildFloodShard builds one mergeable shard touching a slice of the
// hot set plus some cold PCs — the merge loop's steady diet.
func buildFloodShard(seed int) *profile.DB {
	db := profile.NewDB(512, 0, 4)
	for i := 0; i < 2048; i++ {
		pc := 0x10000000 + 4*uint64((seed*2048+i*31)%queryDBPCs)
		db.Add(core.Sample{First: queryRecord(pc, int64(5+i%40))})
	}
	return db
}

// measureQueries runs fn in a closed loop for at least d (and at least
// minIters iterations), returning the throughput.
func measureQueries(name string, d time.Duration, minIters int, fn func()) QueryMeasurement {
	start := time.Now()
	n := 0
	for time.Since(start) < d || n < minIters {
		fn()
		n++
	}
	elapsed := time.Since(start)
	return QueryMeasurement{
		Name:    name,
		Queries: n,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(n),
		QPS:     float64(n) / elapsed.Seconds(),
	}
}

// runQueryBench measures the three serving paths under flood and
// applies -update/-check to BENCH_query.json.
func runQueryBench(file string, update, check bool, measureFor time.Duration) int {
	fmt.Printf("building %d-PC aggregate...\n", queryDBPCs)
	start := time.Now()
	agg := profile.NewSafeDBWith(buildQueryDB(), profile.SketchConfig{})
	fmt.Printf("built in %s\n", time.Since(start).Round(time.Millisecond))

	// Merge flood: one writer looping over a pool of prebuilt shards —
	// the single-merge-loop shape the pmsimd service has.
	shards := make([]*profile.DB, 8)
	for i := range shards {
		shards[i] = buildFloodShard(i)
	}
	var (
		merges   atomic.Uint64
		stop     atomic.Bool
		floodWG  sync.WaitGroup
		mergeErr atomic.Value
	)
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		for i := 0; !stop.Load(); i++ {
			if err := agg.Merge(shards[i%len(shards)]); err != nil {
				mergeErr.Store(err)
				return
			}
			merges.Add(1)
		}
	}()

	exact := measureQueries("exact", measureFor, 3, func() { agg.HotPCsExact(queryTopN) })
	sketch := measureQueries("sketch", measureFor, 1000, func() { agg.HotPCs(queryTopN) })
	window := measureQueries("window", measureFor, 10, func() { agg.WindowHotPCs(30*time.Second, queryTopN) })
	floodMerges := merges.Load()

	stop.Store(true)
	floodWG.Wait()
	if err, _ := mergeErr.Load().(error); err != nil {
		fmt.Fprintln(os.Stderr, "pmbench: merge flood:", err)
		return 1
	}

	// Flood paused: the sketch's top-N must agree with the exact answer.
	exactTop := agg.HotPCsExact(queryTopN)
	sketchTop := agg.HotPCs(queryTopN)
	inExact := make(map[uint64]bool, len(exactTop))
	for _, a := range exactTop {
		inExact[a.PC] = true
	}
	overlap := 0
	for _, a := range sketchTop {
		if inExact[a.PC] {
			overlap++
		}
	}

	speedup := sketch.QPS / exact.QPS
	for _, m := range []QueryMeasurement{exact, sketch, window} {
		fmt.Printf("%-8s %10d queries  %12.0f ns/op  %12.1f qps\n", m.Name, m.Queries, m.NsPerOp, m.QPS)
	}
	fmt.Printf("speedup %.1fx (gate ≥ %.0fx), top-%d overlap %d/%d, %d merges during run\n",
		speedup, MinQuerySpeedup, queryTopN, overlap, queryTopN, floodMerges)

	switch {
	case update:
		b := &QueryBaseline{
			Notes: "Query-path throughput: sketch-backed view vs exact deep-copy hot-PC " +
				"serving on a 1M-PC aggregate with a concurrent merge flood. The check " +
				"gate is the speedup ratio (machine-independent: both sides measured in " +
				"the same run) plus top-N agreement once the flood pauses. Regenerate " +
				"with `go run ./cmd/pmbench -queries -update`.",
			GoVersion:       runtime.Version(),
			DBPCs:           queryDBPCs,
			TopN:            queryTopN,
			Exact:           exact,
			Sketch:          sketch,
			Window:          window,
			MergesDuringRun: floodMerges,
			Speedup:         speedup,
			MinSpeedup:      MinQuerySpeedup,
			Overlap:         overlap,
		}
		if err := writeJSONFile(file, b); err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			return 1
		}
		fmt.Println("wrote", file)
	case check:
		if _, err := os.Stat(file); err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			return 1
		}
		if speedup < MinQuerySpeedup {
			fmt.Fprintf(os.Stderr, "pmbench: REGRESSION: sketch/exact speedup %.1fx below the %.0fx gate\n",
				speedup, MinQuerySpeedup)
			return 1
		}
		if overlap < minQueryOverlap {
			fmt.Fprintf(os.Stderr, "pmbench: REGRESSION: sketch top-%d overlap %d/%d below %d (sketch no longer agrees with exact)\n",
				queryTopN, overlap, queryTopN, minQueryOverlap)
			return 1
		}
		if window.QPS >= sketch.QPS && window.Queries > 0 && sketch.Queries > 0 {
			// Sanity only: the windowed path does real merge work and
			// cannot plausibly beat the O(n) view read; if it does, a
			// measurement harness bug is more likely than a miracle.
			fmt.Fprintln(os.Stderr, "pmbench: REGRESSION: window path faster than view path; measurement suspect")
			return 1
		}
		fmt.Printf("ok: speedup %.1fx ≥ %.0fx, overlap %d/%d\n", speedup, MinQuerySpeedup, overlap, queryTopN)
	}
	return 0
}
