// Command pmbench measures the timing simulator's hot-path performance —
// ns/op, allocs/op, and simulated cycles and instructions per wall-clock
// second for one pipeline run per suite workload — and maintains the
// checked-in BENCH_hotpath.json baseline the CI smoke checks against.
//
//	pmbench                    # measure and print a table
//	pmbench -update            # measure and rewrite BENCH_hotpath.json
//	pmbench -check             # measure and fail on regression vs baseline
//	pmbench -queries [...]     # benchmark the query path instead (BENCH_query.json)
//
// Check mode compares allocs/op directly (it is machine-independent) and
// ns/op after rescaling by the calibration ratio: the baseline records the
// functional simulator's ns/op on the same machine that produced it, so a
// slower CI runner raises both numbers together and the comparison stays
// about the code, not the hardware. Either metric regressing beyond -tol
// (default 15%) fails the run.
//
// -queries switches to the collector query-path benchmark (see query.go):
// exact vs sketch hot-PC serving on a 1M-PC aggregate under merge flood,
// gated on the machine-independent speedup ratio in BENCH_query.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"profileme/internal/cpu"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

// benchScale is the per-workload dynamic instruction count. It matches
// BenchmarkPipeline in bench_test.go so the two report comparable numbers.
const benchScale = 100_000

// benchWorkloads are the suite members the baseline tracks: the same four
// BenchmarkPipeline exercises (a mix of loopy, branchy, and pointer-chasing
// kernels that covers the pipeline's hot paths).
var benchWorkloads = []string{"compress", "ijpeg", "li", "perl"}

// Measurement is one workload's pipeline-loop performance.
type Measurement struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`     // wall time per full pipeline run
	AllocsPerOp  float64 `json:"allocs_per_op"` // heap allocations per run
	BytesPerOp   float64 `json:"bytes_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec"` // simulated cycles / wall second
	InstPerSec   float64 `json:"inst_per_sec"`   // retired instructions / wall second
	Cycles       int64   `json:"cycles"`         // simulated cycles per run (deterministic)
	Retired      uint64  `json:"retired"`        // retired instructions per run (deterministic)
}

// Baseline is the BENCH_hotpath.json schema.
type Baseline struct {
	// Notes documents provenance: what the numbers mean and how to
	// regenerate them.
	Notes string `json:"notes"`
	// GoVersion and Scale pin the measurement conditions.
	GoVersion string `json:"go_version"`
	Scale     int    `json:"scale"`
	// CalibNsPerOp is the functional simulator's ns/op on the machine that
	// produced the baseline; check mode rescales ns/op comparisons by the
	// ratio of the current machine's calibration to this one.
	CalibNsPerOp float64 `json:"calib_ns_per_op"`
	// PreOptimization records the same measurements taken at the commit
	// before the hot-path pass, for the speedup bookkeeping; informational
	// only, never checked against.
	PreOptimization []Measurement `json:"pre_optimization,omitempty"`
	Workloads       []Measurement `json:"workloads"`
}

func main() {
	var (
		file    = flag.String("file", "BENCH_hotpath.json", "baseline file")
		update  = flag.Bool("update", false, "rewrite the baseline file with fresh measurements")
		check   = flag.Bool("check", false, "compare fresh measurements against the baseline; nonzero exit on regression")
		tol     = flag.Float64("tol", 0.15, "allowed fractional regression in ns/op (calibrated) and allocs/op")
		queries = flag.Bool("queries", false, "benchmark the collector query path (exact vs sketch) against BENCH_query.json")
		quick   = flag.Duration("queryfor", time.Second, "minimum measurement duration per query path in -queries mode")
	)
	flag.Parse()
	if *update && *check {
		fmt.Fprintln(os.Stderr, "pmbench: -update and -check are mutually exclusive")
		os.Exit(2)
	}
	if *queries {
		qfile := *file
		if qfile == "BENCH_hotpath.json" { // -file not set: queries mode has its own default
			qfile = "BENCH_query.json"
		}
		os.Exit(runQueryBench(qfile, *update, *check, *quick))
	}

	calib := measureCalibration()
	fmt.Printf("calibration (functional sim, %s): %.1f ms/op\n", benchWorkloads[0], calib/1e6)

	var ms []Measurement
	for _, name := range benchWorkloads {
		m := measureWorkload(name)
		ms = append(ms, m)
		fmt.Printf("%-10s %8.1f ms/op  %10.0f allocs/op  %12.3e cycles/s  %12.3e inst/s\n",
			m.Name, m.NsPerOp/1e6, m.AllocsPerOp, m.CyclesPerSec, m.InstPerSec)
	}

	switch {
	case *update:
		old, _ := readBaseline(*file) // keep pre-optimization provenance if present
		b := &Baseline{
			Notes: "Pipeline-loop performance baseline. Regenerate on the machine of " +
				"record with `go run ./cmd/pmbench -update` after any intentional " +
				"perf change; CI checks fresh measurements against this file with " +
				"`go run ./cmd/pmbench -check` (ns/op rescaled by the calibration " +
				"ratio, so the check tracks the code rather than runner speed).",
			GoVersion:    runtime.Version(),
			Scale:        benchScale,
			CalibNsPerOp: calib,
			Workloads:    ms,
		}
		if old != nil {
			b.PreOptimization = old.PreOptimization
		}
		if err := writeBaseline(*file, b); err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *file)
	case *check:
		base, err := readBaseline(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmbench:", err)
			os.Exit(1)
		}
		if err := checkAgainst(base, ms, calib, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "pmbench: REGRESSION:", err)
			os.Exit(1)
		}
		fmt.Printf("ok: within %.0f%% of baseline (calibration ratio %.2f)\n",
			*tol*100, calib/base.CalibNsPerOp)
	}
}

// measureCalibration times the functional simulator on the first
// benchmark workload — pure deterministic CPU work whose speed tracks the
// machine, giving check mode a unit to normalize ns/op by.
func measureCalibration() float64 {
	bench, _ := workload.ByName(benchWorkloads[0])
	prog := bench.Build(benchScale)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.New(prog).Run(0, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(r.NsPerOp())
}

// measureWorkload benchmarks one full pipeline run of the workload.
func measureWorkload(name string) Measurement {
	bench, ok := workload.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "pmbench: unknown workload %q\n", name)
		os.Exit(2)
	}
	prog := bench.Build(benchScale)
	var cycles int64
	var retired uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := sim.NewMachineSource(sim.New(prog), 0)
			pipe, err := cpu.New(prog, src, cpu.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			res, err := pipe.Run(0)
			if err != nil {
				b.Fatal(err)
			}
			cycles, retired = res.Cycles, res.Retired
		}
	})
	ns := float64(r.NsPerOp())
	return Measurement{
		Name:         name,
		NsPerOp:      ns,
		AllocsPerOp:  float64(r.AllocsPerOp()),
		BytesPerOp:   float64(r.AllocedBytesPerOp()),
		CyclesPerSec: float64(cycles) / (ns / 1e9),
		InstPerSec:   float64(retired) / (ns / 1e9),
		Cycles:       cycles,
		Retired:      retired,
	}
}

// checkAgainst fails if any workload's allocs/op or calibrated ns/op
// regressed beyond tol, or if the simulated cycle count changed at all
// (that is a determinism break, not a perf regression).
func checkAgainst(base *Baseline, ms []Measurement, calib, tol float64) error {
	if base.CalibNsPerOp <= 0 {
		return fmt.Errorf("baseline has no calibration measurement; regenerate with -update")
	}
	scale := calib / base.CalibNsPerOp
	byName := map[string]Measurement{}
	for _, m := range base.Workloads {
		byName[m.Name] = m
	}
	for _, m := range ms {
		want, ok := byName[m.Name]
		if !ok {
			return fmt.Errorf("%s: not in baseline; regenerate with -update", m.Name)
		}
		if want.Cycles != 0 && m.Cycles != want.Cycles {
			return fmt.Errorf("%s: simulated cycles changed %d -> %d (determinism break — regenerate the baseline only if intentional)",
				m.Name, want.Cycles, m.Cycles)
		}
		if limit := want.AllocsPerOp * (1 + tol); m.AllocsPerOp > limit {
			return fmt.Errorf("%s: allocs/op %.0f exceeds baseline %.0f by more than %.0f%%",
				m.Name, m.AllocsPerOp, want.AllocsPerOp, tol*100)
		}
		if limit := want.NsPerOp * scale * (1 + tol); m.NsPerOp > limit {
			return fmt.Errorf("%s: ns/op %.3e exceeds calibrated baseline %.3e (raw %.3e x machine ratio %.2f) by more than %.0f%%",
				m.Name, m.NsPerOp, want.NsPerOp*scale, want.NsPerOp, scale, tol*100)
		}
	}
	return nil
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func writeBaseline(path string, b *Baseline) error {
	return writeJSONFile(path, b)
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
