// Command pmrouter is the collector tier's frontend: a thin router that
// places shard submissions onto N pmsimd instances with a
// consistent-hash ring (virtual nodes, keyed by shard id) and answers
// hot-PC/estimate/stats queries by scatter-gathering every reachable
// instance.
//
// Robustness contract:
//
//   - Submissions go to the shard's ring owner; if the owner is down or
//     draining the router fails over along the ring, and a sticky
//     placement map sends retries back to the instance whose admission
//     ledger already knows the shard — failover never double-merges.
//   - Queries fan out with a per-instance deadline and hedged
//     stragglers; instances that cannot answer degrade the response to
//     an explicit partial ("partial": true + instances-missing count)
//     instead of an all-or-nothing 504.
//   - A background probe loop watches each instance's /readyz, so a
//     SIGKILL'd instance stops receiving traffic within a probe period
//     and a recovered one rejoins automatically; an instance whose WAL
//     has stalled reports 503 wal-stalled and is degraded the same way.
//   - With -witness, every accepted submission is also copied to the
//     shard's ring successor as a witness; a periodic anti-entropy
//     sweep (-anti-entropy-every) reconciles witness ledgers against
//     live instances, so an instance that loses its disk entirely can
//     be rebuilt from its peers' copies.
//   - Membership is elastic: POST /v1/membership/add and /remove grow
//     or shrink the ring live (no restarts). Every change bumps the
//     ring epoch; moved shard ranges are migrated through the handoff
//     envelope and their admission-ledger entries adopted BEFORE the
//     ring commits, so a submit raced against a migration is never
//     lost and never double-merged — at worst it gets a typed 409
//     wrong-owner carrying the current epoch, and the retry dedupes to
//     202+duplicate. Migration progress is exposed in /v1/stats.
//
// Example (3-instance tier):
//
//	pmsimd -addr :7070 -instance c0 -peers c1=http://localhost:7071,c2=http://localhost:7072
//	pmsimd -addr :7071 -instance c1 -peers c0=http://localhost:7070,c2=http://localhost:7072
//	pmsimd -addr :7072 -instance c2 -peers c0=http://localhost:7070,c1=http://localhost:7071
//	pmrouter -addr :7000 -instances c0=http://localhost:7070,c1=http://localhost:7071,c2=http://localhost:7072
//	pmsim -bench compress -fleet 4 -shards 16 -submit http://localhost:7000
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"profileme/internal/cluster"
	"profileme/internal/ingest"
	"profileme/internal/traffic"
)

func main() { os.Exit(run()) }

// parseInstances parses "id=url,id=url" into router instances.
func parseInstances(s string) ([]cluster.Instance, error) {
	if s == "" {
		return nil, fmt.Errorf("pmrouter: -instances is required (id=url,id=url,...)")
	}
	var out []cluster.Instance
	for _, part := range strings.Split(s, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("pmrouter: bad instance %q (want id=url)", part)
		}
		out = append(out, cluster.Instance{ID: id, BaseURL: strings.TrimRight(url, "/")})
	}
	return out, nil
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:7000", "listen address")
		instances = flag.String("instances", "", "collector instances as id=url,id=url,... (ring identity = id)")
		vnodes    = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per instance on the placement ring")
		seed      = flag.Uint64("seed", 0, "virtual-node layout seed (same seed re-derives the same ring)")
		deadline  = flag.Duration("query-deadline", 2*time.Second, "per-instance query leg deadline")
		hedge     = flag.Duration("hedge", 250*time.Millisecond, "straggler hedge delay (negative disables)")
		failures  = flag.Int("failure-threshold", 3, "consecutive transport failures that mark an instance down")
		probeEach = flag.Duration("probe-every", 2*time.Second, "active /readyz probe period (0 disables)")
		maxBody   = flag.Int64("max-body", 8<<20, "submission body size limit in bytes")

		witness = flag.Bool("witness", false, "replicate accepted submissions to the shard's ring successor as witness copies")
		aeEach  = flag.Duration("anti-entropy-every", 0, "witness anti-entropy sweep period (0 disables; requires -witness)")
		record  = flag.String("record", "", "tee every routed submission body into this trace file (tier offered load; replayable with pmtraffic replay)")
	)
	flag.Parse()

	ins, err := parseInstances(*instances)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	logw := ingest.NewSyncWriter(os.Stderr)
	rcfg := cluster.RouterConfig{
		Instances:        ins,
		VNodes:           *vnodes,
		Seed:             *seed,
		QueryDeadline:    *deadline,
		HedgeDelay:       *hedge,
		FailureThreshold: *failures,
		MaxBodyBytes:     *maxBody,
		Witness:          *witness,
		Log:              logw,
	}
	if *record != "" {
		// The router sees the whole tier's offered load in one place, so
		// a trace captured here replays an entire multi-fleet campaign.
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmrouter: -record:", err)
			return 2
		}
		w, err := traffic.NewWriter(f, traffic.Meta{Source: "pmrouter -record"})
		if err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "pmrouter: -record:", err)
			return 2
		}
		cw := traffic.NewCaptureWriter(w)
		rcfg.Capture = cw.Capture
		defer func() {
			if err := cw.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "pmrouter: -record capture:", err)
			}
			if err := f.Sync(); err != nil {
				fmt.Fprintln(os.Stderr, "pmrouter: -record sync:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pmrouter: -record close:", err)
			}
			fmt.Printf("pmrouter: %d submissions recorded to %s\n", cw.Count(), *record)
		}()
	}
	rt, err := cluster.NewRouter(rcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmrouter:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmrouter:", err)
		return 1
	}
	// Printed to stdout so scripts (and the smoke test) can scrape the
	// bound port when -addr uses :0.
	fmt.Printf("pmrouter: listening on %s (%d instances)\n", ln.Addr(), len(ins))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *probeEach > 0 {
		go func() {
			ticker := time.NewTicker(*probeEach)
			defer ticker.Stop()
			rt.Probe(ctx)
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					rt.Probe(ctx)
				}
			}
		}()
	}

	if *aeEach > 0 {
		if !*witness {
			fmt.Fprintln(os.Stderr, "pmrouter: -anti-entropy-every requires -witness")
			return 2
		}
		go func() {
			ticker := time.NewTicker(*aeEach)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					rep := rt.AntiEntropy(ctx)
					if rep.Resubmitted > 0 || rep.Errors > 0 {
						fmt.Fprintf(logw, "pmrouter: anti-entropy: %d resubmitted, %d pruned, %d errors\n",
							rep.Resubmitted, rep.Pruned, rep.Errors)
					}
				}
			}
		}()
	}

	httpSrv := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "pmrouter:", err)
		return 1
	}
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pmrouter: shutdown:", err)
	}
	// Let any in-flight witness forwards land before reporting; copies
	// that were still queued when the socket closed are the anti-entropy
	// sweep's job next time the tier runs.
	rt.WitnessFlush()
	st := rt.Stats()
	fmt.Printf("pmrouter: exiting: %d submissions routed, %d failovers, %d hedges, %d partial responses\n",
		st.Submits, st.Failovers, st.Hedges, st.PartialsServed)
	return 0
}
