package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"profileme/internal/cluster"
	"profileme/internal/core"
	"profileme/internal/ingest"
	"profileme/internal/profile"
)

// The tier smoke runs the real thing: two pmsimd collector processes
// (built from this module) fronted by a real pmrouter process (this test
// binary re-execed). One collector — running a WAL — is SIGKILLed; the
// router must serve explicit partial results and fail submissions over.
// The collector is then restarted at the same address with the same WAL
// dir, and must recover EVERYTHING it acknowledged before the kill:
// retries of its shards dedupe to 202+duplicate, and the final fleet
// rollup reproduces Σ captured over every distinct shard exactly — the
// kill is not allowed to destroy a single acknowledged sample. Finally
// the surviving peer is SIGTERMed and must hand its aggregate to the
// restarted instance, losing zero samples.

const (
	smokeHelperEnv = "PMROUTER_SMOKE_HELPER"
	smokeArgsEnv   = "PMROUTER_SMOKE_ARGS"
)

// TestPmrouterHelperProcess is the child side: it becomes the router
// daemon when re-execed by TestTierSmoke.
func TestPmrouterHelperProcess(t *testing.T) {
	if os.Getenv(smokeHelperEnv) != "1" {
		t.Skip("helper process; driven by TestTierSmoke")
	}
	os.Args = append([]string{"pmrouter"}, strings.Fields(os.Getenv(smokeArgsEnv))...)
	os.Exit(run())
}

// daemon is one child process whose stdout banner announces its address.
type daemon struct {
	cmd   *exec.Cmd
	addr  string
	mu    sync.Mutex
	lines []string
}

func (d *daemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return strings.Join(d.lines, "\n")
}

// startDaemon launches argv, scrapes "<banner><addr>" from stdout, and
// keeps collecting output for later assertions.
func startDaemon(t *testing.T, banner string, env []string, argv ...string) *daemon {
	t.Helper()
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = env
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() { cmd.Process.Kill() })
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.lines = append(d.lines, line)
			d.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, banner); ok {
				select {
				case addrCh <- strings.Fields(rest)[0]:
				default:
				}
			}
		}
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(15 * time.Second):
		t.Fatalf("%s never announced its listen address", argv[0])
	}
	return d
}

// smokeShard builds a tier-compatible shard (interval 16, width 4).
func smokeShard(seed uint64, samples int) *profile.DB {
	db := profile.NewDB(16, 0, 4)
	for i := 0; i < samples; i++ {
		r := core.Record{PC: 0x400 + 8*((seed+uint64(i)*3)%11), LoadComplete: -1}
		for j := range r.StageCycle {
			r.StageCycle[j] = -1
		}
		r.StageCycle[core.StageFetch] = int64(i)
		r.StageCycle[core.StageRetire] = int64(i + 9)
		r.Events = core.EvRetired
		db.Add(core.Sample{First: r})
	}
	return db
}

type smokeSubmitResp struct {
	status    int
	Duplicate bool   `json:"duplicate"`
	Instance  string `json:"instance"`
}

func smokeSubmit(t *testing.T, routerURL, shard string, db *profile.DB) (smokeSubmitResp, error) {
	t.Helper()
	body, err := ingest.EncodeSubmit(shard, db)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerURL+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return smokeSubmitResp{}, err
	}
	defer resp.Body.Close()
	out := smokeSubmitResp{status: resp.StatusCode}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return smokeSubmitResp{}, err
	}
	return out, nil
}

func smokeGet(t *testing.T, url string) (int, map[string]any, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &m); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, m, nil
}

func TestTierSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short mode")
	}
	dir := t.TempDir()
	env := os.Environ()

	// Build the collector binary once from this module.
	pmsimd := filepath.Join(dir, "pmsimd")
	if out, err := exec.Command("go", "build", "-o", pmsimd, "profileme/cmd/pmsimd").CombinedOutput(); err != nil {
		t.Fatalf("building pmsimd: %v\n%s", err, out)
	}

	// Process 1: collector c0 (will be SIGKILLed and restarted). It runs
	// a WAL + checkpoint so the kill destroys nothing it acknowledged.
	c0Args := []string{
		"-addr", "127.0.0.1:0", "-instance", "c0", "-interval", "16", "-queue", "64",
		"-wal-dir", filepath.Join(dir, "wal0"),
		"-checkpoint", filepath.Join(dir, "agg0.db"), "-checkpoint-every", "2",
	}
	d0 := startDaemon(t, "pmsimd: listening on ", env, append([]string{pmsimd}, c0Args...)...)
	url0 := "http://" + d0.addr

	// Process 2: collector c1, with c0 as its drain-handoff peer.
	d1 := startDaemon(t, "pmsimd: listening on ", env, pmsimd,
		"-addr", "127.0.0.1:0", "-instance", "c1", "-interval", "16", "-queue", "64",
		"-peers", "c0="+url0)
	url1 := "http://" + d1.addr

	// Process 3: the router (this test binary re-execed as pmrouter),
	// with a fast probe loop so kill/recovery are observed quickly.
	routerArgs := fmt.Sprintf("-addr 127.0.0.1:0 -instances c0=%s,c1=%s -probe-every 100ms -failure-threshold 2",
		url0, url1)
	router := startDaemon(t, "pmrouter: listening on ",
		append(env, smokeHelperEnv+"=1", smokeArgsEnv+"="+routerArgs),
		os.Args[0], "-test.run=TestPmrouterHelperProcess$")
	front := "http://" + router.addr

	// Pick shard ids with known owners on the default ring (the router
	// runs default vnodes/seed), so both instances receive work.
	ring := cluster.NewRing(0, 0)
	ring.Add("c0")
	ring.Add("c1")
	shardsOf := map[string][]string{}
	for i := 0; len(shardsOf["c0"]) < 3 || len(shardsOf["c1"]) < 3; i++ {
		s := fmt.Sprintf("smoke/s%03d", i)
		owner, _ := ring.Owner(s)
		if len(shardsOf[owner]) < 3 {
			shardsOf[owner] = append(shardsOf[owner], s)
		}
	}

	// Submit three shards per instance through the router; all must land
	// on their ring owner. Keep the exact payloads around so post-crash
	// retries can be replayed bit-identically.
	captured := map[string]uint64{}
	payload := map[string]*profile.DB{}
	seed := uint64(1)
	for owner, ss := range shardsOf {
		for _, s := range ss {
			db := smokeShard(seed, 40+int(seed))
			seed++
			captured[s] = db.Samples() + db.Lost()
			payload[s] = db
			got, err := smokeSubmit(t, front, s, db)
			if err != nil || got.status != http.StatusAccepted {
				t.Fatalf("submit %s: %v status %d", s, err, got.status)
			}
			if got.Instance != owner {
				t.Fatalf("shard %s landed on %s, ring owner is %s", s, got.Instance, owner)
			}
		}
	}
	status, hot, err := smokeGet(t, front+"/v1/hotpcs?n=5")
	if err != nil || status != http.StatusOK || hot["partial"].(bool) {
		t.Fatalf("healthy tier hotpcs: %v status %d partial %v", err, status, hot["partial"])
	}

	// SIGKILL c0. The router must keep serving — partial — and fail new
	// c0-owned submissions over to c1.
	if err := d0.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d0.cmd.Wait()

	failoverShard := ""
	for i := 1000; ; i++ {
		s := fmt.Sprintf("smoke/s%03d", i)
		if owner, _ := ring.Owner(s); owner == "c0" {
			failoverShard = s
			break
		}
	}
	fdb := smokeShard(99, 70)
	captured[failoverShard] = fdb.Samples() + fdb.Lost()
	deadline := time.Now().Add(20 * time.Second)
	for {
		got, err := smokeSubmit(t, front, failoverShard, fdb)
		if err == nil && got.status == http.StatusAccepted {
			if got.Instance != "c1" {
				t.Fatalf("failover submission landed on %s, want c1", got.Instance)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover submission never accepted (last: %v %+v)", err, got)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for {
		status, hot, err = smokeGet(t, front+"/v1/hotpcs?n=5")
		if err == nil && status == http.StatusOK && hot["partial"].(bool) {
			break // explicit degradation, not a 504
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never served explicit partial results after the kill (last: %v %d %v)", err, status, hot)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Recovery: restart c0 at the SAME address (its ring identity and its
	// peers' -peers flags both point there) with the SAME WAL dir and
	// checkpoint, so everything it acknowledged before the kill is
	// replayed; the probe loop revives it.
	restartArgs := append([]string{}, c0Args...)
	restartArgs[1] = d0.addr // pin the original address
	d0 = startDaemon(t, "pmsimd: listening on ", env, append([]string{pmsimd}, restartArgs...)...)

	// Post-crash dedupe: retrying a shard c0 acknowledged before the kill
	// must come back 202 with duplicate=true — the admission ledger
	// survived the SIGKILL via checkpoint+WAL replay.
	retry := shardsOf["c0"][0]
	got, err := smokeSubmit(t, "http://"+d0.addr, retry, payload[retry])
	if err != nil || got.status != http.StatusAccepted {
		t.Fatalf("post-crash retry of %s: %v status %d", retry, err, got.status)
	}
	if !got.Duplicate {
		t.Fatalf("post-crash retry of %s was not deduplicated: %+v (WAL replay lost the admission ledger)", retry, got)
	}
	for {
		status, hot, err = smokeGet(t, front+"/v1/hotpcs?n=5")
		if err == nil && status == http.StatusOK && !hot["partial"].(bool) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never recovered after c0 restart (last: %v %d %v)", err, status, hot)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Graceful drain of c1: SIGTERM → flush → handoff to its ring peer
	// c0 → clean exit, no samples lost. After the drain the fleet is c0
	// alone, holding its own WAL-recovered shards plus everything c1
	// migrated — i.e. every sample ever acknowledged by the tier. The
	// conservation check is exact: the SIGKILL destroyed nothing.
	var wantTotal uint64
	for _, c := range captured {
		wantTotal += c
	}
	if err := d1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- d1.cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("c1 did not exit cleanly after SIGTERM: %v\n%s", err, d1.output())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("c1 did not exit within the drain budget")
	}
	if out := d1.output(); !strings.Contains(out, "handed off to c0") {
		t.Fatalf("c1 drain did not hand off to c0:\n%s", out)
	}

	// The restarted c0 now carries its own recovered shards plus c1's
	// whole aggregate; the router's fleet rollup (partial: c1 is gone)
	// must reproduce Σ captured over every distinct shard exactly.
	for {
		status, stats, err := smokeGet(t, front+"/v1/stats")
		if err == nil && status == http.StatusOK {
			fleet := stats["fleet"].(map[string]any)
			if uint64(fleet["handoffs_in"].(float64)) == 1 &&
				uint64(fleet["samples"].(float64)+fleet["lost"].(float64)) == wantTotal {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet rollup never reached exact conservation (want %d captured)", wantTotal)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The router itself drains cleanly.
	if err := router.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	go func() { waited <- router.cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("router did not exit cleanly: %v\n%s", err, router.output())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not exit after SIGTERM")
	}
}
