package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"profileme/internal/core"
	"profileme/internal/ingest"
	"profileme/internal/profile"
)

// The end-to-end smoke uses the helper-process pattern (like the
// runner's crash test): the parent re-execs this test binary as a real
// pmsimd daemon, submits two shards over real HTTP, queries the hot-PC
// ranking, then SIGTERMs the daemon and verifies the drain: clean exit,
// drain banner, and a CRC-valid final checkpoint carrying both shards.

const (
	smokeHelperEnv = "PMSIMD_SMOKE_HELPER"
	smokeDirEnv    = "PMSIMD_SMOKE_DIR"
)

// TestPmsimdHelperProcess is the child side: it becomes the daemon when
// re-execed by TestPmsimdSmoke.
func TestPmsimdHelperProcess(t *testing.T) {
	if os.Getenv(smokeHelperEnv) != "1" {
		t.Skip("helper process; driven by TestPmsimdSmoke")
	}
	os.Args = []string{"pmsimd",
		"-addr", "127.0.0.1:0",
		"-checkpoint", filepath.Join(os.Getenv(smokeDirEnv), "agg.db"),
		"-interval", "16",
		"-queue", "8",
	}
	os.Exit(run())
}

// smokeShard builds a daemon-compatible shard (interval 16, width 4).
func smokeShard(seed uint64, samples int) *profile.DB {
	db := profile.NewDB(16, 0, 4)
	for i := 0; i < samples; i++ {
		r := core.Record{PC: 0x400 + 8*((seed+uint64(i)*3)%11), LoadComplete: -1}
		for j := range r.StageCycle {
			r.StageCycle[j] = -1
		}
		r.StageCycle[core.StageFetch] = int64(i)
		r.StageCycle[core.StageRetire] = int64(i + 9)
		r.Events = core.EvRetired
		db.Add(core.Sample{First: r})
	}
	return db
}

func TestPmsimdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke skipped in -short mode")
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=TestPmsimdHelperProcess$")
	cmd.Env = append(os.Environ(), smokeHelperEnv+"=1", smokeDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Scrape the bound address from the daemon's banner; keep collecting
	// the rest of stdout for the drain assertions.
	addrCh := make(chan string, 1)
	var outMu sync.Mutex
	var outLines []string
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			outMu.Lock()
			outLines = append(outLines, line)
			outMu.Unlock()
			if rest, ok := strings.CutPrefix(line, "pmsimd: listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its listen address")
	}

	// Submit two shards and account their totals.
	var wantSamples uint64
	for i, samples := range []int{30, 50} {
		db := smokeShard(uint64(i), samples)
		wantSamples += db.Samples()
		body, err := ingest.EncodeSubmit(fmt.Sprintf("smoke/s%03d", i), db)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/submit", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}

	// The live daemon answers queries.
	resp, err := http.Get(base + "/v1/hotpcs?n=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hotpcs: status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: status %d", resp.StatusCode)
	}

	// SIGTERM → graceful drain → exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("daemon did not exit cleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within the drain budget")
	}
	outMu.Lock()
	banner := strings.Join(outLines, "\n")
	outMu.Unlock()
	if !strings.Contains(banner, "drained cleanly") {
		t.Fatalf("no drain banner in daemon output:\n%s", banner)
	}

	// The final checkpoint is CRC-valid and carries both shards.
	loaded, err := profile.LoadFile(filepath.Join(dir, "agg.db"))
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if loaded.Samples() != wantSamples {
		t.Fatalf("checkpoint samples %d, want %d", loaded.Samples(), wantSamples)
	}
	if loaded.Lost() != 0 {
		t.Fatalf("checkpoint lost %d, want 0 (nothing was refused)", loaded.Lost())
	}
}
