// Command pmsimd is the profile collection daemon: a long-running
// HTTP/JSON service that accepts per-shard ProfileMe database
// submissions from fleet workers (pmsim -fleet ... -submit URL) and
// serves loss-corrected hot-PC and estimator queries while the campaign
// is still running.
//
// Robustness is the headline, not a feature flag:
//
//   - Ingest goes through a bounded queue with an explicit overflow
//     policy (-overflow reject → 429 backpressure; drop-oldest →
//     freshness under overload). Either way the refused shard's captured
//     samples are recorded as aggregate loss, so overload degrades the
//     estimates' precision — never their centring.
//   - Persistence sits behind a circuit breaker: a dying disk suspends
//     checkpoints (and flips /readyz) instead of stalling ingest.
//   - Queries carry per-request deadlines and a concurrency high-water
//     mark; excess load is shed with 503 + Retry-After.
//   - SIGINT/SIGTERM starts a graceful drain: readiness flips, new
//     submissions get 503 (accounted), in-flight requests finish, the
//     queue is flushed, and a final atomic checkpoint is written.
//   - With -wal-dir, the 202 is a durability contract: the submission is
//     group-committed to a write-ahead log BEFORE it is acknowledged,
//     and a restart after kill -9 replays checkpoint+WAL so nothing
//     acknowledged is lost and post-crash retries dedupe to
//     202+duplicate.
//   - The instance is a migration endpoint for the router's elastic
//     membership: /v1/handoff/export seals and snapshots its books,
//     /v1/handoff (accept) merges a peer's envelope exactly once, and
//     /v1/ledger/adopt installs dedupe obligations for shard ids whose ring
//     ownership moved here — all idempotent, all WAL-durable, so a
//     membership change interrupted at any point is safe to retry.
//
// Example:
//
//	pmsimd -addr :7070 -checkpoint /var/lib/pmsim/agg.db -interval 512
//	pmsim -bench compress -fleet 4 -shards 16 -submit http://localhost:7070
//	curl localhost:7070/v1/hotpcs?n=10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"profileme/internal/cluster"
	"profileme/internal/ingest"
	"profileme/internal/profile"
	"profileme/internal/server"
	"profileme/internal/traffic"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		queue     = flag.Int("queue", 64, "ingest queue depth (bounded admission)")
		overflow  = flag.String("overflow", "reject", "queue overflow policy: reject (429) | drop-oldest")
		ckpt      = flag.String("checkpoint", "", "aggregate checkpoint file (atomic writes; reloaded on restart)")
		ckptEvery = flag.Int("checkpoint-every", 8, "checkpoint after this many merged submissions")
		interval  = flag.Float64("interval", 512, "aggregate mean sampling interval (must match submitting shards)")
		window    = flag.Int("window", 0, "aggregate paired-sampling window W")
		width     = flag.Int("width", 4, "aggregate sustained issue width C")

		queryDeadline = flag.Duration("query-deadline", 2*time.Second, "per-query deadline")
		maxQueries    = flag.Int("max-queries", 32, "query concurrency high-water mark (excess is shed with 503)")
		maxBody       = flag.Int64("max-body", 8<<20, "submission body size limit in bytes")

		brkFails    = flag.Int("breaker-failures", 3, "consecutive checkpoint failures that open the circuit breaker")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "breaker open period before a half-open probe")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget after SIGTERM")

		walDir     = flag.String("wal-dir", "", "write-ahead log directory: every 202 is durable before it is sent, and restart replays checkpoint+WAL ('' = no WAL)")
		fsyncWin   = flag.Duration("fsync-window", 0, "group-commit coalescing window (0 = natural batching: a submit joins the in-flight fsync)")
		walSegSize = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size (0 = 8 MiB default)")
		walSegAge  = flag.Duration("wal-segment-age", 0, "WAL segment rotation age (0 = size-only rotation)")
		walStall   = flag.Duration("wal-stall", 0, "pending-fsync age after which /readyz reports wal-stalled (0 = 10s default)")

		sketchTopK   = flag.Int("sketch-topk", 512, "hot-PC sketch capacity K: /v1/hotpcs serves n<=K lock-free from the published view")
		winBuckets   = flag.Int("sketch-window-buckets", 60, "windowed-query ring buckets (horizon = buckets x bucket duration)")
		winBucketDur = flag.Duration("sketch-window-bucket", time.Second, "windowed-query ring bucket duration")

		record   = flag.String("record", "", "tee every decodable submission body into this trace file (offered load, pre-admission; replayable with pmtraffic replay)")
		instance = flag.String("instance", "", "tier instance id (ring identity; enables clustered drain handoff with -peers)")
		peers    = flag.String("peers", "", "ring peers as id=url,id=url,... — a graceful drain hands the aggregate to the ring successor")
		vnodes   = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per instance on the placement ring (must match the router)")
		ringSeed = flag.Uint64("ring-seed", 0, "virtual-node layout seed (must match the router)")
	)
	flag.Parse()

	peerURLs := make(map[string]string)
	if *peers != "" {
		if *instance == "" {
			fmt.Fprintln(os.Stderr, "pmsimd: -peers requires -instance")
			return 2
		}
		for _, part := range strings.Split(*peers, ",") {
			id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok || id == "" || url == "" {
				fmt.Fprintf(os.Stderr, "pmsimd: bad peer %q (want id=url)\n", part)
				return 2
			}
			if id == *instance {
				continue // tolerate self in a shared peer list
			}
			peerURLs[id] = strings.TrimRight(url, "/")
		}
	}

	policy, err := ingest.ParsePolicy(*overflow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 2
	}

	// One mutex'd writer for every component's log lines: under a tier
	// soak several instances share one stderr, and attribution requires
	// whole, instance-tagged lines.
	logw := ingest.NewSyncWriter(os.Stderr)

	icfg := ingest.Config{
		QueueDepth:          *queue,
		Policy:              policy,
		Interval:            *interval,
		Window:              *window,
		Width:               *width,
		CheckpointPath:      *ckpt,
		CheckpointEvery:     *ckptEvery,
		BreakerThreshold:    *brkFails,
		BreakerCooldown:     *brkCooldown,
		WALDir:              *walDir,
		FsyncWindow:         *fsyncWin,
		WALSegmentBytes:     *walSegSize,
		WALSegmentAge:       *walSegAge,
		WALStallAfter:       *walStall,
		SketchTopK:          *sketchTopK,
		SketchWindowBuckets: *winBuckets,
		SketchWindowBucket:  *winBucketDur,
		Log:                 logw,
	}

	var svc *ingest.Service
	if *walDir != "" {
		// WAL mode: Recover owns the whole restart story — it loads the
		// checkpoint (quarantining a damaged one), replays the WAL tail
		// past the barrier, truncates a torn tail, and rebuilds both the
		// aggregate and the admission ledger so post-crash retries dedupe.
		var rinfo ingest.RecoveryInfo
		svc, rinfo, err = ingest.Recover(icfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmsimd:", err)
			return 1
		}
		if rinfo.CheckpointQuarantined {
			fmt.Fprintf(os.Stderr, "pmsimd: checkpoint unusable; quarantined to %s.corrupt, recovering from WAL alone\n", *ckpt)
		}
		st := svc.Stats()
		fmt.Printf("pmsimd: recovered: checkpoint=%v, %d WAL records replayed in %s (%d segments, truncated=%v); aggregate %d samples, %d lost\n",
			rinfo.CheckpointLoaded, rinfo.Replayed, rinfo.Replay.Duration.Round(time.Millisecond),
			rinfo.Replay.Segments, rinfo.Replay.Truncated, st.Samples, st.Lost)
	} else {
		// A previous aggregate at the checkpoint path is the seed — restart
		// continues the campaign. A damaged one is quarantined, never merged.
		var seed *profile.DB
		if *ckpt != "" {
			switch db, err := profile.LoadFile(*ckpt); {
			case err == nil:
				seed = db
				fmt.Fprintf(os.Stderr, "pmsimd: resumed aggregate from %s (%d samples, %d lost)\n",
					*ckpt, db.Samples(), db.Lost())
			case os.IsNotExist(errors.Unwrap(err)) || errors.Is(err, os.ErrNotExist):
				// Fresh start.
			case errors.Is(err, profile.ErrCorrupt) || errors.Is(err, profile.ErrTruncated) ||
				errors.Is(err, profile.ErrVersionSkew):
				quarantine := *ckpt + ".corrupt"
				if rerr := os.Rename(*ckpt, quarantine); rerr == nil {
					fmt.Fprintf(os.Stderr, "pmsimd: checkpoint unusable (%v); quarantined to %s, starting fresh\n", err, quarantine)
				} else {
					fmt.Fprintf(os.Stderr, "pmsimd: checkpoint unusable (%v) and quarantine failed (%v); starting fresh\n", err, rerr)
				}
			default:
				fmt.Fprintln(os.Stderr, "pmsimd:", err)
				return 1
			}
		}
		svc, err = ingest.NewService(icfg, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmsimd:", err)
			return 2
		}
	}
	svc.Start()

	scfg := server.Config{
		Instance:      *instance,
		MaxBodyBytes:  *maxBody,
		QueryDeadline: *queryDeadline,
		MaxQueries:    *maxQueries,
		Log:           logw,
	}
	if *record != "" {
		// Capture sees every decodable submission before admission — the
		// trace is the collector's offered load, duplicates and refused
		// shards included, which is exactly what a faithful replay needs.
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmsimd: -record:", err)
			return 2
		}
		w, err := traffic.NewWriter(f, traffic.Meta{Source: "pmsimd -record"})
		if err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "pmsimd: -record:", err)
			return 2
		}
		cw := traffic.NewCaptureWriter(w)
		scfg.Capture = cw.Capture
		defer func() {
			if err := cw.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "pmsimd: -record capture:", err)
			}
			if err := f.Sync(); err != nil {
				fmt.Fprintln(os.Stderr, "pmsimd: -record sync:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pmsimd: -record close:", err)
			}
			fmt.Printf("pmsimd: %d submissions recorded to %s\n", cw.Count(), *record)
		}()
	}
	srv := server.New(scfg, svc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 1
	}
	// Printed to stdout so scripts (and the smoke test) can scrape the
	// bound port when -addr uses :0.
	fmt.Printf("pmsimd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 1
	}
	stop()

	// Graceful drain: refuse new work first (readiness flips, late
	// submissions are 503'd WITH loss accounting), let in-flight requests
	// finish, flush the queue — then either hand the aggregate to the
	// ring successor (clustered: a rolling restart loses zero samples) or
	// write the final atomic checkpoint (standalone durability).
	fmt.Fprintln(os.Stderr, "pmsimd: signal received, draining (stop accepting → flush queue → handoff or final checkpoint)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	svc.BeginDrain()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd: http shutdown:", err)
	}
	if err := svc.Flush(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 1
	}
	if len(peerURLs) > 0 {
		// A transiently unreachable successor (restarting, mid-probe) must
		// not demote a clean handoff to a local checkpoint, so the ring
		// walk retries briefly inside the drain budget before giving up.
		var res cluster.HandoffResult
		var err error
		for attempt := 0; ; attempt++ {
			res, err = cluster.DrainHandoff(drainCtx, svc, nil, *instance, peerURLs, *vnodes, *ringSeed, logw)
			if err == nil || attempt >= 2 || drainCtx.Err() != nil {
				break
			}
			select {
			case <-drainCtx.Done():
			case <-time.After(250 * time.Millisecond):
			}
		}
		if err != nil {
			// Every peer refused or was unreachable: fall back to local
			// durability — the checkpoint keeps the aggregate recoverable.
			fmt.Fprintf(os.Stderr, "pmsimd: %v; falling back to local checkpoint\n", err)
		} else {
			// The samples now live exactly once, at the successor. A
			// checkpoint or WAL left behind would double-count them on
			// restart; quarantine both instead of deleting history.
			if *ckpt != "" {
				if _, statErr := os.Stat(*ckpt); statErr == nil {
					if err := os.Rename(*ckpt, *ckpt+".handedoff"); err != nil {
						fmt.Fprintf(os.Stderr, "pmsimd: could not retire checkpoint after handoff: %v\n", err)
					}
				}
			}
			if *walDir != "" {
				if err := svc.QuarantineWALDir(".handedoff"); err != nil {
					fmt.Fprintf(os.Stderr, "pmsimd: could not retire WAL after handoff: %v\n", err)
				}
			}
			st := svc.Stats()
			fmt.Printf("pmsimd: drained cleanly: %d shards merged; aggregate (%d samples, %d lost) handed off to %s\n",
				st.Merged, st.Samples, st.Lost, res.Instance)
			return 0
		}
	}
	if err := svc.FinalCheckpoint(); err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 1
	}
	// A clean WAL close flushes any pending group commit; the log stays
	// on disk — the next start replays anything past the final barrier.
	if err := svc.CloseWAL(); err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd: wal close:", err)
	}
	st := svc.Stats()
	fmt.Printf("pmsimd: drained cleanly: %d shards merged, %d rejected, %d dropped; %d samples aggregated, %d lost (%.1f%% loss)\n",
		st.Merged, st.OverloadRejected, st.OverloadDropped, st.Samples, st.Lost, 100*st.LossRate)
	if *ckpt != "" {
		fmt.Printf("pmsimd: final checkpoint at %s\n", *ckpt)
	}
	return 0
}
