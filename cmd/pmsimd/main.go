// Command pmsimd is the profile collection daemon: a long-running
// HTTP/JSON service that accepts per-shard ProfileMe database
// submissions from fleet workers (pmsim -fleet ... -submit URL) and
// serves loss-corrected hot-PC and estimator queries while the campaign
// is still running.
//
// Robustness is the headline, not a feature flag:
//
//   - Ingest goes through a bounded queue with an explicit overflow
//     policy (-overflow reject → 429 backpressure; drop-oldest →
//     freshness under overload). Either way the refused shard's captured
//     samples are recorded as aggregate loss, so overload degrades the
//     estimates' precision — never their centring.
//   - Persistence sits behind a circuit breaker: a dying disk suspends
//     checkpoints (and flips /readyz) instead of stalling ingest.
//   - Queries carry per-request deadlines and a concurrency high-water
//     mark; excess load is shed with 503 + Retry-After.
//   - SIGINT/SIGTERM starts a graceful drain: readiness flips, new
//     submissions get 503 (accounted), in-flight requests finish, the
//     queue is flushed, and a final atomic checkpoint is written.
//
// Example:
//
//	pmsimd -addr :7070 -checkpoint /var/lib/pmsim/agg.db -interval 512
//	pmsim -bench compress -fleet 4 -shards 16 -submit http://localhost:7070
//	curl localhost:7070/v1/hotpcs?n=10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"profileme/internal/ingest"
	"profileme/internal/profile"
	"profileme/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		queue     = flag.Int("queue", 64, "ingest queue depth (bounded admission)")
		overflow  = flag.String("overflow", "reject", "queue overflow policy: reject (429) | drop-oldest")
		ckpt      = flag.String("checkpoint", "", "aggregate checkpoint file (atomic writes; reloaded on restart)")
		ckptEvery = flag.Int("checkpoint-every", 8, "checkpoint after this many merged submissions")
		interval  = flag.Float64("interval", 512, "aggregate mean sampling interval (must match submitting shards)")
		window    = flag.Int("window", 0, "aggregate paired-sampling window W")
		width     = flag.Int("width", 4, "aggregate sustained issue width C")

		queryDeadline = flag.Duration("query-deadline", 2*time.Second, "per-query deadline")
		maxQueries    = flag.Int("max-queries", 32, "query concurrency high-water mark (excess is shed with 503)")
		maxBody       = flag.Int64("max-body", 8<<20, "submission body size limit in bytes")

		brkFails    = flag.Int("breaker-failures", 3, "consecutive checkpoint failures that open the circuit breaker")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "breaker open period before a half-open probe")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget after SIGTERM")
	)
	flag.Parse()

	policy, err := ingest.ParsePolicy(*overflow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 2
	}

	// A previous aggregate at the checkpoint path is the seed — restart
	// continues the campaign. A damaged one is quarantined, never merged.
	var seed *profile.DB
	if *ckpt != "" {
		switch db, err := profile.LoadFile(*ckpt); {
		case err == nil:
			seed = db
			fmt.Fprintf(os.Stderr, "pmsimd: resumed aggregate from %s (%d samples, %d lost)\n",
				*ckpt, db.Samples(), db.Lost())
		case os.IsNotExist(errors.Unwrap(err)) || errors.Is(err, os.ErrNotExist):
			// Fresh start.
		case errors.Is(err, profile.ErrCorrupt) || errors.Is(err, profile.ErrTruncated) ||
			errors.Is(err, profile.ErrVersionSkew):
			quarantine := *ckpt + ".corrupt"
			if rerr := os.Rename(*ckpt, quarantine); rerr == nil {
				fmt.Fprintf(os.Stderr, "pmsimd: checkpoint unusable (%v); quarantined to %s, starting fresh\n", err, quarantine)
			} else {
				fmt.Fprintf(os.Stderr, "pmsimd: checkpoint unusable (%v) and quarantine failed (%v); starting fresh\n", err, rerr)
			}
		default:
			fmt.Fprintln(os.Stderr, "pmsimd:", err)
			return 1
		}
	}

	svc, err := ingest.NewService(ingest.Config{
		QueueDepth:       *queue,
		Policy:           policy,
		Interval:         *interval,
		Window:           *window,
		Width:            *width,
		CheckpointPath:   *ckpt,
		CheckpointEvery:  *ckptEvery,
		BreakerThreshold: *brkFails,
		BreakerCooldown:  *brkCooldown,
		Log:              os.Stderr,
	}, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 2
	}
	svc.Start()

	srv := server.New(server.Config{
		MaxBodyBytes:  *maxBody,
		QueryDeadline: *queryDeadline,
		MaxQueries:    *maxQueries,
		Log:           os.Stderr,
	}, svc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 1
	}
	// Printed to stdout so scripts (and the smoke test) can scrape the
	// bound port when -addr uses :0.
	fmt.Printf("pmsimd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 1
	}
	stop()

	// Graceful drain: refuse new work first (readiness flips, late
	// submissions are 503'd WITH loss accounting), let in-flight requests
	// finish, flush the queue, then the final atomic checkpoint.
	fmt.Fprintln(os.Stderr, "pmsimd: signal received, draining (stop accepting → flush queue → final checkpoint)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	svc.BeginDrain()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd: http shutdown:", err)
	}
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pmsimd:", err)
		return 1
	}
	st := svc.Stats()
	fmt.Printf("pmsimd: drained cleanly: %d shards merged, %d rejected, %d dropped; %d samples aggregated, %d lost (%.1f%% loss)\n",
		st.Merged, st.OverloadRejected, st.OverloadDropped, st.Samples, st.Lost, 100*st.LossRate)
	if *ckpt != "" {
		fmt.Printf("pmsimd: final checkpoint at %s\n", *ckpt)
	}
	return 0
}
