package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"profileme/internal/ingest"
	"profileme/internal/profile"
)

// The kill -9 loop is the durability acceptance test: a WAL-backed
// pmsimd is SIGKILLed at five random points while a flooder hammers
// /v1/submit, restarting from the same checkpoint+WAL each time. The
// submission contract under test is exactly the one clients rely on:
//
//   - every 202 is durable — no acknowledged sample may be destroyed by
//     a kill at any instruction;
//   - a retry of anything already acknowledged dedupes to
//     202+duplicate, even across a crash (the admission ledger is
//     recovered, not just the counters);
//   - a submission whose connection died mid-kill has unknown fate and
//     is simply retried — the ledger makes the retry idempotent.
//
// After the final restart every shard ever generated has been
// acknowledged exactly once, so conservation is EXACT: the aggregate's
// Samples+Lost equals Σ captured over the distinct shards, with zero
// crash-attributed loss.

const (
	killHelperEnv = "PMSIMD_KILL_HELPER"
	killDirEnv    = "PMSIMD_KILL_DIR"
)

// TestPmsimdKillHelperProcess is the child side: it becomes a
// WAL-backed daemon when re-execed by TestPmsimdKillNineLoop.
func TestPmsimdKillHelperProcess(t *testing.T) {
	if os.Getenv(killHelperEnv) != "1" {
		t.Skip("helper process; driven by TestPmsimdKillNineLoop")
	}
	dir := os.Getenv(killDirEnv)
	os.Args = []string{"pmsimd",
		"-addr", "127.0.0.1:0",
		"-checkpoint", filepath.Join(dir, "agg.db"),
		"-checkpoint-every", "4",
		"-wal-dir", filepath.Join(dir, "wal"),
		"-interval", "16",
		"-queue", "256",
	}
	os.Exit(run())
}

// killDaemon is one incarnation of the daemon between kills.
type killDaemon struct {
	cmd  *exec.Cmd
	base string
	mu   sync.Mutex
	out  []string
}

func (d *killDaemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return strings.Join(d.out, "\n")
}

func startKillDaemon(t *testing.T, dir string) *killDaemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestPmsimdKillHelperProcess$")
	cmd.Env = append(os.Environ(), killHelperEnv+"=1", killDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &killDaemon{cmd: cmd}
	t.Cleanup(func() { cmd.Process.Kill() })
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.out = append(d.out, line)
			d.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "pmsimd: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon never announced its listen address\n%s", d.output())
	}
	return d
}

// killSubmit posts one shard; the error covers connection-level
// failures (fate unknown — the caller retries after the next restart).
func killSubmit(base, shard string, db *profile.DB) (status int, duplicate bool, err error) {
	body, err := ingest.EncodeSubmit(shard, db)
	if err != nil {
		return 0, false, err
	}
	resp, err := http.Post(base+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	var out struct {
		Duplicate bool `json:"duplicate"`
	}
	if decErr := json.NewDecoder(resp.Body).Decode(&out); decErr != nil {
		return resp.StatusCode, false, nil // tolerate non-JSON error bodies
	}
	return resp.StatusCode, out.Duplicate, nil
}

func killStats(base string) (samples, lost uint64, err error) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var m struct {
		Samples uint64 `json:"samples"`
		Lost    uint64 `json:"lost"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, 0, err
	}
	return m.Samples, m.Lost, nil
}

func TestPmsimdKillNineLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill loop skipped in -short mode")
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(0x7015)) // deterministic "random" kill points

	const kills = 5
	var (
		mu       sync.Mutex
		payloads = map[string]*profile.DB{} // every shard ever generated
		acked    = map[string]bool{}        // shards with an observed 202
		next     int
	)
	unacked := func() []string {
		mu.Lock()
		defer mu.Unlock()
		var out []string
		for s := range payloads {
			if !acked[s] {
				out = append(out, s)
			}
		}
		return out
	}
	anyAcked := func() (string, *profile.DB) {
		mu.Lock()
		defer mu.Unlock()
		for s := range acked {
			return s, payloads[s]
		}
		return "", nil
	}

	for round := 0; round <= kills; round++ {
		d := startKillDaemon(t, dir)
		if round > 0 {
			if !strings.Contains(d.output(), "pmsimd: recovered:") {
				t.Fatalf("round %d: restart did not announce WAL recovery\n%s", round, d.output())
			}
			// Everything acknowledged before the kill must still dedupe:
			// retrying it comes back 202 with duplicate=true.
			if s, db := anyAcked(); s != "" {
				status, dup, err := killSubmit(d.base, s, db)
				if err != nil || status != http.StatusAccepted || !dup {
					t.Fatalf("round %d: post-crash retry of acked %s: err=%v status=%d duplicate=%v (want 202+duplicate)",
						round, s, err, status, dup)
				}
			}
			// Unknown-fate submissions from the kill window are retried;
			// fresh or duplicate, each must land a 202 now.
			for _, s := range unacked() {
				mu.Lock()
				db := payloads[s]
				mu.Unlock()
				deadline := time.Now().Add(10 * time.Second)
				for {
					status, _, err := killSubmit(d.base, s, db)
					if err == nil && status == http.StatusAccepted {
						mu.Lock()
						acked[s] = true
						mu.Unlock()
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("round %d: retry of %s never accepted (last err=%v status=%d)", round, s, err, status)
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
		}
		if round == kills {
			// Final incarnation: no more kills; verify and drain below.
			finishKillLoop(t, d, dir, payloads, acked, &mu)
			return
		}

		// Flood new shards until the kill; record each payload BEFORE the
		// post so an unacknowledged in-flight shard is retried next round.
		stop := make(chan struct{})
		floodDone := make(chan struct{})
		go func() {
			defer close(floodDone)
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				name := fmt.Sprintf("kill/s%04d", i)
				db := smokeShard(uint64(i)+7, 20+i%17)
				mu.Lock()
				payloads[name] = db
				mu.Unlock()
				status, _, err := killSubmit(d.base, name, db)
				if err != nil {
					continue // daemon died mid-request: fate unknown
				}
				if status == http.StatusAccepted {
					mu.Lock()
					acked[name] = true
					mu.Unlock()
				}
			}
		}()

		// SIGKILL at a random point in the flood. No warning, no flush —
		// whatever the daemon acknowledged must already be on disk.
		time.Sleep(time.Duration(20+rng.Intn(120)) * time.Millisecond)
		if err := d.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		d.cmd.Wait()
		close(stop)
		<-floodDone
	}
}

// finishKillLoop runs the post-loop verification on the last
// incarnation: exact conservation on the live daemon, then a graceful
// drain whose final checkpoint carries the same totals.
func finishKillLoop(t *testing.T, d *killDaemon, dir string, payloads map[string]*profile.DB, acked map[string]bool, mu *sync.Mutex) {
	t.Helper()
	mu.Lock()
	var wantTotal uint64
	for s, db := range payloads {
		if !acked[s] {
			t.Fatalf("shard %s still unacknowledged after final retries", s)
		}
		wantTotal += db.Samples() + db.Lost()
	}
	distinct := len(payloads)
	mu.Unlock()
	if distinct < 3*5 {
		t.Fatalf("flood produced only %d distinct shards across the kill rounds; too few to mean anything", distinct)
	}

	// Merging is async behind the queue: poll until the aggregate settles
	// at EXACT conservation — Σ captured over distinct shards, with zero
	// crash-attributed loss (transient refusal loss is reversed when the
	// retry lands, so nonzero lost here means a kill destroyed samples).
	deadline := time.Now().Add(15 * time.Second)
	var samples, lost uint64
	for {
		var err error
		samples, lost, err = killStats(d.base)
		if err == nil && samples+lost == wantTotal && lost == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("conservation never reached exact: samples=%d lost=%d, want samples+lost=%d lost=0 over %d shards",
				samples, lost, wantTotal, distinct)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful drain: the final checkpoint must carry the identical
	// totals, and the WAL mustn't resurrect anything on a re-read.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- d.cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("daemon did not exit cleanly after SIGTERM: %v\n%s", err, d.output())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within the drain budget")
	}
	ck, err := ingest.LoadCheckpointFile(filepath.Join(dir, "agg.db"))
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	db, err := profile.LoadDB(bytes.NewReader(ck.Profile))
	if err != nil {
		t.Fatalf("final checkpoint profile: %v", err)
	}
	if got := db.Samples() + db.Lost(); got != wantTotal || db.Lost() != 0 {
		t.Fatalf("final checkpoint samples=%d lost=%d, want samples+lost=%d lost=0", db.Samples(), db.Lost(), wantTotal)
	}
	if len(ck.Applied) < distinct {
		t.Fatalf("final checkpoint ledger covers %d shards, want at least %d", len(ck.Applied), distinct)
	}
}
