// Command figures regenerates every table and figure of the paper's
// evaluation from the reproduction's own simulator and workloads:
//
//	figures fig2    — event-counter PC attribution (in-order vs OoO)
//	figures table1  — pipeline-stage latencies per stress kernel
//	figures fig3    — convergence of sampled estimates
//	figures fig6    — path reconstruction success rates
//	figures fig7    — latency vs wasted issue slots
//	figures sec6    — windowed IPC statistics
//	figures all     — everything above, in order
//
// Each experiment prints the paper's rows/series and then reports whether
// the paper's qualitative claims hold on this run ("shape check").
package main

import (
	"flag"
	"fmt"
	"os"

	"profileme/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller configurations (~10x faster)")
	csv := flag.Bool("csv", false, "emit the figure's data series as CSV instead of text")
	flag.Usage = usage
	flag.Parse()
	csvOut = *csv
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	which := flag.Arg(0)
	var failures int
	runOne := func(name string) {
		if err := run(name, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failures++
		}
	}
	if which == "all" {
		for _, name := range []string{"fig2", "table1", "fig3", "fig6", "fig7", "sec6", "blindspot", "ww", "multiproc"} {
			runOne(name)
			fmt.Println()
		}
	} else {
		runOne(which)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: figures [-quick] {fig2|fig3|fig6|fig7|table1|sec6|blindspot|ww|multiproc|all}\n")
	flag.PrintDefaults()
}

// checker is the common surface of all experiment results.
type checker interface {
	Check() error
	Render() string
	CSV() string
}

// csvOut selects CSV output (set from the -csv flag).
var csvOut bool

func run(name string, quick bool) error {
	var (
		res checker
		err error
	)
	switch name {
	case "fig2":
		cfg := experiments.DefaultFigure2Config()
		if quick {
			cfg.Iters, cfg.Nops = 1500, 120
		}
		res, err = experiments.Figure2(cfg)
	case "fig3":
		cfg := experiments.DefaultFigure3Config()
		if quick {
			cfg.Scale = 300_000
			cfg.Intervals = []float64{50, 500}
		}
		res, err = experiments.Figure3(cfg)
	case "fig6":
		cfg := experiments.DefaultFigure6Config()
		if quick {
			cfg.Scale = 120_000
			cfg.Eval.MaxInst = 120_000
			cfg.Benchmarks = []string{"compress", "gcc"}
			cfg.GeneratedSeeds = []uint64{11}
		}
		res, err = experiments.Figure6(cfg)
	case "fig7":
		cfg := experiments.DefaultFigure7Config()
		if quick {
			cfg.Iters = 6000
		}
		res, err = experiments.Figure7(cfg)
	case "table1":
		cfg := experiments.DefaultTable1Config()
		if quick {
			cfg.Iters = 6000
		}
		res, err = experiments.Table1(cfg)
	case "sec6":
		cfg := experiments.DefaultSection6Config()
		if quick {
			cfg.Scale = 120_000
		}
		res, err = experiments.Section6(cfg)
	case "blindspot":
		cfg := experiments.DefaultBlindSpotConfig()
		if quick {
			cfg.Iters = 8000
		}
		res, err = experiments.BlindSpot(cfg)
	case "ww":
		cfg := experiments.DefaultWWConfig()
		if quick {
			cfg.Scale = 600_000
			cfg.Period = 4
		}
		res, err = experiments.WW(cfg)
	case "multiproc":
		cfg := experiments.DefaultMultiprocessConfig()
		if quick {
			cfg.Scale = 120_000
		}
		res, err = experiments.Multiprocess(cfg)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err != nil {
		return err
	}
	if csvOut {
		fmt.Print(res.CSV())
		return res.Check()
	}
	fmt.Print(res.Render())
	if err := res.Check(); err != nil {
		fmt.Printf("shape check: FAILED: %v\n", err)
		return err
	}
	fmt.Printf("shape check: ok\n")
	return nil
}
