// Command pmtraffic generates, records, replays, and inspects traffic
// traces for the collector tier.
//
// A trace spec (JSON, see internal/traffic) declares cohorts of shards
// with diurnal ramps and superimposed bursts; pmtraffic turns it into a
// deterministic submission schedule and either writes it to a versioned
// CRC-framed trace file, drives it at a live collector, or both. A
// captured trace replays bit-for-bit: the same trace against the same
// build yields the same final aggregate.
//
//	pmtraffic gen -spec load.json -out run.pmtf                 # record only
//	pmtraffic gen -spec load.json -submit http://localhost:7000 # drive live
//	pmtraffic replay -trace run.pmtf -submit http://localhost:7000 -speed 10
//	pmtraffic describe -trace run.pmtf
//	pmtraffic record -listen :7001 -to http://localhost:7000 -out cap.pmtf
//
// The record subcommand is a capturing relay: it forwards every request
// to the upstream collector or router untouched and tees /v1/submit
// bodies into a trace, so any existing fleet can be captured by pointing
// its -submit at the relay.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"profileme/internal/ingest"
	"profileme/internal/runner"
	"profileme/internal/traffic"
)

func main() { os.Exit(run(os.Args[1:])) }

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pmtraffic <command> [flags]

commands:
  gen       generate traffic from a spec: write a trace and/or drive a collector
  replay    re-run a captured trace against a collector, optionally time-warped
  describe  print what a spec would generate or what a trace contains
  record    capturing relay: forward to an upstream, tee submissions to a trace

run 'pmtraffic <command> -h' for flags`)
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:])
	case "replay":
		return runReplay(args[1:])
	case "describe":
		return runDescribe(args[1:])
	case "record":
		return runRecord(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "pmtraffic: unknown command %q\n", args[0])
		usage()
		return 2
	}
}

// sinkFor builds the submission sink from a -submit value: comma-
// separated collector URLs, primary first, extras as transport-failover
// fallbacks (same contract as pmsim -submit).
func sinkFor(submit string) runner.Sink {
	var urls []string
	for _, u := range strings.Split(submit, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return nil
	}
	return runner.NewHTTPSink(urls[0], urls[1:]...)
}

// traceWriter opens path and frames it as a trace; the returned closer
// syncs before closing so a finished trace survives a crash.
func traceWriter(path string, meta traffic.Meta) (*traffic.Writer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w, err := traffic.NewWriter(f, meta)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	closer := func() error {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return w, closer, nil
}

func loadSpec(path string) (*traffic.Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return traffic.ParseSpec(raw)
}

func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func printReport(rep *traffic.Report, elapsed time.Duration) {
	fmt.Printf("pmtraffic: %d records, %d accepted, %d failed, %d retries in %s\n",
		rep.Records, rep.Accepted, rep.Failed, rep.Retries, elapsed.Round(time.Millisecond))
	cohorts := make([]string, 0, len(rep.ByCohort))
	for c := range rep.ByCohort {
		cohorts = append(cohorts, c)
	}
	sort.Strings(cohorts)
	for _, c := range cohorts {
		fmt.Printf("pmtraffic:   cohort %-12s %d records\n", c, rep.ByCohort[c])
	}
	fmt.Printf("pmtraffic: %d distinct shards offered, %d captured samples (conservation target)\n",
		rep.DistinctShards, rep.CapturedSum)
}

func runGen(args []string) int {
	fs := flag.NewFlagSet("pmtraffic gen", flag.ExitOnError)
	var (
		specPath = fs.String("spec", "", "traffic spec JSON file (required)")
		out      = fs.String("out", "", "write the generated trace to this file")
		submit   = fs.String("submit", "", "also drive the schedule at this collector/router URL (comma-separated fallbacks)")
		speed    = fs.Float64("speed", 0, "pacing for -submit: 1 = modeled time, 2 = twice as fast, 0 = as fast as admitted")
		attempts = fs.Int("attempts", 10, "delivery attempts per record before it counts as failed")
		backoff  = fs.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, capped)")
	)
	fs.Parse(args)
	if *specPath == "" || (*out == "" && *submit == "") {
		fmt.Fprintln(os.Stderr, "pmtraffic gen: need -spec and at least one of -out / -submit")
		return 2
	}
	sp, err := loadSpec(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic gen:", err)
		return 2
	}

	var (
		w      *traffic.Writer
		closer func() error
	)
	if *out != "" {
		w, closer, err = traceWriter(*out, traffic.Meta{Spec: sp, Source: "pmtraffic gen"})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmtraffic gen:", err)
			return 1
		}
	}

	ctx, stop := signalContext()
	defer stop()
	start := time.Now()
	rep, err := traffic.Drive(ctx, sp, sinkFor(*submit), w,
		traffic.Options{Speed: *speed, MaxAttempts: *attempts, Backoff: *backoff, Log: os.Stderr})
	elapsed := time.Since(start)
	if closer != nil {
		if cerr := closer(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic gen:", err)
		return 1
	}
	printReport(rep, elapsed)
	if *out != "" {
		fmt.Printf("pmtraffic: trace written to %s\n", *out)
	}
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

func runReplay(args []string) int {
	fs := flag.NewFlagSet("pmtraffic replay", flag.ExitOnError)
	var (
		tracePath = fs.String("trace", "", "trace file to replay (required)")
		submit    = fs.String("submit", "", "collector/router URL to replay against (required; comma-separated fallbacks)")
		speed     = fs.Float64("speed", 1, "time-warp factor: 1 = recorded speed, 10 = 10x faster, 0 = as fast as admitted")
		attempts  = fs.Int("attempts", 10, "delivery attempts per record before it counts as failed")
		backoff   = fs.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt, capped)")
	)
	fs.Parse(args)
	if *tracePath == "" || *submit == "" {
		fmt.Fprintln(os.Stderr, "pmtraffic replay: need -trace and -submit")
		return 2
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic replay:", err)
		return 1
	}
	_, recs, err := traffic.ReadAll(f)
	f.Close()
	if err != nil {
		// A torn tail still yields every intact record; replaying a
		// damaged trace silently would break the determinism contract.
		fmt.Fprintf(os.Stderr, "pmtraffic replay: %s: %v (refusing to replay a damaged trace)\n", *tracePath, err)
		return 1
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "pmtraffic replay: trace has no records")
		return 1
	}

	ctx, stop := signalContext()
	defer stop()
	start := time.Now()
	rep, err := traffic.Replay(ctx, recs, sinkFor(*submit),
		traffic.Options{Speed: *speed, MaxAttempts: *attempts, Backoff: *backoff, Log: os.Stderr})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic replay:", err)
		return 1
	}
	printReport(rep, time.Since(start))
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

func runDescribe(args []string) int {
	fs := flag.NewFlagSet("pmtraffic describe", flag.ExitOnError)
	var (
		tracePath = fs.String("trace", "", "describe a captured trace file")
		specPath  = fs.String("spec", "", "describe what a spec would generate")
	)
	fs.Parse(args)
	switch {
	case *tracePath != "":
		return describeTrace(*tracePath)
	case *specPath != "":
		return describeSpec(*specPath)
	default:
		fmt.Fprintln(os.Stderr, "pmtraffic describe: need -trace or -spec")
		return 2
	}
}

func describeTrace(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic describe:", err)
		return 1
	}
	defer f.Close()
	meta, recs, rerr := traffic.ReadAll(f)
	if rerr != nil && meta.Source == "" && meta.Spec == nil && len(recs) == 0 {
		// Header-level damage: there is nothing recovered to describe.
		fmt.Fprintln(os.Stderr, "pmtraffic describe:", rerr)
		return 1
	}
	fmt.Printf("trace: %s\n", path)
	fmt.Printf("  source: %s\n", meta.Source)
	if meta.Spec != nil {
		fmt.Printf("  spec: seed %d, %gs modeled, interval %g, %d cohorts\n",
			meta.Spec.Seed, meta.Spec.DurationS, meta.Spec.Interval, len(meta.Spec.Cohorts))
	}
	fmt.Printf("  records: %d\n", len(recs))
	if len(recs) > 0 {
		fmt.Printf("  span: %s recorded\n",
			(time.Duration(recs[len(recs)-1].OffsetUS) * time.Microsecond).Round(time.Millisecond))
	}
	byCohort := map[string]int{}
	shards := map[string]bool{}
	var captured uint64
	for i := range recs {
		byCohort[recs[i].Cohort]++
		if !shards[recs[i].Shard] {
			shards[recs[i].Shard] = true
			if sub, err := ingest.DecodeSubmit(recs[i].Body); err == nil {
				captured += sub.Captured()
			}
		}
	}
	cohorts := make([]string, 0, len(byCohort))
	for c := range byCohort {
		cohorts = append(cohorts, c)
	}
	sort.Strings(cohorts)
	for _, c := range cohorts {
		name := c
		if name == "" {
			name = "(untagged)"
		}
		fmt.Printf("  cohort %-12s %d records\n", name, byCohort[c])
	}
	fmt.Printf("  distinct shards: %d, captured samples: %d\n", len(shards), captured)
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "pmtraffic describe: trace damaged after record %d: %v\n", len(recs), rerr)
		return 1
	}
	return 0
}

func describeSpec(path string) int {
	sp, err := loadSpec(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic describe:", err)
		return 2
	}
	sched, err := sp.Schedule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic describe:", err)
		return 1
	}
	fmt.Printf("spec: %s\n", path)
	fmt.Printf("  seed %d, %gs modeled, interval %g\n", sp.Seed, sp.DurationS, sp.Interval)
	byCohort := map[string]int{}
	for _, a := range sched {
		byCohort[a.Cohort]++
	}
	for _, c := range sp.Cohorts {
		fmt.Printf("  cohort %-12s bench %-10s scale %-8d shards %-3d -> %d arrivals\n",
			c.Name, c.Bench, c.Scale, c.Shards, byCohort[c.Name])
	}
	fmt.Printf("  total: %d arrivals\n", len(sched))
	return 0
}

func runRecord(args []string) int {
	fs := flag.NewFlagSet("pmtraffic record", flag.ExitOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:7001", "relay listen address")
		to      = fs.String("to", "", "upstream collector/router base URL (required)")
		out     = fs.String("out", "", "trace file for captured submissions (required)")
		maxBody = fs.Int64("max-body", 8<<20, "submission body size limit in bytes")
	)
	fs.Parse(args)
	if *to == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "pmtraffic record: need -to and -out")
		return 2
	}
	target, err := url.Parse(*to)
	if err != nil || target.Scheme == "" || target.Host == "" {
		fmt.Fprintf(os.Stderr, "pmtraffic record: bad -to URL %q\n", *to)
		return 2
	}
	w, closer, err := traceWriter(*out, traffic.Meta{Source: "pmtraffic record"})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic record:", err)
		return 1
	}
	cw := traffic.NewCaptureWriter(w)

	// The relay is a plain reverse proxy with one extra behaviour: a
	// decodable POST /v1/submit body is teed into the trace before the
	// upstream sees it. Undecodable bodies are forwarded untouched — the
	// upstream's 400 is authoritative, and a trace must hold only
	// replayable records.
	proxy := httputil.NewSingleHostReverseProxy(target)
	handler := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/submit" {
			body, err := readBody(r, *maxBody)
			if err != nil {
				http.Error(rw, err.Error(), http.StatusRequestEntityTooLarge)
				return
			}
			if sub, err := ingest.DecodeSubmit(body); err == nil {
				cw.Capture(sub.Shard, body)
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		proxy.ServeHTTP(rw, r)
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic record:", err)
		return 1
	}
	fmt.Printf("pmtraffic: recording relay on %s -> %s, trace %s\n", ln.Addr(), target, *out)

	httpSrv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signalContext()
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "pmtraffic record:", err)
		closer()
		return 1
	}
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic record: shutdown:", err)
	}
	code := 0
	if err := cw.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic record: capture:", err)
		code = 1
	}
	if err := closer(); err != nil {
		fmt.Fprintln(os.Stderr, "pmtraffic record:", err)
		code = 1
	}
	fmt.Printf("pmtraffic: captured %d submissions to %s\n", cw.Count(), *out)
	return code
}

func readBody(r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("submission body exceeds %d bytes", limit)
	}
	return body, nil
}
