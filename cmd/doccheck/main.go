// Command doccheck validates the repository's markdown documentation:
// every relative link target exists, every anchor (in-page or
// cross-page) matches a real heading under GitHub's slug rules, and
// every "DESIGN.md §N" cross-reference names a section DESIGN.md
// actually has. External http(s) links are skipped — the repo is
// offline-friendly and CI must not depend on the network.
//
//	doccheck                          # checks README.md DESIGN.md OPERATIONS.md
//	doccheck README.md EXTRA.md       # explicit file list
//
// Exit status 0 when clean, 1 with one line per problem otherwise.
// Fenced code blocks are ignored entirely: a `# comment` inside a
// shell example is not a heading and `f(x)` is not a link.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"unicode"
)

var (
	// linkRe matches inline links [text](target); images share the shape.
	linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	// headRe matches ATX headings outside code fences.
	headRe = regexp.MustCompile(`^(#{1,6})\s+(.+?)\s*$`)
	// sectionRefRe matches prose cross-references like "DESIGN.md §13".
	sectionRefRe = regexp.MustCompile(`DESIGN\.md §(\d+)`)
	// sectionHeadRe matches DESIGN.md's numbered section headings.
	sectionHeadRe = regexp.MustCompile(`^## (\d+)\.`)
)

// doc is one parsed markdown file.
type doc struct {
	anchors  map[string]bool // GitHub heading slugs
	sections map[int]bool    // "## N." section numbers (DESIGN.md style)
	links    []link
	secRefs  []secRef
}

type link struct {
	line   int
	target string
}

type secRef struct {
	line int
	n    int
}

// slugify reproduces GitHub's heading-to-anchor rule: lowercase, drop
// everything but letters/digits/underscore/hyphen, spaces to hyphens.
func slugify(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(s)) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// parse reads one markdown file into its anchors, links, and §-refs.
func parse(path string) (*doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := &doc{anchors: map[string]bool{}, sections: map[int]bool{}}
	seen := map[string]int{} // duplicate heading slugs get -1, -2, ...
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headRe.FindStringSubmatch(line); m != nil {
			slug := slugify(m[2])
			if n, dup := seen[slug]; dup {
				seen[slug] = n + 1
				slug = fmt.Sprintf("%s-%d", slug, n)
			} else {
				seen[slug] = 1
			}
			d.anchors[slug] = true
			if sm := sectionHeadRe.FindStringSubmatch(line); sm != nil {
				n, _ := strconv.Atoi(sm[1])
				d.sections[n] = true
			}
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			d.links = append(d.links, link{line: i + 1, target: m[1]})
		}
		for _, m := range sectionRefRe.FindAllStringSubmatch(line, -1) {
			n, _ := strconv.Atoi(m[1])
			d.secRefs = append(d.secRefs, secRef{line: i + 1, n: n})
		}
	}
	return d, nil
}

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = []string{"README.md", "DESIGN.md", "OPERATIONS.md"}
	}

	docs := map[string]*doc{}
	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	load := func(path string) *doc {
		if d, ok := docs[path]; ok {
			return d
		}
		d, err := parse(path)
		if err != nil {
			d = nil // cache the miss; the caller reports it
		}
		docs[path] = d
		return d
	}

	for _, f := range files {
		if load(f) == nil {
			fail("%s: cannot read", f)
		}
	}

	for _, f := range files {
		d := docs[f]
		if d == nil {
			continue
		}
		for _, l := range d.links {
			target := l.target
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, anchor, _ := strings.Cut(target, "#")
			td := d
			if path != "" {
				rel := filepath.Join(filepath.Dir(f), path)
				info, err := os.Stat(rel)
				if err != nil {
					fail("%s:%d: link target %q does not exist", f, l.line, path)
					continue
				}
				if anchor == "" {
					continue
				}
				if info.IsDir() || !strings.HasSuffix(path, ".md") {
					fail("%s:%d: anchor on non-markdown target %q", f, l.line, target)
					continue
				}
				if td = load(rel); td == nil {
					fail("%s:%d: cannot read link target %q", f, l.line, rel)
					continue
				}
			}
			if anchor != "" && !td.anchors[anchor] {
				fail("%s:%d: anchor #%s not found in %s", f, l.line, anchor, orSelf(path, f))
			}
		}
		design := load("DESIGN.md")
		for _, r := range d.secRefs {
			if design == nil || !design.sections[r.n] {
				fail("%s:%d: reference to DESIGN.md §%d, which has no '## %d.' section", f, r.line, r.n, r.n)
			}
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d file(s) clean\n", len(files))
}

func orSelf(path, self string) string {
	if path == "" {
		return self
	}
	return path
}
