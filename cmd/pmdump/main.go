// Command pmdump loads a profile database saved by pmsim -save and prints
// its reports — the offline half of the DCPI-style collect-then-analyze
// workflow. Since the database stores only counts and sums, dumps are
// cheap to ship and merge.
//
//	pmsim -bench vortex -save v.prof
//	pmdump v.prof
//	pmdump -merge a.prof b.prof c.prof
package main

import (
	"flag"
	"fmt"
	"os"

	"profileme/internal/core"
	"profileme/internal/profile"
)

func main() {
	var (
		top   = flag.Int("top", 20, "hot instructions to print")
		merge = flag.Bool("merge", false, "merge all argument databases before reporting")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: pmdump [-top n] [-merge] profile.db [more.db ...]")
		os.Exit(2)
	}

	db, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, path := range flag.Args()[1:] {
		if !*merge {
			fmt.Fprintln(os.Stderr, "pmdump: multiple databases need -merge")
			os.Exit(2)
		}
		other, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := db.Merge(other); err != nil {
			fmt.Fprintf(os.Stderr, "pmdump: %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	fmt.Printf("profile: %d samples (%d paired), interval %.1f, window %d\n",
		db.Samples(), db.Pairs(), db.S, db.W)
	if names := db.PairMetricNames(); len(names) > 0 {
		fmt.Printf("custom pair metrics: %v\n", names)
	}
	fmt.Println()
	fmt.Print(db.Report(nil, *top))

	// Event totals across all PCs.
	var retired, dmiss, mispred uint64
	for _, pc := range db.PCs() {
		a := db.Get(pc)
		retired += a.Retired()
		dmiss += a.EventCount(core.EvDCacheMiss)
		mispred += a.EventCount(core.EvMispredict)
	}
	fmt.Printf("\ntotals: %d retired samples, %d D-cache-miss samples, %d mispredict samples\n",
		retired, dmiss, mispred)
	fmt.Printf("estimated instructions: %.0f (95%% CI half-width %.0f)\n",
		profile.EstimateCount(retired, db.S),
		func() float64 {
			lo, hi := profile.ConfidenceInterval(retired, db.S, 1.96)
			return (hi - lo) / 2
		}())
}

func load(path string) (*profile.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return profile.LoadDB(f)
}
