package workload

import (
	"fmt"

	"profileme/internal/asm"
	"profileme/internal/isa"
	"profileme/internal/stats"
)

// GenConfig parameterizes the procedural program generator.
type GenConfig struct {
	Procs      int // number of generated procedures (besides main)
	BodyBlocks int // structured constructs per procedure
	MainIters  int // iterations of main's driver loop
	Seed       uint64
}

// DefaultGenConfig returns a medium-sized generated program.
func DefaultGenConfig() GenConfig {
	return GenConfig{Procs: 6, BodyBlocks: 5, MainIters: 2000, Seed: 42}
}

// Generate builds a random but well-structured program: a main driver loop
// that advances a pseudo-random state register and calls generated
// procedures; each procedure is a sequence of data-dependent diamonds,
// small counted loops, ALU work, scratch-array accesses and calls to
// strictly later procedures (so the call graph is acyclic). Generated
// programs exercise the path profiler on varied CFG shapes and serve as
// fuzz inputs for the pipeline.
//
// Register conventions: r1 main counter, r5 global LCG state, r6-r15
// scratch, r21 scratch-array base, r20 main's saved return address.
func Generate(cfg GenConfig) *isa.Program {
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.BodyBlocks < 1 {
		cfg.BodyBlocks = 1
	}
	rng := stats.NewRNG(cfg.Seed)
	g := &genState{b: asm.NewBuilder(), rng: rng}

	// Scratch array.
	g.b.Org(0x20000).DataLabel("scratch").Space(8192)

	// main: preamble (a couple of never-taken branches to separate the
	// hot loop from the entry), then the driver loop.
	g.b.Proc("main")
	g.b.Op3(isa.OpAdd, 20, isa.RegRA, isa.RegZero)
	g.b.LdI(1, int64(cfg.MainIters))
	g.b.LdI(5, 0x12345)
	g.b.LdaLabel(21, "scratch")
	for i := 0; i < 2; i++ {
		skip := g.label("pre")
		g.b.Bne(isa.RegZero, skip) // never taken
		g.b.Nop()
		g.b.Label(skip)
	}
	loop := g.label("mainloop")
	g.b.Label(loop)
	g.advanceLCG()
	// Call a random subset of procedures each iteration, gated on LCG
	// bits so the call sequence varies dynamically.
	for p := 0; p < cfg.Procs; p++ {
		skip := g.label("skipcall")
		g.b.OpI(isa.OpSrl, 6, 5, int64(p+1))
		g.b.OpI(isa.OpAnd, 6, 6, 1)
		g.b.Beq(6, skip)
		g.b.Jsr(procName(p))
		g.b.Label(skip)
	}
	g.b.SubI(1, 1, 1)
	g.b.Bne(1, loop)
	g.b.Emit(isa.Inst{Op: isa.OpRet, Rb: 20})
	g.b.EndProc()

	// Procedures. Each may call strictly later ones.
	for p := 0; p < cfg.Procs; p++ {
		g.genProc(p, cfg)
	}

	prog, err := g.b.Build()
	if err != nil {
		panic(fmt.Sprintf("workload: generated program invalid: %v", err))
	}
	if err := prog.Validate(); err != nil {
		panic(fmt.Sprintf("workload: generated program invalid: %v", err))
	}
	return prog
}

type genState struct {
	b      *asm.Builder
	rng    *stats.RNG
	labels int
}

func procName(i int) string { return fmt.Sprintf("proc%d", i) }

func (g *genState) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

// advanceLCG mutates the global pseudo-random state register r5.
func (g *genState) advanceLCG() {
	g.b.OpI(isa.OpMul, 5, 5, 6364136223846793005)
	g.b.AddI(5, 5, 1442695040888963407)
}

// genProc emits one procedure. Procedures that call save ra on the stack.
func (g *genState) genProc(idx int, cfg GenConfig) {
	calls := idx+1 < cfg.Procs && g.rng.Bool(0.6)
	g.b.Proc(procName(idx))
	if calls {
		g.b.SubI(isa.RegSP, isa.RegSP, 16)
		g.b.St(isa.RegRA, isa.RegSP, 0)
	}
	for blk := 0; blk < cfg.BodyBlocks; blk++ {
		switch g.rng.Intn(5) {
		case 0:
			g.genDiamond(idx, blk)
		case 1:
			g.genLoop()
		case 2:
			g.genALU()
		case 3:
			g.genMemory()
		case 4:
			if calls {
				callee := g.rng.IntRange(idx+1, cfg.Procs-1)
				g.b.Jsr(procName(callee))
			} else {
				g.genALU()
			}
		}
	}
	if calls {
		g.b.Ld(isa.RegRA, isa.RegSP, 0)
		g.b.AddI(isa.RegSP, isa.RegSP, 16)
	}
	g.b.Ret()
	g.b.EndProc()
}

// genDiamond emits an if/else on a pseudo-random bit of r5.
func (g *genState) genDiamond(procIdx, blk int) {
	elseL := g.label("else")
	endL := g.label("endif")
	bit := int64(g.rng.Intn(24))
	g.b.OpI(isa.OpSrl, 6, 5, bit)
	g.b.OpI(isa.OpAnd, 6, 6, 1)
	g.b.Beq(6, elseL)
	g.genALU()
	g.b.Br(endL)
	g.b.Label(elseL)
	g.genALU()
	g.b.Label(endL)
}

// genLoop emits a small counted loop with a fixed trip count.
func (g *genState) genLoop() {
	iters := int64(g.rng.IntRange(2, 6))
	top := g.label("loop")
	g.b.LdI(7, iters)
	g.b.Label(top)
	g.genALU()
	g.b.SubI(7, 7, 1)
	g.b.Bne(7, top)
}

// genALU emits a few arithmetic instructions over the scratch registers.
func (g *genState) genALU() {
	n := g.rng.IntRange(1, 4)
	for i := 0; i < n; i++ {
		rc := isa.Reg(g.rng.IntRange(8, 15))
		ra := isa.Reg(g.rng.IntRange(8, 15))
		switch g.rng.Intn(4) {
		case 0:
			g.b.AddI(rc, ra, int64(g.rng.Intn(100)))
		case 1:
			g.b.Op3(isa.OpXor, rc, ra, 5)
		case 2:
			g.b.OpI(isa.OpMul, rc, ra, int64(g.rng.IntRange(3, 99)))
		case 3:
			g.b.Op3(isa.OpSub, rc, ra, isa.Reg(g.rng.IntRange(8, 15)))
		}
	}
}

// genMemory emits a scratch-array load or store at a pseudo-random offset.
func (g *genState) genMemory() {
	g.b.OpI(isa.OpSrl, 6, 5, int64(g.rng.Intn(16)))
	g.b.OpI(isa.OpAnd, 6, 6, 1016) // word-aligned offset within 8 KB
	g.b.Add(6, 6, 21)
	if g.rng.Bool(0.5) {
		g.b.Ld(isa.Reg(g.rng.IntRange(8, 15)), 6, 0)
	} else {
		g.b.St(isa.Reg(g.rng.IntRange(8, 15)), 6, 0)
	}
}
