package workload

import (
	"fmt"

	"profileme/internal/asm"
	"profileme/internal/isa"
	"profileme/internal/stats"
)

// Compress is a stream-compression kernel in the style of SPEC COMPRESS:
// it hashes a (prefix, symbol) pair for every input word and probes a hash
// table with one linear reprobe, inserting on miss. Data-dependent
// hit/miss branches and a table larger than the L1 working set give it the
// cache and mispredict profile of the original.
func Compress(scale int) *isa.Program { return CompressSeeded(scale, 0) }

// CompressSeeded is Compress with an explicit input-stream seed
// (0 = canonical).
func CompressSeeded(scale int, dataSeed uint64) *isa.Program {
	iters := clampScale(scale/20, 16, 0)
	src := fmt.Sprintf(`
.equ ITERS, %d
.proc main
    lda  r1, ITERS(zero)
    lda  r16, input(zero)
    lda  r18, htab(zero)
    lda  r19, 1(zero)
    beq  r1, badargs            ; argument guards (never taken), as real
    beq  r16, badargs           ; code has between entry and hot loop
    beq  r18, badargs
loop:
    ld   r2, 0(r16)
    mul  r3, r19, #31
    xor  r3, r3, r2
    and  r3, r3, #4095
    sll  r4, r3, #3
    add  r4, r4, r18
    ld   r5, 0(r4)
    beq  r5, miss
    xor  r6, r5, r2
    and  r6, r6, #255
    beq  r6, hit
    add  r3, r3, #17        ; secondary probe
    and  r3, r3, #4095
    sll  r4, r3, #3
    add  r4, r4, r18
    ld   r5, 0(r4)
    beq  r5, miss
hit:
    add  r19, r5, r2
    br   next
miss:
    st   r2, 0(r4)
    add  r19, r2, #0
next:
    add  r16, r16, #8
    and  r16, r16, #0x27ff8 ; wrap within the 32 KB input ring
    sub  r1, r1, #1
    bne  r1, loop
    ret
badargs:
    lda  r19, -1(zero)
    ret
.endp
.data
.org 0x20000
input:
.org 0x40000
htab:
`, iters)
	p := sanity(asm.Assemble(src))
	fillWords(p, 0x20000, 4096, deriveSeed(0xc0115eed, dataSeed), 251)
	return p
}

// GCC is an expression-tree evaluator in the style of SPEC GCC's constant
// folding: recursive evaluation over binary trees stored in memory, with a
// branchy operator dispatch at every inner node. Call-heavy, branchy, and
// full of dependent pointer loads.
func GCC(scale int) *isa.Program { return GCCSeeded(scale, 0) }

// GCCSeeded is GCC with an explicit tree-shape seed (0 = canonical).
func GCCSeeded(scale int, dataSeed uint64) *isa.Program {
	const (
		nodeBase  = 0x30000
		roots     = 16
		treeDepth = 6
	)
	iters := clampScale(scale/1400, 4, 0)
	src := fmt.Sprintf(`
.equ ITERS, %d
.proc main
    add  r20, ra, #0
    lda  r1, ITERS(zero)
    lda  r21, rootidx(zero)
    lda  r22, 0(zero)           ; root cursor
outer:
    sll  r4, r22, #3
    add  r4, r4, r21
    ld   r16, 0(r4)             ; next tree root
    jsr  ra, eval
    add  r23, r23, r2           ; accumulate result
    add  r22, r22, #1
    and  r22, r22, #%d
    sub  r1, r1, #1
    bne  r1, outer
    ret  (r20)
.endp

.proc eval
    beq  r16, nullnode          ; null-pointer guard (never taken)
    ld   r3, 0(r16)             ; op; 0 = leaf
    bne  r3, inner
    ld   r2, 24(r16)            ; leaf value
    ret  (ra)
nullnode:
    lda  r2, 0(zero)
    ret  (ra)
inner:
    sub  sp, sp, #32
    st   ra, 0(sp)
    st   r16, 8(sp)
    ld   r16, 8(r16)            ; left child
    jsr  ra, eval
    st   r2, 16(sp)
    ld   r16, 8(sp)
    ld   r16, 16(r16)           ; right child
    jsr  ra, eval
    ld   r4, 16(sp)
    ld   r16, 8(sp)
    ld   r3, 0(r16)
    ld   ra, 0(sp)
    add  sp, sp, #32
    cmpeq r5, r3, #1
    bne  r5, op_add
    cmpeq r5, r3, #2
    bne  r5, op_sub
    cmpeq r5, r3, #3
    bne  r5, op_mul
    xor  r2, r2, r4             ; op 4: xor
    ret  (ra)
op_add:
    add  r2, r2, r4
    ret  (ra)
op_sub:
    sub  r2, r4, r2
    ret  (ra)
op_mul:
    mul  r2, r2, r4
    ret  (ra)
.endp
.data
.org 0x2f000
rootidx:
.org 0x30000
nodes:
`, iters, roots-1)
	p := sanity(asm.Assemble(src))

	// Build the trees: nodes are 4 words (op, left, right, value).
	rng := stats.NewRNG(deriveSeed(0x9cc, dataSeed))
	next := uint64(nodeBase)
	alloc := func() uint64 {
		a := next
		next += 32
		return a
	}
	var build func(depth int) uint64
	build = func(depth int) uint64 {
		n := alloc()
		if depth == 0 || rng.Bool(0.15) {
			p.Data[n+0] = 0
			p.Data[n+24] = rng.Uint64() % 1000
			return n
		}
		p.Data[n+0] = uint64(rng.IntRange(1, 4))
		p.Data[n+8] = build(depth - 1)
		p.Data[n+16] = build(depth - 1)
		return n
	}
	for i := 0; i < roots; i++ {
		p.Data[0x2f000+uint64(i)*8] = build(treeDepth)
	}
	return p
}

// Go is a board-scanning kernel in the style of SPEC GO: nested loops over
// a 19x19 board with padding, classifying each point with data-dependent
// branches and probing its neighbours. The classification rotates with the
// pass number so branch directions do not settle.
func Go(scale int) *isa.Program { return GoSeeded(scale, 0) }

// GoSeeded is Go with an explicit board seed (0 = canonical).
func GoSeeded(scale int, dataSeed uint64) *isa.Program {
	passes := clampScale(scale/9500, 2, 0)
	src := fmt.Sprintf(`
.equ PASSES, %d
.proc main
    lda  r1, PASSES(zero)
    lda  r18, board(zero)
    beq  r1, badboard           ; argument guards (never taken)
    beq  r18, badboard
pass:
    lda  r2, 1(zero)            ; i
rows:
    lda  r3, 1(zero)            ; j
cols:
    mul  r4, r2, #21
    add  r4, r4, r3
    sll  r4, r4, #3
    add  r4, r4, r18
    ld   r5, 0(r4)
    add  r5, r5, r1             ; rotate classification with pass
    and  r5, r5, #3
    beq  r5, empty
    cmpeq r6, r5, #1
    bne  r6, black
    add  r9, r9, #1             ; white or edge
    br   done
empty:
    ld   r6, 8(r4)              ; east neighbour
    ld   r7, -8(r4)             ; west neighbour
    add  r6, r6, r7
    and  r6, r6, #1
    beq  r6, quiet
    add  r10, r10, #1
quiet:
    add  r11, r11, #1
    br   done
black:
    ld   r6, 168(r4)            ; south neighbour (21*8)
    add  r12, r12, r6
done:
    add  r3, r3, #1
    cmplt r6, r3, #20
    bne  r6, cols
    add  r2, r2, #1
    cmplt r6, r2, #20
    bne  r6, rows
    sub  r1, r1, #1
    bne  r1, pass
    ret
badboard:
    lda  r9, -1(zero)
    ret
.endp
.data
.org 0x50000
board:
`, passes)
	p := sanity(asm.Assemble(src))
	fillWords(p, 0x50000, 21*21, deriveSeed(0x60b0a4d, dataSeed), 3)
	return p
}
