package workload

import (
	"fmt"

	"profileme/internal/asm"
	"profileme/internal/isa"
	"profileme/internal/stats"
)

// Povray is a ray-sphere intersection kernel in the style of SPEC POVRAY:
// "floating point" dot products and rotations per ray, a sign-test branch
// on the discriminant, and an expensive divide on the hit path. The
// FP-heavy member of the suite.
func Povray(scale int) *isa.Program { return PovraySeeded(scale, 0) }

// PovraySeeded is Povray with an explicit scene seed (0 = canonical).
func PovraySeeded(scale int, dataSeed uint64) *isa.Program {
	rays := clampScale(scale/26, 8, 0)
	src := fmt.Sprintf(`
.equ RAYS, %d
.proc main
    lda  r1, RAYS(zero)
    lda  r18, spheres(zero)
    lda  r5, 88172645463325252(zero)
ray:
    mul  r5, r5, #6364136223846793005
    add  r5, r5, #1442695040888963407
    srl  r2, r5, #44            ; ray direction components
    srl  r3, r5, #24
    and  r3, r3, #0xfffff
    and  r4, r5, #0xfffff
    sll  r6, r22, #5            ; sphere record (32 B each)
    add  r6, r6, r18
    ld   r7, 0(r6)
    ld   r8, 8(r6)
    ld   r9, 16(r6)
    ld   r10, 24(r6)            ; squared radius term
    fmul r11, r2, r7            ; b = d . c
    fmul r12, r3, r8
    fmul r13, r4, r9
    fadd r11, r11, r12
    fadd r11, r11, r13
    srl  r11, r11, #24          ; rescale
    sub  r14, r11, r10          ; discriminant sign test
    blt  r14, miss
    add  r11, r11, #1
    fdiv r15, r10, r11          ; hit: normalize by b
    fadd r21, r21, r15
    br   cont
miss:
    fadd r23, r23, #1
cont:
    add  r22, r22, #1
    and  r22, r22, #63
    sub  r1, r1, #1
    bne  r1, ray
    ret
.endp
.data
.org 0x80000
spheres:
`, rays)
	p := sanity(asm.Assemble(src))
	// 64 spheres: centre components and a radius term calibrated so a
	// moderate fraction of rays "hit".
	rng := stats.NewRNG(deriveSeed(0x9077, dataSeed))
	for i := 0; i < 64; i++ {
		base := uint64(0x80000) + uint64(i)*32
		p.Data[base+0] = rng.Uint64() % (1 << 20)
		p.Data[base+8] = rng.Uint64() % (1 << 20)
		p.Data[base+16] = rng.Uint64() % (1 << 20)
		p.Data[base+24] = rng.Uint64() % (1 << 36)
	}
	return p
}

// Vortex is a record-store kernel in the style of SPEC VORTEX: hashed
// lookups into a 256 KB open-addressed record table with bounded probing,
// field updates on hit and insert-with-eviction on miss, behind a
// procedure-call interface. The store-heavy member of the suite.
func Vortex(scale int) *isa.Program { return VortexSeeded(scale, 0) }

// VortexSeeded is Vortex with an explicit record-prefill seed
// (0 = canonical).
func VortexSeeded(scale int, dataSeed uint64) *isa.Program {
	const (
		slots    = 8192
		recBase  = 0x90000
		prefill  = 5000
		probeCap = 16
	)
	txns := clampScale(scale/45, 8, 0)
	src := fmt.Sprintf(`
.equ TXNS, %d
.proc main
    add  r20, ra, #0
    lda  r1, TXNS(zero)
    lda  r21, records(zero)
    lda  r5, 1181783497276652981(zero)
txn:
    mul  r5, r5, #6364136223846793005
    add  r5, r5, #1442695040888963407
    srl  r16, r5, #40
    and  r16, r16, #0xffff
    add  r16, r16, #1           ; keys are nonzero
    jsr  ra, lookup
    beq  r2, insert
    ld   r4, 8(r2)              ; update on hit
    add  r4, r4, #1
    st   r4, 8(r2)
    st   r5, 16(r2)
    br   done
insert:
    st   r16, 0(r3)             ; insert (or evict) at last probed slot
    st   zero, 8(r3)
    st   r5, 16(r3)
done:
    sub  r1, r1, #1
    bne  r1, txn
    ret  (r20)
.endp

; lookup: r16 = key -> r2 = record address or 0; r3 = last probed slot.
.proc lookup
    beq  r16, badkey            ; null-key guard (never taken)
    mul  r2, r16, #40503
    and  r2, r2, #8191
    lda  r7, %d(zero)           ; probe budget
probe:
    sll  r3, r2, #5
    add  r3, r3, r21
    ld   r4, 0(r3)
    beq  r4, absent
    cmpeq r6, r4, r16
    bne  r6, found
    sub  r7, r7, #1
    beq  r7, absent             ; give up: caller evicts this slot
    add  r2, r2, #1
    and  r2, r2, #8191
    br   probe
absent:
    lda  r2, 0(zero)
    ret  (ra)
found:
    add  r2, r3, #0
    ret  (ra)
badkey:
    lda  r2, 0(zero)
    lda  r3, 0(zero)
    ret  (ra)
.endp
.data
.org 0x90000
records:
`, txns, probeCap)
	p := sanity(asm.Assemble(src))

	// Prefill ~60% of the table using the same hash and probing rule.
	rng := stats.NewRNG(deriveSeed(0x0c7e, dataSeed))
	inserted := 0
	for inserted < prefill {
		key := rng.Uint64()%0xffff + 1
		slot := (key * 40503) % slots
		placed := false
		for probe := 0; probe < probeCap; probe++ {
			addr := recBase + slot*32
			if p.Data[addr] == 0 {
				p.Data[addr] = key
				p.Data[addr+8] = rng.Uint64() % 1000
				p.Data[addr+16] = rng.Uint64()
				placed = true
				break
			}
			if p.Data[addr] == key {
				placed = true // duplicate key already present
				break
			}
			slot = (slot + 1) % slots
		}
		if placed {
			inserted++
		}
	}
	return p
}
