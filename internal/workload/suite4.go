package workload

import (
	"fmt"

	"profileme/internal/asm"
	"profileme/internal/isa"
	"profileme/internal/stats"
)

// The extension kernels grow the suite beyond the paper's eight SPECint95
// programs toward the heterogeneous mixes a production collector tier
// actually sees: an interpreter whose virtual state lives in memory
// (m88ksim), a regular FP stencil (swim), and a compare/exchange kernel
// whose branches never settle (eqntott). Each occupies a behavioural
// corner the original eight leave open — m88ksim combines perl's indirect
// dispatch with per-step register-file memory traffic, swim streams
// strided FP with near-total spatial locality, and eqntott keeps its swap
// branch near 50% taken forever.

// M88ksim is a CPU-simulator kernel in the style of SPEC M88KSIM: a
// fetch/decode/dispatch interpreter over a synthetic target instruction
// image, indirect-jumping through a handler table. Unlike perl's stack
// VM, the virtual machine state is a 16-entry register file held in
// memory, so every target instruction loads and stores architectural
// state, and the target's own conditional branches steer the virtual PC
// data-dependently.
func M88ksim(scale int) *isa.Program { return M88ksimSeeded(scale, 0) }

// M88ksimSeeded is M88ksim with an explicit target-image seed
// (0 = canonical).
func M88ksimSeeded(scale int, dataSeed uint64) *isa.Program {
	const imemWords = 512
	steps := clampScale(scale/27, 32, 0)
	src := fmt.Sprintf(`
.equ STEPS, %d
.proc main
    lda  r1, STEPS(zero)
    lda  r18, imem(zero)
    lda  r21, jtab88(zero)
    lda  r29, vregs(zero)
    lda  r27, vmem(zero)
    beq  r1, badimage           ; argument guards (never taken)
    beq  r18, badimage
    beq  r21, badimage
step:
    and  r2, r16, #511          ; wrap the virtual pc
    sll  r4, r2, #3
    add  r4, r4, r18
    ld   r5, 0(r4)              ; packed target instruction
    add  r16, r16, #1
    and  r6, r5, #7             ; opcode
    srl  r9, r5, #4
    and  r9, r9, #15
    sll  r9, r9, #3
    add  r9, r9, r29            ; &vr[rd]
    srl  r10, r5, #8
    and  r10, r10, #15
    sll  r10, r10, #3
    add  r10, r10, r29          ; &vr[rs]
    srl  r12, r5, #12
    and  r12, r12, #0xffff      ; immediate
    sll  r7, r6, #3
    add  r7, r7, r21
    ld   r8, 0(r7)              ; handler address
    jmp  (r8)

vop_add:
    ld   r11, 0(r9)
    ld   r13, 0(r10)
    add  r11, r11, r13
    st   r11, 0(r9)
    br   next88
vop_xor:
    ld   r11, 0(r9)
    ld   r13, 0(r10)
    xor  r11, r11, r13
    st   r11, 0(r9)
    br   next88
vop_load:
    ld   r13, 0(r10)
    add  r13, r13, r12
    sll  r13, r13, #3
    and  r13, r13, #0x7ff8      ; 32 KB virtual memory ring
    add  r13, r13, r27
    ld   r11, 0(r13)
    st   r11, 0(r9)
    br   next88
vop_store:
    ld   r13, 0(r10)
    add  r13, r13, r12
    sll  r13, r13, #3
    and  r13, r13, #0x7ff8
    add  r13, r13, r27
    ld   r11, 0(r9)
    st   r11, 0(r13)
    br   next88
vop_beq:
    ld   r13, 0(r10)
    and  r13, r13, #1           ; parity test: data-dependent direction
    bne  r13, next88
    add  r16, r12, #0           ; taken: virtual pc = immediate
    br   next88
vop_addi:
    ld   r13, 0(r10)
    add  r13, r13, r12
    st   r13, 0(r9)
    br   next88
vop_mul:
    ld   r11, 0(r9)
    ld   r13, 0(r10)
    mul  r11, r11, r13
    add  r11, r11, #1           ; keep the register file from sticking at 0
    st   r11, 0(r9)
    br   next88

next88:
    sub  r1, r1, #1
    bne  r1, step
    ret
badimage:
    lda  r19, -1(zero)
    ret
.endp
.data
.org 0x10f000
jtab88:
    .word vop_add, vop_xor, vop_load, vop_store, vop_beq, vop_addi, vop_mul, vop_addi
.org 0x110000
imem:
.org 0x112000
vregs:
.org 0x118000
vmem:
`, steps)
	p := sanity(asm.Assemble(src))

	// Target instruction image: a weighted opcode mix (ALU-heavy with
	// enough loads/stores/branches to keep the memory register file and
	// the virtual pc busy), random rd/rs, random 16-bit immediates.
	rng := stats.NewRNG(deriveSeed(0x88c51, dataSeed))
	for i := 0; i < imemWords; i++ {
		var op uint64
		switch r := rng.Intn(16); {
		case r < 4:
			op = 0 // add
		case r < 6:
			op = 1 // xor
		case r < 9:
			op = 2 // load
		case r < 11:
			op = 3 // store
		case r < 13:
			op = 4 // beq
		case r < 15:
			op = 5 // addi
		default:
			op = 6 // mul
		}
		rd := rng.Uint64() % 16
		rs := rng.Uint64() % 16
		imm := rng.Uint64() % (1 << 16)
		p.Data[0x110000+uint64(i)*8] = op | rd<<4 | rs<<8 | imm<<12
	}
	fillWords(p, 0x112000, 16, deriveSeed(0x88e6, dataSeed), 0)
	fillWords(p, 0x118000, 4096, deriveSeed(0x88da7a, dataSeed), 0)
	return p
}

// Swim is a shallow-water relaxation kernel in the style of SPEC SWIM:
// in-place 5-point stencil sweeps over a 64x64 grid with a source term,
// row by row. Strided FP loads with near-perfect spatial locality and a
// branch structure that is pure loop control — the prefetch-friendly,
// regular-memory member of the suite, the opposite corner from li.
func Swim(scale int) *isa.Program { return SwimSeeded(scale, 0) }

// SwimSeeded is Swim with an explicit initial-grid seed (0 = canonical).
func SwimSeeded(scale int, dataSeed uint64) *isa.Program {
	rows := clampScale(scale/940, 2, 0)
	src := fmt.Sprintf(`
.equ ROWS, %d
.proc main
    lda  r1, ROWS(zero)
    lda  r18, grid(zero)
    lda  r2, 1(zero)            ; interior row index, 1..62
    beq  r1, badgrid            ; argument guards (never taken)
    beq  r18, badgrid
row:
    mul  r20, r2, #512          ; row base: 64 words per row
    add  r20, r20, r18
    lda  r3, 1(zero)            ; interior column index, 1..62
col:
    sll  r4, r3, #3
    add  r4, r4, r20
    ld   r6, -512(r4)           ; north
    ld   r7, 512(r4)            ; south
    ld   r8, -8(r4)             ; west
    ld   r9, 8(r4)              ; east
    fadd r6, r6, r7
    fadd r8, r8, r9
    fadd r6, r6, r8
    fmul r6, r6, #205           ; x205 >> 10 ~ 0.2: four-neighbour average
    srl  r6, r6, #10
    add  r6, r6, #3             ; source term keeps the field energized
    st   r6, 0(r4)
    fadd r21, r21, r6           ; running checksum
    add  r3, r3, #1
    cmplt r5, r3, #63
    bne  r5, col
    add  r2, r2, #1
    cmplt r5, r2, #63
    bne  r5, nextrow
    lda  r2, 1(zero)            ; wrap back to the top interior row
nextrow:
    sub  r1, r1, #1
    bne  r1, row
    ret
badgrid:
    lda  r21, -1(zero)
    ret
.endp
.data
.org 0xa0000
grid:
`, rows)
	p := sanity(asm.Assemble(src))
	fillWords(p, 0xa0000, 64*64, deriveSeed(0x5717, dataSeed), 1<<20)
	return p
}

// Eqntott is a truth-table kernel in the style of SPEC EQNTOTT's cmppt:
// exchange passes over an array of term vectors, swapping adjacent terms
// when a compare says they are out of order. A per-element perturbation
// stream keeps the array from ever settling into sorted order, so the
// swap branch stays near 50% taken — the mispredict-heavy member of the
// suite.
func Eqntott(scale int) *isa.Program { return EqntottSeeded(scale, 0) }

// EqntottSeeded is Eqntott with an explicit term-array seed
// (0 = canonical).
func EqntottSeeded(scale int, dataSeed uint64) *isa.Program {
	terms := 256
	passes := clampScale(scale/4400, 2, 0)
	src := fmt.Sprintf(`
.equ PASSES, %d
.proc main
    lda  r1, PASSES(zero)
    lda  r18, terms(zero)
    lda  r5, 88172645463325252(zero)
    beq  r1, badterms           ; argument guards (never taken)
    beq  r18, badterms
pass:
    lda  r2, 0(zero)            ; element index
elem:
    sll  r4, r2, #3
    add  r4, r4, r18
    ld   r6, 0(r4)
    ld   r7, 8(r4)
    cmplt r8, r7, r6            ; out of order?
    beq  r8, inorder
    st   r7, 0(r4)              ; exchange
    st   r6, 8(r4)
    add  r9, r9, #1             ; swap count
inorder:
    mul  r5, r5, #6364136223846793005
    add  r5, r5, #1442695040888963407
    srl  r10, r5, #50
    beq  r10, stable            ; 1-in-16k: leave the term alone
    ld   r6, 8(r4)              ; perturb the forward term full-width, so
    xor  r6, r6, r5             ; the next compare is a fresh coin flip
    st   r6, 8(r4)              ; and sortedness never converges
stable:
    add  r2, r2, #1
    cmplt r8, r2, #%d
    bne  r8, elem
    sub  r1, r1, #1
    bne  r1, pass
    ret
badterms:
    lda  r9, -1(zero)
    ret
.endp
.data
.org 0xb0000
terms:
`, passes, terms-1)
	p := sanity(asm.Assemble(src))
	fillWords(p, 0xb0000, terms, deriveSeed(0xe9b077, dataSeed), 0)
	return p
}
