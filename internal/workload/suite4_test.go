package workload

import (
	"reflect"
	"testing"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/profile"
	"profileme/internal/sim"
)

// TestExtensionKernelCharacter pins the behavioural corner each extension
// kernel was added to occupy: retire counts within calibration, a profile
// whose samples all land in the static image, and the op-mix signature
// that distinguishes the kernel (indirect dispatch, FP stencil work,
// compare-driven swaps).
func TestExtensionKernelCharacter(t *testing.T) {
	cases := []struct {
		name string
		// op-mix signature over the retired stream, as fractions.
		wantOp       isa.Op
		minFrac      float64
		minIPC       float64
		maxIPC       float64
		minCondTaken float64 // taken fraction of conditional branches
		maxCondTaken float64
	}{
		// m88ksim: one indirect jump per interpreted target instruction
		// (~27 retired), so OpJmp must be a steady few percent.
		{name: "m88ksim", wantOp: isa.OpJmp, minFrac: 0.02, minIPC: 0.1, maxIPC: 2.5, minCondTaken: 0.3, maxCondTaken: 0.995},
		// swim: the stencil body is a third FP ops, and its branches are
		// loop control, so conditionals are taken almost always.
		{name: "swim", wantOp: isa.OpFAdd, minFrac: 0.1, minIPC: 0.5, maxIPC: 4.0, minCondTaken: 0.9, maxCondTaken: 1.0},
		// eqntott: compare-driven swaps keep conditional-branch direction
		// far from settled (the loop-control branches pull the aggregate
		// taken rate up, but nowhere near swim's).
		{name: "eqntott", wantOp: isa.OpCmpLt, minFrac: 0.04, minIPC: 0.3, maxIPC: 3.0, minCondTaken: 0.35, maxCondTaken: 0.65},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b, ok := ByName(tc.name)
			if !ok {
				t.Fatalf("%s missing from suite", tc.name)
			}
			prog := b.Build(30000)

			// Functional ground truth: retired count and op mix.
			m := sim.New(prog)
			var retired, opCount, condBr, condTaken uint64
			for !m.Halted() {
				rec, ok, err := m.Step()
				if err != nil {
					t.Fatalf("functional run: %v", err)
				}
				if !ok {
					break
				}
				retired++
				if rec.Inst.Op == tc.wantOp {
					opCount++
				}
				if rec.Inst.Op == isa.OpBeq || rec.Inst.Op == isa.OpBne || rec.Inst.Op == isa.OpBlt || rec.Inst.Op == isa.OpBge {
					condBr++
					if rec.Taken {
						condTaken++
					}
				}
				if retired > 3_000_000 {
					t.Fatal("did not halt")
				}
			}
			if retired < 10_000 || retired > 400_000 {
				t.Fatalf("retired %d at scale 30000: calibration off", retired)
			}
			if frac := float64(opCount) / float64(retired); frac < tc.minFrac {
				t.Errorf("%s op %v fraction %.3f < %.3f", tc.name, tc.wantOp, frac, tc.minFrac)
			}
			if condBr == 0 {
				t.Fatal("no conditional branches retired")
			}
			taken := float64(condTaken) / float64(condBr)
			if taken < tc.minCondTaken || taken > tc.maxCondTaken {
				t.Errorf("conditional taken rate %.3f outside [%.2f, %.2f]", taken, tc.minCondTaken, tc.maxCondTaken)
			}

			// Pipeline run with a ProfileMe unit: retire count must match
			// the functional ground truth exactly, sampling must cover the
			// run, and every sampled PC must be a static instruction.
			prog2 := b.Build(30000)
			src := sim.NewMachineSource(sim.New(prog2), 0)
			pipe, err := cpu.New(prog2, src, cpu.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			unit := core.MustNewUnit(core.Config{
				MeanInterval: 64, Window: 80, BufferDepth: 8,
				CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 7,
			})
			db := profile.NewDB(64, 80, 4)
			pipe.AttachProfileMe(unit, func(ss []core.Sample) {
				for _, s := range ss {
					if s.First.Events.Has(core.EvNoInstruction) {
						continue
					}
					db.Add(s)
				}
			})
			res, err := pipe.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Retired != retired {
				t.Fatalf("pipeline retired %d, functional %d", res.Retired, retired)
			}
			if ipc := res.IPC(); ipc < tc.minIPC || ipc > tc.maxIPC {
				t.Errorf("IPC %.2f outside [%.2f, %.2f]", ipc, tc.minIPC, tc.maxIPC)
			}
			if db.Samples() < 50 {
				t.Fatalf("only %d samples", db.Samples())
			}
			for _, pc := range db.PCs() {
				if _, ok := prog2.At(pc); !ok {
					t.Fatalf("sampled PC %#x is not a static instruction", pc)
				}
			}
		})
	}
}

// TestSuiteSeededBuilders pins the satellite contract for every suite
// member: BuildSeeded exists, dataSeed 0 reproduces Build exactly, a
// nonzero dataSeed is deterministic, changes the data image without
// changing the code, and still halts within the calibration bounds.
func TestSuiteSeededBuilders(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.BuildSeeded == nil {
				t.Fatal("no BuildSeeded")
			}
			canonical := b.Build(30000)
			zero := b.BuildSeeded(30000, 0)
			if !reflect.DeepEqual(canonical.Insts, zero.Insts) || !reflect.DeepEqual(canonical.Data, zero.Data) {
				t.Fatal("BuildSeeded(scale, 0) != Build(scale)")
			}

			a1 := b.BuildSeeded(30000, 9001)
			a2 := b.BuildSeeded(30000, 9001)
			if !reflect.DeepEqual(a1.Insts, a2.Insts) || !reflect.DeepEqual(a1.Data, a2.Data) {
				t.Fatal("same (scale, dataSeed) built different programs")
			}
			if !reflect.DeepEqual(canonical.Insts, a1.Insts) {
				t.Fatal("dataSeed changed the code image")
			}
			if reflect.DeepEqual(canonical.Data, a1.Data) {
				t.Fatal("dataSeed did not change the data image")
			}

			n := runFunctional(t, a1, 3_000_000)
			if n < 10_000 || n > 400_000 {
				t.Fatalf("seeded variant retired %d at scale 30000", n)
			}
		})
	}
}
