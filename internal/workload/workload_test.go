package workload

import (
	"testing"

	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/sim"
)

// runFunctional executes prog and returns the instruction count, failing
// the test on any error or on suspiciously endless execution.
func runFunctional(t *testing.T, prog *isa.Program, maxInst uint64) uint64 {
	t.Helper()
	m := sim.New(prog)
	n, err := m.Run(maxInst, nil)
	if err != nil {
		t.Fatalf("functional run: %v", err)
	}
	if !m.Halted() {
		t.Fatalf("program did not halt within %d instructions", maxInst)
	}
	return n
}

func TestSuiteProgramsRunToCompletion(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Build(30000)
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			n := runFunctional(t, prog, 3_000_000)
			if n < 10000 {
				t.Fatalf("only %d instructions at scale 30000", n)
			}
			if n > 400_000 {
				t.Fatalf("%d instructions at scale 30000: scale calibration off", n)
			}
		})
	}
}

func TestSuiteScalesRoughlyLinearly(t *testing.T) {
	for _, b := range Suite() {
		small := runFunctional(t, b.Build(20000), 3_000_000)
		big := runFunctional(t, b.Build(80000), 12_000_000)
		ratio := float64(big) / float64(small)
		if ratio < 2 || ratio > 8 {
			t.Errorf("%s: scale 4x changed instructions by %.1fx", b.Name, ratio)
		}
	}
}

func TestSuiteOnPipeline(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Build(20000)
			src := sim.NewMachineSource(sim.New(prog), 0)
			p, err := cpu.New(prog, src, cpu.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(30_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Retired == 0 {
				t.Fatal("nothing retired")
			}
			want := runFunctional(t, b.Build(20000), 3_000_000)
			if res.Retired != want {
				t.Fatalf("pipeline retired %d, functional executed %d", res.Retired, want)
			}
			if ipc := res.IPC(); ipc <= 0.05 || ipc > 4.0 {
				t.Fatalf("implausible IPC %.2f", ipc)
			}
		})
	}
}

func TestSuiteDiversity(t *testing.T) {
	// The suite must span behaviours: ijpeg should out-IPC li by a wide
	// margin (that contrast carries several experiments), and perl must
	// actually exercise indirect jumps.
	run := func(name string) cpu.Result {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		prog := b.Build(40000)
		src := sim.NewMachineSource(sim.New(prog), 0)
		p, err := cpu.New(prog, src, cpu.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ij, li := run("ijpeg"), run("li")
	if ij.IPC() < 2*li.IPC() {
		t.Fatalf("ijpeg IPC %.2f not >> li IPC %.2f", ij.IPC(), li.IPC())
	}

	perlProg := Perl(40000)
	hasIndirect := false
	for _, in := range perlProg.Insts {
		if in.Op == isa.OpJmp {
			hasIndirect = true
		}
	}
	if !hasIndirect {
		t.Fatal("perl kernel has no indirect jumps")
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("compress"); !ok {
		t.Fatal("compress missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus benchmark found")
	}
	if len(Names()) != 11 {
		t.Fatalf("suite has %d entries", len(Names()))
	}
}

func TestFigure2Program(t *testing.T) {
	prog := Figure2Program(50, 100)
	if _, ok := prog.Label("theload"); !ok {
		t.Fatal("theload label missing")
	}
	n := runFunctional(t, prog, 1_000_000)
	// Roughly (load + 50 nops + sub + bne) * 100.
	if n < 5000 || n > 6000 {
		t.Fatalf("executed %d", n)
	}
}

func TestFigure7Program(t *testing.T) {
	prog := Figure7Program(500)
	runFunctional(t, prog, 1_000_000)
	loops := Figure7Loops(prog)
	if len(loops) != 3 {
		t.Fatalf("loops = %v", loops)
	}
	for name, r := range loops {
		if r[0] >= r[1] {
			t.Errorf("%s: empty range %v", name, r)
		}
	}
	// Ranges must not overlap.
	a, b, c := loops["A-serial"], loops["B-memory"], loops["C-parallel"]
	if a[1] > b[0] || b[1] > c[0] {
		t.Fatalf("loop ranges overlap: %v %v %v", a, b, c)
	}
}

func TestTable1Programs(t *testing.T) {
	progs := Table1Programs(300)
	if len(progs) != 6 {
		t.Fatalf("%d table-1 programs", len(progs))
	}
	for _, name := range Table1Order() {
		prog, ok := progs[name]
		if !ok {
			t.Fatalf("missing kernel %s", name)
		}
		runFunctional(t, prog, 2_000_000)
	}
}

func TestTable1KernelsStressIntendedStage(t *testing.T) {
	// Each kernel must make its intended latency component visible in
	// the timing: spot-check two extremes with ground truth.
	run := func(name string) (cpu.Result, []cpu.PCStats) {
		prog := Table1Programs(400)[name]
		src := sim.NewMachineSource(sim.New(prog), 0)
		p, err := cpu.New(prog, src, cpu.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res, p.PerPC()
	}
	memRes, _ := run("mem-latency")
	if memRes.CPI() < 15 {
		t.Fatalf("mem-latency kernel CPI %.1f: chase is not missing", memRes.CPI())
	}
	fuRes, _ := run("fu-contention")
	if fuRes.CPI() > 3 {
		t.Fatalf("fu-contention kernel CPI %.1f: loads are not port-bound, they are stalled", fuRes.CPI())
	}
}

func TestGenerateRunsAndVaries(t *testing.T) {
	cfgA := DefaultGenConfig()
	cfgA.MainIters = 200
	progA := Generate(cfgA)
	nA := runFunctional(t, progA, 5_000_000)
	if nA < 1000 {
		t.Fatalf("generated program too small: %d", nA)
	}

	cfgB := cfgA
	cfgB.Seed = 777
	progB := Generate(cfgB)
	if progA.Len() == progB.Len() {
		t.Log("different seeds gave equal code size (possible but unlikely)")
	}
	runFunctional(t, progB, 5_000_000)

	// Deterministic for a fixed seed.
	progA2 := Generate(cfgA)
	if progA.Len() != progA2.Len() {
		t.Fatal("generator not deterministic")
	}
	for i := range progA.Insts {
		if progA.Insts[i] != progA2.Insts[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestGeneratedProgramOnPipeline(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.MainIters = 300
	cfg.Seed = 9
	prog := Generate(cfg)
	want := runFunctional(t, prog, 5_000_000)

	src := sim.NewMachineSource(sim.New(prog), 0)
	p, err := cpu.New(prog, src, cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != want {
		t.Fatalf("pipeline retired %d, functional %d", res.Retired, want)
	}
}

func TestGeneratedProgramsFuzzPipeline(t *testing.T) {
	// Many random programs: the pipeline must always retire exactly the
	// functional instruction count — the strongest end-to-end invariant.
	for seed := uint64(100); seed < 112; seed++ {
		cfg := GenConfig{Procs: 4, BodyBlocks: 4, MainIters: 60, Seed: seed}
		prog := Generate(cfg)
		want := runFunctional(t, prog, 3_000_000)
		src := sim.NewMachineSource(sim.New(prog), 0)
		p, err := cpu.New(prog, src, cpu.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Retired != want {
			t.Fatalf("seed %d: retired %d != functional %d", seed, res.Retired, want)
		}
	}
}
