package workload

import (
	"fmt"
	"strings"

	"profileme/internal/asm"
	"profileme/internal/isa"
	"profileme/internal/stats"
)

// Figure2Program builds the paper's Figure 2 microbenchmark: a loop with a
// single always-hitting load followed by hundreds of nops. Monitoring
// D-cache-reference events on this program exposes how far the
// event-counter interrupt PC lands from the load that caused the event.
// The load's PC is bound to the label "theload".
func Figure2Program(nops, iters int) *isa.Program {
	if nops < 1 {
		nops = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, ".equ ITERS, %d\n.proc main\n    lda r4, buf(zero)\n    ld r2, 0(r4)\n    lda r1, ITERS(zero)\nloop:\ntheload:\n    ld   r2, 0(r4)\n", iters)
	for i := 0; i < nops; i++ {
		b.WriteString("    nop\n")
	}
	b.WriteString("    sub  r1, r1, #1\n    bne  r1, loop\n    ret\n.endp\n.data\n.org 0x20000\nbuf:\n    .word 7\n")
	return sanity(asm.Assemble(b.String()))
}

// Figure7Program builds the paper's Figure 7 three-loop program. The loops
// exercise different combinations of latency and useful concurrency, and —
// as in any real program — different execution counts (the high-ILP inner
// loop is the hottest):
//
//	loop A ("circles"): a serial multiply chain with no parallel work,
//	  run iters times — high CPI, so in-flight instructions spend long in
//	  the machine and almost every issue slot during their windows is
//	  wasted.
//	loop B ("squares"): a dependent cache-resident load chain with a
//	  little parallel work, run 2*iters times — moderate on both axes.
//	loop C ("triangles"): one loop-carried multiply amid abundant
//	  independent work, run 24*iters times — near-peak IPC, so its hot
//	  instructions accumulate the highest *total* latency of the program
//	  while wasting the fewest slots.
//
// Ranking instructions by total latency therefore names loop C the
// bottleneck, while the wasted-slot metric correctly names loop A — the
// paper's argument for measuring useful concurrency via paired sampling.
func Figure7Program(iters int) *isa.Program { return Figure7ProgramSeeded(iters, 0) }

// Figure7ProgramSeeded is Figure7Program with an explicit pointer-ring
// seed (0 = canonical).
func Figure7ProgramSeeded(iters int, dataSeed uint64) *isa.Program {
	src := fmt.Sprintf(`
.equ ITERS, %d
.equ ITERSB, %d
.equ ITERSC, %d
.proc main
    lda  r1, ITERS(zero)
    lda  r16, adata(zero)
loopA:
    mul  r2, r2, #12345         ; serial chain, nothing to overlap
    mul  r2, r2, #777
    add  r2, r2, #13
    sub  r1, r1, #1
    bne  r1, loopA

    lda  r1, ITERSB(zero)
    lda  r16, bdata(zero)
loopB:
    ld   r3, 0(r16)             ; dependent loads, cache-resident
    add  r16, r3, #0
    add  r4, r4, r3
    add  r5, r5, #1
    sub  r1, r1, #1
    bne  r1, loopB

    lda  r1, ITERSC(zero)
    lda  r17, cdata(zero)
loopC:
    mul  r6, r6, #9973          ; one loop-carried multiply...
    add  r7, r7, #1             ; ...amid abundant independent work
    add  r8, r8, #2
    add  r9, r9, #3
    add  r10, r10, #4
    add  r11, r11, #5
    add  r12, r12, #6
    add  r13, r13, #7
    add  r14, r14, #8
    add  r15, r15, #9
    add  r21, r21, #10
    add  r22, r22, #11
    add  r23, r23, #12
    add  r24, r24, #13
    add  r25, r25, #14
    add  r27, r27, #15
    add  r28, r28, #16
    add  r29, r7, r8
    add  r2, r9, r10
    add  r3, r11, r12
    add  r4, r13, r14
    add  r5, r15, r21
    sub  r1, r1, #1
    bne  r1, loopC
    ret
.endp
.data
.org 0x20000
bdata:
.org 0x28000
adata:
.org 0x30000
cdata:
`, iters, 2*iters, 24*iters)
	p := sanity(asm.Assemble(src))
	// loop B's pointer ring: 64 cache-resident cells pointing at each
	// other in a shuffled cycle.
	rng := stats.NewRNG(deriveSeed(0xf167, dataSeed))
	perm := rng.Perm(64)
	for i := 0; i < 64; i++ {
		from := uint64(0x20000) + uint64(perm[i])*8
		to := uint64(0x20000) + uint64(perm[(i+1)%64])*8
		p.Data[from] = to
	}
	return p
}

// Figure7Loops maps each static loop-body instruction range to its loop
// name, so the experiment can label points like the paper's symbols.
func Figure7Loops(p *isa.Program) map[string][2]uint64 {
	la, _ := p.Label("loopA")
	lb, _ := p.Label("loopB")
	lc, _ := p.Label("loopC")
	end := p.MaxPC()
	return map[string][2]uint64{
		"A-serial":   {la, lb - 2*isa.InstBytes},
		"B-memory":   {lb, lc - 2*isa.InstBytes},
		"C-parallel": {lc, end},
	}
}

// Table1Programs returns one stress kernel per Table 1 latency row, each
// engineered so that its named pipeline-stage latency dominates. The keys
// are stable identifiers used by the table harness.
func Table1Programs(iters int) map[string]*isa.Program { return Table1ProgramsSeeded(iters, 0) }

// Table1ProgramsSeeded is Table1Programs with an explicit pointer-ring
// seed (0 = canonical).
func Table1ProgramsSeeded(iters int, dataSeed uint64) map[string]*isa.Program {
	progs := make(map[string]*isa.Program)

	// fetch->map: the mapper stalls because the issue queue is full
	// behind a long-latency producer.
	progs["map-stall"] = sanity(asm.Assemble(fmt.Sprintf(`
.equ ITERS, %d
.proc main
    lda  r1, ITERS(zero)
loop:
    mul  r2, r2, #3             ; serial producer chain clogs the queue
    add  r3, r2, #1
    add  r4, r2, #2
    add  r5, r2, #3
    add  r6, r2, #4
    add  r7, r2, #5
    add  r8, r2, #6
    add  r9, r2, #7
    add  r10, r2, #8
    add  r11, r2, #9
    add  r12, r2, #10
    add  r13, r2, #11
    add  r14, r2, #12
    add  r15, r2, #13
    add  r21, r2, #14
    add  r22, r2, #15
    add  r23, r2, #16
    add  r24, r2, #17
    add  r25, r2, #18
    add  r29, r2, #19
    add  r27, r2, #20
    add  r28, r2, #21
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp`, iters)))

	// map->data-ready: every instruction waits on a 7-cycle multiply.
	progs["dep-stall"] = sanity(asm.Assemble(fmt.Sprintf(`
.equ ITERS, %d
.proc main
    lda  r1, ITERS(zero)
loop:
    mul  r2, r2, #3
    add  r3, r2, #1             ; data-ready lags map by the mul latency
    mul  r4, r3, #5
    add  r5, r4, #1
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp`, iters)))

	// data-ready->issue: ready loads outnumber the two memory ports.
	progs["fu-contention"] = sanity(asm.Assemble(fmt.Sprintf(`
.equ ITERS, %d
.proc main
    lda  r1, ITERS(zero)
    lda  r16, buf(zero)
loop:
    ld   r2, 0(r16)
    ld   r3, 8(r16)
    ld   r4, 16(r16)
    ld   r5, 24(r16)
    ld   r6, 32(r16)
    ld   r7, 40(r16)
    ld   r8, 48(r16)
    ld   r9, 56(r16)
    ld   r2, 0(r16)
    ld   r3, 8(r16)
    ld   r4, 16(r16)
    ld   r5, 24(r16)
    ld   r6, 32(r16)
    ld   r7, 40(r16)
    ld   r8, 48(r16)
    ld   r9, 56(r16)
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp
.data
.org 0x20000
buf:
    .word 1, 2, 3, 4, 5, 6, 7, 8
`, iters)))

	// issue->retire-ready: unpipelined divides.
	progs["exec-latency"] = sanity(asm.Assemble(fmt.Sprintf(`
.equ ITERS, %d
.proc main
    lda  r1, ITERS(zero)
    lda  r2, 1000000(zero)
loop:
    fdiv r2, r2, #3
    add  r2, r2, #1000000
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp`, iters)))

	// retire-ready->retire: fast instructions stuck behind a consumer of
	// a missing load's value. (The load itself retires early — the Alpha
	// lets loads retire before the value returns — so the retirement
	// blockage comes from the first use of the value.)
	progs["retire-stall"] = sanity(asm.Assemble(fmt.Sprintf(`
.equ ITERS, %d
.proc main
    lda  r1, ITERS(zero)
    lda  r16, big(zero)
loop:
    ld   r2, 0(r16)             ; misses far into memory
    add  r17, r2, #1            ; consumer: completes when the value lands
    add  r16, r16, #8192
    and  r16, r16, #0x2ffff8
    or   r16, r16, #0x200000
    add  r3, r3, #1             ; complete instantly, retire late
    add  r4, r4, #2
    add  r5, r5, #3
    add  r6, r6, #4
    add  r7, r7, #5
    add  r8, r8, #6
    add  r9, r9, #7
    add  r10, r10, #8
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp
.data
.org 0x200000
big:
`, iters)))

	// load issue->completion: a dependent chase that misses everywhere.
	progs["mem-latency"] = sanity(asm.Assemble(fmt.Sprintf(`
.equ ITERS, %d
.proc main
    lda  r1, ITERS(zero)
    lda  r16, ring(zero)
loop:
    ld   r16, 0(r16)            ; pointer chase across 4 MB
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp
.data
.org 0x400000
ring:
`, iters)))
	// Pointer ring over 4 MB with 8 KB stride: every load misses L1,
	// most miss L2 and the TLB.
	mem := progs["mem-latency"]
	const cells = 512
	rng := stats.NewRNG(deriveSeed(0x7ab1e, dataSeed))
	perm := rng.Perm(cells)
	for i := 0; i < cells; i++ {
		from := uint64(0x400000) + uint64(perm[i])*8192
		to := uint64(0x400000) + uint64(perm[(i+1)%cells])*8192
		mem.Data[from] = to
	}
	return progs
}

// Table1Order returns the Table 1 kernel names in the paper's row order.
func Table1Order() []string {
	return []string{"map-stall", "dep-stall", "fu-contention", "exec-latency", "retire-stall", "mem-latency"}
}

// Table1Baseline returns a balanced reference kernel that stresses no
// particular pipeline stage: short dependence chains, cache-resident
// memory traffic and spare issue bandwidth. The Table 1 experiment
// compares each stress kernel's target latency against this baseline.
func Table1Baseline(iters int) *isa.Program {
	return sanity(asm.Assemble(fmt.Sprintf(`
.equ ITERS, %d
.proc main
    lda  r1, ITERS(zero)
    lda  r16, buf(zero)
loop:
    ld   r2, 0(r16)
    add  r3, r2, #1
    add  r4, r4, #1
    add  r5, r5, #2
    st   r3, 8(r16)
    add  r6, r6, #3
    add  r7, r7, #4
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp
.data
.org 0x20000
buf:
    .word 5, 0
`, iters)))
}
