package workload

import (
	"fmt"

	"profileme/internal/asm"
	"profileme/internal/isa"
	"profileme/internal/stats"
)

// Ijpeg is a dense arithmetic kernel in the style of SPEC IJPEG's block
// transforms: unrolled butterfly arithmetic over 8-word blocks with
// integer multiplies, regular strided memory and almost no branches. The
// high-ILP member of the suite.
func Ijpeg(scale int) *isa.Program { return IjpegSeeded(scale, 0) }

// IjpegSeeded is Ijpeg with an explicit pixel seed (0 = canonical).
func IjpegSeeded(scale int, dataSeed uint64) *isa.Program {
	blocks := clampScale(scale/45, 8, 0)
	src := fmt.Sprintf(`
.equ BLOCKS, %d
.proc main
    lda  r1, BLOCKS(zero)
    lda  r16, pixels(zero)
block:
    ld   r2, 0(r16)
    ld   r3, 8(r16)
    ld   r4, 16(r16)
    ld   r5, 24(r16)
    ld   r6, 32(r16)
    ld   r7, 40(r16)
    ld   r8, 48(r16)
    ld   r9, 56(r16)
    add  r10, r2, r9            ; butterfly stage 1
    sub  r11, r2, r9
    add  r12, r3, r8
    sub  r13, r3, r8
    add  r14, r4, r7
    sub  r15, r4, r7
    add  r21, r5, r6
    sub  r22, r5, r6
    mul  r10, r10, #181         ; stage 2: scaled rotations
    mul  r11, r11, #98
    mul  r12, r12, #139
    mul  r13, r13, #236
    mul  r14, r14, #181
    mul  r15, r15, #98
    mul  r21, r21, #139
    mul  r22, r22, #236
    add  r23, r10, r14          ; stage 3: recombination
    sub  r24, r10, r14
    add  r25, r12, r21
    sub  r27, r12, r21
    add  r2, r23, r25
    sub  r3, r23, r25
    add  r4, r24, r27
    sub  r5, r24, r27
    add  r6, r11, r22
    sub  r7, r11, r22
    add  r8, r13, r15
    sub  r9, r13, r15
    st   r2, 0(r16)
    st   r3, 8(r16)
    st   r4, 16(r16)
    st   r5, 24(r16)
    st   r6, 32(r16)
    st   r7, 40(r16)
    st   r8, 48(r16)
    st   r9, 56(r16)
    add  r16, r16, #64
    and  r16, r16, #0x77fc0     ; wrap within the 32 KB pixel region
    sub  r1, r1, #1
    bne  r1, block
    ret
.endp
.data
.org 0x70000
pixels:
`, blocks)
	p := sanity(asm.Assemble(src))
	fillWords(p, 0x70000, 4096, deriveSeed(0x1dea1, dataSeed), 4096)
	return p
}

// Li is a list-interpreter kernel in the style of SPEC LI: serial pointer
// chasing through scattered cons cells, summing cars and branching on
// their parity. The low-ILP, cache-hostile member of the suite.
func Li(scale int) *isa.Program { return LiSeeded(scale, 0) }

// LiSeeded is Li with an explicit heap-scatter seed (0 = canonical).
func LiSeeded(scale int, dataSeed uint64) *isa.Program {
	const (
		lists    = 64
		cells    = 200
		cellBase = 0x100000
	)
	iters := clampScale(scale/(cells*9), 2, 0)
	src := fmt.Sprintf(`
.equ ITERS, %d
.proc main
    lda  r1, ITERS(zero)
    lda  r18, heads(zero)
    lda  r22, 0(zero)           ; list cursor
outer:
    sll  r4, r22, #3
    add  r4, r4, r18
    ld   r16, 0(r4)             ; list head
trav:
    beq  r16, fin
    ld   r2, 0(r16)             ; car
    add  r23, r23, r2
    and  r3, r2, #1
    beq  r3, evn
    add  r24, r24, #1
evn:
    ld   r16, 8(r16)            ; cdr: the serializing load
    br   trav
fin:
    add  r22, r22, #1
    and  r22, r22, #63
    sub  r1, r1, #1
    bne  r1, outer
    ret
.endp
.data
.org 0xff000
heads:
.org 0x100000
cellheap:
`, iters)
	p := sanity(asm.Assemble(src))

	// Scatter the cells of each list across a 1 MB heap so the cdr chain
	// misses the caches, like a fragmented lisp heap.
	rng := stats.NewRNG(deriveSeed(0x115b, dataSeed))
	slots := rng.Perm(lists * cells)
	cellAddr := func(slot int) uint64 { return cellBase + uint64(slots[slot])*64 }
	slot := 0
	for l := 0; l < lists; l++ {
		head := cellAddr(slot)
		p.Data[0xff000+uint64(l)*8] = head
		for c := 0; c < cells; c++ {
			addr := cellAddr(slot)
			p.Data[addr] = rng.Uint64() % 4096 // car
			if c < cells-1 {
				p.Data[addr+8] = cellAddr(slot + 1) // cdr
			} else {
				p.Data[addr+8] = 0 // nil
			}
			slot++
		}
	}
	return p
}

// Perl is a bytecode-interpreter kernel in the style of SPEC PERL:
// a dispatch loop that indirect-jumps through a handler table, with VM
// stack traffic and a hash-lookup opcode. The indirect-branch-hostile
// member of the suite.
func Perl(scale int) *isa.Program { return PerlSeeded(scale, 0) }

// PerlSeeded is Perl with an explicit bytecode seed (0 = canonical).
func PerlSeeded(scale int, dataSeed uint64) *isa.Program {
	const codeWords = 1024
	steps := clampScale(scale/16, 32, 0)
	src := fmt.Sprintf(`
.equ STEPS, %d
.proc main
    lda  r1, STEPS(zero)
    lda  r18, code(zero)
    lda  r21, jtab(zero)
    lda  r17, vmstack(zero)
    lda  r28, hashtab(zero)
    beq  r1, badcode            ; argument guards (never taken)
    beq  r18, badcode
    beq  r21, badcode
dispatch:
    sll  r4, r16, #3
    add  r4, r4, r18
    ld   r5, 0(r4)              ; packed op: opcode | operand<<8
    and  r6, r5, #7
    sll  r7, r6, #3
    add  r7, r7, r21
    ld   r8, 0(r7)              ; handler address
    add  r16, r16, #1
    and  r16, r16, #1023        ; wrap VM pc
    jmp  (r8)

op_push:
    srl  r9, r5, #8
    st   r9, 0(r17)
    add  r17, r17, #8
    and  r17, r17, #0x61ff8     ; clamp VM stack into its ring
    br   bottom
op_add:
    sub  r17, r17, #8
    and  r17, r17, #0x61ff8
    ld   r9, 0(r17)
    sub  r17, r17, #8
    and  r17, r17, #0x61ff8
    ld   r10, 0(r17)
    add  r9, r9, r10
    st   r9, 0(r17)
    add  r17, r17, #8
    and  r17, r17, #0x61ff8
    br   bottom
op_mul:
    sub  r17, r17, #8
    and  r17, r17, #0x61ff8
    ld   r9, 0(r17)
    mul  r19, r19, r9
    add  r19, r19, #1
    br   bottom
op_jz:
    sub  r17, r17, #8
    and  r17, r17, #0x61ff8
    ld   r9, 0(r17)
    bne  r9, bottom
    srl  r16, r5, #8            ; VM branch target
    and  r16, r16, #1023
    br   bottom
op_hash:
    mul  r9, r19, #2654435761
    srl  r9, r9, #8
    and  r9, r9, #2047
    sll  r9, r9, #3
    add  r9, r9, r28
    ld   r10, 0(r9)
    add  r19, r19, r10
    br   bottom
op_nop:
    add  r25, r25, #1
    br   bottom

bottom:
    sub  r1, r1, #1
    bne  r1, dispatch
    ret
badcode:
    lda  r19, -1(zero)
    ret
.endp
.data
.org 0x5f000
jtab:
    .word op_push, op_add, op_mul, op_jz, op_hash, op_nop, op_nop, op_nop
.org 0x60000
vmstack:
.org 0x62000
code:
.org 0x64000
hashtab:
`, steps)
	p := sanity(asm.Assemble(src))

	// Generate bytecode biased toward pushes so the VM stack ring mostly
	// holds real values; operands are random.
	rng := stats.NewRNG(deriveSeed(0x9e71, dataSeed))
	for i := 0; i < codeWords; i++ {
		var op uint64
		switch r := rng.Intn(10); {
		case r < 4:
			op = 0 // push
		case r < 6:
			op = 1 // add
		case r < 7:
			op = 2 // mul
		case r < 8:
			op = 3 // jz
		case r < 9:
			op = 4 // hash
		default:
			op = 5 // nop
		}
		operand := rng.Uint64() % 1024
		p.Data[0x62000+uint64(i)*8] = op | operand<<8
	}
	fillWords(p, 0x64000, 2048, deriveSeed(0xdeadbee, dataSeed), 9999)
	return p
}
