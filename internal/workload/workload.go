// Package workload provides the benchmark programs the experiments run:
// a suite of eight synthetic kernels shaped after the SPECint95 programs
// the paper profiles (COMPRESS, GCC, GO, IJPEG, LI, PERL, POVRAY, VORTEX),
// three extension kernels that grow the suite toward the production
// workload mixes continuous profiling serves (M88KSIM, SWIM, EQNTOTT),
// plus the special-purpose programs behind individual figures — the
// Figure 2 load+nops loop, the Figure 7 three-loop program, and the
// Table 1 stall-stress kernels.
//
// The kernels are synthetic but structurally faithful: each reproduces the
// control-flow and memory behaviour that its namesake is known for
// (compress hashes a data stream, li chases pointers, ijpeg does dense
// arithmetic, perl dispatches through a jump table, and so on). That is
// what the paper's analyses actually consume — instruction streams with
// realistic branch structure, cache behaviour and varying ILP — and it is
// the documented substitution for the proprietary SPEC binaries and
// traces (DESIGN.md §2).
package workload

import (
	"fmt"
	"sort"

	"profileme/internal/isa"
	"profileme/internal/stats"
)

// Benchmark names a suite program and builds it at a given scale
// (approximately scale dynamic instructions, within a small factor).
//
// Every builder is seeded: BuildSeeded(scale, dataSeed) varies the
// kernel's data layout (hash-table contents, tree shapes, bytecode,
// grids) deterministically from dataSeed, so a traffic spec naming a
// (benchmark, scale, dataSeed) triple reproduces the program bit-for-bit
// with no hidden package state. dataSeed 0 selects the canonical layout;
// Build(scale) is exactly BuildSeeded(scale, 0).
type Benchmark struct {
	Name        string
	Notes       string // dominant behaviour, for reports
	Build       func(scale int) *isa.Program
	BuildSeeded func(scale int, dataSeed uint64) *isa.Program
}

// Suite returns the benchmark suite: the paper's eight SPECint95-flavoured
// kernels in the paper's order, then the extension kernels.
func Suite() []Benchmark {
	return []Benchmark{
		{"compress", "hash-table stream compression: data-dependent branches, table misses", Compress, CompressSeeded},
		{"gcc", "expression-tree evaluation: call-heavy, branchy, pointer loads", GCC, GCCSeeded},
		{"go", "board scanning: irregular data-dependent branches", Go, GoSeeded},
		{"ijpeg", "dense block arithmetic: high ILP, regular memory", Ijpeg, IjpegSeeded},
		{"li", "cons-cell list interpreter: serial pointer chasing", Li, LiSeeded},
		{"perl", "bytecode interpreter: indirect-jump dispatch, stack traffic", Perl, PerlSeeded},
		{"povray", "ray-sphere arithmetic: FP-heavy with divides", Povray, PovraySeeded},
		{"vortex", "record store: hashed lookups, stores, call chains", Vortex, VortexSeeded},
		{"m88ksim", "CPU-simulator interpreter: indirect dispatch over a memory register file", M88ksim, M88ksimSeeded},
		{"swim", "shallow-water relaxation: 5-point FP stencil, regular strides", Swim, SwimSeeded},
		{"eqntott", "truth-table term exchange: compare-driven swaps, mispredict-heavy", Eqntott, EqntottSeeded},
	}
}

// ByName returns the named suite benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns the suite benchmark names in order.
func Names() []string {
	s := Suite()
	names := make([]string, len(s))
	for i, b := range s {
		names[i] = b.Name
	}
	return names
}

// deriveSeed mixes a caller-supplied data seed into a kernel's canonical
// data-fill seed. dataSeed 0 means "canonical": the kernel lays out its
// data exactly as the golden runs expect, so every existing digest and
// experiment stands. Any other value yields a decorrelated but fully
// reproducible layout — the same (benchmark, scale, dataSeed) triple
// always builds the same program.
func deriveSeed(canonical, dataSeed uint64) uint64 {
	if dataSeed == 0 {
		return canonical
	}
	return canonical ^ (dataSeed*0x9e3779b97f4a7c15 + 0x94d049bb133111eb)
}

// fillWords writes n pseudo-random words (bounded by mod when mod > 0)
// into prog.Data starting at base, stepping 8 bytes.
func fillWords(prog *isa.Program, base uint64, n int, seed uint64, mod uint64) {
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		v := rng.Uint64()
		if mod > 0 {
			v %= mod
		}
		prog.Data[base+uint64(i)*8] = v
	}
}

// sanity validates a built program once at construction time; workload
// bugs should fail loudly, not corrupt experiments.
func sanity(p *isa.Program, err error) *isa.Program {
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return p
}

// clampScale bounds scale to [lo, hi].
func clampScale(scale, lo, hi int) int {
	if scale < lo {
		return lo
	}
	if hi > 0 && scale > hi {
		return hi
	}
	return scale
}

// DataLabels returns the sorted data labels of a program (debug helper
// for workload tests).
func DataLabels(p *isa.Program) []string {
	var names []string
	for name, addr := range p.Labels {
		if addr >= 0x1_0000 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
