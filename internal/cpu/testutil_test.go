package cpu

import (
	"profileme/internal/asm"
	"profileme/internal/isa"
)

// asmAssemble keeps test files free of direct asm imports clutter.
func asmAssemble(src string) (*isa.Program, error) { return asm.Assemble(src) }
