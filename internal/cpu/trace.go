package cpu

import (
	"fmt"

	"profileme/internal/sim"
)

// traceWindow buffers a sliding window of the correct-path dynamic
// instruction stream. The fetch engine reads records by sequence number;
// mispredict recovery and replay traps rewind fetch to a sequence number
// that is still in flight, so the window only needs to cover the maximum
// number of in-flight instructions plus fetch buffering.
type traceWindow struct {
	src  sim.Source
	buf  []sim.Record
	head int    // buf[head:] are live; the dead prefix is reclaimed lazily
	base uint64 // sequence number of buf[head]
	eof  bool
}

func newTraceWindow(src sim.Source) *traceWindow {
	return &traceWindow{src: src}
}

// at returns the record with the given sequence number, pulling from the
// source as needed. ok is false at end of stream. It panics if seq is
// older than the window base — that would mean the pipeline rewound past
// an already-retired instruction, which is a simulator bug.
func (w *traceWindow) at(seq uint64) (sim.Record, bool) {
	if seq < w.base {
		panic(fmt.Sprintf("cpu: trace rewind to %d below window base %d", seq, w.base))
	}
	for seq-w.base >= uint64(len(w.buf)-w.head) {
		if w.eof {
			return sim.Record{}, false
		}
		r, ok := w.src.Next()
		if !ok {
			w.eof = true
			return sim.Record{}, false
		}
		w.buf = append(w.buf, r)
	}
	return w.buf[w.head+int(seq-w.base)], true
}

// trim discards records with sequence numbers below seq; they can no
// longer be refetched. Trim runs once per retired instruction, so it must
// not move memory each call: it advances a head index and only compacts
// (slides the live tail down) once the dead prefix dominates the backing
// array, which keeps both the memory bound (~2x the in-flight window) and
// the per-retire cost O(1) amortized.
func (w *traceWindow) trim(seq uint64) {
	if seq <= w.base {
		return
	}
	drop := int(seq - w.base)
	if drop >= len(w.buf)-w.head {
		w.buf = w.buf[:0]
		w.head = 0
	} else {
		w.head += drop
		if w.head >= 64 && w.head > len(w.buf)/2 {
			n := copy(w.buf, w.buf[w.head:])
			w.buf = w.buf[:n]
			w.head = 0
		}
	}
	w.base = seq
}

// buffered returns the number of buffered records (tests/debug).
func (w *traceWindow) buffered() int { return len(w.buf) - w.head }
