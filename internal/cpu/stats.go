package cpu

import (
	"profileme/internal/isa"
)

// Result summarizes a pipeline run.
type Result struct {
	Cycles          int64
	Retired         uint64
	FetchedOnPath   uint64 // correct-path instructions fetched
	FetchedOffPath  uint64 // bad-path instructions fetched (later squashed)
	EmptyFetchSlots uint64 // fetch opportunities with no instruction
	Mispredicts     uint64 // resolved control mispredicts
	ReplayTraps     uint64
	Interrupts      uint64 // profiling interrupts delivered
	InterruptStall  int64  // cycles fetch was frozen for interrupt delivery
	IssuedUseful    uint64 // issued instructions that eventually retired
	IssuedWasted    uint64 // issued instructions that were squashed

	// Fault-injection visibility (zero without an attached FaultInjector).
	InterruptsHeld      uint64 // deliveries postponed by injected faults
	InterruptHoldCycles int64  // total postponement across held deliveries
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

// CPI returns cycles per retired instruction.
func (r Result) CPI() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Retired)
}

// PCStats is the simulator's omniscient per-static-instruction ground
// truth, used to validate the sampled estimates (the estimators must
// converge to these numbers).
type PCStats struct {
	PC          uint64
	Fetched     uint64 // correct-path fetches
	Retired     uint64
	Aborted     uint64 // fetched on path but squashed (trap/drain)
	OffPath     uint64 // fetched at this PC on a bad path
	DCacheMiss  uint64
	ICacheMiss  uint64
	DTBMiss     uint64
	Mispredicts uint64
	Taken       uint64
	ReplayTraps uint64
	// LatInProgress sums the fetch -> retire-ready latency over retired
	// executions (the X axis of Figure 7).
	LatInProgress int64
	// LatFetchRetire sums the full fetch -> retire latency.
	LatFetchRetire int64
	// WastedSlots sums, over retired executions, the issue slots that
	// went to waste while the instruction was in progress (the Y axis of
	// Figure 7). Only filled when Config.TrackWastedSlots is set.
	WastedSlots int64
	// UsefulSlots sums the issue slots used by other eventually-retiring
	// instructions during the same windows.
	UsefulSlots int64
}

// perPC tracks ground truth per static instruction, indexed by PC/4.
type perPC struct {
	stats []PCStats
}

func newPerPC(numInsts int) *perPC {
	s := make([]PCStats, numInsts)
	for i := range s {
		s[i].PC = uint64(i) * isa.InstBytes
	}
	return &perPC{stats: s}
}

func (p *perPC) at(pc uint64) *PCStats {
	idx := pc / isa.InstBytes
	if idx >= uint64(len(p.stats)) {
		return nil
	}
	return &p.stats[idx]
}

// wastedTracker computes, for every retired instruction, the true number
// of wasted issue slots during its in-progress window [fetch,
// retire-ready): C slots per cycle minus issue slots used by instructions
// that eventually retired. Windows are finalized lazily, once every issue
// in the window is known to have resolved (retired or squashed), which is
// guaranteed after the window has fallen maxLag cycles behind.
type wastedTracker struct {
	c      int // sustained issue width
	ring   []int32
	mask   int64
	maxLag int64
	// earliest cycle still represented in the ring; slots before it have
	// been overwritten.
	oldest  int64
	pending []wastedWindow
	head    int // index of the first unfinalized pending window
	sink    func(pc uint64, from, to int64, useful int64)
}

type wastedWindow struct {
	pc       uint64
	from, to int64
}

// newWastedTracker sizes the ring to cover windows up to maxWindow cycles
// long plus the in-flight lag.
func newWastedTracker(c int, sink func(pc uint64, from, to int64, useful int64)) *wastedTracker {
	const ringBits = 17 // 128K cycles
	t := &wastedTracker{
		c:      c,
		ring:   make([]int32, 1<<ringBits),
		mask:   (1 << ringBits) - 1,
		maxLag: 1 << (ringBits - 1),
		sink:   sink,
	}
	return t
}

// usefulIssue records that an instruction which issued at cycle ultimately
// retired.
func (t *wastedTracker) usefulIssue(cycle int64) {
	t.ring[cycle&t.mask]++
}

// window registers a retired instruction's in-progress window for deferred
// accounting.
func (t *wastedTracker) window(pc uint64, from, to int64) {
	if to-from > t.maxLag {
		from = to - t.maxLag // clamp absurdly long windows to the ring
	}
	t.pending = append(t.pending, wastedWindow{pc: pc, from: from, to: to})
}

// advance finalizes windows that ended more than maxLag cycles ago (all
// issues within them are resolved by now) and reclaims ring slots.
//
// Windows are registered at retire in near-nondecreasing order of their
// end cycle (an instruction's retire-ready precedes its retirement), so
// pending acts as a FIFO: only the head needs checking, making advance
// O(1) amortized. An out-of-order entry behind a later-ending head is
// finalized a few cycles late, which is harmless — finalization only
// requires that all issues in the window have resolved.
func (t *wastedTracker) advance(now int64) {
	cut := now - t.maxLag
	for t.head < len(t.pending) && t.pending[t.head].to < cut {
		t.finalize(t.pending[t.head])
		t.pending[t.head] = wastedWindow{}
		t.head++
	}
	if t.head > 0 && t.head == len(t.pending) {
		t.pending = t.pending[:0]
		t.head = 0
	} else if t.head > 4096 {
		n := copy(t.pending, t.pending[t.head:])
		t.pending = t.pending[:n]
		t.head = 0
	}
	// Reclaim ring slots exactly one lap behind the current cycle: the
	// slot for cycle (now - ringSize) aliases the slot about to be used
	// for cycle now. Live windows reach back at most 2*maxLag = ringSize
	// cycles, so at most the single oldest cycle of a maximal window can
	// be lost to reclamation (finalize clamps to t.oldest).
	for t.oldest <= now-int64(len(t.ring)) {
		t.ring[t.oldest&t.mask] = 0
		t.oldest++
	}
}

// flush finalizes everything (end of run; all issues resolved).
func (t *wastedTracker) flush() {
	for _, w := range t.pending[t.head:] {
		t.finalize(w)
	}
	t.pending = nil
	t.head = 0
}

func (t *wastedTracker) finalize(w wastedWindow) {
	var useful int64
	from := w.from
	if from < t.oldest {
		from = t.oldest
	}
	for c := from; c < w.to; c++ {
		useful += int64(t.ring[c&t.mask])
	}
	t.sink(w.pc, w.from, w.to, useful)
}

// ipcWindows accumulates retired-instruction counts per fixed-size cycle
// window for the §6 windowed-IPC statistics.
type ipcWindows struct {
	size   int64
	counts []uint32
}

func newIPCWindows(size int64) *ipcWindows { return &ipcWindows{size: size} }

func (w *ipcWindows) retire(cycle int64) {
	idx := cycle / w.size
	for int64(len(w.counts)) <= idx {
		w.counts = append(w.counts, 0)
	}
	w.counts[idx]++
}

// Windows returns retire counts per window (the last, possibly partial,
// window included).
func (w *ipcWindows) Windows() []uint32 { return w.counts }
