package cpu

import (
	"context"
	"errors"
	"fmt"

	"profileme/internal/bpred"
	"profileme/internal/core"
	"profileme/internal/counters"
	"profileme/internal/isa"
	"profileme/internal/mem"
	"profileme/internal/sim"
)

type uopState uint8

const (
	stFetched uopState = iota
	stMapped
	stIssued
	stCompleted
	stRetired
	stSquashed
)

// uop is one in-flight instruction.
type uop struct {
	seq    uint64 // fetch order, including wrong-path instructions
	pc     uint64
	inst   isa.Inst
	class  isa.Class
	onPath bool
	rec    sim.Record // valid iff onPath

	tag int // ProfileMe tag, or core.NoTag

	// Rename state.
	src     [2]pregID
	nsrc    int
	dst     pregID
	oldDst  pregID
	archDst isa.Reg

	// Prediction state (control instructions).
	predNext    uint64
	predTaken   bool
	mispred     bool // on-path only: predicted next PC != actual
	histAtFetch uint64
	rasAfter    int // RAS depth after this instruction's fetch-time effect

	// Timing.
	fetchCyc, mapCyc, readyCyc, issueCyc, completeCyc, retireCyc int64
	valueCyc                                                     int64  // loads: value arrival
	dstGen                                                       uint32 // dst generation at allocation

	state  uopState
	events core.Event
	trap   core.TrapReason
	fp     bool
	ea     uint64
	eaOK   bool

	robIdx int32 // ring slot in Pipeline.rob, valid while mapped or later
}

// Pipeline is the timing simulator for one program run.
type Pipeline struct {
	cfg  Config
	prog *isa.Program
	win  *traceWindow
	pred *bpred.Predictor
	hier *mem.Hierarchy
	ren  *renamer

	rob      []*uop // ring buffer
	robHead  int
	robCount int
	iqInt    []*uop
	iqFP     []*uop

	// fetchBuf is a head-indexed deque: fetchBuf[fetchHead:] are the live
	// entries. Popping advances fetchHead (no reslicing away front
	// capacity); when the buffer empties, both reset so the backing array
	// is reused forever.
	fetchBuf  []*uop
	fetchHead int

	// arena carves uops out of uopChunk-sized blocks (see newUop).
	arena  []uop
	arenaN int

	// Fetch state.
	nextSeq         uint64
	offPath         bool
	offPC           uint64
	fetchStallUntil int64
	fetchLine       uint64 // current I-cache line (+1; 0 = none)
	pendingFetchEv  core.Event
	traceDone       bool

	cycle      int64
	seqCounter uint64

	completing *eventRing // functional-unit completion events
	wakeups    *eventRing // load value-arrival events
	divBusy    int64

	prof        *core.Unit
	profHandler func([]core.Sample)
	ctrs        *counters.Unit
	retireHook  func(seq, pc uint64)

	// Fault injection (delivery-side) and the retire-progress watchdog.
	faults         FaultInjector
	intHoldUntil   int64
	intHoldDecided bool
	lastProgress   int64 // last cycle the ROB retired or went empty

	iqDirty bool // a squash left dead entries in the issue queues

	iid *IIDSampler // optional Westcott & White baseline sampler (§8)

	finished bool // finish() ran (guards double finalization)

	res    Result
	pcs    *perPC
	wasted *wastedTracker
	ipc    *ipcWindows
}

// New builds a pipeline for prog, consuming the correct-path stream src.
func New(prog *isa.Program, src sim.Source, cfg Config) (*Pipeline, error) {
	return NewWithHierarchy(prog, src, cfg, nil)
}

// NewWithHierarchy builds a pipeline that charges memory accesses against
// an externally owned hierarchy (nil means a private one). Sharing a
// hierarchy between pipelines models time-sliced processes contending for
// the same caches and TLBs.
func NewWithHierarchy(prog *isa.Program, src sim.Source, cfg Config, hier *mem.Hierarchy) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		hier = mem.NewHierarchy(cfg.Mem)
	}
	// Ring span: the longest latency any event can be scheduled at — the
	// slowest functional unit or a worst-case memory round trip (TLB fill
	// plus a miss all the way to memory). Anything beyond it (exotic
	// configs) spills to the ring's far map, so this is sizing, not a
	// correctness bound.
	span := cfg.Mem.TLBPenalty + cfg.Mem.DCache.HitLatency + cfg.Mem.L2Latency + cfg.Mem.MemLatency
	for _, l := range [...]int{cfg.Lat.IntALU, cfg.Lat.IntMul, cfg.Lat.FAdd,
		cfg.Lat.FDiv, cfg.Lat.Branch, cfg.Lat.Store, cfg.Mem.DCache.HitLatency} {
		if l > span {
			span = l
		}
	}
	p := &Pipeline{
		cfg:        cfg,
		prog:       prog,
		win:        newTraceWindow(src),
		pred:       bpred.MustNew(cfg.Bpred),
		hier:       hier,
		ren:        newRenamer(cfg.PhysRegs),
		rob:        make([]*uop, cfg.ROBSize),
		completing: newEventRing(span),
		wakeups:    newEventRing(span),
	}
	if cfg.TrackPerPC {
		p.pcs = newPerPC(prog.Len())
	}
	if cfg.TrackWastedSlots {
		p.wasted = newWastedTracker(cfg.SustainedIssueWidth, p.wastedSink)
	}
	if cfg.TrackWindowedIPC {
		p.ipc = newIPCWindows(int64(cfg.IPCWindowCycles))
	}
	return p, nil
}

// AttachProfileMe plugs the ProfileMe unit into the pipeline. handler is
// the profiling software's interrupt handler; it runs when the unit's
// interrupt is delivered, and fetch is frozen for Config.InterruptCost
// cycles to model the delivery cost.
//
// The sample slice passed to handler is only valid for the duration of
// the call: its backing storage is recycled for the next buffer fill
// (core.Unit.Recycle). Handlers that keep samples must copy the Sample
// values out (e.g. append(dst, ss...)), never retain the slice itself.
func (p *Pipeline) AttachProfileMe(u *core.Unit, handler func([]core.Sample)) {
	p.prof = u
	p.profHandler = handler
}

// AttachCounters plugs baseline event-counter hardware into the pipeline.
func (p *Pipeline) AttachCounters(u *counters.Unit) { p.ctrs = u }

// SetRetireHook installs an observer called once per retired instruction,
// in retirement order, with the instruction's correct-path sequence number
// and PC. The differential test harness uses it to compare the pipeline's
// architectural retirement stream against the functional simulator's
// execution stream; nil detaches.
func (p *Pipeline) SetRetireHook(fn func(seq, pc uint64)) { p.retireHook = fn }

// FaultInjector is the delivery-side fault hook (internal/faultinject
// implements it alongside core.FaultInjector). Methods must be
// deterministic given the plan's seed; a nil injector is fault-free.
type FaultInjector interface {
	// HoldInterrupt is consulted once each time a ProfileMe interrupt
	// becomes deliverable; it returns how many cycles delivery is
	// withheld (0 = deliver normally). While withheld, the Unit keeps
	// sampling into a full buffer and sheds or overwrites samples.
	HoldInterrupt() int64
}

// AttachFaults arms a delivery-side fault plan (nil detaches). Attach the
// same plan to the core.Unit so one seeded stream drives both layers.
func (p *Pipeline) AttachFaults(fi FaultInjector) { p.faults = fi }

// Hierarchy exposes the memory hierarchy (tests, cache-warming).
func (p *Pipeline) Hierarchy() *mem.Hierarchy { return p.hier }

// Predictor exposes the branch predictor (tests).
func (p *Pipeline) Predictor() *bpred.Predictor { return p.pred }

// PerPC returns the ground-truth per-instruction statistics (nil unless
// Config.TrackPerPC).
func (p *Pipeline) PerPC() []PCStats {
	if p.pcs == nil {
		return nil
	}
	return p.pcs.stats
}

// IPCWindows returns per-window retire counts (nil unless
// Config.TrackWindowedIPC).
func (p *Pipeline) IPCWindows() []uint32 {
	if p.ipc == nil {
		return nil
	}
	return p.ipc.Windows()
}

// ErrCycleLimit reports that Run hit its cycle budget before the program
// drained.
var ErrCycleLimit = errors.New("cpu: cycle limit reached")

// ErrLivelock reports that the retire-progress watchdog fired: instructions
// were in flight but none retired for Config.WatchdogCycles cycles. A
// correct pipeline never livelocks, so this converts a would-be infinite
// Run loop (a simulator bug, or a pathological injected-fault interaction)
// into a typed error with the machine state finalized.
var ErrLivelock = errors.New("cpu: pipeline livelock")

// ErrCanceled reports that RunContext's context was canceled or its
// deadline expired before the program drained. The pipeline is finalized
// and the partial Result is valid — a supervisor can still harvest
// whatever profiling the run accumulated, or retry.
var ErrCanceled = errors.New("cpu: run canceled")

// ctxCheckCycles is how many simulated cycles elapse between supervision
// checks in RunContext (context poll, cycle budget, watchdog): the inner
// loop runs a whole batch with nothing but step(), so supervision is off
// the per-cycle hot path entirely, yet cancellation still lands within a
// bounded (and, in real time, microsecond-scale) number of cycles.
const ctxCheckCycles = 1024

// Run simulates until the instruction stream is exhausted and the pipeline
// has drained, or maxCycles elapse (maxCycles <= 0 means no limit).
func (p *Pipeline) Run(maxCycles int64) (Result, error) {
	return p.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with real cancellation plumbed in: between cycle
// batches it checks ctx and, once the context is done, finalizes the
// machine state and returns the partial Result with an error matching
// ErrCanceled. A fleet supervisor uses this to impose per-job wall-clock
// deadlines and to hard-stop in-flight jobs during a drain.
//
// Supervision runs between batches of at most ctxCheckCycles cycles, so a
// cancellation is honored within ctxCheckCycles simulated cycles of the
// context firing, and the watchdog fires within ctxCheckCycles of its
// bound being crossed. Each batch is additionally clamped so it cannot
// overshoot maxCycles or sail past the earliest cycle the watchdog could
// trip (which keeps tiny WatchdogCycles settings exact).
func (p *Pipeline) RunContext(ctx context.Context, maxCycles int64) (Result, error) {
	done := ctx.Done()
	for !p.done() {
		if maxCycles > 0 && p.cycle >= maxCycles {
			p.finish()
			return p.res, fmt.Errorf("%w (%d)", ErrCycleLimit, maxCycles)
		}
		if err := p.watchdog(); err != nil {
			p.finish()
			return p.res, err
		}
		if done != nil {
			select {
			case <-done:
				p.finish()
				return p.res, fmt.Errorf("%w at cycle %d: %v", ErrCanceled, p.cycle, context.Cause(ctx))
			default:
			}
		}
		batch := p.cycle + ctxCheckCycles
		if maxCycles > 0 && batch > maxCycles {
			batch = maxCycles
		}
		if wd := int64(p.cfg.WatchdogCycles); wd > 0 {
			// Earliest cycle the watchdog could fire given progress so far;
			// re-derived each batch as retirement moves lastProgress.
			if deadline := p.lastProgress + wd + 1; deadline < batch {
				batch = deadline
			}
		}
		for p.cycle < batch && !p.done() {
			p.step()
		}
	}
	p.finish()
	return p.res, nil
}

// watchdog reports ErrLivelock when the ROB has been non-empty with no
// retirement for longer than the configured bound.
func (p *Pipeline) watchdog() error {
	if p.cfg.WatchdogCycles <= 0 {
		return nil
	}
	if p.robCount == 0 {
		p.lastProgress = p.cycle
		return nil
	}
	if p.cycle-p.lastProgress > int64(p.cfg.WatchdogCycles) {
		return fmt.Errorf("%w: no retirement for %d cycles at cycle %d (%d in flight)",
			ErrLivelock, p.cycle-p.lastProgress, p.cycle, p.robCount)
	}
	return nil
}

// RunFor advances the pipeline by up to cycles cycles and pauses without
// finalizing, so a scheduler can time-slice several pipelines (a frozen
// pipeline keeps all in-flight state). It reports whether the program has
// drained. After the last quantum, call Finish for the result.
func (p *Pipeline) RunFor(cycles int64) bool {
	target := p.cycle + cycles
	for p.cycle < target && !p.done() {
		p.step()
	}
	return p.done()
}

// Finish finalizes a RunFor-driven simulation (flushing pending profile
// state) and returns the result. Run calls it implicitly.
func (p *Pipeline) Finish() Result {
	p.finish()
	return p.res
}

// Cycle returns the pipeline's current cycle.
func (p *Pipeline) Cycle() int64 { return p.cycle }

func (p *Pipeline) done() bool {
	return p.traceDone && !p.offPath && p.robCount == 0 && p.fetchHead == len(p.fetchBuf)
}

func (p *Pipeline) finish() {
	if p.finished {
		return
	}
	p.finished = true
	p.res.Cycles = p.cycle
	if p.prof != nil {
		// Retired loads whose value is still in flight have deferred
		// sample completion (§4.1.4): let those signals land before the
		// final flush so their records show the true retirement. The ring
		// drains in ascending cycle order, so the flush is deterministic.
		p.wakeups.drainAscending(p.cycle, func(cyc int64, u *uop) {
			if u.state == stRetired && u.tag != core.NoTag {
				p.prof.SetLoadComplete(u.tag, cyc)
				p.prof.Complete(u.tag, true, core.TrapNone, u.retireCyc)
				u.tag = core.NoTag
			}
		})
		p.prof.FlushInFlight(p.cycle)
		// Drain even a partially filled buffer: the tail samples of the
		// run would otherwise never reach software.
		if p.prof.InterruptPending() || p.prof.Pending() > 0 {
			p.deliverProfileInterrupt()
		}
	}
	if p.wasted != nil {
		p.wasted.flush()
	}
}

// step advances one cycle: complete, retire, issue, map, fetch, interrupts.
func (p *Pipeline) step() {
	p.completeStage()
	p.retireStage()
	p.issueStage()
	p.mapStage()
	p.fetchStage()
	p.interruptStage()
	if p.wasted != nil {
		p.wasted.advance(p.cycle)
	}
	p.cycle++
}

// ---------------------------------------------------------------- fetch --

func (p *Pipeline) fetchStage() {
	if p.cycle < p.fetchStallUntil {
		p.presentEmpty(p.cfg.FetchWidth)
		return
	}
	lineMask := ^uint64(p.cfg.Mem.ICache.LineBytes - 1)
	slots := 0
	for slots < p.cfg.FetchWidth {
		if len(p.fetchBuf)-p.fetchHead >= p.cfg.FetchBuf {
			p.presentEmpty(p.cfg.FetchWidth - slots)
			return
		}
		pc, rec, haveInst := p.nextFetchPC()
		if !haveInst {
			p.presentEmpty(p.cfg.FetchWidth - slots)
			return
		}
		// Instruction cache: one access per line transition.
		if p.fetchLine != (pc&lineMask)+1 {
			res := p.hier.Fetch(pc + p.cfg.PhysBase)
			p.fetchLine = (pc & lineMask) + 1
			if res.L1Miss || res.TLBMiss {
				ev := core.Event(0)
				if res.L1Miss {
					ev |= core.EvICacheMiss
					if p.ctrs != nil {
						p.ctrs.Event(counters.EventICacheMiss, p.cycle)
					}
				}
				if res.TLBMiss {
					ev |= core.EvITBMiss
				}
				p.pendingFetchEv = ev
				p.fetchStallUntil = p.cycle + int64(res.Latency-p.cfg.Mem.ICache.HitLatency) + 1
				p.presentEmpty(p.cfg.FetchWidth - slots)
				return
			}
		}
		u := p.fetchOne(pc, rec)
		slots++
		// A predicted-taken control transfer ends the fetch block.
		if u.inst.Op.IsControl() && u.predTaken {
			p.fetchLine = 0
			if p.cfg.TakenBranchBubble > 0 {
				p.fetchStallUntil = p.cycle + 1 + int64(p.cfg.TakenBranchBubble)
			}
			p.presentEmpty(p.cfg.FetchWidth - slots)
			return
		}
		// Fetch blocks do not cross cache lines.
		if (pc+isa.InstBytes)&lineMask != pc&lineMask {
			p.fetchLine = 0
			p.presentEmpty(p.cfg.FetchWidth - slots)
			return
		}
	}
}

// nextFetchPC determines where the fetcher is pointed and, when on the
// correct path, the trace record to bind.
func (p *Pipeline) nextFetchPC() (pc uint64, rec sim.Record, ok bool) {
	if p.offPath {
		if p.cfg.NoWrongPath {
			return 0, sim.Record{}, false // ablation: fetcher idles
		}
		if _, valid := p.prog.At(p.offPC); !valid {
			return 0, sim.Record{}, false // wrong path ran off the image
		}
		return p.offPC, sim.Record{}, true
	}
	r, valid := p.win.at(p.nextSeq)
	if !valid {
		p.traceDone = true
		return 0, sim.Record{}, false
	}
	return r.PC, r, true
}

// fetchOne creates the uop for one fetch slot, consults the predictor,
// notifies ProfileMe, and advances the fetch state.
func (p *Pipeline) fetchOne(pc uint64, rec sim.Record) *uop {
	onPath := !p.offPath
	var inst isa.Inst
	if onPath {
		inst = rec.Inst
	} else {
		inst, _ = p.prog.At(pc)
	}

	// Arena uops come back zeroed, so only non-zero fields are written —
	// a composite literal here would build the 200-byte struct on the
	// stack and copy it over memory that is already zero.
	u := p.newUop()
	u.seq, u.pc, u.inst, u.class = p.seqCounter, pc, inst, inst.Op.Class()
	u.onPath, u.rec, u.tag = onPath, rec, core.NoTag
	u.dst, u.oldDst = noPreg, noPreg
	u.fetchCyc = p.cycle
	u.mapCyc, u.readyCyc, u.issueCyc = -1, -1, -1
	u.completeCyc, u.retireCyc, u.valueCyc = -1, -1, -1
	u.histAtFetch = p.pred.History()
	p.seqCounter++
	u.fp = u.class == isa.ClassFAdd || u.class == isa.ClassFDiv
	u.events |= p.pendingFetchEv
	p.pendingFetchEv = 0

	// ProfileMe sees every fetch opportunity; capture happens before this
	// instruction's own history update.
	if p.prof != nil {
		u.tag = p.prof.OnFetch(p.cycle, pc, true, onPath, u.histAtFetch,
			p.pred.HistoryBits(), p.cfg.Context)
		if u.tag != core.NoTag && u.events != 0 {
			p.prof.AddEvents(u.tag, u.events)
		}
	}

	// Predict the next PC.
	u.predNext = pc + isa.InstBytes
	switch u.class {
	case isa.ClassJump:
		u.predNext, u.predTaken = inst.Target, true
	case isa.ClassCall:
		u.predNext, u.predTaken = inst.Target, true
		p.pred.RASPush(pc + isa.InstBytes)
	case isa.ClassBranch:
		u.predTaken = p.pred.PredictCond(pc)
		p.pred.PushHistory(u.predTaken)
		if u.predTaken {
			u.predNext = inst.Target
		}
	case isa.ClassRet:
		if t, ok := p.pred.RASPop(); ok {
			u.predNext, u.predTaken = t, true
		}
	case isa.ClassJmpInd:
		if t, ok := p.pred.BTBLookup(pc); ok {
			u.predNext, u.predTaken = t, true
		}
	}
	u.rasAfter = p.pred.RASDepth()

	// Effective addresses: real for on-path memory ops, synthesized for
	// wrong-path ones (they still probe the D-cache).
	if inst.Op.IsMem() {
		if onPath {
			u.ea, u.eaOK = rec.EA, true
		} else {
			u.ea = fakeEA(pc, u.seq)
			u.eaOK = true
		}
	}

	// Advance fetch state.
	if onPath {
		p.res.FetchedOnPath++
		if st := p.pcStats(pc); st != nil {
			st.Fetched++
		}
		p.nextSeq++
		if u.predNext != rec.Target {
			u.mispred = true
			p.offPath = true
			p.offPC = u.predNext
		}
	} else {
		p.res.FetchedOffPath++
		if st := p.pcStats(pc); st != nil {
			st.OffPath++
		}
		p.offPC = u.predNext
	}

	p.fetchBuf = append(p.fetchBuf, u)
	return u
}

// fakeEA synthesizes a deterministic effective address for a wrong-path
// memory operation (8-byte aligned, in a high region so pollution is
// plausible but does not systematically alias the data segment).
func fakeEA(pc, seq uint64) uint64 {
	h := (pc*0x9e3779b97f4a7c15 ^ seq*0xbf58476d1ce4e5b9) >> 16
	return 0x40_0000 + (h&0xffff)*8
}

func (p *Pipeline) presentEmpty(n int) {
	p.res.EmptyFetchSlots += uint64(n)
	if p.prof == nil {
		return
	}
	for i := 0; i < n; i++ {
		tag := p.prof.OnFetch(p.cycle, 0, false, false, p.pred.History(),
			p.pred.HistoryBits(), p.cfg.Context)
		_ = tag // empty-slot samples complete inside the unit
	}
}

// ------------------------------------------------------------------ map --

func (p *Pipeline) mapStage() {
	mapped := 0
	for mapped < p.cfg.MapWidth && p.fetchHead < len(p.fetchBuf) && p.robCount < p.cfg.ROBSize {
		u := p.fetchBuf[p.fetchHead]
		queue := &p.iqInt
		qmax := p.cfg.IQInt
		if u.fp {
			queue, qmax = &p.iqFP, p.cfg.IQFP
		}
		if len(*queue) >= qmax {
			p.noteResourceStall(u)
			break
		}
		_, needsDst := u.inst.Dest()
		if needsDst && p.ren.freeCount() == 0 {
			p.noteResourceStall(u)
			break
		}

		// Rename.
		var srcs [2]isa.Reg
		ss := u.inst.Srcs(srcs[:0])
		u.nsrc = len(ss)
		for i, a := range ss {
			u.src[i] = p.ren.lookup(a)
		}
		if d, ok := u.inst.Dest(); ok {
			u.archDst = d
			u.dst, u.oldDst = p.ren.allocate(d)
			u.dstGen = p.ren.generation(u.dst)
		}

		u.mapCyc = p.cycle
		u.state = stMapped
		if p.prof != nil && u.tag != core.NoTag {
			p.prof.SetStage(u.tag, core.StageMap, p.cycle)
		}

		p.fetchHead++
		if p.fetchHead == len(p.fetchBuf) {
			p.fetchBuf = p.fetchBuf[:0]
			p.fetchHead = 0
		}
		*queue = append(*queue, u)
		if p.iid != nil {
			p.iid.onMap((p.robHead+p.robCount)%len(p.rob), u.seq)
		}
		p.robPush(u)
		mapped++
	}
}

func (p *Pipeline) noteResourceStall(u *uop) {
	if !u.events.Has(core.EvResourceStall) {
		u.events |= core.EvResourceStall
		if p.prof != nil && u.tag != core.NoTag {
			p.prof.AddEvents(u.tag, core.EvResourceStall)
		}
	}
}

// ---------------------------------------------------------------- issue --

func (p *Pipeline) issueStage() {
	intAvail, memAvail, fpAvail := p.cfg.IntUnits, p.cfg.MemPorts, p.cfg.FPUnits
	before := intAvail + memAvail + fpAvail
	if p.cfg.InOrder {
		p.issueInOrder(&intAvail, &memAvail, &fpAvail)
	} else {
		p.issueFromQueue(&p.iqInt, &intAvail, &memAvail, &fpAvail)
		p.issueFromQueue(&p.iqFP, &intAvail, &memAvail, &fpAvail)
	}
	// Compaction only has work after an issue or a squash.
	if intAvail+memAvail+fpAvail != before || p.iqDirty {
		p.compactQueue(&p.iqInt)
		p.compactQueue(&p.iqFP)
		p.iqDirty = false
	}
}

// issueFromQueue issues ready instructions oldest-first.
func (p *Pipeline) issueFromQueue(q *[]*uop, intAvail, memAvail, fpAvail *int) {
	for _, u := range *q {
		if u.state != stMapped {
			continue
		}
		p.tryIssue(u, intAvail, memAvail, fpAvail)
	}
}

// issueInOrder walks the ROB oldest-first and stops at the first
// instruction that cannot issue: strict program-order issue (21164-like).
func (p *Pipeline) issueInOrder(intAvail, memAvail, fpAvail *int) {
	for i := 0; i < p.robCount; i++ {
		u := p.rob[(p.robHead+i)%len(p.rob)]
		switch u.state {
		case stSquashed, stIssued, stCompleted, stRetired:
			continue
		case stFetched:
			return // not yet mapped; younger cannot issue either
		}
		if !p.tryIssue(u, intAvail, memAvail, fpAvail) {
			return
		}
	}
}

// tryIssue issues u if its operands and a functional unit are available.
func (p *Pipeline) tryIssue(u *uop, intAvail, memAvail, fpAvail *int) bool {
	for i := 0; i < u.nsrc; i++ {
		if !p.ren.isReady(u.src[i]) {
			return false
		}
	}
	if u.readyCyc < 0 {
		u.readyCyc = u.mapCyc
		for i := 0; i < u.nsrc; i++ {
			if t := p.ren.readySince(u.src[i]); t > u.readyCyc {
				u.readyCyc = t
			}
		}
		if p.prof != nil && u.tag != core.NoTag {
			p.prof.SetStage(u.tag, core.StageDataReady, u.readyCyc)
		}
	}

	var latency int
	switch u.class {
	case isa.ClassLoad, isa.ClassStore:
		if *memAvail == 0 {
			return false
		}
	case isa.ClassFAdd:
		if *fpAvail == 0 {
			return false
		}
	case isa.ClassFDiv:
		if *fpAvail == 0 || p.divBusy > p.cycle {
			return false
		}
	default:
		if *intAvail == 0 {
			return false
		}
	}

	switch u.class {
	case isa.ClassNop, isa.ClassIntALU:
		latency = p.cfg.Lat.IntALU
		*intAvail--
	case isa.ClassIntMul:
		latency = p.cfg.Lat.IntMul
		*intAvail--
	case isa.ClassBranch, isa.ClassJump, isa.ClassCall, isa.ClassJmpInd, isa.ClassRet:
		latency = p.cfg.Lat.Branch
		*intAvail--
	case isa.ClassFAdd:
		latency = p.cfg.Lat.FAdd
		*fpAvail--
	case isa.ClassFDiv:
		latency = p.cfg.Lat.FDiv
		*fpAvail--
		p.divBusy = p.cycle + int64(latency)
	case isa.ClassStore:
		latency = p.cfg.Lat.Store
		*memAvail--
		p.memAccess(u)
	case isa.ClassLoad:
		*memAvail--
		res := p.memAccess(u)
		// Loads become ready to retire after the cache pipeline, even if
		// the value is still in flight (Alpha semantics, Table 1): the
		// value wakes consumers at valueCyc.
		hit := p.cfg.Mem.DCache.HitLatency
		latency = hit
		p.wakeups.add(p.cycle, p.cycle+int64(res.Latency), u)
	}

	u.issueCyc = p.cycle
	u.state = stIssued
	if p.prof != nil && u.tag != core.NoTag {
		p.prof.SetStage(u.tag, core.StageIssue, p.cycle)
	}
	p.completing.add(p.cycle, p.cycle+int64(latency), u)
	return true
}

// memAccess charges the data-cache access for a load or store and records
// its events.
func (p *Pipeline) memAccess(u *uop) mem.Result {
	res := p.hier.Data(u.ea + p.cfg.PhysBase)
	if p.ctrs != nil {
		p.ctrs.Event(counters.EventDCacheRef, p.cycle)
		if res.L1Miss {
			p.ctrs.Event(counters.EventDCacheMiss, p.cycle)
		}
	}
	var ev core.Event
	if res.L1Miss {
		ev |= core.EvDCacheMiss
	}
	if res.L2Miss {
		ev |= core.EvL2Miss
	}
	if res.TLBMiss {
		ev |= core.EvDTBMiss
	}
	if ev != 0 {
		u.events |= ev
		if p.prof != nil && u.tag != core.NoTag {
			p.prof.AddEvents(u.tag, ev)
		}
	}
	if p.prof != nil && u.tag != core.NoTag {
		p.prof.SetAddr(u.tag, u.ea)
	}
	return res
}

func (p *Pipeline) compactQueue(q *[]*uop) {
	kept := (*q)[:0]
	for _, u := range *q {
		if u.state == stMapped {
			kept = append(kept, u)
		}
	}
	*q = kept
}

// ------------------------------------------------------------- complete --

func (p *Pipeline) completeStage() {
	// Load values arriving this cycle wake consumers.
	for _, u := range p.wakeups.take(p.cycle) {
		if u.state == stSquashed {
			continue
		}
		u.valueCyc = p.cycle
		p.ren.markReadyIfCurrent(u.dst, u.dstGen, p.cycle)
		if p.prof != nil && u.tag != core.NoTag {
			p.prof.SetLoadComplete(u.tag, p.cycle)
			// A load that already retired (the Alpha lets loads
			// retire before the value returns) could not finish its
			// sample at retirement: the interrupt is delayed until
			// all signals reach the Profile Registers (§4.1.4).
			if u.state == stRetired {
				p.prof.Complete(u.tag, true, core.TrapNone, u.retireCyc)
				u.tag = core.NoTag
			}
		}
	}

	cs := p.completing.take(p.cycle)
	if len(cs) == 0 {
		return
	}
	sortBySeq(cs)
	for _, u := range cs {
		if u.state == stSquashed {
			continue
		}
		u.state = stCompleted
		u.completeCyc = p.cycle
		if p.prof != nil && u.tag != core.NoTag {
			p.prof.SetStage(u.tag, core.StageRetireReady, p.cycle)
		}
		if u.dst != noPreg && u.class != isa.ClassLoad {
			p.ren.markReady(u.dst, p.cycle)
		}
		if u.inst.Op.IsControl() && u.onPath {
			p.resolveControl(u)
			if u.state == stSquashed {
				continue // a replay on this very cycle squashed it; defensive
			}
		}
		if u.class == isa.ClassStore && u.onPath && p.cfg.ReplayTraps {
			p.checkReplay(u)
		}
	}
}

// resolveControl trains the predictor and triggers mispredict recovery.
func (p *Pipeline) resolveControl(u *uop) {
	actualTaken := u.rec.Taken
	if u.inst.Op.IsConditional() {
		p.pred.UpdateCond(u.pc, actualTaken, u.histAtFetch)
		if actualTaken {
			u.events |= core.EvTaken
			if p.prof != nil && u.tag != core.NoTag {
				p.prof.AddEvents(u.tag, core.EvTaken)
			}
		}
	}
	if u.inst.Op.IsIndirect() {
		p.pred.BTBUpdate(u.pc, u.rec.Target)
	}
	p.pred.RecordOutcome(!u.mispred)
	if !u.mispred {
		return
	}

	// Mispredict recovery.
	u.events |= core.EvMispredict
	if p.prof != nil && u.tag != core.NoTag {
		p.prof.AddEvents(u.tag, core.EvMispredict)
	}
	if p.ctrs != nil {
		p.ctrs.Event(counters.EventBranchMispredict, p.cycle)
	}
	p.res.Mispredicts++
	if st := p.pcStats(u.pc); st != nil {
		st.Mispredicts++
	}

	p.squashYounger(u.seq, core.TrapBadPath)
	// Restore front-end state: history as of just after this branch's
	// true outcome, and resume fetch on the correct path.
	if u.inst.Op.IsConditional() {
		h := (u.histAtFetch << 1)
		if actualTaken {
			h |= 1
		}
		p.pred.SetHistory(h)
	} else {
		p.pred.SetHistory(u.histAtFetch)
	}
	p.pred.RASRestore(u.rasAfter)
	p.offPath = false
	p.offPC = 0
	p.nextSeq = u.rec.Seq + 1
	p.traceDone = false
	p.fetchLine = 0
	p.pendingFetchEv = 0
	p.fetchStallUntil = maxI64(p.fetchStallUntil, p.cycle+1+int64(p.cfg.MispredictPenalty))
}

// checkReplay triggers a 21264-style load-store order replay trap when a
// younger load to the same address issued before this store completed.
func (p *Pipeline) checkReplay(st *uop) {
	var victim *uop
	// Only instructions younger than the store can violate ordering, and
	// they all sit after the store's ROB slot: start the walk there
	// instead of at the head.
	stOff := (int(st.robIdx) - p.robHead + len(p.rob)) % len(p.rob)
	for i := stOff + 1; i < p.robCount; i++ {
		u := p.rob[(p.robHead+i)%len(p.rob)]
		if u.class != isa.ClassLoad || !u.onPath || !u.eaOK {
			continue
		}
		if u.inst.Op == isa.OpPref {
			continue // prefetches read no data: no ordering violation
		}
		if u.ea != st.ea {
			continue
		}
		if u.state == stIssued || u.state == stCompleted {
			if victim == nil || u.seq < victim.seq {
				victim = u
			}
		}
	}
	if victim == nil {
		return
	}
	p.res.ReplayTraps++
	if s := p.pcStats(victim.pc); s != nil {
		s.ReplayTraps++
	}
	victim.events |= core.EvReplayTrap
	if p.prof != nil && victim.tag != core.NoTag {
		p.prof.AddEvents(victim.tag, core.EvReplayTrap)
	}
	seq := victim.seq
	recSeq := victim.rec.Seq
	rasDepth := victim.rasAfter
	p.squashFrom(seq, core.TrapReplay)
	p.pred.RASRestore(rasDepth)
	p.offPath = false
	p.offPC = 0
	p.nextSeq = recSeq
	p.traceDone = false
	p.fetchLine = 0
	p.pendingFetchEv = 0
	p.fetchStallUntil = maxI64(p.fetchStallUntil, p.cycle+1+int64(p.cfg.MispredictPenalty))
}

// ---------------------------------------------------------------- squash --

// squashYounger kills everything strictly younger than seq.
func (p *Pipeline) squashYounger(seq uint64, reason core.TrapReason) {
	p.squashFrom(seq+1, reason)
}

// squashFrom kills every in-flight uop with sequence number >= seq:
// fetch-buffer entries (not yet renamed) and ROB entries (rename undone
// youngest-first).
func (p *Pipeline) squashFrom(seq uint64, reason core.TrapReason) {
	// Fetch buffer: all entries are younger than anything in the ROB;
	// drop the tail with seq >= seq. Survivors compact to the front of the
	// backing array (writes never outrun the read cursor).
	live := p.fetchBuf[p.fetchHead:]
	kept := p.fetchBuf[:0]
	p.fetchHead = 0
	for _, u := range live {
		if u.seq >= seq {
			p.killUop(u, reason)
		} else {
			kept = append(kept, u)
		}
	}
	p.fetchBuf = kept

	// ROB: walk from the tail, undoing rename state youngest-first.
	for p.robCount > 0 {
		tail := p.rob[(p.robHead+p.robCount-1)%len(p.rob)]
		if tail.seq < seq {
			break
		}
		if tail.state != stSquashed {
			p.ren.undo(tail.archDst, tail.dst, tail.oldDst)
			p.killUop(tail, reason)
		}
		p.robCount--
	}
}

// killUop finalizes a squashed uop's bookkeeping.
func (p *Pipeline) killUop(u *uop, reason core.TrapReason) {
	if u.state == stIssued || u.state == stCompleted {
		p.res.IssuedWasted++
	}
	if u.state == stMapped {
		p.iqDirty = true // still sitting in an issue queue
	}
	u.state = stSquashed
	u.trap = reason
	if st := p.pcStats(u.pc); st != nil && u.onPath {
		st.Aborted++
	}
	if p.prof != nil && u.tag != core.NoTag {
		p.prof.Complete(u.tag, false, reason, p.cycle)
		u.tag = core.NoTag
	}
	if p.iid != nil {
		p.iid.onSquash(u.seq)
	}
	// Squashed entries remain in the issue queues until compaction and in
	// the completion ring until their cycle arrives; state checks skip them.
}

// ---------------------------------------------------------------- retire --

func (p *Pipeline) retireStage() {
	retired := 0
	for p.robCount > 0 {
		u := p.rob[p.robHead]
		if u.state == stSquashed {
			p.robPop()
			p.lastProgress = p.cycle // draining squashed entries is progress
			continue
		}
		if u.state != stCompleted || retired >= p.cfg.RetireWidth {
			break
		}
		u.state = stRetired
		u.retireCyc = p.cycle
		p.ren.release(u.oldDst)
		if p.retireHook != nil {
			p.retireHook(u.rec.Seq, u.pc)
		}
		p.res.Retired++
		p.res.IssuedUseful++
		p.lastProgress = p.cycle
		retired++

		if p.prof != nil && u.tag != core.NoTag {
			// Loads whose value is still in flight keep their tag; the
			// sample completes when the value arrives (wakeup above).
			if u.class == isa.ClassLoad && u.valueCyc < 0 {
				// deferred
			} else {
				p.prof.Complete(u.tag, true, core.TrapNone, p.cycle)
				u.tag = core.NoTag
			}
		}
		if p.ctrs != nil {
			p.ctrs.Event(counters.EventRetired, p.cycle)
		}
		if p.iid != nil {
			p.iid.onRetire(u.seq, u.pc)
		}
		p.recordRetired(u)
		p.win.trim(u.rec.Seq + 1)
		p.robPop()
	}
}

func (p *Pipeline) recordRetired(u *uop) {
	if p.ipc != nil {
		p.ipc.retire(p.cycle)
	}
	if p.wasted != nil {
		p.wasted.usefulIssue(u.issueCyc)
		p.wasted.window(u.pc, u.fetchCyc, u.completeCyc)
	}
	st := p.pcStats(u.pc)
	if st == nil {
		return
	}
	st.Retired++
	st.LatInProgress += u.completeCyc - u.fetchCyc
	st.LatFetchRetire += u.retireCyc - u.fetchCyc
	if u.events.Has(core.EvDCacheMiss) {
		st.DCacheMiss++
	}
	if u.events.Has(core.EvICacheMiss) {
		st.ICacheMiss++
	}
	if u.events.Has(core.EvDTBMiss) {
		st.DTBMiss++
	}
	if u.events.Has(core.EvTaken) {
		st.Taken++
	}
}

// wastedSink folds a finalized in-progress window into per-PC ground truth.
func (p *Pipeline) wastedSink(pc uint64, from, to int64, useful int64) {
	st := p.pcStats(pc)
	if st == nil {
		return
	}
	slots := (to - from) * int64(p.cfg.SustainedIssueWidth)
	wasted := slots - useful
	if wasted < 0 {
		wasted = 0
	}
	st.WastedSlots += wasted
	st.UsefulSlots += useful
}

// ------------------------------------------------------------ interrupts --

func (p *Pipeline) interruptStage() {
	// Counters need the attribution PC every cycle; ProfileMe only needs
	// it when an interrupt is actually deliverable. Skipping the ROB walk
	// on quiet cycles is behavior-identical and keeps it off the hot path.
	if p.ctrs == nil && (p.prof == nil || !p.prof.InterruptPending()) {
		return
	}
	pc := p.attributionPC()
	if p.uninterruptible(pc) {
		return // interrupts stay pending until the region is left
	}
	if p.ctrs != nil {
		p.ctrs.Tick(p.cycle, pc)
	}
	if p.prof != nil && p.prof.InterruptPending() {
		if p.faults != nil {
			// One hold decision per raised interrupt: injected delivery
			// delay, coalescing window, or stalled drain. Fetch is NOT
			// frozen while the interrupt is withheld — the machine runs
			// on and the Unit sheds samples, which is the hazard.
			if !p.intHoldDecided {
				p.intHoldDecided = true
				if h := p.faults.HoldInterrupt(); h > 0 {
					p.intHoldUntil = p.cycle + h
					p.res.InterruptsHeld++
					p.res.InterruptHoldCycles += h
				}
			}
			if p.cycle < p.intHoldUntil {
				return
			}
			p.intHoldDecided = false
		}
		p.deliverProfileInterrupt()
		p.fetchStallUntil = maxI64(p.fetchStallUntil, p.cycle+1+int64(p.cfg.InterruptCost))
		p.res.InterruptStall += int64(p.cfg.InterruptCost)
	}
}

// uninterruptible reports whether pc lies in the configured high-priority
// region.
func (p *Pipeline) uninterruptible(pc uint64) bool {
	return p.cfg.UninterruptibleEnd > p.cfg.UninterruptibleStart &&
		pc >= p.cfg.UninterruptibleStart && pc < p.cfg.UninterruptibleEnd
}

func (p *Pipeline) deliverProfileInterrupt() {
	samples := p.prof.Drain()
	p.res.Interrupts++
	if p.profHandler != nil {
		p.profHandler(samples)
	}
	// The handler has returned; its contract (AttachProfileMe) is that it
	// copies what it keeps, so the buffer can back the next fill.
	p.prof.Recycle(samples)
}

// attributionPC is the PC a performance-counter interrupt handler would
// observe: the restart PC, i.e. the oldest unretired instruction, else the
// current fetch point.
func (p *Pipeline) attributionPC() uint64 {
	for i := 0; i < p.robCount; i++ {
		u := p.rob[(p.robHead+i)%len(p.rob)]
		if u.state != stSquashed && u.state != stRetired {
			return u.pc
		}
	}
	if p.fetchHead < len(p.fetchBuf) {
		return p.fetchBuf[p.fetchHead].pc
	}
	if p.offPath {
		return p.offPC
	}
	if r, ok := p.win.at(p.nextSeq); ok {
		return r.PC
	}
	return 0
}

// ------------------------------------------------------------------- rob --

func (p *Pipeline) robPush(u *uop) {
	i := (p.robHead + p.robCount) % len(p.rob)
	u.robIdx = int32(i)
	p.rob[i] = u
	p.robCount++
}

func (p *Pipeline) robPop() {
	p.rob[p.robHead] = nil
	p.robHead = (p.robHead + 1) % len(p.rob)
	p.robCount--
}

func (p *Pipeline) pcStats(pc uint64) *PCStats {
	if p.pcs == nil {
		return nil
	}
	return p.pcs.at(pc)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
