package cpu

import (
	"errors"
	"testing"

	"profileme/internal/sim"
	"profileme/internal/workload"
)

// TestWatchdogFiresTyped shrinks the watchdog below the pipeline's fill
// latency so it trips immediately: Run must return ErrLivelock (typed, via
// errors.Is) with the result finalized, never hang.
func TestWatchdogFiresTyped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 2 // below fetch->retire latency: guaranteed trip
	prog := workload.Compress(5000)
	pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run(0)
	if err == nil {
		t.Fatal("watchdog did not fire")
	}
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("error not typed as ErrLivelock: %v", err)
	}
	if res.Cycles == 0 {
		t.Fatal("result not finalized on watchdog exit")
	}
}

// TestWatchdogQuietOnHealthyRun checks the default bound never trips on a
// normal run, and that a run completing normally reports no error.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.WatchdogCycles != DefaultWatchdogCycles {
		t.Fatalf("default config watchdog = %d", cfg.WatchdogCycles)
	}
	prog := workload.Compress(8000)
	pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Run(0); err != nil {
		t.Fatalf("healthy run errored: %v", err)
	}
}

func TestValidateRejectsDegenerateShapes(t *testing.T) {
	cases := map[string]func(*Config){
		"zero fetch width":    func(c *Config) { c.FetchWidth = 0 },
		"zero map width":      func(c *Config) { c.MapWidth = 0 },
		"zero retire width":   func(c *Config) { c.RetireWidth = 0 },
		"zero int units":      func(c *Config) { c.IntUnits = 0 },
		"zero mem ports":      func(c *Config) { c.MemPorts = 0 },
		"zero fp units":       func(c *Config) { c.FPUnits = 0 },
		"tiny ROB":            func(c *Config) { c.ROBSize = 1 },
		"no issue queue":      func(c *Config) { c.IQInt = 0 },
		"negative penalty":    func(c *Config) { c.MispredictPenalty = -1 },
		"negative bubble":     func(c *Config) { c.TakenBranchBubble = -1 },
		"negative intr cost":  func(c *Config) { c.InterruptCost = -1 },
		"negative watchdog":   func(c *Config) { c.WatchdogCycles = -1 },
		"zero sustained":      func(c *Config) { c.SustainedIssueWidth = 0 },
		"zero latency":        func(c *Config) { c.Lat.IntALU = 0 },
		"starved phys regs":   func(c *Config) { c.PhysRegs = 10 },
		"fetch buf too small": func(c *Config) { c.FetchBuf = 1 },
	}
	for name, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}
