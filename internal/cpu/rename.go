package cpu

import "profileme/internal/isa"

// pregID names a physical register; -1 means none.
type pregID int16

const noPreg pregID = -1

// renamer is the register-rename machinery: an architectural-to-physical
// map table, a free list, and per-physical-register readiness. Values are
// never stored — the functional simulator supplies semantics — only
// readiness timing. Readiness and its timestamp share one slice: readyAt
// holds the cycle the register's value became available, or notReady, so
// the issue loop touches a single cache line per operand instead of two
// parallel slices.
type renamer struct {
	mapTable [isa.NumRegs]pregID
	free     []pregID
	readyAt  []int64  // ready since this cycle; notReady = value still in flight
	gen      []uint32 // bumped on allocate; guards late wakeups of freed registers
}

// notReady marks a physical register whose value has not yet been
// produced. It is below any real cycle (cycles start at 0).
const notReady int64 = -1

// newRenamer builds a renamer with physRegs physical registers. The first
// NumRegs physicals are bound to the architectural registers and ready.
func newRenamer(physRegs int) *renamer {
	r := &renamer{
		free:    make([]pregID, 0, physRegs),
		readyAt: make([]int64, physRegs),
		gen:     make([]uint32, physRegs),
	}
	for i := range r.mapTable {
		r.mapTable[i] = pregID(i)
	}
	for p := physRegs - 1; p >= isa.NumRegs; p-- {
		r.free = append(r.free, pregID(p))
	}
	return r
}

// freeCount returns the number of allocatable physical registers.
func (r *renamer) freeCount() int { return len(r.free) }

// lookup returns the current physical mapping of an architectural source.
func (r *renamer) lookup(a isa.Reg) pregID { return r.mapTable[a] }

// allocate maps architectural register a to a fresh physical register,
// returning the new physical register and the previous mapping (to free at
// retire or restore at squash). It returns noPreg when the free list is
// empty; callers must check freeCount first or handle the stall.
func (r *renamer) allocate(a isa.Reg) (newP, oldP pregID) {
	if len(r.free) == 0 {
		return noPreg, noPreg
	}
	newP = r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	oldP = r.mapTable[a]
	r.mapTable[a] = newP
	r.readyAt[newP] = notReady
	r.gen[newP]++
	return newP, oldP
}

// generation returns the allocation generation of p (0 for noPreg).
// Deferred wakeups capture it at issue and check it before marking ready,
// so a register freed and reallocated in the meantime is not corrupted.
func (r *renamer) generation(p pregID) uint32 {
	if p == noPreg {
		return 0
	}
	return r.gen[p]
}

// markReadyIfCurrent marks p ready only if its generation still matches.
func (r *renamer) markReadyIfCurrent(p pregID, gen uint32, cycle int64) {
	if p == noPreg || r.gen[p] != gen {
		return
	}
	r.markReady(p, cycle)
}

// markReady records that physical register p's value is available as of
// cycle.
func (r *renamer) markReady(p pregID, cycle int64) {
	if p == noPreg {
		return
	}
	r.readyAt[p] = cycle
}

// isReady reports whether p's value is available. noPreg (no source) is
// always ready.
func (r *renamer) isReady(p pregID) bool {
	return p == noPreg || r.readyAt[p] != notReady
}

// readySince returns the cycle p became ready (0 for never-written
// registers, which have been ready since reset).
func (r *renamer) readySince(p pregID) int64 {
	if p == noPreg {
		return 0
	}
	return r.readyAt[p]
}

// release returns p to the free list (the retiring instruction's
// previous mapping, now dead).
func (r *renamer) release(p pregID) {
	if p != noPreg {
		r.free = append(r.free, p)
	}
}

// undo reverses one allocation during squash recovery: the map table entry
// for a is restored to oldP and newP returns to the free list. Must be
// called youngest-first.
func (r *renamer) undo(a isa.Reg, newP, oldP pregID) {
	if newP == noPreg {
		return
	}
	r.mapTable[a] = oldP
	r.free = append(r.free, newP)
}
