// Package cpu is the out-of-order superscalar timing pipeline the
// ProfileMe hardware plugs into — the reproduction's stand-in for the
// paper's cycle-accurate Alpha 21264 simulator. It replays the
// correct-path dynamic instruction stream from internal/sim through a
// 21264-flavoured pipeline (fetch with branch prediction and real
// wrong-path fetch, rename with physical register files, issue queues and
// functional-unit pools, a memory pipeline with replay traps, in-order
// retirement) and drives the ProfileMe unit (internal/core) and baseline
// event counters (internal/counters) with everything they would observe
// in hardware.
package cpu

import (
	"fmt"

	"profileme/internal/bpred"
	"profileme/internal/isa"
	"profileme/internal/mem"
)

// Latencies gives execution latencies per operation class, in cycles from
// issue to completion (loads take their latency from the memory
// hierarchy instead).
type Latencies struct {
	IntALU int
	IntMul int
	FAdd   int // pipelined FP add/mul
	FDiv   int // unpipelined divide
	Branch int // resolution latency for control instructions
	Store  int
}

// DefaultLatencies returns 21264-flavoured execution latencies.
func DefaultLatencies() Latencies {
	return Latencies{IntALU: 1, IntMul: 7, FAdd: 4, FDiv: 12, Branch: 1, Store: 1}
}

// Config parameterizes the pipeline. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Widths.
	FetchWidth  int // fetch opportunities per cycle
	MapWidth    int // rename/dispatch per cycle
	RetireWidth int // in-order retires per cycle

	// Sustained issue width C used by the wasted-issue-slot metric
	// (paper §5.2.3: "four per cycle sustainable on the Alpha 21264").
	SustainedIssueWidth int

	// Buffers.
	ROBSize  int // maximum in-flight instructions
	IQInt    int // integer issue-queue entries
	IQFP     int // floating-point issue-queue entries
	FetchBuf int // fetch-to-map decoupling buffer
	PhysRegs int // physical integer registers (> isa.NumRegs)

	// Functional units.
	IntUnits int // integer ALUs (also execute control ops)
	MemPorts int // load/store ports
	FPUnits  int // FP pipes (one shared unpipelined divider)

	// Control flow.
	MispredictPenalty int  // redirect bubble after a resolved mispredict
	TakenBranchBubble int  // fetch bubble after a predicted-taken branch
	InOrder           bool // restrict issue to program order (21164-like)

	// Memory system.
	ReplayTraps bool // 21264-style load-store order replay traps

	// NoWrongPath disables wrong-path fetch for the ablation study: after
	// a misprediction the fetcher idles (presenting empty fetch
	// opportunities) instead of following the predicted path, so no
	// bad-path instructions exist to sample. Timing of recovery is
	// unchanged.
	NoWrongPath bool

	// Profiling interrupt cost: cycles fetch is frozen while software
	// reads the profile registers (per delivered interrupt).
	InterruptCost int

	// WatchdogCycles bounds how long the ROB may sit non-empty with no
	// retirement before Run gives up with ErrLivelock instead of looping
	// forever (0 disables the watchdog). It must exceed the longest
	// legitimate stall — worst-case memory latency plus interrupt
	// delivery — by a wide margin; DefaultWatchdogCycles is far above
	// both.
	WatchdogCycles int

	// UninterruptibleStart/End mark a PC range of high-priority code
	// (like Alpha PALcode, §2.2): no interrupt — counter overflow or
	// ProfileMe — is recognized while the restart PC lies inside
	// [Start, End). Deferred counter interrupts are then attributed to
	// whatever instruction follows the region, creating the "blind
	// spots" the paper describes; ProfileMe samples keep their correct
	// PCs because attribution happened at selection, not delivery.
	UninterruptibleStart uint64
	UninterruptibleEnd   uint64

	// Identification recorded in the ProfileMe context register.
	Context uint64

	// PhysBase offsets every memory-hierarchy probe (fetch and data):
	// with a shared hierarchy, each process gets disjoint physical
	// addresses, as distinct page mappings would provide. Profile records
	// still carry virtual addresses.
	PhysBase uint64

	// Ground-truth instrumentation (the simulator is omniscient; these
	// feed estimator validation, not the modelled hardware).
	TrackPerPC       bool
	TrackWastedSlots bool
	TrackWindowedIPC bool
	IPCWindowCycles  int // window size for windowed-IPC tracking (§6: 30)

	Lat   Latencies
	Mem   mem.Config
	Bpred bpred.Config
}

// DefaultConfig returns the 21264-flavoured configuration used by the
// experiments (DESIGN.md §6).
func DefaultConfig() Config {
	return Config{
		FetchWidth:          4,
		MapWidth:            4,
		RetireWidth:         4,
		SustainedIssueWidth: 4,
		ROBSize:             80,
		IQInt:               20,
		IQFP:                15,
		FetchBuf:            16,
		PhysRegs:            80,
		IntUnits:            4,
		MemPorts:            2,
		FPUnits:             2,
		MispredictPenalty:   7,
		TakenBranchBubble:   1,
		ReplayTraps:         true,
		InterruptCost:       30,
		WatchdogCycles:      DefaultWatchdogCycles,
		IPCWindowCycles:     30,
		TrackPerPC:          true,
		Lat:                 DefaultLatencies(),
		Mem:                 mem.DefaultConfig(),
		Bpred:               bpred.DefaultConfig(),
	}
}

// InOrderConfig returns an in-order configuration (21164-like) used by the
// Figure 2 baseline comparison: same widths and memory system, but issue
// is restricted to program order.
func InOrderConfig() Config {
	cfg := DefaultConfig()
	cfg.InOrder = true
	cfg.ReplayTraps = false // in-order issue cannot reorder loads past stores
	return cfg
}

// DefaultWatchdogCycles is the default retire-progress bound: orders of
// magnitude above any legitimate stall (hundreds of cycles of memory
// latency, tens of cycles of interrupt delivery).
const DefaultWatchdogCycles = 1_000_000

// Validate reports a configuration problem, or nil.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth < 1 || c.MapWidth < 1 || c.RetireWidth < 1:
		return fmt.Errorf("cpu: non-positive pipeline width")
	case c.ROBSize < 2:
		return fmt.Errorf("cpu: ROB size %d too small", c.ROBSize)
	case c.IQInt < 1 || c.IQFP < 1:
		return fmt.Errorf("cpu: non-positive issue queue size")
	case c.FetchBuf < c.FetchWidth:
		return fmt.Errorf("cpu: fetch buffer %d smaller than fetch width %d", c.FetchBuf, c.FetchWidth)
	case c.PhysRegs < isa.NumRegs+c.MapWidth:
		return fmt.Errorf("cpu: %d physical registers cannot rename %d architectural", c.PhysRegs, isa.NumRegs)
	case c.IntUnits < 1 || c.MemPorts < 1 || c.FPUnits < 1:
		return fmt.Errorf("cpu: non-positive functional unit count")
	case c.SustainedIssueWidth < 1:
		return fmt.Errorf("cpu: non-positive sustained issue width")
	case c.Lat.IntALU < 1 || c.Lat.IntMul < 1 || c.Lat.FAdd < 1 || c.Lat.FDiv < 1 || c.Lat.Branch < 1 || c.Lat.Store < 1:
		return fmt.Errorf("cpu: all latencies must be at least 1 cycle")
	case c.TrackWindowedIPC && c.IPCWindowCycles < 1:
		return fmt.Errorf("cpu: windowed IPC needs a positive window")
	case c.MispredictPenalty < 0 || c.TakenBranchBubble < 0:
		return fmt.Errorf("cpu: negative front-end penalty")
	case c.InterruptCost < 0:
		return fmt.Errorf("cpu: negative interrupt cost")
	case c.WatchdogCycles < 0:
		return fmt.Errorf("cpu: negative watchdog bound")
	}
	return c.Bpred.Validate()
}
