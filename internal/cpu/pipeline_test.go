package cpu

import (
	"testing"

	"profileme/internal/asm"
	"profileme/internal/core"
	"profileme/internal/counters"
	"profileme/internal/isa"
	"profileme/internal/sim"
)

// runProgram assembles nothing: it takes an already-built program, runs the
// functional machine as the trace source and the pipeline on top, and
// returns the result.
func runProgram(t *testing.T, prog *isa.Program, cfg Config) (Result, *Pipeline) {
	t.Helper()
	src := sim.NewMachineSource(sim.New(prog), 0)
	p, err := New(prog, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if srcErr := src.Err(); srcErr != nil {
		t.Fatal(srcErr)
	}
	return res, p
}

func countedLoop(iters int, body string) *isa.Program {
	return asm.MustAssemble(`
.proc main
    lda r1, ` + itoa(iters) + `(zero)
loop:
` + body + `
    sub r1, r1, #1
    bne r1, loop
    ret
.endp`)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		b = append([]byte{'-'}, b...)
	}
	return string(b)
}

func TestRetireCountMatchesTrace(t *testing.T) {
	prog := countedLoop(1000, `
    add r2, r2, #1
    add r3, r3, #2
    xor r4, r2, r3`)
	recs, err := sim.Trace(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := runProgram(t, prog, DefaultConfig())
	if res.Retired != uint64(len(recs)) {
		t.Fatalf("retired %d, trace has %d", res.Retired, len(recs))
	}
}

func TestIndependentALUReachesWideIPC(t *testing.T) {
	// A warm, line-aligned loop whose 16-instruction body exactly fills
	// four fetch blocks of one cache line, with the taken-branch bubble
	// disabled: fetch, map and issue all sustain the machine width of 4.
	cfg := DefaultConfig()
	cfg.TakenBranchBubble = 0
	b := asm.NewBuilder()
	b.Proc("main")
	b.LdI(1, 5000)
	for b.PC()%64 != 0 {
		b.Nop()
	}
	b.Label("loop")
	for i := 0; i < 14; i++ {
		b.AddI(isa.Reg(2+i), isa.Reg(2+i), 1)
	}
	b.SubI(1, 1, 1)
	b.Bne(1, "loop")
	b.Ret().EndProc()
	res, _ := runProgram(t, b.MustBuild(), cfg)
	if ipc := res.IPC(); ipc < 3.6 {
		t.Fatalf("IPC = %.2f, want close to 4", ipc)
	}

	// With the loop (taken branch each iteration) the fetch bubble bounds
	// IPC below the straight-line rate but it should still exceed 3.
	loop := countedLoop(3000, `
    add r2, r2, #1
    add r3, r3, #1
    add r4, r4, #1
    add r5, r5, #1
    add r6, r6, #1
    add r7, r7, #1
    add r8, r8, #1
    add r9, r9, #1
    add r10, r10, #1
    add r11, r11, #1
    add r12, r12, #1
    add r13, r13, #1
    add r14, r14, #1
    add r15, r15, #1`)
	// Unaligned loop with the default taken-branch bubble: alignment and
	// redirect overheads cost roughly a cycle per iteration.
	res2, _ := runProgram(t, loop, DefaultConfig())
	if ipc := res2.IPC(); ipc < 2.5 {
		t.Fatalf("loop IPC = %.2f, want > 2.5", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// A single dependence chain of multiplies: ~1 mul per IntMul latency.
	prog := countedLoop(2000, `
    mul r2, r2, r3
    mul r2, r2, r3
    mul r2, r2, r3`)
	res, _ := runProgram(t, prog, DefaultConfig())
	// 3 muls/iteration, each 7 cycles, serialized: CPI >= ~4 overall.
	if cpi := res.CPI(); cpi < 3.5 {
		t.Fatalf("CPI = %.2f, dependence chain not serializing", cpi)
	}
}

func TestOutOfOrderBeatsInOrderOnMixedILP(t *testing.T) {
	// A long-latency divide followed by independent work: OoO hides the
	// divide, in-order stalls behind it.
	body := `
    fdiv r9, r8, r7
    add r2, r2, #1
    add r3, r3, #1
    add r4, r4, #1
    add r5, r5, #1
    add r6, r6, #1
    add r10, r10, #1
    add r11, r11, #1
    add r12, r12, #1`
	prog := countedLoop(2000, body)
	ooo, _ := runProgram(t, prog, DefaultConfig())
	ino, _ := runProgram(t, prog, InOrderConfig())
	if ooo.Cycles >= ino.Cycles {
		t.Fatalf("OoO %d cycles, in-order %d: out-of-order should win", ooo.Cycles, ino.Cycles)
	}
}

func TestMispredictsProduceWrongPathFetches(t *testing.T) {
	// A data-dependent unpredictable branch: r2 cycles through a pattern
	// derived from an LCG, so the direction is hard to predict.
	prog := asm.MustAssemble(`
.proc main
    lda r1, 3000(zero)
    lda r5, 12345(zero)
loop:
    mul r5, r5, #1103515245
    add r5, r5, #12345
    srl r6, r5, #16
    and r6, r6, #1
    beq r6, skip
    add r3, r3, #1
skip:
    sub r1, r1, #1
    bne r1, loop
    ret
.endp`)
	res, _ := runProgram(t, prog, DefaultConfig())
	if res.Mispredicts < 300 {
		t.Fatalf("only %d mispredicts on unpredictable branch", res.Mispredicts)
	}
	if res.FetchedOffPath == 0 {
		t.Fatal("no wrong-path instructions fetched")
	}
	if res.IssuedWasted == 0 {
		t.Fatal("no wrong-path instructions issued")
	}
}

func TestPredictableBranchFewMispredicts(t *testing.T) {
	prog := countedLoop(5000, "    add r2, r2, #1")
	res, _ := runProgram(t, prog, DefaultConfig())
	if res.Mispredicts > 60 {
		t.Fatalf("%d mispredicts on a counted loop", res.Mispredicts)
	}
}

func TestDCacheMissLatencyVisible(t *testing.T) {
	// Pointer-chase across > L1-size memory: every load misses; runtime
	// should be dominated by memory latency.
	hit := countedLoop(2000, "    ld r2, 0(r4)") // same address every time: hits
	resHit, _ := runProgram(t, hit, DefaultConfig())

	// Dependent misses: the next address depends on the loaded value
	// (which is always 0 in cold memory), so the chase serializes and
	// each load pays the full memory latency.
	miss := asm.MustAssemble(`
.proc main
    lda r1, 2000(zero)
    lda r4, 0x100000(zero)
loop:
    ld  r2, 0(r4)          ; loads 0; serializes the address chain
    add r4, r4, r2
    add r4, r4, #8192      ; new line and page every iteration
    and r4, r4, #0x3fffff
    or  r4, r4, #0x100000
    sub r1, r1, #1
    bne r1, loop
    ret
.endp`)
	resMiss, _ := runProgram(t, miss, DefaultConfig())
	if resMiss.Cycles < resHit.Cycles*3 {
		t.Fatalf("missing loads (%d cycles) not much slower than hitting (%d)", resMiss.Cycles, resHit.Cycles)
	}
}

func TestPerPCGroundTruth(t *testing.T) {
	prog := countedLoop(500, `
    add r2, r2, #1
    mul r3, r2, r2`)
	_, p := runProgram(t, prog, DefaultConfig())
	stats := p.PerPC()
	// The add at PC 4 (after the lda) executes 500 times.
	addStats := stats[1]
	if addStats.Retired != 500 {
		t.Fatalf("add retired %d times, want 500", addStats.Retired)
	}
	// The branch is taken 499 times.
	brStats := stats[4]
	if brStats.Taken != 499 {
		t.Fatalf("branch taken %d, want 499", brStats.Taken)
	}
	if addStats.LatInProgress <= 0 {
		t.Fatal("no latency accumulated")
	}
}

func TestReplayTrap(t *testing.T) {
	// A store whose address is computed through a long dependence chain,
	// followed immediately by a load to the same address with an
	// immediately-available address: the load issues first (out of
	// order), the store then completes and must replay the load.
	prog := asm.MustAssemble(`
.proc main
    lda r1, 400(zero)
    lda r10, 0x8000(zero)
loop:
    mul r5, r1, #8       ; long-latency address computation
    and r5, r5, #0xff8
    add r6, r10, r5
    st  r7, 0(r6)        ; store: address ready late
    ld  r8, 0x8000(r5)   ; load same address, ready immediately
    add r7, r8, #1
    sub r1, r1, #1
    bne r1, loop
    ret
.endp`)
	cfg := DefaultConfig()
	res, _ := runProgram(t, prog, cfg)
	if res.ReplayTraps == 0 {
		t.Fatal("no replay traps on store-load conflict")
	}

	cfg.ReplayTraps = false
	res2, _ := runProgram(t, prog, cfg)
	if res2.ReplayTraps != 0 {
		t.Fatal("replay traps despite being disabled")
	}
}

func TestWindowedIPC(t *testing.T) {
	prog := countedLoop(3000, "    add r2, r2, #1")
	cfg := DefaultConfig()
	cfg.TrackWindowedIPC = true
	res, p := runProgram(t, prog, cfg)
	wins := p.IPCWindows()
	if len(wins) == 0 {
		t.Fatal("no IPC windows")
	}
	var sum uint64
	for _, w := range wins {
		sum += uint64(w)
	}
	if sum != res.Retired {
		t.Fatalf("window sum %d != retired %d", sum, res.Retired)
	}
}

func TestCallReturnPipelined(t *testing.T) {
	prog := asm.MustAssemble(`
.proc main
    add r20, ra, #0
    lda r1, 1000(zero)
loop:
    jsr ra, callee
    sub r1, r1, #1
    bne r1, loop
    ret (r20)
.endp
.proc callee
    add r2, r2, #1
    ret (ra)
.endp`)
	res, p := runProgram(t, prog, DefaultConfig())
	recs, _ := sim.Trace(prog, 0)
	if res.Retired != uint64(len(recs)) {
		t.Fatalf("retired %d != trace %d", res.Retired, len(recs))
	}
	// The RAS should make returns nearly perfectly predicted.
	lookups, mispred := p.Predictor().Accuracy()
	if lookups == 0 {
		t.Fatal("no control instructions resolved")
	}
	if float64(mispred)/float64(lookups) > 0.05 {
		t.Fatalf("%d/%d control mispredicts with a RAS", mispred, lookups)
	}
}

func TestProfileMeSamplesMatchGroundTruth(t *testing.T) {
	prog := countedLoop(20000, `
    add r2, r2, #1
    add r3, r3, r2
    xor r4, r3, r2`)
	src := sim.NewMachineSource(sim.New(prog), 0)
	cfg := DefaultConfig()
	cfg.InterruptCost = 0 // keep timing undisturbed for this check
	p, err := New(prog, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ucfg := core.DefaultConfig()
	ucfg.MeanInterval = 50
	unit := core.MustNewUnit(ucfg)
	var samples []core.Sample
	p.AttachProfileMe(unit, func(s []core.Sample) { samples = append(samples, s...) })
	res, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	if len(samples) < 500 {
		t.Fatalf("only %d samples", len(samples))
	}
	// Sampled retире fraction should approximate the true fraction of
	// fetched-on-path instructions that retire.
	var retired int
	perPC := map[uint64]int{}
	for _, s := range samples {
		if s.First.Retired() {
			retired++
		}
		perPC[s.First.PC]++
	}
	trueFrac := float64(res.Retired) / float64(res.FetchedOnPath)
	gotFrac := float64(retired) / float64(len(samples))
	if gotFrac < trueFrac-0.1 || gotFrac > trueFrac+0.1 {
		t.Fatalf("sampled retire fraction %.3f vs true %.3f", gotFrac, trueFrac)
	}
	// Loop-body PCs should dominate the samples.
	if len(perPC) < 4 {
		t.Fatalf("samples cover only %d PCs", len(perPC))
	}
	// Stage timestamps must be monotonically ordered for retired samples.
	for _, s := range samples {
		r := s.First
		if !r.Retired() {
			continue
		}
		prev := int64(-1)
		for st := core.StageFetch; st < core.NumStages; st++ {
			c := r.StageCycle[st]
			if c < 0 {
				t.Fatalf("retired sample at %#x missing stage %v", r.PC, st)
			}
			if c < prev {
				t.Fatalf("stage %v at %d before previous %d", st, c, prev)
			}
			prev = c
		}
	}
}

func TestProfileMeSeesAbortedInstructions(t *testing.T) {
	// Unpredictable branches produce wrong-path fetches; with
	// fetch-opportunity counting the sampler must capture some aborted,
	// off-path instructions.
	prog := asm.MustAssemble(`
.proc main
    lda r1, 30000(zero)
    lda r5, 98765(zero)
loop:
    mul r5, r5, #6364136223846793005
    add r5, r5, #1442695040888963407
    srl r6, r5, #32
    and r6, r6, #1
    beq r6, skip
    add r3, r3, #1
    add r4, r4, #1
skip:
    sub r1, r1, #1
    bne r1, loop
    ret
.endp`)
	src := sim.NewMachineSource(sim.New(prog), 0)
	cfg := DefaultConfig()
	p, err := New(prog, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ucfg := core.DefaultConfig()
	ucfg.MeanInterval = 40
	ucfg.CountMode = core.CountFetchOpportunities
	unit := core.MustNewUnit(ucfg)
	var aborted, offPath, total int
	p.AttachProfileMe(unit, func(ss []core.Sample) {
		for _, s := range ss {
			total++
			if !s.First.Retired() {
				aborted++
			}
			if s.First.Events.Has(core.EvOffPath) {
				offPath++
			}
		}
	})
	if _, err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if total < 1000 {
		t.Fatalf("only %d samples", total)
	}
	if aborted == 0 {
		t.Fatal("no aborted instructions sampled")
	}
	if offPath == 0 {
		t.Fatal("no off-path instructions sampled")
	}
}

func TestEventCounterAggregates(t *testing.T) {
	prog := countedLoop(1000, `
    ld r2, 0(r10)
    st r2, 8(r10)`)
	src := sim.NewMachineSource(sim.New(prog), 0)
	p, err := New(prog, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctr := counters.New(counters.Config{}, nil)
	p.AttachCounters(ctr)
	res, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Count(counters.EventRetired) != res.Retired {
		t.Fatalf("counter retired %d != %d", ctr.Count(counters.EventRetired), res.Retired)
	}
	// 2 memory references per iteration, plus wrong-path pollution.
	if refs := ctr.Count(counters.EventDCacheRef); refs < 2000 {
		t.Fatalf("dcache refs = %d, want >= 2000", refs)
	}
}

func TestInterruptCostSlowsRun(t *testing.T) {
	prog := countedLoop(20000, "    add r2, r2, #1")
	run := func(cost int, interval float64) Result {
		src := sim.NewMachineSource(sim.New(prog), 0)
		cfg := DefaultConfig()
		cfg.InterruptCost = cost
		p, err := New(prog, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		unit := core.MustNewUnit(core.Config{
			MeanInterval: interval, BufferDepth: 1, Window: 80,
			CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 5,
		})
		p.AttachProfileMe(unit, func([]core.Sample) {})
		res, err := p.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cheap := run(0, 100)
	costly := run(200, 100)
	if costly.Cycles <= cheap.Cycles {
		t.Fatalf("interrupt cost had no effect: %d vs %d", cheap.Cycles, costly.Cycles)
	}
	if costly.Interrupts == 0 || costly.InterruptStall == 0 {
		t.Fatalf("interrupts not accounted: %+v", costly)
	}
}

func TestWastedSlotsGroundTruth(t *testing.T) {
	// Serial pointer-ish chain: almost everything is wasted. Parallel
	// independent adds: much less waste per instruction.
	serial := countedLoop(2000, `
    mul r2, r2, #3
    mul r2, r2, #5
    mul r2, r2, #7`)
	cfg := DefaultConfig()
	cfg.TrackWastedSlots = true
	_, p := runProgram(t, serial, cfg)
	stats := p.PerPC()
	var wasted, useful int64
	for _, s := range stats {
		wasted += s.WastedSlots
		useful += s.UsefulSlots
	}
	if wasted == 0 {
		t.Fatal("no wasted slots measured on a serial chain")
	}
	if useful == 0 {
		t.Fatal("no useful overlap measured at all")
	}
	if wasted < useful {
		t.Fatalf("serial chain should waste more than it uses: wasted=%d useful=%d", wasted, useful)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.ROBSize = 1
	prog := countedLoop(1, "    nop")
	if _, err := New(prog, sim.NewSliceSource(nil), bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCycleLimit(t *testing.T) {
	prog := countedLoop(1000000, "    add r2, r2, #1")
	src := sim.NewMachineSource(sim.New(prog), 0)
	p, err := New(prog, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(100)
	if err == nil {
		t.Fatal("cycle limit not reported")
	}
}

func TestEmptyProgram(t *testing.T) {
	prog := asm.MustAssemble(".proc main\n ret\n.endp")
	res, _ := runProgram(t, prog, DefaultConfig())
	if res.Retired != 1 {
		t.Fatalf("retired = %d", res.Retired)
	}
}

func TestICacheMissEventOnLargeCode(t *testing.T) {
	// A program bigger than the I-cache footprint in a loop would need
	// >64KB of code; instead shrink the I-cache.
	cfg := DefaultConfig()
	cfg.Mem.ICache.SizeBytes = 512
	cfg.Mem.ICache.Assoc = 1

	// Two procedures exactly one cache-capacity apart (512 B) conflict in
	// every set of the direct-mapped cache; calling them alternately
	// thrashes it. Built with the Builder so the padding is precise.
	b := asm.NewBuilder()
	b.Proc("main").
		Op3(isa.OpAdd, 20, isa.RegRA, isa.RegZero).
		LdI(1, 300).
		Label("loop").
		Jsr("far1").
		Jsr("far2").
		SubI(1, 1, 1).
		Bne(1, "loop").
		Emit(isa.Inst{Op: isa.OpRet, Rb: 20}).
		EndProc()
	b.Proc("far1")
	for i := 0; i < 8; i++ {
		b.AddI(2, 2, 1)
	}
	b.Ret().EndProc()
	for b.PC() < 512+4*isa.InstBytes { // push far2 one cache capacity past far1
		b.Nop()
	}
	b.Proc("far2")
	for i := 0; i < 8; i++ {
		b.AddI(3, 3, 1)
	}
	b.Ret().EndProc()
	prog := b.MustBuild()
	_, p := runProgram(t, prog, cfg)
	icache := p.Hierarchy().ICache()
	if _, misses := icache.Stats(); misses < 10 {
		t.Fatalf("icache misses = %d", misses)
	}
}
