package cpu

// IIDSampler models the related-work baseline the paper contrasts itself
// against (§8): Westcott & White's instruction-sampling patent, which
// profiles an instruction only "when its execution is assigned a
// particular internal instruction number (IID)" and logs it at
// retirement, transparently discarding unretired instructions. In this
// pipeline the IID is the reorder-buffer slot an instruction is mapped
// into.
//
// Two deficiencies follow, which the comparison experiment quantifies:
// slot assignment is strongly correlated with program structure (loop
// bodies land on the same slots lap after lap), so per-PC estimates are
// biased; and aborted instructions are invisible.
type IIDSampler struct {
	// Slot is the profiled reorder-buffer slot.
	Slot int
	// Period logs every Period-th instruction assigned to Slot.
	Period int

	count    int
	pending  map[uint64]bool // sampled in-flight uops by sequence number
	retired  map[uint64]uint64
	aborted  uint64
	selected uint64
}

// NewIIDSampler returns a sampler for the given ROB slot and period.
func NewIIDSampler(slot, period int) *IIDSampler {
	if period < 1 {
		period = 1
	}
	return &IIDSampler{
		Slot: slot, Period: period,
		pending: make(map[uint64]bool), retired: make(map[uint64]uint64),
	}
}

// onMap observes an instruction entering ROB slot idx.
func (s *IIDSampler) onMap(idx int, seq uint64) {
	if idx != s.Slot {
		return
	}
	s.count++
	if s.count < s.Period {
		return
	}
	s.count = 0
	s.selected++
	s.pending[seq] = true
}

// onRetire logs the sample if this uop was selected.
func (s *IIDSampler) onRetire(seq, pc uint64) {
	if s.pending[seq] {
		delete(s.pending, seq)
		s.retired[pc]++
	}
}

// onSquash transparently discards a selected uop — the paper's point.
func (s *IIDSampler) onSquash(seq uint64) {
	if s.pending[seq] {
		delete(s.pending, seq)
		s.aborted++
	}
}

// Retired returns the per-PC retired-sample counts (the only thing the
// W&W hardware delivers).
func (s *IIDSampler) Retired() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(s.retired))
	for pc, n := range s.retired {
		out[pc] = n
	}
	return out
}

// Stats returns (selected, discarded-aborted) counts. The log itself never
// shows the aborted ones.
func (s *IIDSampler) Stats() (selected, aborted uint64) { return s.selected, s.aborted }

// AttachIIDSampler plugs the W&W-style sampler into the pipeline.
func (p *Pipeline) AttachIIDSampler(s *IIDSampler) { p.iid = s }
