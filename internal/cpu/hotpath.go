package cpu

import "sort"

// This file holds the allocation-free machinery behind the per-cycle hot
// path: a ring-buffer event scheduler (replacing map[int64][]*uop for
// completion and load-value wakeup events), an allocation-free seq sort
// (replacing sort.Slice and its reflect-based swapper), and a chunked uop
// arena (replacing one heap object per fetched instruction). None of these
// change simulated behavior — the differential golden suite in
// internal/difftest pins that.

// eventRing schedules uops for future cycles. Nearly every event lands
// within a bounded horizon — functional-unit latencies and worst-case
// memory round trips are small config-derived constants — so the common
// case is an array slot indexed by cycle&mask whose backing storage is
// recycled forever. Events beyond the horizon (exotic configs) spill into
// a map that is only consulted when non-empty.
type eventRing struct {
	slots [][]*uop
	mask  int64
	far   map[int64][]*uop
}

// newEventRing sizes the ring to cover at least span cycles of lookahead
// (rounded up to a power of two, minimum 64).
func newEventRing(span int) *eventRing {
	size := int64(64)
	for size < int64(span)+2 {
		size <<= 1
	}
	return &eventRing{slots: make([][]*uop, size), mask: size - 1}
}

// add schedules u for cycle cyc (now is the current cycle; cyc must be
// >= now, which holds for all pipeline events — latencies are positive).
func (r *eventRing) add(now, cyc int64, u *uop) {
	if cyc-now >= int64(len(r.slots)) {
		if r.far == nil {
			r.far = make(map[int64][]*uop)
		}
		r.far[cyc] = append(r.far[cyc], u)
		return
	}
	i := cyc & r.mask
	r.slots[i] = append(r.slots[i], u)
}

// take returns the uops scheduled for cyc, in insertion order, and clears
// the slot while keeping its capacity. The returned slice is valid until
// the slot's cycle comes around again (ring-size cycles later) — callers
// consume it within the same simulated cycle.
func (r *eventRing) take(cyc int64) []*uop {
	i := cyc & r.mask
	s := r.slots[i]
	r.slots[i] = s[:0]
	if len(r.far) > 0 {
		if f, ok := r.far[cyc]; ok {
			delete(r.far, cyc)
			s = append(s, f...)
		}
	}
	return s
}

// drainAscending visits every still-pending event in ascending cycle
// order, emptying the ring. Pending events all lie at cycles >= from
// because take(c) ran for every cycle before from. Used by finish() to
// flush deferred load-completion signals deterministically.
func (r *eventRing) drainAscending(from int64, visit func(cyc int64, u *uop)) {
	for off := int64(0); off < int64(len(r.slots)); off++ {
		cyc := from + off
		i := cyc & r.mask
		for _, u := range r.slots[i] {
			visit(cyc, u)
		}
		r.slots[i] = r.slots[i][:0]
	}
	if len(r.far) > 0 {
		cycles := make([]int64, 0, len(r.far))
		for c := range r.far {
			cycles = append(cycles, c)
		}
		sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
		for _, c := range cycles {
			for _, u := range r.far[c] {
				visit(c, u)
			}
		}
		r.far = nil
	}
}

// sortBySeq orders uops by fetch sequence with a plain insertion sort:
// per-cycle completion groups are issue-width-sized, where this beats
// sort.Slice and allocates nothing (sort.Slice's reflect-based swapper was
// 8% of the simulator's allocations).
func sortBySeq(cs []*uop) {
	for i := 1; i < len(cs); i++ {
		u := cs[i]
		j := i - 1
		for j >= 0 && cs[j].seq > u.seq {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = u
	}
}

// uopChunk is the arena granularity: uops are carved from chunks this
// large, so the allocator runs once per uopChunk fetches instead of once
// per fetch (one heap object per fetched instruction was half of all
// simulator allocations). A chunk is collected when every uop in it is
// dead; the pipeline never recycles individual uops, so no liveness
// tracking is needed.
const uopChunk = 1024

// newUop returns a zeroed uop from the arena.
func (p *Pipeline) newUop() *uop {
	if p.arenaN == len(p.arena) {
		p.arena = make([]uop, uopChunk)
		p.arenaN = 0
	}
	u := &p.arena[p.arenaN]
	p.arenaN++
	return u
}
