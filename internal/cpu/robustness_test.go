package cpu

import (
	"testing"
	"testing/quick"

	"profileme/internal/core"
	"profileme/internal/isa"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

// sweepConfigs returns deliberately stressful machine shapes: tiny buffers,
// narrow widths, single units — the invariant (pipeline retires exactly
// the functional instruction stream) must hold on all of them.
func sweepConfigs() map[string]Config {
	tiny := DefaultConfig()
	tiny.ROBSize = 8
	tiny.IQInt, tiny.IQFP = 3, 2
	tiny.FetchBuf = 4
	tiny.PhysRegs = isa.NumRegs + 8

	narrow := DefaultConfig()
	narrow.FetchWidth, narrow.MapWidth, narrow.RetireWidth = 1, 1, 1
	narrow.FetchBuf = 2
	narrow.IntUnits, narrow.MemPorts, narrow.FPUnits = 1, 1, 1
	narrow.SustainedIssueWidth = 1

	slowmem := DefaultConfig()
	slowmem.Mem.MemLatency = 300
	slowmem.Mem.DCache.SizeBytes = 1 << 10
	slowmem.Mem.DCache.Assoc = 1
	slowmem.Mem.ICache.SizeBytes = 1 << 10
	slowmem.Mem.ICache.Assoc = 1

	badpred := DefaultConfig()
	badpred.Bpred.HistoryBits = 1
	badpred.Bpred.TableBits = 2
	badpred.Bpred.BTBEntries = 2
	badpred.Bpred.RASEntries = 1
	badpred.MispredictPenalty = 20

	noreplay := DefaultConfig()
	noreplay.ReplayTraps = false

	inorder := InOrderConfig()

	return map[string]Config{
		"tiny": tiny, "narrow": narrow, "slowmem": slowmem,
		"badpred": badpred, "noreplay": noreplay, "inorder": inorder,
	}
}

func TestConfigSweepRetiresExactly(t *testing.T) {
	progs := map[string]*isa.Program{
		"gen13":    workload.Generate(workload.GenConfig{Procs: 4, BodyBlocks: 4, MainIters: 80, Seed: 13}),
		"gen99":    workload.Generate(workload.GenConfig{Procs: 3, BodyBlocks: 6, MainIters: 60, Seed: 99}),
		"compress": workload.Compress(15000),
		"perl":     workload.Perl(15000),
	}
	for progName, prog := range progs {
		want, err := sim.New(prog).Run(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for cfgName, cfg := range sweepConfigs() {
			src := sim.NewMachineSource(sim.New(prog), 0)
			p, err := New(prog, src, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", progName, cfgName, err)
			}
			res, err := p.Run(20_000_000)
			if err != nil {
				t.Fatalf("%s/%s: %v", progName, cfgName, err)
			}
			if res.Retired != want {
				t.Errorf("%s/%s: retired %d, functional %d", progName, cfgName, res.Retired, want)
			}
		}
	}
}

func TestConfigSweepWithSampling(t *testing.T) {
	// Sampling hardware attached under stressful configs: still exact
	// retirement, and every retired sample's timestamps stay ordered.
	prog := workload.Generate(workload.GenConfig{Procs: 4, BodyBlocks: 5, MainIters: 100, Seed: 5})
	want, err := sim.New(prog).Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for cfgName, cfg := range sweepConfigs() {
		cfg.InterruptCost = 7
		unit := core.MustNewUnit(core.Config{
			Paired: true, MeanInterval: 30, Window: 60, BufferDepth: 3,
			CountMode: core.CountFetchOpportunities, IntervalMode: core.IntervalGeometric, Seed: 2,
		})
		var bad int
		src := sim.NewMachineSource(sim.New(prog), 0)
		p, err := New(prog, src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.AttachProfileMe(unit, func(ss []core.Sample) {
			for _, s := range ss {
				for _, r := range s.Records() {
					if !r.Retired() {
						continue
					}
					prev := int64(-1)
					for st := core.StageFetch; st < core.NumStages; st++ {
						c := r.StageCycle[st]
						if c < prev {
							bad++
						}
						if c >= 0 {
							prev = c
						}
					}
				}
			}
		})
		res, err := p.Run(20_000_000)
		if err != nil {
			t.Fatalf("%s: %v", cfgName, err)
		}
		if res.Retired != want {
			t.Errorf("%s: retired %d, functional %d", cfgName, res.Retired, want)
		}
		if bad != 0 {
			t.Errorf("%s: %d samples with disordered stage timestamps", cfgName, bad)
		}
	}
}

func TestRenamerProperty(t *testing.T) {
	// Random allocate/retire/squash sequences must preserve: no physical
	// register simultaneously free and mapped, free count conservation,
	// and map-table consistency after undo.
	type op struct {
		Kind byte
		Reg  uint8
	}
	f := func(ops []op) bool {
		const phys = 48
		r := newRenamer(phys)
		type alloc struct {
			arch       isa.Reg
			newP, oldP pregID
		}
		var live []alloc // allocation stack (program order)
		for _, o := range ops {
			arch := isa.Reg(o.Reg % (isa.NumRegs - 1)) // skip RegZero
			switch o.Kind % 3 {
			case 0: // allocate (map a new instruction)
				if r.freeCount() == 0 {
					continue
				}
				newP, oldP := r.allocate(arch)
				if newP == noPreg {
					return false
				}
				live = append(live, alloc{arch, newP, oldP})
			case 1: // retire oldest
				if len(live) == 0 {
					continue
				}
				a := live[0]
				live = live[1:]
				r.release(a.oldP)
			case 2: // squash youngest
				if len(live) == 0 {
					continue
				}
				a := live[len(live)-1]
				live = live[:len(live)-1]
				r.undo(a.arch, a.newP, a.oldP)
			}
		}
		// Conservation: free + live allocations + initial arch mappings
		// cover all physical registers exactly once.
		seen := make(map[pregID]int)
		for _, p := range r.free {
			seen[p]++
		}
		for _, a := range live {
			seen[a.newP]++
		}
		// Live "oldP" chains: each live allocation's oldP is either an
		// older live allocation's newP or an original mapping; original
		// mappings and current map table round out the count. The
		// simplest sound check: no duplicate in free, and free+distinct
		// live newP <= phys.
		for p, n := range seen {
			if n > 1 || p == noPreg {
				return false
			}
		}
		// Map table entries must never point at a freed register.
		freeSet := make(map[pregID]bool, len(r.free))
		for _, p := range r.free {
			freeSet[p] = true
		}
		for a := isa.Reg(0); a < isa.NumRegs; a++ {
			if freeSet[r.lookup(a)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRenamerGenerationGuard(t *testing.T) {
	r := newRenamer(40)
	p1, old1 := r.allocate(3)
	g1 := r.generation(p1)
	// Free p1 (squash) and reallocate: generation must change.
	r.undo(3, p1, old1)
	p2, _ := r.allocate(7)
	if p2 != p1 {
		// allocation is LIFO off the free list, so we expect reuse
		t.Fatalf("expected register reuse, got %d vs %d", p2, p1)
	}
	if r.generation(p2) == g1 {
		t.Fatal("generation not bumped on reallocation")
	}
	// A stale wakeup must not mark the new incarnation ready.
	r.markReadyIfCurrent(p1, g1, 100)
	if r.isReady(p2) {
		t.Fatal("stale wakeup leaked through generation guard")
	}
	r.markReadyIfCurrent(p2, r.generation(p2), 101)
	if !r.isReady(p2) {
		t.Fatal("current wakeup rejected")
	}
}

func TestTraceWindow(t *testing.T) {
	recs := make([]sim.Record, 20)
	for i := range recs {
		recs[i] = sim.Record{Seq: uint64(i), PC: uint64(i) * 4}
	}
	w := newTraceWindow(sim.NewSliceSource(recs))

	r, ok := w.at(0)
	if !ok || r.Seq != 0 {
		t.Fatal("at(0)")
	}
	r, ok = w.at(7)
	if !ok || r.Seq != 7 {
		t.Fatal("at(7)")
	}
	// Rewind within the window.
	r, ok = w.at(3)
	if !ok || r.Seq != 3 {
		t.Fatal("rewind")
	}
	w.trim(5)
	if w.buffered() != 3 { // seqs 5, 6, 7
		t.Fatalf("buffered = %d", w.buffered())
	}
	if _, ok := w.at(19); !ok {
		t.Fatal("at(19)")
	}
	if _, ok := w.at(20); ok {
		t.Fatal("past end")
	}
	w.trim(100)
	if w.buffered() != 0 {
		t.Fatal("trim past end")
	}
	// Rewinding below the trimmed base is a simulator bug: must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on rewind below base")
		}
	}()
	w.at(4)
}

func TestInOrderNeverReordersIssue(t *testing.T) {
	// In the in-order configuration, issue cycles must be monotone in
	// program order for on-path instructions.
	prog := workload.Generate(workload.GenConfig{Procs: 3, BodyBlocks: 4, MainIters: 40, Seed: 21})
	src := sim.NewMachineSource(sim.New(prog), 0)
	cfg := InOrderConfig()
	p, err := New(prog, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	unit := core.MustNewUnit(core.Config{
		Paired: true, MeanInterval: 10, Window: 20, BufferDepth: 4,
		CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 3,
	})
	violations := 0
	p.AttachProfileMe(unit, func(ss []core.Sample) {
		for _, s := range ss {
			if !s.Paired || !s.First.Retired() || !s.Second.Retired() {
				continue
			}
			i1, i2 := s.First.StageCycle[core.StageIssue], s.Second.StageCycle[core.StageIssue]
			if i1 >= 0 && i2 >= 0 && i2 < i1 {
				violations++
			}
		}
	})
	if _, err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d issue-order violations on the in-order machine", violations)
	}
}

func TestUninterruptibleRegionDefersCounters(t *testing.T) {
	prog := workload.Compress(20000)
	cfg := DefaultConfig()
	// Mark the whole program uninterruptible: nothing may be delivered
	// until the drain.
	cfg.UninterruptibleStart, cfg.UninterruptibleEnd = 0, prog.MaxPC()
	unit := core.MustNewUnit(core.Config{
		MeanInterval: 100, BufferDepth: 1, Window: 80,
		CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 1,
	})
	delivered := 0
	src := sim.NewMachineSource(sim.New(prog), 0)
	p, err := New(prog, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachProfileMe(unit, func(ss []core.Sample) { delivered += len(ss) })
	res, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// Samples were dropped at the full buffer; only the final drain (when
	// the pipeline empties and the attribution PC leaves the image) plus
	// at most a couple of boundary deliveries get through.
	if res.Interrupts > 3 {
		t.Fatalf("%d interrupts delivered inside an uninterruptible program", res.Interrupts)
	}
	if unit.Stats().SamplesDropped == 0 {
		t.Fatal("expected dropped samples while interrupts were deferred")
	}
	_ = delivered
}

func TestPrefetchSemantics(t *testing.T) {
	// A prefetch warms the cache for a later load, does not block
	// retirement on the miss, and triggers no replay traps.
	prog := workload.Generate(workload.GenConfig{Procs: 1, BodyBlocks: 1, MainIters: 1, Seed: 1})
	_ = prog
	src := `
.proc main
    lda  r4, 0x300000(zero)
    pref 0(r4)
    lda  r1, 400(zero)
spin:
    add  r2, r2, #1       ; enough work for the prefetch to land
    sub  r1, r1, #1
    bne  r1, spin
    ld   r3, 0(r4)        ; should now hit
    st   r3, 0(r4)        ; same address: no replay against the pref
    ret
.endp`
	p := mustPipeline(t, src, DefaultConfig())
	res, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplayTraps != 0 {
		t.Fatalf("prefetch triggered %d replay traps", res.ReplayTraps)
	}
	stats := p.PerPC()
	var prefMiss, loadMiss uint64
	for _, st := range stats {
		in, _ := p.prog.At(st.PC)
		switch in.Op {
		case isa.OpPref:
			prefMiss = st.DCacheMiss
		case isa.OpLd:
			loadMiss = st.DCacheMiss
		}
	}
	_ = prefMiss // the pref takes the miss...
	if loadMiss != 0 {
		t.Fatalf("load missed despite the prefetch (misses=%d)", loadMiss)
	}
}

// mustPipeline assembles src and builds a pipeline over it.
func mustPipeline(t *testing.T, src string, cfg Config) *Pipeline {
	t.Helper()
	prog, err := asmAssemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewMachineSource(sim.New(prog), 0)
	p, err := New(prog, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSourceErrorDrains(t *testing.T) {
	// A program that runs off the image ends the trace stream with an
	// error; the pipeline must drain what it has and stop.
	prog, err := asmAssemble(".proc main\n add r2, r2, #1\n nop\n.endp")
	if err != nil {
		t.Fatal(err)
	}
	src := sim.NewMachineSource(sim.New(prog), 0)
	p, err := New(prog, src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(100000)
	if err != nil {
		t.Fatalf("pipeline error: %v", err)
	}
	if src.Err() == nil {
		t.Fatal("source should report the runaway PC")
	}
	if res.Retired != 2 {
		t.Fatalf("retired %d of the 2 valid instructions", res.Retired)
	}
}

func TestRunForAndFinishMatchRun(t *testing.T) {
	prog := workload.Compress(30000)
	// Reference: one continuous run.
	src1 := sim.NewMachineSource(sim.New(prog), 0)
	p1, err := New(prog, src1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p1.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// Sliced: many small quanta must yield the identical result.
	src2 := sim.NewMachineSource(sim.New(prog), 0)
	p2, err := New(prog, src2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for !p2.RunFor(137) {
	}
	got := p2.Finish()
	if got.Cycles != ref.Cycles || got.Retired != ref.Retired ||
		got.Mispredicts != ref.Mispredicts || got.FetchedOffPath != ref.FetchedOffPath {
		t.Fatalf("sliced run diverged: %+v vs %+v", got, ref)
	}
}

func TestDeferredLoadSampleAtEndOfRun(t *testing.T) {
	// Loads with no consumers retire before their values land; samples on
	// them must still deliver as retired with the memory latency filled
	// in — including the final loads, whose values are still in flight
	// when the run ends (the finish-time drain). No sample may be
	// mislabeled TrapNeverDone.
	src := `
.proc main
    lda  r1, 60(zero)
    lda  r4, 0x300000(zero)
loop:
    ld   r2, 0(r4)
    add  r4, r4, #8192
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp`
	prog, err := asmAssemble(src)
	if err != nil {
		t.Fatal(err)
	}
	unit := core.MustNewUnit(core.Config{
		MeanInterval: 3, BufferDepth: 64, Window: 80,
		CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 2,
	})
	var loadSamples, withMemLat, neverDone int
	s := sim.NewMachineSource(sim.New(prog), 0)
	cfg := DefaultConfig()
	cfg.InterruptCost = 0
	p, err := New(prog, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.AttachProfileMe(unit, func(ss []core.Sample) {
		for _, smp := range ss {
			r := smp.First
			if r.Trap == core.TrapNeverDone {
				neverDone++
			}
			if in, ok := prog.At(r.PC); !ok || in.Op != isa.OpLd || !r.Retired() {
				continue
			}
			loadSamples++
			if lat, ok := r.MemLatency(); ok && lat >= 50 {
				withMemLat++
			}
		}
	})
	if _, err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if loadSamples == 0 {
		t.Fatal("no retired load samples")
	}
	if withMemLat == 0 {
		t.Fatal("no load sample carries its memory latency")
	}
	if neverDone != 0 {
		t.Fatalf("%d samples mislabeled never-done in a fully retiring program", neverDone)
	}
}
