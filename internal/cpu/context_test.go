package cpu

import (
	"context"
	"errors"
	"testing"
	"time"

	"profileme/internal/sim"
	"profileme/internal/workload"
)

// TestRunContextCanceledBeforeStart checks that an already-canceled
// context stops the run at the first poll with a typed, finalized result.
func TestRunContextCanceledBeforeStart(t *testing.T) {
	prog := workload.Compress(20000)
	pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := pipe.RunContext(ctx, 0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error not typed as ErrCanceled: %v", err)
	}
	// The first poll happens at cycle 0: nothing should have retired.
	if res.Retired != 0 {
		t.Fatalf("retired %d instructions under a pre-canceled context", res.Retired)
	}
}

// TestRunContextDeadlinePartialResult cancels mid-run and checks the
// partial result is finalized (cycles advanced, some retirement) and the
// error is typed.
func TestRunContextDeadlinePartialResult(t *testing.T) {
	prog := workload.Compress(400000)
	pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res, err := pipe.RunContext(ctx, 0)
	if err == nil {
		// The whole program finished inside the deadline; nothing to
		// assert about cancellation (machine too fast for this scale).
		t.Skip("run completed before the deadline fired")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error not typed as ErrCanceled: %v", err)
	}
	if res.Cycles == 0 {
		t.Fatal("result not finalized on cancellation")
	}
}

// TestRunContextBackgroundMatchesRun checks RunContext with a background
// context is exactly Run: same result on the same program and seeds.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	mk := func() *Pipeline {
		prog := workload.Compress(20000)
		pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return pipe
	}
	a, err := mk().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().RunContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Run and RunContext diverged:\n%+v\n%+v", a, b)
	}
}

// TestRunContextWatchdogStillFires checks the livelock watchdog composes
// with context cancellation: a watchdog trip under an un-canceled context
// still returns ErrLivelock, not ErrCanceled.
func TestRunContextWatchdogStillFires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 2
	prog := workload.Compress(5000)
	pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := pipe.RunContext(ctx, 0); !errors.Is(err, ErrLivelock) {
		t.Fatalf("watchdog error not ErrLivelock under a live context: %v", err)
	}
}
