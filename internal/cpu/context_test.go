package cpu

import (
	"context"
	"errors"
	"testing"
	"time"

	"profileme/internal/sim"
	"profileme/internal/workload"
)

// TestRunContextCanceledBeforeStart checks that an already-canceled
// context stops the run at the first poll with a typed, finalized result.
func TestRunContextCanceledBeforeStart(t *testing.T) {
	prog := workload.Compress(20000)
	pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := pipe.RunContext(ctx, 0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error not typed as ErrCanceled: %v", err)
	}
	// The first poll happens at cycle 0: nothing should have retired.
	if res.Retired != 0 {
		t.Fatalf("retired %d instructions under a pre-canceled context", res.Retired)
	}
}

// TestRunContextDeadlinePartialResult cancels mid-run and checks the
// partial result is finalized (cycles advanced, some retirement) and the
// error is typed.
func TestRunContextDeadlinePartialResult(t *testing.T) {
	prog := workload.Compress(400000)
	pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res, err := pipe.RunContext(ctx, 0)
	if err == nil {
		// The whole program finished inside the deadline; nothing to
		// assert about cancellation (machine too fast for this scale).
		t.Skip("run completed before the deadline fired")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error not typed as ErrCanceled: %v", err)
	}
	if res.Cycles == 0 {
		t.Fatal("result not finalized on cancellation")
	}
}

// TestRunContextCancellationLatency bounds how long a run keeps simulating
// after its context is canceled. The batched cycle driver polls the
// context every ctxCheckCycles cycles, so a cancellation arriving mid-run
// must stop the pipeline within two batches — ≤2048 cycles — no matter
// where in a batch it lands. The cancel fires synchronously from the
// retire hook, so the trigger cycle is exact.
func TestRunContextCancellationLatency(t *testing.T) {
	prog := workload.Compress(400000)
	pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelCycle := int64(-1)
	var retired uint64
	pipe.SetRetireHook(func(seq, pc uint64) {
		retired++
		if retired == 10_000 && cancelCycle < 0 {
			cancelCycle = pipe.Cycle()
			cancel()
		}
	})
	res, err := pipe.RunContext(ctx, 0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error not typed as ErrCanceled: %v", err)
	}
	if cancelCycle < 0 {
		t.Fatal("cancel never triggered")
	}
	if latency := res.Cycles - cancelCycle; latency < 0 || latency > 2048 {
		t.Fatalf("cancellation latency %d cycles (canceled at %d, stopped at %d), want ≤2048",
			latency, cancelCycle, res.Cycles)
	}
}

// TestRunContextBackgroundMatchesRun checks RunContext with a background
// context is exactly Run: same result on the same program and seeds.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	mk := func() *Pipeline {
		prog := workload.Compress(20000)
		pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return pipe
	}
	a, err := mk().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().RunContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Run and RunContext diverged:\n%+v\n%+v", a, b)
	}
}

// TestRunContextWatchdogStillFires checks the livelock watchdog composes
// with context cancellation: a watchdog trip under an un-canceled context
// still returns ErrLivelock, not ErrCanceled.
func TestRunContextWatchdogStillFires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogCycles = 2
	prog := workload.Compress(5000)
	pipe, err := New(prog, sim.NewMachineSource(sim.New(prog), 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := pipe.RunContext(ctx, 0); !errors.Is(err, ErrLivelock) {
		t.Fatalf("watchdog error not ErrLivelock under a live context: %v", err)
	}
}
