package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"profileme/internal/ingest"
)

// membershipEpoch reads the ring epoch off the membership endpoint.
func membershipEpoch(t *testing.T, frontURL string) uint64 {
	t.Helper()
	status, m := getJSON(t, frontURL+"/v1/membership")
	if status != http.StatusOK {
		t.Fatalf("membership: %d", status)
	}
	return uint64(m["epoch"].(float64))
}

// fleetCaptured reads Σ samples+lost off the router's stats rollup.
func fleetCaptured(t *testing.T, frontURL string) uint64 {
	t.Helper()
	status, m := getJSON(t, frontURL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	fleet := m["fleet"].(map[string]any)
	return uint64(fleet["samples"].(float64) + fleet["lost"].(float64))
}

// postJSON posts a JSON body and decodes the JSON answer.
func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST %s: undecodable response: %v", url, err)
	}
	return resp.StatusCode, m
}

// TestMembershipAddLive grows a live 3-instance tier to 4 while its data
// stays queryable, then proves the adoption sweep (not just the router's
// in-memory pins) carries the dedupe obligation: a FRESH router — no
// pins — over the grown tier must still answer 202+duplicate for every
// previously acknowledged shard.
func TestMembershipAddLive(t *testing.T) {
	instances, rt := newTier(t, 64, "c0", "c1", "c2")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const nShards = 24
	var wantCaptured uint64
	for i := 0; i < nShards; i++ {
		shard := fmt.Sprintf("grow/s%03d", i)
		db := synthShard(uint64(i)+1, 40+i)
		wantCaptured += db.Samples() + db.Lost()
		if got := submitVia(t, front.URL, shard, db); got.status != http.StatusAccepted || got.Duplicate {
			t.Fatalf("shard %s: status %d duplicate %v", shard, got.status, got.Duplicate)
		}
	}
	waitForMerge(t, instances, nShards)
	epoch0 := membershipEpoch(t, front.URL)

	// Scale out through the HTTP surface — no instance restarts.
	newcomer := newTierInstance(t, "c3", 64)
	status, rep := postJSON(t, front.URL+"/v1/membership/add",
		fmt.Sprintf(`{"id":"c3","url":%q}`, newcomer.ts.URL))
	if status != http.StatusOK {
		t.Fatalf("membership add: %d %v", status, rep)
	}
	if got := uint64(rep["epoch"].(float64)); got != epoch0+1 {
		t.Fatalf("post-add epoch %d, want %d", got, epoch0+1)
	}
	if moved := int(rep["shards_moved"].(float64)); moved == 0 {
		t.Fatal("no shard ownership moved on a 3->4 scale-out of 24 shards")
	}
	if adopted := int(rep["adopted"].(float64)); adopted == 0 {
		t.Fatal("scale-out adopted nothing at the newcomer")
	}
	if membershipEpoch(t, front.URL) != epoch0+1 {
		t.Fatal("membership endpoint does not reflect the committed epoch")
	}

	// Retries through the SAME router dedupe (pins + adoption).
	for i := 0; i < nShards; i++ {
		shard := fmt.Sprintf("grow/s%03d", i)
		got := submitVia(t, front.URL, shard, synthShard(uint64(i)+1, 40+i))
		if got.status != http.StatusAccepted || !got.Duplicate {
			t.Fatalf("shard %s retry after add: status %d duplicate %v, want 202 duplicate",
				shard, got.status, got.Duplicate)
		}
	}

	// The adoption proof: a restarted router loses every pin. Retries now
	// follow pure ring order — moved shards land on the newcomer, whose
	// adopted ledger must dedupe them.
	cfg := RouterConfig{FailureThreshold: 2, HedgeDelay: -1}
	for _, in := range instances {
		cfg.Instances = append(cfg.Instances, Instance{ID: in.id, BaseURL: in.ts.URL})
	}
	cfg.Instances = append(cfg.Instances, Instance{ID: "c3", BaseURL: newcomer.ts.URL})
	rt2, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front2 := httptest.NewServer(rt2.Handler())
	defer front2.Close()
	landedOnNewcomer := 0
	for i := 0; i < nShards; i++ {
		shard := fmt.Sprintf("grow/s%03d", i)
		got := submitVia(t, front2.URL, shard, synthShard(uint64(i)+1, 40+i))
		if got.status != http.StatusAccepted || !got.Duplicate {
			t.Fatalf("shard %s retry via pinless router: status %d duplicate %v — double-merge",
				shard, got.status, got.Duplicate)
		}
		if got.Instance == "c3" {
			landedOnNewcomer++
		}
	}
	if landedOnNewcomer == 0 {
		t.Fatal("pinless retries never routed to the newcomer; the adoption path went untested")
	}

	// Adoption moves obligations, not samples: conservation is unchanged.
	if got := fleetCaptured(t, front.URL); got != wantCaptured {
		t.Fatalf("fleet captured %d after scale-out, want %d", got, wantCaptured)
	}
}

// TestMembershipRemoveLive shrinks a live tier: the donor's whole
// aggregate and ledger migrate before the ring forgets it, retries of
// its shards dedupe at the receiver, and the conservation sum survives
// the move exactly.
func TestMembershipRemoveLive(t *testing.T) {
	instances, rt := newTier(t, 64, "c0", "c1", "c2")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const nShards = 18
	var wantCaptured uint64
	donorShards := map[string]bool{}
	for i := 0; i < nShards; i++ {
		shard := fmt.Sprintf("shrink/s%03d", i)
		db := synthShard(uint64(i)+7, 30+i)
		wantCaptured += db.Samples() + db.Lost()
		got := submitVia(t, front.URL, shard, db)
		if got.status != http.StatusAccepted {
			t.Fatalf("shard %s: status %d", shard, got.status)
		}
		if got.Instance == "c1" {
			donorShards[shard] = true
		}
	}
	waitForMerge(t, instances, nShards)
	if len(donorShards) == 0 {
		t.Fatal("donor c1 holds no shards; the migration would be vacuous")
	}
	epoch0 := membershipEpoch(t, front.URL)

	status, rep := postJSON(t, front.URL+"/v1/membership/remove", `{"id":"c1"}`)
	if status != http.StatusOK {
		t.Fatalf("membership remove: %d %v", status, rep)
	}
	if got := uint64(rep["epoch"].(float64)); got != epoch0+1 {
		t.Fatalf("post-remove epoch %d, want %d", got, epoch0+1)
	}
	receiver, _ := rep["receiver"].(string)
	if receiver == "" || receiver == "c1" {
		t.Fatalf("remove report names receiver %q", receiver)
	}
	if got := uint64(rep["captured_moved"].(float64)); got == 0 {
		t.Fatal("remove migrated zero captured samples from a donor that held shards")
	}
	var donor *tierInstance
	for _, in := range instances {
		if in.id == "c1" {
			donor = in
		}
	}
	if !donor.svc.HandedOff() {
		t.Fatal("donor not marked handed off after confirmed removal")
	}

	// Membership no longer lists the donor.
	_, mem := getJSON(t, front.URL+"/v1/membership")
	members := mem["instances"].(map[string]any)
	if _, ok := members["c1"]; ok || len(members) != 2 {
		t.Fatalf("membership after remove: %v", members)
	}

	// Every shard — donor-held or not — still dedupes on retry, and the
	// donor's shards answer from a live instance.
	for i := 0; i < nShards; i++ {
		shard := fmt.Sprintf("shrink/s%03d", i)
		got := submitVia(t, front.URL, shard, synthShard(uint64(i)+7, 30+i))
		if got.status != http.StatusAccepted || !got.Duplicate {
			t.Fatalf("shard %s retry after remove: status %d duplicate %v — the donor's ledger was lost",
				shard, got.status, got.Duplicate)
		}
		if got.Instance == "c1" {
			t.Fatalf("shard %s answered by the removed instance", shard)
		}
	}

	// The donor's books moved wholesale: the fleet rollup (which no
	// longer reaches c1) must still balance EXACTLY.
	if got := fleetCaptured(t, front.URL); got != wantCaptured {
		t.Fatalf("fleet captured %d after scale-in, want %d (migration lost or double-counted samples)", got, wantCaptured)
	}

	// And the tier keeps accepting new work.
	if got := submitVia(t, front.URL, "shrink/after", synthShard(99, 20)); got.status != http.StatusAccepted || got.Duplicate {
		t.Fatalf("fresh submit after scale-in: status %d duplicate %v", got.status, got.Duplicate)
	}

	// Pinless-router proof for scale-in: handoff ledger + adoption cover
	// dedupe without the original router's memory.
	cfg := RouterConfig{FailureThreshold: 2, HedgeDelay: -1}
	for _, in := range instances {
		if in.id == "c1" {
			continue
		}
		cfg.Instances = append(cfg.Instances, Instance{ID: in.id, BaseURL: in.ts.URL})
	}
	rt2, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front2 := httptest.NewServer(rt2.Handler())
	defer front2.Close()
	for i := 0; i < nShards; i++ {
		shard := fmt.Sprintf("shrink/s%03d", i)
		got := submitVia(t, front2.URL, shard, synthShard(uint64(i)+7, 30+i))
		if got.status != http.StatusAccepted || !got.Duplicate {
			t.Fatalf("shard %s retry via pinless router after remove: status %d duplicate %v",
				shard, got.status, got.Duplicate)
		}
	}
}

// TestWrongOwnerEpoch: a client that cached a /v1/resolve answer sends
// its epoch with the submit; after a membership change that epoch is
// stale and the router answers the typed wrong-owner 409 carrying the
// current epoch, which un-sticks the client.
func TestWrongOwnerEpoch(t *testing.T) {
	_, rt := newTier(t, 16, "c0", "c1")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	if got := submitVia(t, front.URL, "epoch/s1", synthShard(1, 10)); got.status != http.StatusAccepted {
		t.Fatalf("seed submit: %d", got.status)
	}
	status, res := getJSON(t, front.URL+"/v1/resolve?shard=epoch/s1")
	if status != http.StatusOK {
		t.Fatalf("resolve: %d", status)
	}
	epoch := uint64(res["epoch"].(float64))
	if res["instance"].(string) == "" || res["url"].(string) == "" {
		t.Fatalf("resolve answer incomplete: %v", res)
	}
	if pinned, _ := res["pinned"].(bool); !pinned {
		t.Fatal("resolve of an acknowledged shard did not prefer the pinned placement")
	}

	submitWithEpoch := func(epochHdr string) (int, map[string]any) {
		body, err := ingest.EncodeSubmit("epoch/s1", synthShard(1, 10))
		if err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/submit", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Ring-Epoch", epochHdr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}
	if st, m := submitWithEpoch(strconv.FormatUint(epoch, 10)); st != http.StatusAccepted {
		t.Fatalf("submit with current epoch: %d %v", st, m)
	}

	// Membership change bumps the epoch; the cached one now draws a 409.
	newcomer := newTierInstance(t, "c2", 16)
	if st, rep := postJSON(t, front.URL+"/v1/membership/add",
		fmt.Sprintf(`{"id":"c2","url":%q}`, newcomer.ts.URL)); st != http.StatusOK {
		t.Fatalf("add: %d %v", st, rep)
	}
	st, m := submitWithEpoch(strconv.FormatUint(epoch, 10))
	if st != http.StatusConflict {
		t.Fatalf("stale-epoch submit: status %d, want 409", st)
	}
	if m["kind"] != "wrong-owner" {
		t.Fatalf("409 kind %v, want wrong-owner", m["kind"])
	}
	cur := uint64(m["epoch"].(float64))
	if cur != epoch+1 {
		t.Fatalf("409 carries epoch %d, want current %d", cur, epoch+1)
	}
	if rt.Stats().WrongOwnerConflicts == 0 {
		t.Fatal("wrong-owner conflict not counted")
	}
	// Re-resolving with the carried epoch un-sticks the client.
	if st, _ := submitWithEpoch(strconv.FormatUint(cur, 10)); st != http.StatusAccepted {
		t.Fatalf("submit with refreshed epoch: %d", st)
	}
}

// TestMembershipGuards: removing a non-member or the last instance is
// refused, and re-adding a known id is a URL refresh, not a migration.
func TestMembershipGuards(t *testing.T) {
	instances, rt := newTier(t, 16, "c0")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	if st, _ := postJSON(t, front.URL+"/v1/membership/remove", `{"id":"ghost"}`); st != http.StatusServiceUnavailable {
		t.Fatalf("remove of non-member: %d, want 503", st)
	}
	if st, _ := postJSON(t, front.URL+"/v1/membership/remove", `{"id":"c0"}`); st != http.StatusServiceUnavailable {
		t.Fatalf("remove of last instance: %d, want 503", st)
	}
	epoch0 := membershipEpoch(t, front.URL)
	if st, _ := postJSON(t, front.URL+"/v1/membership/add",
		fmt.Sprintf(`{"id":"c0","url":%q}`, instances[0].ts.URL)); st != http.StatusOK {
		t.Fatalf("re-add of known id: %d, want 200", st)
	}
	if got := membershipEpoch(t, front.URL); got != epoch0 {
		t.Fatalf("URL refresh bumped the epoch %d -> %d", epoch0, got)
	}
}

// TestGatherClientDisconnect (S1): a client that hangs up mid-query must
// cancel the in-flight fan-out legs AND must not get the slow instance
// marked Down — one impatient client must never degrade the tier.
func TestGatherClientDisconnect(t *testing.T) {
	real := newTierInstance(t, "fast", 16)
	canceled := make(chan struct{}, 8)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			canceled <- struct{}{}
		case <-time.After(10 * time.Second):
		}
	}))
	defer slow.Close()

	rt, err := NewRouter(RouterConfig{
		Instances: []Instance{
			{ID: "fast", BaseURL: real.ts.URL},
			{ID: "slow", BaseURL: slow.URL},
		},
		FailureThreshold: 1, // one charged failure would mark it Down
		HedgeDelay:       -1,
		QueryDeadline:    8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, front.URL+"/v1/stats", nil)
		_, rerr := http.DefaultClient.Do(req)
		cancel()
		if rerr == nil {
			t.Fatal("stats answered before the slow leg; the disconnect never raced the gather")
		}
		// The per-leg context derives from the request context: the slow
		// instance must observe the cancellation promptly, not sit out the
		// full query deadline.
		select {
		case <-canceled:
		case <-time.After(3 * time.Second):
			t.Fatal("slow leg not canceled by client disconnect")
		}
	}
	if st := rt.health.get("slow"); st == StateDown {
		t.Fatal("client disconnect marked the slow instance Down")
	}
	// A real straggler (no client disconnect) still gets charged: the
	// health machinery itself is intact.
	rt.health.reportFailure("slow")
	if st := rt.health.get("slow"); st != StateDown {
		t.Fatalf("control: direct failure left state %v, want Down (threshold 1)", st)
	}
}

// TestMembershipChurnNoLeak (S2): repeated add/remove cycles must leave
// no goroutines behind and no orphaned health entries — the probe loop
// must track exactly the current membership.
func TestMembershipChurnNoLeak(t *testing.T) {
	instances, rt := newTier(t, 32, "c0", "c1")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	for i := range instances {
		if got := submitVia(t, front.URL, fmt.Sprintf("churn/base%d", i), synthShard(uint64(i)+1, 10)); got.status != http.StatusAccepted {
			t.Fatalf("seed submit: %d", got.status)
		}
	}

	runtime.GC()
	baseline := runtime.NumGoroutine()
	const cycles = 4
	for i := 0; i < cycles; i++ {
		id := fmt.Sprintf("churn-%d", i)
		in := newTierInstance(t, id, 32)
		if st, rep := postJSON(t, front.URL+"/v1/membership/add",
			fmt.Sprintf(`{"id":%q,"url":%q}`, id, in.ts.URL)); st != http.StatusOK {
			t.Fatalf("cycle %d add: %d %v", i, st, rep)
		}
		if st, rep := postJSON(t, front.URL+"/v1/membership/remove",
			fmt.Sprintf(`{"id":%q}`, id)); st != http.StatusOK {
			t.Fatalf("cycle %d remove: %d %v", i, st, rep)
		}
		in.ts.Close() // the process is retired; its server goes away now, not at test end
	}

	// Health tracks exactly the surviving membership; a probe sweep does
	// not resurrect any removed instance.
	rt.Probe(context.Background())
	tracked := rt.health.tracked()
	want := map[string]bool{"c0": true, "c1": true}
	if len(tracked) != len(want) {
		t.Fatalf("health tracks %v, want exactly c0 and c1", tracked)
	}
	for _, id := range tracked {
		if !want[id] {
			t.Fatalf("health still tracks removed instance %q", id)
		}
	}

	// Goroutine bound: everything the cycles spawned must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > baseline %d+8 after churn\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The tier still balances: base shards retried dedupe.
	for i := range instances {
		got := submitVia(t, front.URL, fmt.Sprintf("churn/base%d", i), synthShard(uint64(i)+1, 10))
		if got.status != http.StatusAccepted || !got.Duplicate {
			t.Fatalf("base shard retry after churn: %d duplicate %v", got.status, got.Duplicate)
		}
	}
}

// TestMembershipSubmitRaceProperty is the seeded-schedule property test:
// submissions race live scale-out AND scale-in, and whatever the
// interleaving, no acknowledged shard is ever lost (the fleet's books
// sum to exactly the distinct captured total) and no retry ever
// double-merges (every retry answers duplicate).
func TestMembershipSubmitRaceProperty(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, rt := newTier(t, 256, "c0", "c1", "c2")
			front := httptest.NewServer(rt.Handler())
			defer front.Close()

			const nShards = 32
			shardName := func(i int) string { return fmt.Sprintf("race/%d/s%03d", seed, i) }
			shardDB := func(i int) uint64 { return seed*1000 + uint64(i) }
			var wantCaptured uint64
			for i := 0; i < nShards; i++ {
				db := synthShard(shardDB(i), 20+i)
				wantCaptured += db.Samples() + db.Lost()
			}

			var wg sync.WaitGroup
			errs := make(chan error, 4)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < nShards; i++ {
					shard := shardName(i)
					// Submit then immediately retry: the retry must dedupe
					// whatever migration is mid-flight.
					first := submitVia(t, front.URL, shard, synthShard(shardDB(i), 20+i))
					if first.status != http.StatusAccepted || first.Duplicate {
						errs <- fmt.Errorf("shard %s: first submit status %d duplicate %v",
							shard, first.status, first.Duplicate)
						return
					}
					retry := submitVia(t, front.URL, shard, synthShard(shardDB(i), 20+i))
					if retry.status != http.StatusAccepted || !retry.Duplicate {
						errs <- fmt.Errorf("shard %s: retry status %d duplicate %v — double-merge window",
							shard, retry.status, retry.Duplicate)
						return
					}
				}
			}()

			// Membership schedule, interleaved with the writer by seeded
			// jitter: grow by one, then shrink by one.
			jitter := time.Duration(seed%5) * 7 * time.Millisecond
			time.Sleep(jitter)
			grownID := fmt.Sprintf("cx-%d", seed)
			grown := newTierInstance(t, grownID, 256)
			if st, rep := postJSON(t, front.URL+"/v1/membership/add",
				fmt.Sprintf(`{"id":%q,"url":%q}`, grownID, grown.ts.URL)); st != http.StatusOK {
				t.Fatalf("add mid-flood: %d %v", st, rep)
			}
			time.Sleep(jitter)
			victim := []string{"c0", "c1", "c2"}[seed%3]
			if st, rep := postJSON(t, front.URL+"/v1/membership/remove",
				fmt.Sprintf(`{"id":%q}`, victim)); st != http.StatusOK {
				t.Fatalf("remove mid-flood: %d %v", st, rep)
			}

			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			_ = rt

			// Conservation must converge EXACTLY once queues flush: the
			// books moved with the migration, nothing was lost or doubled.
			deadline := time.Now().Add(10 * time.Second)
			for {
				got := fleetCaptured(t, front.URL)
				if got == wantCaptured {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("fleet captured %d, want exactly %d (seed %d)", got, wantCaptured, seed)
				}
				time.Sleep(10 * time.Millisecond)
			}

			// And every shard still dedupes after the dust settles.
			for i := 0; i < nShards; i++ {
				got := submitVia(t, front.URL, shardName(i), synthShard(shardDB(i), 20+i))
				if got.status != http.StatusAccepted || !got.Duplicate {
					t.Fatalf("shard %s post-churn retry: %d duplicate %v (seed %d)",
						shardName(i), got.status, got.Duplicate, seed)
				}
			}
		})
	}
}
