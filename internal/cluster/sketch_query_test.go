package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
)

// TestRouterSketchQueryMerge pins the fleet sketch contract: the router
// scatter-gathers per-instance sketch answers and merges them so that
// (a) exact counters still obey conservation (fleet samples = Σ shard
// samples), (b) the merged answer declares "approx" with a fleet
// error_bound equal to the sum of instance floors, (c) windowed queries
// pass through and aggregate, and (d) malformed parameters come back as
// typed 400s from the router itself.
func TestRouterSketchQueryMerge(t *testing.T) {
	instances, rt := newTier(t, 16, "c0", "c1", "c2")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const shards, per = 12, 40
	for i := 0; i < shards; i++ {
		res := submitVia(t, front.URL, shardName(i), synthShard(uint64(i), per))
		if res.status != 202 {
			t.Fatalf("submit %d: %+v", i, res)
		}
	}
	for _, in := range instances {
		if err := in.svc.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// Default (sketch) path: conservation + approx annotation.
	status, body := getJSON(t, front.URL+"/v1/hotpcs?n=10")
	if status != 200 {
		t.Fatalf("hotpcs: %d %v", status, body)
	}
	if got := body["samples"].(float64); got != shards*per {
		t.Fatalf("fleet samples = %v, want %d", got, shards*per)
	}
	if body["approx"] != true {
		t.Fatalf("sketch answer not marked approx: %v", body["approx"])
	}
	// Few distinct PCs (< K) on every instance: floors are 0, so the
	// fleet bound is 0 and the answer is exact despite approx=true.
	if eb := body["error_bound"].(float64); eb != 0 {
		t.Fatalf("error_bound = %v, want 0 for under-capacity sketches", eb)
	}
	rows := body["pcs"].([]any)
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}

	// The exact path must agree row-for-row on this small tier.
	_, exact := getJSON(t, front.URL+"/v1/hotpcs?n=10&sketch=false")
	exRows := exact["pcs"].([]any)
	for i := range rows {
		s, e := rows[i].(map[string]any), exRows[i].(map[string]any)
		if s["pc"] != e["pc"] || s["samples"] != e["samples"] {
			t.Fatalf("row %d: sketch %v vs exact %v", i, s, e)
		}
	}
	if exact["approx"] != false {
		t.Fatalf("exact answer marked approx: %v", exact["approx"])
	}

	// Windowed: all merges happened seconds ago, so a generous window
	// covers every sample; the fleet window_samples is the exact total.
	_, win := getJSON(t, front.URL+"/v1/hotpcs?n=10&window=50s")
	if win["approx"] != true {
		t.Fatalf("windowed answer not approx: %v", win)
	}
	if ws := win["window_samples"].(float64); ws != shards*per {
		t.Fatalf("window_samples = %v, want %d", ws, shards*per)
	}

	// Estimate passthrough: the hottest PC answers with approx and sums.
	hottest := rows[0].(map[string]any)["pc"].(string)
	_, est := getJSON(t, front.URL+"/v1/estimate?pc="+hottest)
	if est["approx"] != true {
		t.Fatalf("estimate not served from sketch view: %v", est)
	}
	wantSamples := rows[0].(map[string]any)["samples"].(float64)
	if est["samples"].(float64) != wantSamples {
		t.Fatalf("estimate samples %v != hotpcs row %v", est["samples"], wantSamples)
	}

	// Router-side parameter taxonomy: malformed values are typed 400s.
	for _, q := range []string{"/v1/hotpcs?n=abc", "/v1/hotpcs?n=0", "/v1/hotpcs?window=soon"} {
		status, body := getJSON(t, front.URL+q)
		if status != 400 {
			t.Fatalf("GET %s = %d, want 400 (%v)", q, status, body)
		}
		if body["kind"] != "param" {
			t.Fatalf("GET %s kind = %v, want param", q, body["kind"])
		}
	}
}
