package cluster

import (
	"context"
	"net/http"
	"sync"
)

// InstanceState is the router's view of one collector instance.
type InstanceState int

const (
	// StateHealthy: the instance answers and admits work.
	StateHealthy InstanceState = iota
	// StateDraining: the instance answered 503 draining — it still
	// serves queries for a grace period but refuses new submissions, so
	// the router fails submissions over to its ring successor.
	StateDraining
	// StateDown: consecutive transport failures crossed the threshold —
	// the instance gets no traffic until a probe or success revives it.
	StateDown
)

// String returns the wire spelling of the state.
func (s InstanceState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// health tracks per-instance state from both passive signals (request
// outcomes) and active /readyz probes. All methods are safe for
// concurrent use.
type health struct {
	mu        sync.Mutex
	threshold int // consecutive failures that mark an instance Down
	state     map[string]InstanceState
	fails     map[string]int
}

func newHealth(threshold int, instances []string) *health {
	if threshold < 1 {
		threshold = 3
	}
	h := &health{
		threshold: threshold,
		state:     make(map[string]InstanceState, len(instances)),
		fails:     make(map[string]int, len(instances)),
	}
	for _, id := range instances {
		h.state[id] = StateHealthy
	}
	return h
}

// ensure registers an instance id (Healthy) if it is not yet tracked —
// membership adds call this so the passive report guards below accept
// the new instance's signals.
func (h *health) ensure(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.state[id]; !ok {
		h.state[id] = StateHealthy
		h.fails[id] = 0
	}
}

// forget drops an instance's health history entirely. Called on
// membership removal so the probe loop and passive reports stop
// tracking it — without this, every removed instance would leak a
// state/fails entry forever and in-flight request legs finishing after
// the removal would resurrect it as a ghost.
func (h *health) forget(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.state, id)
	delete(h.fails, id)
}

// reportSuccess clears failure history and revives a Down/Draining
// instance: any successful exchange proves it is back. Signals for
// untracked ids (an instance removed while its request was in flight)
// are dropped rather than resurrecting the entry.
func (h *health) reportSuccess(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.state[id]; !ok {
		return
	}
	h.fails[id] = 0
	h.state[id] = StateHealthy
}

// reportFailure counts one transport failure; crossing the threshold
// marks the instance Down. Returns the resulting state (StateDown for
// untracked ids: a removed instance takes no traffic).
func (h *health) reportFailure(id string) InstanceState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.state[id]; !ok {
		return StateDown
	}
	h.fails[id]++
	if h.fails[id] >= h.threshold {
		h.state[id] = StateDown
	}
	return h.state[id]
}

// reportDraining marks an instance draining (it said so itself with a
// 503 draining refusal, or its /readyz flipped).
func (h *health) reportDraining(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.state[id]; !ok {
		return
	}
	h.state[id] = StateDraining
	h.fails[id] = 0
}

// tracked returns the ids currently under health tracking (the
// goroutine-leak test audits this against membership).
func (h *health) tracked() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.state))
	for id := range h.state {
		out = append(out, id)
	}
	return out
}

// get returns the instance's current state (Healthy for unknown ids).
func (h *health) get(id string) InstanceState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state[id]
}

// snapshot returns a copy of every instance's state.
func (h *health) snapshot() map[string]InstanceState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]InstanceState, len(h.state))
	for id, st := range h.state {
		out[id] = st
	}
	return out
}

// Probe actively refreshes every instance's health from its /readyz:
// 200 revives, 503 with a draining body marks draining, transport
// failure counts toward Down. The router's daemon runs this on a timer;
// tests call it directly after killing or reviving an instance.
func (rt *Router) Probe(ctx context.Context) {
	for id, base := range rt.instanceURLs() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if rt.health.reportFailure(id) == StateDown {
				rt.logf("probe: instance %s down (%v)", id, err)
			}
			continue
		}
		kind := drainKind(resp)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			rt.health.reportSuccess(id)
		case kind == "draining":
			rt.health.reportDraining(id)
			rt.logf("probe: instance %s draining", id)
		case kind == "wal-stalled":
			// A stalled WAL means every 202 would block on a sick disk:
			// treat like draining — steer new submissions to the ring
			// successor while the instance still serves queries and dedupes.
			rt.health.reportDraining(id)
			rt.logf("probe: instance %s degraded (WAL stalled)", id)
		default:
			// Not ready for another reason (e.g. breaker open): the
			// instance still serves queries and dedupes submissions, so
			// leave routing alone rather than guessing.
		}
	}
}
