package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"profileme/internal/ingest"
)

// HandoffResult reports where a drain handoff landed.
type HandoffResult struct {
	// Instance is the receiver's id.
	Instance string
	// Captured is the captured-sample total the receiver acknowledged.
	Captured uint64
}

// SendHandoff ships one encoded handoff body to a receiver's
// /v1/handoff. A 202 succeeds; 503 means the receiver is itself
// retiring (the caller should walk to the next successor); anything
// else is an error with the receiver's typed body folded in.
func SendHandoff(ctx context.Context, client *http.Client, baseURL string, body []byte) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/handoff", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		json.Unmarshal(raw, &e)
		return 0, fmt.Errorf("handoff refused: %d %s (%s)", resp.StatusCode, e.Kind, e.Error)
	}
	var ack struct {
		Captured uint64 `json:"captured"`
	}
	if err := json.Unmarshal(raw, &ack); err != nil {
		return 0, fmt.Errorf("handoff ack unparseable: %w", err)
	}
	return ack.Captured, nil
}

// DrainHandoff runs the clustered half of a graceful drain for a fully
// Flushed service: serialize the aggregate and admission ledger once,
// then walk the ring from this instance's successor until a peer
// accepts. On success the service is marked handed off (so the daemon
// skips the final checkpoint — the samples now live, exactly once, at
// the receiver). Peers that refuse or are unreachable are skipped; if
// every peer refuses, an error comes back and the caller falls back to
// local durability (FinalCheckpoint).
//
// The walk happens AFTER the flush and after the HTTP server stopped
// admitting, so every sample and every loss this instance ever recorded
// is inside the serialized envelope — nothing can land between
// serialization and shutdown and silently vanish from the fleet sum.
func DrainHandoff(ctx context.Context, svc *ingest.Service, client *http.Client, self string, peers map[string]string, vnodes int, seed uint64, log io.Writer) (HandoffResult, error) {
	ring := NewRing(vnodes, seed)
	ring.Add(self)
	for id := range peers {
		ring.Add(id)
	}
	succ, ok := ring.Successor(self)
	if !ok {
		return HandoffResult{}, fmt.Errorf("cluster: no ring successor for %s", self)
	}
	body, err := ingest.EncodeHandoff(self, svc.Aggregate().Save, svc.AdmittedShards())
	if err != nil {
		return HandoffResult{}, fmt.Errorf("cluster: encode handoff: %w", err)
	}
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, "cluster["+self+"]: "+format+"\n", args...)
		}
	}
	// Walk the true ring successor first — it inherits most of the
	// drainer's key space — then the remaining peers as fallbacks.
	walk := []string{succ}
	for _, id := range ring.Instances() {
		if id != self && id != succ {
			walk = append(walk, id)
		}
	}
	var lastErr error
	for _, id := range walk {
		base := peers[id]
		if base == "" {
			continue
		}
		captured, err := SendHandoff(ctx, client, base, body)
		if err != nil {
			lastErr = err
			logf("handoff to %s failed: %v", id, err)
			continue
		}
		svc.MarkHandedOff()
		logf("handoff to %s accepted: %d captured samples migrated", id, captured)
		return HandoffResult{Instance: id, Captured: captured}, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no reachable peer")
	}
	return HandoffResult{}, fmt.Errorf("cluster: drain handoff from %s failed: %w", self, lastErr)
}
