package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Elastic membership: the router grows and shrinks the collector tier
// without restarting any instance, while submits and queries keep
// flowing. The safety argument rests on three mechanisms that already
// guard the steady state, composed rather than reinvented:
//
//   - ledger adoption (/v1/ledger/adopt): a moved shard's dedupe
//     obligation is installed at its NEW ring owner before the ring
//     commits, so a client retry that follows the new placement answers
//     202+duplicate instead of double-merging;
//   - placement pins: a shard acknowledged at instance X is retried at X
//     first whatever the ring says, covering the fetch-to-commit window
//     where a shard was admitted at the old owner after the adoption
//     sweep read its ledger;
//   - the handoff envelope (PR 6/7): a scale-in ships the donor's whole
//     aggregate + ledger to one receiver, WAL-durable there before the
//     donor quarantines its own books, deduped by content digest against
//     redelivery.
//
// Both operations are serialized (memMu) and crash-safe by idempotence:
// every step before the ring commit can be re-run — adoption skips
// already-admitted ids, export returns the cached byte-identical
// envelope, handoff delivery dedupes by digest, confirm is a no-op the
// second time. A membership call that failed mid-way is simply retried;
// the ring (and thus the epoch clients see) changes only at the end.
type MigrationReport struct {
	// Kind is "add" or "remove"; Instance the subject id.
	Kind     string `json:"kind"`
	Instance string `json:"instance"`
	// Receiver is where a removed donor's aggregate landed (remove only).
	Receiver string `json:"receiver,omitempty"`
	// ShardsMoved counts shard ids whose ring ownership changed;
	// Adopted counts adoption acks actually installed (≤ ShardsMoved:
	// ids already admitted at their new owner are skipped).
	ShardsMoved int `json:"shards_moved"`
	Adopted     int `json:"adopted"`
	// CapturedMoved is the captured-sample total the receiver
	// acknowledged for a removed donor's aggregate.
	CapturedMoved uint64 `json:"captured_moved,omitempty"`
	// Epoch is the ring epoch after the commit.
	Epoch uint64 `json:"epoch"`
}

// MigrationStatus is the /v1/stats "migration" section: what the
// membership engine is doing right now and what it last did.
type MigrationStatus struct {
	Active   bool   `json:"active"`
	Kind     string `json:"kind,omitempty"`
	Instance string `json:"instance,omitempty"`
	// Phase walks export → deliver → adopt → confirm → commit on removal
	// and adopt → commit → sweep on addition; "" when idle.
	Phase     string `json:"phase,omitempty"`
	Completed uint64 `json:"completed"`
	// LastError is the most recent failed operation's error ("" after a
	// success); the operation is retryable — see OPERATIONS.md.
	LastError string `json:"last_error,omitempty"`
}

// migration is the router's mutable migration-progress state.
type migration struct {
	mu        sync.Mutex
	status    MigrationStatus
	completed uint64
}

func (m *migration) begin(kind, instance string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.status = MigrationStatus{Active: true, Kind: kind, Instance: instance, Completed: m.completed}
}

func (m *migration) phase(p string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.status.Phase = p
}

func (m *migration) end(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.status.Active = false
	m.status.Phase = ""
	if err != nil {
		m.status.LastError = err.Error()
	} else {
		m.status.LastError = ""
		m.completed++
	}
	m.status.Completed = m.completed
}

func (m *migration) snapshot() MigrationStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.status
}

// AddInstance grows the tier by one instance without restarting
// anything. Sequence:
//
//  1. compute the would-be ring and the shard ids that move to the new
//     instance (every current instance's admitted ledger is consulted);
//  2. adopt those ids at the new instance (WAL-durable there) while the
//     OLD ring still routes — the new instance takes no traffic yet;
//  3. commit the ring (epoch bump): submits now route to the new owner,
//     queries fan to everyone, and retries of moved shards dedupe
//     against the adopted ledger;
//  4. one post-commit sweep re-reads the donors' ledgers and adopts
//     anything admitted during the fetch-to-commit window (placement
//     pins already cover those shards' retries; the sweep makes the
//     dedupe survive a router restart that loses the pins).
//
// Re-registering a known id just updates its URL (a replaced process).
func (rt *Router) AddInstance(ctx context.Context, id, baseURL string) (*MigrationReport, error) {
	if id == "" || baseURL == "" {
		return nil, errors.New("cluster: add needs an instance id and url")
	}
	rt.memMu.Lock()
	defer rt.memMu.Unlock()
	if rt.ring.has(id) {
		rt.SetInstance(id, baseURL)
		return &MigrationReport{Kind: "add", Instance: id, Epoch: rt.ring.epoch()}, nil
	}
	rt.migration.begin("add", id)
	rep, err := rt.addInstanceLocked(ctx, id, baseURL)
	rt.migration.end(err)
	return rep, err
}

func (rt *Router) addInstanceLocked(ctx context.Context, id, baseURL string) (*MigrationReport, error) {
	oldRing := rt.ring.clone()
	newRing := oldRing.Clone()
	newRing.Add(id)
	// Register the URL early so adoption can reach the newcomer; it is
	// not in the ring yet, so no submit or query routes to it.
	rt.urlMu.Lock()
	rt.urls[id] = baseURL
	rt.urlMu.Unlock()
	rep := &MigrationReport{Kind: "add", Instance: id}

	rt.migration.phase("adopt")
	moved, adopted, err := rt.adoptMoved(ctx, oldRing, newRing, oldRing.Instances())
	if err != nil {
		// Nothing committed: drop the URL again and let the operator
		// retry (adoption already installed is idempotent on re-run).
		rt.urlMu.Lock()
		delete(rt.urls, id)
		rt.urlMu.Unlock()
		return nil, fmt.Errorf("cluster: add %s: %w", id, err)
	}
	rep.ShardsMoved, rep.Adopted = moved, adopted

	rt.migration.phase("commit")
	rt.ring.mu.Lock()
	rt.ring.r.Add(id)
	rep.Epoch = rt.ring.r.Epoch()
	rt.ring.mu.Unlock()
	rt.health.ensure(id)
	rt.logf("membership: added %s at %s (epoch %d, %d shard ids adopted)", id, baseURL, rep.Epoch, adopted)

	// Post-commit sweep for the fetch-to-commit window. Failure here is
	// logged, not fatal: the pins cover those shards' retries, and the
	// next membership operation (or a manual adopt) closes the gap.
	rt.migration.phase("sweep")
	if _, n, err := rt.adoptMoved(ctx, oldRing, newRing, oldRing.Instances()); err != nil {
		rt.logf("membership: post-commit adoption sweep for %s failed: %v (retries stay safe via placement pins)", id, err)
	} else if n > 0 {
		rep.Adopted += n
		rt.logf("membership: post-commit sweep adopted %d more shard ids for %s", n, id)
	}
	return rep, nil
}

// adoptMoved reads each donor's admitted ledger, computes the shard ids
// whose owner differs between the two rings, and installs each moved
// id's dedupe obligation at its NEW owner. Returns (moved, adopted):
// ids whose ownership changed, and adoption acks actually installed.
func (rt *Router) adoptMoved(ctx context.Context, oldRing, newRing *Ring, donors []string) (moved, adopted int, err error) {
	for _, donor := range donors {
		base := rt.urlOf(donor)
		if base == "" {
			return moved, adopted, fmt.Errorf("no URL for instance %s", donor)
		}
		admitted, err := rt.fetchAdmitted(ctx, base)
		if err != nil {
			return moved, adopted, fmt.Errorf("read ledger of %s: %w", donor, err)
		}
		shards := make([]string, 0, len(admitted))
		for sh := range admitted {
			shards = append(shards, sh)
		}
		sort.Strings(shards)
		byOwner := make(map[string][]string)
		for sh, owner := range MovedKeys(oldRing, newRing, shards) {
			// Only ids this donor actually holds move FROM it; a shard in
			// its ledger by adoption keeps its original provenance at the
			// new owner regardless — dedupe is what matters, not lineage.
			byOwner[owner] = append(byOwner[owner], sh)
		}
		for owner, batch := range byOwner {
			sort.Strings(batch)
			moved += len(batch)
			n, err := rt.postAdopt(ctx, owner, donor, batch)
			if err != nil {
				return moved, adopted, fmt.Errorf("adopt %d ids at %s: %w", len(batch), owner, err)
			}
			adopted += n
		}
	}
	return moved, adopted, nil
}

// postAdopt installs a batch of shard ids at an instance's adoption
// endpoint and returns how many were newly adopted there.
func (rt *Router) postAdopt(ctx context.Context, ownerID, from string, shards []string) (int, error) {
	base := rt.urlOf(ownerID)
	if base == "" {
		return 0, fmt.Errorf("no URL for instance %s", ownerID)
	}
	body, err := json.Marshal(map[string]any{"from": from, "shards": shards})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.SubmitDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/ledger/adopt", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("adopt at %s answered %d: %s", ownerID, resp.StatusCode, raw)
	}
	var ack struct {
		Adopted int `json:"adopted"`
	}
	if err := json.Unmarshal(raw, &ack); err != nil {
		return 0, fmt.Errorf("adopt ack unparseable: %w", err)
	}
	return ack.Adopted, nil
}

// RemoveInstance shrinks the tier by one instance, migrating its whole
// aggregate and ledger before the ring forgets it. Sequence:
//
//  1. mark the donor draining (new submits steer to successors; pinned
//     shards still reach its ledger for dedupe) and POST its
//     /v1/handoff/export — the donor seals, flushes, and returns its
//     serialized aggregate + ledger (cached, byte-identical on retry);
//  2. deliver the envelope along the post-removal ring order until a
//     receiver's /v1/handoff acks it WAL-durably (redelivery after a
//     lost ack dedupes by content digest);
//  3. adopt the donor's shard ids at their NEW ring owners (those not
//     already covered by the receiver's handoff ledger), so retries
//     following the new placement dedupe wherever they land;
//  4. POST the donor's /v1/handoff/confirm — it marks handed off and
//     quarantines its WAL (a restart over it would double-count);
//  5. commit: remove from the ring (epoch bump), forget URL and health,
//     repoint the donor's placement pins at the receiver.
//
// An unreachable donor refuses the removal: its books cannot be
// exported, and silently dropping them would break the conservation
// sum. The disaster path (dead disk, no export possible) is witness
// anti-entropy, not membership — see OPERATIONS.md.
func (rt *Router) RemoveInstance(ctx context.Context, id string) (*MigrationReport, error) {
	rt.memMu.Lock()
	defer rt.memMu.Unlock()
	if !rt.ring.has(id) {
		return nil, fmt.Errorf("cluster: remove %s: not a member", id)
	}
	if rt.ring.size() <= 1 {
		return nil, errors.New("cluster: refusing to remove the last instance")
	}
	rt.migration.begin("remove", id)
	rep, err := rt.removeInstanceLocked(ctx, id)
	rt.migration.end(err)
	return rep, err
}

func (rt *Router) removeInstanceLocked(ctx context.Context, id string) (*MigrationReport, error) {
	base := rt.urlOf(id)
	if base == "" {
		return nil, fmt.Errorf("cluster: remove %s: no URL", id)
	}
	oldRing := rt.ring.clone()
	newRing := oldRing.Clone()
	newRing.Remove(id)
	rep := &MigrationReport{Kind: "remove", Instance: id}

	rt.migration.phase("export")
	rt.health.reportDraining(id)
	envelope, err := rt.exportHandoff(ctx, base)
	if err != nil {
		return nil, fmt.Errorf("cluster: remove %s: export: %w (donor unchanged, retry or restart it to roll back)", id, err)
	}
	var env struct {
		Shards []string `json:"shards"`
	}
	if err := json.Unmarshal(envelope, &env); err != nil {
		return nil, fmt.Errorf("cluster: remove %s: export envelope unparseable: %w", id, err)
	}
	rep.ShardsMoved = len(env.Shards)

	// Deliver along the post-removal ring order: the new owner of the
	// donor's key range first, then the rest as fallbacks. The SAME
	// bytes are sent to every candidate and on every retry — that is
	// the receiver-side dedupe contract.
	rt.migration.phase("deliver")
	var receiver string
	var lastErr error
	for _, cand := range newRing.Successors(id, newRing.Size()) {
		candBase := rt.urlOf(cand)
		if candBase == "" {
			continue
		}
		captured, err := SendHandoff(ctx, rt.client, candBase, envelope)
		if err != nil {
			lastErr = err
			rt.logf("membership: handoff of %s to %s failed: %v", id, cand, err)
			continue
		}
		receiver, rep.Receiver, rep.CapturedMoved = cand, cand, captured
		break
	}
	if receiver == "" {
		if lastErr == nil {
			lastErr = errors.New("no reachable receiver")
		}
		return nil, fmt.Errorf("cluster: remove %s: deliver: %w (donor sealed; retry, or restart the donor to roll back)", id, lastErr)
	}

	// The receiver's handoff installed every donor shard in ITS ledger;
	// ids whose new ring owner is a different instance need adoption
	// there too, or a retry following the new placement would re-merge.
	rt.migration.phase("adopt")
	byOwner := make(map[string][]string)
	for _, sh := range env.Shards {
		owner, ok := newRing.Owner(sh)
		if !ok || owner == receiver {
			continue
		}
		byOwner[owner] = append(byOwner[owner], sh)
	}
	for owner, batch := range byOwner {
		sort.Strings(batch)
		n, err := rt.postAdopt(ctx, owner, id, batch)
		if err != nil {
			return nil, fmt.Errorf("cluster: remove %s: adopt at %s: %w (retry the removal; every step so far is idempotent)", id, owner, err)
		}
		rep.Adopted += n
	}

	rt.migration.phase("confirm")
	if err := rt.confirmHandoff(ctx, base); err != nil {
		return nil, fmt.Errorf("cluster: remove %s: confirm: %w (retry the removal; delivery and adoption dedupe)", id, err)
	}

	rt.migration.phase("commit")
	rt.ring.mu.Lock()
	rt.ring.r.Remove(id)
	rep.Epoch = rt.ring.r.Epoch()
	rt.ring.mu.Unlock()
	rt.urlMu.Lock()
	delete(rt.urls, id)
	rt.urlMu.Unlock()
	rt.health.forget(id)
	// Repoint the donor's pins at the receiver: it holds the donor's
	// ledger (and samples), so retries of donor-acknowledged shards keep
	// deduping without a 503 detour through a dead URL.
	rt.placedMu.Lock()
	repointed := 0
	for sh, inst := range rt.placed {
		if inst == id {
			rt.placed[sh] = receiver
			repointed++
		}
	}
	rt.placedMu.Unlock()
	rt.logf("membership: removed %s (epoch %d): %d captured samples migrated to %s, %d shard ids moved (%d adopted elsewhere, %d pins repointed)",
		id, rep.Epoch, rep.CapturedMoved, receiver, rep.ShardsMoved, rep.Adopted, repointed)
	return rep, nil
}

// exportHandoff POSTs a donor's export endpoint and returns the
// serialized envelope bytes (byte-identical across retries).
func (rt *Router) exportHandoff(ctx context.Context, base string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/handoff/export", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// A handoff envelope is a whole aggregate: bound generously (the
	// receiving side's MaxHandoffBytes is the real limit).
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("export answered %d: %s", resp.StatusCode, firstN(raw, 256))
	}
	return raw, nil
}

// confirmHandoff POSTs a donor's confirm endpoint (idempotent).
func (rt *Router) confirmHandoff(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/handoff/confirm", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("confirm answered %d: %s", resp.StatusCode, firstN(raw, 256))
	}
	return nil
}

func firstN(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// ---- membership HTTP surface ----

// handleMembership serves the current membership view: epoch, each
// member's URL and health state, and migration progress.
func (rt *Router) handleMembership(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.writeErr(w, http.StatusMethodNotAllowed, "method", "GET only", nil)
		return
	}
	states := rt.health.snapshot()
	members := make(map[string]map[string]any)
	for id, base := range rt.instanceURLs() {
		members[id] = map[string]any{"url": base, "state": states[id].String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":     rt.ring.epoch(),
		"instances": members,
		"migration": rt.migration.snapshot(),
	})
}

// handleMembershipAdd: POST {"id": "c5", "url": "http://..."} runs
// AddInstance and returns its report.
func (rt *Router) handleMembershipAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only", nil)
		return
	}
	var req struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		rt.writeErr(w, http.StatusBadRequest, "malformed", err.Error(), nil)
		return
	}
	rep, err := rt.AddInstance(r.Context(), req.ID, req.URL)
	if err != nil {
		rt.writeErr(w, http.StatusServiceUnavailable, "migration-failed", err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleMembershipRemove: POST {"id": "c2"} runs RemoveInstance and
// returns its report.
func (rt *Router) handleMembershipRemove(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only", nil)
		return
	}
	var req struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		rt.writeErr(w, http.StatusBadRequest, "malformed", err.Error(), nil)
		return
	}
	rep, err := rt.RemoveInstance(r.Context(), req.ID)
	if err != nil {
		rt.writeErr(w, http.StatusServiceUnavailable, "migration-failed", err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleResolve answers where a shard's submission would be routed right
// now: the pinned placement when one exists (the ledger that can dedupe
// a retry), otherwise the ring owner — plus the epoch, so a client can
// cache the answer and detect staleness via the wrong-owner 409.
func (rt *Router) handleResolve(w http.ResponseWriter, r *http.Request) {
	shard := r.URL.Query().Get("shard")
	if shard == "" {
		rt.writeErr(w, http.StatusBadRequest, "param", "shard parameter required", nil)
		return
	}
	owner, ok := rt.ring.owner(shard)
	if !ok {
		rt.writeErr(w, http.StatusServiceUnavailable, "no-instances", "ring is empty", nil)
		return
	}
	resp := map[string]any{
		"shard": shard,
		"epoch": rt.ring.epoch(),
	}
	if pinned := rt.placedInstance(shard); pinned != "" && rt.urlOf(pinned) != "" {
		resp["instance"] = pinned
		resp["url"] = rt.urlOf(pinned)
		resp["pinned"] = true
		resp["ring_owner"] = owner
	} else {
		resp["instance"] = owner
		resp["url"] = rt.urlOf(owner)
	}
	writeJSON(w, http.StatusOK, resp)
}
