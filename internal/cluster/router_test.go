package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"profileme/internal/core"
	"profileme/internal/ingest"
	"profileme/internal/profile"
	"profileme/internal/server"
)

// tierInstance is one in-process collector: a real ingest service behind
// the real HTTP layer, the exact stack cmd/pmsimd runs.
type tierInstance struct {
	id  string
	svc *ingest.Service
	ts  *httptest.Server
}

func newTierInstance(t *testing.T, id string, queueDepth int) *tierInstance {
	t.Helper()
	svc, err := ingest.NewService(ingest.Config{
		QueueDepth: queueDepth,
		Interval:   16,
		Width:      4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(server.New(server.Config{Instance: id}, svc).Handler())
	t.Cleanup(ts.Close)
	return &tierInstance{id: id, svc: svc, ts: ts}
}

func newTier(t *testing.T, queueDepth int, ids ...string) ([]*tierInstance, *Router) {
	t.Helper()
	instances := make([]*tierInstance, len(ids))
	cfg := RouterConfig{FailureThreshold: 2, HedgeDelay: -1}
	for i, id := range ids {
		instances[i] = newTierInstance(t, id, queueDepth)
		cfg.Instances = append(cfg.Instances, Instance{ID: id, BaseURL: instances[i].ts.URL})
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return instances, rt
}

// synthShard builds a deterministic tier-compatible shard (interval 16,
// width 4) with samples over a small skewed PC population.
func synthShard(seed uint64, samples int) *profile.DB {
	db := profile.NewDB(16, 0, 4)
	for i := 0; i < samples; i++ {
		// Quadratic skew: low PCs dominate, so hot-PC rankings are stable.
		slot := (seed + uint64(i)*7) % 64
		pc := 0x400 + 8*(slot*slot%64)
		r := core.Record{PC: pc, LoadComplete: -1}
		for j := range r.StageCycle {
			r.StageCycle[j] = -1
		}
		r.StageCycle[core.StageFetch] = int64(i)
		r.StageCycle[core.StageRetire] = int64(i + 9)
		r.Events = core.EvRetired
		db.Add(core.Sample{First: r})
	}
	return db
}

// submitResp is the router's augmented submission response.
type submitResp struct {
	status    int
	Shard     string   `json:"shard"`
	Duplicate bool     `json:"duplicate"`
	Instance  string   `json:"instance"`
	RefusedBy []string `json:"refused_by"`
}

func submitVia(t *testing.T, url, shard string, db *profile.DB) submitResp {
	t.Helper()
	body, err := ingest.EncodeSubmit(shard, db)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit %s: %v", shard, err)
	}
	defer resp.Body.Close()
	out := submitResp{status: resp.StatusCode}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("submit %s: undecodable response: %v", shard, err)
	}
	return out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: undecodable response: %v", url, err)
	}
	return resp.StatusCode, m
}

// TestRouterPlacementDedupConservation: shards route to their ring
// owner, a retry after a lost 202 dedupes at the SAME instance, and the
// tier total equals the sum of distinct shards' captured samples.
func TestRouterPlacementDedupConservation(t *testing.T) {
	instances, rt := newTier(t, 64, "c0", "c1", "c2")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const nShards = 12
	var wantCaptured uint64
	placed := make(map[string]string, nShards)
	for i := 0; i < nShards; i++ {
		shard := fmt.Sprintf("synth/s%03d", i)
		db := synthShard(uint64(i)+1, 50+i)
		wantCaptured += db.Samples() + db.Lost()
		got := submitVia(t, front.URL, shard, db)
		if got.status != http.StatusAccepted {
			t.Fatalf("shard %s: status %d", shard, got.status)
		}
		if got.Duplicate {
			t.Fatalf("shard %s: fresh submission marked duplicate", shard)
		}
		if got.Instance == "" {
			t.Fatal("202 without routing provenance")
		}
		placed[shard] = got.Instance

		// The client's retry after a lost 202: same shard again must hit
		// the same admission ledger and dedupe.
		again := submitVia(t, front.URL, shard, db)
		if again.status != http.StatusAccepted || !again.Duplicate {
			t.Fatalf("shard %s retry: status %d duplicate %v, want 202 duplicate",
				shard, again.status, again.Duplicate)
		}
		if again.Instance != got.Instance {
			t.Fatalf("shard %s retry routed to %s, originally %s — ledger split across instances",
				shard, again.Instance, got.Instance)
		}
	}

	// Placement matches the ring the router derives its own decisions
	// from AND is spread (with 12 shards on 3 instances, each should see
	// at least one).
	byInstance := map[string]int{}
	for _, id := range placed {
		byInstance[id]++
	}
	if len(byInstance) != 3 {
		t.Fatalf("12 shards landed on %d instances: %v", len(byInstance), byInstance)
	}

	// Let every queue flush, then check tier conservation through the
	// router's own stats rollup.
	waitForMerge(t, instances, nShards)
	status, stats := getJSON(t, front.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	fleet := stats["fleet"].(map[string]any)
	if got := uint64(fleet["samples"].(float64) + fleet["lost"].(float64)); got != wantCaptured {
		t.Fatalf("fleet samples+lost %d, distinct shards captured %d", got, wantCaptured)
	}
	if stats["partial"].(bool) {
		t.Fatal("healthy tier served a partial stats rollup")
	}
}

func waitForMerge(t *testing.T, instances []*tierInstance, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		total := 0
		for _, in := range instances {
			total += int(in.svc.Stats().Merged)
		}
		if total >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d shards merged before deadline", total, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRouterFailoverOnDraining: a draining owner 503-refuses (recording
// the shard's captured samples as loss there); the router fails over
// along the ring, the shard merges at the successor, and the response
// names both — the refusal loss plus the merged samples is exactly how
// the fleet-wide invariant counts a failover.
func TestRouterFailoverOnDraining(t *testing.T) {
	instances, rt := newTier(t, 64, "c0", "c1", "c2")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	byID := map[string]*tierInstance{}
	for _, in := range instances {
		byID[in.id] = in
	}

	// Find a shard owned by c1 (the instance we will drain).
	ring := NewRing(0, 0)
	for _, in := range instances {
		ring.Add(in.id)
	}
	shard := ""
	for i := 0; ; i++ {
		s := fmt.Sprintf("fail/s%03d", i)
		if owner, _ := ring.Owner(s); owner == "c1" {
			shard = s
			break
		}
	}
	byID["c1"].svc.BeginDrain()

	db := synthShard(99, 80)
	captured := db.Samples() + db.Lost()
	got := submitVia(t, front.URL, shard, db)
	if got.status != http.StatusAccepted {
		t.Fatalf("failover submission: status %d", got.status)
	}
	if got.Instance == "c1" {
		t.Fatal("shard merged at the draining owner")
	}
	if len(got.RefusedBy) != 1 || got.RefusedBy[0] != "c1" {
		t.Fatalf("refused_by %v, want [c1]", got.RefusedBy)
	}

	// The refusal was loss-accounted at c1, the merge landed at the
	// survivor: the (c1, shard) and (survivor, shard) pairs BOTH count.
	if lost := byID["c1"].svc.Stats().SamplesLost; lost != captured {
		t.Fatalf("drainer's loss ledger %d, want the shard's %d captured samples", lost, captured)
	}
	waitForMerge(t, instances, 1)
	if got := byID[got.Instance].svc.Stats().Samples; got != captured {
		t.Fatalf("survivor aggregate %d samples, want %d", got, captured)
	}

	// The router now knows c1 is draining; an unpinned NEW shard owned by
	// c1 skips it entirely (no second refusal recorded).
	shard2 := ""
	for i := 1000; ; i++ {
		s := fmt.Sprintf("fail/s%03d", i)
		if owner, _ := ring.Owner(s); owner == "c1" {
			shard2 = s
			break
		}
	}
	before := byID["c1"].svc.Stats().OverloadRejected
	got2 := submitVia(t, front.URL, shard2, synthShard(100, 40))
	if got2.status != http.StatusAccepted || got2.Instance == "c1" {
		t.Fatalf("post-drain submission: status %d instance %s", got2.status, got2.Instance)
	}
	if len(got2.RefusedBy) != 0 {
		t.Fatalf("known-draining instance was asked again: refused_by %v", got2.RefusedBy)
	}
	if after := byID["c1"].svc.Stats().OverloadRejected; after != before {
		t.Fatal("router still sent new submissions to a known-draining instance")
	}
}

// TestRouterPartialDegradationAndRecovery: queries against a tier with a
// dead instance degrade to explicit partials ("partial": true +
// instances-missing) instead of failing, and a revived instance rejoins
// after a probe.
func TestRouterPartialDegradationAndRecovery(t *testing.T) {
	instances, rt := newTier(t, 64, "c0", "c1", "c2")
	rt.cfg.QueryDeadline = 500 * time.Millisecond
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for i := 0; i < 6; i++ {
		got := submitVia(t, front.URL, fmt.Sprintf("part/s%03d", i), synthShard(uint64(i)+1, 30))
		if got.status != http.StatusAccepted {
			t.Fatalf("seed shard %d: %d", i, got.status)
		}
	}
	waitForMerge(t, instances, 6)

	status, resp := getJSON(t, front.URL+"/v1/hotpcs?n=10")
	if status != http.StatusOK || resp["partial"].(bool) {
		t.Fatalf("healthy tier: status %d partial %v", status, resp["partial"])
	}

	// SIGKILL c2 (its listener dies mid-tier). The very next queries must
	// still answer 200 — with the degradation made explicit.
	killed := instances[2]
	killedSamples := killed.svc.Stats().Samples
	killed.ts.Close()

	status, resp = getJSON(t, front.URL+"/v1/hotpcs?n=10")
	if status != http.StatusOK {
		t.Fatalf("hotpcs with a dead instance: status %d, want 200 partial", status)
	}
	if !resp["partial"].(bool) {
		t.Fatal("dead instance but partial=false")
	}
	if n := int(resp["instances_missing"].(float64)); n != 1 {
		t.Fatalf("instances_missing %d, want 1", n)
	}

	// Stats rollup mirrors it, and the fleet sum excludes the dead
	// instance's samples (they are gone — that is the point of making
	// partial explicit rather than guessing).
	_, stats := getJSON(t, front.URL+"/v1/stats")
	if !stats["partial"].(bool) {
		t.Fatal("stats rollup not marked partial")
	}
	live := instances[0].svc.Stats().Samples + instances[1].svc.Stats().Samples
	fleet := stats["fleet"].(map[string]any)
	if got := uint64(fleet["samples"].(float64)); got != live {
		t.Fatalf("fleet rollup %d samples, live instances hold %d (dead held %d)", got, live, killedSamples)
	}

	// The router is still ready (degraded beats dead) and reports who is
	// down after a probe.
	rt.Probe(context.Background())
	rt.Probe(context.Background()) // threshold 2
	status, ready := getJSON(t, front.URL+"/readyz")
	if status != http.StatusOK {
		t.Fatalf("readyz: %d", status)
	}
	if st := ready["instances"].(map[string]any)["c2"]; st != "down" {
		t.Fatalf("c2 state %v after probes, want down", st)
	}

	// Recovery: a replacement process for c2 comes up at a NEW address;
	// re-registering the id keeps its ring position and the next probe
	// revives it.
	replacement := newTierInstance(t, "c2", 64)
	rt.SetInstance("c2", replacement.ts.URL)
	rt.Probe(context.Background())
	status, resp = getJSON(t, front.URL+"/v1/hotpcs?n=10")
	if status != http.StatusOK || resp["partial"].(bool) {
		t.Fatalf("after recovery: status %d partial %v, want 200 full", status, resp["partial"])
	}
}

// TestRouterHedgedStraggler: a straggling instance is hedged — the
// duplicate request races it and the scatter-gather completes without
// waiting the full deadline or losing the leg.
func TestRouterHedgedStraggler(t *testing.T) {
	// One real instance plus one deliberately-straggling front: the first
	// request to it stalls (well past the hedge delay), the hedged
	// duplicate answers immediately.
	slow := newTierInstance(t, "c0", 64)
	var mu sync.Mutex
	stalled := false
	straggler := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		first := !stalled
		stalled = true
		mu.Unlock()
		if first {
			time.Sleep(2 * time.Second)
		}
		// Proxy to the real instance so the payload is well-formed.
		resp, err := http.Get(slow.ts.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer straggler.Close()

	rt, err := NewRouter(RouterConfig{
		Instances:     []Instance{{ID: "c0", BaseURL: straggler.URL}},
		QueryDeadline: 5 * time.Second,
		HedgeDelay:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	start := time.Now()
	status, resp := getJSON(t, front.URL+"/v1/hotpcs?n=5")
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("hedged query: status %d", status)
	}
	if resp["partial"].(bool) {
		t.Fatal("hedged query degraded to partial")
	}
	if elapsed > time.Second {
		t.Fatalf("hedge did not race the straggler: query took %v", elapsed)
	}
	st := rt.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge counters %+v, want a fired and won hedge", st)
	}
}

// TestRouterHandoffLedgerDedup: a drained instance's aggregate AND
// admission ledger migrate to the ring successor; a client retry of a
// donor-merged shard dedupes at the successor instead of double-merging,
// and the migrated samples conserve exactly.
func TestRouterHandoffLedgerDedup(t *testing.T) {
	instances, rt := newTier(t, 64, "c0", "c1", "c2")
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	byID := map[string]*tierInstance{}
	peers := map[string]string{}
	for _, in := range instances {
		byID[in.id] = in
		peers[in.id] = in.ts.URL
	}

	// Land one shard on each instance (walk ids until each owner shows
	// up), remembering c0's shard for the post-handoff retry.
	ring := NewRing(0, 0)
	for _, in := range instances {
		ring.Add(in.id)
	}
	shardOf := map[string]string{}
	for i := 0; len(shardOf) < 3; i++ {
		s := fmt.Sprintf("hand/s%03d", i)
		owner, _ := ring.Owner(s)
		if shardOf[owner] != "" {
			continue
		}
		shardOf[owner] = s
		got := submitVia(t, front.URL, s, synthShard(uint64(i)+1, 40))
		if got.status != http.StatusAccepted || got.Instance != owner {
			t.Fatalf("shard %s: status %d instance %s, want 202 at %s", s, got.status, got.Instance, owner)
		}
	}
	waitForMerge(t, instances, 3)

	// Graceful drain of c0: flush, then hand the aggregate to the ring
	// successor, exactly the daemon's SIGTERM sequence.
	donor := byID["c0"]
	donorStats := donor.svc.Stats()
	wantMigrated := donorStats.Samples + donorStats.Lost
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := donor.svc.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	delete(peers, "c0")
	res, err := DrainHandoff(ctx, donor.svc, nil, "c0", peers, 0, 0, nil)
	if err != nil {
		t.Fatalf("drain handoff: %v", err)
	}
	wantSucc, _ := ring.Successor("c0")
	if res.Instance != wantSucc {
		t.Fatalf("handoff landed on %s, ring successor is %s", res.Instance, wantSucc)
	}
	if res.Captured != wantMigrated {
		t.Fatalf("handoff ack %d captured, donor held %d — drain lost samples", res.Captured, wantMigrated)
	}
	if !donor.svc.HandedOff() {
		t.Fatal("donor not marked handed off")
	}
	donor.ts.Close() // the daemon exits after a successful handoff

	// The successor carries the migrated samples and the donor's ledger
	// with provenance.
	succ := byID[res.Instance]
	if got := succ.svc.Stats().HandoffsIn; got != 1 {
		t.Fatalf("successor handoffs_in %d, want 1", got)
	}
	if from := succ.svc.HandoffProvenance(shardOf["c0"]); from != "c0" {
		t.Fatalf("shard %s provenance %q at successor, want c0", shardOf["c0"], from)
	}

	// A client retry of the donor-merged shard (its 202 was lost) now
	// goes through the router: the pinned instance is gone, the ring owner
	// refuses nothing — the successor's inherited ledger answers
	// "duplicate" rather than merging the shard a second time.
	succBefore := succ.svc.Stats()
	deadline := time.Now().Add(10 * time.Second)
	var retry submitResp
	for {
		retry = submitVia(t, front.URL, shardOf["c0"], synthShard(1, 40))
		if retry.status == http.StatusAccepted || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if retry.status != http.StatusAccepted || !retry.Duplicate {
		t.Fatalf("post-handoff retry: status %d duplicate %v, want 202 duplicate", retry.status, retry.Duplicate)
	}
	if retry.Instance != res.Instance {
		t.Fatalf("post-handoff retry deduped at %s, ledger lives at %s", retry.Instance, res.Instance)
	}
	succAfter := succ.svc.Stats()
	if succAfter.Samples != succBefore.Samples || succAfter.Merged != succBefore.Merged {
		t.Fatal("post-handoff retry re-merged the donor's shard")
	}

	// A second drain on the successor must refuse a handoff if IT is
	// draining (the donor walks on) — here just the service-level refusal.
	succ.svc.BeginDrain()
	if _, err := succ.svc.AcceptHandoff(ingest.Handoff{From: "cX", DB: synthShard(5, 10)}); err == nil {
		t.Fatal("draining successor accepted a handoff")
	}
}
