package cluster

import (
	"fmt"
	"testing"
)

// shardKeys synthesizes a campaign-shaped key population: benchmarks ×
// shards, the ids the tier actually places.
func shardKeys(n int) []string {
	keys := make([]string, 0, n)
	benches := []string{"compress", "matmul", "pointer-chase", "branchy"}
	for i := 0; len(keys) < n; i++ {
		keys = append(keys, fmt.Sprintf("%s/s%03d", benches[i%len(benches)], i))
	}
	return keys
}

func buildRing(vnodes int, seed uint64, instances ...string) *Ring {
	r := NewRing(vnodes, seed)
	for _, id := range instances {
		r.Add(id)
	}
	return r
}

// TestRingDeterministicPlacement: the ring is a pure function of (seed,
// vnodes, instance set). Insertion order must not matter — a restarted
// router re-derives the identical layout, so a retried shard lands on
// the same owner it did before the restart.
func TestRingDeterministicPlacement(t *testing.T) {
	keys := shardKeys(2000)
	orders := [][]string{
		{"c0", "c1", "c2", "c3", "c4"},
		{"c4", "c2", "c0", "c3", "c1"},
		{"c3", "c4", "c1", "c0", "c2"},
	}
	var want []string
	for oi, order := range orders {
		r := buildRing(0, 7, order...)
		got := make([]string, len(keys))
		for i, k := range keys {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatalf("order %d: no owner for %s", oi, k)
			}
			got[i] = owner
		}
		if want == nil {
			want = got
			continue
		}
		for i := range keys {
			if got[i] != want[i] {
				t.Fatalf("placement depends on insertion order: key %s owned by %s (order 0) vs %s (order %d)",
					keys[i], want[i], got[i], oi)
			}
		}
	}

	// A different seed is a different (still valid) layout — the seed is
	// the deployment's layout knob, not noise.
	other := buildRing(0, 8, orders[0]...)
	diff := 0
	for _, k := range keys {
		a, _ := buildRing(0, 7, orders[0]...).Owner(k)
		b, _ := other.Owner(k)
		if a != b {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed has no effect on the virtual-node layout")
	}
}

// TestRingRebalanceBound is the satellite property test: adding or
// removing one instance moves at most (1/N + ε) of the shard ids, where
// N is the larger membership, and the keys that move on removal are
// exactly the removed instance's.
func TestRingRebalanceBound(t *testing.T) {
	const (
		numKeys = 10_000
		epsilon = 0.06 // virtual-node variance allowance at 128 vnodes
	)
	keys := shardKeys(numKeys)

	for _, n := range []int{2, 3, 5, 8} {
		instances := make([]string, n)
		for i := range instances {
			instances[i] = fmt.Sprintf("c%d", i)
		}
		before := buildRing(0, 42, instances...)
		owners := make(map[string]string, numKeys)
		for _, k := range keys {
			owners[k], _ = before.Owner(k)
		}

		// Add one instance: at most (1/(N+1) + ε) of keys move, and every
		// key that moves, moves TO the newcomer (consistent hashing's whole
		// point — no unrelated churn).
		added := buildRing(0, 42, instances...)
		added.Add("cNEW")
		moved := 0
		for _, k := range keys {
			now, _ := added.Owner(k)
			if now != owners[k] {
				moved++
				if now != "cNEW" {
					t.Fatalf("N=%d add: key %s moved %s -> %s, not to the new instance", n, k, owners[k], now)
				}
			}
		}
		bound := (1.0/float64(n+1) + epsilon) * numKeys
		if float64(moved) > bound {
			t.Fatalf("N=%d add: %d/%d keys moved, bound %.0f", n, moved, numKeys, bound)
		}
		if moved == 0 {
			t.Fatalf("N=%d add: new instance received no keys", n)
		}

		// Remove one instance: only ITS keys move, and they are at most
		// (1/N + ε) of the population.
		removed := buildRing(0, 42, instances...)
		removed.Remove(instances[n-1])
		moved = 0
		for _, k := range keys {
			now, _ := removed.Owner(k)
			if now != owners[k] {
				moved++
				if owners[k] != instances[n-1] {
					t.Fatalf("N=%d remove: key %s moved %s -> %s though its owner stayed", n, k, owners[k], now)
				}
			}
			if now == instances[n-1] {
				t.Fatalf("N=%d remove: key %s still owned by removed instance", n, k)
			}
		}
		bound = (1.0/float64(n) + epsilon) * numKeys
		if float64(moved) > bound {
			t.Fatalf("N=%d remove: %d/%d keys moved, bound %.0f", n, moved, numKeys, bound)
		}
	}
}

// TestRingSuccessors: the failover candidate list starts at the owner,
// is distinct, and covers the membership.
func TestRingSuccessors(t *testing.T) {
	r := buildRing(0, 1, "c0", "c1", "c2")
	for _, k := range shardKeys(200) {
		owner, _ := r.Owner(k)
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("key %s: %d successors, want 3", k, len(succ))
		}
		if succ[0] != owner {
			t.Fatalf("key %s: successors start at %s, owner is %s", k, succ[0], owner)
		}
		seen := map[string]bool{}
		for _, id := range succ {
			if seen[id] {
				t.Fatalf("key %s: duplicate successor %s", k, id)
			}
			seen[id] = true
		}
	}
	if got := r.Successors("any", 10); len(got) != 3 {
		t.Fatalf("successors beyond membership: %d, want clamped to 3", len(got))
	}
}

// TestRingSuccessor: the drain-handoff recipient is deterministic, never
// the drainer itself, and absent on a singleton ring.
func TestRingSuccessor(t *testing.T) {
	r := buildRing(0, 3, "c0", "c1", "c2")
	for _, id := range r.Instances() {
		succ, ok := r.Successor(id)
		if !ok {
			t.Fatalf("no successor for %s", id)
		}
		if succ == id {
			t.Fatalf("instance %s is its own successor", id)
		}
		again, _ := r.Successor(id)
		if again != succ {
			t.Fatalf("successor of %s not deterministic: %s vs %s", id, succ, again)
		}
	}
	solo := buildRing(0, 3, "c0")
	if _, ok := solo.Successor("c0"); ok {
		t.Fatal("singleton ring produced a successor")
	}
	if _, ok := r.Successor("stranger"); ok {
		t.Fatal("non-member produced a successor")
	}
}
