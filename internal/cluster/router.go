package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Instance names one collector in the tier.
type Instance struct {
	// ID is the stable ring identity ("c0"); placement hashes it, so it
	// must survive restarts (the URL may change, the ID must not).
	ID string
	// BaseURL is the instance's HTTP root, e.g. "http://10.0.0.7:7070".
	BaseURL string
}

// RouterConfig parameterizes the tier frontend. Zero values get usable
// defaults.
type RouterConfig struct {
	// Instances is the initial tier membership (at least one).
	Instances []Instance
	// VNodes is the virtual-node count per instance (DefaultVNodes).
	VNodes int
	// Seed perturbs the virtual-node layout; the same seed re-derives
	// the same ring after a router restart.
	Seed uint64
	// QueryDeadline bounds each per-instance query leg (default 2s) —
	// the scatter-gather never waits longer than this for a straggler.
	QueryDeadline time.Duration
	// HedgeDelay is how long a query leg may lag before a hedged
	// duplicate request races it (default 250ms; the first response
	// wins). 0 uses the default; negative disables hedging.
	HedgeDelay time.Duration
	// SubmitDeadline bounds one submission proxy attempt (default 15s).
	SubmitDeadline time.Duration
	// FailureThreshold consecutive transport failures mark an instance
	// Down (default 3).
	FailureThreshold int
	// MaxBodyBytes bounds a proxied submission body (default 8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the hint on 429/503 responses (default 1s).
	RetryAfter time.Duration
	// Witness enables witness replication: every acknowledged
	// submission is forwarded to the ring successor of the acknowledging
	// instance as a witness copy, and AntiEntropy can rebuild an
	// instance that lost its disk (see witness.go).
	Witness bool
	// WitnessSync makes witness forwarding synchronous (the 202 to the
	// client waits for the witness holder's 202). Tests use this for
	// determinism; production leaves it false — witness copies are
	// best-effort redundancy behind the WAL.
	WitnessSync bool
	// Client is the outbound HTTP client (default: 30s timeout).
	Client *http.Client
	// Log receives degradation lines (nil = silent). Writes are
	// serialized by the router's own mutex and carry the instance id
	// they concern, so concurrent soak output stays attributable.
	Log io.Writer
	// Capture, when set, receives every well-formed submission (shard
	// id + verbatim body) before placement — the tier's offered load,
	// whatever individual instances went on to answer. Must be fast and
	// must not panic (traffic.CaptureWriter satisfies both).
	Capture func(shard string, body []byte)
}

func (c *RouterConfig) normalize() error {
	if len(c.Instances) == 0 {
		return errors.New("cluster: router needs at least one instance")
	}
	seen := make(map[string]bool, len(c.Instances))
	for _, in := range c.Instances {
		if in.ID == "" || in.BaseURL == "" {
			return fmt.Errorf("cluster: instance needs id and url (got id=%q url=%q)", in.ID, in.BaseURL)
		}
		if seen[in.ID] {
			return fmt.Errorf("cluster: duplicate instance id %q", in.ID)
		}
		seen[in.ID] = true
	}
	if c.QueryDeadline == 0 {
		c.QueryDeadline = 2 * time.Second
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 250 * time.Millisecond
	}
	if c.SubmitDeadline == 0 {
		c.SubmitDeadline = 15 * time.Second
	}
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 3
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return nil
}

// Router is the tier frontend: it places submissions on their owning
// instance (failing over along the ring when the owner is down or
// draining) and answers queries by scatter-gathering every reachable
// instance, degrading to explicit partial results instead of
// all-or-nothing 504s.
type Router struct {
	cfg    RouterConfig
	ring   *lockedRing
	health *health
	client *http.Client

	urlMu sync.Mutex
	urls  map[string]string // instance id -> base URL

	// placed pins a shard to the instance that acknowledged it, so a
	// client retry after a lost 202 goes back to the same ledger and
	// dedupes instead of double-merging on a different instance after a
	// health flap. Memory grows with distinct shard ids, like the
	// per-instance admission ledger it protects.
	placedMu sync.Mutex
	placed   map[string]string

	// memMu serializes membership operations (AddInstance /
	// RemoveInstance) end to end; migration is their progress state,
	// surfaced under /v1/stats and /v1/membership.
	memMu     sync.Mutex
	migration migration

	logMu sync.Mutex

	witnessWG sync.WaitGroup // in-flight async witness forwards

	submits          atomic.Uint64
	submitRetries    atomic.Uint64
	wrongOwner       atomic.Uint64
	failovers        atomic.Uint64
	hedges           atomic.Uint64
	hedgeWins        atomic.Uint64
	partialsServed   atomic.Uint64
	legsFailed       atomic.Uint64
	witnessSent      atomic.Uint64
	witnessFailed    atomic.Uint64
	antiEntropyRuns  atomic.Uint64
	antiEntropyResub atomic.Uint64
}

// NewRouter builds the tier frontend over the configured instances.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ring := NewRing(cfg.VNodes, cfg.Seed)
	urls := make(map[string]string, len(cfg.Instances))
	ids := make([]string, 0, len(cfg.Instances))
	for _, in := range cfg.Instances {
		ring.Add(in.ID)
		urls[in.ID] = in.BaseURL
		ids = append(ids, in.ID)
	}
	return &Router{
		cfg:    cfg,
		ring:   &lockedRing{r: ring},
		health: newHealth(cfg.FailureThreshold, ids),
		client: cfg.Client,
		urls:   urls,
		placed: make(map[string]string),
	}, nil
}

// SetInstance registers (or re-registers) an instance: a replacement
// process for a known id keeps its ring position but may live at a new
// URL. The instance starts Healthy; the next probe or request corrects
// that if it is wrong.
func (rt *Router) SetInstance(id, baseURL string) {
	rt.urlMu.Lock()
	rt.urls[id] = baseURL
	rt.urlMu.Unlock()
	rt.ring.mu.Lock()
	rt.ring.r.Add(id)
	rt.ring.mu.Unlock()
	rt.health.ensure(id)
	rt.health.reportSuccess(id)
}

func (rt *Router) instanceURLs() map[string]string {
	rt.urlMu.Lock()
	defer rt.urlMu.Unlock()
	out := make(map[string]string, len(rt.urls))
	for id, u := range rt.urls {
		out[id] = u
	}
	return out
}

func (rt *Router) urlOf(id string) string {
	rt.urlMu.Lock()
	defer rt.urlMu.Unlock()
	return rt.urls[id]
}

// Handler returns the route table — the same paths pmsimd serves, so a
// fleet points its sink at the router unchanged.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", rt.handleSubmit)
	mux.HandleFunc("/v1/hotpcs", rt.handleHotPCs)
	mux.HandleFunc("/v1/estimate", rt.handleEstimate)
	mux.HandleFunc("/v1/stats", rt.handleStats)
	mux.HandleFunc("/v1/membership", rt.handleMembership)
	mux.HandleFunc("/v1/membership/add", rt.handleMembershipAdd)
	mux.HandleFunc("/v1/membership/remove", rt.handleMembershipRemove)
	mux.HandleFunc("/v1/resolve", rt.handleResolve)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("/readyz", rt.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (rt *Router) writeErr(w http.ResponseWriter, status int, kind, msg string, extra map[string]any) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(rt.cfg.RetryAfter.Seconds())))
	}
	body := map[string]any{"error": msg, "kind": kind}
	for k, v := range extra {
		body[k] = v
	}
	writeJSON(w, status, body)
}

// submitCaptured pulls the acknowledged shard's captured-sample total
// (Samples+Lost) out of the owner's 202 body. It rides into the witness
// ledger so anti-entropy audits can weigh what a lost disk held; 0 when
// an older instance omits the field.
func submitCaptured(respBody []byte) uint64 {
	var env struct {
		Captured uint64 `json:"captured"`
	}
	if err := json.Unmarshal(respBody, &env); err != nil {
		return 0
	}
	return env.Captured
}

// submitShardID pulls just the shard id out of a submission body; the
// payload stays opaque bytes — the owning instance decodes and verifies
// it, the router only places it.
func submitShardID(body []byte) (string, error) {
	var env struct {
		Shard string `json:"shard"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return "", err
	}
	if env.Shard == "" {
		return "", errors.New("submission without a shard id")
	}
	return env.Shard, nil
}

// handleSubmit proxies one submission to its ring owner, failing over
// to successors when an instance is down or draining. The response body
// is the owning instance's, augmented with routing provenance:
// "instance" (who acknowledged or finally refused) and "refused_by"
// (instances that 503-refused along the way — each of those recorded
// the shard's captured samples as loss, which matters to anyone
// auditing the fleet-wide conservation invariant).
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only", nil)
		return
	}
	rt.submits.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.writeErr(w, http.StatusRequestEntityTooLarge, "oversized",
				fmt.Sprintf("submission body exceeds %d bytes", rt.cfg.MaxBodyBytes), nil)
			return
		}
		rt.writeErr(w, http.StatusBadRequest, "body", err.Error(), nil)
		return
	}
	shard, err := submitShardID(body)
	if err != nil {
		rt.writeErr(w, http.StatusBadRequest, "malformed", err.Error(), nil)
		return
	}
	if rt.cfg.Capture != nil {
		rt.cfg.Capture(shard, body)
	}
	// Clients that cache /v1/resolve answers send the epoch they resolved
	// under; a membership change since then means their cached owner may
	// be wrong — answer a typed 409 carrying the CURRENT epoch so they
	// re-resolve instead of submitting into a stale placement. Requests
	// without the header (the normal proxy path) are placed fresh here
	// and never see this.
	if hdr := r.Header.Get("X-Ring-Epoch"); hdr != "" {
		want, perr := strconv.ParseUint(hdr, 10, 64)
		cur := rt.ring.epoch()
		if perr != nil || want != cur {
			rt.wrongOwner.Add(1)
			rt.writeErr(w, http.StatusConflict, "wrong-owner",
				fmt.Sprintf("ring epoch %q is stale (current %d): re-resolve and retry", hdr, cur),
				map[string]any{"epoch": cur})
			return
		}
	}

	candidates := rt.submitCandidates(shard)
	var refusedBy []string
	tried := 0
	for _, id := range candidates {
		switch rt.health.get(id) {
		case StateDown:
			continue
		case StateDraining:
			// Known-draining instances are skipped for NEW submissions —
			// but a shard pinned there must still be offered first so the
			// drain ledger can dedupe a retry of an already-merged shard.
			if rt.placedInstance(shard) != id {
				continue
			}
		}
		tried++
		status, respBody, err := rt.forwardSubmit(r.Context(), id, body)
		if err != nil && r.Context().Err() == nil {
			// One same-instance retry before failing over: the instance's
			// admission ledger dedupes a duplicate delivery for free,
			// whereas failing over on a transient blip spreads the shard
			// to a second instance's books (a double-merge risk only the
			// pinning discipline then contains). Skipped when the CLIENT
			// disconnected — that isn't the instance's failure.
			rt.submitRetries.Add(1)
			status, respBody, err = rt.forwardSubmit(r.Context(), id, body)
		}
		if err != nil {
			rt.legsFailed.Add(1)
			if rt.health.reportFailure(id) == StateDown {
				rt.logf("submit shard %s: instance %s marked down (%v)", shard, id, err)
			} else {
				rt.logf("submit shard %s: instance %s unreachable (%v), failing over", shard, id, err)
			}
			rt.failovers.Add(1)
			continue
		}
		switch status {
		case http.StatusServiceUnavailable:
			// Draining (or a drain raced admission): the refusal was
			// loss-accounted there; fail over to the ring successor.
			rt.health.reportDraining(id)
			refusedBy = append(refusedBy, id)
			rt.failovers.Add(1)
			rt.logf("submit shard %s: instance %s draining, failing over", shard, id)
			continue
		case http.StatusAccepted:
			rt.health.reportSuccess(id)
			rt.rememberPlacement(shard, id)
			if rt.cfg.Witness {
				rt.forwardWitness(shard, id, submitCaptured(respBody), body)
			}
			rt.respondAugmented(w, status, respBody, id, refusedBy)
			return
		default:
			// 429 backpressure (retry the same owner later) and permanent
			// 4xx both go back to the client untouched except provenance.
			rt.health.reportSuccess(id)
			rt.respondAugmented(w, status, respBody, id, refusedBy)
			return
		}
	}
	rt.writeErr(w, http.StatusServiceUnavailable, "no-instances",
		fmt.Sprintf("no collector instance reachable for shard %s (%d tried)", shard, tried),
		map[string]any{"refused_by": refusedBy})
}

// submitCandidates orders the instances to try: the pinned placement
// first (ledger stickiness across failover), then ring order from the
// owner.
func (rt *Router) submitCandidates(shard string) []string {
	ringOrder := rt.ring.successors(shard, rt.ring.size())
	pinned := rt.placedInstance(shard)
	if pinned == "" {
		return ringOrder
	}
	out := []string{pinned}
	for _, id := range ringOrder {
		if id != pinned {
			out = append(out, id)
		}
	}
	return out
}

func (rt *Router) placedInstance(shard string) string {
	rt.placedMu.Lock()
	defer rt.placedMu.Unlock()
	return rt.placed[shard]
}

func (rt *Router) rememberPlacement(shard, id string) {
	rt.placedMu.Lock()
	rt.placed[shard] = id
	rt.placedMu.Unlock()
}

func (rt *Router) forwardSubmit(ctx context.Context, id string, body []byte) (int, []byte, error) {
	base := rt.urlOf(id)
	if base == "" {
		return 0, nil, fmt.Errorf("no URL for instance %s", id)
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.SubmitDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/submit", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}

// respondAugmented relays an instance response with routing provenance
// folded into the JSON body (pass-through when the body is not JSON).
func (rt *Router) respondAugmented(w http.ResponseWriter, status int, body []byte, instance string, refusedBy []string) {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil || m == nil {
		m = map[string]any{"raw": string(body)}
	}
	m["instance"] = instance
	// The epoch lets clients pair every ack with the membership view it
	// was routed under (and seed their X-Ring-Epoch caches).
	m["epoch"] = rt.ring.epoch()
	if len(refusedBy) > 0 {
		m["refused_by"] = refusedBy
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(rt.cfg.RetryAfter.Seconds())))
	}
	writeJSON(w, status, m)
}

// drainKind extracts the "kind" of a JSON error response (best effort).
func drainKind(resp *http.Response) string {
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return ""
	}
	var e struct {
		Kind string `json:"kind"`
	}
	if json.Unmarshal(raw, &e) != nil {
		return ""
	}
	return e.Kind
}

// ---- scatter-gather ----

// leg is one instance's contribution to a scatter-gather query.
type leg struct {
	id     string
	status int
	body   []byte
	err    error
}

// gather fans a GET out to every non-Down instance with a per-leg
// deadline and hedged stragglers, and returns the responses plus the
// ids that produced none. It never fails as a whole: losing legs is the
// partial-result degradation the caller reports explicitly.
func (rt *Router) gather(ctx context.Context, pathAndQuery string) (oks []leg, missing []string) {
	targets := make(map[string]string)
	for id, base := range rt.instanceURLs() {
		if rt.health.get(id) == StateDown {
			continue
		}
		targets[id] = base
	}
	results := make(chan leg, len(targets))
	for id, base := range targets {
		go func(id, url string) {
			results <- rt.fetchHedged(ctx, id, url)
		}(id, base+pathAndQuery)
	}
	for range targets {
		l := <-results
		if l.err != nil {
			rt.legsFailed.Add(1)
			// A leg that died because the CLIENT disconnected (the parent
			// request context canceled, which cancels every derived per-leg
			// context) says nothing about the instance's health — charging
			// it a failure would let one impatient client mark the whole
			// tier Down.
			if ctx.Err() == nil {
				if rt.health.reportFailure(l.id) == StateDown {
					rt.logf("gather %s: instance %s marked down (%v)", pathAndQuery, l.id, l.err)
				}
			}
			missing = append(missing, l.id)
			continue
		}
		rt.health.reportSuccess(l.id)
		oks = append(oks, l)
	}
	sort.Slice(oks, func(i, j int) bool { return oks[i].id < oks[j].id })
	sort.Strings(missing)
	return oks, missing
}

// fetchHedged races the instance against its own straggling: if the
// first request has not answered within HedgeDelay, an identical
// duplicate fires and the first response (from either) wins. Both run
// under the same per-leg deadline, so a dead instance costs exactly
// QueryDeadline, never more.
func (rt *Router) fetchHedged(ctx context.Context, id, url string) leg {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.QueryDeadline)
	defer cancel()
	first := make(chan leg, 1)
	go func() { first <- rt.fetchOne(ctx, id, url) }()
	if rt.cfg.HedgeDelay < 0 {
		return <-first
	}
	timer := time.NewTimer(rt.cfg.HedgeDelay)
	defer timer.Stop()
	select {
	case l := <-first:
		return l
	case <-timer.C:
	}
	rt.hedges.Add(1)
	hedge := make(chan leg, 1)
	go func() { hedge <- rt.fetchOne(ctx, id, url) }()
	select {
	case l := <-first:
		return l
	case l := <-hedge:
		if l.err == nil {
			rt.hedgeWins.Add(1)
		}
		return l
	}
}

func (rt *Router) fetchOne(ctx context.Context, id, url string) leg {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return leg{id: id, err: err}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return leg{id: id, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return leg{id: id, err: err}
	}
	return leg{id: id, status: resp.StatusCode, body: body}
}

// partialFields annotates a merged response with the degradation
// contract: "partial" is true when any reachable instance failed to
// answer, and "instances_missing" counts them. Down instances are
// already known-missing and counted too — a reader must be able to see
// that the fleet view is incomplete.
func (rt *Router) partialFields(resp map[string]any, missing []string) {
	down := 0
	for id, st := range rt.health.snapshot() {
		if st == StateDown && !contains(missing, id) {
			missing = append(missing, id)
			down++
		}
	}
	sort.Strings(missing)
	resp["partial"] = len(missing) > 0
	resp["instances_missing"] = len(missing)
	if len(missing) > 0 {
		rt.partialsServed.Add(1)
		resp["missing"] = missing
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// instanceHotPCs mirrors the per-instance /v1/hotpcs payload.
type instanceHotPCs struct {
	Samples  uint64  `json:"samples"`
	Lost     uint64  `json:"lost"`
	LossRate float64 `json:"loss_rate"`
	// Sketch fields (absent on ?sketch=false answers): ErrorBound is the
	// instance's sketch floor — the maximum true count of any PC it did
	// NOT list; WindowSamples is the exact in-window total on windowed
	// answers.
	Approx        bool   `json:"approx"`
	ErrorBound    uint64 `json:"error_bound"`
	WindowMS      int64  `json:"window_ms"`
	WindowClamped bool   `json:"window_clamped"`
	WindowSamples uint64 `json:"window_samples"`
	PCs           []struct {
		PC             string  `json:"pc"`
		Samples        uint64  `json:"samples"`
		MaxErr         uint64  `json:"max_err"`
		EstCount       float64 `json:"est_count"`
		RetiredPct     float64 `json:"retired_pct"`
		DCacheMissPct  float64 `json:"dcache_miss_pct"`
		MispredictPct  float64 `json:"mispredict_pct"`
		MeanInProgress float64 `json:"mean_inprogress_cycles"`
	} `json:"pcs"`
}

// handleHotPCs scatter-gathers every instance's top list and merges:
// counts and estimates are additive across the tier (shards are placed
// whole, so each instance holds an independent sampled subset), rates
// and means re-weight by contributing samples. Each instance is asked
// for an over-fetch (4× n, capped) so a PC hot fleet-wide but trailing
// locally still surfaces.
//
// Sketch answers merge because space-saving partials merge: estimates
// add where a PC is present; where an instance omitted the PC, that
// instance may still have counted it up to its error_bound (floor), so
// the merged row's max_err gains the absent instances' floors. The
// fleet error_bound is the sum of floors — the maximum true fleet-wide
// count of any PC NOT listed. ?sketch= and ?window= pass through to the
// instances.
func (rt *Router) handleHotPCs(w http.ResponseWriter, r *http.Request) {
	n, perr := intQueryParam(r, "n", 10, 1, 1000)
	if perr != "" {
		rt.writeErr(w, http.StatusBadRequest, "param", perr, nil)
		return
	}
	fetch := n * 4
	if fetch > 1000 {
		fetch = 1000
	}
	q := "/v1/hotpcs?n=" + strconv.Itoa(fetch)
	windowed := false
	if v := r.URL.Query().Get("sketch"); v != "" {
		q += "&sketch=" + url.QueryEscape(v)
	}
	if v := r.URL.Query().Get("window"); v != "" {
		q += "&window=" + url.QueryEscape(v)
		windowed = true
	}
	oks, missing := rt.gather(r.Context(), q)
	if len(oks) == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, "no-instances",
			"no collector instance answered", map[string]any{"missing": missing})
		return
	}
	legs := make([]instanceHotPCs, 0, len(oks))
	var badBody []byte
	for _, l := range oks {
		if l.status == http.StatusBadRequest {
			// The request itself is bad (malformed window/sketch value):
			// relay one instance's typed 400.
			badBody = l.body
			continue
		}
		if l.status != http.StatusOK {
			missing = append(missing, l.id)
			continue
		}
		var one instanceHotPCs
		if err := json.Unmarshal(l.body, &one); err != nil {
			missing = append(missing, l.id)
			continue
		}
		legs = append(legs, one)
	}
	if len(legs) == 0 && badBody != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write(badBody)
		return
	}
	type mergedPC struct {
		samples                            uint64
		maxErr                             uint64
		legsIn                             int
		est                                float64
		retired, dmiss, mispredict, inprog float64 // sample-weighted sums
	}
	merged := make(map[string]*mergedPC)
	var (
		samples, lost, errorBound, windowSamples uint64
		approx, windowClamped                    bool
		windowMS                                 int64
	)
	for _, one := range legs {
		samples += one.Samples
		lost += one.Lost
		approx = approx || one.Approx
		errorBound += one.ErrorBound
		windowSamples += one.WindowSamples
		windowClamped = windowClamped || one.WindowClamped
		if one.WindowMS > windowMS {
			windowMS = one.WindowMS
		}
		for _, row := range one.PCs {
			m := merged[row.PC]
			if m == nil {
				m = &mergedPC{}
				merged[row.PC] = m
			}
			ws := float64(row.Samples)
			m.samples += row.Samples
			m.maxErr += row.MaxErr
			m.legsIn++
			m.est += row.EstCount
			m.retired += ws * row.RetiredPct
			m.dmiss += ws * row.DCacheMissPct
			m.mispredict += ws * row.MispredictPct
			m.inprog += ws * row.MeanInProgress
		}
	}
	// An instance that answered but omitted a PC may have seen it up to
	// its floor times: fold those floors into the row's error bound.
	for _, one := range legs {
		present := make(map[string]bool, len(one.PCs))
		for _, row := range one.PCs {
			present[row.PC] = true
		}
		for pc, m := range merged {
			if !present[pc] {
				m.maxErr += one.ErrorBound
			}
		}
	}
	pcs := make([]string, 0, len(merged))
	for pc := range merged {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		a, b := merged[pcs[i]], merged[pcs[j]]
		if a.samples != b.samples {
			return a.samples > b.samples
		}
		return pcs[i] < pcs[j]
	})
	if len(pcs) > n {
		pcs = pcs[:n]
	}
	rows := make([]map[string]any, 0, len(pcs))
	for _, pc := range pcs {
		m := merged[pc]
		ws := float64(m.samples)
		row := map[string]any{
			"pc":        pc,
			"samples":   m.samples,
			"est_count": m.est,
		}
		if m.maxErr > 0 {
			row["max_err"] = m.maxErr
		}
		// Windowed rows carry sketch estimates only — no rate fields.
		if ws > 0 && !windowed {
			row["retired_pct"] = m.retired / ws
			row["dcache_miss_pct"] = m.dmiss / ws
			row["mispredict_pct"] = m.mispredict / ws
			row["mean_inprogress_cycles"] = m.inprog / ws
		}
		rows = append(rows, row)
	}
	resp := map[string]any{
		"samples": samples,
		"lost":    lost,
		"pcs":     rows,
		"approx":  approx,
	}
	if approx {
		resp["error_bound"] = errorBound
	}
	if windowed {
		resp["window_ms"] = windowMS
		resp["window_clamped"] = windowClamped
		resp["window_samples"] = windowSamples
	}
	if samples+lost > 0 {
		resp["loss_rate"] = float64(lost) / float64(samples+lost)
	} else {
		resp["loss_rate"] = 0.0
	}
	rt.partialFields(resp, missing)
	writeJSON(w, http.StatusOK, resp)
}

// instanceEstimate mirrors the per-instance /v1/estimate payload.
type instanceEstimate struct {
	Samples       uint64             `json:"samples"`
	EstCount      float64            `json:"est_count"`
	Approx        bool               `json:"approx"`
	MaxErr        uint64             `json:"max_err"`
	Event         string             `json:"event"`
	EstEventCount float64            `json:"est_event_count"`
	EventRate     float64            `json:"event_rate"`
	EstEvents     map[string]float64 `json:"est_event_counts"`
	MeanLatencies map[string]float64 `json:"mean_latencies"`
}

// handleEstimate merges per-PC estimator rollups: counts sum, rates and
// mean latencies re-weight by contributing samples (an approximation
// for latencies, whose per-kind contributor counts stay instance-local;
// good to the extent shard placement is unbiased, which hash placement
// is). An instance answering 404 simply holds no samples for the PC.
func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	pc := r.URL.Query().Get("pc")
	if pc == "" {
		rt.writeErr(w, http.StatusBadRequest, "param", "pc parameter required", nil)
		return
	}
	q := "/v1/estimate?" + r.URL.RawQuery
	oks, missing := rt.gather(r.Context(), q)
	if len(oks) == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, "no-instances",
			"no collector instance answered", map[string]any{"missing": missing})
		return
	}
	var (
		samples, maxErr    uint64
		approx             bool
		est, estEv, rateWS float64
		events             = make(map[string]float64)
		lats               = make(map[string]float64)
		event              string
		answered, badReq   int
		badBody            []byte
	)
	for _, l := range oks {
		switch l.status {
		case http.StatusNotFound:
			continue
		case http.StatusBadRequest:
			badReq++
			badBody = l.body
			continue
		}
		if l.status != http.StatusOK {
			missing = append(missing, l.id)
			continue
		}
		var one instanceEstimate
		if err := json.Unmarshal(l.body, &one); err != nil {
			missing = append(missing, l.id)
			continue
		}
		answered++
		samples += one.Samples
		approx = approx || one.Approx
		maxErr += one.MaxErr
		est += one.EstCount
		estEv += one.EstEventCount
		rateWS += float64(one.Samples) * one.EventRate
		event = one.Event
		for k, v := range one.EstEvents {
			events[k] += v
		}
		for k, v := range one.MeanLatencies {
			lats[k] += float64(one.Samples) * v
		}
	}
	if badReq > 0 && answered == 0 {
		// The request itself is bad (unknown event name, bad pc):
		// relay one instance's typed 400 rather than inventing partial.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write(badBody)
		return
	}
	if answered == 0 {
		rt.writeErr(w, http.StatusNotFound, "unknown-pc",
			fmt.Sprintf("pc %s has no samples on any reachable instance", pc),
			map[string]any{"missing": missing})
		return
	}
	resp := map[string]any{
		"pc":        pc,
		"samples":   samples,
		"est_count": est,
		"approx":    approx,
	}
	if approx {
		resp["max_err"] = maxErr
	}
	if event != "" {
		resp["event"] = event
		resp["est_event_count"] = estEv
		if samples > 0 {
			resp["event_rate"] = rateWS / float64(samples)
		}
	} else if len(events) > 0 {
		resp["est_event_counts"] = events
	}
	if samples > 0 {
		for k := range lats {
			lats[k] /= float64(samples)
		}
	}
	resp["mean_latencies"] = lats
	rt.partialFields(resp, missing)
	writeJSON(w, http.StatusOK, resp)
}

// instanceStats is the subset of per-instance stats the fleet rollup
// sums; the full per-instance payload rides alongside verbatim.
type instanceStats struct {
	Samples     uint64 `json:"samples"`
	Lost        uint64 `json:"lost"`
	Merged      uint64 `json:"merged"`
	SamplesLost uint64 `json:"samples_lost"`
	HandoffsIn  uint64 `json:"handoffs_in"`
}

// handleStats scatter-gathers /v1/stats and serves the fleet rollup —
// the fleet-wide conservation invariant's right-hand side (Σ
// Samples+Lost over reachable instances) — plus each instance's full
// stats and the router's own counters.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	oks, missing := rt.gather(r.Context(), "/v1/stats")
	perInstance := make(map[string]json.RawMessage, len(oks))
	var fleet instanceStats
	for _, l := range oks {
		if l.status != http.StatusOK {
			missing = append(missing, l.id)
			continue
		}
		var one instanceStats
		if err := json.Unmarshal(l.body, &one); err != nil {
			missing = append(missing, l.id)
			continue
		}
		fleet.Samples += one.Samples
		fleet.Lost += one.Lost
		fleet.Merged += one.Merged
		fleet.SamplesLost += one.SamplesLost
		fleet.HandoffsIn += one.HandoffsIn
		perInstance[l.id] = json.RawMessage(l.body)
	}
	resp := map[string]any{
		"fleet": map[string]any{
			"samples":      fleet.Samples,
			"lost":         fleet.Lost,
			"merged":       fleet.Merged,
			"samples_lost": fleet.SamplesLost,
			"handoffs_in":  fleet.HandoffsIn,
			"instances":    len(perInstance),
		},
		"instances": perInstance,
		"router":    rt.Stats(),
		"epoch":     rt.ring.epoch(),
		"migration": rt.migration.snapshot(),
	}
	rt.partialFields(resp, missing)
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz: the router is ready while at least one instance is not
// Down — a degraded tier serves partial results rather than nothing.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	states := rt.health.snapshot()
	up := 0
	byState := make(map[string]string, len(states))
	for id, st := range states {
		byState[id] = st.String()
		if st != StateDown {
			up++
		}
	}
	if up == 0 {
		rt.writeErr(w, http.StatusServiceUnavailable, "no-instances",
			"every collector instance is down", map[string]any{"instances": byState})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ready": true, "instances": byState, "reachable": up,
	})
}

// RouterStats are the router's own counters, served under "router" in
// /v1/stats.
type RouterStats struct {
	Submits              uint64 `json:"submits"`
	SubmitRetries        uint64 `json:"submit_retries"`
	WrongOwnerConflicts  uint64 `json:"wrong_owner_conflicts"`
	Failovers            uint64 `json:"failovers"`
	Hedges               uint64 `json:"hedges"`
	HedgeWins            uint64 `json:"hedge_wins"`
	PartialsServed       uint64 `json:"partials_served"`
	LegsFailed           uint64 `json:"legs_failed"`
	WitnessSent          uint64 `json:"witness_sent"`
	WitnessFailed        uint64 `json:"witness_failed"`
	AntiEntropyRuns      uint64 `json:"anti_entropy_runs"`
	AntiEntropyResubmits uint64 `json:"anti_entropy_resubmits"`
}

// Stats returns a snapshot of the router counters.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Submits:              rt.submits.Load(),
		SubmitRetries:        rt.submitRetries.Load(),
		WrongOwnerConflicts:  rt.wrongOwner.Load(),
		Failovers:            rt.failovers.Load(),
		Hedges:               rt.hedges.Load(),
		HedgeWins:            rt.hedgeWins.Load(),
		PartialsServed:       rt.partialsServed.Load(),
		LegsFailed:           rt.legsFailed.Load(),
		WitnessSent:          rt.witnessSent.Load(),
		WitnessFailed:        rt.witnessFailed.Load(),
		AntiEntropyRuns:      rt.antiEntropyRuns.Load(),
		AntiEntropyResubmits: rt.antiEntropyResub.Load(),
	}
}

// intQueryParam parses an integer query parameter with an inclusive
// range; a non-empty second return is the typed-400 message (matching
// the collector's own parameter contract).
func intQueryParam(r *http.Request, name string, def, lo, hi int) (int, string) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, ""
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Sprintf("parameter %q: %q is not an integer", name, v)
	}
	if n < lo || n > hi {
		return 0, fmt.Sprintf("parameter %q: %d out of range [%d,%d]", name, n, lo, hi)
	}
	return n, ""
}

// logf writes one attributable line under the router's log mutex, so
// concurrent request legs never interleave mid-line in soak output.
func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Log == nil {
		return
	}
	rt.logMu.Lock()
	defer rt.logMu.Unlock()
	fmt.Fprintf(rt.cfg.Log, "pmrouter: "+format+"\n", args...)
}
