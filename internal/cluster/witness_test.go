package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"profileme/internal/ingest"
	"profileme/internal/server"
)

// svcDigest returns the deterministic serialized bytes of a service's
// aggregate (SafeDB.Save is canonical: same counters -> same bytes), so
// two aggregates can be compared for exact equality.
func svcDigest(t *testing.T, svc *ingest.Service) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := svc.Aggregate().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func flush(t *testing.T, svc *ingest.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// TestWitnessDiskLossRebuild is the acceptance test for witness
// replication: an instance that loses EVERYTHING (disk, WAL, memory) is
// replaced by an empty process under the same ring identity, and one
// anti-entropy sweep rebuilds it purely from the witness copies its
// peers hold — reconverging to the exact aggregate bytes the victim
// held before the loss.
func TestWitnessDiskLossRebuild(t *testing.T) {
	ids := []string{"c0", "c1", "c2"}
	instances := make(map[string]*tierInstance, len(ids))
	cfg := RouterConfig{FailureThreshold: 2, HedgeDelay: -1, Witness: true, WitnessSync: true}
	for _, id := range ids {
		in := newTierInstance(t, id, 64)
		instances[id] = in
		cfg.Instances = append(cfg.Instances, Instance{ID: id, BaseURL: in.ts.URL})
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Submit distinct shards; remember which instance owns which, and the
	// total captured samples for the fleet conservation check.
	const shards = 18
	byOwner := make(map[string][]string)
	var captured uint64
	for i := 0; i < shards; i++ {
		name := shardName(i)
		db := synthShard(uint64(i)+1, 40+i)
		captured += db.Samples() + db.Lost()
		resp := submitVia(t, front.URL, name, db)
		if resp.status != 202 {
			t.Fatalf("submit %s: status %d", name, resp.status)
		}
		byOwner[resp.Instance] = append(byOwner[resp.Instance], name)
	}
	rt.WitnessFlush()

	// The witness ledgers must carry each shard's real captured count
	// (copied from the owner's 202 body) — the conservation audit reads
	// these numbers, so an omitted field would zero the whole check.
	var witnessed uint64
	for _, base := range rt.instanceURLs() {
		ledger, err := rt.fetchWitnessLedger(context.Background(), base)
		if err != nil {
			t.Fatal(err)
		}
		for origin, rows := range ledger {
			for _, r := range rows {
				if r.captured == 0 {
					t.Fatalf("witness ledger for %s/%s has captured=0", origin, r.shard)
				}
				witnessed += r.captured
			}
		}
	}
	if witnessed != captured {
		t.Fatalf("witness ledgers hold %d captured samples, want %d", witnessed, captured)
	}

	// Pick a victim that owns at least one shard and snapshot its exact
	// aggregate bytes.
	var victim string
	for id, owned := range byOwner {
		if len(owned) > 0 {
			victim = id
			break
		}
	}
	if victim == "" {
		t.Fatal("no instance accepted any shard")
	}
	flush(t, instances[victim].svc)
	wantDigest := svcDigest(t, instances[victim].svc)
	wantShards := len(byOwner[victim])

	// Total loss: the process, its memory, and its (absent here) disk all
	// go away; a brand-new empty service takes over the ring identity.
	instances[victim].ts.Close()
	freshSvc, err := ingest.NewService(ingest.Config{QueueDepth: 64, Interval: 16, Width: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	freshSvc.Start()
	freshTS := httptest.NewServer(server.New(server.Config{Instance: victim}, freshSvc).Handler())
	t.Cleanup(freshTS.Close)
	rt.SetInstance(victim, freshTS.URL)

	rep := rt.AntiEntropy(context.Background())
	if rep.Resubmitted != wantShards {
		t.Fatalf("anti-entropy resubmitted %d shards to %s, want %d (report %+v)",
			rep.Resubmitted, victim, wantShards, rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("anti-entropy reported %d errors: %+v", rep.Errors, rep)
	}

	// The rebuilt instance must hold bit-identical aggregate bytes.
	flush(t, freshSvc)
	gotDigest := svcDigest(t, freshSvc)
	if !bytes.Equal(gotDigest, wantDigest) {
		t.Fatalf("rebuilt aggregate diverged: %d bytes vs %d bytes (samples %d vs %d)",
			len(gotDigest), len(wantDigest), freshSvc.Aggregate().Samples(), instances[victim].svc.Aggregate().Samples())
	}

	// Fleet-wide conservation survives the loss+rebuild: every captured
	// sample is a Sample or accounted Lost exactly once across the tier.
	var total uint64
	for id, in := range instances {
		svc := in.svc
		if id == victim {
			svc = freshSvc
		}
		flush(t, svc)
		total += svc.Aggregate().Samples() + svc.Aggregate().Lost()
	}
	if total != captured {
		t.Fatalf("fleet conservation violated after rebuild: samples+lost %d, want %d", total, captured)
	}

	// The sweep is idempotent and pruning worked: a second sweep finds a
	// converged tier with nothing witnessed against the victim.
	rep2 := rt.AntiEntropy(context.Background())
	if rep2.Resubmitted != 0 || rep2.Errors != 0 {
		t.Fatalf("second sweep not idempotent: %+v", rep2)
	}
	for id, in := range instances {
		url := in.ts.URL
		if id == victim {
			url = freshTS.URL
		}
		status, m := getJSON(t, url+"/v1/witness/ledger")
		if status != 200 {
			t.Fatalf("witness ledger on %s: status %d", id, status)
		}
		if w, ok := m["witness"].(map[string]any); ok && len(w) != 0 {
			t.Fatalf("witness copies survived reconciliation on %s: %v", id, w)
		}
	}
}

func shardName(i int) string {
	return "wit/s" + string(rune('a'+i/10)) + string(rune('0'+i%10))
}

// TestProbeMarksWALStalledDraining: an instance whose WAL fsync is not
// keeping up reports 503 wal-stalled on /readyz, and the router's probe
// degrades it to draining so new submissions steer to the successor.
func TestProbeMarksWALStalledDraining(t *testing.T) {
	dir := t.TempDir()
	svc, err := ingest.NewService(ingest.Config{
		QueueDepth:    16,
		Interval:      16,
		Width:         4,
		WALDir:        filepath.Join(dir, "wal"),
		FsyncWindow:   time.Hour, // park the syncer: nothing commits
		WALStallAfter: 20 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(server.New(server.Config{Instance: "c0"}, svc).Handler())
	t.Cleanup(ts.Close)
	rt, err := NewRouter(RouterConfig{
		Instances:  []Instance{{ID: "c0", BaseURL: ts.URL}},
		HedgeDelay: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy first: no pending records, probe keeps it routable.
	rt.Probe(context.Background())
	if st := rt.health.get("c0"); st != StateHealthy {
		t.Fatalf("state before stall: %v", st)
	}

	// Wedge a submission behind the parked syncer, let it age past the
	// stall threshold, and probe again. Raw http.Post: test helpers must
	// not Fatal off the test goroutine.
	body, err := ingest.EncodeSubmit("stall/s0", synthShard(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for rt.health.get("c0") != StateDraining {
		if time.Now().After(deadline) {
			t.Fatal("probe never marked the stalled instance draining")
		}
		time.Sleep(10 * time.Millisecond)
		rt.Probe(context.Background())
	}

	// Unwedge: Close flushes pending appends, so the parked commit either
	// lands durably (202) or reports the WAL refusal (503) — never a
	// silent hang, and never an unacknowledged-yet-durable limbo.
	svc.CloseWAL()
	if status := <-done; status != 202 && status != 503 {
		t.Fatalf("wedged submit: status %d, want 202 or 503", status)
	}
}
