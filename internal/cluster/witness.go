package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
)

// Witness replication closes the durability gap the per-instance WAL
// cannot: total disk loss. After an instance acknowledges a submission
// (202), the router forwards the raw body to the ring successor of the
// acknowledging instance as a witness copy, tagged with the origin's
// id. The copy is pure redundancy — the origin's WAL remains the system
// of record — until an origin comes back empty-handed, at which point
// the anti-entropy sweep compares every witness ledger against the
// owners' admission ledgers (/v1/ledger), resubmits what an owner is
// missing (owner-side dedupe makes a raced retry a 202+duplicate, so
// the sweep is idempotent), and prunes copies the owner provably holds.
//
// Witness forwarding is asynchronous and best-effort by design: the
// client's 202 must not wait on a second network hop, and a missed
// witness copy only narrows the disk-loss recovery set, never the
// crash-recovery guarantee (that is the WAL's). WitnessSync exists so
// tests can make the forward synchronous and deterministic.

// forwardWitness ships one accepted submission body to the witness
// holder for (shard, origin), tagged with the shard's captured-sample
// total from the owner's 202. Asynchronous unless cfg.WitnessSync.
func (rt *Router) forwardWitness(shard, origin string, captured uint64, body []byte) {
	target := rt.witnessTarget(shard, origin)
	if target == "" {
		return // single-instance tier: nobody to witness
	}
	if rt.cfg.WitnessSync {
		rt.sendWitness(context.Background(), target, shard, origin, captured, body)
		return
	}
	rt.witnessWG.Add(1)
	go func() {
		defer rt.witnessWG.Done()
		rt.sendWitness(context.Background(), target, shard, origin, captured, body)
	}()
}

// witnessTarget picks the witness holder: the first instance after the
// origin in the shard's ring order that is not the origin and not Down.
// Per-shard ring order (rather than a fixed per-instance successor)
// spreads one origin's witness set across the tier and keeps the choice
// stable across router restarts (the ring is seed-derived).
func (rt *Router) witnessTarget(shard, origin string) string {
	ringOrder := rt.ring.successors(shard, rt.ring.size())
	for _, id := range ringOrder {
		if id == origin || rt.health.get(id) == StateDown {
			continue
		}
		return id
	}
	return ""
}

// WitnessFlush waits for every in-flight asynchronous witness forward.
func (rt *Router) WitnessFlush() { rt.witnessWG.Wait() }

func (rt *Router) sendWitness(ctx context.Context, target, shard, origin string, captured uint64, body []byte) {
	base := rt.urlOf(target)
	if base == "" {
		rt.witnessFailed.Add(1)
		return
	}
	payload, err := json.Marshal(map[string]any{
		"origin":   origin,
		"shard":    shard,
		"captured": captured,
		"body":     body, // []byte marshals as base64
	})
	if err != nil {
		rt.witnessFailed.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.SubmitDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/witness", bytes.NewReader(payload))
	if err != nil {
		rt.witnessFailed.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.witnessFailed.Add(1)
		rt.logf("witness shard %s: holder %s unreachable (%v)", shard, target, err)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		rt.witnessFailed.Add(1)
		rt.logf("witness shard %s: holder %s refused (%d)", shard, target, resp.StatusCode)
		return
	}
	rt.witnessSent.Add(1)
}

// AntiEntropyReport summarizes one reconciliation sweep.
type AntiEntropyReport struct {
	// HoldersScanned counts instances whose witness ledger was read.
	HoldersScanned int `json:"holders_scanned"`
	// OriginsChecked counts (holder, origin) ledger comparisons.
	OriginsChecked int `json:"origins_checked"`
	// Resubmitted counts witness copies replayed to an owner that was
	// missing them (the disk-loss recovery path doing its job).
	Resubmitted int `json:"resubmitted"`
	// Pruned counts witness copies released because the owner provably
	// holds the shard (pre-existing or just resubmitted).
	Pruned int `json:"pruned"`
	// Errors counts legs that failed (unreachable holder/owner, refused
	// resubmission); the next sweep retries them.
	Errors int `json:"errors"`
}

// AntiEntropy runs one reconciliation sweep: for every reachable
// witness holder, compare each origin's witnessed shards against that
// origin's live admission ledger, resubmit the difference to the
// origin, and prune copies the origin holds. Safe to run concurrently
// with live traffic — owner-side dedupe absorbs races — and idempotent:
// a second sweep over a converged tier does nothing.
func (rt *Router) AntiEntropy(ctx context.Context) AntiEntropyReport {
	var rep AntiEntropyReport
	for holder, base := range rt.instanceURLs() {
		if rt.health.get(holder) == StateDown {
			continue
		}
		ledger, err := rt.fetchWitnessLedger(ctx, base)
		if err != nil {
			rep.Errors++
			continue
		}
		rep.HoldersScanned++
		origins := make([]string, 0, len(ledger))
		for origin := range ledger {
			origins = append(origins, origin)
		}
		sort.Strings(origins)
		for _, origin := range origins {
			ownerBase := rt.urlOf(origin)
			if ownerBase == "" || rt.health.get(origin) == StateDown {
				continue // owner absent: keep the copies, retry next sweep
			}
			rep.OriginsChecked++
			admitted, err := rt.fetchAdmitted(ctx, ownerBase)
			if err != nil {
				rep.Errors++
				continue
			}
			var prune []string
			for _, row := range ledger[origin] {
				if admitted[row.shard] {
					prune = append(prune, row.shard)
					continue
				}
				if err := rt.resubmitWitness(ctx, base, ownerBase, origin, row.shard); err != nil {
					rep.Errors++
					rt.logf("anti-entropy: resubmit %s/%s to %s failed (%v)", origin, row.shard, origin, err)
					continue
				}
				rep.Resubmitted++
				prune = append(prune, row.shard)
			}
			if len(prune) > 0 {
				n, err := rt.pruneWitness(ctx, base, origin, prune)
				if err != nil {
					rep.Errors++
					continue
				}
				rep.Pruned += n
			}
		}
	}
	rt.antiEntropyRuns.Add(1)
	rt.antiEntropyResub.Add(uint64(rep.Resubmitted))
	return rep
}

// witnessRow mirrors one /v1/witness/ledger entry.
type witnessRow struct {
	shard    string
	captured uint64
}

func (rt *Router) fetchWitnessLedger(ctx context.Context, base string) (map[string][]witnessRow, error) {
	body, err := rt.getJSON(ctx, base+"/v1/witness/ledger")
	if err != nil {
		return nil, err
	}
	var resp struct {
		Witness map[string][]struct {
			Shard    string `json:"shard"`
			Captured uint64 `json:"captured"`
		} `json:"witness"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	out := make(map[string][]witnessRow, len(resp.Witness))
	for origin, rows := range resp.Witness {
		for _, r := range rows {
			out[origin] = append(out[origin], witnessRow{shard: r.Shard, captured: r.Captured})
		}
	}
	return out, nil
}

func (rt *Router) fetchAdmitted(ctx context.Context, base string) (map[string]bool, error) {
	body, err := rt.getJSON(ctx, base+"/v1/ledger")
	if err != nil {
		return nil, err
	}
	var resp struct {
		Shards []string `json:"shards"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(resp.Shards))
	for _, sh := range resp.Shards {
		out[sh] = true
	}
	return out, nil
}

// resubmitWitness fetches one stored body from the holder and replays
// it to the owner's /v1/submit. A 202 — fresh or duplicate — means the
// owner now holds the shard (and its new WAL holds the record).
func (rt *Router) resubmitWitness(ctx context.Context, holderBase, ownerBase, origin, shard string) error {
	fetchURL := holderBase + "/v1/witness/fetch?origin=" + url.QueryEscape(origin) + "&shard=" + url.QueryEscape(shard)
	body, err := rt.getJSON(ctx, fetchURL)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.SubmitDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ownerBase+"/v1/submit", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("owner answered %d", resp.StatusCode)
	}
	return nil
}

func (rt *Router) pruneWitness(ctx context.Context, holderBase, origin string, shards []string) (int, error) {
	payload, err := json.Marshal(map[string]any{"origin": origin, "shards": shards})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.SubmitDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, holderBase+"/v1/witness/prune", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("prune answered %d", resp.StatusCode)
	}
	var pr struct {
		Pruned int `json:"pruned"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		return 0, err
	}
	return pr.Pruned, nil
}

// getJSON fetches one URL under the query deadline and returns the body
// on any 200; non-200 is an error.
func (rt *Router) getJSON(ctx context.Context, u string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.QueryDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d", u, resp.StatusCode)
	}
	return body, nil
}
