// Package cluster is the multi-instance collector tier in front of the
// pmsimd stack: consistent-hash shard placement over N instances, a
// scatter-gather router that degrades to explicit partial results when
// instances are down, a passive/active health tracker, and the drain
// handoff that moves a retiring instance's aggregate to its ring
// successor so a rolling restart loses zero accumulated samples.
//
// The tier-level contract extends the single-instance conservation
// invariant of internal/ingest fleet-wide:
//
//	Σ captured over distinct (instance, shard) == Σ over live instances of Samples+Lost
//
// where a (instance, shard) pair is "recorded" when the shard finally
// merged at that instance or its refusal loss still stands there, and a
// handed-off aggregate carries its recorder's pairs to the successor.
// The tier saturation soak pins this down under a 4× flood with a
// SIGKILL and a graceful drain mid-flood.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// fnv1a64 hashes key with a seed folded in first, so a deployment can
// pick a virtual-node layout without losing determinism: the same
// (seed, instances) always yields the same ring, across process
// restarts and insertion orders.
//
// Raw FNV-1a is not enough here: ring order sorts on the HIGH bits, and
// for the short, prefix-shared keys this ring sees ("c0#17", "c0#18",
// "compress/s003") a trailing-byte difference only reaches the low ~48
// bits, clustering one instance's virtual nodes and skewing ownership
// far beyond vnode variance. The final avalanche (the 64-bit
// mix from MurmurHash3) spreads every input bit across all 64 output
// bits; the rebalance property test holds the shares to the expected
// 1/N ± ε.
func fnv1a64(seed uint64, key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= prime
	}
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node: an instance's presence at a hash
// position on the ring.
type ringPoint struct {
	hash     uint64
	instance string
}

// Ring is a consistent-hash ring with virtual nodes, keyed by shard id.
// Placement is deterministic: the ring is a pure function of (seed,
// vnodes, instance set) — no randomness, no insertion-order dependence —
// so a restarted router re-derives the identical layout and a retried
// shard lands on the same owner. Not safe for concurrent use; the
// Router guards its ring with a mutex.
type Ring struct {
	vnodes    int
	seed      uint64
	points    []ringPoint // sorted by (hash, instance)
	instances map[string]bool
	// epoch versions the membership: it bumps on every effective Add or
	// Remove, never on no-ops, so two rings with the same epoch that
	// started from the same base hold the same instance set. Clients cache
	// (shard -> instance) resolutions tagged with the epoch; the router's
	// wrong-owner 409 carries the current epoch so a stale client knows to
	// re-resolve rather than spin.
	epoch uint64
}

// DefaultVNodes is the default virtual-node count per instance: enough
// that one instance joining or leaving moves close to the ideal 1/N of
// the key space (the rebalance property test bounds the deviation).
const DefaultVNodes = 128

// NewRing builds an empty ring. vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, seed: seed, instances: make(map[string]bool)}
}

// Add places instance's virtual nodes on the ring. Adding an instance
// twice is a no-op (the epoch does not move).
func (r *Ring) Add(instance string) {
	if r.instances[instance] {
		return
	}
	r.instances[instance] = true
	r.epoch++
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:     fnv1a64(r.seed, fmt.Sprintf("%s#%d", instance, v)),
			instance: instance,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].instance < r.points[j].instance
	})
}

// Remove takes instance's virtual nodes off the ring; its keys fall to
// their ring successors and no other key moves.
func (r *Ring) Remove(instance string) {
	if !r.instances[instance] {
		return
	}
	delete(r.instances, instance)
	r.epoch++
	kept := r.points[:0]
	for _, p := range r.points {
		if p.instance != instance {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Epoch returns the membership version: the count of effective Add and
// Remove operations applied to this ring (clones inherit it).
func (r *Ring) Epoch() uint64 { return r.epoch }

// Clone returns an independent copy: membership planning computes the
// post-change layout on a clone, derives the moved key ranges against
// the live ring, migrates, and only then commits the change.
func (r *Ring) Clone() *Ring {
	c := &Ring{
		vnodes:    r.vnodes,
		seed:      r.seed,
		points:    append([]ringPoint(nil), r.points...),
		instances: make(map[string]bool, len(r.instances)),
		epoch:     r.epoch,
	}
	for id := range r.instances {
		c.instances[id] = true
	}
	return c
}

// MovedKeys reports, for each key whose owner differs between old and
// new, the (oldOwner -> newOwner) transfer as key -> newOwner. This is
// the migration work list for a membership change; the consistent-hash
// property (only keys adjacent to the changed instance's virtual nodes
// move, ≤ 1/N + ε of the key space per the rebalance property test)
// keeps it small.
func MovedKeys(oldRing, newRing *Ring, keys []string) map[string]string {
	moved := make(map[string]string)
	for _, k := range keys {
		was, okOld := oldRing.Owner(k)
		now, okNew := newRing.Owner(k)
		if okNew && (!okOld || was != now) {
			moved[k] = now
		}
	}
	return moved
}

// Instances returns the member instances in sorted order.
func (r *Ring) Instances() []string {
	out := make([]string, 0, len(r.instances))
	for id := range r.instances {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of member instances.
func (r *Ring) Size() int { return len(r.instances) }

// Owner returns the instance owning key — the first virtual node at or
// clockwise after the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.at(key)].instance, true
}

// at returns the index of the first point at or after key's hash,
// wrapping at the top of the ring.
func (r *Ring) at(key string) int {
	h := fnv1a64(r.seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Successors returns up to max distinct instances in ring order starting
// at key's owner — the failover candidate list for a submission.
func (r *Ring) Successors(key string, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.instances) {
		max = len(r.instances)
	}
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	for i, n := r.at(key), 0; n < len(r.points) && len(out) < max; i, n = (i+1)%len(r.points), n+1 {
		id := r.points[i].instance
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Successor returns the distinct instance that follows instance on the
// ring — the drain-handoff recipient: the instance that inherits most of
// the drainer's key space. ok is false when instance is not a member or
// is the only member.
func (r *Ring) Successor(instance string) (string, bool) {
	if !r.instances[instance] || len(r.instances) < 2 {
		return "", false
	}
	// Walk clockwise from the instance's first virtual node; the first
	// point owned by someone else is the successor. Deterministic because
	// the point order is.
	start := -1
	for i, p := range r.points {
		if p.instance == instance {
			start = i
			break
		}
	}
	for i, n := (start+1)%len(r.points), 0; n < len(r.points); i, n = (i+1)%len(r.points), n+1 {
		if r.points[i].instance != instance {
			return r.points[i].instance, true
		}
	}
	return "", false
}

// lockedRing is the Router's concurrency wrapper: membership changes
// (SetInstance at recovery) race with per-request owner lookups.
type lockedRing struct {
	mu sync.Mutex
	r  *Ring
}

func (l *lockedRing) successors(key string, max int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Successors(key, max)
}

func (l *lockedRing) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Size()
}

func (l *lockedRing) epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Epoch()
}

func (l *lockedRing) owner(key string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Owner(key)
}

func (l *lockedRing) instances() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Instances()
}

func (l *lockedRing) has(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.instances[id]
}

// clone snapshots the ring for membership planning.
func (l *lockedRing) clone() *Ring {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Clone()
}
