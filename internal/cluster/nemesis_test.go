package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"profileme/internal/ingest"
	"profileme/internal/netchaos"
	"profileme/internal/profile"
	"profileme/internal/server"
)

// defaultNemesisSeed pins the CI nemesis run; override with
// PM_NEMESIS_SEED (decimal or 0x-hex) to replay a reported failure or
// explore new schedules. Every fault the run injects derives from this
// one number.
const defaultNemesisSeed uint64 = 0xC0FFEE

func nemesisSeed(t *testing.T) uint64 {
	t.Helper()
	v := os.Getenv("PM_NEMESIS_SEED")
	if v == "" {
		return defaultNemesisSeed
	}
	seed, err := strconv.ParseUint(v, 0, 64)
	if err != nil {
		t.Fatalf("PM_NEMESIS_SEED=%q: %v", v, err)
	}
	return seed
}

// walInstance is one collector with a real WAL, restartable in place:
// Kill closes the HTTP listener and the WAL (the crash), Restart
// recovers from the same directory behind a fresh listener (the new
// process, at a new address — exactly what a rescheduled container does).
type walInstance struct {
	id  string
	dir string
	cfg ingest.Config
	svc *ingest.Service
	ts  *httptest.Server
}

func newWALInstance(t *testing.T, id string, root string) *walInstance {
	t.Helper()
	dir := filepath.Join(root, id, "wal")
	cfg := ingest.Config{QueueDepth: 256, Interval: 16, Width: 4, WALDir: dir}
	svc, err := ingest.NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	in := &walInstance{id: id, dir: dir, cfg: cfg, svc: svc}
	in.ts = httptest.NewServer(server.New(server.Config{Instance: id}, svc).Handler())
	t.Cleanup(func() { in.ts.Close() })
	return in
}

func (in *walInstance) kill(t *testing.T) {
	t.Helper()
	in.ts.Close()
	if err := in.svc.CloseWAL(); err != nil {
		t.Fatalf("kill %s: %v", in.id, err)
	}
}

func (in *walInstance) restart(t *testing.T) {
	t.Helper()
	svc, _, err := ingest.Recover(in.cfg)
	if err != nil {
		t.Fatalf("restart %s: %v", in.id, err)
	}
	svc.Start()
	in.svc = svc
	in.ts = httptest.NewServer(server.New(server.Config{Instance: in.id}, svc).Handler())
	t.Cleanup(func() { in.ts.Close() })
}

func hostOf(rawURL string) string {
	u, _ := url.Parse(rawURL)
	return u.Host
}

// trySubmit is submitVia without t.Fatal, safe for writer goroutines.
func trySubmit(frontURL, shard string, db *profile.DB) (submitResp, error) {
	body, err := ingest.EncodeSubmit(shard, db)
	if err != nil {
		return submitResp{}, err
	}
	resp, err := http.Post(frontURL+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return submitResp{}, err
	}
	defer resp.Body.Close()
	out := submitResp{status: resp.StatusCode}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return submitResp{}, err
	}
	return out, nil
}

// topPCs extracts the ranked pc strings from a /v1/hotpcs body.
func topPCs(m map[string]any) []string {
	rows, _ := m["pcs"].([]any)
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		row, _ := r.(map[string]any)
		if pc, _ := row["pc"].(string); pc != "" {
			out = append(out, pc)
		}
	}
	return out
}

func overlap(a, b []string) int {
	in := make(map[string]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	n := 0
	for _, x := range b {
		if in[x] {
			n++
		}
	}
	return n
}

// TestNemesisSoak is the membership nemesis: a 3-instance WAL-backed
// tier grows to 5, suffers a process kill + recovery, and shrinks to 2 —
// all while 4 concurrent writers flood submissions through a router
// whose network is lying (seeded partitions, latency, reorder,
// pre-delivery resets, duplicated deliveries, dripped responses).
//
// After the chaos heals, the run must show:
//
//	A. every shard was eventually acknowledged (writers retry to 202);
//	B. mid-chaos, the fleet hot-PC top-10 overlapped the ground truth
//	   (an unchaosed oracle fed the same shards) in >= 8 of 10 slots;
//	C. conservation EXACT, twice over: each live instance's books
//	   balance (Σ applied captured + Σ refused loss + handoff captured
//	   == samples+lost), and the fleet total equals the distinct
//	   captured sum — nothing lost, nothing double-counted;
//	D. every shard is admitted at >= 1 live instance (dedupe coverage
//	   survived two scale-outs, a crash-recovery, and three scale-ins);
//	E. anti-entropy reaches a fixed point (a sweep resubmits nothing)
//	   and further sweeps leave every instance's answer byte-identical;
//	F. the ring epoch rose monotonically, once per membership change.
//
// The plan's ResetAfter (deliver-then-lose-the-ack) stays 0 HERE: an
// ack lost between instance and router makes the tier at-least-once
// across instances by design (the router cannot pin a placement it
// never learned), which would make exact fleet conservation
// unfalsifiable. That fault class is pinned where its contract lives:
// the same-instance retry in handleSubmit, the handoff dedupe tests,
// and netchaos's own tests.
//
// Failures print the seed; replay with PM_NEMESIS_SEED=<seed>.
func TestNemesisSoak(t *testing.T) {
	seed := nemesisSeed(t)
	rates := netchaos.Light()
	rates.ResetAfter = 0
	plan := netchaos.MustNewPlan(seed, rates)
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("nemesis: reproduce with PM_NEMESIS_SEED=%d; injected faults: %+v", seed, plan.Counts())
		}
	})
	t.Logf("nemesis seed %d (override with PM_NEMESIS_SEED)", seed)

	root := t.TempDir()
	ids := []string{"n0", "n1", "n2", "n3", "n4"}
	fleet := make(map[string]*walInstance, len(ids))
	for _, id := range ids[:3] {
		fleet[id] = newWALInstance(t, id, root)
	}

	cfg := RouterConfig{
		FailureThreshold: 2,
		HedgeDelay:       -1,
		SubmitDeadline:   5 * time.Second,
		QueryDeadline:    2 * time.Second,
		Witness:          true,
		Client:           &http.Client{Timeout: 10 * time.Second, Transport: plan.Transport("router", nil)},
	}
	for _, id := range ids[:3] {
		cfg.Instances = append(cfg.Instances, Instance{ID: id, BaseURL: fleet[id].ts.URL})
		plan.RegisterHost(hostOf(fleet[id].ts.URL), id)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	epoch0 := membershipEpoch(t, front.URL)

	// pmrouter runs a health-probe daemon; without it an instance marked
	// Down during a partition would stay Down forever after the heal
	// (gather skips Down instances, so nothing else ever retries them).
	probeCtx, stopProbe := context.WithCancel(context.Background())
	defer stopProbe()
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-probeCtx.Done():
				return
			case <-tick.C:
				rt.Probe(probeCtx)
			}
		}
	}()

	// The oracle sees the same shards over a perfect network: its top-10
	// is the ground truth the chaotic fleet's answer is graded against.
	oracle := newTierInstance(t, "oracle", 512)

	const nShards = 96
	shardName := func(i int) string { return fmt.Sprintf("nemesis/s%03d", i) }
	shardDB := func(i int) *profile.DB { return synthShard(seed+uint64(i)*13, 30+i%40) }
	captured := make(map[string]uint64, nShards)
	var wantCaptured uint64
	for i := 0; i < nShards; i++ {
		db := shardDB(i)
		captured[shardName(i)] = db.Samples() + db.Lost()
		wantCaptured += captured[shardName(i)]
		if got := submitVia(t, oracle.ts.URL, shardName(i), db); got.status != http.StatusAccepted {
			t.Fatalf("oracle submit %s: %d", shardName(i), got.status)
		}
	}
	waitForMerge(t, []*tierInstance{oracle}, nShards)
	status, truth := getJSON(t, oracle.ts.URL+"/v1/hotpcs?n=10")
	if status != http.StatusOK {
		t.Fatalf("oracle hotpcs: %d", status)
	}
	truthTop := topPCs(truth)
	if len(truthTop) < 10 {
		t.Fatalf("oracle truth has %d PCs, want 10", len(truthTop))
	}

	// 4x flood: four writers, disjoint shard sets, each shard retried
	// until a 202 lands (assertion A is their collective success).
	var acked atomic.Int64
	var wg sync.WaitGroup
	werrs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < nShards; i += 4 {
				shard := shardName(i)
				deadline := time.Now().Add(45 * time.Second)
				for {
					got, err := trySubmit(front.URL, shard, shardDB(i))
					if err == nil && got.status == http.StatusAccepted {
						acked.Add(1)
						break
					}
					if time.Now().After(deadline) {
						werrs <- fmt.Errorf("shard %s: never acknowledged (last status %d, err %v)", shard, got.status, err)
						return
					}
					time.Sleep(15 * time.Millisecond)
				}
			}
		}()
	}

	// Membership ops run against a healed network but chaotic per-request
	// faults; each op is idempotent, so the operator contract is "retry
	// until 200" — exactly what this helper does.
	var epochs []uint64
	mustOp := func(path, body string) map[string]any {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			st, rep := postJSON(t, front.URL+path, body)
			if st == http.StatusOK {
				if e, ok := rep["epoch"].(float64); ok {
					epochs = append(epochs, uint64(e))
				}
				return rep
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s %s: still failing at deadline: %v", path, body, rep)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	addInstance := func(in *walInstance) {
		plan.RegisterHost(hostOf(in.ts.URL), in.id)
		mustOp("/v1/membership/add", fmt.Sprintf(`{"id":%q,"url":%q}`, in.id, in.ts.URL))
	}

	phases := netchaos.Schedule(seed, []string{"router"}, ids, 8)
	wave := func(i int) {
		plan.ApplyPhase(phases[i])
		time.Sleep(120 * time.Millisecond)
	}

	// The schedule: 3 -> 5 (two live scale-outs), a kill+recover, then
	// 5 -> 2 (three live scale-ins), with partition phases between steps.
	wave(0)
	wave(1)
	plan.HealAll()
	fleet["n3"] = newWALInstance(t, "n3", root)
	addInstance(fleet["n3"])
	wave(2)
	plan.HealAll()
	fleet["n4"] = newWALInstance(t, "n4", root)
	addInstance(fleet["n4"])
	wave(3)

	// Process crash: n1 drops off the network mid-flood, recovers from
	// its WAL at a NEW address, and rejoins without an epoch bump (same
	// ring identity, new process).
	epochBeforeRestart := membershipEpoch(t, front.URL)
	fleet["n1"].kill(t)
	time.Sleep(200 * time.Millisecond)
	fleet["n1"].restart(t)
	addInstance(fleet["n1"])
	if got := membershipEpoch(t, front.URL); got != epochBeforeRestart {
		t.Fatalf("crash-recovery bumped the epoch %d -> %d; a replaced process is not a membership change",
			epochBeforeRestart, got)
	}

	// Assertion B: mid-chaos (a partition phase active, the flood still
	// running) the fleet's top-10 must overlap the oracle's in >= 8
	// slots. Wait for at least half the flood to land first so the
	// comparison is meaningful.
	wave(4)
	for deadline := time.Now().Add(30 * time.Second); acked.Load() < nShards/2; {
		if time.Now().After(deadline) {
			t.Fatalf("flood stalled: only %d/%d acked", acked.Load(), nShards)
		}
		time.Sleep(20 * time.Millisecond)
	}
	bestOverlap := 0
	for attempt := 0; attempt < 20; attempt++ {
		st, hot := getJSON(t, front.URL+"/v1/hotpcs?n=10")
		if st == http.StatusOK {
			if got := overlap(truthTop, topPCs(hot)); got > bestOverlap {
				bestOverlap = got
			}
			if bestOverlap >= 8 {
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if bestOverlap < 8 {
		t.Errorf("mid-chaos hot-PC overlap %d/10, want >= 8", bestOverlap)
	}

	wave(5)
	plan.HealAll()
	mustOp("/v1/membership/remove", `{"id":"n0"}`)
	wave(6)
	plan.HealAll()
	mustOp("/v1/membership/remove", `{"id":"n3"}`)
	wave(7)
	plan.HealAll()
	mustOp("/v1/membership/remove", `{"id":"n4"}`)

	// Heal everything and let the flood finish (assertion A).
	plan.HealAll()
	wg.Wait()
	close(werrs)
	for err := range werrs {
		t.Fatal(err)
	}
	plan.Wait()       // background duplicate deliveries
	rt.WitnessFlush() // in-flight witness forwards

	// Assertion F: the epoch rose monotonically, exactly once per
	// membership change (2 adds + 3 removes; the crash-recovery re-add
	// reports the unchanged current epoch).
	for i := 1; i < len(epochs); i++ {
		if epochs[i] < epochs[i-1] {
			t.Fatalf("epoch went backwards: %v", epochs)
		}
	}
	finalEpoch := membershipEpoch(t, front.URL)
	if finalEpoch != epoch0+5 {
		t.Fatalf("final epoch %d after 2 adds + 3 removes from epoch %d, want %d (trace %v)",
			finalEpoch, epoch0, epoch0+5, epochs)
	}
	_, mem := getJSON(t, front.URL+"/v1/membership")
	members := mem["instances"].(map[string]any)
	if len(members) != 2 {
		t.Fatalf("surviving membership %v, want exactly n1 and n2", members)
	}
	mig := mem["migration"].(map[string]any)
	if mig["active"].(bool) {
		t.Fatalf("migration still active after the schedule: %v", mig)
	}
	if got := uint64(mig["completed"].(float64)); got != 5 {
		t.Fatalf("migration completed count %d, want 5", got)
	}

	// Assertion C, fleet half: Σ samples+lost over the survivors must
	// equal the distinct captured total plus any standing refusal losses
	// — EXACTLY. Poll briefly: queues may still be flushing.
	live := []*walInstance{fleet["n1"], fleet["n2"]}
	refusedTotal := func() uint64 {
		var sum uint64
		for _, in := range live {
			for _, loss := range in.svc.RefusedLosses() {
				sum += loss
			}
		}
		return sum
	}
	var got, want uint64
	for deadline := time.Now().Add(15 * time.Second); ; {
		got = fleetCaptured(t, front.URL)
		want = wantCaptured + refusedTotal()
		if got == want {
			break
		}
		if time.Now().After(deadline) {
			_, raw := getJSON(t, front.URL+"/v1/stats")
			t.Fatalf("fleet captured %d, want exactly %d (distinct %d + refused %d): chaos lost or double-counted samples\nhealth: %v\nstats: %v",
				got, want, wantCaptured, refusedTotal(), rt.health.snapshot(), raw)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Assertion C, per-instance half: each survivor's books balance from
	// its own ledger dispositions — the equation every migration step
	// promised to preserve.
	for _, in := range live {
		st, ledger := getJSON(t, in.ts.URL+"/v1/ledger")
		if st != http.StatusOK {
			t.Fatalf("%s ledger: %d", in.id, st)
		}
		var lhs uint64
		for _, sh := range ledger["applied"].([]any) {
			c, ok := captured[sh.(string)]
			if !ok {
				t.Fatalf("%s applied unknown shard %q", in.id, sh)
			}
			lhs += c
		}
		for _, loss := range ledger["refused"].(map[string]any) {
			lhs += uint64(loss.(float64))
		}
		lhs += in.svc.Stats().HandoffCaptured
		rhs := in.svc.Aggregate().Samples() + in.svc.Aggregate().Lost()
		if lhs != rhs {
			t.Fatalf("%s books do not balance: applied+refused+handoff %d, samples+lost %d", in.id, lhs, rhs)
		}
	}

	// Assertion D: every shard's dedupe obligation lives on at >= 1
	// survivor, and a post-heal retry proves it end to end: 202 +
	// duplicate, never a second merge.
	admittedUnion := make(map[string]bool, nShards)
	for _, in := range live {
		for _, sh := range in.svc.AdmittedShards() {
			admittedUnion[sh] = true
		}
	}
	for i := 0; i < nShards; i++ {
		if !admittedUnion[shardName(i)] {
			t.Fatalf("shard %s admitted at no live instance after the schedule", shardName(i))
		}
	}
	for i := 0; i < nShards; i += 7 { // spot-check the wire contract
		got := submitVia(t, front.URL, shardName(i), shardDB(i))
		if got.status != http.StatusAccepted || !got.Duplicate {
			t.Fatalf("shard %s post-heal retry: %d duplicate %v — double-merge", shardName(i), got.status, got.Duplicate)
		}
	}

	// Assertion E: anti-entropy converges to a fixed point, and once
	// there, further sweeps change nothing — byte-identical answers.
	converged := false
	for sweep := 0; sweep < 10; sweep++ {
		rep := rt.AntiEntropy(context.Background())
		if rep.Resubmitted == 0 && rep.Errors == 0 {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("anti-entropy never reached a clean sweep after heal")
	}
	snapshot := func() map[string][]byte {
		out := make(map[string][]byte, len(live))
		for _, in := range live {
			resp, err := http.Get(in.ts.URL + "/v1/hotpcs?n=500")
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			out[in.id] = buf.Bytes()
		}
		return out
	}
	before := snapshot()
	rt.AntiEntropy(context.Background())
	rt.AntiEntropy(context.Background())
	after := snapshot()
	for id := range before {
		if !bytes.Equal(before[id], after[id]) {
			t.Fatalf("instance %s answer changed across converged anti-entropy sweeps — not a fixed point", id)
		}
	}

	t.Logf("nemesis done: %d shards, fleet captured %d, epochs %v, faults %+v",
		nShards, got, epochs, plan.Counts())
}
