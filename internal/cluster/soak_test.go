package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"profileme/internal/cpu"
	"profileme/internal/ingest"
	"profileme/internal/profile"
	"profileme/internal/server"
	"profileme/internal/traffic"
)

// The tier saturation soak is the acceptance test for the fleet-wide
// conservation invariant:
//
//	Σ captured over distinct (instance, shard) == Σ over instances of Samples+Lost
//
// under the worst conditions the tier promises to survive at once: a
// trace-profile flood several times over capacity, one instance
// SIGKILLed mid-flood, and one gracefully drained mid-flood with its
// aggregate handed to the ring successor. The killed instance runs a
// WAL, so the invariant holds EXACTLY through the kill: every submission
// it acknowledged (and every refusal it loss-accounted) is reconstructed
// by replay — no (instance, shard) pair is excluded, no crash-attributed
// loss is tolerated, and the recovered aggregate must be bit-identical
// to merging exactly the shards the clients saw it account for.
//
// The offered load is no longer a flat flood: it is a traffic.Spec — a
// steady compress cohort on a diurnal ramp plus an m88ksim cohort with a
// superimposed burst — so the soak exercises the same declarative
// schedule machinery pmtraffic drives, including repeated arrivals of
// the same shard (duplicate-ack dedupe under overload).

const (
	tierSoakScale    = 40_000
	tierSoakInterval = 16
)

// soakSpec declares the soak's offered load. Rates are chosen so the
// schedule offers ~2.5 arrivals per shard over 30 modeled seconds —
// delivered concurrently against 6 queue slots, that is the capacity
// flood wave 1 asserts on. The spec is seeded, so the schedule (and
// every assertion derived from it) is deterministic.
func soakSpec() *traffic.Spec {
	return &traffic.Spec{
		Version:   traffic.SpecVersion,
		Seed:      0x50a3,
		DurationS: 30,
		Interval:  tierSoakInterval,
		Cohorts: []traffic.Cohort{
			{
				Name: "steady", Bench: "compress", Scale: tierSoakScale, Shards: 16,
				BaseRate: 1.0,
				Diurnal:  &traffic.Diurnal{Amplitude: 0.8, PeriodS: 30},
			},
			{
				Name: "burst", Bench: "m88ksim", Scale: tierSoakScale, Shards: 8,
				BaseRate: 0.3,
				Bursts:   []traffic.Burst{{AtS: 5, DurS: 10, RatePerS: 2}},
			},
			// Small heterogeneous cohorts so the flood mixes all three
			// extension kernels' profile shapes, not just one.
			{Name: "stencil", Bench: "swim", Scale: tierSoakScale, Shards: 3, BaseRate: 0.25},
			{Name: "sorter", Bench: "eqntott", Scale: tierSoakScale, Shards: 3, BaseRate: 0.25},
		},
	}
}

func topPCSet(pcs []uint64) map[uint64]bool {
	set := make(map[uint64]bool, len(pcs))
	for _, pc := range pcs {
		set[pc] = true
	}
	return set
}

func TestTierSaturationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: real shard simulations")
	}

	// Materialize the spec's shard payloads: real simulated shards, one
	// per (cohort, index), differing by data seed and sampling seed — the
	// independent sampled runs the paper's aggregation argument assumes.
	sp := soakSpec()
	pools, err := sp.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	byShard := make(map[string]traffic.Payload)
	var order []string // spec order: deterministic iteration for merges and sums
	for _, c := range sp.Cohorts {
		for _, p := range pools[c.Name] {
			byShard[p.Shard] = p
			order = append(order, p.Shard)
		}
	}
	captured := func(s string) uint64 { return byShard[s].Captured }

	// Single-instance baseline: every shard merged, nothing lost.
	baseline := profile.NewDB(tierSoakInterval, 0, cpu.DefaultConfig().SustainedIssueWidth)
	for _, s := range order {
		if err := baseline.Merge(byShard[s].DB); err != nil {
			t.Fatalf("baseline merge %s: %v", s, err)
		}
	}
	var baselineTop []uint64
	for _, a := range baseline.HotPCs(10) {
		baselineTop = append(baselineTop, a.PC)
	}
	if len(baselineTop) < 10 {
		t.Fatalf("baseline has only %d hot PCs", len(baselineTop))
	}

	// The deterministic arrival schedule: ramp + burst phases, with some
	// shards arriving more than once (those re-arrivals are the duplicate
	// submissions the admission ledger must dedupe).
	sched, err := sp.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) <= len(order) {
		t.Fatalf("schedule too thin for a flood: %d arrivals over %d shards", len(sched), len(order))
	}

	// Three instances, queue depth 2 each — the schedule's arrivals
	// against 6 queue slots is the capacity flood. Aggregators are held
	// so wave 1's outcome is overload, not a race. c2 — the instance the
	// test will SIGKILL — runs a WAL, so its acknowledgements survive the
	// kill.
	ids := []string{"c0", "c1", "c2"}
	byID := make(map[string]*tierInstance, len(ids))
	peers := make(map[string]string, len(ids))
	c2WAL := filepath.Join(t.TempDir(), "wal")
	var cfg RouterConfig
	for _, id := range ids {
		in := &tierInstance{id: id}
		icfg := ingest.Config{
			QueueDepth: 2,
			Interval:   tierSoakInterval,
			Width:      cpu.DefaultConfig().SustainedIssueWidth,
		}
		if id == "c2" {
			icfg.WALDir = c2WAL
		}
		svc, err := ingest.NewService(icfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		in.svc = svc
		in.ts = httptest.NewServer(server.New(server.Config{Instance: id}, svc).Handler())
		defer in.ts.Close()
		byID[id] = in
		peers[id] = in.ts.URL
		cfg.Instances = append(cfg.Instances, Instance{ID: id, BaseURL: in.ts.URL})
	}
	cfg.FailureThreshold = 2
	cfg.HedgeDelay = -1 // hedging is covered elsewhere; keep the flood deterministic
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// The tier-side ledger tally, built ONLY from what clients can see:
	// the router's augmented responses. acc[s] is where the shard finally
	// merged; refusedAt[s] the instances whose loss ledger recorded it.
	var mu sync.Mutex
	acc := make(map[string]string)
	queued := make(map[string]bool) // non-duplicate 202s: true queue admissions
	refusedAt := make(map[string]map[string]bool)
	noteRefusal := func(s, instance string) {
		if instance == "" {
			return
		}
		if refusedAt[s] == nil {
			refusedAt[s] = make(map[string]bool)
		}
		refusedAt[s][instance] = true
	}
	submit := func(s string) submitResp {
		got := submitVia(t, front.URL, s, byShard[s].DB)
		mu.Lock()
		defer mu.Unlock()
		for _, id := range got.RefusedBy {
			noteRefusal(s, id)
		}
		switch got.status {
		case http.StatusAccepted:
			// A duplicate 202 is a receipt that the shard is accounted at
			// this instance — queued, merged, or (when a concurrent twin's
			// reservation was backed out to a 429) loss-accounted there.
			// Either way the (instance, shard) pair is on the books
			// exactly once, so it is a final outcome; only non-duplicate
			// 202s prove a queue slot was consumed.
			acc[s] = got.Instance
			if !got.Duplicate {
				queued[s] = true
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// 429 queue-full and 503 draining both record the shard's
			// captured samples as loss at the refusing instance; the
			// router's "no-instances" 503 carries no instance and records
			// nothing.
			noteRefusal(s, got.Instance)
		default:
			t.Errorf("shard %s: unexpected status %d", s, got.status)
		}
		return got
	}

	// Wave 1: the trace-profile flood, aggregators held — every scheduled
	// arrival (duplicates included) delivered concurrently. Queries must
	// keep answering 200 mid-flood (the stats path reads atomic counters,
	// it never contends with merges).
	offered := make(map[string]bool)
	var wg sync.WaitGroup
	for _, a := range sched {
		s := pools[a.Cohort][a.Shard].Shard
		offered[s] = true
		wg.Add(1)
		go func(s string) { defer wg.Done(); submit(s) }(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			for _, path := range []string{"/v1/stats", "/v1/hotpcs?n=5"} {
				status, _ := getJSON(t, front.URL+path)
				if status != http.StatusOK {
					t.Errorf("%s mid-flood: status %d", path, status)
				}
			}
		}
	}()
	wg.Wait()

	mu.Lock()
	wave1Queued := len(queued)
	mu.Unlock()
	if wave1Queued > 6 {
		t.Fatalf("wave 1 queued %d distinct shards with 6 queue slots", wave1Queued)
	}
	if len(offered)-wave1Queued < 2*wave1Queued {
		t.Fatalf("flood too gentle: %d distinct shards queued, %d offered", wave1Queued, len(offered))
	}

	// Mid-flood chaos begins: aggregators start draining the backlog,
	// then c2 is SIGKILLed (its listener dies with whatever it holds) and
	// c1 starts a graceful drain while refused shards are still retrying.
	for _, in := range byID {
		in.svc.Start()
	}
	// The kill: the listener dies mid-traffic, then the WAL handle drops
	// with the process. Everything c2 durably acknowledged is on disk.
	byID["c2"].ts.Close()
	byID["c2"].svc.CloseWAL()

	// Every shard — scheduled or not — retries to a final outcome; shards
	// the thinned schedule never emitted join here, so the conservation
	// sum spans the whole spec.
	var retries sync.WaitGroup
	for _, s := range order {
		mu.Lock()
		_, done := acc[s]
		mu.Unlock()
		if done {
			continue
		}
		retries.Add(1)
		go func(s string) {
			defer retries.Done()
			deadline := time.Now().Add(30 * time.Second)
			for {
				if got := submit(s); got.status == http.StatusAccepted {
					return
				}
				if time.Now().After(deadline) {
					t.Errorf("shard %s never accepted on retry", s)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(s)
	}
	time.Sleep(5 * time.Millisecond)
	byID["c1"].svc.BeginDrain() // the graceful drain begins mid-retry-flood
	retries.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every shard now has a final outcome at a live instance or died with
	// c2. Let c0 finish its backlog (c1's flushes below).
	mu.Lock()
	c0Accepted := 0
	for _, id := range acc {
		if id == "c0" {
			c0Accepted++
		}
	}
	mu.Unlock()
	waitDeadline := time.Now().Add(30 * time.Second)
	for int(byID["c0"].svc.Stats().Merged) < c0Accepted {
		if time.Now().After(waitDeadline) {
			t.Fatalf("c0 merged %d of %d accepted shards", byID["c0"].svc.Stats().Merged, c0Accepted)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Graceful drain of c1 completes: flush, then hand the aggregate —
	// samples AND standing refusal losses — to the ring successor. c2 is
	// dead, so the handoff walk must skip it and land on c0 without
	// losing a single captured sample.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := byID["c1"].svc.Flush(ctx); err != nil {
		t.Fatalf("c1 flush: %v", err)
	}
	c1Stats := byID["c1"].svc.Stats()
	wantMigrated := c1Stats.Samples + c1Stats.Lost
	delete(peers, "c1")
	res, err := DrainHandoff(ctx, byID["c1"].svc, nil, "c1", peers, 0, 0, nil)
	if err != nil {
		t.Fatalf("c1 drain handoff: %v", err)
	}
	if res.Instance != "c0" {
		t.Fatalf("handoff landed on %s, want the live instance c0", res.Instance)
	}
	if res.Captured != wantMigrated {
		t.Fatalf("graceful drain lost samples: handoff ack %d, c1 held %d", res.Captured, wantMigrated)
	}
	byID["c1"].ts.Close() // the daemon exits after a successful handoff

	// ---- crash recovery: c2 rises from its WAL ----
	//
	// A replacement process replays checkpoint (none here) + WAL tail.
	// Every admit record c2 staged before answering — acknowledgements
	// AND refusals — replays as a merge: a refused shard's samples count
	// once as Samples instead of standing as loss, so recovery carries
	// zero crash-attributed loss.
	c2rec, rinfo, err := ingest.Recover(ingest.Config{
		QueueDepth: 64,
		Interval:   tierSoakInterval,
		Width:      cpu.DefaultConfig().SustainedIssueWidth,
		WALDir:     c2WAL,
	})
	if err != nil {
		t.Fatalf("c2 recovery: %v", err)
	}
	defer c2rec.CloseWAL()
	if rinfo.Replayed == 0 {
		t.Fatal("c2 recovery replayed nothing despite accepted submissions")
	}
	c2rec.Start()

	// Zero crash loss, exactly: every shard the clients saw c2 account
	// for (202 acknowledgement or 429 refusal) is in the recovered
	// ledger, and nothing the kill touched is recorded as lost.
	mu.Lock()
	c2Shards := make(map[string]bool)
	for _, s := range order {
		if acc[s] == "c2" || refusedAt[s]["c2"] {
			c2Shards[s] = true
		}
	}
	mu.Unlock()
	recLedger := make(map[string]bool)
	for _, sh := range c2rec.AdmittedShards() {
		recLedger[sh] = true
	}
	for s := range c2Shards {
		if !recLedger[s] {
			t.Errorf("shard %s acknowledged by c2 but missing from the recovered ledger", s)
		}
	}
	if lost := c2rec.Aggregate().Lost(); lost != 0 {
		t.Fatalf("crash-attributed loss after recovery: %d (want 0)", lost)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The recovered aggregate is bit-identical to merging exactly the
	// shards c2 accounted for — the EXACT assertion that replaces the old
	// ≥8/10 hot-PC-overlap tolerance (which papered over the samples a
	// kill used to destroy).
	expect := profile.NewDB(tierSoakInterval, 0, cpu.DefaultConfig().SustainedIssueWidth)
	for _, s := range order {
		if c2Shards[s] {
			if err := expect.Merge(byShard[s].DB); err != nil {
				t.Fatalf("expected-aggregate merge %s: %v", s, err)
			}
		}
	}
	var wantC2, gotC2 bytes.Buffer
	if err := expect.Save(&wantC2); err != nil {
		t.Fatal(err)
	}
	if err := c2rec.Aggregate().Save(&gotC2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotC2.Bytes(), wantC2.Bytes()) {
		t.Fatalf("recovered c2 aggregate diverged from exact expectation: samples %d want %d, lost %d want %d",
			c2rec.Aggregate().Samples(), expect.Samples(), c2rec.Aggregate().Lost(), expect.Lost())
	}

	// ---- the fleet-wide conservation invariant, exact ----
	//
	// c0 holds its own shards plus c1's migrated aggregate; recovered c2
	// holds everything it ever accounted. A (instance, shard) pair is
	// recorded iff the shard finally merged there or its refusal was
	// accounted there — NO pair is excluded; the kill destroyed nothing,
	// and the schedule's duplicate arrivals deduped instead of double-
	// counting.
	mu.Lock()
	var wantSum uint64
	for _, s := range order {
		if acc[s] == "" {
			t.Errorf("shard %s has no final outcome", s)
			continue
		}
		wantSum += captured(s)
		for id := range refusedAt[s] {
			if acc[s] == id {
				continue // later accepted at the same instance: loss reversed (or replay-deduped)
			}
			wantSum += captured(s)
		}
	}
	mu.Unlock()
	agg := byID["c0"].svc.Aggregate()
	got := agg.Samples() + agg.Lost() + c2rec.Aggregate().Samples() + c2rec.Aggregate().Lost()
	if got != wantSum {
		t.Fatalf("fleet conservation violated: Samples+Lost (c0 + recovered c2) = %d, Σ captured over recorded (instance,shard) = %d",
			got, wantSum)
	}

	// The recovered c2 rejoins the ring under its old identity, and the
	// router's stats rollup over reachable instances now reproduces the
	// invariant sum exactly, while saying out loud that the view is
	// partial (c1 handed off and left).
	c2TS := httptest.NewServer(server.New(server.Config{Instance: "c2"}, c2rec).Handler())
	defer c2TS.Close()
	rt.SetInstance("c2", c2TS.URL)
	status, stats := getJSON(t, front.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats after the storm: %d", status)
	}
	if !stats["partial"].(bool) {
		t.Fatal("one instance dead but the stats rollup is not marked partial")
	}
	fleet := stats["fleet"].(map[string]any)
	if got := uint64(fleet["samples"].(float64) + fleet["lost"].(float64)); got != wantSum {
		t.Fatalf("router fleet rollup %d, invariant sum %d", got, wantSum)
	}
	if got := uint64(fleet["handoffs_in"].(float64)); got != 1 {
		t.Fatalf("fleet handoffs_in %d, want 1", got)
	}

	// Queries still answer through the storm's aftermath; the ranking
	// itself needs no tolerance band anymore — the per-instance aggregates
	// were asserted bit-exact above, so the rollup is arithmetic, not
	// hope. (baselineTop pins that the workload produced a meaningful
	// ranking at all.)
	if len(topPCSet(baselineTop)) < 10 {
		t.Fatal("baseline top-10 collapsed")
	}
	status, hot := getJSON(t, front.URL+"/v1/hotpcs?n=10")
	if status != http.StatusOK {
		t.Fatalf("hotpcs after the storm: %d", status)
	}
	if !hot["partial"].(bool) {
		t.Fatal("hotpcs not marked partial with an instance missing")
	}
	if rows := hot["pcs"].([]any); len(rows) < 10 {
		t.Fatalf("tier hotpcs returned %d rows, want 10", len(rows))
	}
}
