// Package faultinject is the adversarial side of the reproduction: a
// deterministic, seeded fault plan that perturbs the sampling stack the way
// real machines do. The paper's statistical argument (§4.3, §6) is that
// dropped and delayed samples are acceptable *because the losses are
// random*; this package exists to make that claim falsifiable. A Plan can
//
//   - drop profile interrupts (the raise is swallowed; the buffer
//     overflows and the hardware sheds samples),
//   - delay interrupt delivery by N cycles, which in hardware lets later
//     completions overwrite the profile registers,
//   - coalesce adjacent interrupts into one delayed delivery,
//   - stall the software drain (a busy handler), starving the buffer, and
//   - bit-flip fields of in-flight core.Sample records.
//
// core.Unit and cpu.Pipeline expose hook interfaces (core.FaultInjector,
// cpu.FaultInjector); Plan implements both. Everything is driven by one
// seeded RNG consulted in simulation order, so a (seed, rates) pair
// replays exactly — chaos runs are as reproducible as clean ones.
package faultinject

import (
	"fmt"

	"profileme/internal/core"
	"profileme/internal/stats"
)

// Rates parameterizes a Plan: per-fault probabilities in [0, 1] plus the
// durations the timing faults insert.
type Rates struct {
	// DropInterrupt is the probability an interrupt raise is swallowed.
	DropInterrupt float64
	// DelayInterrupt is the probability a raised interrupt's delivery is
	// postponed by DelayCycles.
	DelayInterrupt float64
	DelayCycles    int64
	// CoalesceInterrupt is the probability a delivery is held for
	// CoalesceCycles so it merges with samples completing behind it.
	CoalesceInterrupt float64
	CoalesceCycles    int64
	// StallDrain is the probability the software drain is busy for
	// StallCycles once the interrupt fires (handler preempted, cache-cold
	// — the buffer keeps overflowing meanwhile).
	StallDrain  float64
	StallCycles int64
	// Overwrite is the probability a sample completing into a full buffer
	// overwrites the newest register set instead of being shed — the
	// overwrite hazard of delayed delivery.
	Overwrite float64
	// CorruptSample is the per-sample probability of one random bit flip
	// in one field of a drained record.
	CorruptSample float64
}

// Uniform returns Rates applying one combined rate to every fault kind,
// with delivery-perturbation durations sized to a few buffer-fill times —
// the knob behind pmsim -chaos and the soak sweep.
func Uniform(rate float64) Rates {
	return Rates{
		DropInterrupt:     rate,
		DelayInterrupt:    rate,
		DelayCycles:       400,
		CoalesceInterrupt: rate,
		CoalesceCycles:    200,
		StallDrain:        rate,
		StallCycles:       300,
		Overwrite:         rate,
		CorruptSample:     rate,
	}
}

// Validate reports a Rates problem, or nil.
func (r Rates) Validate() error {
	probs := []struct {
		name string
		p    float64
	}{
		{"drop-interrupt", r.DropInterrupt},
		{"delay-interrupt", r.DelayInterrupt},
		{"coalesce-interrupt", r.CoalesceInterrupt},
		{"stall-drain", r.StallDrain},
		{"overwrite", r.Overwrite},
		{"corrupt-sample", r.CorruptSample},
	}
	for _, pr := range probs {
		if pr.p < 0 || pr.p > 1 || pr.p != pr.p {
			return fmt.Errorf("faultinject: %s rate %v outside [0, 1]", pr.name, pr.p)
		}
	}
	if r.DelayCycles < 0 || r.CoalesceCycles < 0 || r.StallCycles < 0 {
		return fmt.Errorf("faultinject: negative fault duration")
	}
	return nil
}

// Counts is the plan's own ledger of what it injected, for reconciling
// against the victim's loss accounting.
type Counts struct {
	InterruptsDropped   uint64
	InterruptsDelayed   uint64
	InterruptsCoalesced uint64
	DrainsStalled       uint64
	HoldCycles          int64 // total delivery postponement injected
	Overwrites          uint64
	SamplesCorrupted    uint64
}

// Plan is a seeded fault-injection plan. It implements core.FaultInjector
// and cpu.FaultInjector; attach the same Plan to both layers so one RNG
// stream drives the whole stack. Not safe for concurrent use — like the
// Unit it perturbs, it is clocked by a single simulated pipeline.
type Plan struct {
	rng    *stats.RNG
	rates  Rates
	counts Counts
}

// NewPlan returns a Plan drawing from seed.
func NewPlan(seed uint64, r Rates) (*Plan, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &Plan{rng: stats.NewRNG(seed), rates: r}, nil
}

// MustNewPlan is NewPlan, panicking on error.
func MustNewPlan(seed uint64, r Rates) *Plan {
	p, err := NewPlan(seed, r)
	if err != nil {
		panic(err)
	}
	return p
}

// Rates returns the plan's configured rates.
func (p *Plan) Rates() Rates { return p.rates }

// Counts returns what the plan has injected so far.
func (p *Plan) Counts() Counts { return p.counts }

// SuppressInterrupt implements core.FaultInjector: drop this raise.
func (p *Plan) SuppressInterrupt() bool {
	if !p.rng.Bool(p.rates.DropInterrupt) {
		return false
	}
	p.counts.InterruptsDropped++
	return true
}

// OverwriteOnFull implements core.FaultInjector: a completion into a full
// buffer clobbers the newest register set.
func (p *Plan) OverwriteOnFull() bool {
	if !p.rng.Bool(p.rates.Overwrite) {
		return false
	}
	p.counts.Overwrites++
	return true
}

// CorruptDrained implements core.FaultInjector: flip one random bit in one
// field of each unlucky sample.
func (p *Plan) CorruptDrained(ss []core.Sample) int {
	n := 0
	for i := range ss {
		if !p.rng.Bool(p.rates.CorruptSample) {
			continue
		}
		r := &ss[i].First
		if ss[i].Paired && p.rng.Bool(0.5) {
			r = &ss[i].Second
		}
		p.corruptRecord(r)
		n++
	}
	p.counts.SamplesCorrupted += uint64(n)
	return n
}

// corruptRecord flips one bit in one randomly chosen field. Some flips are
// detectable by software validation (undefined event bits, impossible
// timestamps), others are silent noise — both matter for the degradation
// story.
func (p *Plan) corruptRecord(r *core.Record) {
	switch p.rng.Intn(7) {
	case 0:
		r.PC ^= 1 << uint(p.rng.Intn(64))
	case 1:
		r.Addr ^= 1 << uint(p.rng.Intn(64))
	case 2:
		r.Events ^= core.Event(1) << uint(p.rng.Intn(32))
	case 3:
		r.Trap ^= core.TrapReason(1) << uint(p.rng.Intn(8))
	case 4:
		r.History ^= 1 << uint(p.rng.Intn(64))
	case 5:
		r.StageCycle[p.rng.Intn(core.NumStages)] ^= 1 << uint(p.rng.Intn(63))
	default:
		r.LoadComplete ^= 1 << uint(p.rng.Intn(63))
	}
}

// HoldInterrupt implements cpu.FaultInjector: consulted once per raised
// interrupt, it returns how many cycles delivery is withheld — the sum of
// an injected delivery delay, a coalescing window, and a stalled drain.
func (p *Plan) HoldInterrupt() int64 {
	var hold int64
	if p.rng.Bool(p.rates.DelayInterrupt) {
		hold += p.rates.DelayCycles
		p.counts.InterruptsDelayed++
	}
	if p.rng.Bool(p.rates.CoalesceInterrupt) {
		hold += p.rates.CoalesceCycles
		p.counts.InterruptsCoalesced++
	}
	if p.rng.Bool(p.rates.StallDrain) {
		hold += p.rates.StallCycles
		p.counts.DrainsStalled++
	}
	p.counts.HoldCycles += hold
	return hold
}
