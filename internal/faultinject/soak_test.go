package faultinject_test

import (
	"testing"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/faultinject"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

// The chaos soak drives the full sampling stack — pipeline, ProfileMe
// unit, interrupt delivery, software database — under increasing fault
// rates and checks the paper's degradation claim (§6: losses are
// acceptable as long as they are statistically unbiased): the hot-PC
// ranking survives, loss-corrected estimates stay near ground truth, and
// observed loss grows with the injected rate rather than cliffing.

const (
	soakScale    = 200_000
	soakInterval = 16
)

type soakRun struct {
	db    *profile.DB
	res   cpu.Result
	truth []cpu.PCStats
	stats core.Stats
}

// runChaos runs bench through the full stack with the given fault plan
// (nil means fault-free) and wires the loss accounting exactly as pmsim
// does.
func runChaos(t *testing.T, bench string, rates *faultinject.Rates, seed uint64) soakRun {
	t.Helper()
	b, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no benchmark %q", bench)
	}
	prog := b.Build(soakScale)

	ccfg := cpu.DefaultConfig()
	unit, err := core.NewUnit(core.Config{
		MeanInterval: soakInterval,
		Window:       80,
		BufferDepth:  8,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := profile.NewDB(soakInterval, 80, ccfg.SustainedIssueWidth)
	pipe, err := cpu.New(prog, sim.NewMachineSource(sim.New(prog), 0), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe.AttachProfileMe(unit, db.Handler())
	if rates != nil {
		plan, err := faultinject.NewPlan(seed, *rates)
		if err != nil {
			t.Fatal(err)
		}
		unit.AttachFaults(plan)
		pipe.AttachFaults(plan)
	}
	res, err := pipe.Run(0)
	if err != nil {
		t.Fatalf("%s: run failed under faults: %v", bench, err)
	}
	st := unit.Stats()
	if rates != nil {
		db.RecordLoss(st.SamplesDropped + st.SamplesOverwritten)
	}
	if captured := st.Captured(); captured > 0 {
		db.S = float64(res.FetchedOnPath) / float64(captured)
	}
	return soakRun{db: db, res: res, truth: pipe.PerPC(), stats: st}
}

func topPCs(db *profile.DB, n int) []uint64 {
	var pcs []uint64
	for _, a := range db.HotPCs(n) {
		pcs = append(pcs, a.PC)
	}
	return pcs
}

func overlap(a, b []uint64) int {
	set := make(map[uint64]bool, len(a))
	for _, pc := range a {
		set[pc] = true
	}
	n := 0
	for _, pc := range b {
		if set[pc] {
			n++
		}
	}
	return n
}

// retireTruth sums ground-truth retire counts over the given PCs.
func retireTruth(truth []cpu.PCStats, pcs []uint64) float64 {
	byPC := make(map[uint64]uint64, len(truth))
	for _, s := range truth {
		byPC[s.PC] = s.Retired
	}
	var sum float64
	for _, pc := range pcs {
		sum += float64(byPC[pc])
	}
	return sum
}

// retireEstimate sums loss-corrected retire estimates over the given PCs.
func retireEstimate(db *profile.DB, pcs []uint64) float64 {
	var sum float64
	for _, pc := range pcs {
		sum += db.EstimatedEventCount(pc, core.EvRetired)
	}
	return sum
}

func TestChaosSoakDegradation(t *testing.T) {
	for _, bench := range []string{"compress", "perl"} {
		t.Run(bench, func(t *testing.T) {
			clean := runChaos(t, bench, nil, 0)
			cleanTop := topPCs(clean.db, 10)
			if len(cleanTop) < 10 {
				t.Fatalf("fault-free run produced only %d hot PCs", len(cleanTop))
			}

			prevLoss := 0.0
			for _, rate := range []float64{0.1, 0.2, 0.3} {
				rates := faultinject.Uniform(rate)
				run := runChaos(t, bench, &rates, 99)

				// The hot-instruction ranking must survive the faults.
				if got := overlap(cleanTop, topPCs(run.db, 10)); got < 8 {
					t.Errorf("rate %.0f%%: top-10 overlap %d/10, want >= 8",
						100*rate, got)
				}

				// Loss-corrected retire estimates stay near ground truth,
				// aggregated over the fault-free hot set (per-PC noise and
				// the rare corrupted-but-sane PC flip average out).
				truth := retireTruth(run.truth, cleanTop)
				est := retireEstimate(run.db, cleanTop)
				if rel := (est - truth) / truth; rel < -0.15 || rel > 0.15 {
					t.Errorf("rate %.0f%%: hot-set retire estimate %.0f vs truth %.0f (%.1f%% off)",
						100*rate, est, truth, 100*rel)
				}

				// The whole-program estimate holds up too.
				total := retireEstimate(run.db, allPCs(run.db))
				if rel := (total - float64(run.res.Retired)) / float64(run.res.Retired); rel < -0.15 || rel > 0.15 {
					t.Errorf("rate %.0f%%: total retire estimate %.0f vs %d retired (%.1f%% off)",
						100*rate, total, run.res.Retired, 100*rel)
				}

				// Degradation is graceful: observed loss grows with the
				// injected rate instead of collapsing at a threshold.
				loss := run.db.LossRate()
				if loss <= prevLoss {
					t.Errorf("rate %.0f%%: loss rate %.3f not above previous %.3f",
						100*rate, loss, prevLoss)
				}
				if loss > 0.75 {
					t.Errorf("rate %.0f%%: loss rate %.3f — degradation is a cliff, not a slope",
						100*rate, loss)
				}
				prevLoss = loss
			}
		})
	}
}

func allPCs(db *profile.DB) []uint64 { return db.PCs() }

// TestChaosTotalInterruptLoss drops every profiling interrupt: the
// simulation must still terminate cleanly (the pipeline never depends on
// delivery for forward progress), with the buffer shedding samples and
// the end-of-run drain recovering what little remains.
func TestChaosTotalInterruptLoss(t *testing.T) {
	rates := faultinject.Rates{DropInterrupt: 1}
	run := runChaos(t, "compress", &rates, 7)
	if run.res.Retired == 0 {
		t.Fatal("no instructions retired")
	}
	if run.stats.Interrupts != 0 {
		t.Fatalf("%d interrupts delivered despite total drop", run.stats.Interrupts)
	}
	if run.stats.InterruptsSuppressed == 0 {
		t.Fatal("no interrupts suppressed — fault plan was not consulted")
	}
	if run.stats.SamplesDropped == 0 {
		t.Fatal("buffer never overflowed — scenario did not stress the drain")
	}
	// The final drain still salvages one buffer's worth of samples.
	if run.db.Samples() == 0 {
		t.Fatal("end-of-run drain recovered nothing")
	}
	if run.db.LossRate() < 0.5 {
		t.Fatalf("loss rate %.3f implausibly low for total interrupt loss", run.db.LossRate())
	}
}
