package faultinject

import (
	"testing"

	"profileme/internal/core"
)

func TestRatesValidate(t *testing.T) {
	bad := []Rates{
		{DropInterrupt: -0.1},
		{CorruptSample: 1.5},
		{DelayInterrupt: 0.5, DelayCycles: -1},
		{StallDrain: 0.5, StallCycles: -7},
	}
	for i, r := range bad {
		if _, err := NewPlan(1, r); err == nil {
			t.Errorf("case %d: bad rates accepted", i)
		}
	}
	if _, err := NewPlan(1, Uniform(0.3)); err != nil {
		t.Fatal(err)
	}
	if err := Uniform(1).Validate(); err != nil {
		t.Fatalf("full-rate plan rejected: %v", err)
	}
}

// drive exercises every hook a fixed number of times and returns the
// decision trace, for determinism checks.
func drive(p *Plan) []int64 {
	var trace []int64
	ss := make([]core.Sample, 4)
	for i := 0; i < 200; i++ {
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		trace = append(trace, b2i(p.SuppressInterrupt()), b2i(p.OverwriteOnFull()),
			p.HoldInterrupt(), int64(p.CorruptDrained(ss)))
	}
	return trace
}

func TestPlanDeterministic(t *testing.T) {
	a := MustNewPlan(42, Uniform(0.3))
	b := MustNewPlan(42, Uniform(0.3))
	ta, tb := drive(a), drive(b)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("decision %d diverged: %d vs %d", i, ta[i], tb[i])
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverged: %+v vs %+v", a.Counts(), b.Counts())
	}
	c := MustNewPlan(43, Uniform(0.3))
	tc := drive(c)
	same := true
	for i := range ta {
		if ta[i] != tc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical traces")
	}
}

func TestZeroRatePlanIsTransparent(t *testing.T) {
	p := MustNewPlan(7, Rates{})
	ss := []core.Sample{{}, {}}
	for i := 0; i < 100; i++ {
		if p.SuppressInterrupt() || p.OverwriteOnFull() || p.HoldInterrupt() != 0 ||
			p.CorruptDrained(ss) != 0 {
			t.Fatal("zero-rate plan injected a fault")
		}
	}
	if p.Counts() != (Counts{}) {
		t.Fatalf("zero-rate plan counted faults: %+v", p.Counts())
	}
}

func TestFullRatePlan(t *testing.T) {
	p := MustNewPlan(7, Uniform(1))
	if !p.SuppressInterrupt() || !p.OverwriteOnFull() {
		t.Fatal("full-rate plan skipped a fault")
	}
	r := Uniform(1)
	if h := p.HoldInterrupt(); h != r.DelayCycles+r.CoalesceCycles+r.StallCycles {
		t.Fatalf("hold = %d, want sum of durations", h)
	}
	ss := make([]core.Sample, 8)
	if n := p.CorruptDrained(ss); n != 8 {
		t.Fatalf("corrupted %d of 8", n)
	}
	c := p.Counts()
	if c.InterruptsDropped != 1 || c.Overwrites != 1 || c.InterruptsDelayed != 1 ||
		c.InterruptsCoalesced != 1 || c.DrainsStalled != 1 || c.SamplesCorrupted != 8 {
		t.Fatalf("counts wrong: %+v", c)
	}
}

// TestCorruptFlipsExactlyOneBit checks each corruption is a single bit flip
// in a single field: software must face point damage, not wholesale
// garbage.
func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	p := MustNewPlan(11, Rates{CorruptSample: 1})
	for i := 0; i < 500; i++ {
		// Zero-valued records make flipped bits visible as popcounts.
		ss := []core.Sample{{}}
		p.CorruptDrained(ss)
		mutated := ss[0]
		bits := popcount64(mutated.First.PC) + popcount64(mutated.First.Addr) +
			popcount64(uint64(mutated.First.Events)) + popcount64(uint64(mutated.First.Trap)) +
			popcount64(mutated.First.History) + popcount64(uint64(mutated.First.FetchSeq))
		for _, c := range mutated.First.StageCycle {
			bits += popcount64(uint64(c))
		}
		bits += popcount64(uint64(mutated.First.LoadComplete))
		if bits != 1 {
			t.Fatalf("iteration %d: %d bits flipped, want 1 (%+v)", i, bits, mutated.First)
		}
	}
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
