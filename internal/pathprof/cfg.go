// Package pathprof implements the paper's §5.3 statistical path profiling:
// given a sampled instruction's PC and the global branch history register
// captured in its ProfileMe record, walk backward through the program's
// control-flow graph to find the execution path segments consistent with
// the recorded branch directions. Three reconstruction schemes are
// provided, matching Figure 6: execution counts only, history bits, and
// history bits plus the second PC of a paired sample.
package pathprof

import (
	"profileme/internal/isa"
)

// PredKind classifies how control flowed from a predecessor instruction to
// the current one in the dynamic fetch stream.
type PredKind uint8

// Predecessor kinds.
const (
	// PredFall: the previous instruction fell through (non-control, or a
	// call returning... no — calls are PredRet sites; this is plain
	// sequential flow).
	PredFall PredKind = iota
	// PredCondNotTaken: the previous instruction is a conditional branch
	// that fell through (consumes a history bit, value 0).
	PredCondNotTaken
	// PredCondTaken: a conditional branch jumped here (consumes a history
	// bit, value 1).
	PredCondTaken
	// PredJump: an unconditional direct branch jumped here.
	PredJump
	// PredCall: a call instruction jumped here (this PC is a procedure
	// entry).
	PredCall
	// PredRet: a return instruction jumped here (this PC is a return
	// site; the predecessor is a ret in the called procedure).
	PredRet
	// PredIndirect: an indirect jump observed (dynamically) to land here.
	PredIndirect
)

// Pred is one backward-step candidate.
type Pred struct {
	PC       uint64 // predecessor instruction
	Kind     PredKind
	TakesBit bool // consumes a history bit
	BitValue bool // required value of that bit (taken = true)
}

// Edge is a dynamic control-flow edge (from the instruction at From to the
// instruction at To, in fetch order).
type Edge struct{ From, To uint64 }

// CFG holds the static control-flow structure of a program plus observed
// dynamic edges for indirect transfers, preprocessed for backward walking.
type CFG struct {
	prog *isa.Program
	// preds[pc/4] lists dynamic-stream predecessors of each instruction,
	// excluding interprocedural edges, which are resolved per mode.
	preds [][]Pred
	// callPreds[pc/4] lists call instructions targeting this PC.
	callPreds [][]uint64
	// retPreds[pc/4] lists the return instructions that can precede this
	// PC (the rets of the procedure called by the jsr at pc-4).
	retPreds [][]uint64
	// edgeCount holds dynamic edge execution counts (for the
	// execution-counts scheme); populated by AddEdgeCounts.
	edgeCount map[Edge]uint64
}

// NewCFG builds the static CFG for prog.
func NewCFG(prog *isa.Program) *CFG {
	n := prog.Len()
	g := &CFG{
		prog:      prog,
		preds:     make([][]Pred, n),
		callPreds: make([][]uint64, n),
		retPreds:  make([][]uint64, n),
		edgeCount: make(map[Edge]uint64),
	}

	// Collect the return instructions of each procedure.
	retsOf := make(map[string][]uint64)
	for _, pr := range prog.Procs {
		for pc := pr.Start; pc < pr.End; pc += isa.InstBytes {
			if in, ok := prog.At(pc); ok && in.Op.Class() == isa.ClassRet {
				retsOf[pr.Name] = append(retsOf[pr.Name], pc)
			}
		}
	}

	idx := func(pc uint64) int { return int(pc / isa.InstBytes) }

	for i := 0; i < n; i++ {
		pc := uint64(i) * isa.InstBytes
		in, _ := prog.At(pc)

		// Sequential successor (pc+4) predecessors.
		nextPC := pc + isa.InstBytes
		if int(nextPC/isa.InstBytes) < n {
			j := idx(nextPC)
			switch in.Op.Class() {
			case isa.ClassBranch:
				g.preds[j] = append(g.preds[j],
					Pred{PC: pc, Kind: PredCondNotTaken, TakesBit: true, BitValue: false})
			case isa.ClassJump, isa.ClassJmpInd, isa.ClassRet:
				// No fallthrough.
			case isa.ClassCall:
				// nextPC is a return site: preceded dynamically by the
				// callee's returns.
				if callee := prog.ProcAt(in.Target); callee != nil {
					for _, retPC := range retsOf[callee.Name] {
						g.retPreds[j] = append(g.retPreds[j], retPC)
					}
				}
			default:
				g.preds[j] = append(g.preds[j], Pred{PC: pc, Kind: PredFall})
			}
		}

		// Direct-transfer target predecessors.
		switch in.Op.Class() {
		case isa.ClassBranch:
			j := idx(in.Target)
			g.preds[j] = append(g.preds[j],
				Pred{PC: pc, Kind: PredCondTaken, TakesBit: true, BitValue: true})
		case isa.ClassJump:
			j := idx(in.Target)
			g.preds[j] = append(g.preds[j], Pred{PC: pc, Kind: PredJump})
		case isa.ClassCall:
			j := idx(in.Target)
			g.callPreds[j] = append(g.callPreds[j], pc)
		}
	}
	return g
}

// AddIndirectEdge registers an observed indirect-jump edge (a static tool
// would get these from relocation info or a BTB dump; the experiment
// harvests them from the trace). Return edges are handled structurally and
// must not be added here.
func (g *CFG) AddIndirectEdge(from, to uint64) {
	j := int(to / isa.InstBytes)
	if j >= len(g.preds) {
		return
	}
	for _, p := range g.preds[j] {
		if p.PC == from && p.Kind == PredIndirect {
			return
		}
	}
	g.preds[j] = append(g.preds[j], Pred{PC: from, Kind: PredIndirect})
}

// AddEdgeCount accumulates a dynamic edge execution count for the
// execution-counts reconstruction scheme.
func (g *CFG) AddEdgeCount(from, to uint64, n uint64) {
	g.edgeCount[Edge{From: from, To: to}] += n
}

// EdgeCount returns the recorded dynamic count of an edge.
func (g *CFG) EdgeCount(from, to uint64) uint64 {
	return g.edgeCount[Edge{From: from, To: to}]
}

// Program returns the program the CFG was built from.
func (g *CFG) Program() *isa.Program { return g.prog }

// Preds returns the intraprocedural-stream predecessors of pc (falls,
// conditional edges, direct jumps, observed indirect jumps).
func (g *CFG) Preds(pc uint64) []Pred {
	i := int(pc / isa.InstBytes)
	if i >= len(g.preds) {
		return nil
	}
	return g.preds[i]
}

// CallPreds returns the call instructions targeting pc.
func (g *CFG) CallPreds(pc uint64) []uint64 {
	i := int(pc / isa.InstBytes)
	if i >= len(g.callPreds) {
		return nil
	}
	return g.callPreds[i]
}

// RetPreds returns the return instructions that can dynamically precede pc
// (pc is a return site).
func (g *CFG) RetPreds(pc uint64) []uint64 {
	i := int(pc / isa.InstBytes)
	if i >= len(g.retPreds) {
		return nil
	}
	return g.retPreds[i]
}

// IsProcEntry reports whether pc is the entry of a procedure.
func (g *CFG) IsProcEntry(pc uint64) bool {
	pr := g.prog.ProcAt(pc)
	return pr != nil && pr.Start == pc
}
