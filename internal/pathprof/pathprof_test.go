package pathprof

import (
	"testing"

	"profileme/internal/asm"
	"profileme/internal/isa"
)

// diamond is a classic if/else merge inside a loop:
//
//	loop:  beq r2, else_     ; cond A
//	       add r3 (then)
//	       br merge
//	else_: add r4
//	merge: sub r1; bne r1, loop
const diamondSrc = `
.proc main
    lda r1, 100(zero)
loop:
    and r2, r1, #1
    beq r2, else_
    add r3, r3, #1
    br  merge
else_:
    add r4, r4, #1
merge:
    sub r1, r1, #1
    bne r1, loop
    ret
.endp`

func TestCFGPreds(t *testing.T) {
	prog := asm.MustAssemble(diamondSrc)
	g := NewCFG(prog)

	mergePC, _ := prog.Label("merge")
	preds := g.Preds(mergePC)
	// merge is reached by fallthrough from else_'s add, and by the br.
	if len(preds) != 2 {
		t.Fatalf("merge preds = %+v", preds)
	}
	kinds := map[PredKind]int{}
	for _, p := range preds {
		kinds[p.Kind]++
	}
	if kinds[PredFall] != 1 || kinds[PredJump] != 1 {
		t.Fatalf("merge pred kinds = %v", kinds)
	}

	elsePC, _ := prog.Label("else_")
	preds = g.Preds(elsePC)
	if len(preds) != 1 || preds[0].Kind != PredCondTaken || !preds[0].TakesBit || !preds[0].BitValue {
		t.Fatalf("else_ preds = %+v", preds)
	}

	loopPC, _ := prog.Label("loop")
	preds = g.Preds(loopPC)
	// loop: fallthrough from lda, taken bne.
	if len(preds) != 2 {
		t.Fatalf("loop preds = %+v", preds)
	}
}

func TestCFGCallRetEdges(t *testing.T) {
	prog := asm.MustAssemble(`
.proc main
    add r20, ra, #0
    jsr ra, sub1
    add r2, r2, #1
    ret (r20)
.endp
.proc sub1
    add r3, r3, #1
    ret (ra)
.endp`)
	g := NewCFG(prog)
	sub1PC, _ := prog.Label("sub1")
	calls := g.CallPreds(sub1PC)
	if len(calls) != 1 || calls[0] != 4 {
		t.Fatalf("call preds = %v", calls)
	}
	// Return site (add at PC 8) is preceded by sub1's ret.
	rets := g.RetPreds(8)
	if len(rets) != 1 {
		t.Fatalf("ret preds = %v", rets)
	}
	if in, _ := prog.At(rets[0]); in.Op != isa.OpRet {
		t.Fatalf("ret pred not a ret: %v", in)
	}
	if !g.IsProcEntry(sub1PC) || g.IsProcEntry(8) {
		t.Fatal("proc entry detection")
	}
}

func TestConsistentDiamond(t *testing.T) {
	prog := asm.MustAssemble(diamondSrc)
	g := NewCFG(prog)
	rc := NewReconstructor(g, DefaultLimits())
	mergePC, _ := prog.Label("merge")
	elsePC, _ := prog.Label("else_")
	loopPC, _ := prog.Label("loop")

	// One history bit: the beq direction. Taken (bit=1) => path came
	// through else_.
	paths, trunc := rc.Consistent(mergePC, 1, 1, Intraproc, nil)
	if trunc {
		t.Fatal("truncated")
	}
	if len(paths) != 1 {
		t.Fatalf("%d paths for taken history", len(paths))
	}
	if !contains(paths[0], elsePC) {
		t.Fatalf("taken path misses else_: %v", paths[0])
	}

	// Not taken (bit=0) => through the then side (br merge).
	paths, _ = rc.Consistent(mergePC, 0, 1, Intraproc, nil)
	if len(paths) != 1 || contains(paths[0], elsePC) {
		t.Fatalf("not-taken reconstruction wrong: %v", paths)
	}

	// Zero history bits: complete immediately, single trivial path.
	paths, _ = rc.Consistent(mergePC, 0, 0, Intraproc, nil)
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("zero-bit path = %v", paths)
	}

	// Two bits from loop top. Loop's preds are the lda (from the routine
	// entry, consuming no bits) and the taken bne (previous iteration).
	// Both complete — the entry path by the reached-routine-start rule —
	// so the reconstruction is legitimately ambiguous: exactly the
	// failure mode the paper's success metric penalizes.
	paths, _ = rc.Consistent(loopPC, 0b11, 2, Intraproc, nil)
	if len(paths) != 2 {
		t.Fatalf("loop 2-bit paths = %d, want 2 (iteration + entry)", len(paths))
	}
	long, short := paths[0], paths[1]
	if len(long) < len(short) {
		long, short = short, long
	}
	if short[len(short)-1] != 0 {
		t.Fatalf("short path should end at routine entry: %v", short)
	}
	if !contains(long, elsePC) && !contains(long, elsePC-8) {
		t.Fatalf("long path should traverse the previous iteration: %v", long)
	}
}

func TestConsistentProcEntryStops(t *testing.T) {
	prog := asm.MustAssemble(diamondSrc)
	g := NewCFG(prog)
	rc := NewReconstructor(g, DefaultLimits())
	// From the lda (PC 0, = proc entry), any history: the path is just
	// the entry itself.
	paths, _ := rc.Consistent(0, 0b1010, 4, Intraproc, nil)
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("entry paths = %v", paths)
	}
}

func TestConsistentAmbiguity(t *testing.T) {
	// Two different conditional branches jump to the same label: history
	// bits alone cannot distinguish them.
	prog := asm.MustAssemble(`
.proc main
    lda r1, 10(zero)
a:  beq r2, target
    nop
b:  bne r3, target
    nop
target:
    sub r1, r1, #1
    bne r1, a
    ret
.endp`)
	g := NewCFG(prog)
	rc := NewReconstructor(g, DefaultLimits())
	targetPC, _ := prog.Label("target")
	paths, _ := rc.Consistent(targetPC, 1, 1, Intraproc, nil)
	if len(paths) < 2 {
		t.Fatalf("expected ambiguity, got %d paths", len(paths))
	}
}

func TestPairConstraintDisambiguates(t *testing.T) {
	prog := asm.MustAssemble(`
.proc main
    lda r1, 10(zero)
a:  beq r2, target
    nop
b:  bne r3, target
    nop
target:
    sub r1, r1, #1
    bne r1, a
    ret
.endp`)
	g := NewCFG(prog)
	rc := NewReconstructor(g, DefaultLimits())
	targetPC, _ := prog.Label("target")
	aPC, _ := prog.Label("a")

	// Partner at distance 1 is the `a` branch: only the a->target path
	// survives.
	pair := &PairConstraint{PartnerPC: aPC, Distance: 1}
	paths, _ := rc.Consistent(targetPC, 1, 1, Intraproc, pair)
	if len(paths) != 1 {
		t.Fatalf("pair-pruned paths = %d", len(paths))
	}
	if paths[0][1] != aPC {
		t.Fatalf("wrong survivor: %v", paths[0])
	}
}

func TestMostLikelyFollowsHotEdge(t *testing.T) {
	prog := asm.MustAssemble(diamondSrc)
	g := NewCFG(prog)
	mergePC, _ := prog.Label("merge")
	elsePC, _ := prog.Label("else_")

	// Make the else_ side hot.
	g.AddEdgeCount(elsePC, mergePC, 90)
	brPC := elsePC - 4 // the br merge instruction
	g.AddEdgeCount(brPC, mergePC, 10)

	rc := NewReconstructor(g, DefaultLimits())
	path, ok := rc.MostLikely(mergePC, 1, Intraproc)
	if !ok {
		t.Fatal("dead end")
	}
	if path[1] != elsePC {
		t.Fatalf("greedy path took cold edge: %v", path)
	}
}

func TestInterprocWalksThroughCalls(t *testing.T) {
	prog := asm.MustAssemble(`
.proc main
    add r20, ra, #0
    lda r1, 5(zero)
loop:
    jsr ra, leaf
    sub r1, r1, #1
    bne r1, loop
    ret (r20)
.endp
.proc leaf
    add r2, r2, #1
    ret (ra)
.endp`)
	g := NewCFG(prog)
	rc := NewReconstructor(g, DefaultLimits())

	// From the sub after the call, one bit (previous bne taken): the
	// interprocedural path must route through the callee (ret, add,
	// entry) back to the jsr and the bne before it.
	subPC := uint64(12)
	paths, trunc := rc.Consistent(subPC, 1, 1, Interproc, nil)
	if trunc {
		t.Fatal("truncated")
	}
	if len(paths) != 1 {
		t.Fatalf("interproc paths = %d: %v", len(paths), paths)
	}
	leafEntry, _ := prog.Label("leaf")
	if !contains(paths[0], leafEntry) {
		t.Fatalf("path skips callee: %v", paths[0])
	}

	// Intraprocedural: the call is opaque, so the path steps straight
	// from sub over the jsr. Two candidates complete: through the taken
	// bne (previous iteration) and straight back to the routine entry.
	paths, _ = rc.Consistent(subPC, 1, 1, Intraproc, nil)
	if len(paths) != 2 {
		t.Fatalf("intraproc paths = %d", len(paths))
	}
	for _, p := range paths {
		if contains(p, leafEntry) {
			t.Fatalf("intraproc path entered callee: %v", p)
		}
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	prog := asm.MustAssemble(diamondSrc)
	cfg := DefaultEvalConfig()
	cfg.MaxInst = 0 // run the whole (short) program
	cfg.SampleInterval = 7
	cfg.HistoryLens = []int{1, 4, 8}
	results, err := Evaluate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d mode results", len(results))
	}
	for _, res := range results {
		for li := range cfg.HistoryLens {
			if res.Cells[SchemeHistory][li].Total == 0 {
				t.Fatalf("%v: no samples evaluated at len %d", res.Mode, cfg.HistoryLens[li])
			}
		}
		// The loop sits right at the routine entry, so the entry-path
		// ambiguity caps intraprocedural accuracy well below 1; it must
		// still succeed for the samples past the first branch.
		if r := res.Rate(SchemeHistory, 0); r < 0.35 {
			t.Fatalf("%v: history rate at len 1 = %.2f", res.Mode, r)
		}
	}
}

func TestEvaluateSchemesOrdering(t *testing.T) {
	// On a program with data-dependent branches, history must beat
	// execution counts, and pairs must not hurt.
	// Five data-dependent diamonds per iteration: a backward window of up
	// to 4 branches usually stays within one iteration, where each
	// diamond's merge is uniquely resolved by its history bit. Paths that
	// cross the loop-head merge (back-edge vs preamble) are inherently
	// ambiguous — the same effect that makes the paper's accuracy fall
	// with history length.
	prog := asm.MustAssemble(`
.proc main
    lda r1, 4000(zero)
    lda r5, 99991(zero)
loop:
    mul r5, r5, #48271
    and r6, r5, #1
    beq r6, d1e
    add r3, r3, #1
    br  d2
d1e:
    add r4, r4, #1
d2:
    and r6, r5, #2
    beq r6, d2e
    add r3, r3, #2
    br  d3
d2e:
    add r4, r4, #2
d3:
    and r6, r5, #4
    beq r6, d3e
    add r3, r3, #3
    br  d4
d3e:
    add r4, r4, #3
d4:
    and r6, r5, #8
    beq r6, d4e
    add r3, r3, #4
    br  d5
d4e:
    add r4, r4, #4
d5:
    and r6, r5, #16
    beq r6, d5e
    add r3, r3, #5
    br  bottom
d5e:
    add r4, r4, #5
bottom:
    sub r1, r1, #1
    bne r1, loop
    ret
.endp`)
	cfg := DefaultEvalConfig()
	cfg.MaxInst = 0
	cfg.SampleInterval = 37
	cfg.HistoryLens = []int{2, 4}
	cfg.Modes = []Mode{Intraproc}
	results, err := Evaluate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	for li := range cfg.HistoryLens {
		hist := res.Rate(SchemeHistory, li)
		exec := res.Rate(SchemeExecCounts, li)
		pair := res.Rate(SchemeHistoryPair, li)
		if hist <= exec {
			t.Fatalf("len %d: history %.2f <= exec-counts %.2f", cfg.HistoryLens[li], hist, exec)
		}
		if pair < hist-1e-9 {
			t.Fatalf("len %d: pair %.2f worse than history %.2f", cfg.HistoryLens[li], pair, hist)
		}
	}
}

func TestSchemeAndModeStrings(t *testing.T) {
	if SchemeExecCounts.String() != "exec-counts" || SchemeHistoryPair.String() != "history+pair" {
		t.Fatal("scheme names")
	}
	if Intraproc.String() == Interproc.String() {
		t.Fatal("mode names")
	}
}

func TestPCRing(t *testing.T) {
	r := newPCRing(4)
	if _, ok := r.back(0); ok {
		t.Fatal("empty ring")
	}
	for i := uint64(1); i <= 6; i++ {
		r.push(i)
	}
	if pc, ok := r.back(0); !ok || pc != 6 {
		t.Fatalf("back(0) = %d", pc)
	}
	if pc, ok := r.back(3); !ok || pc != 3 {
		t.Fatalf("back(3) = %d", pc)
	}
	if _, ok := r.back(4); ok {
		t.Fatal("overwritten entry served")
	}
}

func TestPathEqual(t *testing.T) {
	if !(Path{1, 2}).Equal(Path{1, 2}) {
		t.Fatal("equal paths")
	}
	if (Path{1, 2}).Equal(Path{1}) || (Path{1, 2}).Equal(Path{1, 3}) {
		t.Fatal("unequal paths")
	}
}

func TestLimitsTruncation(t *testing.T) {
	prog := asm.MustAssemble(diamondSrc)
	g := NewCFG(prog)
	mergePC, _ := prog.Label("merge")

	// A step budget of 1 cannot finish anything: must report truncation.
	rc := NewReconstructor(g, Limits{MaxPaths: 8, MaxSteps: 1, MaxLen: 4096})
	_, trunc := rc.Consistent(mergePC, 1, 4, Intraproc, nil)
	if !trunc {
		t.Fatal("step budget exhaustion not reported")
	}

	// MaxLen 2 dead-ends every path longer than two instructions.
	rc = NewReconstructor(g, Limits{MaxPaths: 8, MaxSteps: 1000, MaxLen: 2})
	paths, trunc := rc.Consistent(mergePC, 0b1111, 4, Intraproc, nil)
	if trunc || len(paths) != 0 {
		t.Fatalf("short MaxLen: paths=%d trunc=%v", len(paths), trunc)
	}

	// MostLikely with a tiny budget dead-ends rather than spinning.
	if _, ok := rc.MostLikely(mergePC, 8, Intraproc); ok {
		t.Fatal("MostLikely ignored MaxLen")
	}
}

func TestConsistentRecursionBounded(t *testing.T) {
	// Interprocedural walk through a recursive procedure: the search
	// must stay bounded (complete or truncate, never hang).
	prog := asm.MustAssemble(`
.proc main
    add r20, ra, #0
    lda r1, 6(zero)
    jsr ra, fact
    ret (r20)
.endp
.proc fact
    bne r1, recurse
    lda r2, 1(zero)
    ret (ra)
recurse:
    sub sp, sp, #16
    st  ra, 0(sp)
    sub r1, r1, #1
    jsr ra, fact
    ld  ra, 0(sp)
    add sp, sp, #16
    mul r2, r2, #2
    ret (ra)
.endp`)
	g := NewCFG(prog)
	rc := NewReconstructor(g, Limits{MaxPaths: 16, MaxSteps: 5000, MaxLen: 256})
	factPC, _ := prog.Label("fact")
	paths, _ := rc.Consistent(factPC+4, 0b10101010, 8, Interproc, nil)
	// Any outcome is acceptable as long as it terminates; sanity-check
	// path shapes when found.
	for _, p := range paths {
		if len(p) > 256 {
			t.Fatalf("path exceeds MaxLen: %d", len(p))
		}
	}
}
