package pathprof

import (
	"fmt"

	"profileme/internal/isa"
	"profileme/internal/sim"
	"profileme/internal/stats"
)

// Scheme identifies a path reconstruction strategy (Figure 6's three
// curves).
type Scheme uint8

// Reconstruction schemes.
const (
	SchemeExecCounts  Scheme = iota // execution frequencies only
	SchemeHistory                   // global branch history bits
	SchemeHistoryPair               // history bits + paired-sample PC
	NumSchemes        = iota
)

var schemeNames = [...]string{"exec-counts", "history", "history+pair"}

// String returns the scheme name.
func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// Cell is one success-rate measurement.
type Cell struct {
	Success uint64
	Total   uint64
}

// Rate returns the success fraction, or 0 when empty.
func (c Cell) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Success) / float64(c.Total)
}

// EvalConfig parameterizes the Figure 6 experiment.
type EvalConfig struct {
	MaxInst        uint64 // trace length (0 = run to completion)
	SampleInterval int    // mean instructions between samples
	PairWindow     int    // intra-pair distance drawn uniform [1, PairWindow]
	HistoryLens    []int  // history lengths to evaluate
	Modes          []Mode
	Seed           uint64
	Limits         Limits
}

// DefaultEvalConfig mirrors the paper's setup: pair distance 1-50,
// history lengths covering the 8-12 bits of 1997 hardware and beyond.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{
		MaxInst:        2_000_000,
		SampleInterval: 500,
		PairWindow:     50,
		HistoryLens:    []int{1, 2, 4, 6, 8, 10, 12, 14, 16},
		Modes:          []Mode{Intraproc, Interproc},
		Seed:           1,
		Limits:         Limits{MaxPaths: 8, MaxSteps: 50_000, MaxLen: 4096},
	}
}

// ModeResult holds the success rates for one mode: Cells[scheme][i]
// corresponds to HistoryLens[i].
type ModeResult struct {
	Mode        Mode
	HistoryLens []int
	Cells       [NumSchemes][]Cell
}

// Rate returns the success rate for a scheme at history length index i.
func (r *ModeResult) Rate(s Scheme, i int) float64 { return r.Cells[s][i].Rate() }

type evalSample struct {
	pc          uint64
	hist        uint64
	partnerPC   uint64
	partnerDist int
	hasPartner  bool
}

// Evaluate runs the full path-reconstruction experiment: trace the
// program, sample instructions with their branch histories and pair
// partners, and measure each scheme's reconstruction success rate at each
// history length.
func Evaluate(prog *isa.Program, cfg EvalConfig) ([]*ModeResult, error) {
	if len(cfg.HistoryLens) == 0 || len(cfg.Modes) == 0 {
		return nil, fmt.Errorf("pathprof: empty history lengths or modes")
	}
	maxLen := 0
	for _, l := range cfg.HistoryLens {
		if l > maxLen {
			maxLen = l
		}
		if l > 64 {
			return nil, fmt.Errorf("pathprof: history length %d > 64", l)
		}
	}

	g := NewCFG(prog)
	rng := stats.NewRNG(cfg.Seed)

	// Pass 1: stream the trace once. Collect dynamic edge counts,
	// indirect-jump edges, samples (PC + history + partner), and keep a
	// ring of recent PCs for ground-truth paths.
	ring := newPCRing(cfg.Limits.MaxLen * 4)
	var samples []evalSample
	var truth [][][]Path // per sample, per mode, per history length

	var hist uint64
	var prevPC uint64
	var prevValid bool
	var prevClass isa.Class
	var callStack []uint64
	countdown := rng.Geometric(float64(cfg.SampleInterval))

	m := sim.New(prog)
	var executed uint64
	for !m.Halted() && (cfg.MaxInst == 0 || executed < cfg.MaxInst) {
		rec, ok, err := m.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		executed++

		if prevValid {
			g.AddEdgeCount(prevPC, rec.PC, 1)
			if prevClass == isa.ClassJmpInd {
				g.AddIndirectEdge(prevPC, rec.PC)
			}
			// Track call returns so the intraprocedural greedy walk has
			// jsr -> return-site edge counts.
			if prevClass == isa.ClassRet && len(callStack) > 0 &&
				rec.PC == callStack[len(callStack)-1]+isa.InstBytes {
				g.AddEdgeCount(callStack[len(callStack)-1], rec.PC, 1)
				callStack = callStack[:len(callStack)-1]
			}
		}
		if rec.Inst.Op.Class() == isa.ClassCall {
			if len(callStack) < 1024 {
				callStack = append(callStack, rec.PC)
			}
		}

		countdown--
		if countdown <= 0 {
			countdown = rng.Geometric(float64(cfg.SampleInterval))
			s := evalSample{pc: rec.PC, hist: hist}
			if cfg.PairWindow > 0 {
				d := rng.IntRange(1, cfg.PairWindow)
				if pc, ok := ring.back(d - 1); ok { // partner fetched d before
					s.partnerPC = pc
					s.partnerDist = d
					s.hasPartner = true
				}
			}
			samples = append(samples, s)
			perMode := make([][]Path, len(cfg.Modes))
			for mi, mode := range cfg.Modes {
				perMode[mi] = actualPaths(prog, ring, rec.PC, cfg.HistoryLens, mode)
			}
			truth = append(truth, perMode)
		}

		ring.push(rec.PC)
		if rec.Inst.Op.IsConditional() {
			hist <<= 1
			if rec.Taken {
				hist |= 1
			}
		}
		prevPC, prevValid, prevClass = rec.PC, true, rec.Inst.Op.Class()
	}
	// Pass 2: reconstruct.
	rc := NewReconstructor(g, cfg.Limits)
	results := make([]*ModeResult, len(cfg.Modes))
	for mi, mode := range cfg.Modes {
		res := &ModeResult{Mode: mode, HistoryLens: cfg.HistoryLens}
		for s := range res.Cells {
			res.Cells[s] = make([]Cell, len(cfg.HistoryLens))
		}
		results[mi] = res

		for si, s := range samples {
			actual := truth[si][mi]
			for li, hl := range cfg.HistoryLens {
				want := actual[li]
				if want == nil {
					continue // ground truth unavailable (ring too short)
				}

				// Execution counts.
				res.Cells[SchemeExecCounts][li].Total++
				if got, ok := rc.MostLikely(s.pc, hl, mode); ok && got.Equal(want) {
					res.Cells[SchemeExecCounts][li].Success++
				}

				// History bits (one enumeration serves both history
				// schemes; the pair filter applies post hoc).
				paths, truncated := rc.Consistent(s.pc, s.hist, hl, mode, nil)
				res.Cells[SchemeHistory][li].Total++
				if !truncated && len(paths) == 1 && paths[0].Equal(want) {
					res.Cells[SchemeHistory][li].Success++
				}

				res.Cells[SchemeHistoryPair][li].Total++
				if !truncated {
					filtered := paths
					if s.hasPartner && pairApplicable(prog, mode, s.pc, s.partnerPC) {
						pair := &PairConstraint{PartnerPC: s.partnerPC, Distance: s.partnerDist}
						filtered = filterPair(paths, pair, mode)
					}
					if len(filtered) == 1 && filtered[0].Equal(want) {
						res.Cells[SchemeHistoryPair][li].Success++
					}
				}
			}
		}
	}
	return results, nil
}

// pairApplicable reports whether the pair constraint can be used: in
// intraprocedural mode the partner must be in the same procedure (paths
// never contain other procedures' PCs).
func pairApplicable(prog *isa.Program, mode Mode, samplePC, partnerPC uint64) bool {
	if mode == Interproc {
		return true
	}
	a, b := prog.ProcAt(samplePC), prog.ProcAt(partnerPC)
	return a != nil && b != nil && a.Name == b.Name
}

// filterPair applies the paired-sample pruning rule. In interprocedural
// mode the reconstructed path mirrors the raw fetch stream, so the partner
// must appear at its exact fetch distance; in intraprocedural mode the
// path is the procedure-projected stream, so containment is required
// instead.
func filterPair(paths []Path, pair *PairConstraint, mode Mode) []Path {
	var out []Path
	for _, p := range paths {
		if mode == Interproc {
			if pair.Distance < len(p) && p[pair.Distance] != pair.PartnerPC {
				continue
			}
		} else if len(p) > pair.Distance && !contains(p, pair.PartnerPC) {
			continue
		}
		out = append(out, p)
	}
	return out
}

func contains(p Path, pc uint64) bool {
	for _, x := range p {
		if x == pc {
			return true
		}
	}
	return false
}

// actualPaths derives the ground-truth backward path for each history
// length from the recent-PC ring, under the mode's stopping and
// projection rules. Entries are nil when the ring does not reach far
// enough.
func actualPaths(prog *isa.Program, ring *pcRing, samplePC uint64, lens []int, mode Mode) []Path {
	out := make([]Path, len(lens))
	maxLen := 0
	for _, l := range lens {
		if l > maxLen {
			maxLen = l
		}
	}
	proc := prog.ProcAt(samplePC)

	path := Path{samplePC}
	bits := 0
	// next result slot to fill, in ascending history-length order
	done := make([]bool, len(lens))
	fill := func() {
		for i, l := range lens {
			if done[i] {
				continue
			}
			if bits >= l {
				out[i] = append(Path(nil), path...)
				done[i] = true
			}
		}
	}
	fillEntry := func() {
		for i := range lens {
			if !done[i] {
				out[i] = append(Path(nil), path...)
				done[i] = true
			}
		}
	}
	fill()

	for back := 0; ; back++ {
		if mode == Intraproc && proc != nil && path[len(path)-1] == proc.Start {
			fillEntry()
			break
		}
		allDone := true
		for _, d := range done {
			if !d {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		pc, ok := ring.back(back)
		if !ok {
			break // ring exhausted: remaining lengths stay nil
		}
		if mode == Intraproc && (proc == nil || !proc.Contains(pc)) {
			continue // project onto the sample's procedure
		}
		path = append(path, pc)
		if in, ok := prog.At(pc); ok && in.Op.IsConditional() {
			bits++
		}
		fill()
	}
	return out
}

// pcRing holds the most recent PCs of the fetch stream.
type pcRing struct {
	buf   []uint64
	count uint64
}

func newPCRing(n int) *pcRing { return &pcRing{buf: make([]uint64, n)} }

func (r *pcRing) push(pc uint64) {
	r.buf[r.count%uint64(len(r.buf))] = pc
	r.count++
}

// back returns the PC pushed n entries ago (0 = most recent push).
func (r *pcRing) back(n int) (uint64, bool) {
	if uint64(n) >= r.count || n >= len(r.buf) {
		return 0, false
	}
	return r.buf[(r.count-1-uint64(n))%uint64(len(r.buf))], true
}
