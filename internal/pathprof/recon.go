package pathprof

import (
	"profileme/internal/isa"
)

// Mode selects intra- or inter-procedural reconstruction (the two panels
// of Figure 6).
type Mode uint8

const (
	// Intraproc stops at the enclosing procedure's entry and treats calls
	// as opaque sequential instructions (the trace-scheduling view).
	Intraproc Mode = iota
	// Interproc walks through call sites and callee returns; a path is
	// complete only when it has consumed the full branch history.
	Interproc
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Intraproc {
		return "intraprocedural"
	}
	return "interprocedural"
}

// Limits bounds the backward search.
type Limits struct {
	MaxPaths int // stop enumerating after this many complete paths
	MaxSteps int // total backward expansions before giving up
	MaxLen   int // maximum path length in instructions
}

// DefaultLimits returns generous but safe search bounds.
func DefaultLimits() Limits {
	return Limits{MaxPaths: 256, MaxSteps: 200_000, MaxLen: 4096}
}

// Path is an execution path segment in backward order: Path[0] is the
// sampled instruction, Path[1] the instruction fetched just before it, and
// so on.
type Path []uint64

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// PairConstraint carries the paired-sample pruning information: the
// partner instruction was fetched Distance instructions before the sampled
// one.
type PairConstraint struct {
	PartnerPC uint64
	Distance  int
}

// Reconstructor runs backward path searches over a CFG.
type Reconstructor struct {
	g   *CFG
	lim Limits
}

// NewReconstructor returns a reconstructor with the given limits.
func NewReconstructor(g *CFG, lim Limits) *Reconstructor {
	return &Reconstructor{g: g, lim: lim}
}

// state is one node of the backward DFS.
type state struct {
	pc       uint64
	bitsUsed int
	path     Path
}

// Consistent enumerates the path segments ending at pc that are consistent
// with the low histLen bits of hist (bit 0 = most recent branch). pair,
// when non-nil, prunes paths whose instruction at the partner distance is
// not the partner PC. truncated reports the search hit a limit.
//
// A path is complete when histLen conditional branches have been consumed,
// or — in Intraproc mode — when the walk reaches the start of the
// procedure containing pc.
func (r *Reconstructor) Consistent(pc uint64, hist uint64, histLen int, mode Mode, pair *PairConstraint) (paths []Path, truncated bool) {
	proc := r.g.Program().ProcAt(pc)
	steps := 0
	stack := []state{{pc: pc, path: Path{pc}}}

	for len(stack) > 0 {
		if len(paths) >= r.lim.MaxPaths || steps >= r.lim.MaxSteps {
			return paths, true
		}
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		steps++

		if s.bitsUsed >= histLen {
			paths = appendIfPairOK(paths, s.path, pair)
			continue
		}
		if mode == Intraproc && proc != nil && s.pc == proc.Start {
			paths = appendIfPairOK(paths, s.path, pair)
			continue
		}
		if len(s.path) >= r.lim.MaxLen {
			continue // dead end: too long
		}

		for _, pr := range r.expand(s.pc, mode, proc) {
			if pr.TakesBit {
				want := (hist >> uint(s.bitsUsed)) & 1
				got := uint64(0)
				if pr.BitValue {
					got = 1
				}
				if want != got {
					continue
				}
			}
			np := make(Path, len(s.path)+1)
			copy(np, s.path)
			np[len(s.path)] = pr.PC
			nb := s.bitsUsed
			if pr.TakesBit {
				nb++
			}
			stack = append(stack, state{pc: pr.PC, bitsUsed: nb, path: np})
		}
	}
	return paths, false
}

// expand lists the backward-step candidates of pc under the given mode.
func (r *Reconstructor) expand(pc uint64, mode Mode, proc *isa.Proc) []Pred {
	var out []Pred
	out = append(out, r.g.Preds(pc)...)

	prevPC := pc - isa.InstBytes
	prevIsCall := false
	if pc >= isa.InstBytes {
		if in, ok := r.g.Program().At(prevPC); ok && in.Op.Class() == isa.ClassCall {
			prevIsCall = true
		}
	}

	switch mode {
	case Intraproc:
		// Calls are opaque: step straight back over the jsr.
		if prevIsCall {
			out = append(out, Pred{PC: prevPC, Kind: PredFall})
		}
		// Stay within the procedure.
		if proc != nil {
			kept := out[:0]
			for _, p := range out {
				if proc.Contains(p.PC) {
					kept = append(kept, p)
				}
			}
			out = kept
		}
	case Interproc:
		// Return sites continue inside the callee.
		for _, retPC := range r.g.RetPreds(pc) {
			out = append(out, Pred{PC: retPC, Kind: PredRet})
		}
		// Procedure entries continue at their callers.
		for _, callPC := range r.g.CallPreds(pc) {
			out = append(out, Pred{PC: callPC, Kind: PredCall})
		}
	}
	return out
}

func appendIfPairOK(paths []Path, p Path, pair *PairConstraint) []Path {
	if pair != nil && pair.Distance >= 0 && pair.Distance < len(p) {
		if p[pair.Distance] != pair.PartnerPC {
			return paths
		}
	}
	return append(paths, p)
}

// MostLikely reconstructs the single most likely path by greedily
// following the highest-execution-count predecessor at every step,
// ignoring history bits (Figure 6's "Execution counts" scheme). It stops
// under the same completion rules (branch budget, or procedure entry in
// Intraproc mode). ok is false when the walk dead-ends first.
func (r *Reconstructor) MostLikely(pc uint64, histLen int, mode Mode) (Path, bool) {
	proc := r.g.Program().ProcAt(pc)
	path := Path{pc}
	bits := 0
	cur := pc
	for bits < histLen {
		if mode == Intraproc && proc != nil && cur == proc.Start {
			return path, true
		}
		if len(path) >= r.lim.MaxLen {
			return path, false
		}
		var best *Pred
		var bestCount uint64
		for _, pr := range r.expand(cur, mode, proc) {
			pr := pr
			c := r.g.EdgeCount(pr.PC, cur)
			if best == nil || c > bestCount || (c == bestCount && pr.PC < best.PC) {
				best, bestCount = &pr, c
			}
		}
		if best == nil {
			return path, false
		}
		if best.TakesBit {
			bits++
		}
		path = append(path, best.PC)
		cur = best.PC
	}
	return path, true
}
