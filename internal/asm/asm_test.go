package asm

import (
	"strings"
	"testing"

	"profileme/internal/isa"
)

func TestBuilderSimpleLoop(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		LdI(1, 10).
		Label("loop").
		SubI(1, 1, 1).
		Bne(1, "loop").
		Ret().
		EndProc()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Entry != 0 {
		t.Fatalf("entry = %#x", p.Entry)
	}
	br, _ := p.At(8)
	if br.Op != isa.OpBne || br.Target != 4 {
		t.Fatalf("branch = %v", br)
	}
	if pr := p.ProcByName("main"); pr == nil || pr.End != 16 {
		t.Fatalf("proc = %v", pr)
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").
		Beq(isa.RegZero, "done").
		Nop().
		Label("done").
		Ret().
		EndProc()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in, _ := p.At(0)
	if in.Target != 8 {
		t.Fatalf("forward target = %#x", in.Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").Br("nowhere").EndProc()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x").Nop().Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label not caught")
	}
}

func TestBuilderUnclosedProc(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").Nop()
	if _, err := b.Build(); err == nil {
		t.Fatal("unclosed proc not caught")
	}
}

func TestBuilderNestedProc(t *testing.T) {
	b := NewBuilder()
	b.Proc("a").Proc("b")
	if _, err := b.Build(); err == nil {
		t.Fatal("nested proc not caught")
	}
}

func TestBuilderData(t *testing.T) {
	b := NewBuilder()
	b.Org(0x2000).DataLabel("table").Word(1, 2, 3).Space(16).DataLabel("after")
	b.Proc("main").LdaLabel(4, "table").Ret().EndProc()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Data[0x2000] != 1 || p.Data[0x2008] != 2 || p.Data[0x2010] != 3 {
		t.Fatalf("data = %v", p.Data)
	}
	if addr := p.Labels["after"]; addr != 0x2000+24+16 {
		t.Fatalf("after = %#x", addr)
	}
	lda, _ := p.At(0)
	if lda.Imm != 0x2000 {
		t.Fatalf("lda imm = %#x", lda.Imm)
	}
}

func TestBuilderEntrySelection(t *testing.T) {
	b := NewBuilder()
	b.Proc("start").Nop().Ret().EndProc()
	b.Proc("main").Ret().EndProc()
	b.Entry("start")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0 {
		t.Fatalf("entry = %#x", p.Entry)
	}

	b2 := NewBuilder()
	b2.Proc("aux").Ret().EndProc()
	b2.Proc("main").Ret().EndProc()
	p2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Entry != 4 {
		t.Fatalf("default entry = %#x, want main at 4", p2.Entry)
	}
}

func TestBuilderBadEntry(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Entry("missing")
	if _, err := b.Build(); err == nil {
		t.Fatal("bad entry not caught")
	}
}

const loopSrc = `
; simple counted loop
.equ COUNT, 10

.proc main
    lda   r1, COUNT(zero)
    lda   r4, table(zero)
loop:
    ld    r2, 0(r4)
    add   r3, r3, r2
    sub   r1, r1, #1
    bne   r1, loop
    jsr   ra, helper
    ret
.endp

.proc helper
    add   r5, r3, #0
    ret   (ra)
.endp

.data
.org 0x2000
table:
    .word 7, 8, 9
`

func TestAssembleLoop(t *testing.T) {
	p, err := Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 10 {
		t.Fatalf("len = %d:\n%s", p.Len(), p.Disassemble())
	}
	lda, _ := p.At(0)
	if lda.Op != isa.OpLda || lda.Imm != 10 {
		t.Fatalf("equ constant not applied: %v", lda)
	}
	tbl, _ := p.At(4)
	if tbl.Imm != 0x2000 {
		t.Fatalf("data label lda = %v", tbl)
	}
	bne, _ := p.At(20)
	if bne.Op != isa.OpBne || bne.Target != 8 {
		t.Fatalf("bne = %v", bne)
	}
	jsr, _ := p.At(24)
	helper, _ := p.Label("helper")
	if jsr.Op != isa.OpJsr || jsr.Target != helper || jsr.Rc != isa.RegRA {
		t.Fatalf("jsr = %v", jsr)
	}
	if p.Data[0x2008] != 8 {
		t.Fatalf("data word = %v", p.Data)
	}
	if len(p.Procs) != 2 {
		t.Fatalf("procs = %v", p.Procs)
	}
}

func TestAssembleAllALUOps(t *testing.T) {
	src := `
.proc main
    add r1, r2, r3
    sub r1, r2, #5
    and r1, r2, r3
    or  r1, r2, r3
    xor r1, r2, r3
    sll r1, r2, #3
    srl r1, r2, #3
    sra r1, r2, #3
    cmpeq r1, r2, r3
    cmplt r1, r2, r3
    cmple r1, r2, r3
    cmpult r1, r2, #9
    mul r1, r2, r3
    fadd r1, r2, r3
    fmul r1, r2, r3
    fdiv r1, r2, r3
    ret
.endp
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSll,
		isa.OpSrl, isa.OpSra, isa.OpCmpEq, isa.OpCmpLt, isa.OpCmpLe,
		isa.OpCmpULt, isa.OpMul, isa.OpFAdd, isa.OpFMul, isa.OpFDiv, isa.OpRet,
	}
	for i, op := range want {
		in, _ := p.At(uint64(i) * isa.InstBytes)
		if in.Op != op {
			t.Errorf("inst %d = %v, want %v", i, in.Op, op)
		}
	}
	sub, _ := p.At(4)
	if !sub.UseImm || sub.Imm != 5 {
		t.Fatalf("immediate form: %v", sub)
	}
}

func TestAssembleControlForms(t *testing.T) {
	src := `
.proc main
    br    over
over:
    beq   r1, over
    bne   r1, over
    blt   r1, over
    bge   r1, over
    ble   r1, over
    bgt   r1, over
    jmp   (r9)
    ret   (r20)
    ret
.endp
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	jmp, _ := p.At(28)
	if jmp.Op != isa.OpJmp || jmp.Rb != 9 {
		t.Fatalf("jmp = %v", jmp)
	}
	retR, _ := p.At(32)
	if retR.Op != isa.OpRet || retR.Rb != 20 {
		t.Fatalf("ret (r20) = %v", retR)
	}
	ret, _ := p.At(36)
	if ret.Rb != isa.RegRA {
		t.Fatalf("default ret = %v", ret)
	}
}

func TestAssembleNegativeAndHex(t *testing.T) {
	p, err := Assemble(`
.proc main
    lda r1, -8(sp)
    lda r2, 0x40(zero)
    ld  r3, -16(sp)
    ret
.endp`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.At(0)
	if a.Imm != -8 || a.Rb != isa.RegSP {
		t.Fatalf("lda = %v", a)
	}
	b, _ := p.At(4)
	if b.Imm != 0x40 {
		t.Fatalf("hex = %v", b)
	}
	c, _ := p.At(8)
	if c.Imm != -16 {
		t.Fatalf("ld = %v", c)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown mnemonic", "frob r1, r2, r3"},
		{"bad register", "add r1, r99, r2"},
		{"missing operand", "add r1, r2"},
		{"bad label", "br 123abc"},
		{"inst in data", ".data\nadd r1, r2, r3"},
		{"unknown directive", ".bogus 3"},
		{"bad number", ".word zork"},
		{"negative space", ".space -4"},
		{"bad mem operand", "ld r1, r2"},
		{"dup label", "x:\nnop\nx:"},
		{"jsr without label", "jsr ra, (r5)"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestAssembleErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nfrob r1\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v", err)
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble(`
; full line comment
nop  ; trailing
nop  ; another trailing

`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestAssembleLabelOnSameLine(t *testing.T) {
	p, err := Assemble("main: nop\nloop: br loop\n")
	if err != nil {
		t.Fatal(err)
	}
	if pc, ok := p.Label("loop"); !ok || pc != 4 {
		t.Fatalf("loop label = %v, %v", pc, ok)
	}
}

func TestRoundTripThroughDisassembly(t *testing.T) {
	// Disassembly of an assembled program mentions each mnemonic we used.
	p := MustAssemble(loopSrc)
	d := p.Disassemble()
	for _, m := range []string{"lda", "ld r2", "add", "sub", "bne", "jsr", "ret"} {
		if !strings.Contains(d, m) {
			t.Errorf("disassembly missing %q:\n%s", m, d)
		}
	}
}

func TestWordLabel(t *testing.T) {
	p, err := Assemble(`
.proc main
    lda r1, jumptab(zero)
    ld  r2, 0(r1)
    jmp (r2)
target:
    ret
.endp
.data
.org 0x3000
jumptab:
    .word target, main, 42
`)
	if err != nil {
		t.Fatal(err)
	}
	targetPC, _ := p.Label("target")
	if p.Data[0x3000] != targetPC {
		t.Fatalf("jump table entry = %#x, want %#x", p.Data[0x3000], targetPC)
	}
	if p.Data[0x3008] != 0 { // main is at 0
		t.Fatalf("main entry = %#x", p.Data[0x3008])
	}
	if p.Data[0x3010] != 42 {
		t.Fatal("numeric word after labels broken")
	}
}

func TestWordLabelUndefined(t *testing.T) {
	_, err := Assemble(".data\n.word nosuchlabel\n")
	if err == nil {
		t.Fatal("undefined data label not caught")
	}
}

func TestAssemblePref(t *testing.T) {
	p, err := Assemble(`
.proc main
    lda  r4, 0x2000(zero)
    pref 128(r4)
    ld   r2, 0(r4)
    ret
.endp`)
	if err != nil {
		t.Fatal(err)
	}
	pref, _ := p.At(4)
	if pref.Op != isa.OpPref || pref.Imm != 128 || pref.Rb != 4 {
		t.Fatalf("pref = %v", pref)
	}
	if _, ok := pref.Dest(); ok {
		t.Fatal("pref must not write a register")
	}
	if srcs := pref.Srcs(nil); len(srcs) != 1 || srcs[0] != 4 {
		t.Fatalf("pref srcs = %v", srcs)
	}
	if s := pref.String(); s != "pref 128(r4)" {
		t.Fatalf("disasm = %q", s)
	}
	if _, err := Assemble("pref r1, 0(r2)"); err == nil {
		t.Fatal("bad pref operands accepted")
	}
}

func TestBuilderPref(t *testing.T) {
	b := NewBuilder()
	b.Proc("main").Pref(5, 64).Ret().EndProc()
	p := b.MustBuild()
	in, _ := p.At(0)
	if in.Op != isa.OpPref || in.Rb != 5 || in.Imm != 64 {
		t.Fatalf("pref = %v", in)
	}
}
