package asm

import (
	"fmt"
	"strconv"
	"strings"

	"profileme/internal/isa"
)

// Assemble parses the text assembly source and returns a program image.
//
// Syntax, one statement per line (";" starts a comment; "#" marks an
// immediate operand):
//
//	label:                       bind label to current PC (or data cursor)
//	.proc name / .endp           bracket a procedure
//	.entry label                 set the entry point (default: main, else 0)
//	.data / .text                switch sections
//	.org ADDR                    move the data cursor
//	.word v, v, ...              emit 64-bit data words
//	.space N                     reserve N zeroed bytes
//	.equ name, value             define an assembly-time constant
//
//	add  rc, ra, rb              three-register ALU op (sub/and/or/xor/sll/
//	add  rc, ra, #imm            srl/sra/cmpeq/cmplt/cmple/cmpult/mul/
//	                             fadd/fmul/fdiv likewise)
//	lda  rc, imm(rb)             rc = rb + imm; imm may be a label
//	ld   rc, off(rb)             load;  st ra, off(rb)  store
//	br   label                   unconditional branch
//	beq  ra, label               conditional branches (bne/blt/bge/ble/bgt)
//	jsr  ra, label               direct call (link register explicit)
//	jmp  (rb)                    indirect jump
//	ret  (rb)  |  ret            indirect return (default ra)
//	nop
//
// Numbers are decimal or 0x-prefixed hex, optionally negative.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{b: NewBuilder(), equ: make(map[string]int64)}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.b.Build()
}

// MustAssemble is Assemble, panicking on error. For static program text in
// workloads and tests.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b      *Builder
	equ    map[string]int64
	inData bool
	line   int
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf("asm: line %d: "+format, append([]any{a.line}, args...)...)
}

func (a *assembler) run(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := raw
		if j := strings.IndexByte(line, ';'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by a statement on the same line.
		for {
			j := strings.Index(line, ":")
			if j < 0 {
				break
			}
			name := strings.TrimSpace(line[:j])
			if !isIdent(name) {
				return a.errf("bad label %q", name)
			}
			if a.inData {
				a.b.DataLabel(name)
			} else {
				a.b.Label(name)
			}
			line = strings.TrimSpace(line[j+1:])
		}
		if line == "" {
			continue
		}
		if err := a.statement(line); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) statement(line string) error {
	op, rest, _ := strings.Cut(line, " ")
	op = strings.ToLower(strings.TrimSpace(op))
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(op, ".") {
		return a.directive(op, rest)
	}
	if a.inData {
		return a.errf("instruction %q in .data section", op)
	}
	return a.instruction(op, rest)
}

func (a *assembler) directive(dir, rest string) error {
	switch dir {
	case ".proc":
		if !isIdent(rest) {
			return a.errf(".proc needs a name")
		}
		a.b.Proc(rest)
	case ".endp":
		a.b.EndProc()
	case ".entry":
		if !isIdent(rest) {
			return a.errf(".entry needs a label")
		}
		a.b.Entry(rest)
	case ".data":
		a.inData = true
	case ".text":
		a.inData = false
	case ".org":
		v, err := a.number(rest)
		if err != nil {
			return err
		}
		a.b.Org(uint64(v))
	case ".word":
		for _, f := range splitOperands(rest) {
			if v, err := a.number(f); err == nil {
				a.b.Word(uint64(v))
			} else if isIdent(f) {
				a.b.WordLabel(f)
			} else {
				return err
			}
		}
	case ".space":
		v, err := a.number(rest)
		if err != nil {
			return err
		}
		if v < 0 {
			return a.errf(".space with negative size")
		}
		a.b.Space(uint64(v))
	case ".equ":
		fs := splitOperands(rest)
		if len(fs) != 2 || !isIdent(fs[0]) {
			return a.errf(".equ needs name, value")
		}
		v, err := a.number(fs[1])
		if err != nil {
			return err
		}
		a.equ[fs[0]] = v
	default:
		return a.errf("unknown directive %q", dir)
	}
	return nil
}

var aluOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr,
	"xor": isa.OpXor, "sll": isa.OpSll, "srl": isa.OpSrl, "sra": isa.OpSra,
	"cmpeq": isa.OpCmpEq, "cmplt": isa.OpCmpLt, "cmple": isa.OpCmpLe,
	"cmpult": isa.OpCmpULt, "mul": isa.OpMul,
	"fadd": isa.OpFAdd, "fmul": isa.OpFMul, "fdiv": isa.OpFDiv,
}

var brOps = map[string]isa.Op{
	"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt,
	"bge": isa.OpBge, "ble": isa.OpBle, "bgt": isa.OpBgt,
}

func (a *assembler) instruction(op, rest string) error {
	fs := splitOperands(rest)
	switch {
	case op == "nop":
		if len(fs) != 0 {
			return a.errf("nop takes no operands")
		}
		a.b.Nop()

	case aluOps[op] != 0:
		if len(fs) != 3 {
			return a.errf("%s needs rc, ra, src2", op)
		}
		rc, err := a.reg(fs[0])
		if err != nil {
			return err
		}
		ra, err := a.reg(fs[1])
		if err != nil {
			return err
		}
		if imm, ok, err := a.immOperand(fs[2]); err != nil {
			return err
		} else if ok {
			a.b.OpI(aluOps[op], rc, ra, imm)
		} else {
			rb, err := a.reg(fs[2])
			if err != nil {
				return err
			}
			a.b.Op3(aluOps[op], rc, ra, rb)
		}

	case op == "lda":
		if len(fs) != 2 {
			return a.errf("lda needs rc, imm(rb)")
		}
		rc, err := a.reg(fs[0])
		if err != nil {
			return err
		}
		immStr, rb, err := a.memOperand(fs[1])
		if err != nil {
			return err
		}
		if v, err := a.number(immStr); err == nil {
			a.b.Lda(rc, rb, v)
		} else if isIdent(immStr) && rb == isa.RegZero {
			a.b.LdaLabel(rc, immStr)
		} else {
			return a.errf("bad lda operand %q", fs[1])
		}

	case op == "pref":
		if len(fs) != 1 {
			return a.errf("pref needs off(rb)")
		}
		offStr, rb, err := a.memOperand(fs[0])
		if err != nil {
			return err
		}
		off, err := a.number(offStr)
		if err != nil {
			return err
		}
		a.b.Emit(isa.Inst{Op: isa.OpPref, Rb: rb, Imm: off})

	case op == "ld" || op == "st":
		if len(fs) != 2 {
			return a.errf("%s needs reg, off(rb)", op)
		}
		r, err := a.reg(fs[0])
		if err != nil {
			return err
		}
		offStr, rb, err := a.memOperand(fs[1])
		if err != nil {
			return err
		}
		off, err := a.number(offStr)
		if err != nil {
			return err
		}
		if op == "ld" {
			a.b.Ld(r, rb, off)
		} else {
			a.b.St(r, rb, off)
		}

	case op == "br":
		if len(fs) != 1 || !isIdent(fs[0]) {
			return a.errf("br needs a label")
		}
		a.b.Br(fs[0])

	case brOps[op] != 0:
		if len(fs) != 2 {
			return a.errf("%s needs ra, label", op)
		}
		ra, err := a.reg(fs[0])
		if err != nil {
			return err
		}
		if !isIdent(fs[1]) {
			return a.errf("%s needs a label target", op)
		}
		a.b.CondBr(brOps[op], ra, fs[1])

	case op == "jsr":
		if len(fs) != 2 {
			return a.errf("jsr needs link-reg, label")
		}
		rc, err := a.reg(fs[0])
		if err != nil {
			return err
		}
		if !isIdent(fs[1]) {
			return a.errf("jsr needs a label target")
		}
		a.b.EmitTo(isa.Inst{Op: isa.OpJsr, Rc: rc}, fs[1])

	case op == "jmp":
		if len(fs) != 1 {
			return a.errf("jmp needs (rb)")
		}
		rb, err := a.parenReg(fs[0])
		if err != nil {
			return err
		}
		a.b.Jmp(rb)

	case op == "ret":
		rb := isa.RegRA
		if len(fs) == 1 {
			var err error
			if rb, err = a.parenReg(fs[0]); err != nil {
				return err
			}
		} else if len(fs) != 0 {
			return a.errf("ret takes at most one operand")
		}
		a.b.Emit(isa.Inst{Op: isa.OpRet, Rb: rb})

	default:
		return a.errf("unknown mnemonic %q", op)
	}
	return nil
}

// immOperand reports whether f is an immediate ("#n" or a bare number or
// .equ constant) and its value.
func (a *assembler) immOperand(f string) (int64, bool, error) {
	s := f
	explicit := strings.HasPrefix(s, "#")
	if explicit {
		s = s[1:]
	}
	if v, ok := a.equ[s]; ok {
		return v, true, nil
	}
	v, err := parseNumber(s)
	if err != nil {
		if explicit {
			return 0, false, a.errf("bad immediate %q", f)
		}
		return 0, false, nil
	}
	return v, true, nil
}

// memOperand splits "off(rb)" into its displacement text and base register.
func (a *assembler) memOperand(f string) (string, isa.Reg, error) {
	open := strings.Index(f, "(")
	if open < 0 || !strings.HasSuffix(f, ")") {
		return "", 0, a.errf("bad memory operand %q", f)
	}
	rb, err := a.reg(f[open+1 : len(f)-1])
	if err != nil {
		return "", 0, err
	}
	return strings.TrimSpace(f[:open]), rb, nil
}

func (a *assembler) parenReg(f string) (isa.Reg, error) {
	if !strings.HasPrefix(f, "(") || !strings.HasSuffix(f, ")") {
		return 0, a.errf("expected (reg), got %q", f)
	}
	return a.reg(f[1 : len(f)-1])
}

func (a *assembler) reg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "zero":
		return isa.RegZero, nil
	case "sp":
		return isa.RegSP, nil
	case "ra":
		return isa.RegRA, nil
	}
	if strings.HasPrefix(s, "r") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, a.errf("bad register %q", s)
}

func (a *assembler) number(s string) (int64, error) {
	s = strings.TrimSpace(strings.TrimPrefix(s, "#"))
	if v, ok := a.equ[s]; ok {
		return v, nil
	}
	v, err := parseNumber(s)
	if err != nil {
		return 0, a.errf("bad number %q", s)
	}
	return v, nil
}

func parseNumber(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(strings.ToLower(s), "0x") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
