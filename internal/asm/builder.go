// Package asm turns programs into isa.Program images. It offers two layers:
//
//   - Builder: a programmatic emitter with label fixups, used by the
//     procedural workload generators in internal/workload.
//   - Assemble: a two-pass text assembler for a small Alpha-flavoured
//     syntax, used to write the hand-crafted benchmark kernels legibly.
package asm

import (
	"fmt"
	"sort"

	"profileme/internal/isa"
)

// Builder incrementally constructs a program image. Branch and call targets
// may name labels that are defined later; they are resolved by Build.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	insts      []isa.Inst
	labels     map[string]uint64
	data       map[uint64]uint64
	dataAddr   uint64
	procs      []isa.Proc
	openProc   string
	procFrom   uint64
	fixups     []fixup
	dataFixups []dataFixup
	entry      string
	errs       []error
}

type dataFixup struct {
	addr  uint64
	label string
}

type fixup struct {
	inst  int    // index into insts
	label string // target label
	where string // context for error reporting
}

// NewBuilder returns an empty Builder. The data cursor starts at
// DefaultDataBase so that data addresses never collide with code PCs.
func NewBuilder() *Builder {
	return &Builder{
		labels:   make(map[string]uint64),
		data:     make(map[uint64]uint64),
		dataAddr: DefaultDataBase,
	}
}

// DefaultDataBase is the address where the data segment starts unless
// overridden with Org.
const DefaultDataBase uint64 = 0x1_0000

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() uint64 { return uint64(len(b.insts)) * isa.InstBytes }

// errf records a construction error; Build reports the first one.
func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("asm: "+format, args...))
}

// Label binds name to the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
		return b
	}
	b.labels[name] = b.PC()
	return b
}

// DataLabel binds name to the current data cursor.
func (b *Builder) DataLabel(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
		return b
	}
	b.labels[name] = b.dataAddr
	return b
}

// LabelValue returns the value bound to a label so far, for callers that
// interleave emission and address computation.
func (b *Builder) LabelValue(name string) (uint64, bool) {
	v, ok := b.labels[name]
	return v, ok
}

// Proc opens a procedure. Procedures must not nest; an open procedure is
// closed by EndProc. A label with the procedure's name is bound as well.
func (b *Builder) Proc(name string) *Builder {
	if b.openProc != "" {
		b.errf("procedure %q opened inside %q", name, b.openProc)
		return b
	}
	b.openProc = name
	b.procFrom = b.PC()
	b.Label(name)
	return b
}

// EndProc closes the currently open procedure.
func (b *Builder) EndProc() *Builder {
	if b.openProc == "" {
		b.errf("EndProc with no open procedure")
		return b
	}
	b.procs = append(b.procs, isa.Proc{Name: b.openProc, Start: b.procFrom, End: b.PC()})
	b.openProc = ""
	return b
}

// Entry selects the label execution starts at. The default is "main" when
// defined, else PC 0.
func (b *Builder) Entry(label string) *Builder {
	b.entry = label
	return b
}

// Org moves the data cursor.
func (b *Builder) Org(addr uint64) *Builder {
	b.dataAddr = addr
	return b
}

// Word emits 64-bit data words at the data cursor.
func (b *Builder) Word(vs ...uint64) *Builder {
	for _, v := range vs {
		b.data[b.dataAddr] = v
		b.dataAddr += 8
	}
	return b
}

// WordLabel emits one 64-bit data word holding the value of a label
// (resolved at Build), e.g. a code address for a jump table.
func (b *Builder) WordLabel(label string) *Builder {
	b.dataFixups = append(b.dataFixups, dataFixup{addr: b.dataAddr, label: label})
	b.data[b.dataAddr] = 0
	b.dataAddr += 8
	return b
}

// Space reserves n bytes of zeroed data (rounded up to whole words).
func (b *Builder) Space(n uint64) *Builder {
	b.dataAddr += (n + 7) &^ 7
	return b
}

// DataAddr returns the current data cursor.
func (b *Builder) DataAddr() uint64 { return b.dataAddr }

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

// EmitTo appends a control-flow instruction whose Target will be resolved
// to label by Build.
func (b *Builder) EmitTo(in isa.Inst, label string) *Builder {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label,
		where: fmt.Sprintf("pc 0x%x (%s)", b.PC(), in.Op)})
	b.insts = append(b.insts, in)
	return b
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.Emit(isa.Inst{Op: isa.OpNop}) }

// Op3 emits a three-register ALU-style operation rc = ra op rb.
func (b *Builder) Op3(op isa.Op, rc, ra, rb isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: op, Ra: ra, Rb: rb, Rc: rc})
}

// OpI emits an immediate ALU-style operation rc = ra op imm.
func (b *Builder) OpI(op isa.Op, rc, ra isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: op, Ra: ra, Rc: rc, Imm: imm, UseImm: true})
}

// Add emits rc = ra + rb.
func (b *Builder) Add(rc, ra, rb isa.Reg) *Builder { return b.Op3(isa.OpAdd, rc, ra, rb) }

// AddI emits rc = ra + imm.
func (b *Builder) AddI(rc, ra isa.Reg, imm int64) *Builder { return b.OpI(isa.OpAdd, rc, ra, imm) }

// Sub emits rc = ra - rb.
func (b *Builder) Sub(rc, ra, rb isa.Reg) *Builder { return b.Op3(isa.OpSub, rc, ra, rb) }

// SubI emits rc = ra - imm.
func (b *Builder) SubI(rc, ra isa.Reg, imm int64) *Builder { return b.OpI(isa.OpSub, rc, ra, imm) }

// Mul emits rc = ra * rb (long latency).
func (b *Builder) Mul(rc, ra, rb isa.Reg) *Builder { return b.Op3(isa.OpMul, rc, ra, rb) }

// Lda emits rc = rb + imm.
func (b *Builder) Lda(rc, rb isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpLda, Rb: rb, Rc: rc, Imm: imm})
}

// LdaLabel emits rc = address-of(label); the immediate is fixed up by Build.
func (b *Builder) LdaLabel(rc isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label,
		where: fmt.Sprintf("pc 0x%x (lda)", b.PC())})
	return b.Emit(isa.Inst{Op: isa.OpLda, Rb: isa.RegZero, Rc: rc})
}

// LdI emits rc = constant via lda off zero.
func (b *Builder) LdI(rc isa.Reg, v int64) *Builder { return b.Lda(rc, isa.RegZero, v) }

// Ld emits rc = mem[rb+off].
func (b *Builder) Ld(rc, rb isa.Reg, off int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpLd, Rb: rb, Rc: rc, Imm: off})
}

// Pref emits a data-cache prefetch of mem[rb+off].
func (b *Builder) Pref(rb isa.Reg, off int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpPref, Rb: rb, Imm: off})
}

// St emits mem[rb+off] = ra.
func (b *Builder) St(ra, rb isa.Reg, off int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpSt, Ra: ra, Rb: rb, Imm: off})
}

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) *Builder {
	return b.EmitTo(isa.Inst{Op: isa.OpBr}, label)
}

// CondBr emits a conditional branch testing ra against zero.
func (b *Builder) CondBr(op isa.Op, ra isa.Reg, label string) *Builder {
	if op.Class() != isa.ClassBranch {
		b.errf("CondBr with non-branch op %v", op)
		return b
	}
	return b.EmitTo(isa.Inst{Op: op, Ra: ra}, label)
}

// Beq emits a branch to label when ra == 0.
func (b *Builder) Beq(ra isa.Reg, label string) *Builder { return b.CondBr(isa.OpBeq, ra, label) }

// Bne emits a branch to label when ra != 0.
func (b *Builder) Bne(ra isa.Reg, label string) *Builder { return b.CondBr(isa.OpBne, ra, label) }

// Blt emits a branch to label when ra < 0.
func (b *Builder) Blt(ra isa.Reg, label string) *Builder { return b.CondBr(isa.OpBlt, ra, label) }

// Bge emits a branch to label when ra >= 0.
func (b *Builder) Bge(ra isa.Reg, label string) *Builder { return b.CondBr(isa.OpBge, ra, label) }

// Jsr emits a direct call to label, linking in RegRA.
func (b *Builder) Jsr(label string) *Builder {
	return b.EmitTo(isa.Inst{Op: isa.OpJsr, Rc: isa.RegRA}, label)
}

// Ret emits a return through RegRA.
func (b *Builder) Ret() *Builder {
	return b.Emit(isa.Inst{Op: isa.OpRet, Rb: isa.RegRA})
}

// Jmp emits an indirect jump through rb.
func (b *Builder) Jmp(rb isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.OpJmp, Rb: rb})
}

// Build resolves fixups and returns the validated program image.
func (b *Builder) Build() (*isa.Program, error) {
	if b.openProc != "" {
		b.errf("procedure %q not closed", b.openProc)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		v, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q at %s", f.label, f.where)
		}
		in := &b.insts[f.inst]
		if in.Op == isa.OpLda {
			in.Imm = int64(v)
		} else {
			in.Target = v
		}
	}
	for _, f := range b.dataFixups {
		v, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q in data word", f.label)
		}
		b.data[f.addr] = v
	}
	procs := append([]isa.Proc(nil), b.procs...)
	sort.Slice(procs, func(i, j int) bool { return procs[i].Start < procs[j].Start })
	p := &isa.Program{
		Insts:  append([]isa.Inst(nil), b.insts...),
		Labels: b.labels,
		Procs:  procs,
		Data:   b.data,
	}
	if b.entry != "" {
		pc, ok := b.labels[b.entry]
		if !ok {
			return nil, fmt.Errorf("asm: undefined entry label %q", b.entry)
		}
		p.Entry = pc
	} else if pc, ok := b.labels["main"]; ok {
		p.Entry = pc
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build, panicking on error. For statically known-good
// programs in workloads and tests.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
