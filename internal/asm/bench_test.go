package asm

import "testing"

func BenchmarkAssemble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(loopSrc); err != nil {
			b.Fatal(err)
		}
	}
}
