package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Proc describes a procedure: a named, contiguous range of instructions.
// Procedures are the unit of the interprocedural path analysis in
// internal/pathprof.
type Proc struct {
	Name  string
	Start uint64 // PC of the first instruction
	End   uint64 // PC one past the last instruction
}

// Contains reports whether pc lies inside the procedure.
func (p Proc) Contains(pc uint64) bool { return pc >= p.Start && pc < p.End }

// Program is an assembled program image: instructions at consecutive PCs
// starting at 0, label and procedure metadata, and initial data memory.
type Program struct {
	Insts  []Inst
	Labels map[string]uint64 // label name -> PC
	Procs  []Proc            // sorted by Start
	Data   map[uint64]uint64 // initial contents of data memory (word addressed)
	Entry  uint64            // PC of the first instruction to execute
}

// At returns the instruction at pc. ok is false when pc is outside the
// image or not instruction-aligned.
func (p *Program) At(pc uint64) (Inst, bool) {
	if pc%InstBytes != 0 {
		return Inst{}, false
	}
	idx := pc / InstBytes
	if idx >= uint64(len(p.Insts)) {
		return Inst{}, false
	}
	return p.Insts[idx], true
}

// Len returns the number of instructions in the image.
func (p *Program) Len() int { return len(p.Insts) }

// MaxPC returns the PC one past the last instruction.
func (p *Program) MaxPC() uint64 { return uint64(len(p.Insts)) * InstBytes }

// Label returns the PC of a label and whether it exists.
func (p *Program) Label(name string) (uint64, bool) {
	pc, ok := p.Labels[name]
	return pc, ok
}

// ProcAt returns the procedure containing pc, or nil if none does.
func (p *Program) ProcAt(pc uint64) *Proc {
	i := sort.Search(len(p.Procs), func(i int) bool { return p.Procs[i].End > pc })
	if i < len(p.Procs) && p.Procs[i].Contains(pc) {
		return &p.Procs[i]
	}
	return nil
}

// ProcByName returns the named procedure, or nil.
func (p *Program) ProcByName(name string) *Proc {
	for i := range p.Procs {
		if p.Procs[i].Name == name {
			return &p.Procs[i]
		}
	}
	return nil
}

// SymbolFor returns a human-readable "proc+offset" string for pc, falling
// back to a hex PC when no procedure contains it.
func (p *Program) SymbolFor(pc uint64) string {
	if pr := p.ProcAt(pc); pr != nil {
		return fmt.Sprintf("%s+0x%x", pr.Name, pc-pr.Start)
	}
	return fmt.Sprintf("0x%x", pc)
}

// Disassemble renders the whole image with PCs and label annotations.
func (p *Program) Disassemble() string {
	byPC := make(map[uint64][]string)
	for name, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], name)
	}
	for pc := range byPC {
		sort.Strings(byPC[pc])
	}
	var b strings.Builder
	for i, in := range p.Insts {
		pc := uint64(i) * InstBytes
		for _, l := range byPC[pc] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  0x%04x  %s\n", pc, in)
	}
	return b.String()
}

// Validate checks structural invariants of the image: direct control
// transfers land on in-image, aligned PCs; registers are in range; and
// procedure ranges are well-formed and non-overlapping. It returns the
// first problem found, or nil.
func (p *Program) Validate() error {
	for i, in := range p.Insts {
		pc := uint64(i) * InstBytes
		if !in.Ra.Valid() || !in.Rb.Valid() || !in.Rc.Valid() {
			return fmt.Errorf("isa: pc 0x%x: register out of range in %v", pc, in)
		}
		if in.Op.IsControl() && !in.Op.IsIndirect() {
			if in.Target%InstBytes != 0 {
				return fmt.Errorf("isa: pc 0x%x: misaligned target 0x%x", pc, in.Target)
			}
			if in.Target >= p.MaxPC() {
				return fmt.Errorf("isa: pc 0x%x: target 0x%x outside image", pc, in.Target)
			}
		}
	}
	if p.Entry >= p.MaxPC() && p.Len() > 0 {
		return fmt.Errorf("isa: entry 0x%x outside image", p.Entry)
	}
	var prev *Proc
	for i := range p.Procs {
		pr := &p.Procs[i]
		if pr.End <= pr.Start {
			return fmt.Errorf("isa: procedure %s has empty range", pr.Name)
		}
		if pr.End > p.MaxPC() {
			return fmt.Errorf("isa: procedure %s extends past image end", pr.Name)
		}
		if prev != nil && pr.Start < prev.End {
			return fmt.Errorf("isa: procedures %s and %s overlap", prev.Name, pr.Name)
		}
		prev = pr
	}
	return nil
}
