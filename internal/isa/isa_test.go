package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
	}
}

func TestClassCoverage(t *testing.T) {
	// Every op has a class, and the class's predicates are consistent.
	for op := Op(0); int(op) < NumOps; op++ {
		c := op.Class()
		if c.String() == "" {
			t.Errorf("%v: empty class name", op)
		}
		if op.IsConditional() && c != ClassBranch {
			t.Errorf("%v: conditional but class %v", op, c)
		}
		if op.IsIndirect() && !(c == ClassJmpInd || c == ClassRet) {
			t.Errorf("%v: indirect with class %v", op, c)
		}
		if op.IsMem() != (c == ClassLoad || c == ClassStore) {
			t.Errorf("%v: IsMem inconsistent with class %v", op, c)
		}
	}
}

func TestControlOps(t *testing.T) {
	controls := []Op{OpBr, OpBeq, OpBne, OpBlt, OpBge, OpBle, OpBgt, OpJsr, OpJmp, OpRet}
	for _, op := range controls {
		if !op.IsControl() {
			t.Errorf("%v should be control", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLd, OpSt, OpNop, OpFAdd} {
		if op.IsControl() {
			t.Errorf("%v should not be control", op)
		}
	}
}

func TestDestRules(t *testing.T) {
	cases := []struct {
		in   Inst
		reg  Reg
		want bool
	}{
		{Inst{Op: OpAdd, Ra: 1, Rb: 2, Rc: 3}, 3, true},
		{Inst{Op: OpAdd, Ra: 1, Rb: 2, Rc: RegZero}, 0, false},
		{Inst{Op: OpLd, Rb: 2, Rc: 5}, 5, true},
		{Inst{Op: OpSt, Ra: 1, Rb: 2}, 0, false},
		{Inst{Op: OpJsr, Rc: RegRA}, RegRA, true},
		{Inst{Op: OpBeq, Ra: 4}, 0, false},
		{Inst{Op: OpRet, Rb: RegRA}, 0, false},
		{Inst{Op: OpNop}, 0, false},
		{Inst{Op: OpFDiv, Ra: 1, Rb: 2, Rc: 9}, 9, true},
	}
	for _, c := range cases {
		r, ok := c.in.Dest()
		if ok != c.want || (ok && r != c.reg) {
			t.Errorf("%v: Dest() = (%v, %v), want (%v, %v)", c.in, r, ok, c.reg, c.want)
		}
	}
}

func TestSrcsRules(t *testing.T) {
	cases := []struct {
		in   Inst
		want []Reg
	}{
		{Inst{Op: OpAdd, Ra: 1, Rb: 2, Rc: 3}, []Reg{1, 2}},
		{Inst{Op: OpAdd, Ra: 1, Rc: 3, UseImm: true, Imm: 7}, []Reg{1}},
		{Inst{Op: OpLda, Rb: 4, Rc: 3, Imm: 8}, []Reg{4}},
		{Inst{Op: OpLda, Rb: RegZero, Rc: 3, Imm: 8}, nil},
		{Inst{Op: OpLd, Rb: 2, Rc: 5, Imm: 16}, []Reg{2}},
		{Inst{Op: OpSt, Ra: 7, Rb: 2, Imm: 16}, []Reg{7, 2}},
		{Inst{Op: OpBeq, Ra: 4}, []Reg{4}},
		{Inst{Op: OpBr}, nil},
		{Inst{Op: OpJmp, Rb: 9}, []Reg{9}},
		{Inst{Op: OpRet, Rb: RegRA}, []Reg{RegRA}},
		{Inst{Op: OpAdd, Ra: RegZero, Rb: RegZero, Rc: 1}, nil},
	}
	for _, c := range cases {
		got := c.in.Srcs(nil)
		if len(got) != len(c.want) {
			t.Errorf("%v: Srcs = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v: Srcs = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestSrcsNeverIncludesZero(t *testing.T) {
	f := func(op uint8, ra, rb, rc uint8, useImm bool) bool {
		in := Inst{
			Op: Op(op % uint8(NumOps)), Ra: Reg(ra % NumRegs),
			Rb: Reg(rb % NumRegs), Rc: Reg(rc % NumRegs), UseImm: useImm,
		}
		for _, s := range in.Srcs(nil) {
			if s == RegZero || !s.Valid() {
				return false
			}
		}
		if d, ok := in.Dest(); ok && (d == RegZero || !d.Valid()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Ra: 1, Rb: 2, Rc: 3}, "add r3, r1, r2"},
		{Inst{Op: OpAdd, Ra: 1, Rc: 3, UseImm: true, Imm: -4}, "add r3, r1, #-4"},
		{Inst{Op: OpLd, Rb: 2, Rc: 5, Imm: 16}, "ld r5, 16(r2)"},
		{Inst{Op: OpSt, Ra: 5, Rb: 2, Imm: 16}, "st r5, 16(r2)"},
		{Inst{Op: OpBeq, Ra: 4, Target: 0x40}, "beq r4, 0x40"},
		{Inst{Op: OpJsr, Rc: RegRA, Target: 0x80}, "jsr ra, 0x80"},
		{Inst{Op: OpRet, Rb: RegRA}, "ret (ra)"},
		{Inst{Op: OpNop}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRegString(t *testing.T) {
	if RegZero.String() != "zero" || RegSP.String() != "sp" || RegRA.String() != "ra" {
		t.Fatal("special register names wrong")
	}
	if Reg(5).String() != "r5" {
		t.Fatal("r5 name wrong")
	}
}

func testProgram() *Program {
	return &Program{
		Insts: []Inst{
			{Op: OpLda, Rc: 1, Rb: RegZero, Imm: 10},
			{Op: OpAdd, Ra: 1, Rc: 1, UseImm: true, Imm: -1},
			{Op: OpBne, Ra: 1, Target: 4},
			{Op: OpRet, Rb: RegRA},
		},
		Labels: map[string]uint64{"main": 0, "loop": 4},
		Procs:  []Proc{{Name: "main", Start: 0, End: 16}},
	}
}

func TestProgramAt(t *testing.T) {
	p := testProgram()
	if in, ok := p.At(4); !ok || in.Op != OpAdd {
		t.Fatalf("At(4) = %v, %v", in, ok)
	}
	if _, ok := p.At(5); ok {
		t.Fatal("misaligned At should fail")
	}
	if _, ok := p.At(16); ok {
		t.Fatal("out-of-range At should fail")
	}
	if p.Len() != 4 || p.MaxPC() != 16 {
		t.Fatalf("Len=%d MaxPC=%d", p.Len(), p.MaxPC())
	}
}

func TestProgramProcLookup(t *testing.T) {
	p := testProgram()
	if pr := p.ProcAt(8); pr == nil || pr.Name != "main" {
		t.Fatal("ProcAt(8) failed")
	}
	if pr := p.ProcAt(100); pr != nil {
		t.Fatal("ProcAt(100) should be nil")
	}
	if pr := p.ProcByName("main"); pr == nil {
		t.Fatal("ProcByName failed")
	}
	if pr := p.ProcByName("nope"); pr != nil {
		t.Fatal("ProcByName(nope) should be nil")
	}
	if s := p.SymbolFor(8); s != "main+0x8" {
		t.Fatalf("SymbolFor = %q", s)
	}
	if s := p.SymbolFor(0x100); s != "0x100" {
		t.Fatalf("SymbolFor out of range = %q", s)
	}
}

func TestProgramValidateOK(t *testing.T) {
	if err := testProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramValidateBadTarget(t *testing.T) {
	p := testProgram()
	p.Insts[2].Target = 1000
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-image target not caught")
	}
	p.Insts[2].Target = 2
	if err := p.Validate(); err == nil {
		t.Fatal("misaligned target not caught")
	}
}

func TestProgramValidateBadProcs(t *testing.T) {
	p := testProgram()
	p.Procs = []Proc{{Name: "a", Start: 0, End: 12}, {Name: "b", Start: 8, End: 16}}
	if err := p.Validate(); err == nil {
		t.Fatal("overlapping procs not caught")
	}
	p.Procs = []Proc{{Name: "a", Start: 8, End: 8}}
	if err := p.Validate(); err == nil {
		t.Fatal("empty proc not caught")
	}
	p.Procs = []Proc{{Name: "a", Start: 0, End: 100}}
	if err := p.Validate(); err == nil {
		t.Fatal("proc past image end not caught")
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	d := testProgram().Disassemble()
	if !strings.Contains(d, "loop:") || !strings.Contains(d, "main:") {
		t.Fatalf("disassembly missing labels:\n%s", d)
	}
	if !strings.Contains(d, "bne r1, 0x4") {
		t.Fatalf("disassembly missing branch:\n%s", d)
	}
}
