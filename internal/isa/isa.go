// Package isa defines the small Alpha-flavoured instruction set used by the
// ProfileMe reproduction: a load/store RISC architecture with 32 integer
// registers, PC-relative direct branches, register-indirect jumps, and a
// handful of long-latency "floating point" operations (which, to keep the
// functional simulator simple, operate on the same 64-bit integer register
// file — only their latency class differs).
//
// The ISA exists so that the out-of-order pipeline in internal/cpu has real
// programs to run: loops, procedure calls, pointer chases and branchy code
// whose fetch, issue and retire behaviour exercises every event ProfileMe
// records. It is deliberately minimal but complete: any workload in
// internal/workload is expressible, assemblable (internal/asm), executable
// (internal/sim) and timeable (internal/cpu).
package isa

import "fmt"

// Reg names an architectural register, 0 through 31. Register 31 always
// reads as zero and writes to it are discarded, as on the Alpha.
type Reg uint8

// Architectural register constants.
const (
	// NumRegs is the number of architectural integer registers.
	NumRegs = 32
	// RegZero always reads as zero.
	RegZero Reg = 31
	// RegSP is the conventional stack pointer.
	RegSP Reg = 30
	// RegRA is the conventional return-address (link) register.
	RegRA Reg = 26
)

// String returns the assembly name of the register.
func (r Reg) String() string {
	switch r {
	case RegZero:
		return "zero"
	case RegSP:
		return "sp"
	case RegRA:
		return "ra"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an operation code.
type Op uint8

// Operation codes. Grouped by class; see Op.Class.
const (
	OpNop Op = iota

	// Integer ALU (1-cycle). Three-operand: Rc = Ra op (Rb | Imm).
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpCmpEq // Rc = (Ra == src2) ? 1 : 0
	OpCmpLt // signed <
	OpCmpLe // signed <=
	OpCmpULt
	OpLda // Rc = Rb + Imm (address/constant formation)

	// Integer multiply (long latency).
	OpMul

	// "Floating point" classes: integer semantics, FP issue queue and
	// latency. Fadd/Fmul are pipelined; Fdiv is unpipelined.
	OpFAdd
	OpFMul
	OpFDiv

	// Memory. Ld: Rc = mem[Rb+Imm]. St: mem[Rb+Imm] = Ra.
	OpLd
	OpSt
	// Pref touches mem[Rb+Imm] to pull the line into the data cache but
	// writes no register and never faults — the prefetch instruction
	// profile-guided optimization inserts (paper §7, "the insertion of
	// prefetches").
	OpPref

	// Control.
	OpBr  // unconditional direct branch to Target
	OpBeq // branch to Target when Ra == 0
	OpBne // ... Ra != 0
	OpBlt // ... Ra < 0 (signed)
	OpBge // ... Ra >= 0
	OpBle // ... Ra <= 0
	OpBgt // ... Ra > 0
	OpJsr // direct call: Rc = PC+4 (link), jump to Target
	OpJmp // indirect jump to the address in Rb
	OpRet // indirect return to the address in Rb (conventionally ra)

	opCount // sentinel; keep last
)

// NumOps is the number of defined operation codes.
const NumOps = int(opCount)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpSll: "sll", OpSrl: "srl", OpSra: "sra",
	OpCmpEq: "cmpeq", OpCmpLt: "cmplt", OpCmpLe: "cmple", OpCmpULt: "cmpult",
	OpLda: "lda", OpMul: "mul",
	OpFAdd: "fadd", OpFMul: "fmul", OpFDiv: "fdiv",
	OpLd: "ld", OpSt: "st", OpPref: "pref",
	OpBr: "br", OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBle: "ble", OpBgt: "bgt", OpJsr: "jsr", OpJmp: "jmp", OpRet: "ret",
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class partitions operations by the pipeline resources they use.
type Class uint8

// Operation classes, in the order the issue logic distinguishes them.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassFAdd // pipelined FP
	ClassFDiv // unpipelined FP
	ClassLoad
	ClassStore
	ClassBranch // conditional direct branch
	ClassJump   // unconditional direct branch
	ClassCall   // direct call (writes link register)
	ClassJmpInd // indirect jump
	ClassRet    // indirect return
	NumClasses  = iota
)

var classNames = [...]string{
	ClassNop: "nop", ClassIntALU: "ialu", ClassIntMul: "imul",
	ClassFAdd: "fadd", ClassFDiv: "fdiv", ClassLoad: "load",
	ClassStore: "store", ClassBranch: "cbr", ClassJump: "jump",
	ClassCall: "call", ClassJmpInd: "ijmp", ClassRet: "ret",
}

// String returns a short name for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Class returns the pipeline class of op.
func (op Op) Class() Class {
	switch op {
	case OpNop:
		return ClassNop
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra,
		OpCmpEq, OpCmpLt, OpCmpLe, OpCmpULt, OpLda:
		return ClassIntALU
	case OpMul:
		return ClassIntMul
	case OpFAdd, OpFMul:
		return ClassFAdd
	case OpFDiv:
		return ClassFDiv
	case OpLd, OpPref:
		return ClassLoad
	case OpSt:
		return ClassStore
	case OpBr:
		return ClassJump
	case OpBeq, OpBne, OpBlt, OpBge, OpBle, OpBgt:
		return ClassBranch
	case OpJsr:
		return ClassCall
	case OpJmp:
		return ClassJmpInd
	case OpRet:
		return ClassRet
	default:
		return ClassNop
	}
}

// IsControl reports whether op can redirect the PC.
func (op Op) IsControl() bool {
	switch op.Class() {
	case ClassBranch, ClassJump, ClassCall, ClassJmpInd, ClassRet:
		return true
	}
	return false
}

// IsConditional reports whether op is a conditional branch.
func (op Op) IsConditional() bool { return op.Class() == ClassBranch }

// IsIndirect reports whether op's target comes from a register.
func (op Op) IsIndirect() bool {
	c := op.Class()
	return c == ClassJmpInd || c == ClassRet
}

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool {
	c := op.Class()
	return c == ClassLoad || c == ClassStore
}

// InstBytes is the size of one instruction; PCs advance by this amount.
const InstBytes = 4

// Inst is a decoded instruction. The interpretation of the fields depends
// on the class:
//
//	ALU/mul/FP: Rc = Ra op src2, where src2 is Rb or Imm (UseImm).
//	lda:        Rc = Rb + Imm.
//	ld:         Rc = mem[Rb+Imm];  st: mem[Rb+Imm] = Ra.
//	branches:   test Ra, jump to Target (conditional) or always.
//	jsr:        Rc = link, jump to Target.
//	jmp/ret:    jump to value in Rb.
type Inst struct {
	Op     Op
	Ra     Reg    // first source (also the store value and branch condition)
	Rb     Reg    // second source / base register / indirect target
	Rc     Reg    // destination (link register for jsr)
	Imm    int64  // immediate operand or memory displacement
	Target uint64 // static target PC for direct branches and calls
	UseImm bool   // ALU second operand is Imm rather than Rb
}

// Dest returns the destination register and whether the instruction writes
// one. Writes to RegZero are reported as no destination.
func (in Inst) Dest() (Reg, bool) {
	var d Reg
	switch in.Op.Class() {
	case ClassIntALU, ClassIntMul, ClassFAdd, ClassFDiv, ClassLoad, ClassCall:
		if in.Op == OpPref {
			return 0, false // prefetches write nothing
		}
		d = in.Rc
	default:
		return 0, false
	}
	if d == RegZero {
		return 0, false
	}
	return d, true
}

// Srcs appends the source registers the instruction reads to dst and
// returns it. Reads of RegZero are omitted (they never create dependences).
func (in Inst) Srcs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != RegZero {
			dst = append(dst, r)
		}
	}
	switch in.Op.Class() {
	case ClassIntALU, ClassIntMul, ClassFAdd, ClassFDiv:
		if in.Op == OpLda {
			add(in.Rb)
			break
		}
		add(in.Ra)
		if !in.UseImm {
			add(in.Rb)
		}
	case ClassLoad:
		add(in.Rb)
	case ClassStore:
		add(in.Ra)
		add(in.Rb)
	case ClassBranch:
		add(in.Ra)
	case ClassJmpInd, ClassRet:
		add(in.Rb)
	}
	return dst
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch in.Op.Class() {
	case ClassNop:
		return "nop"
	case ClassIntALU, ClassIntMul, ClassFAdd, ClassFDiv:
		if in.Op == OpLda {
			return fmt.Sprintf("lda %s, %d(%s)", in.Rc, in.Imm, in.Rb)
		}
		if in.UseImm {
			return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Rc, in.Ra, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rc, in.Ra, in.Rb)
	case ClassLoad:
		if in.Op == OpPref {
			return fmt.Sprintf("pref %d(%s)", in.Imm, in.Rb)
		}
		return fmt.Sprintf("ld %s, %d(%s)", in.Rc, in.Imm, in.Rb)
	case ClassStore:
		return fmt.Sprintf("st %s, %d(%s)", in.Ra, in.Imm, in.Rb)
	case ClassBranch:
		return fmt.Sprintf("%s %s, 0x%x", in.Op, in.Ra, in.Target)
	case ClassJump:
		return fmt.Sprintf("br 0x%x", in.Target)
	case ClassCall:
		return fmt.Sprintf("jsr %s, 0x%x", in.Rc, in.Target)
	case ClassJmpInd:
		return fmt.Sprintf("jmp (%s)", in.Rb)
	case ClassRet:
		return fmt.Sprintf("ret (%s)", in.Rb)
	}
	return in.Op.String()
}
