// Package difftest is the correctness anchor for simulator performance
// work: it drives identical workloads and seeds through the out-of-order
// timing pipeline (internal/cpu) and the functional ISA simulator
// (internal/sim) and reduces everything observable about the run to a
// small set of content digests —
//
//   - the retired instruction stream (sequence numbers and PCs, in
//     retirement order), which must be exactly the functional execution
//     stream: the pipeline may fetch down wrong paths, replay, and squash,
//     but architecturally it must retire precisely the instructions the
//     ISA executes, in order, once each;
//   - the final architectural state (register file plus canonical data
//     memory) of the functional machine;
//   - the serialized profile.DB produced by a seeded ProfileMe unit
//     attached to the pipeline, which pins the cycle-level timing, the
//     sampling decisions, and the sample delivery path bit-for-bit;
//   - the pipeline's cycle count and retired-instruction total.
//
// The golden files under testdata/ were generated from the tree BEFORE the
// hot-path optimization pass (PR 5) and are regenerated only deliberately
// (go test ./internal/difftest -run TestGoldenDigests -update), so any
// optimization that changes observable behavior — timing, sampling,
// retirement, architectural state — fails the suite instead of silently
// shifting results.
package difftest

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

// Spec names one differential run: a workload at a scale, and the seed and
// mean interval of the ProfileMe unit sampling it.
type Spec struct {
	Workload string  `json:"workload"`
	Scale    int     `json:"scale"`
	Seed     uint64  `json:"seed"`
	Interval float64 `json:"interval"`
}

// Key is the golden-map key for the spec.
func (s Spec) Key() string {
	return fmt.Sprintf("%s/scale=%d/seed=%d/s=%g", s.Workload, s.Scale, s.Seed, s.Interval)
}

// Digest is everything a differential run pins down.
type Digest struct {
	// Retired is the number of instructions the pipeline retired; it must
	// equal the number the functional machine executed.
	Retired uint64 `json:"retired"`
	// Cycles is the pipeline's total cycle count — any timing change moves
	// this.
	Cycles int64 `json:"cycles"`
	// RetiredStream is the SHA-256 of the pipeline's retired (seq, pc)
	// stream in retirement order.
	RetiredStream string `json:"retired_stream"`
	// FinalState is the SHA-256 of the functional machine's canonical
	// architectural state (registers + nonzero memory words, sorted).
	FinalState string `json:"final_state"`
	// ProfileDB is the SHA-256 of the profile database serialized by
	// profile.DB.Save after the sampled pipeline run.
	ProfileDB string `json:"profile_db"`
}

// Run executes spec through both simulators and returns the digest. It
// fails loudly — rather than producing a digest — when the pipeline's
// retirement stream violates architectural equivalence while the run is
// still in flight: a skipped, duplicated, or out-of-order retirement.
func Run(spec Spec) (Digest, error) {
	bench, ok := workload.ByName(spec.Workload)
	if !ok {
		return Digest{}, fmt.Errorf("difftest: unknown workload %q", spec.Workload)
	}
	prog := bench.Build(spec.Scale)

	// Functional reference run: execution stream digest + final state.
	ref := sim.New(prog)
	refHash := sha256.New()
	refCount := uint64(0)
	if _, err := ref.Run(0, func(r sim.Record) {
		hashSeqPC(refHash, r.Seq, r.PC)
		refCount++
	}); err != nil {
		return Digest{}, fmt.Errorf("difftest: functional run: %w", err)
	}
	finalState := stateDigest(ref)

	// Timing run with a seeded ProfileMe unit and a retire-stream observer.
	ucfg := core.DefaultConfig()
	ucfg.MeanInterval = spec.Interval
	ucfg.BufferDepth = 4
	ucfg.Seed = spec.Seed
	unit, err := core.NewUnit(ucfg)
	if err != nil {
		return Digest{}, fmt.Errorf("difftest: unit: %w", err)
	}
	db := profile.NewDB(spec.Interval, 0, 4)

	machine := sim.New(prog)
	src := sim.NewMachineSource(machine, 0)
	pipe, err := cpu.New(prog, src, cpu.DefaultConfig())
	if err != nil {
		return Digest{}, fmt.Errorf("difftest: pipeline: %w", err)
	}
	pipe.AttachProfileMe(unit, db.Handler())

	retHash := sha256.New()
	var retired uint64
	var streamErr error
	pipe.SetRetireHook(func(seq, pc uint64) {
		if streamErr == nil && seq != retired {
			streamErr = fmt.Errorf("difftest: retirement out of order: got seq %d, want %d (pc %#x)",
				seq, retired, pc)
		}
		hashSeqPC(retHash, seq, pc)
		retired++
	})

	res, err := pipe.Run(0)
	if err != nil {
		return Digest{}, fmt.Errorf("difftest: pipeline run: %w", err)
	}
	if serr := src.Err(); serr != nil {
		return Digest{}, fmt.Errorf("difftest: pipeline source: %w", serr)
	}
	if streamErr != nil {
		return Digest{}, streamErr
	}
	if retired != res.Retired {
		return Digest{}, fmt.Errorf("difftest: retire hook saw %d instructions, result says %d",
			retired, res.Retired)
	}
	if retired != refCount {
		return Digest{}, fmt.Errorf("difftest: pipeline retired %d instructions, functional machine executed %d",
			retired, refCount)
	}
	pipeStream := hex.EncodeToString(retHash.Sum(nil))
	refStream := hex.EncodeToString(refHash.Sum(nil))
	if pipeStream != refStream {
		return Digest{}, fmt.Errorf("difftest: retired stream diverged from functional execution (pipeline %s, functional %s)",
			pipeStream[:16], refStream[:16])
	}

	// The pipeline replays a second functional machine; its final state
	// must match the reference machine's (locks the sim.Machine
	// representation against the reference run's).
	if got := stateDigest(machine); got != finalState {
		return Digest{}, fmt.Errorf("difftest: pipeline-fed machine final state %s != reference %s",
			got[:16], finalState[:16])
	}

	db.RecordLoss(unit.Stats().Lost())
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		return Digest{}, fmt.Errorf("difftest: save profile: %w", err)
	}
	dbSum := sha256.Sum256(buf.Bytes())

	return Digest{
		Retired:       retired,
		Cycles:        res.Cycles,
		RetiredStream: pipeStream,
		FinalState:    finalState,
		ProfileDB:     hex.EncodeToString(dbSum[:]),
	}, nil
}

// Compare reports the first field where got differs from want, or nil.
func Compare(spec Spec, got, want Digest) error {
	switch {
	case got.Retired != want.Retired:
		return fmt.Errorf("difftest: %s: retired %d, golden %d", spec.Key(), got.Retired, want.Retired)
	case got.Cycles != want.Cycles:
		return fmt.Errorf("difftest: %s: cycles %d, golden %d", spec.Key(), got.Cycles, want.Cycles)
	case got.RetiredStream != want.RetiredStream:
		return fmt.Errorf("difftest: %s: retired-stream digest changed (%s -> %s)",
			spec.Key(), want.RetiredStream[:16], got.RetiredStream[:16])
	case got.FinalState != want.FinalState:
		return fmt.Errorf("difftest: %s: final-state digest changed (%s -> %s)",
			spec.Key(), want.FinalState[:16], got.FinalState[:16])
	case got.ProfileDB != want.ProfileDB:
		return fmt.Errorf("difftest: %s: profile.DB digest changed (%s -> %s)",
			spec.Key(), want.ProfileDB[:16], got.ProfileDB[:16])
	}
	return nil
}

// hashSeqPC folds one (seq, pc) pair into h.
func hashSeqPC(h hash.Hash, seq, pc uint64) {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], seq)
	binary.LittleEndian.PutUint64(b[8:16], pc)
	h.Write(b[:])
}

// stateDigest hashes a machine's canonical architectural state.
func stateDigest(m *sim.Machine) string {
	regs, mem := m.Snapshot()
	h := sha256.New()
	var b [16]byte
	for i, v := range regs {
		binary.LittleEndian.PutUint64(b[0:8], uint64(i))
		binary.LittleEndian.PutUint64(b[8:16], v)
		h.Write(b[:])
	}
	for _, w := range mem {
		binary.LittleEndian.PutUint64(b[0:8], w.Addr)
		binary.LittleEndian.PutUint64(b[8:16], w.Val)
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
