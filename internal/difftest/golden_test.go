package difftest

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"profileme/internal/workload"
)

// update regenerates testdata/golden.json from the current tree. Only do
// this deliberately, after establishing that a behavioral change is
// intended:
//
//	go test ./internal/difftest -run TestGoldenDigests -update
var update = flag.Bool("update", false, "regenerate golden digests from the current tree")

const goldenPath = "testdata/golden.json"

// goldenSeeds is the differential seed sweep: every workload runs once per
// seed. Eight seeds exercise distinct sampling-interval draws and therefore
// distinct interrupt timings, squash interactions, and sample streams.
var goldenSeeds = []uint64{1, 2, 3, 5, 8, 13, 21, 0xdeadbeef}

const (
	goldenScale    = 20_000
	goldenInterval = 64
)

// goldenSpecs enumerates the full sweep in deterministic order.
func goldenSpecs() []Spec {
	var specs []Spec
	for _, b := range workload.Suite() {
		for _, seed := range goldenSeeds {
			specs = append(specs, Spec{
				Workload: b.Name,
				Scale:    goldenScale,
				Seed:     seed,
				Interval: goldenInterval,
			})
		}
	}
	return specs
}

// TestGoldenDigests drives every workload × seed cell through the timing
// pipeline and the functional simulator and compares the run's digests
// (retired stream, final architectural state, serialized profile.DB, cycle
// count) against the checked-in goldens. Run itself asserts in-flight
// architectural equivalence between the two simulators, so a golden
// mismatch here means the run is self-consistent but *different* — a
// timing, sampling, or determinism change.
func TestGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is slow; skipped with -short")
	}
	specs := goldenSpecs()

	if *update {
		golden := make(map[string]Digest, len(specs))
		for _, spec := range specs {
			d, err := Run(spec)
			if err != nil {
				t.Fatalf("generate %s: %v", spec.Key(), err)
			}
			golden[spec.Key()] = d
		}
		writeGolden(t, golden)
		t.Logf("wrote %d golden digests to %s", len(golden), goldenPath)
		return
	}

	golden := readGolden(t)
	if len(golden) != len(specs) {
		t.Fatalf("golden file has %d entries, sweep has %d (regenerate with -update)", len(golden), len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Key(), func(t *testing.T) {
			t.Parallel()
			want, ok := golden[spec.Key()]
			if !ok {
				t.Fatalf("no golden entry for %s (regenerate with -update)", spec.Key())
			}
			got, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := Compare(spec, got, want); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestRunDeterminism re-runs one cell per workload and requires digest
// equality between back-to-back runs in the same process — a cheap guard
// against map-iteration or scheduling nondeterminism sneaking into the
// simulators themselves (as distinct from drifting away from the goldens).
func TestRunDeterminism(t *testing.T) {
	for _, b := range workload.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			spec := Spec{Workload: b.Name, Scale: 5_000, Seed: 42, Interval: goldenInterval}
			first, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			second, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if first != second {
				t.Errorf("two identical runs disagree:\n  first  %+v\n  second %+v", first, second)
			}
		})
	}
}

func readGolden(t *testing.T) map[string]Digest {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (generate with -update): %v", err)
	}
	var golden map[string]Digest
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	return golden
}

func writeGolden(t *testing.T, golden map[string]Digest) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := json.MarshalIndent(golden, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(goldenPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// ExampleRun documents the harness shape for DESIGN.md readers.
func ExampleRun() {
	d, err := Run(Spec{Workload: "compress", Scale: 500, Seed: 7, Interval: 64})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(d.Retired > 0, d.Cycles > 0)
	// Output: true true
}
