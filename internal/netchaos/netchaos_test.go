package netchaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestScheduleDeterministic: the phase schedule is a pure function of
// (seed, srcs, dsts, n) — same inputs, same phases; input order must
// not matter.
func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(42, []string{"router"}, []string{"c0", "c1", "c2"}, 12)
	b := Schedule(42, []string{"router"}, []string{"c2", "c0", "c1"}, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\nvs\n%v", a, b)
	}
	c := Schedule(43, []string{"router"}, []string{"c0", "c1", "c2"}, 12)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical 12-phase schedules")
	}
	kinds := map[int]bool{} // cut arity seen: 0 (heal), 1 (asym), 2 (sym)
	for _, ph := range Schedule(7, []string{"router"}, []string{"c0", "c1"}, 64) {
		kinds[len(ph.Cuts)] = true
	}
	for _, want := range []int{0, 1, 2} {
		if !kinds[want] {
			t.Fatalf("64-phase schedule never produced a phase with %d cuts", want)
		}
	}
}

// TestDrawDeterministic: two plans with the same seed draw the same
// fault sequence per link, independent of traffic on other links.
func TestDrawDeterministic(t *testing.T) {
	seq := func(withNoise bool) []decision {
		p := MustNewPlan(99, Light())
		out := make([]decision, 0, 50)
		for i := 0; i < 50; i++ {
			if withNoise {
				// Interleave traffic on ANOTHER link: must not perturb c0's.
				p.draw("router", "c1")
			}
			out = append(out, p.draw("router", "c0"))
		}
		return out
	}
	if a, b := seq(false), seq(true); !reflect.DeepEqual(a, b) {
		t.Fatalf("cross-link traffic perturbed a link's fault sequence")
	}
}

func TestValidate(t *testing.T) {
	bad := []Rates{
		{Latency: -0.1},
		{ResetAfter: 1.5},
		{LatencyMin: time.Second, LatencyMax: time.Millisecond, Latency: 0.5},
		{DripChunk: -1},
	}
	for i, r := range bad {
		if _, err := NewPlan(1, r); err == nil {
			t.Errorf("rates %d: invalid Rates accepted", i)
		}
	}
	if _, err := NewPlan(1, Light()); err != nil {
		t.Fatalf("Light rates rejected: %v", err)
	}
}

// TestPartition: a cut directed link fails with ErrPartitioned without
// the server seeing the request; healing restores it; an asymmetric cut
// leaves the other source's path up.
func TestPartition(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	p := MustNewPlan(1, Rates{})
	p.RegisterHost(ts.Listener.Addr().String(), "c0")
	router := &http.Client{Transport: p.Transport("router", nil)}
	other := &http.Client{Transport: p.Transport("witness", nil)}

	p.Partition("router", "c0")
	_, err := router.Get(ts.URL)
	if err == nil || !errors.Is(urlErr(t, err), ErrPartitioned) {
		t.Fatalf("cut link: got err %v, want ErrPartitioned", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("partitioned request reached the server")
	}
	// Asymmetric: witness->c0 still up.
	if resp, err := other.Get(ts.URL); err != nil {
		t.Fatalf("uncut link failed: %v", err)
	} else {
		resp.Body.Close()
	}
	p.Heal("router", "c0")
	if resp, err := router.Get(ts.URL); err != nil {
		t.Fatalf("healed link failed: %v", err)
	} else {
		resp.Body.Close()
	}
	if got := p.Counts().Partitioned; got != 1 {
		t.Fatalf("Partitioned count = %d, want 1", got)
	}
}

// urlErr unwraps the *url.Error an http.Client wraps transport errors
// in, returning the inner error.
func urlErr(t *testing.T, err error) error {
	t.Helper()
	inner := errors.Unwrap(err)
	if inner == nil {
		t.Fatalf("expected wrapped transport error, got %v", err)
	}
	return inner
}

// TestResetAfterDelivery: the fault the whole admission-ledger design
// exists for — the server fully processes the request, the client sees
// a transport error. The hit counter proves delivery happened.
func TestResetAfterDelivery(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	p := MustNewPlan(1, Rates{ResetAfter: 1})
	client := &http.Client{Transport: p.Transport("router", nil)}
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatalf("reset-after delivery returned no error")
	} else if !errors.Is(urlErr(t, err), ErrReset) {
		t.Fatalf("got %v, want ErrReset", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1 (delivered, response lost)", hits.Load())
	}
	if p.Counts().ResetsAfter != 1 {
		t.Fatalf("ResetsAfter = %d, want 1", p.Counts().ResetsAfter)
	}
}

// TestResetBefore: the request never reaches the server.
func TestResetBefore(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer ts.Close()
	p := MustNewPlan(1, Rates{ResetBefore: 1})
	client := &http.Client{Transport: p.Transport("router", nil)}
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatalf("reset-before returned no error")
	}
	if hits.Load() != 0 {
		t.Fatalf("reset-before request reached the server")
	}
}

// TestDuplicateDelivery: a POST with a replayable body is delivered
// twice; the caller sees one (successful) response.
func TestDuplicateDelivery(t *testing.T) {
	var hits atomic.Int64
	var lastBody atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		lastBody.Store(string(b))
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	p := MustNewPlan(1, Rates{Duplicate: 1})
	client := &http.Client{Transport: p.Transport("router", nil)}
	resp, err := client.Post(ts.URL, "text/plain", bytes.NewReader([]byte("payload")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	p.Wait()
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d, want 2 (original + duplicate)", hits.Load())
	}
	if got := lastBody.Load().(string); got != "payload" {
		t.Fatalf("duplicate delivered body %q, want %q", got, "payload")
	}
	if p.Counts().Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", p.Counts().Duplicated)
	}
}

// TestDrip: a dripped response still delivers the full body intact.
func TestDrip(t *testing.T) {
	payload := bytes.Repeat([]byte("profileme"), 1000)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer ts.Close()
	p := MustNewPlan(1, Rates{Drip: 1, DripChunk: 512, DripDelay: 100 * time.Microsecond})
	client := &http.Client{Transport: p.Transport("router", nil)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("dripped body damaged: %d bytes, want %d", len(got), len(payload))
	}
	if p.Counts().Dripped != 1 {
		t.Fatalf("Dripped = %d, want 1", p.Counts().Dripped)
	}
}

// TestApplyPhase: phases install exactly their cuts and heal the rest.
func TestApplyPhase(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	p := MustNewPlan(1, Rates{})
	p.RegisterHost(ts.Listener.Addr().String(), "c0")
	client := &http.Client{Transport: p.Transport("router", nil)}
	p.ApplyPhase(Phase{Name: "cut", Cuts: [][2]string{{"router", "c0"}}})
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatalf("phase cut not applied")
	}
	p.ApplyPhase(Phase{Name: "heal"})
	if resp, err := client.Get(ts.URL); err != nil {
		t.Fatalf("phase heal not applied: %v", err)
	} else {
		resp.Body.Close()
	}
}
