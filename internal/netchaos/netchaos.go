// Package netchaos is the network-level sibling of internal/faultinject:
// a deterministic, seeded fault plan for the wires BETWEEN processes
// where faultinject perturbs the sampling stack INSIDE one. The tier's
// conservation argument ("every acknowledged shard counts exactly once,
// fleet-wide") is only as strong as its behavior when the network lies —
// partitions, lost responses after delivery, duplicated deliveries,
// reordering, trickling reads — so this package exists to make that
// claim falsifiable the same way faultinject made the paper's loss
// claim falsifiable.
//
// A Plan wraps an http.RoundTripper per logical client ("router",
// "client") and injects, per (src, dst) link:
//
//   - partitions: symmetric or asymmetric link cuts, installed and
//     healed explicitly (Partition/Heal/ApplyPhase) — the nemesis
//     schedule, not per-request chance, decides these;
//   - latency and jitter: a seeded delay before the request is sent;
//   - reordering: a longer seeded hold that lets later requests pass;
//   - connection resets BEFORE delivery (the server never saw it) and
//     AFTER delivery (the server processed it, the response is lost —
//     the case that forces receivers to be idempotent);
//   - duplicated deliveries: the request is delivered again in the
//     background after the first response returns;
//   - slow-drip responses: the body arrives in small chunks with a
//     delay per chunk, exercising read-deadline handling.
//
// Determinism: each link draws from its own RNG stream, split off the
// plan seed by hashing the link name, so goroutine interleaving ACROSS
// links cannot perturb another link's fault sequence. Within one link,
// decisions are drawn in request order under a lock; runs are exactly
// reproducible whenever each link's request order is (single-submitter
// tests), and statistically reproducible otherwise — either way the
// seed pins the whole fault population, which is what a replaying
// debugger needs first.
package netchaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"profileme/internal/stats"
)

// Rates parameterizes a Plan: per-request probabilities in [0, 1] plus
// the durations the timing faults insert. Partitions are NOT here —
// they are schedule-driven (Partition/Heal/ApplyPhase), because a
// partition is a state, not a per-request coin flip.
type Rates struct {
	// Latency is the probability a request is delayed before sending;
	// the delay is uniform in [LatencyMin, LatencyMax].
	Latency    float64
	LatencyMin time.Duration
	LatencyMax time.Duration
	// Reorder is the probability a request is held for ReorderDelay
	// before sending, letting requests issued after it overtake it.
	Reorder      float64
	ReorderDelay time.Duration
	// ResetBefore is the probability the connection resets before the
	// request reaches the server (nothing was delivered).
	ResetBefore float64
	// ResetAfter is the probability the request IS delivered and
	// processed but the response is lost (reset while reading). The
	// caller sees a transport error for work that happened — the
	// idempotency-forcing fault.
	ResetAfter float64
	// Duplicate is the probability the request is delivered a second
	// time in the background after the first response returns. Requires
	// a replayable body (http.Request.GetBody non-nil) — others skip.
	Duplicate float64
	// Drip is the probability the response body is rewrapped to arrive
	// in DripChunk-byte pieces with DripDelay between them.
	Drip      float64
	DripChunk int
	DripDelay time.Duration
}

// Light returns mild per-request rates (a few percent of requests
// perturbed, small delays) suitable for a CI-speed nemesis smoke.
func Light() Rates {
	return Rates{
		Latency:      0.25,
		LatencyMin:   200 * time.Microsecond,
		LatencyMax:   3 * time.Millisecond,
		Reorder:      0.05,
		ReorderDelay: 5 * time.Millisecond,
		ResetBefore:  0.03,
		ResetAfter:   0.03,
		Duplicate:    0.05,
		Drip:         0.05,
		DripChunk:    2048,
		DripDelay:    500 * time.Microsecond,
	}
}

// Validate reports a Rates problem, or nil.
func (r Rates) Validate() error {
	probs := []struct {
		name string
		p    float64
	}{
		{"latency", r.Latency},
		{"reorder", r.Reorder},
		{"reset-before", r.ResetBefore},
		{"reset-after", r.ResetAfter},
		{"duplicate", r.Duplicate},
		{"drip", r.Drip},
	}
	for _, pr := range probs {
		if pr.p < 0 || pr.p > 1 || pr.p != pr.p {
			return fmt.Errorf("netchaos: %s rate %v outside [0, 1]", pr.name, pr.p)
		}
	}
	if r.LatencyMin < 0 || r.LatencyMax < r.LatencyMin {
		return fmt.Errorf("netchaos: latency range [%v, %v] invalid", r.LatencyMin, r.LatencyMax)
	}
	if r.ReorderDelay < 0 || r.DripDelay < 0 || r.DripChunk < 0 {
		return fmt.Errorf("netchaos: negative fault duration or chunk")
	}
	return nil
}

// Counts is the plan's ledger of injected faults, for reconciling a
// nemesis run against what the tier reported.
type Counts struct {
	Requests     uint64
	Partitioned  uint64
	Delayed      uint64
	Reordered    uint64
	ResetsBefore uint64
	ResetsAfter  uint64
	Duplicated   uint64
	Dripped      uint64
}

// ErrPartitioned is the transport error a cut link returns; it unwraps
// so tests can assert the failure class.
var ErrPartitioned = errors.New("netchaos: link partitioned")

// ErrReset is the transport error injected resets return.
var ErrReset = errors.New("netchaos: connection reset")

// link is one directed (src, dst) edge's fault state.
type link struct {
	rng *stats.RNG
	cut bool
}

// Plan is a seeded network fault plan shared by every Transport wrapped
// from it. Safe for concurrent use; per-link decisions serialize on the
// plan lock, drawing from that link's own RNG stream.
type Plan struct {
	seed  uint64
	rates Rates

	mu     sync.Mutex
	links  map[string]*link // "src|dst" -> state
	hosts  map[string]string
	counts Counts
	wg     sync.WaitGroup // in-flight background duplicate deliveries
}

// NewPlan builds a plan drawing from seed.
func NewPlan(seed uint64, r Rates) (*Plan, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &Plan{
		seed:  seed,
		rates: r,
		links: make(map[string]*link),
		hosts: make(map[string]string),
	}, nil
}

// MustNewPlan is NewPlan for static rates that cannot fail.
func MustNewPlan(seed uint64, r Rates) *Plan {
	p, err := NewPlan(seed, r)
	if err != nil {
		panic(err)
	}
	return p
}

// RegisterHost names a destination: requests to hostport (the URL's
// Host) count as the link (src, name). Unregistered hosts fall back to
// the raw hostport as the link name — still deterministic, just less
// readable and not addressable by Partition.
func (p *Plan) RegisterHost(hostport, name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hosts[hostport] = name
}

// linkFor resolves the directed link state, creating it with its own
// seeded RNG stream on first use. Caller holds p.mu.
func (p *Plan) linkFor(src, dst string) *link {
	key := src + "|" + dst
	l := p.links[key]
	if l == nil {
		// Split the link's stream off the plan seed by the link name, so
		// the fault sequence on one link is independent of traffic on any
		// other — cross-link goroutine interleavings cannot change it.
		h := p.seed
		for i := 0; i < len(key); i++ {
			h = (h ^ uint64(key[i])) * 1099511628211
		}
		l = &link{rng: stats.NewRNG(h)}
		p.links[key] = l
	}
	return l
}

// Partition cuts the directed link src->dst. Cut both directions for a
// symmetric partition; one for an asymmetric one (requests die, the
// reverse path still works).
func (p *Plan) Partition(src, dst string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.linkFor(src, dst).cut = true
}

// Heal restores the directed link src->dst.
func (p *Plan) Heal(src, dst string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.linkFor(src, dst).cut = false
}

// HealAll restores every link.
func (p *Plan) HealAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range p.links {
		l.cut = false
	}
}

// Counts returns a snapshot of the injected-fault ledger.
func (p *Plan) Counts() Counts {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts
}

// Wait blocks until background duplicate deliveries finish — call
// before asserting fleet state, or a late duplicate can race the check.
func (p *Plan) Wait() { p.wg.Wait() }

// Seed returns the plan seed, for failure banners.
func (p *Plan) Seed() uint64 { return p.seed }

// decision is one request's drawn fault set.
type decision struct {
	cut       bool
	delay     time.Duration
	reorder   bool
	resetPre  bool
	resetPost bool
	duplicate bool
	drip      bool
}

// draw consumes the link's RNG in a fixed order — every fault class
// draws on every request, so one class's probability never shifts
// another's sequence.
func (p *Plan) draw(src, dst string) decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts.Requests++
	l := p.linkFor(src, dst)
	var d decision
	d.cut = l.cut
	if l.rng.Bool(p.rates.Latency) {
		span := p.rates.LatencyMax - p.rates.LatencyMin
		extra := time.Duration(0)
		if span > 0 {
			extra = time.Duration(l.rng.Uint64() % uint64(span))
		}
		d.delay = p.rates.LatencyMin + extra
	}
	d.reorder = l.rng.Bool(p.rates.Reorder)
	d.resetPre = l.rng.Bool(p.rates.ResetBefore)
	d.resetPost = l.rng.Bool(p.rates.ResetAfter)
	d.duplicate = l.rng.Bool(p.rates.Duplicate)
	d.drip = l.rng.Bool(p.rates.Drip)
	switch {
	case d.cut:
		p.counts.Partitioned++
	case d.resetPre:
		p.counts.ResetsBefore++
	default:
		if d.delay > 0 {
			p.counts.Delayed++
		}
		if d.reorder {
			p.counts.Reordered++
		}
		if d.resetPost {
			p.counts.ResetsAfter++
		}
		if d.duplicate {
			p.counts.Duplicated++
		}
		if d.drip {
			p.counts.Dripped++
		}
	}
	return d
}

// Transport wraps next (nil = http.DefaultTransport) as the faulty
// network seen by the named source. Install it as an http.Client's
// Transport; every request through it draws from the plan.
func (p *Plan) Transport(src string, next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{plan: p, src: src, next: next}
}

type transport struct {
	plan *Plan
	src  string
	next http.RoundTripper
}

// RoundTrip applies the drawn fault set in wire order: partition and
// pre-delivery resets kill the request before the server sees it;
// latency/reorder delays precede sending; post-delivery resets let the
// server finish, drain the response, and report a transport error;
// duplication re-delivers in the background; drip slows the body.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.plan
	dst := req.URL.Host
	p.mu.Lock()
	if name, ok := p.hosts[dst]; ok {
		dst = name
	}
	p.mu.Unlock()
	d := p.draw(t.src, dst)
	if d.cut {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: %s -> %s", ErrPartitioned, t.src, dst)
	}
	if d.resetPre {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w before delivery: %s -> %s", ErrReset, t.src, dst)
	}
	hold := d.delay
	if d.reorder {
		hold += p.rates.ReorderDelay
	}
	if hold > 0 {
		select {
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		case <-time.After(hold):
		}
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.duplicate && req.GetBody != nil {
		// Redeliver in the background, detached from the caller's context
		// (a real duplicated packet does not care that the client went
		// away). The response is discarded — only the delivery matters.
		if body, berr := req.GetBody(); berr == nil {
			dup := req.Clone(req.Context())
			dup.Body = body
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				r2, e2 := t.next.RoundTrip(dup)
				if e2 == nil {
					io.Copy(io.Discard, io.LimitReader(r2.Body, 1<<20))
					r2.Body.Close()
				}
			}()
		}
	}
	if d.resetPost {
		// The server processed the request; the client never learns.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, fmt.Errorf("%w after delivery: %s -> %s", ErrReset, t.src, dst)
	}
	if d.drip {
		chunk := p.rates.DripChunk
		if chunk <= 0 {
			chunk = 1024
		}
		resp.Body = &dripBody{r: resp.Body, chunk: chunk, delay: p.rates.DripDelay}
	}
	return resp, nil
}

// dripBody trickles reads through in bounded chunks with a delay before
// each, simulating a saturated or shaped path.
type dripBody struct {
	r     io.ReadCloser
	chunk int
	delay time.Duration
}

func (d *dripBody) Read(b []byte) (int, error) {
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if len(b) > d.chunk {
		b = b[:d.chunk]
	}
	return d.r.Read(b)
}

func (d *dripBody) Close() error { return d.r.Close() }

// Phase is one step of a nemesis schedule: the set of directed cuts in
// force until the next phase.
type Phase struct {
	// Name labels the phase in logs ("p3: cut router->c1 sym").
	Name string
	// Cuts are the directed links down during this phase.
	Cuts [][2]string
}

// Schedule generates a deterministic partition schedule: n phases over
// the given sources and destinations, each phase cutting one link
// symmetrically, one asymmetrically, or nothing (heal), drawn from the
// plan seed. The caller applies phases with ApplyPhase between workload
// waves; the same (seed, srcs, dsts, n) always yields the same
// schedule.
func Schedule(seed uint64, srcs, dsts []string, n int) []Phase {
	rng := stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	srcs = append([]string(nil), srcs...)
	dsts = append([]string(nil), dsts...)
	sort.Strings(srcs)
	sort.Strings(dsts)
	phases := make([]Phase, 0, n)
	for i := 0; i < n; i++ {
		var ph Phase
		if len(srcs) > 0 && len(dsts) > 0 {
			src := srcs[rng.Intn(len(srcs))]
			dst := dsts[rng.Intn(len(dsts))]
			switch rng.Intn(3) {
			case 0: // symmetric cut
				ph.Name = fmt.Sprintf("p%d: cut %s<->%s", i, src, dst)
				ph.Cuts = [][2]string{{src, dst}, {dst, src}}
			case 1: // asymmetric cut
				ph.Name = fmt.Sprintf("p%d: cut %s->%s", i, src, dst)
				ph.Cuts = [][2]string{{src, dst}}
			default: // heal
				ph.Name = fmt.Sprintf("p%d: heal", i)
			}
		} else {
			ph.Name = fmt.Sprintf("p%d: heal", i)
		}
		phases = append(phases, ph)
	}
	return phases
}

// ApplyPhase heals every link, then installs the phase's cuts.
func (p *Plan) ApplyPhase(ph Phase) {
	p.HealAll()
	for _, c := range ph.Cuts {
		p.Partition(c[0], c[1])
	}
}
