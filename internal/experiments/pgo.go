package experiments

import (
	"fmt"

	"profileme/internal/asm"
	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/pgo"
	"profileme/internal/profile"
	"profileme/internal/sim"
)

// PrefetchSpeedup runs the §7 profile-guided prefetching loop end to end
// on a value-carried strided walk and returns the cycle speedup of the
// rewritten program over the baseline. It validates that the transformed
// program computes the same architectural result.
func PrefetchSpeedup(iters int) (float64, error) {
	b := asm.NewBuilder()
	b.Org(0x200000).DataLabel("arr")
	for i := 0; i < 8192; i++ {
		b.Word(64)
		b.Space(56)
	}
	b.Proc("main")
	b.LdI(1, int64(iters))
	b.LdaLabel(16, "arr")
	b.Label("loop")
	b.Ld(2, 16, 0)
	b.Add(16, 16, 2)
	b.OpI(isa.OpAnd, 16, 16, 0x27ffc0)
	b.OpI(isa.OpOr, 16, 16, 0x200000)
	b.Add(3, 3, 2)
	b.SubI(1, 1, 1)
	b.Bne(1, "loop")
	b.Ret().EndProc()
	prog, err := b.Build()
	if err != nil {
		return 0, err
	}

	db := profile.NewDB(40, 80, 4)
	db.RetainAddrs = 16
	ccfg := cpu.DefaultConfig()
	ccfg.InterruptCost = 0
	unit := core.MustNewUnit(core.Config{
		MeanInterval: 40, Window: 80, BufferDepth: 32,
		CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 6,
	})
	base, _, err := runPipeline(prog, ccfg, unit, db.Handler())
	if err != nil {
		return 0, err
	}

	cands := pgo.Analyze(db, prog, pgo.DefaultAnalyzeOptions())
	re, err := pgo.InsertPrefetches(prog, pgo.PlanPrefetches(cands, 8))
	if err != nil {
		return 0, err
	}
	m1, m2 := sim.New(prog), sim.New(re)
	if _, err := m1.Run(0, nil); err != nil {
		return 0, err
	}
	if _, err := m2.Run(0, nil); err != nil {
		return 0, err
	}
	if m1.Reg(3) != m2.Reg(3) {
		return 0, fmt.Errorf("pgo: rewritten program diverged")
	}
	opt, _, err := runPipeline(re, ccfg, nil, nil)
	if err != nil {
		return 0, err
	}
	return float64(base.Cycles) / float64(opt.Cycles), nil
}
