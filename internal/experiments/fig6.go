package experiments

import (
	"fmt"
	"strings"

	"profileme/internal/isa"
	"profileme/internal/pathprof"
	"profileme/internal/workload"
)

// Figure6Config parameterizes the path-reconstruction experiment.
type Figure6Config struct {
	Benchmarks     []string // suite subset (empty = branchy members + generated programs)
	Scale          int
	GeneratedSeeds []uint64 // extra procedurally-generated programs
	Eval           pathprof.EvalConfig
}

// DefaultFigure6Config evaluates the branchy suite members plus two
// generated programs at the paper's history lengths (hardware of the era
// kept 8-12 bits; we sweep 1-16 like the figure's X axis).
func DefaultFigure6Config() Figure6Config {
	eval := pathprof.DefaultEvalConfig()
	eval.MaxInst = 400_000
	eval.SampleInterval = 229
	return Figure6Config{
		Benchmarks:     []string{"compress", "gcc", "go", "perl", "vortex"},
		Scale:          400_000,
		GeneratedSeeds: []uint64{11, 23},
		Eval:           eval,
	}
}

// Figure6Result aggregates reconstruction success over all programs:
// Cells[mode][scheme][lenIdx].
type Figure6Result struct {
	Config      Figure6Config
	HistoryLens []int
	Modes       []pathprof.Mode
	Cells       [][]([]pathprof.Cell) // [mode][scheme][len]
	PerProgram  map[string][]*pathprof.ModeResult
}

// Figure6 reproduces the §5.3 experiment: for each program, sample
// instructions with their global branch history and reconstruct the
// execution path backward through the CFG under the three schemes, in both
// intra- and inter-procedural modes.
func Figure6(cfg Figure6Config) (*Figure6Result, error) {
	type namedProg struct {
		name string
		prog *isa.Program
	}
	var progs []namedProg
	for _, name := range cfg.Benchmarks {
		b, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("fig6: unknown benchmark %q", name)
		}
		progs = append(progs, namedProg{name, b.Build(cfg.Scale)})
	}
	for _, seed := range cfg.GeneratedSeeds {
		gc := workload.DefaultGenConfig()
		gc.Seed = seed
		gc.MainIters = cfg.Scale / 250
		progs = append(progs, namedProg{fmt.Sprintf("gen-%d", seed), workload.Generate(gc)})
	}

	res := &Figure6Result{
		Config:      cfg,
		HistoryLens: cfg.Eval.HistoryLens,
		Modes:       cfg.Eval.Modes,
		PerProgram:  make(map[string][]*pathprof.ModeResult),
	}
	res.Cells = make([][]([]pathprof.Cell), len(cfg.Eval.Modes))
	for mi := range res.Cells {
		res.Cells[mi] = make([][]pathprof.Cell, pathprof.NumSchemes)
		for si := range res.Cells[mi] {
			res.Cells[mi][si] = make([]pathprof.Cell, len(cfg.Eval.HistoryLens))
		}
	}

	// Each program's evaluation is self-contained (pathprof derives its
	// randomness from cfg.Eval per program), so programs fan out across
	// the worker pool; pooling happens afterwards in program order, so
	// the totals match the sequential loop exactly.
	perProg, err := parallelMap(len(progs), func(i int) ([]*pathprof.ModeResult, error) {
		results, err := pathprof.Evaluate(progs[i].prog, cfg.Eval)
		if err != nil {
			return nil, fmt.Errorf("fig6: %s: %w", progs[i].name, err)
		}
		return results, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, results := range perProg {
		res.PerProgram[progs[pi].name] = results
		for mi, mr := range results {
			for si := 0; si < pathprof.NumSchemes; si++ {
				for li := range cfg.Eval.HistoryLens {
					res.Cells[mi][si][li].Success += mr.Cells[si][li].Success
					res.Cells[mi][si][li].Total += mr.Cells[si][li].Total
				}
			}
		}
	}
	return res, nil
}

// Rate returns the pooled success rate.
func (r *Figure6Result) Rate(mode int, s pathprof.Scheme, lenIdx int) float64 {
	return r.Cells[mode][int(s)][lenIdx].Rate()
}

// Check verifies the figure's claims: branch history beats execution
// counts, paired samples improve on history alone, interprocedural paths
// are harder than intraprocedural ones, and accuracy falls as the history
// grows.
func (r *Figure6Result) Check() error {
	for mi := range r.Modes {
		// Compare at a mid-range history length (8, the era's hardware).
		li := indexOf(r.HistoryLens, 8)
		if li < 0 {
			li = len(r.HistoryLens) / 2
		}
		hist := r.Rate(mi, pathprof.SchemeHistory, li)
		exec := r.Rate(mi, pathprof.SchemeExecCounts, li)
		pair := r.Rate(mi, pathprof.SchemeHistoryPair, li)
		if err := checkf(hist > exec,
			"fig6: %v: history %.3f not above exec-counts %.3f", r.Modes[mi], hist, exec); err != nil {
			return err
		}
		if err := checkf(pair >= hist,
			"fig6: %v: pairs %.3f below history %.3f", r.Modes[mi], pair, hist); err != nil {
			return err
		}
		// Accuracy decreases with history length (first vs last).
		first := r.Rate(mi, pathprof.SchemeHistory, 0)
		last := r.Rate(mi, pathprof.SchemeHistory, len(r.HistoryLens)-1)
		if err := checkf(last <= first+0.02,
			"fig6: %v: accuracy rose with history length (%.3f -> %.3f)", r.Modes[mi], first, last); err != nil {
			return err
		}
	}
	// Interprocedural is harder than intraprocedural at the longest
	// length (paths must consume the full history through call chains).
	if len(r.Modes) == 2 {
		li := len(r.HistoryLens) - 1
		intra := r.Rate(0, pathprof.SchemeHistory, li)
		inter := r.Rate(1, pathprof.SchemeHistory, li)
		if err := checkf(inter <= intra+0.05,
			"fig6: interprocedural %.3f above intraprocedural %.3f", inter, intra); err != nil {
			return err
		}
	}
	return nil
}

// Render prints the pooled success-rate curves, one block per mode.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6 — path reconstruction success rate vs branch-history length\n")
	for mi, mode := range r.Modes {
		fmt.Fprintf(&b, "\n%s:\n%-8s", mode, "hist")
		for s := pathprof.Scheme(0); int(s) < pathprof.NumSchemes; s++ {
			fmt.Fprintf(&b, " %14s", s)
		}
		b.WriteString("\n")
		for li, hl := range r.HistoryLens {
			fmt.Fprintf(&b, "%-8d", hl)
			for s := pathprof.Scheme(0); int(s) < pathprof.NumSchemes; s++ {
				fmt.Fprintf(&b, " %13.1f%%", 100*r.Rate(mi, s, li))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
