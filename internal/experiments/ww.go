package experiments

import (
	"fmt"
	"strings"

	"profileme/internal/asm"
	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/sim"
)

// WWConfig parameterizes the §8 related-work comparison against Westcott &
// White's IID-restricted instruction sampling.
type WWConfig struct {
	Scale  int
	Slot   int // profiled ROB slot for the IID sampler
	Period int // IID log period (also sets the ProfileMe interval for parity)
}

// DefaultWWConfig returns the standard comparison, run at realistic
// sampling intervals: ProfileMe's selection pauses while a sample is in
// flight, so very short intervals would add a dead-time bias of its own
// (the paper's intervals, 2^10 and up, keep it negligible — ours do too).
// Sampling noise shrinks with budget; the IID sampler's structural slot
// bias does not — that is the point.
func DefaultWWConfig() WWConfig {
	return WWConfig{Scale: 2_000_000, Slot: 5, Period: 8}
}

// wwProgram builds the comparison workload: a regular, well-predicted
// 40-instruction loop. Its length divides the 80-entry reorder buffer, so
// each static instruction lands on the same ROB slots lap after lap —
// the structural aliasing that makes IID-restricted sampling unable to
// observe most of the program ("ProfileMe allows any instruction to be
// sampled; this is essential for obtaining a random sample of the entire
// instruction stream", §8). The handful of data-dependent branches give
// ProfileMe aborted instructions to expose.
func wwProgram(scale int) *isa.Program {
	iters := scale * 4 / 5 / 40 // phase 1 gets ~80% of the instructions
	if iters < 200 {
		iters = 200
	}
	branchy := scale / 5 / 10
	if branchy < 100 {
		branchy = 100
	}
	var b strings.Builder
	fmt.Fprintf(&b, ".equ ITERS, %d\n.equ BRANCHY, %d\n", iters, branchy)
	// Phase 1: a perfectly-predicted, constant-length 40-instruction
	// loop. 40 divides the 80-entry ROB, so each static instruction
	// cycles over exactly two slots forever: the IID sampler's slot sees
	// only one of the 40.
	b.WriteString(".proc main\n    lda r1, ITERS(zero)\n    lda r16, buf(zero)\nloop:\n")
	b.WriteString("    ld   r2, 0(r16)\n")
	for i := 0; i < 37; i++ {
		fmt.Fprintf(&b, "    add  r%d, r%d, #%d\n", 3+i%13, 3+i%13, i+1)
	}
	b.WriteString("    sub  r1, r1, #1\n    bne  r1, loop\n")
	// Phase 2: a branchy, unpredictable loop so ProfileMe has aborted
	// (wrong-path) instructions to expose.
	b.WriteString("    lda  r1, BRANCHY(zero)\n    lda r5, 99991(zero)\nbr_loop:\n")
	b.WriteString("    mul  r5, r5, #48271\n")
	b.WriteString("    srl  r6, r5, #16\n")
	b.WriteString("    and  r6, r6, #1\n")
	b.WriteString("    beq  r6, b_evn\n")
	b.WriteString("    add  r20, r20, #1\n")
	b.WriteString("    br   b_done\n")
	b.WriteString("b_evn:\n")
	b.WriteString("    add  r21, r21, #1\n")
	b.WriteString("b_done:\n")
	b.WriteString("    sub  r1, r1, #1\n    bne  r1, br_loop\n    ret\n.endp\n")
	b.WriteString(".data\n.org 0x20000\nbuf:\n    .word 9\n")
	prog, err := asm.Assemble(b.String())
	if err != nil {
		panic(err)
	}
	return prog
}

// WWResult compares the two samplers' per-PC coverage and bias.
type WWResult struct {
	Config WWConfig
	// Coverage: fraction of hot static instructions (>=1% of retires)
	// that received at least one sample.
	IIDCoverage, PMCoverage float64
	// WorstBias: max |estimate/actual - 1| over covered hot PCs, using
	// each sampler's own realized sampling rate.
	IIDWorstBias, PMWorstBias float64
	// AbortVisible: fraction of samples showing an aborted instruction
	// (W&W discards them in hardware, so its log shows none).
	IIDAbortVisible, PMAbortVisible float64
	IIDSamples, PMSamples           uint64
}

// WW runs the comparison: the W&W sampler profiles one ROB slot of the
// two-phase workload (a regular loop plus a branchy one), ProfileMe
// samples fetched instructions at a matched rate.
//
// Unlike the other experiments, WW's two runs cannot fan out across the
// worker pool: run 2's sampling interval is derived from run 1's realized
// sample rate, so the runs are sequentially dependent by design.
func WW(cfg WWConfig) (*WWResult, error) {
	prog := wwProgram(cfg.Scale)
	res := &WWResult{Config: cfg}

	// Run 1: IID sampling.
	ccfg := cpu.DefaultConfig()
	iid := cpu.NewIIDSampler(cfg.Slot, cfg.Period)
	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		return nil, err
	}
	pipe.AttachIIDSampler(iid)
	r1, err := pipe.Run(0)
	if err != nil {
		return nil, err
	}
	iidCounts := iid.Retired()
	var iidTotal uint64
	for _, n := range iidCounts {
		iidTotal += n
	}
	if iidTotal == 0 {
		return nil, fmt.Errorf("ww: IID sampler logged nothing")
	}
	res.IIDSamples = iidTotal
	res.IIDAbortVisible = 0 // discarded in hardware, by design

	// Ground truth from the same run.
	type truth struct{ pc, retired uint64 }
	var hot []truth
	var totalRetired uint64
	for _, st := range pipe.PerPC() {
		totalRetired += st.Retired
	}
	for _, st := range pipe.PerPC() {
		if st.Retired*100 >= totalRetired { // >= 1% of retires
			hot = append(hot, truth{st.PC, st.Retired})
		}
	}
	if len(hot) == 0 {
		return nil, fmt.Errorf("ww: no hot instructions")
	}

	// IID coverage and bias: scale by the realized rate (samples per
	// retired instruction).
	iidRate := float64(iidTotal) / float64(r1.Retired)
	covered := 0
	for _, h := range hot {
		k := iidCounts[h.pc]
		if k > 0 {
			covered++
		}
		est := float64(k) / iidRate
		bias := est/float64(h.retired) - 1
		if bias < 0 {
			bias = -bias
		}
		if bias > res.IIDWorstBias {
			res.IIDWorstBias = bias
		}
	}
	res.IIDCoverage = float64(covered) / float64(len(hot))

	// Run 2: ProfileMe at a matched sample budget.
	pmInterval := float64(r1.Retired) / float64(iidTotal)
	if pmInterval < 2 {
		pmInterval = 2
	}
	unit := core.MustNewUnit(core.Config{
		MeanInterval: pmInterval, Window: 80, BufferDepth: 64,
		CountMode: core.CountFetchOpportunities, IntervalMode: core.IntervalGeometric, Seed: 3,
	})
	pmCounts := make(map[uint64]uint64)
	var pmRetired, pmAborted uint64
	ccfg2 := cpu.DefaultConfig()
	ccfg2.InterruptCost = 0
	src2 := sim.NewMachineSource(sim.New(prog), 0)
	pipe2, err := cpu.New(prog, src2, ccfg2)
	if err != nil {
		return nil, err
	}
	pipe2.AttachProfileMe(unit, func(ss []core.Sample) {
		for _, s := range ss {
			if s.First.Events.Has(core.EvNoInstruction) {
				continue
			}
			if s.First.Retired() {
				pmRetired++
				pmCounts[s.First.PC]++
			} else {
				pmAborted++
			}
		}
	})
	r2, err := pipe2.Run(0)
	if err != nil {
		return nil, err
	}
	if pmRetired == 0 {
		return nil, fmt.Errorf("ww: ProfileMe collected nothing")
	}
	res.PMSamples = pmRetired + pmAborted
	res.PMAbortVisible = float64(pmAborted) / float64(res.PMSamples)

	pmRate := float64(pmRetired) / float64(r2.Retired)
	covered = 0
	for _, h := range hot {
		k := pmCounts[h.pc]
		if k > 0 {
			covered++
		}
		est := float64(k) / pmRate
		bias := est/float64(h.retired) - 1
		if bias < 0 {
			bias = -bias
		}
		if bias > res.PMWorstBias {
			res.PMWorstBias = bias
		}
	}
	res.PMCoverage = float64(covered) / float64(len(hot))
	return res, nil
}

// Check verifies the §8 contrasts: ProfileMe's random selection covers the
// hot instructions essentially completely with low bias; IID-restricted
// sampling shows structural bias (slot assignment correlates with the
// loops), and its log contains no aborted instructions while ProfileMe's
// does.
func (r *WWResult) Check() error {
	if err := checkf(r.PMCoverage > 0.95,
		"ww: ProfileMe covered only %.2f of hot instructions", r.PMCoverage); err != nil {
		return err
	}
	if err := checkf(r.PMWorstBias < 0.5,
		"ww: ProfileMe worst bias %.2f too high", r.PMWorstBias); err != nil {
		return err
	}
	if err := checkf(r.IIDWorstBias > 2*r.PMWorstBias,
		"ww: IID sampling shows no extra bias (%.2f vs %.2f)", r.IIDWorstBias, r.PMWorstBias); err != nil {
		return err
	}
	if err := checkf(r.PMAbortVisible > 0.01,
		"ww: ProfileMe shows no aborted samples (%.3f)", r.PMAbortVisible); err != nil {
		return err
	}
	return checkf(r.IIDAbortVisible == 0,
		"ww: the W&W log should contain no aborted instructions")
}

// Render prints the comparison.
func (r *WWResult) Render() string {
	var b strings.Builder
	b.WriteString("§8 comparison — ProfileMe vs Westcott & White IID-restricted sampling\n")
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "", "W&W (IID)", "ProfileMe")
	fmt.Fprintf(&b, "%-22s %12d %12d\n", "samples", r.IIDSamples, r.PMSamples)
	fmt.Fprintf(&b, "%-22s %11.1f%% %11.1f%%\n", "hot-PC coverage", 100*r.IIDCoverage, 100*r.PMCoverage)
	fmt.Fprintf(&b, "%-22s %12.2f %12.2f\n", "worst per-PC bias", r.IIDWorstBias, r.PMWorstBias)
	fmt.Fprintf(&b, "%-22s %11.1f%% %11.1f%%\n", "aborted visible", 100*r.IIDAbortVisible, 100*r.PMAbortVisible)
	return b.String()
}

// CSV renders the comparison as two rows.
func (r *WWResult) CSV() string {
	var b strings.Builder
	b.WriteString("sampler,samples,hot_coverage,worst_bias,abort_visible\n")
	fmt.Fprintf(&b, "ww-iid,%d,%.4f,%.4f,%.4f\n", r.IIDSamples, r.IIDCoverage, r.IIDWorstBias, r.IIDAbortVisible)
	fmt.Fprintf(&b, "profileme,%d,%.4f,%.4f,%.4f\n", r.PMSamples, r.PMCoverage, r.PMWorstBias, r.PMAbortVisible)
	return b.String()
}
