// Package experiments implements one self-contained harness per table and
// figure of the paper's evaluation, so that cmd/figures, the examples and
// the root-level benchmarks all regenerate the same results from the same
// code. Every experiment returns a structured result plus a text rendering
// of the paper's rows/series, and — where the paper's claim is a shape
// rather than a number — a Check method that verifies the shape holds.
package experiments

import (
	"fmt"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/sim"
)

// runPipeline wires a program, a ProfileMe unit (may be nil) and a config
// together and runs to completion.
func runPipeline(prog *isa.Program, cfg cpu.Config, unit *core.Unit, handler func([]core.Sample)) (cpu.Result, *cpu.Pipeline, error) {
	src := sim.NewMachineSource(sim.New(prog), 0)
	p, err := cpu.New(prog, src, cfg)
	if err != nil {
		return cpu.Result{}, nil, err
	}
	if unit != nil {
		p.AttachProfileMe(unit, handler)
	}
	res, err := p.Run(0)
	if err != nil {
		return res, p, err
	}
	if serr := src.Err(); serr != nil {
		return res, p, serr
	}
	return res, p, nil
}

// checkf returns an error when cond is false.
func checkf(cond bool, format string, args ...any) error {
	if cond {
		return nil
	}
	return fmt.Errorf(format, args...)
}
