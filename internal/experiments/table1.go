package experiments

import (
	"fmt"
	"strings"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/profile"
	"profileme/internal/workload"
)

// Table1Config parameterizes the latency-diagnosis experiment.
type Table1Config struct {
	Iters        int
	MeanInterval float64
	Seed         uint64
}

// DefaultTable1Config samples each stress kernel densely.
func DefaultTable1Config() Table1Config {
	return Table1Config{Iters: 20_000, MeanInterval: 25, Seed: 5}
}

// Table1Row holds the sampled mean latencies of one kernel: the five
// adjacent-stage latencies plus load issue->completion.
type Table1Row struct {
	Kernel  string
	Lat     [profile.NumLatencyKinds]float64
	MemLat  float64
	Samples uint64
}

// Table1Result holds one row per stress kernel.
type Table1Result struct {
	Config Table1Config
	Rows   []Table1Row
}

// Table1 reproduces Table 1 behaviourally: each stress kernel is built to
// inflate one pipeline-stage latency, and the ProfileMe latency registers
// — read purely from samples — must attribute the stall to that stage. A
// balanced baseline kernel anchors the comparison.
func Table1(cfg Table1Config) (*Table1Result, error) {
	progs := workload.Table1Programs(cfg.Iters)
	progs["balanced"] = workload.Table1Baseline(cfg.Iters)
	res := &Table1Result{Config: cfg}

	// Every kernel runs with the same configured seed (cells share no
	// state at all), so the rows fan out directly; row order is the
	// kernel list order regardless of scheduling.
	names := append([]string{"balanced"}, workload.Table1Order()...)
	rows, err := parallelMap(len(names), func(i int) (Table1Row, error) {
		name := names[i]
		prog := progs[name]
		ccfg := cpu.DefaultConfig()
		ccfg.InterruptCost = 0
		ucfg := core.DefaultConfig()
		ucfg.MeanInterval = cfg.MeanInterval
		ucfg.BufferDepth = 64
		ucfg.Seed = cfg.Seed
		unit := core.MustNewUnit(ucfg)
		db := profile.NewDB(cfg.MeanInterval, 0, ccfg.SustainedIssueWidth)
		if _, _, err := runPipeline(prog, ccfg, unit, db.Handler()); err != nil {
			return Table1Row{}, fmt.Errorf("table1: %s: %w", name, err)
		}

		row := Table1Row{Kernel: name}
		var latSum [profile.NumLatencyKinds]int64
		var latCnt [profile.NumLatencyKinds]uint64
		var memSum int64
		var memCnt uint64
		for _, pc := range db.PCs() {
			a := db.Get(pc)
			row.Samples += a.Samples
			for i := 0; i < profile.NumLatencyKinds; i++ {
				latSum[i] += a.LatSum[i]
				latCnt[i] += a.LatCount[i]
			}
			memSum += a.MemLatSum
			memCnt += a.MemLatCount
		}
		for i := range row.Lat {
			if latCnt[i] > 0 {
				row.Lat[i] = float64(latSum[i]) / float64(latCnt[i])
			}
		}
		if memCnt > 0 {
			row.MemLat = float64(memSum) / float64(memCnt)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// kernelTarget maps each kernel to the latency it is engineered to
// inflate: an index into the five stage latencies, or -1 for the
// load-to-completion memory latency. The balanced baseline has no target.
var kernelTarget = map[string]int{
	"map-stall":     0,  // fetch -> map
	"dep-stall":     1,  // map -> data-ready
	"fu-contention": 2,  // data-ready -> issue
	"exec-latency":  3,  // issue -> retire-ready
	"retire-stall":  4,  // retire-ready -> retire
	"mem-latency":   -1, // load issue -> completion
}

// Check verifies that each stress kernel inflates its target latency well
// above the balanced baseline's value for the same latency. (Stall causes
// correlate — a dependence backlog also fills the issue queue and stalls
// the mapper — so the baseline, not the other stress kernels, is the
// meaningful reference; Table 1 in the paper likewise maps each latency to
// the stall it diagnoses rather than claiming the latencies are
// independent.)
func (r *Table1Result) Check() error {
	get := func(row Table1Row, target int) float64 {
		if target < 0 {
			return row.MemLat
		}
		return row.Lat[target]
	}
	var base *Table1Row
	for i := range r.Rows {
		if r.Rows[i].Kernel == "balanced" {
			base = &r.Rows[i]
		}
	}
	if base == nil {
		return fmt.Errorf("table1: baseline row missing")
	}
	for _, row := range r.Rows {
		if row.Kernel == "balanced" {
			continue
		}
		target := kernelTarget[row.Kernel]
		mine := get(row, target)
		ref := get(*base, target)
		if err := checkf(mine > 2*ref && mine > ref+2,
			"table1: %s: target latency %.1f not well above baseline %.1f",
			row.Kernel, mine, ref); err != nil {
			return err
		}
	}
	return nil
}

// Render prints the kernel-by-latency matrix.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1 — sampled mean pipeline-stage latencies per stress kernel (cycles)\n")
	fmt.Fprintf(&b, "%-14s", "kernel")
	for i := 0; i < profile.NumLatencyKinds; i++ {
		fmt.Fprintf(&b, " %19s", profile.LatencyKindName(i))
	}
	fmt.Fprintf(&b, " %14s %8s\n", "ld-issue->compl", "samples")
	for _, row := range r.Rows {
		target, hasTarget := kernelTarget[row.Kernel]
		fmt.Fprintf(&b, "%-14s", row.Kernel)
		for i, v := range row.Lat {
			mark := " "
			if hasTarget && target == i {
				mark = "*"
			}
			fmt.Fprintf(&b, " %18.1f%s", v, mark)
		}
		mark := " "
		if hasTarget && target == -1 {
			mark = "*"
		}
		fmt.Fprintf(&b, " %13.1f%s %8d\n", row.MemLat, mark, row.Samples)
	}
	b.WriteString("(* marks the latency each kernel was engineered to inflate)\n")
	for i := 0; i < profile.NumLatencyKinds; i++ {
		fmt.Fprintf(&b, "  %-19s: %s\n", profile.LatencyKindName(i), profile.LatencyKindDiagnosis(i))
	}
	return b.String()
}
