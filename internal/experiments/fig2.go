package experiments

import (
	"fmt"
	"strings"

	"profileme/internal/counters"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/sim"
	"profileme/internal/stats"
	"profileme/internal/workload"
)

// Figure2Config parameterizes the event-counter attribution experiment.
type Figure2Config struct {
	Nops   int    // nops between the load and the loop branch
	Iters  int    // loop iterations
	Period uint64 // counter overflow period (D-cache references)
	Skid   int64  // interrupt recognition latency in cycles
	// OoOJitter is the recognition jitter of the out-of-order machine's
	// asynchronous interrupt delivery (see counters.Config.SkidJitter);
	// the in-order machine recognizes counter interrupts
	// pipeline-synchronously, with no jitter.
	OoOJitter int64
}

// DefaultFigure2Config mirrors the paper's setup: one load followed by
// hundreds of nops, sampling D-cache-reference events.
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{Nops: 300, Iters: 4000, Period: 61, Skid: 6, OoOJitter: 8}
}

// Figure2Result holds the PC histograms of delivered interrupts, keyed by
// the instruction offset from the load within the loop body.
type Figure2Result struct {
	Config     Figure2Config
	LoopLen    int64 // loop length in instructions
	InOrder    *stats.Histogram
	OutOfOrder *stats.Histogram
}

// Figure2 reproduces Figure 2: run the load+nops loop on an in-order and
// an out-of-order configuration with overflow-interrupt event counters
// monitoring D-cache references, and histogram the PC delivered to the
// interrupt handler relative to the load.
func Figure2(cfg Figure2Config) (*Figure2Result, error) {
	prog := workload.Figure2Program(cfg.Nops, cfg.Iters)
	loadPC, ok := prog.Label("theload")
	if !ok {
		return nil, fmt.Errorf("fig2: program has no load label")
	}
	loopLen := int64(cfg.Nops + 3) // ld + nops + sub + bne

	run := func(ccfg cpu.Config, jitter int64) (*stats.Histogram, error) {
		h := stats.NewHistogram()
		unit := counters.New(
			counters.Config{
				Monitor: counters.EventDCacheRef, Period: cfg.Period,
				Skid: cfg.Skid, SkidJitter: jitter, Seed: 17,
			},
			func(pc uint64) {
				off := (int64(pc) - int64(loadPC)) / isa.InstBytes
				off = ((off % loopLen) + loopLen) % loopLen // fold into the loop body
				h.Add(off)
			})
		src := sim.NewMachineSource(sim.New(prog), 0)
		p, err := cpu.New(prog, src, ccfg)
		if err != nil {
			return nil, err
		}
		p.AttachCounters(unit)
		if _, err := p.Run(0); err != nil {
			return nil, err
		}
		if unit.Delivered() == 0 {
			return nil, fmt.Errorf("fig2: no interrupts delivered")
		}
		return h, nil
	}

	inOrder, err := run(cpu.InOrderConfig(), 0)
	if err != nil {
		return nil, err
	}
	outOfOrder, err := run(cpu.DefaultConfig(), cfg.OoOJitter)
	if err != nil {
		return nil, err
	}
	return &Figure2Result{Config: cfg, LoopLen: loopLen, InOrder: inOrder, OutOfOrder: outOfOrder}, nil
}

// Check verifies the paper's qualitative claims: the in-order machine
// attributes almost all events to one fixed instruction offset (a single
// displaced peak), while the out-of-order machine smears them over many
// instructions.
func (r *Figure2Result) Check() error {
	inSpread := r.InOrder.Spread(0.9)
	oooSpread := r.OutOfOrder.Spread(0.9)
	if err := checkf(inSpread <= 3,
		"fig2: in-order samples spread over %d offsets, want a single peak", inSpread); err != nil {
		return err
	}
	if err := checkf(oooSpread >= 3*inSpread,
		"fig2: out-of-order spread %d not much wider than in-order %d", oooSpread, inSpread); err != nil {
		return err
	}
	mode, _ := r.InOrder.Mode()
	return checkf(mode != 0,
		"fig2: in-order peak sits on the load itself; events should be displaced")
}

// Render returns the two histograms as text, offsets relative to the load.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	label := func(k int64) string { return fmt.Sprintf("load%+d", k) }
	fmt.Fprintf(&b, "Figure 2 — PC delivered to D-cache-reference counter interrupts\n")
	fmt.Fprintf(&b, "(offsets are instructions past the load; loop body = %d instructions)\n\n", r.LoopLen)
	fmt.Fprintf(&b, "in-order (21164-like): %d samples, 90%%-spread = %d offsets, peak at %s\n",
		r.InOrder.Total(), r.InOrder.Spread(0.9), label(firstKey(r.InOrder)))
	b.WriteString(r.InOrder.Render(48, label))
	fmt.Fprintf(&b, "\nout-of-order (21264-like): %d samples, 90%%-spread = %d offsets\n",
		r.OutOfOrder.Total(), r.OutOfOrder.Spread(0.9))
	b.WriteString(renderTopN(r.OutOfOrder, 25, label))
	return b.String()
}

func firstKey(h *stats.Histogram) int64 {
	k, _ := h.Mode()
	return k
}

// renderTopN renders only the most populated n keys (the OoO histogram can
// cover hundreds of offsets).
func renderTopN(h *stats.Histogram, n int, label func(int64) string) string {
	keys := h.Keys()
	if len(keys) <= n {
		return h.Render(48, label)
	}
	sub := stats.NewHistogram()
	// Keep the n keys with the largest counts.
	type kc struct {
		k int64
		c int64
	}
	all := make([]kc, 0, len(keys))
	for _, k := range keys {
		all = append(all, kc{k, h.Count(k)})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].c > all[i].c {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	var omitted int64
	for i, e := range all {
		if i < n {
			sub.AddN(e.k, e.c)
		} else {
			omitted += e.c
		}
	}
	out := sub.Render(48, label)
	if omitted > 0 {
		out += fmt.Sprintf("%12s %8d (over %d more offsets)\n", "...", omitted, len(all)-n)
	}
	return out
}
