package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"profileme/internal/runner"
)

// TestParallelMapOrderAndCoverage checks that results land at their cell
// index and every cell runs exactly once, regardless of pool width.
func TestParallelMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			old := Parallelism
			Parallelism = workers
			defer func() { Parallelism = old }()

			const n = 97
			var ran [n]int32
			out, err := parallelMap(n, func(i int) (int, error) {
				atomic.AddInt32(&ran[i], 1)
				return i * i, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("cell %d: got %d, want %d", i, v, i*i)
				}
				if ran[i] != 1 {
					t.Fatalf("cell %d ran %d times", i, ran[i])
				}
			}
		})
	}
}

// TestParallelMapLowestError checks the deterministic error rule: when
// multiple cells fail, the lowest-indexed error is reported, and all cells
// still run (no cancellation).
func TestParallelMapLowestError(t *testing.T) {
	var ran int32
	want := errors.New("boom")
	_, err := parallelMap(20, func(i int) (int, error) {
		atomic.AddInt32(&ran, 1)
		if i == 3 || i == 11 {
			return 0, fmt.Errorf("cell-%d: %w", i, want)
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, want) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := err.Error(); got != "cell 3: cell-3: boom" {
		t.Fatalf("err = %q, want lowest-indexed cell 3", got)
	}
	if ran != 20 {
		t.Fatalf("ran %d cells, want all 20", ran)
	}
}

// TestParallelMapPanicIsolation checks that a panicking cell becomes a
// *runner.PanicError instead of killing the process.
func TestParallelMapPanicIsolation(t *testing.T) {
	_, err := parallelMap(4, func(i int) (int, error) {
		if i == 2 {
			panic("kaboom")
		}
		return i, nil
	})
	var pe *runner.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *runner.PanicError", err)
	}
	if pe.Value != "kaboom" || pe.Stack == "" {
		t.Fatalf("panic error missing value/stack: %+v", pe)
	}
}

// TestExperimentsParallelDeterminism locks in the harness's central
// contract: running an experiment on the full worker pool yields results
// identical to the forced-sequential order (Parallelism=1). Uses small
// configs of the three fan-out experiments.
func TestExperimentsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment comparison")
	}
	runAll := func() (*Figure3Result, *Section6Result, *Table1Result) {
		f3cfg := DefaultFigure3Config()
		f3cfg.Benchmarks = []string{"compress", "ijpeg", "perl"}
		f3cfg.Scale = 60_000
		f3cfg.Intervals = []float64{50, 500}
		f3, err := Figure3(f3cfg)
		if err != nil {
			t.Fatal(err)
		}
		s6cfg := DefaultSection6Config()
		s6cfg.Benchmarks = []string{"compress", "li", "perl"}
		s6cfg.Scale = 30_000
		s6, err := Section6(s6cfg)
		if err != nil {
			t.Fatal(err)
		}
		t1cfg := DefaultTable1Config()
		t1cfg.Iters = 2_000
		t1, err := Table1(t1cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f3, s6, t1
	}

	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 1
	f3seq, s6seq, t1seq := runAll()
	Parallelism = 0 // full pool
	f3par, s6par, t1par := runAll()

	if !reflect.DeepEqual(f3seq, f3par) {
		t.Error("Figure3: parallel result differs from sequential")
	}
	if !reflect.DeepEqual(s6seq, s6par) {
		t.Error("Section6: parallel result differs from sequential")
	}
	if !reflect.DeepEqual(t1seq, t1par) {
		t.Error("Table1: parallel result differs from sequential")
	}
}
