package experiments

import (
	"fmt"
	"sort"
	"strings"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/profile"
	"profileme/internal/workload"
)

// Figure7Config parameterizes the wasted-issue-slots experiment.
type Figure7Config struct {
	Iters        int     // iterations per loop
	MeanInterval float64 // paired-sampling interval
	Window       int     // paired-sampling window W
	Seed         uint64
}

// DefaultFigure7Config samples densely enough for per-instruction
// estimates on the three-loop program (~5M dynamic instructions; loop C
// runs 16x the base iteration count).
func DefaultFigure7Config() Figure7Config {
	return Figure7Config{Iters: 12_000, MeanInterval: 40, Window: 80, Seed: 3}
}

// Figure7Point is one static instruction of the three-loop program.
type Figure7Point struct {
	PC        uint64
	Loop      string  // A-serial, B-memory, C-parallel
	Latency   int64   // total fetch -> retire-ready cycles (ground truth)
	Wasted    int64   // total wasted issue slots (ground truth)
	EstWasted float64 // paired-sampling estimate
	EstOK     bool
}

// Figure7Result holds all loop-body points.
type Figure7Result struct {
	Config Figure7Config
	Points []Figure7Point
	Result cpu.Result
}

// Figure7 reproduces the §6 experiment (Figure 7): run the three-loop
// program with paired sampling and, for every static instruction, compare
// its total latency against the issue slots wasted while it was in
// progress — measured exactly by the omniscient simulator and estimated
// statistically from the paired samples (§5.2.3).
func Figure7(cfg Figure7Config) (*Figure7Result, error) {
	prog := workload.Figure7Program(cfg.Iters)
	loops := workload.Figure7Loops(prog)

	ccfg := cpu.DefaultConfig()
	ccfg.TrackWastedSlots = true
	ccfg.InterruptCost = 0 // measure the program, not the profiler

	ucfg := core.Config{
		Paired:       true,
		MeanInterval: cfg.MeanInterval,
		Window:       cfg.Window,
		BufferDepth:  64,
		CountMode:    core.CountInstructions,
		IntervalMode: core.IntervalGeometric,
		Seed:         cfg.Seed,
	}
	unit := core.MustNewUnit(ucfg)
	db := profile.NewDB(cfg.MeanInterval, cfg.Window, ccfg.SustainedIssueWidth)

	res, pipe, err := runPipeline(prog, ccfg, unit, db.Handler())
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}

	// Scale estimates by the realized sampling interval rather than the
	// nominal one: a pair occupies the hardware until both instructions
	// complete, so at short nominal intervals the effective inter-pair
	// interval is substantially longer. Profiling software knows the
	// fetched-instruction count and the sample count (DCPI scaled its
	// estimates the same way).
	if db.Samples() > 0 {
		db.S = float64(res.FetchedOnPath) / float64(db.Samples())
	}

	out := &Figure7Result{Config: cfg, Result: res}
	for _, st := range pipe.PerPC() {
		if st.Retired < uint64(cfg.Iters)/2 {
			continue // only loop-body instructions
		}
		loop := ""
		for name, rng := range loops {
			if st.PC >= rng[0] && st.PC < rng[1] {
				loop = name
				break
			}
		}
		if loop == "" {
			continue
		}
		pt := Figure7Point{
			PC: st.PC, Loop: loop,
			Latency: st.LatInProgress, Wasted: st.WastedSlots,
		}
		if wasted, _, _, ok := db.WastedSlots(st.PC); ok {
			pt.EstWasted, pt.EstOK = wasted, true
		}
		out.Points = append(out.Points, pt)
	}
	sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].PC < out.Points[j].PC })
	if len(out.Points) < 10 {
		return nil, fmt.Errorf("fig7: only %d loop-body points", len(out.Points))
	}
	return out, nil
}

// byLoop groups points.
func (r *Figure7Result) byLoop() map[string][]Figure7Point {
	m := make(map[string][]Figure7Point)
	for _, p := range r.Points {
		m[p.Loop] = append(m[p.Loop], p)
	}
	return m
}

// Check verifies the paper's claims: latency is not correlated with wasted
// slots across loops — specifically, an instruction in the high-ILP loop
// has higher total latency yet fewer wasted slots than instructions in the
// serial loop — while within a loop the two are positively related; and
// the paired-sampling estimate tracks the ground truth.
func (r *Figure7Result) Check() error {
	groups := r.byLoop()
	maxLat := func(ps []Figure7Point) (best Figure7Point) {
		for _, p := range ps {
			if p.Latency > best.Latency {
				best = p
			}
		}
		return best
	}
	a, c := groups["A-serial"], groups["C-parallel"]
	if len(a) == 0 || len(c) == 0 {
		return fmt.Errorf("fig7: missing loop groups")
	}
	ma, mc := maxLat(a), maxLat(c)
	if err := checkf(mc.Latency > ma.Latency,
		"fig7: parallel loop's max latency %d not above serial loop's %d", mc.Latency, ma.Latency); err != nil {
		return err
	}
	if err := checkf(mc.Wasted < ma.Wasted,
		"fig7: parallel loop's high-latency instruction wastes %d slots, serial's wastes %d — latency alone would misrank them only if parallel wastes less",
		mc.Wasted, ma.Wasted); err != nil {
		return err
	}

	// Waste per issue slot available: serial should be far less efficient.
	wasteRate := func(ps []Figure7Point) float64 {
		var w, l int64
		for _, p := range ps {
			w += p.Wasted
			l += p.Latency
		}
		if l == 0 {
			return 0
		}
		return float64(w) / float64(l)
	}
	if err := checkf(wasteRate(a) > wasteRate(c)*1.5,
		"fig7: serial waste rate %.2f not well above parallel %.2f", wasteRate(a), wasteRate(c)); err != nil {
		return err
	}

	// The paired-sampling estimate must track ground truth. For points
	// where waste dominates their windows the estimate must match within
	// a factor of ~2; for low-waste points the estimate is a small
	// difference of two large sampled quantities, so only the ordering is
	// meaningful — the estimator must rank the wasteful serial loop above
	// the parallel one, since ranking is what the metric is for.
	checked := 0
	for _, p := range r.Points {
		if !p.EstOK || p.Wasted < 20_000 {
			continue
		}
		trueFrac := float64(p.Wasted) / float64(4*p.Latency)
		if trueFrac < 0.3 {
			continue
		}
		checked++
		ratio := p.EstWasted / float64(p.Wasted)
		if err := checkf(ratio > 0.4 && ratio < 2.5,
			"fig7: pc %#x (%s): estimated wasted %.0f vs actual %d (ratio %.2f)",
			p.PC, p.Loop, p.EstWasted, p.Wasted, ratio); err != nil {
			return err
		}
	}
	if err := checkf(checked >= 3, "fig7: only %d high-waste estimable points", checked); err != nil {
		return err
	}
	meanEst := func(ps []Figure7Point) float64 {
		var sum float64
		var n int
		for _, p := range ps {
			if p.EstOK {
				sum += p.EstWasted
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	return checkf(meanEst(a) > meanEst(c),
		"fig7: estimator ranks parallel loop (%.0f) above serial loop (%.0f)",
		meanEst(c), meanEst(a))
}

// Render prints the scatter as a table, one row per static instruction.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7 — total latency vs wasted issue slots per static instruction\n")
	fmt.Fprintf(&b, "%-12s %-10s %12s %14s %14s %8s\n",
		"loop", "pc", "latency", "wasted(true)", "wasted(est)", "est/true")
	for _, p := range r.Points {
		est := "-"
		ratio := "-"
		if p.EstOK {
			est = fmt.Sprintf("%.0f", p.EstWasted)
			if p.Wasted > 0 {
				ratio = fmt.Sprintf("%.2f", p.EstWasted/float64(p.Wasted))
			}
		}
		fmt.Fprintf(&b, "%-12s %-10s %12d %14d %14s %8s\n",
			p.Loop, fmt.Sprintf("%#x", p.PC), p.Latency, p.Wasted, est, ratio)
	}
	return b.String()
}
