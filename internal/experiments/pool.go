package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"profileme/internal/runner"
)

// Parallelism caps the experiment worker pool. Zero (the default) means
// one worker per CPU. Experiments fan independent benchmark×config cells
// across the pool; set 1 to force the sequential order (debugging) — the
// results are identical either way, see parallelMap.
var Parallelism int

func poolWorkers(n int) int {
	w := Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelMap runs n independent cells on a bounded worker pool and
// returns their results indexed by cell. It is the experiment harness's
// one concurrency primitive, with the determinism and supervision rules
// all experiments share:
//
//   - Results land at their cell's index, so the output order is the
//     sequential loop order no matter how the scheduler interleaves
//     workers. Cells must not share mutable state; anything random must
//     come from per-cell seeds drawn sequentially BEFORE fanning out
//     (an RNG shared across cells would make results depend on timing).
//   - A panicking cell is isolated, converted to a *runner.PanicError
//     carrying the stack (the fleet-runner idiom), and reported like any
//     other cell failure rather than killing the process.
//   - On failure the lowest-indexed error wins — again so concurrency
//     cannot change which error the caller sees — and the remaining
//     cells still run to completion (they are independent; there is no
//     cancellation plumbing to get wrong).
func parallelMap[T any](n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)

	workers := poolWorkers(n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = runCell(i, run)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
	}
	return out, nil
}

// runCell executes one cell with panic isolation.
func runCell[T any](i int, run func(i int) (T, error)) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &runner.PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return run(i)
}
