package experiments

import (
	"fmt"
	"strings"

	"profileme/internal/cpu"
	"profileme/internal/stats"
	"profileme/internal/workload"
)

// Section6Config parameterizes the windowed-IPC study.
type Section6Config struct {
	Benchmarks   []string // empty = whole suite
	Scale        int
	WindowCycles int
}

// DefaultSection6Config matches the paper's 30-cycle windows.
func DefaultSection6Config() Section6Config {
	return Section6Config{Scale: 300_000, WindowCycles: 30}
}

// Section6Row is one benchmark's windowed-IPC statistics.
type Section6Row struct {
	Benchmark   string
	Windows     int
	MeanIPC     float64
	MinIPC      float64 // minimum over non-empty windows
	MaxIPC      float64
	MaxMinRatio float64
	// WeightedCoV is the standard deviation of windowed IPC, weighted by
	// retire count, as a fraction of the mean (the paper's §6 statistic).
	WeightedCoV float64
}

// Section6Result holds per-benchmark rows plus the pooled statistic.
type Section6Result struct {
	Config     Section6Config
	Rows       []Section6Row
	OverallCoV float64
}

// Section6 reproduces the paper's §6 measurements: run each benchmark on
// the timing pipeline, count retired instructions per fixed 30-cycle
// window, and report the max/min windowed-IPC ratio and the retire-weighted
// standard deviation of windowed IPC (paper: ratios 3-30; weighted stddev
// 20-42% of the mean, ~31% overall).
func Section6(cfg Section6Config) (*Section6Result, error) {
	names := cfg.Benchmarks
	if len(names) == 0 {
		names = workload.Names()
	}
	res := &Section6Result{Config: cfg}

	// Benchmarks are independent timing runs: fan them out, keeping each
	// cell's window counts so the pooled statistic can be folded
	// afterwards in benchmark order (same accumulation order — and
	// therefore bit-identical floating point — as the sequential loop).
	type cellOut struct {
		row  Section6Row
		wins []uint32
	}
	cells, err := parallelMap(len(names), func(i int) (cellOut, error) {
		name := names[i]
		bench, ok := workload.ByName(name)
		if !ok {
			return cellOut{}, fmt.Errorf("sec6: unknown benchmark %q", name)
		}
		prog := bench.Build(cfg.Scale)
		ccfg := cpu.DefaultConfig()
		ccfg.TrackWindowedIPC = true
		ccfg.IPCWindowCycles = cfg.WindowCycles
		_, pipe, err := runPipeline(prog, ccfg, nil, nil)
		if err != nil {
			return cellOut{}, fmt.Errorf("sec6: %s: %w", name, err)
		}

		wins := pipe.IPCWindows()
		if len(wins) > 1 {
			wins = wins[:len(wins)-1] // drop the final partial window
		}
		row := Section6Row{Benchmark: name}
		var weighted stats.Weighted
		var meanAcc stats.Running
		first := true
		for _, w := range wins {
			ipc := float64(w) / float64(cfg.WindowCycles)
			meanAcc.Add(ipc)
			if w == 0 {
				continue // ratio over non-empty windows, as the paper's levels
			}
			row.Windows++
			if first || ipc < row.MinIPC {
				row.MinIPC = ipc
			}
			if first || ipc > row.MaxIPC {
				row.MaxIPC = ipc
			}
			first = false
			weighted.Add(ipc, float64(w))
		}
		row.MeanIPC = meanAcc.Mean()
		if row.MinIPC > 0 {
			row.MaxMinRatio = row.MaxIPC / row.MinIPC
		}
		if weighted.Mean() > 0 {
			row.WeightedCoV = weighted.StdDev() / weighted.Mean()
		}
		return cellOut{row: row, wins: wins}, nil
	})
	if err != nil {
		return nil, err
	}

	var overall stats.Weighted
	for _, c := range cells {
		res.Rows = append(res.Rows, c.row)
		for _, w := range c.wins {
			if w == 0 {
				continue
			}
			overall.Add(float64(w)/float64(cfg.WindowCycles), float64(w))
		}
	}
	if overall.Mean() > 0 {
		res.OverallCoV = overall.StdDev() / overall.Mean()
	}
	return res, nil
}

// Check verifies the paper's qualitative findings: windowed IPC varies
// substantially within every benchmark (max/min well above 1), the
// variation differs across benchmarks, and the pooled weighted CoV falls
// in a broad band around the paper's 31%.
func (r *Section6Result) Check() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("sec6: no rows")
	}
	minCoV, maxCoV := 10.0, 0.0
	for _, row := range r.Rows {
		if err := checkf(row.MaxMinRatio >= 2,
			"sec6: %s: max/min windowed IPC %.1f shows no variation", row.Benchmark, row.MaxMinRatio); err != nil {
			return err
		}
		if row.WeightedCoV < minCoV {
			minCoV = row.WeightedCoV
		}
		if row.WeightedCoV > maxCoV {
			maxCoV = row.WeightedCoV
		}
	}
	if err := checkf(maxCoV > minCoV*1.3,
		"sec6: benchmarks show uniform CoV (%.2f..%.2f); the suite should vary", minCoV, maxCoV); err != nil {
		return err
	}
	return checkf(r.OverallCoV > 0.10 && r.OverallCoV < 0.80,
		"sec6: overall weighted CoV %.2f outside plausible band", r.OverallCoV)
}

// Render prints the per-benchmark table.
func (r *Section6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6 — windowed IPC over %d-cycle windows\n", r.Config.WindowCycles)
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s %9s %10s\n",
		"benchmark", "windows", "mean", "min", "max", "max/min", "w.stddev%%")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %8d %8.2f %8.2f %8.2f %9.1f %9.1f%%\n",
			row.Benchmark, row.Windows, row.MeanIPC, row.MinIPC, row.MaxIPC,
			row.MaxMinRatio, 100*row.WeightedCoV)
	}
	fmt.Fprintf(&b, "overall retire-weighted stddev: %.1f%% of mean (paper: 20-42%%, overall 31%%)\n",
		100*r.OverallCoV)
	return b.String()
}
