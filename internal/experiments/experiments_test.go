package experiments

import (
	"strings"
	"testing"
)

func TestFigure2(t *testing.T) {
	cfg := DefaultFigure2Config()
	cfg.Iters = 1200
	cfg.Nops = 120
	res, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	out := res.Render()
	if !strings.Contains(out, "in-order") || !strings.Contains(out, "out-of-order") {
		t.Fatalf("render:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestFigure3(t *testing.T) {
	cfg := DefaultFigure3Config()
	cfg.Benchmarks = []string{"compress", "ijpeg", "li"}
	cfg.Scale = 300_000
	cfg.Intervals = []float64{50, 500}
	res, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestFigure6(t *testing.T) {
	cfg := DefaultFigure6Config()
	cfg.Benchmarks = []string{"compress", "gcc"}
	cfg.GeneratedSeeds = []uint64{11}
	cfg.Scale = 120_000
	cfg.Eval.MaxInst = 120_000
	cfg.Eval.SampleInterval = 149
	cfg.Eval.HistoryLens = []int{1, 4, 8, 12}
	res, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestFigure7(t *testing.T) {
	cfg := DefaultFigure7Config()
	cfg.Iters = 25_000
	res, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestTable1(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Iters = 8000
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestSection6(t *testing.T) {
	cfg := DefaultSection6Config()
	cfg.Scale = 120_000
	res, err := Section6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestBlindSpot(t *testing.T) {
	cfg := DefaultBlindSpotConfig()
	cfg.Iters = 8000
	res, err := BlindSpot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestWWComparison(t *testing.T) {
	cfg := DefaultWWConfig()
	cfg.Scale = 3_000_000
	cfg.Period = 15
	res, err := WW(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestMultiprocess(t *testing.T) {
	cfg := DefaultMultiprocessConfig()
	cfg.Scale = 150_000
	res, err := Multiprocess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	t.Logf("\n%s", res.Render())
}

func TestFigure3TimingModeAgrees(t *testing.T) {
	// The fast functional sampler (the documented substitution for the
	// paper's cycle-accurate runs) and the full timing pipeline with the
	// real ProfileMe unit must show the same convergence behaviour.
	base := Figure3Config{
		Benchmarks: []string{"compress"},
		Scale:      250_000,
		Intervals:  []float64{100},
		Seed:       7,
	}
	fast, err := Figure3(base)
	if err != nil {
		t.Fatal(err)
	}
	timing := base
	timing.UseTiming = true
	slow, err := Figure3(timing)
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]*Figure3Result{"fast": fast, "timing": slow} {
		pts := res.Series[0].Retire
		var strong []Figure3Point
		for _, p := range pts {
			if p.Samples >= 16 {
				strong = append(strong, p)
			}
		}
		if len(strong) < 8 {
			t.Fatalf("%s: only %d strong points", name, len(strong))
		}
		frac := EnvelopeFraction(strong)
		if frac < 0.45 || frac > 0.95 {
			t.Fatalf("%s: envelope fraction %.2f", name, frac)
		}
		med := MedianAbsError(strong)
		if med > 0.2 {
			t.Fatalf("%s: median error %.3f", name, med)
		}
	}
}
