package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/mem"
	"profileme/internal/sim"
	"profileme/internal/stats"
	"profileme/internal/workload"
)

// Figure3Config parameterizes the convergence experiment.
type Figure3Config struct {
	Benchmarks []string // suite subset (empty = whole suite)
	Scale      int      // workload scale (dynamic instructions per program)
	Intervals  []float64
	Seed       uint64
	// UseTiming runs the full out-of-order pipeline with the real
	// ProfileMe unit instead of the fast functional sampler. Slower, but
	// validates that the fast mode (the documented substitution for the
	// paper's cycle-accurate runs) shows the same convergence.
	UseTiming bool
}

// DefaultFigure3Config scales the paper's runs down proportionally: the
// paper sampled every 10^3-10^5 instructions of 10^8-10^9 traces; we sample
// every 10^2-10^4 of ~10^6-10^7, keeping the expected per-PC sample counts
// — the quantity convergence depends on — in the same range.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		Scale:     2_000_000,
		Intervals: []float64{100, 1000, 10000},
		Seed:      7,
	}
}

// Figure3Point is one static instruction at one sampling interval: the
// number of samples with the property and the ratio of the estimated to
// the actual count.
type Figure3Point struct {
	PC      uint64
	Samples uint64
	Ratio   float64
}

// Figure3Series holds all points for one metric at one interval.
type Figure3Series struct {
	Benchmark string
	Interval  float64
	Retire    []Figure3Point // retire-count estimates
	DMiss     []Figure3Point // D-cache-miss-count estimates
}

// EnvelopeFraction returns the fraction of points inside the 1 ± 1/sqrt(x)
// envelope for the given metric points.
func EnvelopeFraction(points []Figure3Point) float64 {
	xs := make([]float64, len(points))
	rs := make([]float64, len(points))
	for i, p := range points {
		xs[i], rs[i] = float64(p.Samples), p.Ratio
	}
	return stats.EnvelopeFraction(xs, rs)
}

// MedianAbsError returns the median |ratio - 1| over the points.
func MedianAbsError(points []Figure3Point) float64 {
	if len(points) == 0 {
		return 0
	}
	devs := make([]float64, len(points))
	for i, p := range points {
		devs[i] = math.Abs(p.Ratio - 1)
	}
	return stats.Quantile(devs, 0.5)
}

// Figure3Result aggregates all series.
type Figure3Result struct {
	Config Figure3Config
	Series []Figure3Series
}

// Figure3 reproduces the convergence experiment (§5.1, Figure 3): sample
// the instruction stream of each benchmark at each interval, estimate
// per-PC retire and D-cache-miss counts as (samples × interval), and
// compare against the simulator's exact counts.
//
// Sampling runs in the fast functional mode by default (instruction
// stream + memory hierarchy, no pipeline timing): the estimator's
// convergence depends only on the sampling process, which is identical,
// and this keeps the paper's trace lengths tractable. Set UseTiming to run
// the full pipeline with the real ProfileMe unit instead; the two modes
// are cross-validated in the experiment tests.
func Figure3(cfg Figure3Config) (*Figure3Result, error) {
	names := cfg.Benchmarks
	if len(names) == 0 {
		names = workload.Names()
	}
	// Enumerate the benchmark×interval cells and draw each cell's
	// randomness from the shared RNG in sequential loop order BEFORE
	// fanning out, so the parallel run is cell-for-cell identical to the
	// sequential one.
	type cell struct {
		bench    workload.Benchmark
		interval float64
		seed     uint64     // timing mode
		rng      *stats.RNG // fast mode
	}
	rng := stats.NewRNG(cfg.Seed)
	var cells []cell
	for _, name := range names {
		bench, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("fig3: unknown benchmark %q", name)
		}
		for _, interval := range cfg.Intervals {
			c := cell{bench: bench, interval: interval}
			if cfg.UseTiming {
				c.seed = rng.Uint64()
			} else {
				c.rng = rng.Split()
			}
			cells = append(cells, c)
		}
	}

	series, err := parallelMap(len(cells), func(i int) (Figure3Series, error) {
		c := cells[i]
		var s Figure3Series
		var err error
		if cfg.UseTiming {
			s, err = convergenceRunTiming(c.bench, cfg.Scale, c.interval, c.seed)
		} else {
			s, err = convergenceRun(c.bench, cfg.Scale, c.interval, c.rng)
		}
		if err != nil {
			return Figure3Series{}, fmt.Errorf("fig3: %s: %w", c.bench.Name, err)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure3Result{Config: cfg, Series: series}, nil
}

type pcCounts struct {
	executed      uint64
	misses        uint64
	sampled       uint64
	sampledMisses uint64
}

func convergenceRun(bench workload.Benchmark, scale int, interval float64, rng *stats.RNG) (Figure3Series, error) {
	prog := bench.Build(scale)
	hier := mem.NewHierarchy(mem.DefaultConfig())
	counts := make([]pcCounts, prog.Len())
	m := sim.New(prog)
	countdown := rng.Geometric(interval)

	for !m.Halted() {
		rec, ok, err := m.Step()
		if err != nil {
			return Figure3Series{}, err
		}
		if !ok {
			break
		}
		c := &counts[rec.PC/isa.InstBytes]
		c.executed++
		miss := false
		if rec.Inst.Op.IsMem() {
			miss = hier.Data(rec.EA).L1Miss
		}
		if miss {
			c.misses++
		}
		countdown--
		if countdown <= 0 {
			countdown = rng.Geometric(interval)
			c.sampled++
			if miss {
				c.sampledMisses++
			}
		}
	}

	series := Figure3Series{Benchmark: bench.Name, Interval: interval}
	for i := range counts {
		c := &counts[i]
		if c.executed == 0 {
			continue
		}
		pc := uint64(i) * isa.InstBytes
		if c.sampled > 0 {
			series.Retire = append(series.Retire, Figure3Point{
				PC: pc, Samples: c.sampled,
				Ratio: float64(c.sampled) * interval / float64(c.executed),
			})
		}
		if c.misses > 0 && c.sampledMisses > 0 {
			series.DMiss = append(series.DMiss, Figure3Point{
				PC: pc, Samples: c.sampledMisses,
				Ratio: float64(c.sampledMisses) * interval / float64(c.misses),
			})
		}
	}
	return series, nil
}

// convergenceRunTiming is convergenceRun on the full timing pipeline with
// the real ProfileMe hardware: per-PC sample counts come from delivered
// records, actual counts from the pipeline's omniscient ground truth.
func convergenceRunTiming(bench workload.Benchmark, scale int, interval float64, seed uint64) (Figure3Series, error) {
	prog := bench.Build(scale)
	ccfg := cpu.DefaultConfig()
	ccfg.InterruptCost = 0
	ucfg := core.DefaultConfig()
	ucfg.MeanInterval = interval
	ucfg.BufferDepth = 64
	ucfg.Seed = seed | 1
	unit := core.MustNewUnit(ucfg)

	sampled := make(map[uint64]uint64)
	sampledMiss := make(map[uint64]uint64)
	handler := func(ss []core.Sample) {
		for _, s := range ss {
			r := s.First
			if !r.Retired() {
				continue
			}
			sampled[r.PC]++
			if r.Events.Has(core.EvDCacheMiss) {
				sampledMiss[r.PC]++
			}
		}
	}
	res, pipe, err := runPipeline(prog, ccfg, unit, handler)
	if err != nil {
		return Figure3Series{}, err
	}
	// Scale by the realized interval (retired samples per retired
	// instruction), as the profiling software would.
	var totalSamples uint64
	for _, n := range sampled {
		totalSamples += n
	}
	if totalSamples == 0 {
		return Figure3Series{}, fmt.Errorf("no samples")
	}
	realizedS := float64(res.Retired) / float64(totalSamples)

	series := Figure3Series{Benchmark: bench.Name, Interval: interval}
	for _, st := range pipe.PerPC() {
		if st.Retired == 0 {
			continue
		}
		if k := sampled[st.PC]; k > 0 {
			series.Retire = append(series.Retire, Figure3Point{
				PC: st.PC, Samples: k,
				Ratio: float64(k) * realizedS / float64(st.Retired),
			})
		}
		if k := sampledMiss[st.PC]; k > 0 && st.DCacheMiss > 0 {
			series.DMiss = append(series.DMiss, Figure3Point{
				PC: st.PC, Samples: k,
				Ratio: float64(k) * realizedS / float64(st.DCacheMiss),
			})
		}
	}
	return series, nil
}

// Check verifies the paper's claims: estimates are unbiased (mean ratio
// near 1), relative error shrinks as 1/sqrt(samples) — the ±1 stddev
// envelope holds roughly two-thirds of the points — and shorter sampling
// intervals converge tighter on the same workload.
func (r *Figure3Result) Check() error {
	// Pool points across benchmarks per interval.
	byInterval := map[float64][]Figure3Point{}
	for _, s := range r.Series {
		byInterval[s.Interval] = append(byInterval[s.Interval], s.Retire...)
	}
	var intervals []float64
	for iv := range byInterval {
		intervals = append(intervals, iv)
	}
	sort.Float64s(intervals)
	prevErr := -1.0
	for _, iv := range intervals {
		points := byInterval[iv]
		// Restrict the envelope check to PCs with a meaningful number of
		// samples; tiny-count points are dominated by discreteness.
		var strong []Figure3Point
		var ratioSum float64
		for _, p := range points {
			if p.Samples >= 16 {
				strong = append(strong, p)
				ratioSum += p.Ratio
			}
		}
		if len(strong) < 10 {
			continue
		}
		meanRatio := ratioSum / float64(len(strong))
		if err := checkf(meanRatio > 0.9 && meanRatio < 1.1,
			"fig3: interval %.0f: mean ratio %.3f biased", iv, meanRatio); err != nil {
			return err
		}
		frac := EnvelopeFraction(strong)
		if err := checkf(frac > 0.45 && frac < 0.95,
			"fig3: interval %.0f: envelope holds %.2f of points, want ~2/3", iv, frac); err != nil {
			return err
		}
		medErr := MedianAbsError(strong)
		if prevErr >= 0 {
			if err := checkf(medErr >= prevErr*0.8,
				"fig3: error did not grow with interval: %.4f then %.4f", prevErr, medErr); err != nil {
				return err
			}
		}
		prevErr = medErr
	}
	return nil
}

// Render summarizes the series like the figure's panels.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3 — convergence of sampled estimates (ratio estimated/actual)\n")
	fmt.Fprintf(&b, "%-10s %9s | %7s %9s %9s | %7s %9s %9s\n",
		"benchmark", "interval", "ret.pts", "ret.medE", "ret.env", "dms.pts", "dms.medE", "dms.env")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-10s %9.0f | %7d %9.4f %9.2f | %7d %9.4f %9.2f\n",
			s.Benchmark, s.Interval,
			len(s.Retire), MedianAbsError(s.Retire), EnvelopeFraction(s.Retire),
			len(s.DMiss), MedianAbsError(s.DMiss), EnvelopeFraction(s.DMiss))
	}
	b.WriteString("\n(medE = median |ratio-1|; env = fraction inside the 1±1/sqrt(x) envelope, expected ~2/3)\n")
	return b.String()
}
