package experiments

import (
	"fmt"
	"strings"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/mem"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/stats"
	"profileme/internal/workload"
)

// MultiprocessConfig parameterizes the context-register demonstration:
// two processes time-sliced on one core, sharing the memory hierarchy and
// one ProfileMe unit.
type MultiprocessConfig struct {
	BenchA, BenchB string
	Scale          int
	Quantum        int64 // cycles per scheduling quantum
	MeanInterval   float64
}

// DefaultMultiprocessConfig co-runs compress (whose 64 KB working set
// exactly fits the D-cache alone) with vortex (a 256 KB record store), so
// the shared D-cache genuinely thrashes across quanta.
func DefaultMultiprocessConfig() MultiprocessConfig {
	return MultiprocessConfig{
		BenchA: "compress", BenchB: "vortex",
		Scale: 250_000, Quantum: 2_000, MeanInterval: 300,
	}
}

// MultiprocessScenarios returns named co-run pairings covering the suite's
// behavioural corners, including the extension kernels: an interpreter
// fighting a record store for the D-cache, a regular FP stencil sharing
// with a pointer chaser, and a mispredict-heavy kernel beside the dense
// block transform. Each entry is a complete config runnable as-is.
func MultiprocessScenarios() map[string]MultiprocessConfig {
	base := DefaultMultiprocessConfig()
	mk := func(a, b string) MultiprocessConfig {
		c := base
		c.BenchA, c.BenchB = a, b
		return c
	}
	return map[string]MultiprocessConfig{
		"compress-vortex": base,
		"m88ksim-vortex":  mk("m88ksim", "vortex"),
		"swim-li":         mk("swim", "li"),
		"eqntott-ijpeg":   mk("eqntott", "ijpeg"),
	}
}

// MultiprocessResult reports sample demultiplexing and cache interference.
type MultiprocessResult struct {
	Config MultiprocessConfig
	// SamplesA/B: samples routed to each context by the Profiled Context
	// Register. Stray counts samples with any other context value.
	SamplesA, SamplesB, Stray uint64
	// BiasA: median per-PC retire-estimate deviation for process A's hot
	// instructions, computed from its demultiplexed samples only. The
	// two programs' PC ranges overlap, so without the context register
	// this analysis would be impossible.
	BiasA float64
	// Interference: co-scheduled CPI over solo CPI for each process
	// (> 1 means the shared caches hurt, as they should).
	InterferenceA, InterferenceB float64
	SoloCPIA, CoCPIA             float64
	SoloCPIB, CoCPIB             float64
}

// Multiprocess reproduces the §4.1.3 context-register story: samples from
// a time-sliced system carry the address-space number of the process that
// executed the instruction, so one sample stream demultiplexes cleanly
// into per-process profiles, even though the processes' PC spaces overlap
// completely.
func Multiprocess(cfg MultiprocessConfig) (*MultiprocessResult, error) {
	benchA, ok := workload.ByName(cfg.BenchA)
	if !ok {
		return nil, fmt.Errorf("multiproc: unknown benchmark %q", cfg.BenchA)
	}
	benchB, ok := workload.ByName(cfg.BenchB)
	if !ok {
		return nil, fmt.Errorf("multiproc: unknown benchmark %q", cfg.BenchB)
	}
	const (
		asnA = 101
		asnB = 202
	)
	res := &MultiprocessResult{Config: cfg}

	// Solo runs for the interference baseline.
	solo := func(b workload.Benchmark, asn uint64) (cpu.Result, error) {
		prog := b.Build(cfg.Scale)
		ccfg := cpu.DefaultConfig()
		ccfg.Context = asn
		r, _, err := runPipeline(prog, ccfg, nil, nil)
		return r, err
	}
	soloA, err := solo(benchA, asnA)
	if err != nil {
		return nil, err
	}
	soloB, err := solo(benchB, asnB)
	if err != nil {
		return nil, err
	}
	res.SoloCPIA, res.SoloCPIB = soloA.CPI(), soloB.CPI()

	// Co-run: one shared hierarchy, one ProfileMe unit, two pipelines
	// time-sliced by a round-robin scheduler.
	hier := mem.NewHierarchy(mem.DefaultConfig())
	unit := core.MustNewUnit(core.Config{
		MeanInterval: cfg.MeanInterval, Window: 80, BufferDepth: 16,
		CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 12,
	})
	dbA := profile.NewDB(cfg.MeanInterval, 80, 4)
	dbB := profile.NewDB(cfg.MeanInterval, 80, 4)
	handler := func(ss []core.Sample) {
		for _, s := range ss {
			if s.First.Events.Has(core.EvNoInstruction) {
				continue
			}
			switch s.First.Context {
			case asnA:
				dbA.Add(s)
				res.SamplesA++
			case asnB:
				dbB.Add(s)
				res.SamplesB++
			default:
				res.Stray++
			}
		}
	}

	progA, progB := benchA.Build(cfg.Scale), benchB.Build(cfg.Scale)
	ccfgA := cpu.DefaultConfig()
	ccfgA.Context = asnA
	ccfgA.InterruptCost = 0
	ccfgB := ccfgA
	ccfgB.Context = asnB
	ccfgB.PhysBase = 0x4000_0000 // disjoint physical pages for process B
	pipeA, err := cpu.NewWithHierarchy(progA, sim.NewMachineSource(sim.New(progA), 0), ccfgA, hier)
	if err != nil {
		return nil, err
	}
	pipeB, err := cpu.NewWithHierarchy(progB, sim.NewMachineSource(sim.New(progB), 0), ccfgB, hier)
	if err != nil {
		return nil, err
	}
	pipeA.AttachProfileMe(unit, handler)
	pipeB.AttachProfileMe(unit, handler)

	doneA, doneB := false, false
	for !doneA || !doneB {
		if !doneA {
			doneA = pipeA.RunFor(cfg.Quantum)
		}
		if !doneB {
			doneB = pipeB.RunFor(cfg.Quantum)
		}
	}
	coA, coB := pipeA.Finish(), pipeB.Finish()
	res.CoCPIA, res.CoCPIB = coA.CPI(), coB.CPI()
	if res.SoloCPIA > 0 {
		res.InterferenceA = res.CoCPIA / res.SoloCPIA
	}
	if res.SoloCPIB > 0 {
		res.InterferenceB = res.CoCPIB / res.SoloCPIB
	}

	// Validate A's demultiplexed profile against A's own ground truth.
	if dbA.Samples() > 0 {
		dbA.S = float64(coA.FetchedOnPath) / float64(dbA.Samples())
	}
	var totalRetired uint64
	for _, st := range pipeA.PerPC() {
		totalRetired += st.Retired
	}
	var devs []float64
	for _, st := range pipeA.PerPC() {
		if st.Retired*100 < totalRetired {
			continue
		}
		acc := dbA.Get(st.PC)
		var k uint64
		if acc != nil {
			k = acc.Retired()
		}
		bias := profile.EstimateCount(k, dbA.S)/float64(st.Retired) - 1
		if bias < 0 {
			bias = -bias
		}
		devs = append(devs, bias)
	}
	res.BiasA = stats.Quantile(devs, 0.5)
	return res, nil
}

// Check verifies: every sample carries one of the two context values, the
// demultiplexed profile matches its process's ground truth, and the
// shared caches produce measurable interference.
func (r *MultiprocessResult) Check() error {
	if err := checkf(r.Stray == 0,
		"multiproc: %d samples with stray context values", r.Stray); err != nil {
		return err
	}
	if err := checkf(r.SamplesA > 50 && r.SamplesB > 50,
		"multiproc: too few samples (%d / %d)", r.SamplesA, r.SamplesB); err != nil {
		return err
	}
	if err := checkf(r.BiasA < 0.35,
		"multiproc: demultiplexed profile median bias %.2f", r.BiasA); err != nil {
		return err
	}
	return checkf(r.InterferenceA > 1.02 || r.InterferenceB > 1.02,
		"multiproc: no cache interference (%.2f / %.2f)", r.InterferenceA, r.InterferenceB)
}

// Render prints the demultiplexing and interference summary.
func (r *MultiprocessResult) Render() string {
	var b strings.Builder
	b.WriteString("Multiprocess profiling (§4.1.3 Profiled Context Register)\n")
	fmt.Fprintf(&b, "samples: %s=%d, %s=%d, stray=%d\n",
		r.Config.BenchA, r.SamplesA, r.Config.BenchB, r.SamplesB, r.Stray)
	fmt.Fprintf(&b, "%s: solo CPI %.2f -> co-run CPI %.2f (x%.2f)\n",
		r.Config.BenchA, r.SoloCPIA, r.CoCPIA, r.InterferenceA)
	fmt.Fprintf(&b, "%s: solo CPI %.2f -> co-run CPI %.2f (x%.2f)\n",
		r.Config.BenchB, r.SoloCPIB, r.CoCPIB, r.InterferenceB)
	fmt.Fprintf(&b, "median per-PC bias of %s's demultiplexed profile: %.2f\n",
		r.Config.BenchA, r.BiasA)
	return b.String()
}

// CSV renders the comparison rows.
func (r *MultiprocessResult) CSV() string {
	var b strings.Builder
	b.WriteString("process,samples,solo_cpi,co_cpi,interference\n")
	fmt.Fprintf(&b, "%s,%d,%.4f,%.4f,%.4f\n", r.Config.BenchA, r.SamplesA, r.SoloCPIA, r.CoCPIA, r.InterferenceA)
	fmt.Fprintf(&b, "%s,%d,%.4f,%.4f,%.4f\n", r.Config.BenchB, r.SamplesB, r.SoloCPIB, r.CoCPIB, r.InterferenceB)
	return b.String()
}
