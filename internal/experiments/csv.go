package experiments

import (
	"fmt"
	"strings"

	"profileme/internal/pathprof"
)

// CSV renders the Figure 2 histograms as rows of
// machine,offset,count,fraction.
func (r *Figure2Result) CSV() string {
	var b strings.Builder
	b.WriteString("machine,offset,count,fraction\n")
	for _, k := range r.InOrder.Keys() {
		fmt.Fprintf(&b, "in-order,%d,%d,%.6f\n", k, r.InOrder.Count(k), r.InOrder.Fraction(k))
	}
	for _, k := range r.OutOfOrder.Keys() {
		fmt.Fprintf(&b, "out-of-order,%d,%d,%.6f\n", k, r.OutOfOrder.Count(k), r.OutOfOrder.Fraction(k))
	}
	return b.String()
}

// CSV renders every Figure 3 point as
// benchmark,interval,metric,pc,samples,ratio — the scatter the figure
// plots (x = samples, y = ratio).
func (r *Figure3Result) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark,interval,metric,pc,samples,ratio\n")
	for _, s := range r.Series {
		for _, p := range s.Retire {
			fmt.Fprintf(&b, "%s,%.0f,retire,%#x,%d,%.6f\n", s.Benchmark, s.Interval, p.PC, p.Samples, p.Ratio)
		}
		for _, p := range s.DMiss {
			fmt.Fprintf(&b, "%s,%.0f,dmiss,%#x,%d,%.6f\n", s.Benchmark, s.Interval, p.PC, p.Samples, p.Ratio)
		}
	}
	return b.String()
}

// CSV renders the Figure 6 curves as mode,scheme,history_length,rate.
func (r *Figure6Result) CSV() string {
	var b strings.Builder
	b.WriteString("mode,scheme,history_length,success,total,rate\n")
	for mi, mode := range r.Modes {
		for s := pathprof.Scheme(0); int(s) < pathprof.NumSchemes; s++ {
			for li, hl := range r.HistoryLens {
				c := r.Cells[mi][int(s)][li]
				fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.6f\n", mode, s, hl, c.Success, c.Total, c.Rate())
			}
		}
	}
	return b.String()
}

// CSV renders the Figure 7 scatter as
// loop,pc,latency,wasted_true,wasted_est.
func (r *Figure7Result) CSV() string {
	var b strings.Builder
	b.WriteString("loop,pc,latency,wasted_true,wasted_est\n")
	for _, p := range r.Points {
		est := ""
		if p.EstOK {
			est = fmt.Sprintf("%.0f", p.EstWasted)
		}
		fmt.Fprintf(&b, "%s,%#x,%d,%d,%s\n", p.Loop, p.PC, p.Latency, p.Wasted, est)
	}
	return b.String()
}

// CSV renders the §6 table as benchmark rows.
func (r *Section6Result) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark,windows,mean_ipc,min_ipc,max_ipc,maxmin_ratio,weighted_cov\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%.4f,%.4f,%.4f,%.2f,%.4f\n",
			row.Benchmark, row.Windows, row.MeanIPC, row.MinIPC, row.MaxIPC,
			row.MaxMinRatio, row.WeightedCoV)
	}
	return b.String()
}

// CSV renders the Table 1 matrix as kernel rows.
func (r *Table1Result) CSV() string {
	var b strings.Builder
	b.WriteString("kernel,fetch_map,map_dataready,dataready_issue,issue_retireready,retireready_retire,load_completion,samples\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%d\n",
			row.Kernel, row.Lat[0], row.Lat[1], row.Lat[2], row.Lat[3], row.Lat[4],
			row.MemLat, row.Samples)
	}
	return b.String()
}

// CSV renders the blind-spot comparison as one row per profiler.
func (r *BlindSpotResult) CSV() string {
	var b strings.Builder
	b.WriteString("profiler,samples,share_inside,share_after,true_share\n")
	fmt.Fprintf(&b, "counters,%d,%.4f,%.4f,%.4f\n",
		r.CounterSamples, r.CounterShare, r.CounterAfterShare, r.TrueShare)
	fmt.Fprintf(&b, "profileme,%d,%.4f,,%.4f\n",
		r.ProfileSamples, r.ProfileShare, r.TrueShare)
	return b.String()
}
