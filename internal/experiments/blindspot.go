package experiments

import (
	"fmt"
	"strings"

	"profileme/internal/asm"
	"profileme/internal/core"
	"profileme/internal/counters"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/sim"
)

// BlindSpotConfig parameterizes the §2.2 blind-spot experiment.
type BlindSpotConfig struct {
	Iters        int
	Period       uint64  // counter overflow period
	MeanInterval float64 // ProfileMe sampling interval
}

// DefaultBlindSpotConfig returns the standard run.
func DefaultBlindSpotConfig() BlindSpotConfig {
	return BlindSpotConfig{Iters: 20_000, Period: 37, MeanInterval: 41}
}

// BlindSpotResult compares how the two profiling approaches attribute
// samples to an uninterruptible code region.
type BlindSpotResult struct {
	Config BlindSpotConfig
	// TrueShare is the fraction of retired instructions that lie inside
	// the uninterruptible procedure (ground truth).
	TrueShare float64
	// CounterShare is the fraction of event-counter interrupt PCs inside
	// the region (expected ~0: interrupts defer until the region exits).
	CounterShare float64
	// CounterAfterShare is the fraction landing on the first instructions
	// after the region — the pile-up the paper predicts.
	CounterAfterShare float64
	// ProfileShare is the fraction of ProfileMe sample PCs inside the
	// region (expected ~TrueShare).
	ProfileShare   float64
	CounterSamples uint64
	ProfileSamples uint64
}

// blindSpotProgram: main alternates between two procedures doing the same
// work; "pal" stands in for uninterruptible high-priority code.
const blindSpotSrc = `
.equ ITERS, %d
.proc main
    add  r20, ra, #0
    lda  r1, ITERS(zero)
    lda  r16, buf(zero)
loop:
    jsr  ra, pal
    jsr  ra, user
    sub  r1, r1, #1
    bne  r1, loop
    ret  (r20)
.endp

.proc pal
    ld   r2, 0(r16)
    add  r3, r3, r2
    add  r4, r4, #1
    mul  r5, r5, #3
    add  r6, r6, #2
    st   r3, 8(r16)
    add  r7, r7, #3
    ret  (ra)
.endp

.proc user
    ld   r8, 16(r16)
    add  r9, r9, r8
    add  r10, r10, #1
    mul  r11, r11, #5
    add  r12, r12, #2
    st   r9, 24(r16)
    add  r13, r13, #3
    ret  (ra)
.endp
.data
.org 0x20000
buf:
    .word 1, 0, 2, 0
`

// BlindSpot reproduces the §2.2 blind-spot limitation: performance-counter
// interrupts are deferred while high-priority (PALcode-like) code runs, so
// its events are misattributed to the code that follows; ProfileMe records
// the sampled instruction's PC in hardware at selection time and has no
// blind spot.
func BlindSpot(cfg BlindSpotConfig) (*BlindSpotResult, error) {
	prog, err := asm.Assemble(fmt.Sprintf(blindSpotSrc, cfg.Iters))
	if err != nil {
		return nil, fmt.Errorf("blindspot: %w", err)
	}
	pal := prog.ProcByName("pal")
	if pal == nil {
		return nil, fmt.Errorf("blindspot: no pal procedure")
	}
	inPal := func(pc uint64) bool { return pal.Contains(pc) }
	// The "after" window: the return site in main plus the user entry.
	afterLo, afterHi := pal.End, pal.End+6*isa.InstBytes

	ccfg := cpu.DefaultConfig()
	ccfg.UninterruptibleStart, ccfg.UninterruptibleEnd = pal.Start, pal.End
	ccfg.InterruptCost = 0

	res := &BlindSpotResult{Config: cfg}

	// Run 1: event counters monitoring retired instructions.
	var ctrIn, ctrAfter, ctrTotal uint64
	ctr := counters.New(
		counters.Config{Monitor: counters.EventRetired, Period: cfg.Period, Skid: 6, SkidJitter: 4, Seed: 5},
		func(pc uint64) {
			ctrTotal++
			if inPal(pc) {
				ctrIn++
			}
			if pc >= afterLo && pc < afterHi {
				ctrAfter++
			}
		})
	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, ccfg)
	if err != nil {
		return nil, err
	}
	pipe.AttachCounters(ctr)
	if _, err := pipe.Run(0); err != nil {
		return nil, err
	}
	var palRetired, allRetired uint64
	for _, st := range pipe.PerPC() {
		allRetired += st.Retired
		if inPal(st.PC) {
			palRetired += st.Retired
		}
	}
	if allRetired == 0 || ctrTotal == 0 {
		return nil, fmt.Errorf("blindspot: empty counter run")
	}
	res.TrueShare = float64(palRetired) / float64(allRetired)
	res.CounterShare = float64(ctrIn) / float64(ctrTotal)
	res.CounterAfterShare = float64(ctrAfter) / float64(ctrTotal)
	res.CounterSamples = ctrTotal

	// Run 2: ProfileMe sampling on the same machine configuration.
	ucfg := core.DefaultConfig()
	ucfg.MeanInterval = cfg.MeanInterval
	ucfg.BufferDepth = 16
	unit := core.MustNewUnit(ucfg)
	var pmIn, pmTotal uint64
	src2 := sim.NewMachineSource(sim.New(prog), 0)
	pipe2, err := cpu.New(prog, src2, ccfg)
	if err != nil {
		return nil, err
	}
	pipe2.AttachProfileMe(unit, func(ss []core.Sample) {
		for _, s := range ss {
			if !s.First.Retired() {
				continue
			}
			pmTotal++
			if inPal(s.First.PC) {
				pmIn++
			}
		}
	})
	if _, err := pipe2.Run(0); err != nil {
		return nil, err
	}
	if pmTotal == 0 {
		return nil, fmt.Errorf("blindspot: no ProfileMe samples")
	}
	res.ProfileShare = float64(pmIn) / float64(pmTotal)
	res.ProfileSamples = pmTotal
	return res, nil
}

// Check verifies the paper's claim: the counter profile has a blind spot
// over the uninterruptible code (large under-attribution, with the
// deferred interrupts piling up just after the region), while ProfileMe
// attributes the region close to its true share.
func (r *BlindSpotResult) Check() error {
	if err := checkf(r.TrueShare > 0.15,
		"blindspot: region share %.2f too small to measure", r.TrueShare); err != nil {
		return err
	}
	if err := checkf(r.CounterShare < 0.5*r.TrueShare,
		"blindspot: counters attribute %.2f inside the region (true %.2f) — no blind spot",
		r.CounterShare, r.TrueShare); err != nil {
		return err
	}
	if err := checkf(r.CounterAfterShare > r.TrueShare,
		"blindspot: deferred interrupts do not pile up after the region (%.2f)",
		r.CounterAfterShare); err != nil {
		return err
	}
	return checkf(r.ProfileShare > 0.7*r.TrueShare && r.ProfileShare < 1.3*r.TrueShare,
		"blindspot: ProfileMe share %.2f far from true %.2f", r.ProfileShare, r.TrueShare)
}

// Render prints the comparison.
func (r *BlindSpotResult) Render() string {
	var b strings.Builder
	b.WriteString("Blind spots (§2.2) — attribution of samples to uninterruptible code\n")
	fmt.Fprintf(&b, "true share of retired instructions in the region: %5.1f%%\n", 100*r.TrueShare)
	fmt.Fprintf(&b, "event counters   (%6d interrupts): %5.1f%% inside, %5.1f%% piled just after\n",
		r.CounterSamples, 100*r.CounterShare, 100*r.CounterAfterShare)
	fmt.Fprintf(&b, "ProfileMe        (%6d samples)   : %5.1f%% inside\n",
		r.ProfileSamples, 100*r.ProfileShare)
	return b.String()
}
