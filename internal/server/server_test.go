package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"profileme/internal/core"
	"profileme/internal/ingest"
	"profileme/internal/profile"
)

// testShard builds a shard database compatible with the test service
// configuration (interval 16, width 4).
func testShard(seed uint64, samples int) *profile.DB {
	db := profile.NewDB(16, 0, 4)
	for i := 0; i < samples; i++ {
		r := core.Record{PC: 0x400 + 8*((seed+uint64(i)*3)%11), LoadComplete: -1}
		for j := range r.StageCycle {
			r.StageCycle[j] = -1
		}
		r.StageCycle[core.StageFetch] = int64(i)
		r.StageCycle[core.StageRetire] = int64(i + 9)
		r.Events = core.EvRetired
		if i%4 == 0 {
			r.Events |= core.EvDCacheMiss
		}
		db.Add(core.Sample{First: r})
	}
	return db
}

func testService(t *testing.T, mutate func(*ingest.Config)) *ingest.Service {
	t.Helper()
	cfg := ingest.Config{
		QueueDepth:     4,
		Interval:       16,
		Width:          4,
		CheckpointPath: filepath.Join(t.TempDir(), "agg.db"),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := ingest.NewService(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// postSubmit encodes and POSTs one shard; returns status and decoded body.
func postSubmit(t *testing.T, h http.Handler, shard string, db *profile.DB) (int, map[string]any) {
	t.Helper()
	body, err := ingest.EncodeSubmit(shard, db)
	if err != nil {
		t.Fatal(err)
	}
	return post(t, h, "/v1/submit", body)
}

func post(t *testing.T, h http.Handler, path string, body []byte) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)))
	return rec.Code, decodeBody(t, rec)
}

func get(t *testing.T, h http.Handler, path string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, decodeBody(t, rec)
}

func decodeBody(t *testing.T, rec *httptest.ResponseRecorder) map[string]any {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		return map[string]any{"_text": rec.Body.String()}
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("response %d not JSON: %v\n%s", rec.Code, err, rec.Body.String())
	}
	return m
}

func wantKind(t *testing.T, body map[string]any, kind string) {
	t.Helper()
	if got, _ := body["kind"].(string); got != kind {
		t.Fatalf("error kind %q, want %q (body %v)", got, kind, body)
	}
}

func TestSubmitAcceptedThenQueryable(t *testing.T) {
	svc := testService(t, nil)
	h := New(Config{}, svc).Handler()

	for i := 0; i < 3; i++ {
		status, body := postSubmit(t, h, fmt.Sprintf("bench/s%03d", i), testShard(uint64(i), 20))
		if status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d body %v", i, status, body)
		}
	}
	// Drain flushes the backlog inline (service never started).
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	status, body := get(t, h, "/v1/hotpcs?n=5")
	if status != http.StatusOK {
		t.Fatalf("hotpcs: %d %v", status, body)
	}
	if got := body["samples"].(float64); got != 60 {
		t.Fatalf("hotpcs samples %v, want 60", got)
	}
	pcs := body["pcs"].([]any)
	if len(pcs) != 5 {
		t.Fatalf("hotpcs returned %d rows, want 5", len(pcs))
	}
	top := pcs[0].(map[string]any)
	for _, key := range []string{"pc", "samples", "est_count", "retired_pct", "dcache_miss_pct"} {
		if _, ok := top[key]; !ok {
			t.Fatalf("hotpcs row missing %q: %v", key, top)
		}
	}

	// Estimate for the hottest PC, with and without an event filter.
	pc := top["pc"].(string)
	status, body = get(t, h, "/v1/estimate?pc="+pc)
	if status != http.StatusOK {
		t.Fatalf("estimate: %d %v", status, body)
	}
	if _, ok := body["est_event_counts"].(map[string]any); !ok {
		t.Fatalf("estimate missing est_event_counts: %v", body)
	}
	status, body = get(t, h, "/v1/estimate?pc="+pc+"&event=dcache-miss")
	if status != http.StatusOK || body["event"] != "dcache-miss" {
		t.Fatalf("estimate with event: %d %v", status, body)
	}

	// Plain-text report.
	status, body = get(t, h, "/v1/report?n=3")
	if status != http.StatusOK || !strings.Contains(body["_text"].(string), "PC") {
		t.Fatalf("report: %d %v", status, body)
	}
}

func TestSubmitTypedRejections(t *testing.T) {
	svc := testService(t, nil)
	h := New(Config{}, svc).Handler()

	// 405: wrong method.
	if status, body := get(t, h, "/v1/submit"); status != http.StatusMethodNotAllowed {
		t.Fatalf("GET submit: %d %v", status, body)
	}

	// 413: body over the limit, refused before the decoder runs (separate
	// handler with a tiny limit so valid submissions elsewhere still fit).
	tiny := New(Config{MaxBodyBytes: 512}, svc).Handler()
	status, body := post(t, tiny, "/v1/submit", bytes.Repeat([]byte("x"), 2048))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: %d %v", status, body)
	}
	wantKind(t, body, "oversized")

	// 400 malformed: not a submission envelope.
	status, body = post(t, h, "/v1/submit", []byte(`{"shard":123}`))
	if status != http.StatusBadRequest {
		t.Fatalf("malformed: %d %v", status, body)
	}
	wantKind(t, body, "malformed")

	// 400 corrupt: valid envelope, payload CRC broken.
	valid, err := ingest.EncodeSubmit("s", testShard(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Shard   string `json:"shard"`
		Profile []byte `json:"profile"`
	}
	if err := json.Unmarshal(valid, &env); err != nil {
		t.Fatal(err)
	}
	env.Profile[len(env.Profile)-1] ^= 0xff
	corrupt, _ := json.Marshal(env)
	status, body = post(t, h, "/v1/submit", corrupt)
	if status != http.StatusBadRequest {
		t.Fatalf("corrupt: %d %v", status, body)
	}
	if k := body["kind"].(string); k != "corrupt" && k != "truncated" {
		t.Fatalf("corrupt payload kind %q", k)
	}

	// 409: sampling configuration that can never merge; NOT accounted as loss.
	status, body = postSubmit(t, h, "skew", profile.NewDB(999, 0, 4))
	if status != http.StatusConflict {
		t.Fatalf("mismatch: %d %v", status, body)
	}
	wantKind(t, body, "config-mismatch")
	if lost := svc.Aggregate().Lost(); lost != 0 {
		t.Fatalf("4xx refusals recorded %d lost samples; only admitted-population losses count", lost)
	}
}

// TestSubmitDuplicateIdempotent: resubmitting an accepted shard — what
// an honest client does when the 202 response is lost and its transport
// error classifies as transient — acknowledges without re-merging.
func TestSubmitDuplicateIdempotent(t *testing.T) {
	svc := testService(t, nil)
	h := New(Config{}, svc).Handler()
	db := testShard(1, 10)

	status, body := postSubmit(t, h, "bench/s001", db)
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d %v", status, body)
	}
	status, body = postSubmit(t, h, "bench/s001", db)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit: %d %v, want 202", status, body)
	}
	if dup, _ := body["duplicate"].(bool); !dup {
		t.Fatalf("resubmit not flagged duplicate: %v", body)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	agg := svc.Aggregate()
	if agg.Samples() != db.Samples() || agg.Lost() != 0 {
		t.Fatalf("duplicate double-merged: samples %d lost %d, want %d/0",
			agg.Samples(), agg.Lost(), db.Samples())
	}
}

func TestSubmitBackpressureAndDrain(t *testing.T) {
	svc := testService(t, nil) // queue depth 4, aggregator not started
	h := New(Config{}, svc).Handler()

	// Fill the queue, then hit the 429 wall; refused samples become loss.
	var wantLost uint64
	for i := 0; i < 6; i++ {
		db := testShard(uint64(i), 10)
		status, body := postSubmit(t, h, fmt.Sprintf("s%d", i), db)
		switch {
		case i < 4 && status != http.StatusAccepted:
			t.Fatalf("submit %d: %d %v", i, status, body)
		case i >= 4:
			if status != http.StatusTooManyRequests {
				t.Fatalf("submit %d: %d %v, want 429", i, status, body)
			}
			wantKind(t, body, "queue-full")
			wantLost += db.Samples()
		}
	}
	if got := svc.Aggregate().Lost(); got != wantLost {
		t.Fatalf("lost %d after 429s, want %d", got, wantLost)
	}

	// Draining: submissions get 503 and are still accounted.
	svc.BeginDrain()
	db := testShard(9, 10)
	status, body := postSubmit(t, h, "late", db)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d %v", status, body)
	}
	wantKind(t, body, "draining")
	wantLost += db.Samples()
	if got := svc.Aggregate().Lost(); got != wantLost {
		t.Fatalf("lost %d after draining 503, want %d", got, wantLost)
	}
}

func TestRetryAfterHeader(t *testing.T) {
	svc := testService(t, func(c *ingest.Config) { c.QueueDepth = 1 })
	srv := New(Config{RetryAfter: 3 * time.Second}, svc)
	h := srv.Handler()
	postSubmit(t, h, "fill", testShard(0, 5))

	body, _ := ingest.EncodeSubmit("over", testShard(1, 5))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/submit", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want 3", got)
	}
}

func TestQuerySheddingAboveHighWater(t *testing.T) {
	svc := testService(t, nil)
	srv := New(Config{MaxQueries: 2}, svc)
	h := srv.Handler()

	// Saturate the in-flight counter directly: the shed decision is the
	// unit under test, not goroutine scheduling.
	srv.inFlight.Add(2)
	status, body := get(t, h, "/v1/hotpcs")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("saturated query: %d %v", status, body)
	}
	wantKind(t, body, "overloaded")
	srv.inFlight.Add(-2)

	if status, body := get(t, h, "/v1/hotpcs"); status != http.StatusOK {
		t.Fatalf("query after load cleared: %d %v", status, body)
	}
	if srv.queriesShed.Load() != 1 {
		t.Fatalf("queries_shed %d, want 1", srv.queriesShed.Load())
	}
}

func TestQueryDeadline504(t *testing.T) {
	svc := testService(t, nil)
	h := New(Config{QueryDeadline: time.Nanosecond}, svc).Handler()
	time.Sleep(time.Millisecond) // let the 1ns deadline definitely expire
	status, body := get(t, h, "/v1/hotpcs")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: %d %v", status, body)
	}
	wantKind(t, body, "deadline")
}

func TestQueryParamValidation(t *testing.T) {
	svc := testService(t, nil)
	h := New(Config{}, svc).Handler()
	for _, path := range []string{
		"/v1/hotpcs?n=0", "/v1/hotpcs?n=headache", "/v1/hotpcs?n=100000",
		"/v1/estimate", "/v1/estimate?pc=zzz",
	} {
		if status, body := get(t, h, path); status != http.StatusBadRequest {
			t.Fatalf("%s: %d %v, want 400", path, status, body)
		}
	}
	if status, body := get(t, h, "/v1/estimate?pc=0xdead"); status != http.StatusNotFound {
		t.Fatalf("unknown pc: %d %v, want 404", status, body)
	}
	// Unknown event name on a real PC.
	postSubmit(t, h, "s", testShard(0, 8))
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	pc := fmt.Sprintf("%#x", svc.Aggregate().PCs()[0])
	if status, body := get(t, h, "/v1/estimate?pc="+pc+"&event=nonsense"); status != http.StatusBadRequest {
		t.Fatalf("unknown event: %d %v, want 400", status, body)
	}
}

func TestReadyzFlipsOnDrainAndBreaker(t *testing.T) {
	// A checkpoint path inside a directory that doesn't exist makes every
	// persist fail; threshold 1 opens the breaker on the first one.
	svc := testService(t, func(c *ingest.Config) {
		c.CheckpointPath = filepath.Join(t.TempDir(), "missing-dir", "agg.db")
		c.BreakerThreshold = 1
		c.BreakerCooldown = time.Hour
	})
	h := New(Config{}, svc).Handler()

	if status, body := get(t, h, "/readyz"); status != http.StatusOK {
		t.Fatalf("fresh readyz: %d %v", status, body)
	}
	if status, _ := get(t, h, "/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}

	// One merged submission → one failed checkpoint → breaker open.
	postSubmit(t, h, "s", testShard(0, 5))
	svc.Start()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Breaker().State() != ingest.BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	status, body := get(t, h, "/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open readyz: %d %v", status, body)
	}
	wantKind(t, body, "breaker-open")

	// Drain outranks breaker state in the readiness answer.
	svc.BeginDrain()
	status, body = get(t, h, "/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d %v", status, body)
	}
	wantKind(t, body, "draining")
	// healthz stays green: the process is alive and draining on purpose.
	if status, _ := get(t, h, "/healthz"); status != http.StatusOK {
		t.Fatalf("healthz during drain: %d", status)
	}
}

func TestStatsEndpoint(t *testing.T) {
	svc := testService(t, nil)
	h := New(Config{}, svc).Handler()
	postSubmit(t, h, "a", testShard(1, 10))
	get(t, h, "/v1/hotpcs")

	status, body := get(t, h, "/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d %v", status, body)
	}
	if got := body["submissions"].(float64); got != 1 {
		t.Fatalf("submissions %v, want 1", got)
	}
	if got := body["queries"].(float64); got != 1 {
		t.Fatalf("queries %v, want 1", got)
	}
	if _, ok := body["queue"].(map[string]any); !ok {
		t.Fatalf("stats missing queue block: %v", body)
	}
	if _, ok := body["breaker"].(map[string]any); !ok {
		t.Fatalf("stats missing breaker block: %v", body)
	}
}
