// Package server is pmsimd's HTTP boundary: shard submission and
// estimator queries over JSON, with the robustness contract enforced at
// the edge — bounded request bodies, typed 4xx for damaged submissions,
// admission backpressure surfaced as 429/503 (+ Retry-After), query
// concurrency limits with shedding above a high-water mark, per-request
// deadlines, and health/readiness endpoints that flip the instant a
// drain begins.
//
// Endpoints:
//
//	POST /v1/submit        shard profile submission (ingest JSON envelope)
//	GET  /v1/hotpcs?n=10   top-N hot PCs with loss-corrected estimates;
//	                       &window=30s for recent-only, &sketch=false for
//	                       the exact O(DB) path (default serves the O(K)
//	                       sketch view with "approx"/"error_bound")
//	GET  /v1/estimate?pc=  per-PC estimator rollup (optionally &event=;
//	                       &sketch=false forces the exact path)
//	GET  /v1/stats         ingest/queue/breaker/loss/WAL/witness/sketch counters
//	GET  /v1/report?n=15   plain-text hot-instruction table
//	GET  /v1/ledger        admission ledger (anti-entropy reads this)
//	POST /v1/ledger/adopt  adopt shard ids from a peer (membership change)
//	POST /v1/handoff/export seal + flush + serialize the aggregate for a
//	                       scale-in migration (idempotent: retries get the
//	                       byte-identical cached envelope)
//	POST /v1/handoff/confirm mark handed off and quarantine the WAL after
//	                       the receiver's durable ack
//	POST /v1/witness       witness-copy store (see witness.go)
//	GET  /healthz          liveness (200 while the process serves)
//	GET  /readyz           readiness (503 when draining, breaker open, or WAL stalled/wedged)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"profileme/internal/core"
	"profileme/internal/ingest"
	"profileme/internal/profile"
)

// Config parameterizes the HTTP layer. Zero values get usable defaults.
type Config struct {
	// Instance is this collector's tier identity ("c0"); it prefixes
	// every log line (so interleaved tier soak output stays
	// attributable) and rides in /v1/stats.
	Instance string
	// MaxBodyBytes bounds a submission body (default 8 MiB); larger
	// bodies get 413 before the decoder sees them.
	MaxBodyBytes int64
	// MaxHandoffBytes bounds a drain-handoff body (default 8×
	// MaxBodyBytes): a donor ships its whole aggregate, not one shard.
	MaxHandoffBytes int64
	// QueryDeadline bounds each query's handling time (default 2s).
	QueryDeadline time.Duration
	// MaxQueries is the query concurrency high-water mark (default 32):
	// queries beyond it are shed with 503 instead of queueing behind a
	// saturated aggregate lock.
	MaxQueries int
	// RetryAfter is the hint returned with 429/503 (default 1s).
	RetryAfter time.Duration
	// Log receives request-level degradation lines (nil = silent).
	// Writes go through the server's own mutex, one whole line at a
	// time; share one ingest.SyncWriter with the service when both log
	// to the same stream.
	Log io.Writer
	// Capture, when set, receives every structurally valid submission
	// (shard id + verbatim body) before admission — offered load, not
	// accepted load, which is what a traffic replay needs to reproduce.
	// The hook runs on the request path; it must be fast and must not
	// panic (traffic.CaptureWriter satisfies both).
	Capture func(shard string, body []byte)
}

func (c *Config) normalize() {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxHandoffBytes == 0 {
		c.MaxHandoffBytes = 8 * c.MaxBodyBytes
	}
	if c.QueryDeadline == 0 {
		c.QueryDeadline = 2 * time.Second
	}
	if c.MaxQueries == 0 {
		c.MaxQueries = 32
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
}

// Server wires the ingest service to HTTP handlers.
type Server struct {
	cfg     Config
	svc     *ingest.Service
	witness *WitnessStore

	logMu sync.Mutex

	// exportMu guards the cached handoff-export envelope. The cache is
	// what makes export idempotent at the BYTE level: the receiver's
	// envelope dedupe keys on a content digest, so a router retrying a
	// lost export response must get the identical serialization back,
	// not a fresh (differently-ordered, differently-keyed) encode.
	exportMu   sync.Mutex
	exportBody []byte

	inFlight     atomic.Int64 // queries currently being served
	queriesShed  atomic.Uint64
	queriesTotal atomic.Uint64
	submits      atomic.Uint64
	handoffs     atomic.Uint64
}

// New builds a Server over an ingest service.
func New(cfg Config, svc *ingest.Service) *Server {
	cfg.normalize()
	return &Server{cfg: cfg, svc: svc, witness: NewWitnessStore(0)}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/handoff", s.handleHandoff)
	mux.HandleFunc("/v1/handoff/export", s.handleHandoffExport)
	mux.HandleFunc("/v1/handoff/confirm", s.handleHandoffConfirm)
	mux.HandleFunc("/v1/ledger/adopt", s.handleLedgerAdopt)
	mux.HandleFunc("/v1/hotpcs", s.query(s.handleHotPCs))
	mux.HandleFunc("/v1/estimate", s.query(s.handleEstimate))
	mux.HandleFunc("/v1/report", s.query(s.handleReport))
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/ledger", s.handleLedger)
	mux.HandleFunc("/v1/witness", s.handleWitnessPut)
	mux.HandleFunc("/v1/witness/ledger", s.handleWitnessLedger)
	mux.HandleFunc("/v1/witness/fetch", s.handleWitnessFetch)
	mux.HandleFunc("/v1/witness/prune", s.handleWitnessPrune)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// apiError is the JSON error body; every non-2xx response carries one.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, status int, kind, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
	}
	writeJSON(w, status, apiError{Error: msg, Kind: kind})
}

// readBounded reads a request body up to max bytes. On failure it writes
// the error response itself (413 oversized, 400 otherwise) and returns a
// non-nil error so the handler can just return.
func (s *Server) readBounded(w http.ResponseWriter, r *http.Request, max int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, max))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, http.StatusRequestEntityTooLarge, "oversized",
				fmt.Sprintf("request body exceeds %d bytes", max))
			return nil, err
		}
		s.writeErr(w, http.StatusBadRequest, "body", err.Error())
		return nil, err
	}
	return body, nil
}

// handleSubmit is the ingest edge. Every failure is typed and
// deliberate: 413 oversized, 400 damaged envelope/payload, 409
// unmergeable configuration, 429 queue full (backpressure), 503
// draining. A 429/503 response means the shard's samples were recorded
// as aggregate loss — the client may drop the shard without lying to
// the estimators, or retry: an accepted retry reverses the recorded
// loss, so neither path double-counts. Submission is idempotent per
// shard id — a resubmission of a queued/merged shard (a retry after a
// lost response) gets 202 with "duplicate": true and is not re-merged.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only")
		return
	}
	s.submits.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, http.StatusRequestEntityTooLarge, "oversized",
				fmt.Sprintf("submission body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		s.writeErr(w, http.StatusBadRequest, "body", err.Error())
		return
	}
	sub, err := ingest.DecodeSubmit(body)
	if err != nil {
		kind := "malformed"
		switch {
		case errors.Is(err, profile.ErrCorrupt):
			kind = "corrupt"
		case errors.Is(err, profile.ErrTruncated):
			kind = "truncated"
		case errors.Is(err, profile.ErrVersionSkew):
			kind = "version-skew"
		}
		s.writeErr(w, http.StatusBadRequest, kind, err.Error())
		return
	}
	if s.cfg.Capture != nil {
		s.cfg.Capture(sub.Shard, body)
	}
	captured := sub.Captured()
	switch err := s.svc.Submit(sub); {
	case errors.Is(err, ingest.ErrQueueFull):
		s.logf("429 shard %s: queue full (%d captured samples accounted as loss)", sub.Shard, captured)
		s.writeErr(w, http.StatusTooManyRequests, "queue-full", err.Error())
	case errors.Is(err, ingest.ErrDraining):
		s.logf("503 shard %s: draining (%d captured samples accounted as loss)", sub.Shard, captured)
		s.writeErr(w, http.StatusServiceUnavailable, "draining", err.Error())
	case errors.Is(err, ingest.ErrConfigMismatch):
		s.writeErr(w, http.StatusConflict, "config-mismatch", err.Error())
	case errors.Is(err, ingest.ErrWAL):
		// The durability log could not make the 202 promise; refusing is
		// honest — the client retries against an instance whose WAL works.
		s.logf("503 shard %s: WAL append failed (%v)", sub.Shard, err)
		s.writeErr(w, http.StatusServiceUnavailable, "wal", err.Error())
	case errors.Is(err, ingest.ErrDuplicate):
		// The shard is already in the pipeline; acknowledge so the client
		// stops retrying, and say it was a duplicate for observability.
		writeJSON(w, http.StatusAccepted, map[string]any{
			"shard":       sub.Shard,
			"duplicate":   true,
			"captured":    captured,
			"queue_depth": s.svc.QueueDepth(),
		})
	case err != nil:
		s.writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		// "captured" (Samples+Lost) is the shard's weight in the fleet
		// conservation sum; the router copies it into the witness ledger.
		writeJSON(w, http.StatusAccepted, map[string]any{
			"shard":       sub.Shard,
			"samples":     sub.DB.Samples(),
			"captured":    captured,
			"queue_depth": s.svc.QueueDepth(),
		})
	}
}

// handleHandoff is the drain-handoff edge: a draining peer ships its
// whole aggregate (CRC envelope) plus its admission ledger, and this
// instance inherits both, so a rolling restart loses zero accumulated
// samples and retries of the donor's shards keep deduping here. The
// refusal taxonomy mirrors submission: 400 damaged, 409 unmergeable
// configuration, 503 when this instance is itself draining or already
// handed off (the donor walks on to the next ring successor).
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only")
		return
	}
	s.handoffs.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxHandoffBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, http.StatusRequestEntityTooLarge, "oversized",
				fmt.Sprintf("handoff body exceeds %d bytes", s.cfg.MaxHandoffBytes))
			return
		}
		s.writeErr(w, http.StatusBadRequest, "body", err.Error())
		return
	}
	h, err := ingest.DecodeHandoff(body)
	if err != nil {
		kind := "malformed"
		switch {
		case errors.Is(err, profile.ErrCorrupt):
			kind = "corrupt"
		case errors.Is(err, profile.ErrTruncated):
			kind = "truncated"
		case errors.Is(err, profile.ErrVersionSkew):
			kind = "version-skew"
		}
		s.writeErr(w, http.StatusBadRequest, kind, err.Error())
		return
	}
	switch captured, err := s.svc.AcceptHandoff(h); {
	case errors.Is(err, ingest.ErrDraining), errors.Is(err, ingest.ErrHandedOff):
		s.logf("503 handoff from %s: this instance is retiring too (%v)", h.From, err)
		s.writeErr(w, http.StatusServiceUnavailable, "draining", err.Error())
	case errors.Is(err, ingest.ErrWAL):
		s.logf("503 handoff from %s: WAL append failed (%v)", h.From, err)
		s.writeErr(w, http.StatusServiceUnavailable, "wal", err.Error())
	case errors.Is(err, ingest.ErrConfigMismatch):
		s.writeErr(w, http.StatusConflict, "config-mismatch", err.Error())
	case errors.Is(err, ingest.ErrDuplicate):
		// Byte-identical redelivery (sender retried after a lost ack):
		// acknowledge with the captured count the original merge reported,
		// exactly like a duplicate shard submission — the sender's retry
		// loop treats 202 as done either way.
		s.logf("handoff from %s deduped: envelope already applied (%d captured)", h.From, captured)
		writeJSON(w, http.StatusAccepted, map[string]any{
			"from":      h.From,
			"captured":  captured,
			"shards":    len(h.Shards),
			"duplicate": true,
		})
	case err != nil:
		s.writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		s.logf("handoff from %s accepted: %d captured samples, %d ledger shards", h.From, captured, len(h.Shards))
		writeJSON(w, http.StatusAccepted, map[string]any{
			"from":     h.From,
			"captured": captured,
			"shards":   len(h.Shards),
		})
	}
}

// handleHandoffExport is the scale-in donor's side of a migration: seal
// admission (refusals stop recording loss — the envelope must be the
// final word on this instance's books), flush the queued backlog through
// the aggregator, and serialize aggregate + admission ledger as a
// handoff envelope. The serialized bytes are cached so a retry after a
// lost response returns the IDENTICAL envelope — the receiver dedupes
// redeliveries by content digest, which only byte-equal bodies share.
// Sealing is one-way; an aborted removal restarts the donor process to
// resume admission (the runbook's rollback path).
func (s *Server) handleHandoffExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only")
		return
	}
	s.exportMu.Lock()
	defer s.exportMu.Unlock()
	if s.exportBody == nil {
		s.svc.Seal()
		if err := s.svc.Flush(r.Context()); err != nil {
			// Seal stands (one-way), but nothing was cached: a retry
			// re-flushes whatever remains and exports then.
			s.logf("503 handoff export: flush: %v", err)
			s.writeErr(w, http.StatusServiceUnavailable, "flush", err.Error())
			return
		}
		body, err := ingest.EncodeHandoff(s.cfg.Instance, s.svc.Aggregate().Save, s.svc.AdmittedShards())
		if err != nil {
			s.writeErr(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		s.exportBody = body
		s.logf("handoff export sealed: %d bytes, %d samples (+%d lost)",
			len(body), s.svc.Aggregate().Samples(), s.svc.Aggregate().Lost())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(s.exportBody)
}

// handleHandoffConfirm completes a scale-in migration after the receiver
// durably acked the exported envelope: mark handed off (submissions and
// further handoffs refuse) and quarantine the WAL directory — a restart
// that replayed it would double-count the migrated samples, which now
// live at the receiver. Idempotent: a confirm retry after a lost
// response answers 200 without re-quarantining.
func (s *Server) handleHandoffConfirm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only")
		return
	}
	s.exportMu.Lock()
	defer s.exportMu.Unlock()
	if s.exportBody == nil {
		s.writeErr(w, http.StatusConflict, "not-exported",
			"nothing to confirm: no handoff export was taken from this instance")
		return
	}
	if !s.svc.HandedOff() {
		s.svc.MarkHandedOff()
		if err := s.svc.QuarantineWALDir(".handedoff"); err != nil {
			// Handed-off already stands (refusing new work is correct either
			// way); the un-quarantined WAL is the operator's cleanup, flagged
			// loudly because a restart over it would double-count.
			s.logf("handoff confirm: WAL quarantine failed: %v (do NOT restart over this WAL dir)", err)
			writeJSON(w, http.StatusOK, map[string]any{
				"instance": s.cfg.Instance, "handed_off": true, "wal_quarantined": false,
			})
			return
		}
		s.logf("handoff confirmed: WAL quarantined, instance retired")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"instance": s.cfg.Instance, "handed_off": true, "wal_quarantined": true,
	})
}

// adoptRequest is the /v1/ledger/adopt body: shard ids whose ring
// ownership moved here, with the donor they were admitted at.
type adoptRequest struct {
	From   string   `json:"from"`
	Shards []string `json:"shards"`
}

// handleLedgerAdopt takes over dedupe obligations during a membership
// change: the named shards join the admitted ledger (WAL-durably) so
// client retries of already-merged shards answer 202+duplicate here
// instead of double-merging. Pure ledger — no samples move.
func (s *Server) handleLedgerAdopt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only")
		return
	}
	body, err := s.readBounded(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		return
	}
	var req adoptRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeErr(w, http.StatusBadRequest, "malformed", err.Error())
		return
	}
	if req.From == "" || len(req.Shards) == 0 {
		s.writeErr(w, http.StatusBadRequest, "malformed", "adopt needs a donor instance and at least one shard id")
		return
	}
	switch adopted, err := s.svc.AdoptShards(req.From, req.Shards); {
	case errors.Is(err, ingest.ErrDraining), errors.Is(err, ingest.ErrHandedOff):
		s.writeErr(w, http.StatusServiceUnavailable, "draining", err.Error())
	case errors.Is(err, ingest.ErrWAL):
		s.logf("503 ledger adopt from %s: WAL append failed (%v)", req.From, err)
		s.writeErr(w, http.StatusServiceUnavailable, "wal", err.Error())
	case err != nil:
		s.writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		s.logf("adopted %d/%d shard ids from %s", adopted, len(req.Shards), req.From)
		writeJSON(w, http.StatusOK, map[string]any{
			"instance": s.cfg.Instance,
			"from":     req.From,
			"adopted":  adopted,
			"total":    len(req.Shards),
		})
	}
}

// query wraps a read handler with the overload controls: shed above the
// concurrency high-water mark, then run under a per-request deadline.
func (s *Server) query(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.queriesTotal.Add(1)
		if n := s.inFlight.Add(1); n > int64(s.cfg.MaxQueries) {
			s.inFlight.Add(-1)
			s.queriesShed.Add(1)
			s.writeErr(w, http.StatusServiceUnavailable, "overloaded",
				fmt.Sprintf("query concurrency above high-water mark (%d in flight)", s.cfg.MaxQueries))
			return
		}
		defer s.inFlight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryDeadline)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// deadlineExpired replies 504 when the per-request deadline fired before
// (or while) the handler ran, and reports whether it did.
func (s *Server) deadlineExpired(w http.ResponseWriter, r *http.Request) bool {
	select {
	case <-r.Context().Done():
		s.writeErr(w, http.StatusGatewayTimeout, "deadline",
			fmt.Sprintf("query deadline %v exceeded", s.cfg.QueryDeadline))
		return true
	default:
		return false
	}
}

// hotPC is one row of the /v1/hotpcs response. On the sketch path,
// Samples is exact as of the view epoch and MaxErr bounds the sketch's
// possible overcount for ordering/membership (0 = this row is exact);
// on the windowed path Samples is itself the sketch estimate.
type hotPC struct {
	PC             string  `json:"pc"`
	Samples        uint64  `json:"samples"`
	MaxErr         uint64  `json:"max_err,omitempty"`
	EstCount       float64 `json:"est_count"`
	RetiredPct     float64 `json:"retired_pct"`
	DCacheMissPct  float64 `json:"dcache_miss_pct"`
	MispredictPct  float64 `json:"mispredict_pct"`
	MeanInProgress float64 `json:"mean_inprogress_cycles"`
}

func accRow(a *profile.PCAccum, estCount float64) hotPC {
	row := hotPC{
		PC:            fmt.Sprintf("%#x", a.PC),
		Samples:       a.Samples,
		EstCount:      estCount,
		RetiredPct:    100 * profile.RateEstimate(a.Retired(), a.Samples),
		DCacheMissPct: 100 * profile.RateEstimate(a.EventCount(core.EvDCacheMiss), a.Samples),
		MispredictPct: 100 * profile.RateEstimate(a.EventCount(core.EvMispredict), a.Samples),
	}
	if a.InProgressCount > 0 {
		row.MeanInProgress = float64(a.InProgressSum) / float64(a.InProgressCount)
	}
	return row
}

// handleHotPCs serves the top-N hot PCs three ways:
//
//   - default: O(n) from the aggregate's published sketch view — no
//     lock, "approx": true, with "error_bound" (the sketch floor: the
//     maximum true count of any PC NOT listed) and per-row "max_err"
//     (the row estimate's maximum overcount; 0 whenever the aggregate
//     has fewer distinct PCs than the sketch capacity, in which case
//     the answer equals the exact one)
//   - ?window=30s: O(K) from the time-bucketed ring — only samples
//     merged in the last 30s count; always approximate
//   - ?sketch=false: the exact deep-copy path under the read lock —
//     O(DB), contends with the merge loop; "approx": false
func (s *Server) handleHotPCs(w http.ResponseWriter, r *http.Request) {
	n, err := intQueryParam(r, "n", 10, 1, 1000)
	if err != nil {
		s.writeParamErr(w, err)
		return
	}
	sketch, err := boolQueryParam(r, "sketch", true)
	if err != nil {
		s.writeParamErr(w, err)
		return
	}
	window, err := durationQueryParam(r, "window")
	if err != nil {
		s.writeParamErr(w, err)
		return
	}
	if window > 0 && !sketch {
		s.writeParamErr(w, &paramError{"window", "windowed answers are sketch-only; drop sketch=false"})
		return
	}
	if s.deadlineExpired(w, r) {
		return
	}
	agg := s.svc.Aggregate()

	if window > 0 {
		res := agg.WindowHotPCs(window, n)
		v := agg.View()
		rows := make([]hotPC, 0, len(res.Rows))
		for _, e := range res.Rows {
			rows = append(rows, hotPC{
				PC:       fmt.Sprintf("%#x", e.PC),
				Samples:  e.Count,
				MaxErr:   e.Err,
				EstCount: float64(e.Count) * v.S * v.LossCorr,
			})
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"samples":        v.Counters.Samples,
			"lost":           v.Counters.Lost,
			"loss_rate":      v.Counters.LossRate,
			"pcs":            rows,
			"approx":         true,
			"error_bound":    res.Floor,
			"window_ms":      res.Window.Milliseconds(),
			"window_clamped": res.Clamped,
			"window_buckets": res.Buckets,
			"window_samples": res.Samples,
		})
		return
	}

	if sketch {
		v := agg.View()
		topk := v.TopK
		if len(topk) > n {
			topk = topk[:n]
		}
		rows := make([]hotPC, 0, len(topk))
		for i := range topk {
			hv := &topk[i]
			row := accRow(&hv.Acc, float64(hv.Acc.Samples)*v.S*v.LossCorr)
			row.MaxErr = hv.MaxErr
			rows = append(rows, row)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"samples":     v.Counters.Samples,
			"lost":        v.Counters.Lost,
			"loss_rate":   v.Counters.LossRate,
			"pcs":         rows,
			"approx":      true,
			"error_bound": v.Floor,
			"epoch":       v.Epoch,
		})
		return
	}

	accs := agg.HotPCsExact(n)
	rows := make([]hotPC, 0, len(accs))
	for i := range accs {
		rows = append(rows, accRow(&accs[i], agg.EstimatedCount(accs[i].PC)))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"samples":   agg.Samples(),
		"lost":      agg.Lost(),
		"loss_rate": agg.LossRate(),
		"pcs":       rows,
		"approx":    false,
	})
}

// eventByName maps wire names ("dcache-miss") to event bits, built from
// the core package's own Stringer so the two can't drift.
var eventByName = func() map[string]core.Event {
	m := make(map[string]core.Event)
	for ev := core.Event(1); ev != 0 && ev <= core.KnownEvents; ev <<= 1 {
		m[ev.String()] = ev
	}
	return m
}()

// handleEstimate serves the per-PC rollup. By default it answers from
// the published sketch view when the PC is among the tracked top-K — a
// lock-free read, marked "approx": true with the row's "max_err" — and
// falls back to the exact read-locked path for colder PCs (or always,
// with ?sketch=false), marked "approx": false.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	pcStr := r.URL.Query().Get("pc")
	if pcStr == "" {
		s.writeParamErr(w, &paramError{"pc", "required (hex like 0x4a0 or decimal)"})
		return
	}
	pc, err := strconv.ParseUint(pcStr, 0, 64)
	if err != nil {
		s.writeParamErr(w, &paramError{"pc", fmt.Sprintf("%q is not an address (hex like 0x4a0 or decimal)", pcStr)})
		return
	}
	sketch, err := boolQueryParam(r, "sketch", true)
	if err != nil {
		s.writeParamErr(w, err)
		return
	}
	evName := r.URL.Query().Get("event")
	var queryEv core.Event
	if evName != "" {
		ev, known := eventByName[evName]
		if !known {
			s.writeParamErr(w, &paramError{"event", fmt.Sprintf("unknown event %q", evName)})
			return
		}
		queryEv = ev
	}
	if s.deadlineExpired(w, r) {
		return
	}
	agg := s.svc.Aggregate()
	var (
		acc      profile.PCAccum
		ok       bool
		approx   bool
		maxErr   uint64
		estimed  float64
		estEvent func(ev core.Event) float64
	)
	if sketch {
		v := agg.View()
		if hv := v.Get(pc); hv != nil {
			acc, ok, approx, maxErr = hv.Acc, true, true, hv.MaxErr
			estimed = float64(acc.Samples) * v.S * v.LossCorr
			a := hv.Acc // capture the epoch copy, not the loop state
			estEvent = func(ev core.Event) float64 {
				return float64(a.EventCount(ev)) * v.S * v.LossCorr
			}
		}
	}
	if !ok {
		acc, ok = agg.Get(pc)
		estimed = agg.EstimatedCount(pc)
		estEvent = func(ev core.Event) float64 { return agg.EstimatedEventCount(pc, ev) }
	}
	if !ok {
		s.writeErr(w, http.StatusNotFound, "unknown-pc", fmt.Sprintf("pc %#x has no samples", pc))
		return
	}
	resp := map[string]any{
		"pc":        fmt.Sprintf("%#x", pc),
		"samples":   acc.Samples,
		"est_count": estimed,
		"approx":    approx,
	}
	if approx {
		resp["max_err"] = maxErr
	}
	if evName != "" {
		resp["event"] = evName
		resp["est_event_count"] = estEvent(queryEv)
		resp["event_rate"] = profile.RateEstimate(acc.EventCount(queryEv), acc.Samples)
	} else {
		events := make(map[string]float64)
		for name, ev := range eventByName {
			if c := acc.EventCount(ev); c > 0 {
				events[name] = estEvent(ev)
			}
		}
		resp["est_event_counts"] = events
	}
	lats := make(map[string]float64)
	for i := 0; i < profile.NumLatencyKinds; i++ {
		if acc.LatCount[i] > 0 {
			lats[profile.LatencyKindName(i)] = acc.MeanLatency(i)
		}
	}
	resp["mean_latencies"] = lats
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	n, err := intQueryParam(r, "n", 15, 1, 1000)
	if err != nil {
		s.writeParamErr(w, err)
		return
	}
	if s.deadlineExpired(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, s.svc.Aggregate().Report(nil, n))
}

// serverStats augments the ingest stats with HTTP-layer counters.
type serverStats struct {
	ingest.Stats
	Instance        string       `json:"instance,omitempty"`
	Submissions     uint64       `json:"submissions"`
	HandoffRequests uint64       `json:"handoff_requests"`
	Queries         uint64       `json:"queries"`
	QueriesShed     uint64       `json:"queries_shed"`
	InFlight        int64        `json:"queries_in_flight"`
	Witness         WitnessStats `json:"witness"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, serverStats{
		Stats:           s.svc.Stats(),
		Instance:        s.cfg.Instance,
		Submissions:     s.submits.Load(),
		HandoffRequests: s.handoffs.Load(),
		Queries:         s.queriesTotal.Load(),
		QueriesShed:     s.queriesShed.Load(),
		InFlight:        s.inFlight.Load(),
		Witness:         s.witness.Stats(),
	})
}

// handleLedger publishes the admission ledger: the distinct shard ids
// this instance has admitted (queued or merged). Anti-entropy compares a
// peer's witness ledger against this to find submissions the instance
// lost with its disk ("shards" is that contract — do not rename it).
// The disposition sections let a membership change classify each id:
// "applied" (samples resolved here), "refused" (standing loss), and
// "adopted_from" (dedupe-only ids whose samples live at the named
// donor or arrived with its handoff).
func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	shards := s.svc.AdmittedShards()
	writeJSON(w, http.StatusOK, map[string]any{
		"instance":     s.cfg.Instance,
		"shards":       shards,
		"count":        len(shards),
		"applied":      s.svc.AppliedShards(),
		"refused":      s.svc.RefusedLosses(),
		"adopted_from": s.svc.AdoptedFrom(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleReadyz flips to 503 the moment a drain begins or the persistence
// breaker opens — load balancers stop routing new work while in-flight
// requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.svc.Draining():
		s.writeErr(w, http.StatusServiceUnavailable, "draining", "shutting down: submissions refused, queue flushing")
	case s.svc.Breaker().State() == ingest.BreakerOpen:
		s.writeErr(w, http.StatusServiceUnavailable, "breaker-open", "checkpoint persistence suspended")
	case s.svc.WALWedged():
		// A write or fsync failure wedged the durability log: every
		// submission 503s until a restart replays what survived. Routers
		// treat this like draining and steer submissions away.
		s.writeErr(w, http.StatusServiceUnavailable, "wal-failed", "WAL wedged by a write/fsync failure; restart required")
	case s.svc.WALStalled():
		// The durability log has records waiting on fsync for longer than
		// the stall threshold — every 202 would block on a sick disk.
		// Routers treat this like draining and steer submissions away.
		s.writeErr(w, http.StatusServiceUnavailable, "wal-stalled", "WAL fsync is not keeping up; submissions would stall")
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "queue_depth": s.svc.QueueDepth()})
	}
}

// logf writes one whole degradation line under the server's log mutex,
// tagged with the instance id: tier soaks run several instances against
// one stderr, and untagged, interleaved fragments are unattributable.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	prefix := "server: "
	if s.cfg.Instance != "" {
		prefix = "server[" + s.cfg.Instance + "]: "
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.cfg.Log, prefix+format+"\n", args...)
}
