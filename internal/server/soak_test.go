package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/ingest"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

// The overload soak is the acceptance test for the service's degradation
// contract, the paper's §6 argument lifted to a distributed collector:
// flooding ingest beyond queue capacity may lose shards, but every loss
// is accounted (conservation is EXACT, not approximate), the
// loss-corrected hot-PC ranking survives, and a drain in the middle of
// the flood still ends in a CRC-valid checkpoint.

const (
	soakShards   = 20
	soakScale    = 60_000
	soakInterval = 16
)

// soakShardDB runs one real simulated shard — same wiring as the fleet's
// simulate() — with a shard-specific sampling seed.
func soakShardDB(t *testing.T, seed uint64) *profile.DB {
	t.Helper()
	b, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("no compress benchmark")
	}
	prog := b.Build(soakScale)
	ccfg := cpu.DefaultConfig()
	unit, err := core.NewUnit(core.Config{
		MeanInterval: soakInterval,
		BufferDepth:  8,
		CountMode:    core.CountInstructions,
		IntervalMode: core.IntervalGeometric,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := profile.NewDB(soakInterval, 0, ccfg.SustainedIssueWidth)
	pipe, err := cpu.New(prog, sim.NewMachineSource(sim.New(prog), 0), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe.AttachProfileMe(unit, db.Handler())
	if _, err := pipe.Run(0); err != nil {
		t.Fatalf("shard sim (seed %d): %v", seed, err)
	}
	st := unit.Stats()
	db.RecordLoss(st.SamplesDropped + st.SamplesOverwritten)
	return db
}

func topPCs(db *profile.SafeDB, n int) []uint64 {
	var pcs []uint64
	for _, a := range db.HotPCs(n) {
		pcs = append(pcs, a.PC)
	}
	return pcs
}

func overlap(a, b []uint64) int {
	set := make(map[uint64]bool, len(a))
	for _, pc := range a {
		set[pc] = true
	}
	n := 0
	for _, pc := range b {
		if set[pc] {
			n++
		}
	}
	return n
}

func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: real shard simulations")
	}

	// Real shards, differing only by sampling seed — the independent
	// sampled runs the paper's aggregation argument assumes.
	shards := make([]*profile.DB, soakShards)
	for i := range shards {
		shards[i] = soakShardDB(t, uint64(i)+1)
	}

	// Unloaded baseline: every shard merged, nothing lost to overload.
	baseline := profile.NewDB(soakInterval, 0, cpu.DefaultConfig().SustainedIssueWidth)
	for i, sh := range shards {
		if err := baseline.Merge(sh); err != nil {
			t.Fatalf("baseline merge %d: %v", i, err)
		}
	}
	baselineTop := topPCs(profile.NewSafeDB(baseline), 10)
	if len(baselineTop) < 10 {
		t.Fatalf("baseline has only %d hot PCs", len(baselineTop))
	}

	ckptPath := filepath.Join(t.TempDir(), "agg.db")
	svc, err := ingest.NewService(ingest.Config{
		QueueDepth:     4, // wave 1 floods at 4x this
		Interval:       soakInterval,
		Width:          cpu.DefaultConfig().SustainedIssueWidth,
		CheckpointPath: ckptPath,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{}, svc).Handler())
	defer ts.Close()

	// Per-shard final outcome: the conservation invariant ranges over
	// DISTINCT shards (clients retry, the service dedupes and reverses),
	// while refusal responses are counted per attempt.
	var mu sync.Mutex
	shardAccepted := make([]bool, soakShards)
	shardRefused := make([]bool, soakShards) // refused at least once
	var refusedResponses int
	submit := func(i int) int {
		body, err := ingest.EncodeSubmit(fmt.Sprintf("compress/s%03d", i), shards[i])
		if err != nil {
			t.Error(err)
			return 0
		}
		resp, err := http.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("submit %d: %v", i, err)
			return 0
		}
		resp.Body.Close()
		mu.Lock()
		defer mu.Unlock()
		switch resp.StatusCode {
		case http.StatusAccepted:
			shardAccepted[i] = true
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			shardRefused[i] = true
			refusedResponses++
		default:
			t.Errorf("submit %d: unexpected status %d", i, resp.StatusCode)
		}
		return resp.StatusCode
	}
	captured := func(i int) uint64 { return shards[i].Samples() + shards[i].Lost() }

	// Wave 1: 16 concurrent submissions against a 4-deep queue with the
	// aggregator deliberately held — a 4x flood with a deterministic
	// outcome: exactly queue-capacity accepted, the rest 429'd.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); submit(i) }(i)
	}
	// The daemon must keep answering queries mid-flood.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			resp, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				t.Errorf("stats mid-flood: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("stats mid-flood: status %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()
	wave1Accepted := 0
	for i := 0; i < 16; i++ {
		if shardAccepted[i] {
			wave1Accepted++
		}
	}
	if wave1Accepted != 4 || refusedResponses != 12 {
		t.Fatalf("wave 1: accepted %d refused %d, want 4/12", wave1Accepted, refusedResponses)
	}

	// Retry phase: the aggregator starts draining the queue and every
	// 429'd shard retries until accepted — the sink taxonomy's transient
	// path. Each success must REVERSE the loss recorded at refusal, or
	// the same samples end up counted as both merged and lost (the
	// double-count the conservation check below would catch).
	svc.Start()
	for i := 0; i < 16; i++ {
		if shardAccepted[i] {
			continue
		}
		deadline := time.Now().Add(30 * time.Second)
		for !shardAccepted[i] {
			if status := submit(i); status == http.StatusAccepted {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d never accepted on retry", i)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Idempotency probe: resubmit an already-merged shard — the retry a
	// client issues when a 202 response is lost in transit. It must be
	// acknowledged as a duplicate, not merged a second time.
	{
		body, err := ingest.EncodeSubmit("compress/s000", shards[0])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("duplicate resubmission: status %d, want 202", resp.StatusCode)
		}
	}

	// Wave 2: drain begins while submissions are still arriving — the
	// daemon's SIGTERM sequence (stop admitting, let HTTP settle, flush,
	// final checkpoint). Each late shard is either admitted (and then
	// flushed by the drain) or refused-with-accounting; no third outcome
	// exists. These refusals are NOT retried: their loss stays.
	for i := 16; i < soakShards; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); submit(i) }(i)
	}
	time.Sleep(time.Millisecond)
	svc.BeginDrain()
	wg.Wait() // in-flight HTTP settles (httpSrv.Shutdown in the daemon)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain mid-flood: %v", err)
	}

	// Tally final outcomes: every one of the 20 distinct shards was
	// submitted at least once, so conservation ranges over all of them.
	var capturedAll, capturedLost, reversedWant uint64
	mergedShards := 0
	for i := 0; i < soakShards; i++ {
		capturedAll += captured(i)
		switch {
		case shardAccepted[i]:
			mergedShards++
			if shardRefused[i] {
				// Refused then accepted on retry: its refusal loss must
				// have been reversed.
				reversedWant += captured(i)
			}
		default:
			capturedLost += captured(i)
		}
	}

	// Conservation must be exact over distinct shards: every captured
	// sample is in the aggregate or in its loss ledger, never both —
	// retried-to-success shards count once (loss reversed), duplicates
	// count once (deduped).
	agg := svc.Aggregate()
	if got := agg.Samples() + agg.Lost(); got != capturedAll {
		t.Fatalf("conservation violated: aggregate %d + lost = %d, distinct shards captured %d",
			agg.Samples(), got, capturedAll)
	}
	st := svc.Stats()
	if st.MergeFailed != 0 {
		t.Fatalf("%d accepted submissions failed to merge", st.MergeFailed)
	}
	if int(st.OverloadRejected+st.OverloadDropped) != refusedResponses {
		t.Fatalf("refusal ledger %d+%d, HTTP refusals %d",
			st.OverloadRejected, st.OverloadDropped, refusedResponses)
	}
	if int(st.Merged) != mergedShards {
		t.Fatalf("merged %d, accepted shards %d", st.Merged, mergedShards)
	}
	if st.SamplesLost != capturedLost || agg.Lost() != capturedLost {
		t.Fatalf("loss ledger %d (stats %d), finally-refused shards captured %d",
			agg.Lost(), st.SamplesLost, capturedLost)
	}
	if st.LossReversed != reversedWant {
		t.Fatalf("loss reversed %d, retried-to-success shards captured %d", st.LossReversed, reversedWant)
	}
	if st.Duplicates < 1 {
		t.Fatal("duplicate resubmission was not deduped")
	}

	// The ranking survives losing most of the fleet to overload: the
	// degraded aggregate's top 10 matches the unloaded baseline's (same
	// bar as the PR 1 chaos soak).
	if got := overlap(baselineTop, topPCs(agg, 10)); got < 8 {
		t.Fatalf("top-10 overlap %d/10 after overload, want >= 8", got)
	}

	// The mid-flood drain ended in a CRC-valid checkpoint carrying the
	// full accounting.
	loaded, err := profile.LoadFile(ckptPath)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if loaded.Samples() != agg.Samples() || loaded.Lost() != agg.Lost() {
		t.Fatalf("checkpoint totals %d/%d, aggregate %d/%d",
			loaded.Samples(), loaded.Lost(), agg.Samples(), agg.Lost())
	}

	// And the loss-corrected estimator still centres: total estimated
	// retires from the degraded aggregate match the baseline's within the
	// usual sampling tolerance.
	var estDegraded, estBaseline float64
	for _, pc := range baselineTop {
		estDegraded += agg.EstimatedEventCount(pc, core.EvRetired)
		estBaseline += baseline.EstimatedEventCount(pc, core.EvRetired)
	}
	if rel := (estDegraded - estBaseline) / estBaseline; rel < -0.15 || rel > 0.15 {
		t.Fatalf("hot-set retire estimate drifted %.1f%% under overload", 100*rel)
	}

	// The soak's denominator proves the flood was a flood: wave 1 alone
	// must have produced 3 refusals for every admitted shard.
	if refusedResponses < 3*wave1Accepted {
		t.Fatalf("flood too gentle: %d refusal responses vs %d wave-1 acceptances",
			refusedResponses, wave1Accepted)
	}
}
