package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/ingest"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

// The overload soak is the acceptance test for the service's degradation
// contract, the paper's §6 argument lifted to a distributed collector:
// flooding ingest beyond queue capacity may lose shards, but every loss
// is accounted (conservation is EXACT, not approximate), the
// loss-corrected hot-PC ranking survives, and a drain in the middle of
// the flood still ends in a CRC-valid checkpoint.

const (
	soakShards   = 20
	soakScale    = 60_000
	soakInterval = 16
)

// soakShardDB runs one real simulated shard — same wiring as the fleet's
// simulate() — with a shard-specific sampling seed.
func soakShardDB(t *testing.T, seed uint64) *profile.DB {
	t.Helper()
	b, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("no compress benchmark")
	}
	prog := b.Build(soakScale)
	ccfg := cpu.DefaultConfig()
	unit, err := core.NewUnit(core.Config{
		MeanInterval: soakInterval,
		BufferDepth:  8,
		CountMode:    core.CountInstructions,
		IntervalMode: core.IntervalGeometric,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := profile.NewDB(soakInterval, 0, ccfg.SustainedIssueWidth)
	pipe, err := cpu.New(prog, sim.NewMachineSource(sim.New(prog), 0), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe.AttachProfileMe(unit, db.Handler())
	if _, err := pipe.Run(0); err != nil {
		t.Fatalf("shard sim (seed %d): %v", seed, err)
	}
	st := unit.Stats()
	db.RecordLoss(st.SamplesDropped + st.SamplesOverwritten)
	return db
}

func topPCs(db *profile.SafeDB, n int) []uint64 {
	var pcs []uint64
	for _, a := range db.HotPCs(n) {
		pcs = append(pcs, a.PC)
	}
	return pcs
}

func overlap(a, b []uint64) int {
	set := make(map[uint64]bool, len(a))
	for _, pc := range a {
		set[pc] = true
	}
	n := 0
	for _, pc := range b {
		if set[pc] {
			n++
		}
	}
	return n
}

func TestOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: real shard simulations")
	}

	// Real shards, differing only by sampling seed — the independent
	// sampled runs the paper's aggregation argument assumes.
	shards := make([]*profile.DB, soakShards)
	for i := range shards {
		shards[i] = soakShardDB(t, uint64(i)+1)
	}

	// Unloaded baseline: every shard merged, nothing lost to overload.
	baseline := profile.NewDB(soakInterval, 0, cpu.DefaultConfig().SustainedIssueWidth)
	for i, sh := range shards {
		if err := baseline.Merge(sh); err != nil {
			t.Fatalf("baseline merge %d: %v", i, err)
		}
	}
	baselineTop := topPCs(profile.NewSafeDB(baseline), 10)
	if len(baselineTop) < 10 {
		t.Fatalf("baseline has only %d hot PCs", len(baselineTop))
	}

	ckptPath := filepath.Join(t.TempDir(), "agg.db")
	svc, err := ingest.NewService(ingest.Config{
		QueueDepth:     4, // wave 1 floods at 4x this
		Interval:       soakInterval,
		Width:          cpu.DefaultConfig().SustainedIssueWidth,
		CheckpointPath: ckptPath,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{}, svc).Handler())
	defer ts.Close()

	var mu sync.Mutex
	var capturedAll, capturedRefused uint64
	var accepted, refused int
	submit := func(i int) {
		body, err := ingest.EncodeSubmit(fmt.Sprintf("compress/s%03d", i), shards[i])
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("submit %d: %v", i, err)
			return
		}
		resp.Body.Close()
		cap := shards[i].Samples() + shards[i].Lost()
		mu.Lock()
		defer mu.Unlock()
		capturedAll += cap
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			refused++
			capturedRefused += cap
		default:
			t.Errorf("submit %d: unexpected status %d", i, resp.StatusCode)
		}
	}

	// Wave 1: 16 concurrent submissions against a 4-deep queue with the
	// aggregator deliberately held — a 4x flood with a deterministic
	// outcome: exactly queue-capacity accepted, the rest 429'd.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); submit(i) }(i)
	}
	// The daemon must keep answering queries mid-flood.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			resp, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				t.Errorf("stats mid-flood: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("stats mid-flood: status %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()
	if accepted != 4 || refused != 12 {
		t.Fatalf("wave 1: accepted %d refused %d, want 4/12", accepted, refused)
	}

	// Wave 2: drain begins while submissions are still arriving — the
	// daemon's SIGTERM sequence (stop admitting, let HTTP settle, flush,
	// final checkpoint). Each late shard is either admitted (and then
	// flushed by the drain) or refused-with-accounting; no third outcome
	// exists.
	svc.Start()
	for i := 16; i < soakShards; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); submit(i) }(i)
	}
	time.Sleep(time.Millisecond)
	svc.BeginDrain()
	wg.Wait() // in-flight HTTP settles (httpSrv.Shutdown in the daemon)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain mid-flood: %v", err)
	}

	// Conservation must be exact: every captured sample of every
	// submission is either in the aggregate or in its loss ledger.
	agg := svc.Aggregate()
	if got := agg.Samples() + agg.Lost(); got != capturedAll {
		t.Fatalf("conservation violated: aggregate %d + lost = %d, submissions captured %d",
			agg.Samples(), got, capturedAll)
	}
	st := svc.Stats()
	if st.MergeFailed != 0 {
		t.Fatalf("%d accepted submissions failed to merge", st.MergeFailed)
	}
	if int(st.OverloadRejected+st.OverloadDropped) != refused {
		t.Fatalf("refusal ledger %d+%d, HTTP refusals %d",
			st.OverloadRejected, st.OverloadDropped, refused)
	}
	if int(st.Merged) != accepted {
		t.Fatalf("merged %d, accepted %d", st.Merged, accepted)
	}
	if st.SamplesLost != capturedRefused {
		t.Fatalf("samples_lost %d, refused submissions captured %d", st.SamplesLost, capturedRefused)
	}
	if agg.Lost() < capturedRefused {
		t.Fatalf("aggregate lost %d below refused captured %d", agg.Lost(), capturedRefused)
	}

	// The ranking survives losing most of the fleet to overload: the
	// degraded aggregate's top 10 matches the unloaded baseline's (same
	// bar as the PR 1 chaos soak).
	if got := overlap(baselineTop, topPCs(agg, 10)); got < 8 {
		t.Fatalf("top-10 overlap %d/10 after overload, want >= 8", got)
	}

	// The mid-flood drain ended in a CRC-valid checkpoint carrying the
	// full accounting.
	loaded, err := profile.LoadFile(ckptPath)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if loaded.Samples() != agg.Samples() || loaded.Lost() != agg.Lost() {
		t.Fatalf("checkpoint totals %d/%d, aggregate %d/%d",
			loaded.Samples(), loaded.Lost(), agg.Samples(), agg.Lost())
	}

	// And the loss-corrected estimator still centres: total estimated
	// retires from the degraded aggregate match the baseline's within the
	// usual sampling tolerance.
	var estDegraded, estBaseline float64
	for _, pc := range baselineTop {
		estDegraded += agg.EstimatedEventCount(pc, core.EvRetired)
		estBaseline += baseline.EstimatedEventCount(pc, core.EvRetired)
	}
	if rel := (estDegraded - estBaseline) / estBaseline; rel < -0.15 || rel > 0.15 {
		t.Fatalf("hot-set retire estimate drifted %.1f%% under overload", 100*rel)
	}

	// The soak's denominator proves the flood was a flood.
	if refused*1 < accepted*3 {
		t.Fatalf("flood too gentle: %d refused vs %d accepted", refused, accepted)
	}
}
