package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Witness replication is the tier's answer to total disk loss: the WAL
// survives a crash, but not a machine whose volume is gone. The Router
// forwards every accepted submission to the ring successor of the
// instance that accepted it, as a witness copy — the raw submission
// body, held verbatim so anti-entropy can resubmit it bit-identically.
// After the owner recovers (possibly empty), the Router's anti-entropy
// sweep compares each witness ledger against the owner's admission
// ledger (/v1/ledger), resubmits what the owner is missing (the owner's
// dedupe makes a raced retry harmless), and prunes what the owner
// holds.
//
// Endpoints (wired into Server.Handler):
//
//	POST /v1/witness         store one witness copy {origin, shard, body}
//	GET  /v1/witness/ledger  witness ledger, origin -> [{shard, captured}]
//	GET  /v1/witness/fetch   one stored body (?origin=&shard=)
//	POST /v1/witness/prune   drop reconciled copies {origin, shards}
//
// The store is in-memory and bounded: witness copies are redundancy,
// not the system of record (that is the owner's WAL), so an overflow
// refuses new copies rather than evicting old ones — the refused
// submission is still durable at its owner.

// ErrWitnessFull reports a witness store at capacity.
var ErrWitnessFull = errors.New("server: witness store full")

// witnessEntry is one held submission body.
type witnessEntry struct {
	body     []byte
	captured uint64
}

// WitnessStore holds witness copies keyed by (origin instance, shard).
type WitnessStore struct {
	mu      sync.Mutex
	cap     int
	entries int
	byOrig  map[string]map[string]witnessEntry

	stored  uint64
	refused uint64
	pruned  uint64
}

// NewWitnessStore builds a store holding at most cap entries
// (default 8192 when cap <= 0).
func NewWitnessStore(cap int) *WitnessStore {
	if cap <= 0 {
		cap = 8192
	}
	return &WitnessStore{cap: cap, byOrig: make(map[string]map[string]witnessEntry)}
}

// Put stores one witness copy, idempotently per (origin, shard): a
// replacement body for a known key overwrites (the newest accepted copy
// wins) without consuming new capacity.
func (ws *WitnessStore) Put(origin, shard string, body []byte, captured uint64) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	m := ws.byOrig[origin]
	if m == nil {
		m = make(map[string]witnessEntry)
		ws.byOrig[origin] = m
	}
	if _, ok := m[shard]; !ok {
		if ws.entries >= ws.cap {
			ws.refused++
			return fmt.Errorf("%w: %d entries", ErrWitnessFull, ws.entries)
		}
		ws.entries++
	}
	m[shard] = witnessEntry{body: append([]byte(nil), body...), captured: captured}
	ws.stored++
	return nil
}

// Get returns one stored body.
func (ws *WitnessStore) Get(origin, shard string) ([]byte, bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	e, ok := ws.byOrig[origin][shard]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), e.body...), true
}

// WitnessShard is one ledger row.
type WitnessShard struct {
	Shard    string `json:"shard"`
	Captured uint64 `json:"captured"`
}

// Ledger snapshots the full witness ledger, origin -> sorted rows.
func (ws *WitnessStore) Ledger() map[string][]WitnessShard {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	out := make(map[string][]WitnessShard, len(ws.byOrig))
	for origin, m := range ws.byOrig {
		rows := make([]WitnessShard, 0, len(m))
		for shard, e := range m {
			rows = append(rows, WitnessShard{Shard: shard, Captured: e.captured})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Shard < rows[j].Shard })
		out[origin] = rows
	}
	return out
}

// Prune drops reconciled copies.
func (ws *WitnessStore) Prune(origin string, shards []string) int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	m := ws.byOrig[origin]
	n := 0
	for _, sh := range shards {
		if _, ok := m[sh]; ok {
			delete(m, sh)
			ws.entries--
			ws.pruned++
			n++
		}
	}
	if len(m) == 0 {
		delete(ws.byOrig, origin)
	}
	return n
}

// WitnessStats is the /v1/stats "witness" section.
type WitnessStats struct {
	Entries int    `json:"entries"`
	Origins int    `json:"origins"`
	Stored  uint64 `json:"stored"`
	Refused uint64 `json:"refused"`
	Pruned  uint64 `json:"pruned"`
}

// Stats snapshots the counters.
func (ws *WitnessStore) Stats() WitnessStats {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return WitnessStats{
		Entries: ws.entries,
		Origins: len(ws.byOrig),
		Stored:  ws.stored,
		Refused: ws.refused,
		Pruned:  ws.pruned,
	}
}

// witnessPut is the POST /v1/witness body ([]byte as base64).
type witnessPut struct {
	Origin   string `json:"origin"`
	Shard    string `json:"shard"`
	Captured uint64 `json:"captured"`
	Body     []byte `json:"body"`
}

func (s *Server) handleWitnessPut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only")
		return
	}
	body, err := s.readBounded(w, r, s.cfg.MaxBodyBytes*2)
	if err != nil {
		return // readBounded already replied
	}
	var p witnessPut
	if err := json.Unmarshal(body, &p); err != nil {
		s.writeErr(w, http.StatusBadRequest, "malformed", err.Error())
		return
	}
	if p.Origin == "" || p.Shard == "" || len(p.Body) == 0 {
		s.writeErr(w, http.StatusBadRequest, "malformed", "origin, shard and body are required")
		return
	}
	if err := s.witness.Put(p.Origin, p.Shard, p.Body, p.Captured); err != nil {
		s.writeErr(w, http.StatusTooManyRequests, "witness-full", err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"origin": p.Origin, "shard": p.Shard})
}

func (s *Server) handleWitnessLedger(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"witness": s.witness.Ledger()})
}

func (s *Server) handleWitnessFetch(w http.ResponseWriter, r *http.Request) {
	origin, shard := r.URL.Query().Get("origin"), r.URL.Query().Get("shard")
	if origin == "" || shard == "" {
		s.writeErr(w, http.StatusBadRequest, "param", "origin and shard parameters required")
		return
	}
	body, ok := s.witness.Get(origin, shard)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "unknown-witness", fmt.Sprintf("no witness copy for %s/%s", origin, shard))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// witnessPrune is the POST /v1/witness/prune body.
type witnessPrune struct {
	Origin string   `json:"origin"`
	Shards []string `json:"shards"`
}

func (s *Server) handleWitnessPrune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "method", "POST only")
		return
	}
	body, err := s.readBounded(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		return
	}
	var p witnessPrune
	if err := json.Unmarshal(body, &p); err != nil || p.Origin == "" {
		s.writeErr(w, http.StatusBadRequest, "malformed", "origin and shards required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"pruned": s.witness.Prune(p.Origin, p.Shards)})
}
