package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Query-parameter parsing for the read path. Every malformed or
// out-of-range parameter is a client error: handlers return 400 with a
// typed "param" error on the API error taxonomy (DESIGN.md §9 / §13),
// never a 500 — the table-driven tests in query_params_test.go pin
// this. Each helper returns a *paramError whose message names the
// offending parameter, the rejected value, and the accepted form, so a
// client can fix the request without reading the source.

// paramError is a malformed/out-of-range query parameter: always a 400
// with kind "param".
type paramError struct {
	name string
	msg  string
}

func (e *paramError) Error() string { return fmt.Sprintf("parameter %q: %s", e.name, e.msg) }

// intQueryParam parses an integer parameter with an inclusive range,
// returning def when absent.
func intQueryParam(r *http.Request, name string, def, lo, hi int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, &paramError{name, fmt.Sprintf("%q is not an integer", v)}
	}
	if n < lo || n > hi {
		return 0, &paramError{name, fmt.Sprintf("%d out of range [%d,%d]", n, lo, hi)}
	}
	return n, nil
}

// boolQueryParam parses a boolean parameter ("true"/"false"/"1"/"0"),
// returning def when absent.
func boolQueryParam(r *http.Request, name string, def bool) (bool, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, &paramError{name, fmt.Sprintf("%q is not a boolean (true/false)", v)}
	}
	return b, nil
}

// durationQueryParam parses a positive duration parameter: a Go
// duration string ("30s", "1m30s") or a bare number of seconds ("30").
// Returns 0 when absent.
func durationQueryParam(r *http.Request, name string) (time.Duration, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		if secs, serr := strconv.Atoi(v); serr == nil {
			d = time.Duration(secs) * time.Second
		} else {
			return 0, &paramError{name, fmt.Sprintf("%q is not a duration (try 30s, 1m, or a number of seconds)", v)}
		}
	}
	if d <= 0 {
		return 0, &paramError{name, fmt.Sprintf("%v must be positive", d)}
	}
	return d, nil
}

// writeParamErr maps any parameter-parsing failure to the typed 400.
func (s *Server) writeParamErr(w http.ResponseWriter, err error) {
	s.writeErr(w, http.StatusBadRequest, "param", err.Error())
}
