package server

import (
	"context"
	"net/http"
	"testing"
)

// TestQueryParamRejection pins the malformed-parameter contract: every
// bad n/window/sketch/pc/event value is a typed 400 with kind "param" —
// never a 500, never a silent default. One table, every query endpoint.
func TestQueryParamRejection(t *testing.T) {
	h := New(Config{}, testService(t, nil)).Handler()

	cases := []struct {
		name string
		path string
	}{
		{"hotpcs n not a number", "/v1/hotpcs?n=abc"},
		{"hotpcs n zero", "/v1/hotpcs?n=0"},
		{"hotpcs n negative", "/v1/hotpcs?n=-3"},
		{"hotpcs n too large", "/v1/hotpcs?n=1001"},
		{"hotpcs n float", "/v1/hotpcs?n=2.5"},
		{"hotpcs n overflow", "/v1/hotpcs?n=99999999999999999999"},
		{"hotpcs window garbage", "/v1/hotpcs?window=soon"},
		{"hotpcs window negative", "/v1/hotpcs?window=-5s"},
		{"hotpcs window zero", "/v1/hotpcs?window=0s"},
		{"hotpcs window bare negative", "/v1/hotpcs?window=-2"},
		{"hotpcs sketch garbage", "/v1/hotpcs?sketch=maybe"},
		{"hotpcs window with exact", "/v1/hotpcs?window=30s&sketch=false"},
		{"report n not a number", "/v1/report?n=ten"},
		{"report n out of range", "/v1/report?n=5000"},
		{"estimate pc missing", "/v1/estimate"},
		{"estimate pc garbage", "/v1/estimate?pc=zz"},
		{"estimate pc overflow", "/v1/estimate?pc=0xfffffffffffffffff"},
		{"estimate sketch garbage", "/v1/estimate?pc=0x400&sketch=2.7"},
		{"estimate unknown event", "/v1/estimate?pc=0x400&event=nonsense"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := get(t, h, tc.path)
			if status != http.StatusBadRequest {
				t.Fatalf("GET %s = %d, want 400 (body %v)", tc.path, status, body)
			}
			wantKind(t, body, "param")
			if msg, _ := body["error"].(string); msg == "" {
				t.Fatalf("GET %s: empty error message (body %v)", tc.path, body)
			}
		})
	}
}

// TestQueryParamAccepted is the other half of the table: well-formed
// variants of the same parameters are served, so the rejections above
// are precise, not blanket.
func TestQueryParamAccepted(t *testing.T) {
	svc := testService(t, nil)
	h := New(Config{}, svc).Handler()
	if status, body := postSubmit(t, h, "bench/s1", testShard(1, 40)); status != http.StatusAccepted {
		t.Fatalf("submit: %d %v", status, body)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{
		"/v1/hotpcs",
		"/v1/hotpcs?n=1",
		"/v1/hotpcs?n=1000",
		"/v1/hotpcs?sketch=true",
		"/v1/hotpcs?sketch=false",
		"/v1/hotpcs?window=30s",
		"/v1/hotpcs?window=45",
		"/v1/hotpcs?window=1m30s&n=3",
		"/v1/report?n=5",
	} {
		if status, body := get(t, h, path); status != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200 (body %v)", path, status, body)
		}
	}
}

// TestHotPCsSketchVsExactAgree pins the serving equivalence for small
// aggregates (distinct PCs <= sketch K): the default sketch path and
// ?sketch=false return the same rows in the same order with the same
// estimates, and the sketch path declares itself with "approx": true
// and a zero error bound.
func TestHotPCsSketchVsExactAgree(t *testing.T) {
	svc := testService(t, nil)
	h := New(Config{}, svc).Handler()
	if status, body := postSubmit(t, h, "bench/s1", testShard(2, 60)); status != http.StatusAccepted {
		t.Fatalf("submit: %d %v", status, body)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, sk := get(t, h, "/v1/hotpcs?n=8")
	_, ex := get(t, h, "/v1/hotpcs?n=8&sketch=false")

	if sk["approx"] != true || ex["approx"] != false {
		t.Fatalf("approx flags: sketch %v exact %v", sk["approx"], ex["approx"])
	}
	if eb, _ := sk["error_bound"].(float64); eb != 0 {
		t.Fatalf("small DB error_bound = %v, want 0", sk["error_bound"])
	}
	skRows := sk["pcs"].([]any)
	exRows := ex["pcs"].([]any)
	if len(skRows) != len(exRows) || len(skRows) == 0 {
		t.Fatalf("row counts: sketch %d exact %d", len(skRows), len(exRows))
	}
	for i := range skRows {
		s, e := skRows[i].(map[string]any), exRows[i].(map[string]any)
		for _, k := range []string{"pc", "samples", "est_count", "retired_pct", "dcache_miss_pct"} {
			if s[k] != e[k] {
				t.Fatalf("row %d field %q: sketch %v exact %v", i, k, s[k], e[k])
			}
		}
	}

	// The windowed path covers the just-merged shard too (merge time is
	// inside any recent window) and declares its estimates.
	_, win := get(t, h, "/v1/hotpcs?window=30s")
	if win["approx"] != true {
		t.Fatalf("windowed approx = %v", win["approx"])
	}
	if ws, _ := win["window_samples"].(float64); ws != 60 {
		t.Fatalf("window_samples = %v, want 60", win["window_samples"])
	}
}
