package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"profileme/internal/profile"
)

// The on-disk checkpoint is a generation-numbered pair of files:
//
//	profile-<gen>.db    the aggregate database (CRC32-C envelope)
//	manifest-<gen>.json the campaign ledger referencing that database
//
// Both are written atomically (temp + fsync + rename), database first,
// manifest last: a crash between the two leaves the previous manifest —
// which references the previous, still-present database — as the newest
// complete checkpoint, so at most the one job merged since then re-runs.
// The two newest generations are kept; older ones are pruned. A
// checkpoint that fails to parse or fails its CRC is quarantined by
// renaming both files to *.corrupt and the previous generation is used.

const manifestVersion = 1

// Manifest is the JSON campaign ledger.
type Manifest struct {
	Version    int    `json:"version"`
	Generation uint64 `json:"generation"`
	// FleetSeed pins the manifest to one campaign: Resume refuses a
	// checkpoint whose seed disagrees with the configuration.
	FleetSeed uint64 `json:"fleet_seed"`
	// DBFile names the aggregate database of this generation ("" before
	// the first completed job).
	DBFile string `json:"db_file,omitempty"`
	// Completed lists merged job IDs in merge order, each exactly once.
	Completed []string    `json:"completed"`
	Jobs      []JobRecord `json:"jobs"`
	Totals    Totals      `json:"totals"`
	Drained   bool        `json:"drained,omitempty"`
}

// Totals are the campaign counters that cannot be recomputed from the
// aggregate database alone.
type Totals struct {
	Retired            uint64 `json:"retired"`
	Cycles             int64  `json:"cycles"`
	SamplesCaptured    uint64 `json:"samples_captured"`
	InterruptsDropped  uint64 `json:"interrupts_dropped,omitempty"`
	SamplesCorrupted   uint64 `json:"samples_corrupted,omitempty"`
	ShardsSubmitted    uint64 `json:"shards_submitted,omitempty"`
	ShardsSubmitFailed uint64 `json:"shards_submit_failed,omitempty"`
}

func manifestFileName(gen uint64) string { return fmt.Sprintf("manifest-%08d.json", gen) }
func dbFileName(gen uint64) string       { return fmt.Sprintf("profile-%08d.db", gen) }

// checkpoint writes generation gen+1: aggregate database, then manifest.
func (f *Fleet) checkpoint() error {
	dir := f.cfg.CheckpointDir
	if dir == "" {
		return nil
	}
	gen := f.gen + 1
	m := Manifest{
		Version:    manifestVersion,
		Generation: gen,
		FleetSeed:  f.cfg.Seed,
		Completed:  f.completed,
		Totals:     f.totals,
		Drained:    f.drained,
	}
	for _, rec := range f.records {
		m.Jobs = append(m.Jobs, *rec)
	}
	if f.agg != nil {
		m.DBFile = dbFileName(gen)
		if err := profile.SaveFile(f.agg, filepath.Join(dir, m.DBFile)); err != nil {
			return fmt.Errorf("runner: checkpoint: %w", err)
		}
	}
	err := profile.WriteAtomic(filepath.Join(dir, manifestFileName(gen)), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
	if err != nil {
		return fmt.Errorf("runner: checkpoint: %w", err)
	}
	f.gen = gen
	f.prune()
	return nil
}

// manifestGens lists the manifest generations present in dir, newest
// first (quarantined *.corrupt files are ignored).
func manifestGens(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runner: checkpoint dir: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		var gen uint64
		if n, _ := fmt.Sscanf(e.Name(), "manifest-%d.json", &gen); n == 1 &&
			e.Name() == manifestFileName(gen) {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens, nil
}

// loadCheckpoint returns the newest checkpoint that passes every
// integrity check: manifest parses, version matches, completed IDs are
// unique, and the referenced database's CRC envelope verifies. A failing
// generation is quarantined (renamed *.corrupt) and the next older one
// tried. (nil, nil, nil) means no usable checkpoint exists.
func loadCheckpoint(dir string, logf func(string, ...any)) (*Manifest, *profile.DB, error) {
	gens, err := manifestGens(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, gen := range gens {
		mPath := filepath.Join(dir, manifestFileName(gen))
		m, db, err := loadGeneration(dir, mPath)
		if err == nil {
			return m, db, nil
		}
		logf("quarantining corrupt checkpoint generation %d: %v", gen, err)
		quarantine(mPath)
		// The database file may be damaged even when the manifest names
		// it fine; move it aside with its manifest so the pair stays
		// together for post-mortems.
		if m != nil && m.DBFile != "" {
			quarantine(filepath.Join(dir, m.DBFile))
		} else {
			quarantine(filepath.Join(dir, dbFileName(gen)))
		}
	}
	return nil, nil, nil
}

// loadGeneration parses one manifest and verifies its database. It
// returns the manifest even on error when it parsed (so the caller can
// quarantine the right database file).
func loadGeneration(dir, mPath string) (*Manifest, *profile.DB, error) {
	raw, err := os.ReadFile(mPath)
	if err != nil {
		return nil, nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, nil, fmt.Errorf("manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return &m, nil, fmt.Errorf("manifest version %d, this build reads %d", m.Version, manifestVersion)
	}
	seen := make(map[string]bool, len(m.Completed))
	for _, id := range m.Completed {
		if seen[id] {
			return &m, nil, fmt.Errorf("manifest lists job %q as completed twice", id)
		}
		seen[id] = true
	}
	var db *profile.DB
	if m.DBFile != "" {
		db, err = profile.LoadFile(filepath.Join(dir, m.DBFile))
		if err != nil {
			return &m, nil, err
		}
	}
	return &m, db, nil
}

func quarantine(path string) {
	if _, err := os.Stat(path); err != nil {
		return
	}
	os.Rename(path, path+".corrupt")
}

// prune removes checkpoint generations older than the previous one
// (best-effort): the current and prior generations stay so a corrupt
// newest checkpoint always has a fallback.
func (f *Fleet) prune() {
	gens, err := manifestGens(f.cfg.CheckpointDir)
	if err != nil {
		return
	}
	for _, gen := range gens {
		if gen+1 >= f.gen {
			continue
		}
		os.Remove(filepath.Join(f.cfg.CheckpointDir, manifestFileName(gen)))
		os.Remove(filepath.Join(f.cfg.CheckpointDir, dbFileName(gen)))
	}
}
