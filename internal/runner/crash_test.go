package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// The crash-recovery smoke uses the helper-process pattern: the parent
// re-execs this test binary with RUNNER_CRASH_HELPER set, the child runs
// a checkpointed campaign, and the parent SIGKILLs it once the manifest
// shows partial progress — a real kill -9, no cooperative shutdown —
// then resumes the campaign in-process and compares the aggregate
// against an uninterrupted run.

const (
	crashHelperEnv = "RUNNER_CRASH_HELPER"
	crashDirEnv    = "RUNNER_CRASH_DIR"
	crashShards    = 12
	crashScale     = 3000
)

func crashConfig(dir string) Config {
	cfg := testConfig(1)
	cfg.Interval = 128
	cfg.CheckpointDir = dir
	return cfg
}

// TestCrashRecoveryHelperProcess is the child side: it only does work
// when re-execed by TestCrashRecoveryAfterKill.
func TestCrashRecoveryHelperProcess(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("helper process; driven by TestCrashRecoveryAfterKill")
	}
	f, err := New(crashConfig(os.Getenv(crashDirEnv)), campaignJobs(crashShards, crashScale))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := f.Run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// peekCompleted reads the newest manifest's completed count without the
// quarantine side effects of loadCheckpoint — the child is still writing.
func peekCompleted(dir string) int {
	gens, err := manifestGens(dir)
	if err != nil || len(gens) == 0 {
		return 0
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestFileName(gens[0])))
	if err != nil {
		return 0
	}
	var m Manifest
	if json.Unmarshal(raw, &m) != nil {
		return 0
	}
	return len(m.Completed)
}

func TestCrashRecoveryAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short mode")
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoveryHelperProcess$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"=1", crashDirEnv+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()

	// Kill the child once it has merged some — but not all — jobs.
	deadline := time.After(60 * time.Second)
	killedAt := 0
poll:
	for {
		select {
		case err := <-exited:
			t.Fatalf("helper exited before the kill (completed %d/%d): %v",
				peekCompleted(dir), crashShards, err)
		case <-deadline:
			t.Fatal("helper made no checkpoint progress within 60s")
		case <-time.After(2 * time.Millisecond):
			if n := peekCompleted(dir); n >= 2 && n < crashShards {
				cmd.Process.Kill()
				killedAt = n
				break poll
			}
		}
	}
	<-exited // reap; exit status is the kill signal, not an error here

	// The campaign must be resumable from whatever the kill left behind.
	jobs := campaignJobs(crashShards, crashScale)
	f, err := Resume(crashConfig(dir), jobs)
	if err != nil {
		t.Fatalf("resume after kill -9: %v", err)
	}
	if n := len(f.Records()); n != crashShards {
		t.Fatalf("resumed ledger has %d jobs, want %d", n, crashShards)
	}
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep.Completed != crashShards || rep.Pending != 0 || rep.DeadLettered != 0 {
		t.Fatalf("resumed campaign incomplete: %+v", rep)
	}

	// Manifest integrity: zero duplicated job IDs.
	m, _, err := loadCheckpoint(dir, t.Logf)
	if err != nil || m == nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	seen := map[string]bool{}
	for _, id := range m.Completed {
		if seen[id] {
			t.Fatalf("job %s appears twice in the manifest", id)
		}
		seen[id] = true
	}
	if len(seen) != crashShards {
		t.Fatalf("manifest completed %d distinct jobs, want %d", len(seen), crashShards)
	}

	// Uninterrupted reference with identical seeds: the recovered
	// aggregate's top-10 hot-PC ranking must overlap ≥ 8/10.
	refCfg := testConfig(2)
	refCfg.Interval = 128
	ref, err := New(refCfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep := mustRun(t, ref); rep.Completed != crashShards {
		t.Fatalf("reference completed %d/%d", rep.Completed, crashShards)
	}
	if a, b := ref.Profile().Samples(), f.Profile().Samples(); a != b {
		t.Fatalf("sample totals differ from uninterrupted run: %d vs %d", b, a)
	}
	refHot, gotHot := hotSet(t, ref, 10), hotSet(t, f, 10)
	overlap := 0
	for pc := range refHot {
		if gotHot[pc] {
			overlap++
		}
	}
	if overlap < 8 {
		t.Fatalf("top-10 hot-PC overlap %d/10 after crash recovery", overlap)
	}
	t.Logf("killed at %d/%d jobs; recovered aggregate matches reference (overlap %d/10, %d samples)",
		killedAt, crashShards, overlap, f.Profile().Samples())
}
