package runner

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/profile"
)

// testConfig returns a fleet configuration with fast backoff and grace so
// supervision tests run in milliseconds.
func testConfig(workers int) Config {
	return Config{
		Workers:     workers,
		MaxAttempts: 3,
		Grace:       5 * time.Millisecond,
		BackoffBase: time.Microsecond,
		BackoffMax:  10 * time.Microsecond,
		Seed:        7,
	}
}

func testJobs(ids ...string) []Job {
	jobs := make([]Job, len(ids))
	for i, id := range ids {
		jobs[i] = Job{ID: id, Bench: "compress", Scale: 1000}
	}
	return jobs
}

// stubArtifacts builds a minimal mergeable result for stub executors.
// The database must share the fleet's sampling configuration; cfg must
// already be normalized (use the same literal values as testConfig after
// defaults).
func stubArtifacts(interval float64, c int) *jobArtifacts {
	db := profile.NewDB(interval, 0, c)
	r := core.Record{PC: 0x40, LoadComplete: -1}
	for i := range r.StageCycle {
		r.StageCycle[i] = int64(i)
	}
	r.Events |= core.EvRetired
	db.Add(core.Sample{First: r})
	return &jobArtifacts{db: db, res: cpu.Result{Retired: 100, Cycles: 50}}
}

func mustRun(t *testing.T, f *Fleet) *Report {
	t.Helper()
	rep, err := f.Run(context.Background())
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	return rep
}

// TestPanicIsolation: one job panics deterministically; it must be
// dead-lettered with the stack captured, while every other job completes
// and the fleet returns no error.
func TestPanicIsolation(t *testing.T) {
	cfg := testConfig(2)
	cfg.execute = func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
		if job.ID == "boom" {
			panic("injected worker panic")
		}
		return stubArtifacts(512, cpu.DefaultConfig().SustainedIssueWidth), nil
	}
	f, err := New(cfg, testJobs("a", "boom", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	if rep.Completed != 3 || rep.DeadLettered != 1 {
		t.Fatalf("completed %d, dead %d; want 3, 1", rep.Completed, rep.DeadLettered)
	}
	var boom JobRecord
	for _, rec := range f.Records() {
		if rec.Job.ID == "boom" {
			boom = rec
		}
	}
	if boom.Status != StatusDead {
		t.Fatalf("panicked job status %q", boom.Status)
	}
	if boom.Attempts != 1 {
		t.Fatalf("panic retried (%d attempts): panics are permanent", boom.Attempts)
	}
	if !strings.Contains(boom.Error, "injected worker panic") ||
		!strings.Contains(boom.Error, "runner.(*Fleet).exec") {
		t.Fatalf("dead letter lacks panic value or stack:\n%s", boom.Error)
	}
}

// TestRetryBackoffAndSeedPerturbation: a job that livelocks twice and
// then succeeds must consume exactly 3 attempts, each with a distinct
// seed, and be reported as retried.
func TestRetryBackoffAndSeedPerturbation(t *testing.T) {
	var mu sync.Mutex
	seeds := make(map[string][]uint64)
	cfg := testConfig(1)
	cfg.execute = func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
		mu.Lock()
		seeds[job.ID] = append(seeds[job.ID], seed)
		n := len(seeds[job.ID])
		mu.Unlock()
		if job.ID == "flaky" && n < 3 {
			return nil, fmt.Errorf("wedged: %w", cpu.ErrLivelock)
		}
		return stubArtifacts(512, cpu.DefaultConfig().SustainedIssueWidth), nil
	}
	f, err := New(cfg, testJobs("flaky", "solid"))
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	if rep.Completed != 2 || rep.Retried != 1 || rep.DeadLettered != 0 {
		t.Fatalf("completed %d, retried %d, dead %d", rep.Completed, rep.Retried, rep.DeadLettered)
	}
	got := seeds["flaky"]
	if len(got) != 3 {
		t.Fatalf("flaky ran %d attempts, want 3", len(got))
	}
	if got[0] == got[1] || got[1] == got[2] || got[0] == got[2] {
		t.Fatalf("retry seeds not perturbed: %v", got)
	}
	// Seeds are a pure function of (fleet seed, ID, attempt).
	for i, s := range got {
		if want := jobSeed(7, "flaky", i+1); s != want {
			t.Fatalf("attempt %d seed %d, want %d", i+1, s, want)
		}
	}
}

// TestDeadLetterAfterBudget: an incurable transient failure exhausts the
// attempt budget and lands in the dead-letter list.
func TestDeadLetterAfterBudget(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxAttempts = 2
	cfg.execute = func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
		return nil, fmt.Errorf("still wedged: %w", cpu.ErrLivelock)
	}
	f, err := New(cfg, testJobs("hopeless"))
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	if rep.DeadLettered != 1 || rep.Completed != 0 {
		t.Fatalf("dead %d, completed %d", rep.DeadLettered, rep.Completed)
	}
	if rep.Attempts != 2 {
		t.Fatalf("charged %d attempts, budget 2", rep.Attempts)
	}
	if len(rep.DeadLetters) != 1 || rep.DeadLetters[0] != "hopeless" {
		t.Fatalf("dead letters %v", rep.DeadLetters)
	}
}

// TestPermanentErrorNotRetried: a non-transient failure (unknown
// benchmark) must not burn the retry budget.
func TestPermanentErrorNotRetried(t *testing.T) {
	cfg := testConfig(1)
	f, err := New(cfg, []Job{{ID: "bad", Bench: "no-such-bench", Scale: 100}})
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	if rep.DeadLettered != 1 || rep.Attempts != 1 {
		t.Fatalf("dead %d, attempts %d; permanent errors get one attempt", rep.DeadLettered, rep.Attempts)
	}
}

// TestAttemptDeadlineIsTransient: an executor that honors its context
// and never finishes is cut off by the per-attempt deadline, retried,
// and finally dead-lettered — with the deadline actually enforced.
func TestAttemptDeadlineIsTransient(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxAttempts = 2
	cfg.Deadline = 10 * time.Millisecond
	cfg.execute = func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
		<-ctx.Done()
		return nil, fmt.Errorf("%w: %v", cpu.ErrCanceled, context.Cause(ctx))
	}
	f, err := New(cfg, testJobs("slow"))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep := mustRun(t, f)
	if rep.DeadLettered != 1 || rep.Attempts != 2 {
		t.Fatalf("dead %d, attempts %d; want deadline treated as transient", rep.DeadLettered, rep.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not enforced: run took %v", elapsed)
	}
}

// TestGracefulDrain: canceling the Run context stops dispatch, leaves
// unstarted and hard-canceled jobs pending without charging their
// attempts, and reports the drain.
func TestGracefulDrain(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	cfg := testConfig(1)
	cfg.Grace = time.Millisecond
	cfg.execute = func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
		started <- job.ID
		if job.ID == "first" {
			return stubArtifacts(512, cpu.DefaultConfig().SustainedIssueWidth), nil
		}
		select { // an in-flight job that only yields to hard cancellation
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %v", cpu.ErrCanceled, context.Cause(ctx))
		case <-release:
			return stubArtifacts(512, cpu.DefaultConfig().SustainedIssueWidth), nil
		}
	}
	f, err := New(cfg, testJobs("first", "second", "third", "fourth"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started // "first" begins
		<-started // "second" begins (first completed: 1 worker)
		cancel()
	}()
	rep, err := f.Run(ctx)
	close(release)
	if err != nil {
		t.Fatalf("drain returned error: %v", err)
	}
	if !rep.Drained {
		t.Fatal("report does not mark the drain")
	}
	if rep.Completed != 1 || rep.Pending != 3 {
		t.Fatalf("completed %d, pending %d; want 1 completed, 3 pending", rep.Completed, rep.Pending)
	}
	for _, rec := range f.Records() {
		if rec.Job.ID == "second" && rec.Attempts != 0 {
			t.Fatalf("hard-canceled job charged %d attempts", rec.Attempts)
		}
	}
}

// TestRunOnce: a fleet refuses to run twice.
func TestRunOnce(t *testing.T) {
	cfg := testConfig(1)
	cfg.execute = func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
		return stubArtifacts(512, cpu.DefaultConfig().SustainedIssueWidth), nil
	}
	f, err := New(cfg, testJobs("a"))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, f)
	if _, err := f.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
}

// TestBuildRejectsBadInput: duplicate and empty job IDs, no jobs, and
// invalid configuration are refused up front.
func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := New(testConfig(1), nil); err == nil {
		t.Fatal("no jobs accepted")
	}
	if _, err := New(testConfig(1), testJobs("a", "a")); err == nil {
		t.Fatal("duplicate job ID accepted")
	}
	if _, err := New(testConfig(1), []Job{{ID: ""}}); err == nil {
		t.Fatal("empty job ID accepted")
	}
	bad := testConfig(1)
	bad.Workers = -1
	if _, err := New(bad, testJobs("a")); err == nil {
		t.Fatal("negative workers accepted")
	}
	bad = testConfig(1)
	bad.Deadline = -time.Second
	if _, err := New(bad, testJobs("a")); err == nil {
		t.Fatal("negative deadline accepted")
	}
}

// TestSimulatedFleetEndToEnd runs a real (no-stub) sharded campaign and
// checks the aggregate profile carries samples from every shard with the
// loss accounting consistent.
func TestSimulatedFleetEndToEnd(t *testing.T) {
	cfg := testConfig(4)
	cfg.Interval = 128
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("compress/s%03d", i), Bench: "compress", Scale: 4000}
	}
	f, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	if rep.Completed != 6 || rep.DeadLettered != 0 || rep.Pending != 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	db := f.Profile()
	if db == nil || db.Samples() == 0 {
		t.Fatal("aggregate profile empty")
	}
	if rep.SamplesDelivered != db.Samples() {
		t.Fatalf("report delivered %d != db %d", rep.SamplesDelivered, db.Samples())
	}
	if rep.Retired == 0 || rep.Cycles == 0 {
		t.Fatalf("totals not accumulated: %+v", rep)
	}
}

// TestChaosFleetRetriesAndSurvives drives the retry path the way the
// soak does: heavy chaos plus a tight simulated-cycle budget makes some
// attempts fail transiently; the fleet must still converge with retries
// and keep the loss ledger.
func TestChaosFleetRetriesAndSurvives(t *testing.T) {
	cfg := testConfig(4)
	cfg.Interval = 128
	cfg.MaxAttempts = 4
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("chaos/s%03d", i), Bench: "compress", Scale: 4000, ChaosRate: 0.3}
	}
	f, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	if rep.Completed != 4 {
		t.Fatalf("chaos fleet completed %d/4: %+v", rep.Completed, rep)
	}
	if rep.SamplesLost == 0 {
		t.Fatal("30% chaos lost no samples — fault plan not attached?")
	}
	if rep.SamplesCaptured < rep.SamplesDelivered {
		t.Fatalf("captured %d < delivered %d", rep.SamplesCaptured, rep.SamplesDelivered)
	}
}
