package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"profileme/internal/ingest"
	"profileme/internal/profile"
)

// Sink receives each completed job's shard profile. A fleet with a sink
// still merges every shard into its local aggregate — the sink is an
// additional destination (a pmsimd collector), and a shard that cannot
// be delivered degrades to local-only instead of failing the job.
type Sink interface {
	Submit(ctx context.Context, shard string, db *profile.DB) error
}

// SubmitError is a typed shard-submission failure carrying the
// collector's HTTP status, so the retry loop can apply the service's own
// taxonomy: 429 (queue full) and 503 (draining/overloaded) are explicit
// backpressure, 5xx and transport failures are transient, and any other
// 4xx (damaged payload, config mismatch) is permanent — retrying a 409
// can only waste the collector's admission budget.
//
// Retrying refusals is safe on the accounting side: the collector keys
// its loss ledger by shard id, so a shard refused-then-accepted has its
// refusal loss reversed when it merges, and a resubmission after a lost
// response (transport error with Status 0) dedupes server-side instead
// of merging twice.
type SubmitError struct {
	// Status is the HTTP status; 0 means the request never completed
	// (transport failure).
	Status int
	// Kind is the collector's error kind ("queue-full", "draining", ...).
	Kind string
	Msg  string
}

func (e *SubmitError) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("runner: shard submission: %s", e.Msg)
	}
	return fmt.Sprintf("runner: shard submission refused: %d %s (%s)", e.Status, e.Kind, e.Msg)
}

// Transient reports whether a retry with backoff can plausibly succeed.
func (e *SubmitError) Transient() bool {
	switch {
	case e.Status == 0:
		return true // transport: collector restarting, network blip
	case e.Status == http.StatusTooManyRequests, e.Status == http.StatusServiceUnavailable:
		return true // explicit backpressure: Retry-After semantics
	case e.Status >= 500:
		return true
	default:
		return false // other 4xx: the request itself is unacceptable
	}
}

// HTTPSink posts shard profiles to a collector's /v1/submit — a single
// pmsimd, or a pmrouter fronting the sharded tier. Extra URLs are
// transport-level fallbacks: when the current endpoint is unreachable
// (the request never completes), Submit tries the next in the same call
// and then sticks with whichever answered. Considered refusals
// (429/503 backpressure, 4xx) are NOT failed over — those are the
// collector's admission policy speaking, and the fleet's backoff loop
// already honors them against the same endpoint.
//
// Fallbacks must front the same admission-ledger domain (a second
// router over the same tier, or a replica of the same collector):
// endpoints with independent ledgers would merge a retried shard twice.
type HTTPSink struct {
	// BaseURLs are the collector roots in preference order, e.g.
	// ["http://router-a:7000", "http://router-b:7000"].
	BaseURLs []string
	// Client defaults to a 30s-timeout client.
	Client *http.Client

	mu      sync.Mutex
	current int // index of the endpoint that last worked
}

// NewHTTPSink builds a sink for the collector at baseURL, with optional
// transport-failover fallbacks.
func NewHTTPSink(baseURL string, fallbacks ...string) *HTTPSink {
	urls := []string{strings.TrimRight(baseURL, "/")}
	for _, u := range fallbacks {
		urls = append(urls, strings.TrimRight(u, "/"))
	}
	return &HTTPSink{
		BaseURLs: urls,
		Client:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Submit posts one shard, failing over across BaseURLs on transport
// errors. Non-202 responses come back as *SubmitError with the
// collector's status and error kind.
func (s *HTTPSink) Submit(ctx context.Context, shard string, db *profile.DB) error {
	body, err := ingest.EncodeSubmit(shard, db)
	if err != nil {
		return fmt.Errorf("runner: encode shard %s: %w", shard, err)
	}
	client := s.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	s.mu.Lock()
	start := s.current
	s.mu.Unlock()
	n := len(s.BaseURLs)
	if n == 0 {
		return fmt.Errorf("runner: sink has no collector URL")
	}
	var lastErr error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		err := s.submitTo(ctx, client, s.BaseURLs[idx], body)
		var se *SubmitError
		if errors.As(err, &se) && se.Status == 0 && ctx.Err() == nil {
			// Endpoint unreachable: try the next one now rather than
			// burning a whole backoff attempt on a dead address.
			lastErr = err
			continue
		}
		if err == nil && idx != start {
			s.mu.Lock()
			s.current = idx
			s.mu.Unlock()
		}
		return err
	}
	return lastErr
}

func (s *HTTPSink) submitTo(ctx context.Context, client *http.Client, baseURL string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/submit", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("runner: shard submission request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return &SubmitError{Status: 0, Msg: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	se := &SubmitError{Status: resp.StatusCode}
	var apiErr struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if raw, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
		if json.Unmarshal(raw, &apiErr) == nil {
			se.Kind, se.Msg = apiErr.Kind, apiErr.Error
		} else {
			se.Msg = strings.TrimSpace(string(raw))
		}
	}
	return se
}

// submitShard delivers one completed shard to the configured sink with
// the fleet's retry/backoff machinery: transient refusals (429/503/5xx/
// transport) retry up to the attempt budget, permanent ones bail out
// immediately. Failure never fails the job — the shard is already merged
// locally — it is reported as degradation.
func (f *Fleet) submitShard(ctx context.Context, id string, db *profile.DB) error {
	if f.cfg.Sink == nil {
		return nil
	}
	for attempt := 1; ; attempt++ {
		err := f.cfg.Sink.Submit(ctx, id, db)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || !transientErr(err) || attempt >= f.cfg.MaxAttempts {
			return err
		}
		f.logf("job %s shard submission attempt %d failed: %v", id, attempt, err)
		select {
		case <-time.After(f.backoff(id+"#submit", attempt)):
		case <-ctx.Done():
			return err
		}
	}
}
