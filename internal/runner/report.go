package runner

import (
	"fmt"
	"strings"
)

// Report is the campaign's degradation report: what completed, what was
// retried, what was dead-lettered, and how much sampling was captured
// versus lost — the fleet-level counterpart of a single run's chaos
// summary.
type Report struct {
	JobsTotal    int `json:"jobs_total"`
	Completed    int `json:"completed"`
	Retried      int `json:"retried"` // completed jobs that needed >1 attempt
	DeadLettered int `json:"dead_lettered"`
	Pending      int `json:"pending"`  // left unfinished by a drain
	Attempts     int `json:"attempts"` // total attempts charged

	// Sampling rollup: captured is hardware-side (core.Stats) over
	// completed jobs; delivered/lost/corrupt-rejected come from the
	// aggregate database's loss accounting.
	SamplesCaptured  uint64  `json:"samples_captured"`
	SamplesDelivered uint64  `json:"samples_delivered"`
	SamplesLost      uint64  `json:"samples_lost"`
	CorruptRejected  uint64  `json:"corrupt_rejected"`
	LossRate         float64 `json:"loss_rate"`

	Retired uint64 `json:"retired"`
	Cycles  int64  `json:"cycles"`

	// Remote delivery (only populated when a sink is configured): a
	// submit-failed shard still lives in the local aggregate.
	ShardsSubmitted    uint64 `json:"shards_submitted,omitempty"`
	ShardsSubmitFailed uint64 `json:"shards_submit_failed,omitempty"`

	Drained              bool     `json:"drained"` // a graceful drain cut the campaign short
	DeadLetters          []string `json:"dead_letters,omitempty"`
	CheckpointGeneration uint64   `json:"checkpoint_generation,omitempty"`
}

// buildReport derives the report from the job ledger and the aggregate.
func (f *Fleet) buildReport() *Report {
	r := &Report{
		JobsTotal:            len(f.records),
		Drained:              f.drained,
		CheckpointGeneration: f.gen,
	}
	for _, rec := range f.records {
		r.Attempts += rec.Attempts
		switch rec.Status {
		case StatusDone:
			r.Completed++
			if rec.Attempts > 1 {
				r.Retried++
			}
		case StatusDead:
			r.DeadLettered++
			r.DeadLetters = append(r.DeadLetters, rec.Job.ID)
		default:
			r.Pending++
		}
	}
	r.Retired = f.totals.Retired
	r.Cycles = f.totals.Cycles
	r.SamplesCaptured = f.totals.SamplesCaptured
	r.ShardsSubmitted = f.totals.ShardsSubmitted
	r.ShardsSubmitFailed = f.totals.ShardsSubmitFailed
	if f.agg != nil {
		r.SamplesDelivered = f.agg.Samples()
		r.SamplesLost = f.agg.Lost()
		r.CorruptRejected = f.agg.CorruptRejected()
		r.LossRate = f.agg.LossRate()
	}
	return r
}

// String renders the report as the pmsim fleet summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d/%d jobs completed (%d retried, %d dead-lettered, %d pending; %d attempts)\n",
		r.Completed, r.JobsTotal, r.Retried, r.DeadLettered, r.Pending, r.Attempts)
	fmt.Fprintf(&b, "samples: %d delivered, %d lost (%d corrupt-rejected), loss rate %.1f%%; %d captured by hardware\n",
		r.SamplesDelivered, r.SamplesLost, r.CorruptRejected, 100*r.LossRate, r.SamplesCaptured)
	fmt.Fprintf(&b, "work: %d instructions retired over %d simulated cycles\n", r.Retired, r.Cycles)
	if r.ShardsSubmitted+r.ShardsSubmitFailed > 0 {
		fmt.Fprintf(&b, "collector: %d shards delivered, %d undeliverable (kept local)\n",
			r.ShardsSubmitted, r.ShardsSubmitFailed)
	}
	if r.Drained {
		fmt.Fprintf(&b, "campaign drained before completion; resume with -resume to finish %d pending jobs\n", r.Pending)
	}
	if len(r.DeadLetters) > 0 {
		fmt.Fprintf(&b, "dead letters: %s\n", strings.Join(r.DeadLetters, ", "))
	}
	return b.String()
}
