package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// campaignJobs builds a deterministic sharded campaign.
func campaignJobs(n, scale int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("compress/s%03d", i), Bench: "compress", Scale: scale}
	}
	return jobs
}

// hotSet returns the top-n PC set of a fleet's aggregate.
func hotSet(t *testing.T, f *Fleet, n int) map[uint64]bool {
	t.Helper()
	db := f.Profile()
	if db == nil {
		t.Fatal("no aggregate profile")
	}
	set := make(map[uint64]bool)
	for _, a := range db.HotPCs(n) {
		set[a.PC] = true
	}
	return set
}

// TestCheckpointAndResumeCompleted: a finished campaign resumed from its
// checkpoint has nothing to do and reproduces the same aggregate.
func TestCheckpointAndResumeCompleted(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	cfg.Interval = 128
	cfg.CheckpointDir = dir
	jobs := campaignJobs(4, 3000)

	f, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	if rep.Completed != 4 {
		t.Fatalf("completed %d/4", rep.Completed)
	}
	wantSamples := f.Profile().Samples()

	g, err := Resume(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Completed != 4 || rep2.Pending != 0 {
		t.Fatalf("resumed report: %+v", rep2)
	}
	if rep2.Attempts != rep.Attempts {
		t.Fatalf("resume re-ran work: %d attempts vs %d", rep2.Attempts, rep.Attempts)
	}
	if got := g.Profile().Samples(); got != wantSamples {
		t.Fatalf("resumed aggregate has %d samples, want %d", got, wantSamples)
	}
}

// TestResumeAfterDrainMatchesUninterrupted: drain a campaign partway,
// resume it, and compare the final aggregate against an uninterrupted
// campaign with the same seeds: identical sample totals, identical
// top-10 hot ranking, and no duplicated IDs in the manifest.
func TestResumeAfterDrainMatchesUninterrupted(t *testing.T) {
	jobs := campaignJobs(6, 3000)

	// Reference: uninterrupted.
	refCfg := testConfig(2)
	refCfg.Interval = 128
	ref, err := New(refCfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep := mustRun(t, ref); rep.Completed != 6 {
		t.Fatalf("reference completed %d/6", rep.Completed)
	}

	// Interrupted: cancel once the second result lands, then resume.
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.Interval = 128
	cfg.CheckpointDir = dir
	f, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for { // watch the ledger via checkpoints: cancel after ~2 jobs merge
			if m, _, err := loadCheckpoint(dir, func(string, ...any) {}); err == nil && m != nil && len(m.Completed) >= 2 {
				cancel()
				return
			}
		}
	}()
	rep, err := f.Run(ctx)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pending == 0 {
		t.Skip("campaign finished before the drain; nothing to resume")
	}

	g, err := Resume(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Completed != 6 || rep2.Pending != 0 {
		t.Fatalf("resumed report: %+v", rep2)
	}

	// Manifest integrity: every job exactly once.
	m, _, err := loadCheckpoint(dir, func(string, ...any) {})
	if err != nil || m == nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	seen := map[string]int{}
	for _, id := range m.Completed {
		seen[id]++
	}
	if len(seen) != 6 {
		t.Fatalf("manifest completed %d distinct jobs, want 6", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("job %s completed %d times", id, n)
		}
	}

	// Aggregate equivalence with the uninterrupted reference.
	if a, b := ref.Profile().Samples(), g.Profile().Samples(); a != b {
		t.Fatalf("sample totals differ: %d vs %d", a, b)
	}
	refHot, gotHot := hotSet(t, ref, 10), hotSet(t, g, 10)
	overlap := 0
	for pc := range refHot {
		if gotHot[pc] {
			overlap++
		}
	}
	if overlap < 8 {
		t.Fatalf("top-10 hot-PC overlap %d/10 after resume", overlap)
	}
}

// TestCorruptManifestQuarantinedFallsBack: a damaged newest manifest is
// renamed *.corrupt and the previous generation is used.
func TestCorruptManifestQuarantinedFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.Interval = 128
	cfg.CheckpointDir = dir
	jobs := campaignJobs(3, 2000)
	f, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, f)

	gens, err := manifestGens(dir)
	if err != nil || len(gens) < 2 {
		t.Fatalf("want ≥2 generations, have %v (%v)", gens, err)
	}
	newest := filepath.Join(dir, manifestFileName(gens[0]))
	if err := os.WriteFile(newest, []byte(`{"version":1,"gener`), 0o644); err != nil {
		t.Fatal(err)
	}

	m, db, err := loadCheckpoint(dir, func(string, ...any) {})
	if err != nil || m == nil {
		t.Fatalf("no fallback checkpoint: %v", err)
	}
	if m.Generation != gens[1] {
		t.Fatalf("fell back to generation %d, want %d", m.Generation, gens[1])
	}
	if db == nil {
		t.Fatal("fallback database missing")
	}
	if _, err := os.Stat(newest + ".corrupt"); err != nil {
		t.Fatalf("corrupt manifest not quarantined: %v", err)
	}
}

// TestCorruptDatabaseQuarantinedFallsBack: a bit-flipped newest database
// fails its CRC envelope; manifest and database move aside together.
func TestCorruptDatabaseQuarantinedFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.Interval = 128
	cfg.CheckpointDir = dir
	jobs := campaignJobs(3, 2000)
	f, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, f)

	gens, _ := manifestGens(dir)
	if len(gens) < 2 {
		t.Fatalf("want ≥2 generations, have %v", gens)
	}
	dbPath := filepath.Join(dir, dbFileName(gens[0]))
	img, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x20
	if err := os.WriteFile(dbPath, img, 0o644); err != nil {
		t.Fatal(err)
	}

	m, db, err := loadCheckpoint(dir, func(string, ...any) {})
	if err != nil || m == nil || db == nil {
		t.Fatalf("no fallback checkpoint: %v", err)
	}
	if m.Generation != gens[1] {
		t.Fatalf("fell back to generation %d, want %d", m.Generation, gens[1])
	}
	for _, p := range []string{dbPath, filepath.Join(dir, manifestFileName(gens[0]))} {
		if _, err := os.Stat(p + ".corrupt"); err != nil {
			t.Fatalf("%s not quarantined: %v", filepath.Base(p), err)
		}
	}

	// Resume proceeds from the fallback and completes the campaign.
	g, err := Resume(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("resumed-from-fallback completed %d/3", rep.Completed)
	}
}

// TestNewRefusesExistingCampaign: New must not silently mix into a
// directory that already holds a campaign.
func TestNewRefusesExistingCampaign(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.Interval = 128
	cfg.CheckpointDir = dir
	jobs := campaignJobs(1, 1000)
	f, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, f)
	if _, err := New(cfg, jobs); err == nil || !strings.Contains(err.Error(), "already holds") {
		t.Fatalf("New over an existing campaign: %v", err)
	}
}

// TestResumeSeedMismatchRefused: resuming with a different fleet seed
// would mix incompatible sampling streams; it must be refused.
func TestResumeSeedMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.Interval = 128
	cfg.CheckpointDir = dir
	jobs := campaignJobs(1, 1000)
	f, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, f)
	cfg.Seed = 999
	if _, err := Resume(cfg, jobs); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seed-mismatched resume: %v", err)
	}
}

// TestPruneKeepsTwoGenerations: old checkpoints are garbage-collected,
// the newest two survive.
func TestPruneKeepsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.Interval = 128
	cfg.CheckpointDir = dir
	f, err := New(cfg, campaignJobs(5, 1500))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, f)
	gens, err := manifestGens(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("%d generations on disk after prune: %v", len(gens), gens)
	}
	if gens[0] != f.Generation() {
		t.Fatalf("newest generation %d != fleet %d", gens[0], f.Generation())
	}
}
