package runner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/faultinject"
	"profileme/internal/isa"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

// Job is one unit of campaign work: a benchmark (or generated program) ×
// scale × shard, profiled with a shard-specific sampling seed. Shards of
// the same campaign differ only by seed, so their profiles merge into one
// loss-corrected aggregate exactly like the independent sampled runs the
// paper's aggregation argument assumes.
type Job struct {
	// ID names the job uniquely within the campaign (e.g. "compress/s003");
	// the checkpoint manifest tracks completion by ID.
	ID string `json:"id"`
	// Bench is a workload suite benchmark name; empty means a generated
	// program from GenSeed.
	Bench   string `json:"bench,omitempty"`
	GenSeed uint64 `json:"gen_seed,omitempty"`
	// Scale is the approximate dynamic instruction count.
	Scale int `json:"scale"`
	// ChaosRate arms fault injection at this uniform rate (0 = clean run);
	// the fault seed is derived from the attempt seed, so retries perturb
	// the fault stream along with the sampling stream.
	ChaosRate float64 `json:"chaos_rate,omitempty"`
}

// Job status values recorded in the manifest.
const (
	StatusPending = "pending" // not yet finished (fresh, or interrupted by a drain)
	StatusDone    = "done"    // profile merged into the aggregate
	StatusDead    = "dead"    // attempt budget exhausted or permanent failure
)

// JobRecord is the manifest's per-job ledger: everything Resume needs to
// re-enqueue only unfinished work and to keep retry budgets across
// crashes.
type JobRecord struct {
	Job      Job    `json:"job"`
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	// Seed is the sampling seed of the deciding attempt (the one that
	// completed, dead-lettered, or was in flight when interrupted).
	Seed  uint64 `json:"seed,omitempty"`
	Error string `json:"error,omitempty"`
}

// PanicError is a worker panic converted into a value: the fleet isolates
// the panic, dead-letters the job, and keeps the campaign going. Panics
// are treated as permanent (a deterministic simulator bug retries into
// the same panic).
type PanicError struct {
	Value string
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job panicked: %s\n%s", e.Value, e.Stack)
}

// transientErr reports whether a failure is worth retrying: livelocks,
// cycle-budget and wall-clock deadline overruns are timing pathologies
// that a different sampling/fault stream usually avoids, and a
// SubmitError consults the collector's own taxonomy (429/503/5xx/
// transport transient, other 4xx permanent). Panics and
// unknown-benchmark errors are permanent.
func transientErr(err error) bool {
	var se *SubmitError
	if errors.As(err, &se) {
		return se.Transient()
	}
	return errors.Is(err, cpu.ErrLivelock) ||
		errors.Is(err, cpu.ErrCanceled) ||
		errors.Is(err, cpu.ErrCycleLimit)
}

// mix64 is a splitmix64-style finalizer for seed derivation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// jobSeed derives the sampling seed for one attempt of one job from the
// fleet seed. It is a pure function of (fleet seed, job ID, attempt), so
// a resumed campaign reproduces exactly the seeds an uninterrupted one
// would have used, and each retry perturbs the seed deterministically.
func jobSeed(fleetSeed uint64, id string, attempt int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	s := mix64(fleetSeed ^ h.Sum64() ^ uint64(attempt)*0x9e3779b97f4a7c15)
	if s == 0 {
		s = 1
	}
	return s
}

// jobArtifacts is what one successful attempt hands the supervisor.
type jobArtifacts struct {
	db     *profile.DB
	res    cpu.Result
	stats  core.Stats
	faults faultinject.Counts
}

// buildProgram materializes the job's program. Rebuilt per attempt so
// concurrent workers never share mutable workload state.
func buildProgram(job Job) (*isa.Program, error) {
	if job.Bench == "" {
		gc := workload.DefaultGenConfig()
		gc.Seed = job.GenSeed
		if gc.Seed == 0 {
			gc.Seed = 1
		}
		if iters := job.Scale / 250; iters > 0 {
			gc.MainIters = iters
		}
		return workload.Generate(gc), nil
	}
	b, ok := workload.ByName(job.Bench)
	if !ok {
		return nil, fmt.Errorf("runner: unknown benchmark %q", job.Bench)
	}
	return b.Build(job.Scale), nil
}

// simulate runs one attempt of a job end to end: program, pipeline,
// ProfileMe unit, optional chaos plan, RunContext with the fleet's cycle
// budget, and loss accounting folded into the shard database. The shard
// DB keeps S at the configured mean interval (not the realized one) so
// every shard of a campaign stays merge-compatible; loss correction
// handles the thinning instead.
func (f *Fleet) simulate(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
	prog, err := buildProgram(job)
	if err != nil {
		return nil, err
	}
	ucfg := core.Config{
		MeanInterval: f.cfg.Interval,
		BufferDepth:  f.cfg.BufferDepth,
		CountMode:    core.CountInstructions,
		IntervalMode: core.IntervalGeometric,
		Seed:         seed,
	}
	unit, err := core.NewUnit(ucfg)
	if err != nil {
		return nil, err
	}
	db := profile.NewDB(f.cfg.Interval, 0, f.cfg.CPU.SustainedIssueWidth)
	src := sim.NewMachineSource(sim.New(prog), 0)
	pipe, err := cpu.New(prog, src, f.cfg.CPU)
	if err != nil {
		return nil, err
	}
	pipe.AttachProfileMe(unit, db.Handler())
	var plan *faultinject.Plan
	if job.ChaosRate > 0 {
		plan, err = faultinject.NewPlan(mix64(seed^0xc4a05), faultinject.Uniform(job.ChaosRate))
		if err != nil {
			return nil, err
		}
		unit.AttachFaults(plan)
		pipe.AttachFaults(plan)
	}

	res, runErr := pipe.RunContext(ctx, f.cfg.MaxCycles)
	st := unit.Stats()
	db.RecordLoss(st.SamplesDropped + st.SamplesOverwritten)
	art := &jobArtifacts{db: db, res: res, stats: st}
	if plan != nil {
		art.faults = plan.Counts()
	}
	if runErr != nil {
		return art, runErr
	}
	if err := src.Err(); err != nil {
		return art, err
	}
	return art, nil
}
