package runner

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"profileme/internal/cpu"
	"profileme/internal/ingest"
	"profileme/internal/profile"
	"profileme/internal/server"
)

func TestSubmitErrorTaxonomy(t *testing.T) {
	transient := []int{0, http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusInternalServerError, http.StatusBadGateway}
	for _, status := range transient {
		se := &SubmitError{Status: status}
		if !se.Transient() {
			t.Errorf("status %d classified permanent, want transient", status)
		}
		if !transientErr(se) {
			t.Errorf("transientErr(%d) = false through errors.As", status)
		}
	}
	permanent := []int{http.StatusBadRequest, http.StatusNotFound, http.StatusConflict,
		http.StatusRequestEntityTooLarge}
	for _, status := range permanent {
		se := &SubmitError{Status: status}
		if se.Transient() {
			t.Errorf("status %d classified transient, want permanent", status)
		}
		if transientErr(se) {
			t.Errorf("transientErr(%d) = true; retrying cannot help", status)
		}
	}
}

// fakeSink scripts per-shard outcomes: each Submit pops the next error
// from the shard's queue (empty queue = success).
type fakeSink struct {
	mu      sync.Mutex
	scripts map[string][]error
	got     map[string]int
}

func newFakeSink() *fakeSink {
	return &fakeSink{scripts: make(map[string][]error), got: make(map[string]int)}
}

func (s *fakeSink) Submit(ctx context.Context, shard string, db *profile.DB) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got[shard]++
	if q := s.scripts[shard]; len(q) > 0 {
		err := q[0]
		s.scripts[shard] = q[1:]
		return err
	}
	return nil
}

func (s *fakeSink) calls(shard string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.got[shard]
}

// TestFleetSubmitsEveryCompletedShard: with a healthy sink, each
// completed job is delivered exactly once and the report says so.
func TestFleetSubmitsEveryCompletedShard(t *testing.T) {
	sink := newFakeSink()
	cfg := testConfig(2)
	cfg.Sink = sink
	cfg.execute = func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
		return stubArtifacts(512, cpu.DefaultConfig().SustainedIssueWidth), nil
	}
	f, err := New(cfg, testJobs("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	if rep.ShardsSubmitted != 4 || rep.ShardsSubmitFailed != 0 {
		t.Fatalf("submitted %d failed %d, want 4/0", rep.ShardsSubmitted, rep.ShardsSubmitFailed)
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if got := sink.calls(id); got != 1 {
			t.Fatalf("shard %s submitted %d times, want 1", id, got)
		}
	}
}

// TestFleetSubmitRetryTaxonomy: transient refusals (429/503) are retried
// within the attempt budget; a permanent refusal (409) is not retried,
// and neither failure mode fails the job itself.
func TestFleetSubmitRetryTaxonomy(t *testing.T) {
	sink := newFakeSink()
	// "flaky" recovers after two rounds of backpressure; "skewed" is
	// refused permanently; "dead" exhausts the budget on endless 503s.
	sink.scripts["flaky"] = []error{
		&SubmitError{Status: http.StatusTooManyRequests, Kind: "queue-full"},
		&SubmitError{Status: http.StatusServiceUnavailable, Kind: "draining"},
	}
	sink.scripts["skewed"] = []error{
		&SubmitError{Status: http.StatusConflict, Kind: "config-mismatch"},
	}
	sink.scripts["dead"] = []error{
		&SubmitError{Status: http.StatusServiceUnavailable},
		&SubmitError{Status: http.StatusServiceUnavailable},
		&SubmitError{Status: http.StatusServiceUnavailable},
		&SubmitError{Status: http.StatusServiceUnavailable},
	}
	cfg := testConfig(1)
	cfg.Sink = sink
	cfg.execute = func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
		return stubArtifacts(512, cpu.DefaultConfig().SustainedIssueWidth), nil
	}
	f, err := New(cfg, testJobs("flaky", "skewed", "dead"))
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	// Submission failures are degradation, never job failures.
	if rep.Completed != 3 || rep.DeadLettered != 0 {
		t.Fatalf("completed %d dead %d, want 3/0", rep.Completed, rep.DeadLettered)
	}
	if rep.ShardsSubmitted != 1 || rep.ShardsSubmitFailed != 2 {
		t.Fatalf("submitted %d failed %d, want 1/2", rep.ShardsSubmitted, rep.ShardsSubmitFailed)
	}
	if got := sink.calls("flaky"); got != 3 {
		t.Fatalf("flaky submitted %d times, want 3 (two backoffs then success)", got)
	}
	if got := sink.calls("skewed"); got != 1 {
		t.Fatalf("skewed submitted %d times, want 1 (409 is permanent)", got)
	}
	if got := sink.calls("dead"); got != cfg.MaxAttempts {
		t.Fatalf("dead submitted %d times, want the %d-attempt budget", got, cfg.MaxAttempts)
	}
}

// TestHTTPSinkAgainstService is the integration slice: a real fleet with
// stub simulations delivering through HTTPSink to a real pmsimd handler,
// with the collector's aggregate ending up sample-for-sample equal to
// the fleet's local one.
func TestHTTPSinkAgainstService(t *testing.T) {
	svc, err := ingest.NewService(ingest.Config{
		QueueDepth: 16,
		Interval:   512,
		Width:      cpu.DefaultConfig().SustainedIssueWidth,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(server.New(server.Config{}, svc).Handler())
	defer ts.Close()

	cfg := testConfig(2)
	cfg.Sink = NewHTTPSink(ts.URL)
	cfg.execute = func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error) {
		return stubArtifacts(512, cpu.DefaultConfig().SustainedIssueWidth), nil
	}
	f, err := New(cfg, testJobs("a", "b", "c", "d", "e"))
	if err != nil {
		t.Fatal(err)
	}
	rep := mustRun(t, f)
	if rep.ShardsSubmitted != 5 || rep.ShardsSubmitFailed != 0 {
		t.Fatalf("submitted %d failed %d, want 5/0", rep.ShardsSubmitted, rep.ShardsSubmitFailed)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	agg := svc.Aggregate()
	local := f.Profile()
	if agg.Samples() != local.Samples() || agg.Lost() != local.Lost() {
		t.Fatalf("collector aggregate %d/%d, local %d/%d",
			agg.Samples(), agg.Lost(), local.Samples(), local.Lost())
	}

	// A sink pointed at a draining collector reports the refusal as a
	// typed 503 SubmitError.
	err = cfg.Sink.Submit(context.Background(), "late", profile.NewDB(512, 0, cpu.DefaultConfig().SustainedIssueWidth))
	var se *SubmitError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("draining collector: %v, want 503 SubmitError", err)
	}
	if se.Kind != "draining" {
		t.Fatalf("kind %q, want draining", se.Kind)
	}

	// A sink pointed at nothing reports a transient transport failure.
	downed := NewHTTPSink("http://127.0.0.1:1")
	err = downed.Submit(context.Background(), "x", profile.NewDB(512, 0, cpu.DefaultConfig().SustainedIssueWidth))
	if !errors.As(err, &se) || se.Status != 0 || !se.Transient() {
		t.Fatalf("unreachable collector: %v, want transient transport SubmitError", err)
	}
}

// TestHTTPSinkTransportFailover: only transport failures (the request
// never completed) move the sink to the next BaseURL — within the same
// Submit call, and sticky for the calls after it. Considered refusals
// (429/503/4xx) are the collector's admission policy and must stay with
// the endpoint that issued them.
func TestHTTPSinkTransportFailover(t *testing.T) {
	db := profile.NewDB(512, 0, cpu.DefaultConfig().SustainedIssueWidth)
	accept := func(hits *int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			*hits++
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"shard":"x"}`))
		})
	}

	// Primary dies before the first submit; the fallback answers.
	var fallbackHits int
	primary := httptest.NewServer(http.NotFoundHandler())
	deadURL := primary.URL
	primary.Close()
	fallback := httptest.NewServer(accept(&fallbackHits))
	defer fallback.Close()

	sink := NewHTTPSink(deadURL, fallback.URL)
	if err := sink.Submit(context.Background(), "a", db); err != nil {
		t.Fatalf("submit with live fallback: %v", err)
	}
	if fallbackHits != 1 {
		t.Fatalf("fallback served %d submits, want 1", fallbackHits)
	}
	// Sticky: the next submit goes straight to the endpoint that worked
	// instead of re-dialing the dead primary every call.
	if err := sink.Submit(context.Background(), "b", db); err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if fallbackHits != 2 {
		t.Fatalf("fallback served %d submits after sticky failover, want 2", fallbackHits)
	}
	sink.mu.Lock()
	current := sink.current
	sink.mu.Unlock()
	if current != 1 {
		t.Fatalf("sink current endpoint %d, want 1 (the fallback)", current)
	}

	// A considered refusal is returned to the caller, not failed over:
	// the healthy fallback must never see the shard.
	var healthyHits int
	refusing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full","kind":"queue-full"}`))
	}))
	defer refusing.Close()
	healthy := httptest.NewServer(accept(&healthyHits))
	defer healthy.Close()

	refused := NewHTTPSink(refusing.URL, healthy.URL)
	err := refused.Submit(context.Background(), "c", db)
	var se *SubmitError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests || se.Kind != "queue-full" {
		t.Fatalf("backpressured submit: %v, want 429 queue-full SubmitError", err)
	}
	if healthyHits != 0 {
		t.Fatalf("429 backpressure failed over to the fallback (%d hits); refusals must stick", healthyHits)
	}

	// Every endpoint unreachable: the transport error surfaces as
	// transient, so the fleet's backoff loop retries the whole list.
	allDead := NewHTTPSink(deadURL, "http://127.0.0.1:1")
	err = allDead.Submit(context.Background(), "d", db)
	if !errors.As(err, &se) || se.Status != 0 || !se.Transient() {
		t.Fatalf("all endpoints dead: %v, want transient transport SubmitError", err)
	}
}
