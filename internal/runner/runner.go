// Package runner is the campaign supervisor: it executes a queue of
// profiling jobs (benchmark × config × seed shards) across a bounded
// worker pool and merges the per-shard profile databases into one
// loss-corrected aggregate — the multi-run aggregation workflow
// hardware-counter PGO systems build on.
//
// PR 1 made a *single* run degrade gracefully under hardware faults; this
// package extends the same contract to software failures at fleet scale:
//
//   - Panic isolation: a worker panic is recovered, converted to a
//     PanicError with the captured stack, and dead-letters only that job;
//     the fleet keeps going.
//   - Real cancellation: each attempt runs under a context with the
//     configured wall-clock deadline, plumbed into
//     cpu.Pipeline.RunContext, so a wedged or slow job is cut off with a
//     typed cpu.ErrCanceled instead of stalling a worker forever.
//   - Retry with exponential backoff + deterministic jitter and seed
//     perturbation for transient failures (livelock, deadline, cycle
//     budget); a bounded attempt budget dead-letters the incurable.
//   - Crash-safe checkpointing: after every merged job the aggregate
//     database and a JSON manifest (completed IDs, per-job seeds and
//     attempts) are written atomically; Resume re-verifies the database
//     CRC envelope, quarantines corrupt checkpoints, and re-enqueues only
//     unfinished jobs — kill -9 loses at most one job of work.
//   - Graceful drain: cancel the Run context (pmsim wires SIGINT/SIGTERM
//     to it) and in-flight jobs get a grace period, then hard
//     cancellation, then a final checkpoint and a degradation report.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"profileme/internal/cpu"
	"profileme/internal/profile"
	"profileme/internal/stats"
)

// executeFunc runs one attempt of one job. The default is
// (*Fleet).simulate; tests substitute failure scripts to exercise the
// supervision machinery without a simulator in the loop.
type executeFunc func(ctx context.Context, job Job, seed uint64) (*jobArtifacts, error)

// Config parameterizes a Fleet. The zero value of every field gets a
// usable default from normalize, except Workers ≥ 1 which callers
// typically set explicitly.
type Config struct {
	// Workers is the worker-pool bound (default 1).
	Workers int
	// MaxAttempts is the per-job attempt budget before dead-lettering
	// (default 3).
	MaxAttempts int
	// Deadline bounds each attempt's wall-clock time (0 = none); it is
	// enforced as real cancellation inside the pipeline.
	Deadline time.Duration
	// Grace is how long in-flight jobs may keep running after the Run
	// context is canceled before they are hard-canceled (default 2s).
	Grace time.Duration
	// BackoffBase/BackoffMax shape the exponential retry backoff
	// (defaults 100ms / 5s); jitter of ±50% is applied deterministically.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxCycles bounds each attempt's simulated cycles (0 = none).
	MaxCycles int64
	// Interval is the mean sampling interval in fetched instructions
	// (default 512). Every shard uses it, keeping the shard databases
	// merge-compatible.
	Interval float64
	// BufferDepth is samples buffered per profiling interrupt (default 8).
	BufferDepth int
	// Seed is the fleet seed: per-job, per-attempt sampling seeds are
	// pure functions of it, so campaigns replay exactly (default 1).
	Seed uint64
	// CheckpointDir enables crash-safe checkpointing ("" = none).
	CheckpointDir string
	// CPU is the pipeline configuration (zero value = cpu.DefaultConfig).
	// Its WatchdogCycles composes with Deadline: the watchdog converts a
	// genuine livelock into a retryable typed error long before the
	// wall-clock deadline has to fire.
	CPU cpu.Config
	// Sink, when set, additionally delivers each completed shard to a
	// remote collector (pmsim -submit wires an HTTPSink to a pmsimd
	// daemon). Delivery failures degrade to local-only aggregation; they
	// never fail the job.
	Sink Sink
	// Log receives progress lines (nil = silent).
	Log io.Writer

	execute executeFunc // test seam; nil = simulate
}

// normalize fills defaults and validates.
func (c *Config) normalize() error {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.Grace == 0 {
		c.Grace = 2 * time.Second
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = c.BackoffBase
	}
	if c.Interval == 0 {
		c.Interval = 512
	}
	if c.BufferDepth == 0 {
		c.BufferDepth = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CPU.ROBSize == 0 {
		c.CPU = cpu.DefaultConfig()
	}
	switch {
	case c.Workers < 1:
		return fmt.Errorf("runner: %d workers", c.Workers)
	case c.MaxAttempts < 1:
		return fmt.Errorf("runner: attempt budget %d", c.MaxAttempts)
	case c.Deadline < 0:
		return fmt.Errorf("runner: negative deadline %v", c.Deadline)
	case c.Grace < 0:
		return fmt.Errorf("runner: negative grace %v", c.Grace)
	case c.BackoffBase < 0:
		return fmt.Errorf("runner: negative backoff %v", c.BackoffBase)
	case c.MaxCycles < 0:
		return fmt.Errorf("runner: negative cycle budget %d", c.MaxCycles)
	case c.Interval < 1:
		return fmt.Errorf("runner: sampling interval %v < 1", c.Interval)
	case c.BufferDepth < 1:
		return fmt.Errorf("runner: buffer depth %d", c.BufferDepth)
	}
	return c.CPU.Validate()
}

// Fleet is one campaign: a job ledger, an aggregate profile, and the
// checkpoint state. Build with New or Resume, run once with Run.
type Fleet struct {
	cfg       Config
	records   []*JobRecord
	byID      map[string]*JobRecord
	agg       *profile.DB
	gen       uint64
	completed []string
	totals    Totals
	drained   bool
	ran       bool
}

// New builds a fresh fleet. If a checkpoint directory is configured it
// must not already hold a campaign — resuming must be an explicit choice
// (Resume), never an accident that mixes two campaigns' samples.
func New(cfg Config, jobs []Job) (*Fleet, error) {
	f, err := build(cfg, jobs)
	if err != nil {
		return nil, err
	}
	if dir := f.cfg.CheckpointDir; dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: checkpoint dir: %w", err)
		}
		if gens, err := manifestGens(dir); err != nil {
			return nil, err
		} else if len(gens) > 0 {
			return nil, fmt.Errorf("runner: checkpoint directory %s already holds a campaign (generation %d): resume it or point at a clean directory", dir, gens[0])
		}
	}
	return f, nil
}

// Resume rebuilds a fleet from the newest good checkpoint in
// cfg.CheckpointDir: the manifest is reloaded, the aggregate database's
// CRC envelope re-verified (a corrupt checkpoint is quarantined to
// *.corrupt and the previous one used), completed and dead-lettered jobs
// are kept as-is, and only unfinished jobs are re-enqueued. With no
// usable checkpoint the campaign starts fresh.
func Resume(cfg Config, jobs []Job) (*Fleet, error) {
	f, err := build(cfg, jobs)
	if err != nil {
		return nil, err
	}
	if f.cfg.CheckpointDir == "" {
		return nil, errors.New("runner: resume needs a checkpoint directory")
	}
	if err := os.MkdirAll(f.cfg.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: checkpoint dir: %w", err)
	}
	m, db, err := loadCheckpoint(f.cfg.CheckpointDir, f.logf)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return f, nil // nothing (usable) to resume: fresh campaign
	}
	if m.FleetSeed != f.cfg.Seed {
		return nil, fmt.Errorf("runner: checkpoint fleet seed %d does not match configured seed %d (wrong campaign?)", m.FleetSeed, f.cfg.Seed)
	}
	for i := range m.Jobs {
		rec, ok := f.byID[m.Jobs[i].Job.ID]
		if !ok {
			continue // job no longer in the campaign; its samples stay merged
		}
		rec.Status = m.Jobs[i].Status
		rec.Attempts = m.Jobs[i].Attempts
		rec.Seed = m.Jobs[i].Seed
		rec.Error = m.Jobs[i].Error
	}
	f.agg = db
	f.gen = m.Generation
	f.completed = m.Completed
	f.totals = m.Totals
	return f, nil
}

func build(cfg Config, jobs []Job) (*Fleet, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, errors.New("runner: no jobs")
	}
	f := &Fleet{cfg: cfg, byID: make(map[string]*JobRecord, len(jobs))}
	for _, job := range jobs {
		if job.ID == "" {
			return nil, errors.New("runner: job with empty ID")
		}
		if _, dup := f.byID[job.ID]; dup {
			return nil, fmt.Errorf("runner: duplicate job ID %q", job.ID)
		}
		rec := &JobRecord{Job: job, Status: StatusPending}
		f.records = append(f.records, rec)
		f.byID[job.ID] = rec
	}
	return f, nil
}

// Profile returns the aggregate database (nil until a job completes).
func (f *Fleet) Profile() *profile.DB { return f.agg }

// Records returns a snapshot of the per-job ledger.
func (f *Fleet) Records() []JobRecord {
	out := make([]JobRecord, len(f.records))
	for i, rec := range f.records {
		out[i] = *rec
	}
	return out
}

// Generation returns the current checkpoint generation.
func (f *Fleet) Generation() uint64 { return f.gen }

type outKind int

const (
	outDone outKind = iota
	outDead
	outInterrupted
)

// outcome is what a worker reports back for one job. attempts and seed
// are absolute (post-resume) values for the manifest.
type outcome struct {
	rec      *JobRecord
	kind     outKind
	art      *jobArtifacts
	err      error
	attempts int
	seed     uint64
	// submitErr is the terminal remote-submission failure, when a sink is
	// configured and delivery exhausted its retries (nil otherwise).
	submitErr error
}

// errGraceExpired is the hard-cancellation cause after a drain grace
// period runs out.
var errGraceExpired = errors.New("runner: drain grace period expired")

// Run executes the campaign until every job is done or dead, or until ctx
// is canceled — then it drains: dispatch stops, in-flight jobs get
// cfg.Grace to finish, stragglers are hard-canceled (their attempt is not
// charged), a final checkpoint is written, and the report says what was
// completed, retried, dead-lettered, and lost. Run may be called once per
// Fleet.
func (f *Fleet) Run(ctx context.Context) (*Report, error) {
	if f.ran {
		return nil, errors.New("runner: fleet already ran; build a new one (or Resume)")
	}
	f.ran = true

	var pending []*JobRecord
	for _, rec := range f.records {
		if rec.Status == StatusPending {
			pending = append(pending, rec)
		}
	}
	if len(pending) == 0 {
		return f.buildReport(), f.checkpoint()
	}

	hardCtx, hardCancel := context.WithCancelCause(context.Background())
	defer hardCancel(nil)

	workers := f.cfg.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	queue := make(chan *JobRecord)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rec := range queue {
				results <- f.runJob(hardCtx, rec)
			}
		}()
	}
	go func() { // dispatcher: stops feeding the moment a drain starts
		defer close(queue)
		for _, rec := range pending {
			select {
			case queue <- rec:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() { wg.Wait(); close(results) }()

	// Drain timer: soft cancel -> grace -> hard cancel.
	supDone := make(chan struct{})
	defer close(supDone)
	go func() {
		select {
		case <-supDone:
			return
		case <-ctx.Done():
		}
		t := time.NewTimer(f.cfg.Grace)
		defer t.Stop()
		select {
		case <-t.C:
			hardCancel(errGraceExpired)
		case <-supDone:
		}
	}()

	var firstErr error
	for out := range results {
		rec := out.rec
		rec.Attempts = out.attempts
		rec.Seed = out.seed
		switch out.kind {
		case outDone:
			f.absorb(out)
			f.logf("job %s done (attempt %d)", rec.Job.ID, out.attempts)
		case outDead:
			rec.Status = StatusDead
			rec.Error = out.err.Error()
			f.logf("job %s dead-lettered after %d attempts: %v", rec.Job.ID, out.attempts, out.err)
		case outInterrupted:
			// Stays pending; a resumed campaign re-runs it.
			f.logf("job %s interrupted by drain", rec.Job.ID)
			continue
		}
		if err := f.checkpoint(); err != nil && firstErr == nil {
			// Progress can no longer be persisted: stop the campaign
			// rather than burn work that a crash would lose wholesale.
			firstErr = err
			hardCancel(err)
		}
	}

	if ctx.Err() != nil {
		f.drained = true
	}
	if err := f.checkpoint(); err != nil && firstErr == nil {
		firstErr = err
	}
	return f.buildReport(), firstErr
}

// absorb merges a completed job's shard database into the aggregate and
// rolls its run totals into the campaign ledger.
func (f *Fleet) absorb(out outcome) {
	rec := out.rec
	if f.agg == nil {
		f.agg = out.art.db
	} else if err := f.agg.Merge(out.art.db); err != nil {
		// A shard that cannot merge (config drift, self-handoff bug) is a
		// permanent failure of that job, not of the fleet.
		rec.Status = StatusDead
		rec.Error = err.Error()
		return
	}
	rec.Status = StatusDone
	rec.Error = ""
	f.completed = append(f.completed, rec.Job.ID)
	if f.cfg.Sink != nil {
		if out.submitErr == nil {
			f.totals.ShardsSubmitted++
		} else {
			f.totals.ShardsSubmitFailed++
			f.logf("job %s: shard not delivered to collector: %v (kept in local aggregate only)",
				rec.Job.ID, out.submitErr)
		}
	}
	f.totals.Retired += out.art.res.Retired
	f.totals.Cycles += out.art.res.Cycles
	f.totals.SamplesCaptured += out.art.stats.Captured()
	f.totals.InterruptsDropped += out.art.faults.InterruptsDropped
	f.totals.SamplesCorrupted += out.art.faults.SamplesCorrupted
}

// runJob drives one job to a terminal outcome: attempt, classify, back
// off, retry with a perturbed seed — or bail out when the fleet is
// hard-canceled (the chopped attempt is not charged to the budget).
func (f *Fleet) runJob(hardCtx context.Context, rec *JobRecord) outcome {
	attempts := rec.Attempts
	seed := rec.Seed
	for {
		if hardCtx.Err() != nil {
			return outcome{rec: rec, kind: outInterrupted, attempts: attempts, seed: seed}
		}
		attempts++
		seed = jobSeed(f.cfg.Seed, rec.Job.ID, attempts)
		actx, cancel := hardCtx, context.CancelFunc(func() {})
		if f.cfg.Deadline > 0 {
			actx, cancel = context.WithTimeoutCause(hardCtx, f.cfg.Deadline,
				fmt.Errorf("runner: attempt deadline %v expired", f.cfg.Deadline))
		}
		art, err := f.exec(actx, rec.Job, seed)
		cancel()
		if err == nil {
			// Remote delivery happens in the worker (network I/O overlaps
			// other jobs' simulation) and never re-runs the simulation: the
			// artifacts are already in hand, only the POST retries.
			return outcome{rec: rec, kind: outDone, art: art, attempts: attempts, seed: seed,
				submitErr: f.submitShard(hardCtx, rec.Job.ID, art.db)}
		}
		if hardCtx.Err() != nil {
			return outcome{rec: rec, kind: outInterrupted, attempts: attempts - 1, seed: seed}
		}
		f.logf("job %s attempt %d failed: %v", rec.Job.ID, attempts, err)
		if !transientErr(err) || attempts >= f.cfg.MaxAttempts {
			return outcome{rec: rec, kind: outDead, err: err, attempts: attempts, seed: seed}
		}
		select {
		case <-time.After(f.backoff(rec.Job.ID, attempts)):
		case <-hardCtx.Done():
			return outcome{rec: rec, kind: outInterrupted, attempts: attempts, seed: seed}
		}
	}
}

// exec runs one attempt with panic isolation: a panic anywhere below
// (simulator bug, workload bug) becomes a PanicError carrying the stack,
// and only this job pays for it.
func (f *Fleet) exec(ctx context.Context, job Job, seed uint64) (art *jobArtifacts, err error) {
	defer func() {
		if r := recover(); r != nil {
			art, err = nil, &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	if f.cfg.execute != nil {
		return f.cfg.execute(ctx, job, seed)
	}
	return f.simulate(ctx, job, seed)
}

// backoff returns the sleep before retry attempt+1: exponential in the
// attempt number, capped, with ±50% jitter drawn from a seed-derived RNG
// so the whole campaign — including its backoff schedule — replays
// deterministically.
func (f *Fleet) backoff(id string, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := f.cfg.BackoffBase << uint(shift)
	if d <= 0 || d > f.cfg.BackoffMax {
		d = f.cfg.BackoffMax
	}
	rng := stats.NewRNG(jobSeed(f.cfg.Seed, id, attempt) ^ 0xb0ff)
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

func (f *Fleet) logf(format string, args ...any) {
	if f.cfg.Log == nil {
		return
	}
	fmt.Fprintf(f.cfg.Log, "runner: "+format+"\n", args...)
}
