package core

import (
	"fmt"

	"profileme/internal/stats"
)

// CountMode selects what the fetched-instruction counter decrements on
// (§4.1.1 discusses the tradeoff).
type CountMode uint8

const (
	// CountInstructions decrements once per instruction fetched on the
	// predicted control path. Every selection lands on a real
	// predicted-path instruction, but the hardware is more complex.
	CountInstructions CountMode = iota
	// CountFetchOpportunities decrements once per fetch opportunity
	// (FetchWidth per cycle). Simpler hardware, but selections may land
	// on empty slots or instructions outside the predicted path,
	// reducing useful sample yield — the paper leaves the choice open
	// and this implementation supports both for the ablation.
	CountFetchOpportunities
)

// String returns the mode name.
func (m CountMode) String() string {
	switch m {
	case CountInstructions:
		return "instructions"
	case CountFetchOpportunities:
		return "fetch-opportunities"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// IntervalMode selects how sampling intervals are randomized.
type IntervalMode uint8

const (
	// IntervalGeometric draws geometric intervals: every fetch is
	// selected independently with probability 1/mean. Unbiased and
	// alias-free; the default.
	IntervalGeometric IntervalMode = iota
	// IntervalUniform draws uniformly from [1, 2*mean-1]. Also unbiased.
	IntervalUniform
	// IntervalFixed uses the constant interval mean. Biased: it aliases
	// with loop periods. Exists for the randomization ablation.
	IntervalFixed
)

// String returns the mode name.
func (m IntervalMode) String() string {
	switch m {
	case IntervalGeometric:
		return "geometric"
	case IntervalUniform:
		return "uniform"
	case IntervalFixed:
		return "fixed"
	default:
		return fmt.Sprintf("interval(%d)", uint8(m))
	}
}

// Config parameterizes a ProfileMe Unit.
type Config struct {
	// Paired enables paired sampling (two register sets, §4.2).
	Paired bool
	// Ways generalizes to N-way sampling (§4.1.2: the tag needs
	// ceil(log2(N+1)) bits and N Profile Register sets): each sample
	// carries Ways records, consecutive selections separated by
	// independent uniform [1, Window] minor intervals. 0 and 1 mean
	// single-instruction sampling; 2 is equivalent to Paired. Setting
	// Paired with Ways <= 1 implies Ways = 2.
	Ways int
	// MeanInterval is the mean major sampling interval S, in fetched
	// instructions (or fetch opportunities, per CountMode).
	MeanInterval float64
	// Window is W, the width of the minor (intra-pair) interval: the
	// second instruction of a pair is selected uniformly 1..Window
	// fetches after the first. It should cover the maximum number of
	// in-flight instructions (§5.2.1).
	Window int
	// BufferDepth is the number of completed samples buffered before an
	// interrupt is raised (§4.3). 1 means interrupt per sample.
	BufferDepth int
	// CountMode selects instruction vs fetch-opportunity counting.
	CountMode CountMode
	// IntervalMode selects the interval randomization.
	IntervalMode IntervalMode
	// Seed seeds the interval generator (stands in for the software
	// writing pseudo-random values into the fetched-instruction counter).
	Seed uint64
}

// DefaultConfig returns single-instruction sampling with a mean interval
// of 4096 fetched instructions and per-sample interrupts.
func DefaultConfig() Config {
	return Config{
		MeanInterval: 4096,
		Window:       80,
		BufferDepth:  1,
		CountMode:    CountInstructions,
		IntervalMode: IntervalGeometric,
		Seed:         1,
	}
}

// ways returns the normalized record count per sample.
func (c Config) ways() int {
	w := c.Ways
	if w < 1 {
		w = 1
	}
	if c.Paired && w < 2 {
		w = 2
	}
	return w
}

// MaxWays bounds N-way sampling: the hardware cost is Ways register sets,
// so implementations keep it tiny (the paper builds one or two).
const MaxWays = 8

// Validate reports a configuration problem, or nil.
func (c Config) Validate() error {
	switch {
	case c.MeanInterval < 1:
		return fmt.Errorf("core: mean interval %v < 1", c.MeanInterval)
	case c.BufferDepth < 1:
		return fmt.Errorf("core: buffer depth %d < 1", c.BufferDepth)
	case c.Ways < 0:
		return fmt.Errorf("core: negative ways %d", c.Ways)
	case c.Window < 0:
		return fmt.Errorf("core: negative window %d", c.Window)
	case c.ways() > MaxWays:
		return fmt.Errorf("core: %d-way sampling exceeds the %d-way hardware bound", c.ways(), MaxWays)
	case c.ways() > 1 && c.Window < 1:
		return fmt.Errorf("core: multi-way sampling needs a positive window")
	}
	return nil
}

// Stats counts what the Unit observed; used to quantify sample yield and
// interrupt amortization. The fault counters (overwritten, corrupted,
// suppressed) stay zero unless a FaultInjector is attached.
type Stats struct {
	Selected        uint64 // fetch opportunities selected for profiling
	EmptySelected   uint64 // selections that held no instruction
	OffPath         uint64 // selections that held a bad-path instruction
	SamplesBuffered uint64 // completed samples pushed to the buffer
	SamplesDropped  uint64 // samples lost because the buffer was full
	Interrupts      uint64 // interrupts raised

	// SamplesOverwritten counts buffered samples clobbered by a later
	// completion while interrupt delivery was delayed — the paper's
	// sample-register overwrite hazard, reachable only via fault injection.
	SamplesOverwritten uint64
	// SamplesCorrupted counts samples bit-flipped by fault injection on
	// their way out of Drain.
	SamplesCorrupted uint64
	// InterruptsSuppressed counts interrupt raises swallowed by fault
	// injection (the line stays low; the buffer keeps overflowing).
	InterruptsSuppressed uint64
}

// Captured returns the total number of samples the hardware completed,
// whether or not software ever saw them.
func (s Stats) Captured() uint64 {
	return s.SamplesBuffered + s.SamplesDropped + s.SamplesOverwritten
}

// Lost returns the samples captured by the hardware but never delivered to
// software (dropped on a full buffer or overwritten during a delayed
// interrupt). Random losses here are what the paper argues profiles must
// tolerate (§4.3, §6); profile.DB.RecordLoss consumes this to keep its
// estimators unbiased.
func (s Stats) Lost() uint64 { return s.SamplesDropped + s.SamplesOverwritten }

// FaultInjector is the hook surface a fault-injection plan presents to the
// Unit (internal/faultinject implements it). Every method must be
// deterministic given the plan's seed: the Unit consults the hooks in a
// fixed order from a single-threaded simulation, so seeded plans reproduce
// exactly. A nil injector means fault-free operation.
type FaultInjector interface {
	// SuppressInterrupt reports whether this interrupt raise is dropped.
	// The line stays low; the full buffer keeps dropping samples until a
	// later capture raises it successfully.
	SuppressInterrupt() bool
	// OverwriteOnFull reports whether a sample completing into a full
	// buffer overwrites the newest buffered entry (the register-overwrite
	// hazard of delayed interrupt delivery) instead of being dropped.
	OverwriteOnFull() bool
	// CorruptDrained may bit-flip fields of the samples software is about
	// to read; it returns how many samples it mutated.
	CorruptDrained(ss []Sample) int
}

// Unit is the per-processor ProfileMe hardware. The pipeline drives it;
// profiling software drains it. Not safe for concurrent use (it is
// clocked by a single simulated pipeline).
type Unit struct {
	cfg  Config
	ways int
	rng  *stats.RNG

	counter  int64 // fetched-instruction counter; selection at zero
	minor    int64 // intra-sample counter toward the next selection
	nextSel  int   // index of the next tag to select; == ways when all selected
	fetchSeq uint64

	recs []Record
	live []bool // tag selected
	done []bool // tag complete (retired or aborted)

	buffer    []Sample
	interrupt bool
	stats     Stats
	faults    FaultInjector
}

// NewUnit returns an armed Unit.
func NewUnit(cfg Config) (*Unit, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := cfg.ways()
	u := &Unit{
		cfg: cfg, ways: w, rng: stats.NewRNG(cfg.Seed),
		recs: make([]Record, w), live: make([]bool, w), done: make([]bool, w),
	}
	u.arm()
	return u, nil
}

// Ways returns the number of records per sample.
func (u *Unit) Ways() int { return u.ways }

// MustNewUnit is NewUnit, panicking on error.
func MustNewUnit(cfg Config) *Unit {
	u, err := NewUnit(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

// Config returns the Unit's configuration.
func (u *Unit) Config() Config { return u.cfg }

// Stats returns the Unit's counters.
func (u *Unit) Stats() Stats { return u.stats }

// AttachFaults arms a fault-injection plan (nil detaches). The Unit keeps
// honest per-fault accounting in Stats either way, so software can always
// reconstruct the delivered-vs-lost split.
func (u *Unit) AttachFaults(fi FaultInjector) { u.faults = fi }

// arm draws a fresh major interval and resets per-sample state. In real
// hardware the interrupt handler writes the counter; with buffering the
// hardware re-arms itself (§4.3) — the Unit's internal generator models
// both.
func (u *Unit) arm() {
	u.counter = int64(u.drawMajor())
	u.nextSel = 0
	for i := 0; i < u.ways; i++ {
		u.live[i], u.done[i] = false, false
	}
}

func (u *Unit) drawMajor() int {
	switch u.cfg.IntervalMode {
	case IntervalUniform:
		return u.rng.UniformInterval(int(u.cfg.MeanInterval))
	case IntervalFixed:
		return int(u.cfg.MeanInterval)
	default:
		return u.rng.Geometric(u.cfg.MeanInterval)
	}
}

// Tag values: NoTag means "not profiled".
const NoTag = -1

// OnFetch presents one fetch opportunity to the Unit and returns the
// ProfileMe tag assigned to it, or NoTag. The pipeline must call this for
// every fetch opportunity, in order:
//
//	cycle     — current cycle
//	pc        — PC of the slot (meaningful when hasInst)
//	hasInst   — the slot holds an instruction
//	onPath    — the instruction is on the predicted control path
//	history   — global branch history register at this fetch
//	context   — address space / thread id
//
// In CountInstructions mode only on-path instruction slots decrement the
// counter; in CountFetchOpportunities mode every opportunity does.
func (u *Unit) OnFetch(cycle int64, pc uint64, hasInst, onPath bool, history uint64, historyBits int, context uint64) int {
	counts := hasInst && onPath
	if u.cfg.CountMode == CountFetchOpportunities {
		counts = true
	}
	if counts {
		// fetchSeq counts the same units the selection counter does, so
		// fetch distances between records are in those units: a pair at
		// FetchDistance 1 is two consecutively fetched (predicted-path)
		// instructions regardless of wrong-path fetches or fetch bubbles
		// in between.
		u.fetchSeq++
	}
	if u.nextSel >= u.ways || !counts {
		return NoTag
	}

	if u.nextSel == 0 {
		u.counter--
		if u.counter > 0 {
			return NoTag
		}
	} else {
		u.minor--
		if u.minor > 0 {
			return NoTag
		}
	}
	tag := u.nextSel

	u.stats.Selected++
	r := newRecord()
	r.Context = context
	r.PC = pc
	r.History = history
	r.HistoryBits = historyBits
	r.StageCycle[StageFetch] = cycle
	r.FetchSeq = u.fetchSeq
	switch {
	case !hasInst:
		r.Events |= EvNoInstruction
		u.stats.EmptySelected++
	case !onPath:
		r.Events |= EvOffPath
		u.stats.OffPath++
	}
	u.recs[tag] = r
	u.live[tag] = true
	u.done[tag] = false

	u.nextSel++
	if u.nextSel < u.ways {
		u.minor = int64(u.rng.IntRange(1, u.cfg.Window))
	}

	// An empty slot has nothing to track through the pipeline: complete
	// it immediately as an aborted sample.
	if !hasInst {
		u.Complete(tag, false, TrapNone, cycle)
	}
	return tag
}

// validTag reports whether tag names a live record.
func (u *Unit) validTag(tag int) bool {
	return tag >= 0 && tag < u.ways && u.live[tag]
}

// SetStage records the cycle the tagged instruction reached a stage.
func (u *Unit) SetStage(tag int, st Stage, cycle int64) {
	if !u.validTag(tag) {
		return
	}
	u.recs[tag].StageCycle[st] = cycle
}

// AddEvents ORs event bits into the tagged instruction's event register.
func (u *Unit) AddEvents(tag int, ev Event) {
	if !u.validTag(tag) {
		return
	}
	u.recs[tag].Events |= ev
}

// SetAddr records the effective address (loads/stores) or indirect target.
func (u *Unit) SetAddr(tag int, addr uint64) {
	if !u.validTag(tag) {
		return
	}
	u.recs[tag].Addr = addr
	u.recs[tag].AddrValid = true
}

// SetLoadComplete records when a load's value arrived.
func (u *Unit) SetLoadComplete(tag int, cycle int64) {
	if !u.validTag(tag) {
		return
	}
	u.recs[tag].LoadComplete = cycle
}

// Complete marks the tagged instruction finished: retired, or aborted with
// a reason. When every selected instruction of the current sample is
// finished, the sample moves to the buffer and, if the buffer has reached
// BufferDepth, the interrupt line is raised.
func (u *Unit) Complete(tag int, retired bool, reason TrapReason, cycle int64) {
	if !u.validTag(tag) || u.done[tag] {
		return
	}
	r := &u.recs[tag]
	r.StageCycle[StageRetire] = cycle
	if retired {
		r.Events |= EvRetired
		r.Trap = TrapNone
	} else {
		r.Trap = reason
	}
	u.done[tag] = true

	if u.sampleFinished() {
		u.capture()
	}
}

// sampleFinished reports whether every instruction selected for the
// current sample has completed. While a later selection is still pending
// the sample is not finished: the interrupt must wait for all records
// (§4.2).
func (u *Unit) sampleFinished() bool {
	if u.nextSel < u.ways {
		return false
	}
	any := false
	for tag := 0; tag < u.ways; tag++ {
		if u.live[tag] {
			any = true
			if !u.done[tag] {
				return false
			}
		}
	}
	return any
}

// capture moves the finished sample into the buffer and re-arms.
func (u *Unit) capture() {
	s := Sample{First: u.recs[0]}
	if u.ways > 1 && u.live[1] {
		s.Paired = true
		s.Second = u.recs[1]
		s.FetchDistance = u.recs[1].FetchSeq - u.recs[0].FetchSeq
		s.FetchLatency = u.recs[1].StageCycle[StageFetch] - u.recs[0].StageCycle[StageFetch]
		for tag := 2; tag < u.ways; tag++ {
			if !u.live[tag] {
				break
			}
			prev := &u.recs[tag-1]
			s.Rest = append(s.Rest, u.recs[tag])
			s.RestDistances = append(s.RestDistances, u.recs[tag].FetchSeq-prev.FetchSeq)
			s.RestLatencies = append(s.RestLatencies,
				u.recs[tag].StageCycle[StageFetch]-prev.StageCycle[StageFetch])
		}
	}
	if len(u.buffer) >= u.cfg.BufferDepth {
		// Buffer full and software has not drained: hardware drops the
		// sample (real designs stall sampling; dropping is equivalent
		// for statistics and simpler). Under an injected delayed
		// interrupt, the new completion instead overwrites the newest
		// register set — the paper's overwrite hazard.
		if u.faults != nil && u.faults.OverwriteOnFull() {
			u.buffer[len(u.buffer)-1] = s
			u.stats.SamplesOverwritten++
		} else {
			u.stats.SamplesDropped++
		}
	} else {
		u.buffer = append(u.buffer, s)
		u.stats.SamplesBuffered++
	}
	if len(u.buffer) >= u.cfg.BufferDepth && !u.interrupt {
		if u.faults != nil && u.faults.SuppressInterrupt() {
			u.stats.InterruptsSuppressed++
		} else {
			u.interrupt = true
			u.stats.Interrupts++
		}
	}
	u.arm()
}

// FlushInFlight aborts any selected-but-unfinished instructions (end of
// run or pipeline drain) so their partial records are still delivered.
func (u *Unit) FlushInFlight(cycle int64) {
	changed := false
	for tag := 0; tag < u.ways; tag++ {
		if u.live[tag] && !u.done[tag] {
			u.recs[tag].StageCycle[StageRetire] = cycle
			u.recs[tag].Trap = TrapNeverDone
			u.done[tag] = true
			changed = true
		}
	}
	if u.nextSel > 0 && u.nextSel < u.ways {
		// Later selections never happened; deliver what was captured.
		u.nextSel = u.ways
		changed = true
	}
	if changed && u.sampleFinished() {
		u.capture()
	}
}

// InterruptPending reports whether the interrupt line is raised.
func (u *Unit) InterruptPending() bool { return u.interrupt }

// Drain returns the buffered samples and lowers the interrupt line: the
// profiling software's read of the Profile Registers. An attached fault
// plan may bit-flip fields on the way out (a register read racing the
// hardware); software must validate what it consumes.
func (u *Unit) Drain() []Sample {
	out := u.buffer
	u.buffer = nil
	u.interrupt = false
	if u.faults != nil && len(out) > 0 {
		u.stats.SamplesCorrupted += uint64(u.faults.CorruptDrained(out))
	}
	return out
}

// Recycle hands a slice previously returned by Drain back to the unit so
// its backing storage carries the next buffer fill, making the steady
// drain/refill cycle allocation-free. Only call it once the samples have
// been fully consumed: after Recycle the slice's contents will be
// overwritten by future captures. Callers that retain samples must copy
// the Sample values out first (per-sample Rest/RestDistances backings are
// freshly allocated each capture and are never reused).
func (u *Unit) Recycle(buf []Sample) {
	if u.buffer == nil && cap(buf) > 0 {
		u.buffer = buf[:0]
	}
}

// Pending returns how many samples are buffered (for tests and yield
// accounting) without draining them.
func (u *Unit) Pending() int { return len(u.buffer) }
