package core

import (
	"strings"
	"testing"
	"testing/quick"

	"profileme/internal/stats"
)

// feed pushes n on-path instruction fetch opportunities into u, one per
// cycle starting at cycle c0, completing each selected instruction
// immediately at cycle+5 as retired. It returns the tags assigned.
func feed(u *Unit, c0 int64, n int, complete bool) []int {
	var tags []int
	for i := 0; i < n; i++ {
		cyc := c0 + int64(i)
		tag := u.OnFetch(cyc, uint64(0x100+4*i), true, true, 0, 12, 7)
		if tag != NoTag {
			tags = append(tags, tag)
			if complete {
				u.Complete(tag, true, TrapNone, cyc+5)
			}
		}
	}
	return tags
}

func singleCfg(interval float64) Config {
	cfg := DefaultConfig()
	cfg.MeanInterval = interval
	cfg.IntervalMode = IntervalFixed
	return cfg
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MeanInterval: 0, BufferDepth: 1},
		{MeanInterval: 10, BufferDepth: 0},
		{MeanInterval: 10, BufferDepth: 1, Paired: true, Window: 0},
	}
	for i, cfg := range bad {
		if _, err := NewUnit(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := NewUnit(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestFixedIntervalSelection(t *testing.T) {
	u := MustNewUnit(singleCfg(10))
	tags := feed(u, 0, 100, true)
	if len(tags) != 10 {
		t.Fatalf("selected %d, want 10", len(tags))
	}
	if u.Stats().Selected != 10 {
		t.Fatalf("stats.Selected = %d", u.Stats().Selected)
	}
}

func TestGeometricIntervalMeanRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeanInterval = 50
	u := MustNewUnit(cfg)
	tags := feed(u, 0, 100000, true)
	got := float64(len(tags))
	if got < 1700 || got > 2300 {
		t.Fatalf("selected %v of 100000 at mean interval 50", got)
	}
}

func TestSampleContents(t *testing.T) {
	u := MustNewUnit(singleCfg(3))
	// Fetch two slots, third is selected.
	u.OnFetch(10, 0x100, true, true, 0b1011, 12, 42)
	u.OnFetch(11, 0x104, true, true, 0b1011, 12, 42)
	tag := u.OnFetch(12, 0x108, true, true, 0b1011, 12, 42)
	if tag != 0 {
		t.Fatalf("tag = %d", tag)
	}
	u.SetStage(tag, StageMap, 14)
	u.SetStage(tag, StageDataReady, 15)
	u.SetStage(tag, StageIssue, 16)
	u.AddEvents(tag, EvDCacheMiss)
	u.SetAddr(tag, 0xbeef)
	u.SetLoadComplete(tag, 40)
	u.SetStage(tag, StageRetireReady, 41)
	u.Complete(tag, true, TrapNone, 45)

	if !u.InterruptPending() {
		t.Fatal("no interrupt after completed sample with depth 1")
	}
	samples := u.Drain()
	if len(samples) != 1 {
		t.Fatalf("%d samples", len(samples))
	}
	r := samples[0].First
	if r.PC != 0x108 || r.Context != 42 || r.History != 0b1011 || r.HistoryBits != 12 {
		t.Fatalf("record = %+v", r)
	}
	if !r.Retired() || !r.Events.Has(EvDCacheMiss) {
		t.Fatalf("events = %v", r.Events)
	}
	if !r.AddrValid || r.Addr != 0xbeef {
		t.Fatalf("addr = %#x/%v", r.Addr, r.AddrValid)
	}
	if lat, ok := r.Latency(StageFetch, StageMap); !ok || lat != 2 {
		t.Fatalf("fetch->map = %d, %v", lat, ok)
	}
	if lat, ok := r.Latency(StageIssue, StageRetireReady); !ok || lat != 25 {
		t.Fatalf("issue->retire-ready = %d, %v", lat, ok)
	}
	if lat, ok := r.MemLatency(); !ok || lat != 24 {
		t.Fatalf("mem latency = %d, %v", lat, ok)
	}
	if from, to, ok := r.InProgress(); !ok || from != 12 || to != 41 {
		t.Fatalf("in progress = %d..%d, %v", from, to, ok)
	}
	if u.InterruptPending() {
		t.Fatal("interrupt not cleared by drain")
	}
}

func TestAbortedSampleVisible(t *testing.T) {
	u := MustNewUnit(singleCfg(1))
	tag := u.OnFetch(0, 0x200, true, true, 0, 12, 0)
	u.Complete(tag, false, TrapBadPath, 9)
	s := u.Drain()
	if len(s) != 1 {
		t.Fatalf("%d samples", len(s))
	}
	r := s[0].First
	if r.Retired() {
		t.Fatal("aborted instruction marked retired")
	}
	if r.Trap != TrapBadPath {
		t.Fatalf("trap = %v", r.Trap)
	}
	if _, ok := r.Latency(StageFetch, StageIssue); ok {
		t.Fatal("latency to a never-reached stage should be unavailable")
	}
	if lat, ok := r.Latency(StageFetch, StageRetire); !ok || lat != 9 {
		t.Fatalf("fetch->retire = %d, %v", lat, ok)
	}
}

func TestOffPathSelection(t *testing.T) {
	u := MustNewUnit(singleCfg(2))
	u.OnFetch(0, 0x100, true, true, 0, 12, 0)
	tag := u.OnFetch(1, 0x999, true, false, 0, 12, 0) // off-path slot
	if tag != NoTag {
		t.Fatal("instruction-count mode must not select off-path slots")
	}

	cfg := singleCfg(2)
	cfg.CountMode = CountFetchOpportunities
	u2 := MustNewUnit(cfg)
	u2.OnFetch(0, 0x100, true, true, 0, 12, 0)
	tag = u2.OnFetch(1, 0x999, true, false, 0, 12, 0)
	if tag == NoTag {
		t.Fatal("fetch-opportunity mode should select off-path slots")
	}
	u2.Complete(tag, false, TrapBadPath, 5)
	s := u2.Drain()
	if !s[0].First.Events.Has(EvOffPath) {
		t.Fatalf("events = %v", s[0].First.Events)
	}
	if u2.Stats().OffPath != 1 {
		t.Fatalf("stats = %+v", u2.Stats())
	}
}

func TestEmptySlotSelection(t *testing.T) {
	cfg := singleCfg(2)
	cfg.CountMode = CountFetchOpportunities
	u := MustNewUnit(cfg)
	u.OnFetch(0, 0x100, true, true, 0, 12, 0)
	tag := u.OnFetch(1, 0x104, false, false, 0, 12, 0) // fetcher stalled
	if tag == NoTag {
		t.Fatal("empty slot not selected in fetch-opportunity mode")
	}
	// Empty slots complete immediately.
	if !u.InterruptPending() {
		t.Fatal("empty-slot sample not delivered")
	}
	s := u.Drain()
	if !s[0].First.Events.Has(EvNoInstruction) {
		t.Fatalf("events = %v", s[0].First.Events)
	}
	if u.Stats().EmptySelected != 1 {
		t.Fatalf("stats = %+v", u.Stats())
	}
}

func TestBuffering(t *testing.T) {
	cfg := singleCfg(1)
	cfg.BufferDepth = 4
	u := MustNewUnit(cfg)
	for i := 0; i < 3; i++ {
		tag := u.OnFetch(int64(i), uint64(0x100+4*i), true, true, 0, 12, 0)
		u.Complete(tag, true, TrapNone, int64(i)+3)
		if u.InterruptPending() {
			t.Fatalf("interrupt raised at %d buffered samples", i+1)
		}
	}
	tag := u.OnFetch(3, 0x10c, true, true, 0, 12, 0)
	u.Complete(tag, true, TrapNone, 6)
	if !u.InterruptPending() {
		t.Fatal("interrupt not raised at buffer depth")
	}
	if got := len(u.Drain()); got != 4 {
		t.Fatalf("drained %d", got)
	}
	st := u.Stats()
	if st.Interrupts != 1 || st.SamplesBuffered != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	cfg := singleCfg(1)
	cfg.BufferDepth = 1
	u := MustNewUnit(cfg)
	t1 := u.OnFetch(0, 0x100, true, true, 0, 12, 0)
	u.Complete(t1, true, TrapNone, 2)
	// Software has not drained; next sample completes and is dropped.
	t2 := u.OnFetch(1, 0x104, true, true, 0, 12, 0)
	u.Complete(t2, true, TrapNone, 3)
	if got := u.Stats().SamplesDropped; got != 1 {
		t.Fatalf("dropped = %d", got)
	}
	if got := len(u.Drain()); got != 1 {
		t.Fatalf("drained %d", got)
	}
}

func TestPairedSampling(t *testing.T) {
	cfg := Config{
		Paired: true, MeanInterval: 5, Window: 4, BufferDepth: 1,
		CountMode: CountInstructions, IntervalMode: IntervalFixed, Seed: 3,
	}
	u := MustNewUnit(cfg)
	var first, second int
	for i := 0; i < 40 && !u.InterruptPending(); i++ {
		tag := u.OnFetch(int64(i), uint64(0x100+4*i), true, true, 0, 12, 0)
		switch tag {
		case 0:
			first = i
			u.Complete(tag, true, TrapNone, int64(i)+20)
		case 1:
			second = i
			u.Complete(tag, true, TrapNone, int64(i)+20)
		}
	}
	if !u.InterruptPending() {
		t.Fatal("paired sample never completed")
	}
	s := u.Drain()[0]
	if !s.Paired {
		t.Fatal("sample not paired")
	}
	wantDist := uint64(second - first)
	if wantDist < 1 || wantDist > 4 {
		t.Fatalf("realized minor interval %d outside window", wantDist)
	}
	if s.FetchDistance != wantDist {
		t.Fatalf("FetchDistance = %d, want %d", s.FetchDistance, wantDist)
	}
	if s.FetchLatency != int64(second-first) {
		t.Fatalf("FetchLatency = %d", s.FetchLatency)
	}
	if s.First.PC != uint64(0x100+4*first) || s.Second.PC != uint64(0x100+4*second) {
		t.Fatalf("pair PCs = %#x, %#x", s.First.PC, s.Second.PC)
	}
}

func TestPairedInterruptWaitsForBoth(t *testing.T) {
	cfg := Config{
		Paired: true, MeanInterval: 2, Window: 3, BufferDepth: 1,
		CountMode: CountInstructions, IntervalMode: IntervalFixed, Seed: 1,
	}
	u := MustNewUnit(cfg)
	var tag0 int = NoTag
	i := 0
	for ; tag0 == NoTag; i++ {
		tag0 = u.OnFetch(int64(i), uint64(0x100+4*i), true, true, 0, 12, 0)
	}
	// First completes before the second is even selected.
	u.Complete(tag0, true, TrapNone, int64(i)+1)
	if u.InterruptPending() {
		t.Fatal("interrupt before second sample selected")
	}
	var tag1 int = NoTag
	for ; tag1 == NoTag; i++ {
		tag1 = u.OnFetch(int64(i), uint64(0x100+4*i), true, true, 0, 12, 0)
	}
	if u.InterruptPending() {
		t.Fatal("interrupt before second sample completed")
	}
	u.Complete(tag1, true, TrapNone, int64(i)+5)
	if !u.InterruptPending() {
		t.Fatal("interrupt missing after both completed")
	}
}

func TestPairedMinorIntervalUniform(t *testing.T) {
	cfg := Config{
		Paired: true, MeanInterval: 10, Window: 8, BufferDepth: 1,
		CountMode: CountInstructions, IntervalMode: IntervalGeometric, Seed: 9,
	}
	u := MustNewUnit(cfg)
	counts := make(map[uint64]int)
	for i := 0; i < 400000; i++ {
		tag := u.OnFetch(int64(i), uint64(4*i), true, true, 0, 12, 0)
		if tag != NoTag {
			u.Complete(tag, true, TrapNone, int64(i)+1)
		}
		if u.InterruptPending() {
			for _, s := range u.Drain() {
				if s.Paired {
					counts[s.FetchDistance]++
				}
			}
		}
	}
	if len(counts) != 8 {
		t.Fatalf("distances seen: %v", counts)
	}
	total := 0
	for d, c := range counts {
		if d < 1 || d > 8 {
			t.Fatalf("distance %d outside window", d)
		}
		total += c
	}
	for d, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.09 || frac > 0.16 {
			t.Errorf("distance %d has fraction %.3f, want ~0.125", d, frac)
		}
	}
}

func TestFlushInFlight(t *testing.T) {
	u := MustNewUnit(singleCfg(1))
	tag := u.OnFetch(0, 0x100, true, true, 0, 12, 0)
	u.SetStage(tag, StageMap, 2)
	u.FlushInFlight(50)
	s := u.Drain()
	if len(s) != 1 {
		t.Fatalf("%d samples after flush", len(s))
	}
	if s[0].First.Trap != TrapNeverDone {
		t.Fatalf("trap = %v", s[0].First.Trap)
	}
}

func TestFlushPairedPendingSecond(t *testing.T) {
	cfg := Config{
		Paired: true, MeanInterval: 1, Window: 50, BufferDepth: 1,
		CountMode: CountInstructions, IntervalMode: IntervalFixed, Seed: 1,
	}
	u := MustNewUnit(cfg)
	tag := u.OnFetch(0, 0x100, true, true, 0, 12, 0)
	u.Complete(tag, true, TrapNone, 3)
	// Second never selected; program ends.
	u.FlushInFlight(10)
	s := u.Drain()
	if len(s) != 1 || s[0].Paired {
		t.Fatalf("flush delivered %d samples, paired=%v", len(s), len(s) > 0 && s[0].Paired)
	}
}

func TestStaleTagIgnored(t *testing.T) {
	u := MustNewUnit(singleCfg(1))
	tag := u.OnFetch(0, 0x100, true, true, 0, 12, 0)
	u.Complete(tag, true, TrapNone, 1)
	drained := u.Drain()
	// Stale writes after completion+capture must be ignored.
	u.SetStage(tag, StageIssue, 99)
	u.AddEvents(tag, EvDCacheMiss)
	u.Complete(tag, false, TrapReplay, 100)
	if drained[0].First.Events.Has(EvDCacheMiss) {
		t.Fatal("stale event write mutated captured sample")
	}
	u.SetStage(NoTag, StageIssue, 5) // must not panic
	u.SetStage(7, StageIssue, 5)     // out of range: ignored
}

func TestEventString(t *testing.T) {
	e := EvRetired | EvDCacheMiss
	s := e.String()
	if !strings.Contains(s, "retired") || !strings.Contains(s, "dcache-miss") {
		t.Fatalf("String = %q", s)
	}
	if Event(0).String() != "none" {
		t.Fatal("zero events")
	}
}

func TestTrapAndStageStrings(t *testing.T) {
	if TrapBadPath.String() != "bad-path" || TrapNone.String() != "none" {
		t.Fatal("trap names")
	}
	if StageFetch.String() != "fetch" || StageRetire.String() != "retire" {
		t.Fatal("stage names")
	}
}

func TestCountModeIntervalModeStrings(t *testing.T) {
	if CountInstructions.String() == "" || CountFetchOpportunities.String() == "" {
		t.Fatal("count mode names")
	}
	if IntervalGeometric.String() != "geometric" || IntervalFixed.String() != "fixed" ||
		IntervalUniform.String() != "uniform" {
		t.Fatal("interval mode names")
	}
}

func TestNWaySampling(t *testing.T) {
	cfg := Config{
		Ways: 4, MeanInterval: 6, Window: 3, BufferDepth: 1,
		CountMode: CountInstructions, IntervalMode: IntervalFixed, Seed: 7,
	}
	u := MustNewUnit(cfg)
	if u.Ways() != 4 {
		t.Fatalf("ways = %d", u.Ways())
	}
	var selected []int
	var pcs []uint64
	for i := 0; i < 200 && !u.InterruptPending(); i++ {
		pc := uint64(0x1000 + 4*i)
		tag := u.OnFetch(int64(i), pc, true, true, 0, 12, 0)
		if tag != NoTag {
			selected = append(selected, tag)
			pcs = append(pcs, pc)
			u.Complete(tag, true, TrapNone, int64(i)+10)
		}
	}
	if len(selected) != 4 {
		t.Fatalf("selected tags %v", selected)
	}
	for i, tag := range selected {
		if tag != i {
			t.Fatalf("tags out of order: %v", selected)
		}
	}
	s := u.Drain()[0]
	if !s.Paired || s.Ways() != 4 || len(s.Rest) != 2 {
		t.Fatalf("sample ways=%d rest=%d paired=%v", s.Ways(), len(s.Rest), s.Paired)
	}
	recs := s.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if r.PC != pcs[i] {
			t.Fatalf("record %d pc %#x want %#x", i, r.PC, pcs[i])
		}
	}
	// Chain distances must all be within the minor window.
	if s.FetchDistance < 1 || s.FetchDistance > 3 {
		t.Fatalf("first distance %d", s.FetchDistance)
	}
	for i, d := range s.RestDistances {
		if d < 1 || d > 3 {
			t.Fatalf("rest distance %d = %d", i, d)
		}
	}
	// Latencies here are 1 cycle per fetch.
	if s.RestLatencies[0] != int64(s.RestDistances[0]) {
		t.Fatalf("rest latency %d vs distance %d", s.RestLatencies[0], s.RestDistances[0])
	}
}

func TestNWayInterruptWaitsForAll(t *testing.T) {
	cfg := Config{
		Ways: 3, MeanInterval: 2, Window: 2, BufferDepth: 1,
		CountMode: CountInstructions, IntervalMode: IntervalFixed, Seed: 1,
	}
	u := MustNewUnit(cfg)
	var tags []int
	for i := 0; len(tags) < 3; i++ {
		if tag := u.OnFetch(int64(i), uint64(4*i), true, true, 0, 12, 0); tag != NoTag {
			tags = append(tags, tag)
		}
	}
	u.Complete(0, true, TrapNone, 50)
	u.Complete(2, true, TrapNone, 51)
	if u.InterruptPending() {
		t.Fatal("interrupt before middle record completed")
	}
	u.Complete(1, false, TrapBadPath, 52)
	if !u.InterruptPending() {
		t.Fatal("interrupt missing after all records completed")
	}
	s := u.Drain()[0]
	if s.Second.Retired() {
		t.Fatal("aborted middle record lost its status")
	}
}

func TestNWayFlushPartialChain(t *testing.T) {
	cfg := Config{
		Ways: 3, MeanInterval: 1, Window: 50, BufferDepth: 1,
		CountMode: CountInstructions, IntervalMode: IntervalFixed, Seed: 1,
	}
	u := MustNewUnit(cfg)
	tag := u.OnFetch(0, 0x100, true, true, 0, 12, 0)
	u.Complete(tag, true, TrapNone, 3)
	u.FlushInFlight(10) // second and third never selected
	s := u.Drain()
	if len(s) != 1 || s[0].Ways() != 1 {
		t.Fatalf("flush delivered %d samples, ways=%d", len(s), s[0].Ways())
	}
}

func TestWaysValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = MaxWays + 1
	if _, err := NewUnit(cfg); err == nil {
		t.Fatal("excessive ways accepted")
	}
	cfg = DefaultConfig()
	cfg.Ways = 3
	cfg.Window = 0
	if _, err := NewUnit(cfg); err == nil {
		t.Fatal("multi-way without window accepted")
	}
	// Paired implies ways 2.
	cfg = DefaultConfig()
	cfg.Paired = true
	u := MustNewUnit(cfg)
	if u.Ways() != 2 {
		t.Fatalf("paired ways = %d", u.Ways())
	}
}

func TestPropertySampleConservation(t *testing.T) {
	// For random fetch/complete/abort patterns, every armed sample is
	// delivered exactly once: buffered + dropped == captures, and no
	// selection is lost once all live tags complete.
	f := func(seed uint64, paired bool) bool {
		r := stats.NewRNG(seed)
		cfg := Config{
			Paired: paired, MeanInterval: float64(r.IntRange(2, 20)),
			Window: r.IntRange(1, 10), BufferDepth: r.IntRange(1, 4),
			CountMode: CountInstructions, IntervalMode: IntervalGeometric, Seed: seed,
		}
		u := MustNewUnit(cfg)
		type flight struct{ tag int }
		var live []flight
		var delivered uint64
		for i := 0; i < 3000; i++ {
			cyc := int64(i)
			tag := u.OnFetch(cyc, uint64(0x100+4*(i%64)), true, true, 0, 12, 0)
			if tag != NoTag {
				live = append(live, flight{tag})
			}
			// Randomly complete one outstanding tag.
			if len(live) > 0 && r.Bool(0.4) {
				k := r.Intn(len(live))
				u.Complete(live[k].tag, r.Bool(0.7), TrapBadPath, cyc)
				live = append(live[:k], live[k+1:]...)
			}
			if u.InterruptPending() {
				delivered += uint64(len(u.Drain()))
			}
		}
		u.FlushInFlight(4000)
		delivered += uint64(len(u.Drain()))
		st := u.Stats()
		return delivered == st.SamplesBuffered &&
			st.SamplesBuffered+st.SamplesDropped <= st.Selected &&
			st.SamplesBuffered > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySelectionRate(t *testing.T) {
	// The realized selection rate must track 1/MeanInterval for any
	// interval, in single mode where there is no pairing dead time
	// beyond the in-flight instruction (completed immediately here).
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		mean := float64(r.IntRange(5, 200))
		cfg := DefaultConfig()
		cfg.MeanInterval = mean
		cfg.Seed = seed
		u := MustNewUnit(cfg)
		const feedN = 60000
		selected := 0
		for i := 0; i < feedN; i++ {
			if tag := u.OnFetch(int64(i), uint64(4*i), true, true, 0, 12, 0); tag != NoTag {
				selected++
				u.Complete(tag, true, TrapNone, int64(i))
			}
		}
		want := float64(feedN) / mean
		return float64(selected) > want*0.8 && float64(selected) < want*1.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
