// Package core implements the ProfileMe hardware proposed by the paper
// (§4): the fetched-instruction counter that randomly selects instructions
// to profile, the ProfileMe tag that follows a selected instruction through
// the pipeline, the Profile Registers that capture the instruction's PC,
// effective address, event bits, global branch history and per-stage
// latencies, paired sampling of two potentially concurrent instructions,
// and the sample buffer that amortizes interrupt delivery (§4.3).
//
// The pipeline in internal/cpu drives a Unit through a narrow hardware-ish
// interface (fetch opportunities in, stage timestamps and events per tag,
// completion per tag); profiling software in internal/profile drains
// Samples from the buffer when the Unit raises its interrupt.
package core

import "fmt"

// Event is the Profiled Event Register: one bit per event the instruction
// experienced (§4.1.3).
type Event uint32

// Event bits.
const (
	// EvRetired is set when the instruction retired; clear means it
	// aborted (bad path, trap, or pipeline flush). Keeping aborted
	// instructions visible — with this bit to discriminate — is one of
	// ProfileMe's key differences from prior hardware (§8).
	EvRetired Event = 1 << iota
	// EvICacheMiss: the fetch that delivered this instruction missed in
	// the I-cache.
	EvICacheMiss
	// EvITBMiss: instruction TLB miss at fetch.
	EvITBMiss
	// EvDCacheMiss: load or store missed in the D-cache.
	EvDCacheMiss
	// EvDTBMiss: data TLB miss.
	EvDTBMiss
	// EvL2Miss: the access also missed in the unified L2.
	EvL2Miss
	// EvTaken: conditional branch resolved taken.
	EvTaken
	// EvMispredict: this control-flow instruction was mispredicted
	// (direction or target).
	EvMispredict
	// EvOffPath: the instruction was fetched down a mispredicted path
	// (it can never retire). The paper calls these bad-path instructions.
	EvOffPath
	// EvNoInstruction: the sampled fetch opportunity held no instruction
	// at all (fetcher stalled); only possible when selection counts fetch
	// opportunities (§4.1.1).
	EvNoInstruction
	// EvReplayTrap: the instruction suffered a memory-order replay trap
	// and was re-executed (21264-style load-store order trap).
	EvReplayTrap
	// EvResourceStall: the instruction stalled at map for lack of
	// physical registers or issue-queue slots ("resource conflicts").
	EvResourceStall
)

var eventNames = []struct {
	bit  Event
	name string
}{
	{EvRetired, "retired"}, {EvICacheMiss, "icache-miss"}, {EvITBMiss, "itb-miss"},
	{EvDCacheMiss, "dcache-miss"}, {EvDTBMiss, "dtb-miss"}, {EvL2Miss, "l2-miss"},
	{EvTaken, "taken"}, {EvMispredict, "mispredict"}, {EvOffPath, "off-path"},
	{EvNoInstruction, "no-inst"}, {EvReplayTrap, "replay-trap"},
	{EvResourceStall, "resource-stall"},
}

// KnownEvents is the mask of every defined event bit; anything outside it
// in a Record is corruption (profiling software uses this to reject
// damaged samples).
const KnownEvents = (EvResourceStall << 1) - 1

// Has reports whether all bits in mask are set.
func (e Event) Has(mask Event) bool { return e&mask == mask }

// String lists the set event names.
func (e Event) String() string {
	if e == 0 {
		return "none"
	}
	s := ""
	for _, en := range eventNames {
		if e&en.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += en.name
		}
	}
	return s
}

// TrapReason explains why an instruction aborted (the "trap reason" field
// of the event register).
type TrapReason uint8

// Trap reasons.
const (
	TrapNone      TrapReason = iota // retired normally
	TrapBadPath                     // squashed: fetched down a mispredicted path
	TrapReplay                      // squashed by a memory-order replay trap
	TrapDrain                       // squashed by a pipeline drain (end of run, interrupt)
	TrapNeverDone                   // sample flushed before the instruction finished
)

var trapNames = [...]string{
	TrapNone: "none", TrapBadPath: "bad-path", TrapReplay: "replay",
	TrapDrain: "drain", TrapNeverDone: "never-done",
}

// Known reports whether t is a defined trap reason; unknown values in a
// Record are corruption.
func (t TrapReason) Known() bool { return int(t) < len(trapNames) }

// String returns the trap reason name.
func (t TrapReason) String() string {
	if int(t) < len(trapNames) {
		return trapNames[t]
	}
	return fmt.Sprintf("trap(%d)", uint8(t))
}

// Stage indexes the pipeline timestamps a ProfileMe record captures. The
// differences between consecutive stages are the Table 1 latencies.
type Stage int

// Pipeline stages, in program order through the pipe.
const (
	// StageFetch: cycle the instruction was fetched.
	StageFetch Stage = iota
	// StageMap: cycle it was renamed and entered the issue queue.
	StageMap
	// StageDataReady: cycle its last source operand became available.
	StageDataReady
	// StageIssue: cycle it issued to a functional unit.
	StageIssue
	// StageRetireReady: cycle it finished executing (complete / ready to
	// retire).
	StageRetireReady
	// StageRetire: cycle it retired or was aborted.
	StageRetire
	// NumStages is the number of captured stage timestamps.
	NumStages = iota
)

var stageNames = [...]string{"fetch", "map", "data-ready", "issue", "retire-ready", "retire"}

// String returns the stage name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Record is the contents of one Profile Register set: everything the
// hardware captured about one profiled instruction (§4.1.3).
type Record struct {
	// Context is the Profiled Context Register (address-space number or
	// thread identifier).
	Context uint64
	// PC is the Profiled PC Register.
	PC uint64
	// Addr is the Profiled Address Register: the effective address of a
	// load or store, or the target of an indirect jump. Valid only when
	// AddrValid is set.
	Addr      uint64
	AddrValid bool
	// Events is the Profiled Event Register.
	Events Event
	// Trap is the trap-reason field.
	Trap TrapReason
	// History is the Profiled Path Register: the global branch history
	// register captured at fetch. HistoryBits gives its width.
	History     uint64
	HistoryBits int
	// StageCycle records the absolute cycle the instruction reached each
	// stage; entries the instruction never reached are -1.
	StageCycle [NumStages]int64
	// LoadComplete is the cycle a load's value actually arrived
	// (the Alpha lets loads retire before the value returns, so this can
	// exceed StageCycle[StageRetireReady]); -1 when not applicable.
	LoadComplete int64
	// FetchSeq is the count of fetch opportunities (or fetched
	// instructions, per the selection mode) at the time of fetch; the
	// difference between two records' FetchSeq values is their fetch
	// distance in the sampled stream.
	FetchSeq uint64
}

// newRecord returns a Record with all timestamps unset.
func newRecord() Record {
	r := Record{LoadComplete: -1}
	for i := range r.StageCycle {
		r.StageCycle[i] = -1
	}
	return r
}

// Retired reports whether the instruction retired.
func (r *Record) Retired() bool { return r.Events.Has(EvRetired) }

// Latency returns the cycles between two captured stages, and false when
// either timestamp is missing (e.g. an aborted instruction never issued).
func (r *Record) Latency(from, to Stage) (int64, bool) {
	a, b := r.StageCycle[from], r.StageCycle[to]
	if a < 0 || b < 0 {
		return 0, false
	}
	return b - a, true
}

// MemLatency returns a load's issue-to-completion latency (the paper's
// "Load issue → Completion" row of Table 1), and false when not a load or
// the load never issued.
func (r *Record) MemLatency() (int64, bool) {
	if r.LoadComplete < 0 || r.StageCycle[StageIssue] < 0 {
		return 0, false
	}
	return r.LoadComplete - r.StageCycle[StageIssue], true
}

// InProgress returns the [fetch, retire-ready) interval used by the
// wasted-issue-slots metric (§5.2.3): the time the instruction was "in
// progress", excluding the wait to retire. ok is false when the
// instruction never became ready to retire.
func (r *Record) InProgress() (from, to int64, ok bool) {
	f, rr := r.StageCycle[StageFetch], r.StageCycle[StageRetireReady]
	if f < 0 || rr < 0 {
		return 0, 0, false
	}
	return f, rr, true
}

// Sample is what one interrupt delivers for one sampling window: one
// profiled instruction, or — with paired (or in general N-way, §4.1.2)
// sampling — several instructions plus the fetch distances and latencies
// between consecutive selections (§4.2).
type Sample struct {
	// First is always present.
	First Record
	// Second is present (Paired true) in paired and N-way modes.
	Second Record
	Paired bool
	// FetchDistance is the number of fetch opportunities (or fetched
	// instructions) between the pair's fetches — the randomized minor
	// interval, as actually realized.
	FetchDistance uint64
	// FetchLatency is the number of cycles between the pair's fetches
	// (the "intra-pair fetch latency" the analysis uses to line up the
	// two records' timestamps).
	FetchLatency int64
	// Rest holds the third and later records of an N-way sample (empty
	// for single and paired sampling), with RestDistances[i] and
	// RestLatencies[i] giving Rest[i]'s fetch distance and latency from
	// the PREVIOUS record in the chain (Second for i == 0).
	Rest          []Record
	RestDistances []uint64
	RestLatencies []int64
}

// Records returns all records of the sample in selection order.
func (s *Sample) Records() []Record {
	out := make([]Record, 0, 2+len(s.Rest))
	out = append(out, s.First)
	if s.Paired {
		out = append(out, s.Second)
	}
	out = append(out, s.Rest...)
	return out
}

// Ways returns the number of records in the sample.
func (s *Sample) Ways() int {
	n := 1
	if s.Paired {
		n++
	}
	return n + len(s.Rest)
}
