package core

import "testing"

// scriptedFaults is a hand-driven FaultInjector for unit tests: each knob
// fires unconditionally when enabled.
type scriptedFaults struct {
	suppress  bool
	overwrite bool
	corrupt   bool
	corrupted int
}

func (f *scriptedFaults) SuppressInterrupt() bool { return f.suppress }
func (f *scriptedFaults) OverwriteOnFull() bool   { return f.overwrite }
func (f *scriptedFaults) CorruptDrained(ss []Sample) int {
	if !f.corrupt {
		return 0
	}
	for i := range ss {
		ss[i].First.PC ^= 1 << 40
	}
	f.corrupted += len(ss)
	return len(ss)
}

// TestDropAccountingStalledDrain drives the buffer past BufferDepth with a
// stalled drain (software never reads) and checks that SamplesDropped,
// Interrupts and Pending stay mutually consistent — the adversarial path
// the happy-path tests never exercise.
func TestDropAccountingStalledDrain(t *testing.T) {
	cfg := singleCfg(10)
	cfg.BufferDepth = 3
	u := MustNewUnit(cfg)

	// 1000 fetches at a fixed interval of 10 => 100 captured samples,
	// 3 buffered, 97 dropped.
	feed(u, 0, 1000, true)
	st := u.Stats()
	if st.SamplesBuffered != 3 {
		t.Fatalf("SamplesBuffered = %d, want 3", st.SamplesBuffered)
	}
	if st.SamplesDropped != 97 {
		t.Fatalf("SamplesDropped = %d, want 97", st.SamplesDropped)
	}
	if got := u.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want BufferDepth 3", got)
	}
	if st.Interrupts != 1 {
		t.Fatalf("Interrupts = %d, want 1 (line stays raised while undrained)", st.Interrupts)
	}
	if !u.InterruptPending() {
		t.Fatal("interrupt line should still be raised")
	}
	if st.Captured() != st.SamplesBuffered+st.SamplesDropped {
		t.Fatalf("Captured() = %d inconsistent with buffered %d + dropped %d",
			st.Captured(), st.SamplesBuffered, st.SamplesDropped)
	}
	if st.Lost() != st.SamplesDropped {
		t.Fatalf("Lost() = %d, want %d", st.Lost(), st.SamplesDropped)
	}

	// Draining recovers: the line drops, the buffer refills, a second
	// interrupt is raised.
	if got := len(u.Drain()); got != 3 {
		t.Fatalf("drained %d samples, want 3", got)
	}
	if u.Pending() != 0 || u.InterruptPending() {
		t.Fatal("drain did not clear buffer and interrupt line")
	}
	feed(u, 1000, 300, true)
	st = u.Stats()
	if st.Interrupts != 2 {
		t.Fatalf("Interrupts = %d after refill, want 2", st.Interrupts)
	}
	if u.Pending() != 3 {
		t.Fatalf("Pending = %d after refill, want 3", u.Pending())
	}
}

func TestSuppressedInterruptAccounting(t *testing.T) {
	cfg := singleCfg(10)
	cfg.BufferDepth = 2
	u := MustNewUnit(cfg)
	fi := &scriptedFaults{suppress: true}
	u.AttachFaults(fi)

	feed(u, 0, 500, true)
	st := u.Stats()
	if st.Interrupts != 0 {
		t.Fatalf("Interrupts = %d under total suppression, want 0", st.Interrupts)
	}
	if st.InterruptsSuppressed == 0 {
		t.Fatal("InterruptsSuppressed not counted")
	}
	if u.InterruptPending() {
		t.Fatal("interrupt line raised despite suppression")
	}
	// The buffer still holds its samples; software polling Pending can
	// recover them even with the line dead.
	if u.Pending() != 2 {
		t.Fatalf("Pending = %d, want BufferDepth 2", u.Pending())
	}
	if st.SamplesDropped == 0 {
		t.Fatal("overflow drops not counted while the line was suppressed")
	}
}

func TestOverwriteOnFullAccounting(t *testing.T) {
	cfg := singleCfg(10)
	cfg.BufferDepth = 2
	u := MustNewUnit(cfg)
	u.AttachFaults(&scriptedFaults{overwrite: true})

	feed(u, 0, 500, true)
	st := u.Stats()
	if st.SamplesDropped != 0 {
		t.Fatalf("SamplesDropped = %d with overwrite faults, want 0", st.SamplesDropped)
	}
	if st.SamplesOverwritten != 48 {
		t.Fatalf("SamplesOverwritten = %d, want 48 (50 captured, 2 buffered)", st.SamplesOverwritten)
	}
	if u.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 (overwrite never grows the buffer)", u.Pending())
	}
	if st.Captured() != 50 {
		t.Fatalf("Captured() = %d, want 50", st.Captured())
	}
	// The overwritten slot holds the newest sample, not the oldest.
	out := u.Drain()
	if len(out) != 2 {
		t.Fatalf("drained %d, want 2", len(out))
	}
	if out[1].First.FetchSeq <= out[0].First.FetchSeq {
		t.Fatalf("buffer order broken: fetchseq %d then %d",
			out[0].First.FetchSeq, out[1].First.FetchSeq)
	}
}

func TestCorruptDrainedAccounting(t *testing.T) {
	cfg := singleCfg(10)
	cfg.BufferDepth = 4
	u := MustNewUnit(cfg)
	fi := &scriptedFaults{corrupt: true}
	u.AttachFaults(fi)

	feed(u, 0, 40, true)
	out := u.Drain()
	if len(out) == 0 {
		t.Fatal("nothing drained")
	}
	st := u.Stats()
	if st.SamplesCorrupted != uint64(len(out)) {
		t.Fatalf("SamplesCorrupted = %d, want %d", st.SamplesCorrupted, len(out))
	}
	for i, s := range out {
		if s.First.PC&(1<<40) == 0 {
			t.Fatalf("sample %d not corrupted", i)
		}
	}
}
