package pgo

import (
	"testing"

	"profileme/internal/asm"
	"profileme/internal/core"
	"profileme/internal/cpu"
	"profileme/internal/isa"
	"profileme/internal/profile"
	"profileme/internal/sim"
	"profileme/internal/workload"
)

func TestDetectStride(t *testing.T) {
	cases := []struct {
		name  string
		addrs []uint64
		want  int64
	}{
		{"sequential", []uint64{0x1000, 0x1040, 0x1080, 0x1100, 0x1240}, 64},
		{"skipping multiples", []uint64{0x1000, 0x1200, 0x1280, 0x1500}, 128},
		{"too few", []uint64{0x1000, 0x1040}, 0},
		{"pointer chase", []uint64{0x1000, 0x5728, 0x2340, 0x99d0}, 8}, // aligned but irregular: still a stride of the GCD
		{"irregular", []uint64{0x1000, 0x1003, 0x100b, 0x1010}, 0},
		{"constant", []uint64{0x1000, 0x1000, 0x1000}, 0},
		{"descending mix", []uint64{0x2000, 0x1f00, 0x2100, 0x1e00}, 256},
	}
	for _, c := range cases {
		if got := DetectStride(c.addrs); got != c.want {
			t.Errorf("%s: stride = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestInsertPrefetchesRelocation(t *testing.T) {
	prog := asm.MustAssemble(`
.proc main
    lda  r1, 50(zero)
    lda  r16, table(zero)
loop:
    ld   r2, 0(r16)
    add  r3, r3, r2
    beq  r2, skip
    add  r4, r4, #1
skip:
    add  r16, r16, #8
    sub  r1, r1, #1
    bne  r1, loop
    ret
.endp
.data
.org 0x20000
table:
`)
	for i := uint64(0); i < 64; i++ {
		prog.Data[0x20000+i*8] = i % 3
	}
	loadPC := uint64(2) * isa.InstBytes

	re, err := InsertPrefetches(prog, []Plan{{LoadPC: loadPC, Ahead: 128}})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != prog.Len()+1 {
		t.Fatalf("len = %d, want %d", re.Len(), prog.Len()+1)
	}
	// The prefetch sits where the load was; the load follows.
	pref, _ := re.At(loadPC)
	if pref.Op != isa.OpPref || pref.Imm != 128 || pref.Rb != 16 {
		t.Fatalf("pref = %v", pref)
	}
	ld, _ := re.At(loadPC + isa.InstBytes)
	if ld.Op != isa.OpLd {
		t.Fatalf("load displaced wrongly: %v", ld)
	}
	// Architectural results must be identical.
	m1, m2 := sim.New(prog), sim.New(re)
	if _, err := m1.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	for _, r := range []isa.Reg{3, 4, 16} {
		if m1.Reg(r) != m2.Reg(r) {
			t.Fatalf("r%d differs: %d vs %d", r, m1.Reg(r), m2.Reg(r))
		}
	}
	// Labels and procs relocated consistently.
	lp, _ := re.Label("loop")
	if in, _ := re.At(lp); in.Op != isa.OpPref {
		t.Fatalf("loop label not pointing at relocated block head: %v", in)
	}
	if pr := re.ProcByName("main"); pr == nil || pr.End != re.MaxPC() {
		t.Fatalf("proc range: %+v", re.ProcByName("main"))
	}
}

func TestInsertPrefetchesFuzzEquivalence(t *testing.T) {
	// Generated programs (no indirect jumps): inserting a prefetch before
	// every load must leave architectural behaviour unchanged.
	for seed := uint64(300); seed < 308; seed++ {
		cfg := workload.GenConfig{Procs: 3, BodyBlocks: 5, MainIters: 40, Seed: seed}
		prog := workload.Generate(cfg)
		var plans []Plan
		for i, in := range prog.Insts {
			if in.Op == isa.OpLd {
				plans = append(plans, Plan{LoadPC: uint64(i) * isa.InstBytes, Ahead: 64})
			}
		}
		if len(plans) == 0 {
			continue
		}
		re, err := InsertPrefetches(prog, plans)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m1, m2 := sim.New(prog), sim.New(re)
		n1, err := m1.Run(5_000_000, nil)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := m2.Run(5_000_000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n2 != n1+countExecutedPrefs(re) {
			t.Fatalf("seed %d: instruction counts inconsistent: %d vs %d", seed, n1, n2)
		}
		for r := isa.Reg(1); r < 28; r++ {
			if m1.Reg(r) != m2.Reg(r) {
				t.Fatalf("seed %d: r%d differs", seed, r)
			}
		}
		// The rewritten program must also run exactly on the pipeline.
		src := sim.NewMachineSource(sim.New(re), 0)
		p, err := cpu.New(re, src, cpu.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Retired != n2 {
			t.Fatalf("seed %d: pipeline retired %d, functional %d", seed, res.Retired, n2)
		}
	}
}

func countExecutedPrefs(p *isa.Program) uint64 {
	m := sim.New(p)
	var n uint64
	_, _ = m.Run(5_000_000, func(r sim.Record) {
		if r.Inst.Op == isa.OpPref {
			n++
		}
	})
	return n
}

func TestInsertPrefetchesRejectsIndirect(t *testing.T) {
	prog := workload.Perl(5000) // has jump tables
	var loadPC uint64
	for i, in := range prog.Insts {
		if in.Op == isa.OpLd {
			loadPC = uint64(i) * isa.InstBytes
			break
		}
	}
	if _, err := InsertPrefetches(prog, []Plan{{LoadPC: loadPC}}); err == nil {
		t.Fatal("indirect-jump program accepted")
	}
}

func TestInsertPrefetchesRejectsNonLoad(t *testing.T) {
	prog := asm.MustAssemble(".proc main\n add r1, r1, #1\n ret\n.endp")
	if _, err := InsertPrefetches(prog, []Plan{{LoadPC: 0}}); err == nil {
		t.Fatal("non-load plan accepted")
	}
}

// strideKernel is the end-to-end PGO target: a value-carried strided walk
// (the loaded value supplies the stride, as in an index array), so misses
// serialize and prefetching genuinely hides them.
func strideKernel(iters int) *isa.Program {
	b := asm.NewBuilder()
	b.Org(0x200000).DataLabel("arr")
	const cells = 8192 // 8192 * 64B = 512 KB: far beyond L1, most of L2
	for i := 0; i < cells; i++ {
		b.Word(64) // each cell holds the stride to the next
		b.Space(56)
	}
	b.Proc("main")
	b.LdI(1, int64(iters))
	b.LdaLabel(16, "arr")
	b.Label("loop")
	b.Ld(2, 16, 0)   // serializing: value feeds the address
	b.Add(16, 16, 2) // advance by the loaded stride
	b.OpI(isa.OpAnd, 16, 16, 0x27ffc0)
	b.OpI(isa.OpOr, 16, 16, 0x200000)
	b.Add(3, 3, 2)
	b.SubI(1, 1, 1)
	b.Bne(1, "loop")
	b.Ret().EndProc()
	return b.MustBuild()
}

func TestEndToEndPrefetchSpeedup(t *testing.T) {
	const iters = 12000
	prog := strideKernel(iters)

	run := func(p *isa.Program, db *profile.DB) cpu.Result {
		t.Helper()
		ccfg := cpu.DefaultConfig()
		ccfg.InterruptCost = 0
		src := sim.NewMachineSource(sim.New(p), 0)
		pipe, err := cpu.New(p, src, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		if db != nil {
			unit := core.MustNewUnit(core.Config{
				MeanInterval: 40, Window: 80, BufferDepth: 32,
				CountMode: core.CountInstructions, IntervalMode: core.IntervalGeometric, Seed: 6,
			})
			pipe.AttachProfileMe(unit, db.Handler())
		}
		res, err := pipe.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// 1. Profile the baseline.
	db := profile.NewDB(40, 80, 4)
	db.RetainAddrs = 16
	base := run(prog, db)

	// 2. Analyze: the strided load must surface as the top candidate.
	cands := Analyze(db, prog, DefaultAnalyzeOptions())
	if len(cands) == 0 {
		t.Fatal("no candidates found")
	}
	top := cands[0]
	if top.Stride != 64 {
		t.Fatalf("detected stride %d, want 64", top.Stride)
	}
	if top.MissRate < 0.5 {
		t.Fatalf("miss rate %.2f, expected miss-heavy", top.MissRate)
	}

	// 3. Transform and re-run.
	re, err := InsertPrefetches(prog, PlanPrefetches(cands, 8))
	if err != nil {
		t.Fatal(err)
	}
	opt := run(re, nil)

	// Architectural result must be preserved.
	m1, m2 := sim.New(prog), sim.New(re)
	m1.Run(0, nil)
	m2.Run(0, nil)
	if m1.Reg(3) != m2.Reg(3) {
		t.Fatalf("transformed program computes a different sum")
	}

	speedup := float64(base.Cycles) / float64(opt.Cycles)
	if speedup < 1.5 {
		t.Fatalf("speedup %.2fx (baseline %d cycles, optimized %d)", speedup, base.Cycles, opt.Cycles)
	}
	t.Logf("prefetch speedup: %.2fx (%d -> %d cycles)", speedup, base.Cycles, opt.Cycles)
}
