// Package pgo implements the profile-guided optimization the paper's §7
// motivates: feed ProfileMe's per-instruction miss rates, memory latencies
// and sampled effective addresses back into the program, by detecting
// strided miss-heavy loads and inserting prefetch instructions ahead of
// them ("one important aspect of instruction scheduling is the insertion
// of prefetches"; cf. Abraham & Rau's latency-driven scheduling).
//
// The pass is deliberately simple — it is the consumer the hardware was
// designed for, not a production compiler — but it is a real program
// transformation: the rewriter relocates every instruction after an
// insertion point and fixes all direct control-flow targets.
package pgo

import (
	"fmt"
	"sort"

	"profileme/internal/core"
	"profileme/internal/isa"
	"profileme/internal/profile"
)

// Candidate is a load the analysis proposes to prefetch.
type Candidate struct {
	PC       uint64
	Samples  uint64
	MissRate float64 // sampled D-cache miss fraction
	MeanLat  float64 // sampled load issue -> completion latency
	Stride   int64   // detected address stride per execution (0 = none)
}

// AnalyzeOptions tunes the candidate selection.
type AnalyzeOptions struct {
	MinSamples   uint64  // ignore PCs with fewer samples
	MinMissRate  float64 // only miss-heavy loads are worth prefetching
	MinMeanLat   float64 // cycles; skip loads the cache already serves
	MaxCandidate int     // cap on returned candidates (0 = no cap)
}

// DefaultAnalyzeOptions returns sensible thresholds.
func DefaultAnalyzeOptions() AnalyzeOptions {
	return AnalyzeOptions{MinSamples: 8, MinMissRate: 0.3, MinMeanLat: 20}
}

// Analyze scans the profile database for miss-heavy strided loads. The
// database must have been collected with RetainAddrs > 1 so stride
// detection has addresses to work with.
func Analyze(db *profile.DB, prog *isa.Program, opts AnalyzeOptions) []Candidate {
	var out []Candidate
	for _, pc := range db.PCs() {
		in, ok := prog.At(pc)
		if !ok || in.Op != isa.OpLd {
			continue
		}
		a := db.Get(pc)
		if a.Samples < opts.MinSamples || a.MemLatCount == 0 {
			continue
		}
		missRate := profile.RateEstimate(a.EventCount(core.EvDCacheMiss), a.Samples)
		meanLat := float64(a.MemLatSum) / float64(a.MemLatCount)
		if missRate < opts.MinMissRate || meanLat < opts.MinMeanLat {
			continue
		}
		stride := DetectStride(a.Addrs)
		out = append(out, Candidate{
			PC: pc, Samples: a.Samples, MissRate: missRate, MeanLat: meanLat, Stride: stride,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		wi := float64(out[i].Samples) * out[i].MissRate * out[i].MeanLat
		wj := float64(out[j].Samples) * out[j].MissRate * out[j].MeanLat
		if wi != wj {
			return wi > wj
		}
		return out[i].PC < out[j].PC
	})
	if opts.MaxCandidate > 0 && len(out) > opts.MaxCandidate {
		out = out[:opts.MaxCandidate]
	}
	return out
}

// DetectStride infers a constant address stride from sampled effective
// addresses taken at random execution distances: every pairwise difference
// is then an integer multiple of the stride, so their GCD recovers it.
// It returns 0 when no consistent positive stride emerges (e.g. pointer
// chasing or hash probing).
func DetectStride(addrs []uint64) int64 {
	if len(addrs) < 3 {
		return 0
	}
	var g int64
	prev := int64(addrs[0])
	for _, a := range addrs[1:] {
		d := int64(a) - prev
		prev = int64(a)
		if d < 0 {
			d = -d
		}
		if d == 0 {
			continue
		}
		g = gcd(g, d)
	}
	// A stride only helps if it is a plausible element size: huge GCDs
	// mean the samples shared one accident, tiny ones nothing.
	if g < 8 || g > 1<<20 {
		return 0
	}
	// Verify: every difference must be an exact multiple.
	prev = int64(addrs[0])
	for _, a := range addrs[1:] {
		d := int64(a) - prev
		prev = int64(a)
		if d%g != 0 {
			return 0
		}
	}
	return g
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Plan is one prefetch insertion: before the load at LoadPC, prefetch
// [base + LoadImm + Ahead] using the load's own base register.
type Plan struct {
	LoadPC uint64
	Ahead  int64 // displacement added to the load's address
}

// PlanPrefetches turns candidates into insertion plans: the prefetch
// reaches Distance executions ahead (Distance * stride bytes past the
// current address). Candidates without a stride are skipped.
func PlanPrefetches(cands []Candidate, distance int64) []Plan {
	var out []Plan
	for _, c := range cands {
		if c.Stride == 0 {
			continue
		}
		out = append(out, Plan{LoadPC: c.PC, Ahead: c.Stride * distance})
	}
	return out
}

// InsertPrefetches rewrites prog with a pref instruction immediately
// before each planned load, relocating all following instructions and
// retargeting every direct branch, jump and call. Programs containing
// indirect jumps are rejected: their targets (jump tables in data) cannot
// be relocated safely. Returns the rewritten program.
func InsertPrefetches(prog *isa.Program, plans []Plan) (*isa.Program, error) {
	if len(plans) == 0 {
		return prog, nil
	}
	for _, in := range prog.Insts {
		if in.Op == isa.OpJmp {
			return nil, fmt.Errorf("pgo: cannot rewrite programs with indirect jumps")
		}
	}
	insertAt := make(map[uint64]int64) // load PC -> Ahead
	for _, p := range plans {
		in, ok := prog.At(p.LoadPC)
		if !ok || in.Op != isa.OpLd {
			return nil, fmt.Errorf("pgo: plan targets %#x, which is not a load", p.LoadPC)
		}
		insertAt[p.LoadPC] = p.Ahead
	}

	// Pass 1: compute the relocation map old PC -> new PC. A load with an
	// insertion relocates to the prefetch's address, so control transfers
	// targeting the load (loop back-edges above all) execute the prefetch
	// on every trip.
	newPC := make([]uint64, prog.Len()+1)
	cursor := uint64(0)
	for i := 0; i < prog.Len(); i++ {
		old := uint64(i) * isa.InstBytes
		newPC[i] = cursor
		if _, ins := insertAt[old]; ins {
			cursor += isa.InstBytes // room for the pref
		}
		cursor += isa.InstBytes
	}
	newPC[prog.Len()] = cursor
	relocate := func(target uint64) uint64 { return newPC[target/isa.InstBytes] }

	// Pass 2: emit.
	out := &isa.Program{
		Labels: make(map[string]uint64, len(prog.Labels)),
		Data:   make(map[uint64]uint64, len(prog.Data)),
		Entry:  relocate(prog.Entry),
	}
	for a, v := range prog.Data {
		out.Data[a] = v
	}
	for name, pc := range prog.Labels {
		if pc < prog.MaxPC() {
			out.Labels[name] = relocate(pc)
		} else {
			out.Labels[name] = pc // data label
		}
	}
	for _, pr := range prog.Procs {
		out.Procs = append(out.Procs, isa.Proc{
			Name: pr.Name, Start: relocate(pr.Start), End: newPC[pr.End/isa.InstBytes],
		})
	}
	for i := 0; i < prog.Len(); i++ {
		old := uint64(i) * isa.InstBytes
		in, _ := prog.At(old)
		if ahead, ins := insertAt[old]; ins {
			out.Insts = append(out.Insts, isa.Inst{
				Op: isa.OpPref, Rb: in.Rb, Imm: in.Imm + ahead,
			})
		}
		if in.Op.IsControl() && !in.Op.IsIndirect() {
			in.Target = relocate(in.Target)
		}
		out.Insts = append(out.Insts, in)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("pgo: rewritten program invalid: %w", err)
	}
	return out, nil
}
