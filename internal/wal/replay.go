package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// ReplayInfo reports what a replay found and what it had to repair.
type ReplayInfo struct {
	// Records and Bytes cover the intact records applied.
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Segments is how many segment files were read.
	Segments int `json:"segments"`
	// Truncated is true when a torn or invalid record ended the replay
	// early; TruncatedAt is where. Open physically truncates the file
	// there and quarantines any later segments (*.quarantined) so the
	// writer resumes from a consistent tail.
	Truncated   bool `json:"truncated"`
	TruncatedAt Pos  `json:"truncated_at,omitempty"`
	// Quarantined counts later segments set aside after a truncation.
	Quarantined int `json:"quarantined"`
	// Duration is the wall-clock replay time (the boot-latency cost of
	// the WAL, exposed in /v1/stats).
	Duration time.Duration `json:"duration_ns"`
}

// Replay reads the log at dir without repairing it, applying every
// intact record to apply in append order and stopping at the first torn
// or invalid record. It never writes; use Open to replay AND repair.
// A missing directory replays zero records.
func Replay(dir string, apply func(pos Pos, payload []byte) error) (ReplayInfo, error) {
	cfg := Config{Dir: dir}
	if err := cfg.normalize(); err != nil {
		return ReplayInfo{}, err
	}
	return replay(cfg, apply, false)
}

// replay is the shared scan. With repair set, the first invalid record
// truncates its segment in place and later segments are quarantined —
// the write-side contract that acknowledged records survive and
// unacknowledged bytes are removed rather than resurrected.
func replay(cfg Config, apply func(pos Pos, payload []byte) error, repair bool) (ReplayInfo, error) {
	start := cfg.now()
	var info ReplayInfo
	seqs, err := listSegments(cfg.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return info, nil
		}
		return info, fmt.Errorf("wal: replay: %w", err)
	}
	for i, seq := range seqs {
		path := filepath.Join(cfg.Dir, segName(seq))
		goodOff, segErr := replaySegment(cfg, path, seq, apply, &info)
		if segErr != nil {
			return info, segErr
		}
		if info.Truncated {
			if repair {
				if info.TruncatedAt.Off == 0 {
					// The segment header itself is unreadable or foreign.
					// Truncating to zero would leave a headerless file the
					// writer appends to blindly; set the whole segment
					// aside instead and keep its bytes for forensics.
					if err := os.Rename(path, path+".quarantined"); err != nil {
						return info, fmt.Errorf("wal: quarantine %s: %w", path, err)
					}
					info.Quarantined++
				} else if err := os.Truncate(path, goodOff); err != nil {
					return info, fmt.Errorf("wal: truncate %s at %d: %w", path, goodOff, err)
				}
				for _, later := range seqs[i+1:] {
					lp := filepath.Join(cfg.Dir, segName(later))
					if err := os.Rename(lp, lp+".quarantined"); err != nil {
						return info, fmt.Errorf("wal: quarantine %s: %w", lp, err)
					}
					info.Quarantined++
				}
				if err := fsyncDir(cfg.Dir); err != nil {
					return info, fmt.Errorf("wal: replay repair dir sync: %w", err)
				}
			} else {
				info.Quarantined = len(seqs) - i - 1
			}
			break
		}
	}
	info.Segments = len(seqs) - info.Quarantined
	info.Duration = cfg.now().Sub(start)
	return info, nil
}

// replaySegment scans one segment, applying intact records. It returns
// the offset of the first byte past the last intact record. A torn or
// invalid frame sets info.Truncated/TruncatedAt and stops the scan; an
// unreadable or foreign header counts as invalid at the header itself
// (the whole segment is suspect).
func replaySegment(cfg Config, path string, seq uint64, apply func(Pos, []byte) error, info *ReplayInfo) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: replay %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [segHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		info.Truncated = true
		info.TruncatedAt = Pos{Seg: seq, Off: 0}
		return 0, nil
	}
	if string(hdr[0:4]) != segMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != segVersion ||
		binary.LittleEndian.Uint64(hdr[8:16]) != seq {
		info.Truncated = true
		info.TruncatedAt = Pos{Seg: seq, Off: 0}
		return 0, nil
	}
	goodOff := int64(segHeaderBytes)
	var rec [recHeaderBytes]byte
	var payload bytes.Buffer
	for {
		pos := Pos{Seg: seq, Off: goodOff}
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return goodOff, nil // clean end of segment
			}
			// Torn record header.
			info.Truncated = true
			info.TruncatedAt = pos
			return goodOff, nil
		}
		n := binary.LittleEndian.Uint32(rec[0:4])
		want := binary.LittleEndian.Uint32(rec[4:8])
		if int64(n) > cfg.MaxRecordBytes {
			info.Truncated = true
			info.TruncatedAt = pos
			return goodOff, nil
		}
		payload.Reset()
		if _, err := io.CopyN(&payload, r, int64(n)); err != nil {
			info.Truncated = true
			info.TruncatedAt = pos
			return goodOff, nil
		}
		if crc32.Checksum(payload.Bytes(), crcTable) != want {
			info.Truncated = true
			info.TruncatedAt = pos
			return goodOff, nil
		}
		if apply != nil {
			if err := apply(pos, payload.Bytes()); err != nil {
				return goodOff, fmt.Errorf("wal: replay %s at %v: apply: %w", path, pos, err)
			}
		}
		goodOff += int64(recHeaderBytes) + int64(n)
		info.Records++
		info.Bytes += int64(recHeaderBytes) + int64(n)
	}
}
