// Package wal is a crash-only write-ahead log: an append-only sequence
// of CRC-framed records spread across rotated segment files, with group
// commit so hot-path appenders share fsyncs instead of paying one each.
//
// The durability contract mirrors the rest of the stack's envelope
// conventions (DESIGN.md §7/§9): every record is length-prefixed and
// CRC32-C framed, every segment opens with a versioned header, and a
// reader can always distinguish "the writer crashed mid-record" (torn
// tail, truncate and continue) from "the bytes rotted" (checksum
// mismatch, also truncate — everything after an invalid record is
// suspect). Replay applies records in append order and stops at the
// first invalid frame, which is exactly the prefix the writer could
// have acknowledged: a record is only acknowledged (Append returns)
// after an fsync covered it, so a torn record was never promised to
// anyone.
//
// Rotation is directory-fsync-correct: a new segment file is created,
// its header written and synced, and the parent directory synced before
// any record lands in it — a power cut between those steps loses an
// empty file, never an acknowledged record.
//
// Failure is crash-only too: a failed write OR a failed fsync wedges
// the log permanently (every later Stage/Append fails). Continuing past
// either would let a record be acknowledged physically after bytes
// whose durability is unknown, and replay — which truncates at the
// first invalid frame — would silently discard it. A wedged process
// restarts and replays; that is the only recovery path.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Segment and record framing.
const (
	segMagic   = "PMWS"
	segVersion = 1
	// segHeaderBytes: magic[4] + version u32 + seq u64.
	segHeaderBytes = 16
	// recHeaderBytes: payload length u32 + CRC32-C u32.
	recHeaderBytes = 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Typed failures.
var (
	// ErrClosed: the log was closed; no further appends are accepted.
	ErrClosed = errors.New("wal: log closed")
	// ErrTooLarge: one record exceeds the configured record cap.
	ErrTooLarge = errors.New("wal: record exceeds size cap")
)

// Pos addresses one record: the segment sequence number it lives in and
// its byte offset there. Positions order lexicographically by (Seg,
// Off) and are stable across replays — the same WAL yields the same
// positions, so a position is a durable identity for its record.
type Pos struct {
	Seg uint64
	Off int64
}

// Before reports whether p orders strictly before q.
func (p Pos) Before(q Pos) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// IsZero reports whether p is the zero position.
func (p Pos) IsZero() bool { return p.Seg == 0 && p.Off == 0 }

// String renders seg:off.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Seg, p.Off) }

// Config parameterizes a Log. Zero values get usable defaults.
type Config struct {
	// Dir is the segment directory (required; created if missing).
	Dir string
	// SegmentBytes rotates the active segment once it crosses this size
	// (default 8 MiB).
	SegmentBytes int64
	// SegmentAge rotates the active segment once it is this old and
	// non-empty (0 = size-only rotation). Age rotation bounds how much
	// history one file can hold, so barrier reclaim can actually free
	// space on a slow trickle of appends.
	SegmentAge time.Duration
	// FsyncWindow is the group-commit coalescing window: how long the
	// syncer waits after the first record of a batch before fsyncing, so
	// concurrent appenders share the write. 0 means no added delay —
	// batches still form naturally while the previous fsync is in
	// flight (commit pipelining), which is the right default on fast
	// disks. Raise it on devices where fsync dominates.
	FsyncWindow time.Duration
	// MaxRecordBytes caps one record's payload (default 64 MiB) so a
	// corrupt length field can never drive allocation on replay.
	MaxRecordBytes int64

	// Fsync overrides the file sync used for durability verdicts (nil =
	// (*os.File).Sync). Tests inject fsync failures through it; leave it
	// nil in production.
	Fsync func(*os.File) error

	now func() time.Time // test seam
}

func (c *Config) normalize() error {
	if c.Dir == "" {
		return errors.New("wal: config needs a directory")
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.SegmentBytes < segHeaderBytes+recHeaderBytes {
		return fmt.Errorf("wal: segment size %d too small", c.SegmentBytes)
	}
	if c.MaxRecordBytes == 0 {
		c.MaxRecordBytes = 64 << 20
	}
	if c.MaxRecordBytes < 1 {
		return fmt.Errorf("wal: record cap %d < 1", c.MaxRecordBytes)
	}
	if c.FsyncWindow < 0 {
		c.FsyncWindow = 0
	}
	if c.SegmentAge < 0 {
		c.SegmentAge = 0
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.Fsync == nil {
		c.Fsync = (*os.File).Sync
	}
	return nil
}

// Stats is a point-in-time snapshot of the log's health — the substrate
// for /v1/stats "wal" and the /readyz stall probe.
type Stats struct {
	// Segments is how many segment files currently exist on disk.
	Segments int `json:"segments"`
	// SegmentSeq is the active segment's sequence number.
	SegmentSeq uint64 `json:"segment_seq"`
	// AppendedBytes is the monotonic total of record bytes ever staged
	// (headers included) since Open.
	AppendedBytes int64 `json:"appended_bytes"`
	// BytesSinceBarrier is how much has been appended since the last
	// barrier (ReclaimBefore) — the replay debt a crash right now would
	// incur.
	BytesSinceBarrier int64 `json:"bytes_since_barrier"`
	// Appends counts records staged; Syncs counts fsyncs; SyncErrors
	// counts failed fsyncs (each one failed a whole batch of appends).
	Appends    uint64 `json:"appends"`
	Syncs      uint64 `json:"syncs"`
	SyncErrors uint64 `json:"sync_errors"`
	Rotations  uint64 `json:"rotations"`
	// LastSyncAge is the time since the last successful fsync (negative
	// means none yet). OldestPendingAge is how long the oldest staged-
	// but-unsynced record has been waiting — the stall signal: a healthy
	// group commit keeps it under the fsync window, a dead disk lets it
	// grow without bound.
	LastSyncAge      time.Duration `json:"last_sync_age_ns"`
	OldestPendingAge time.Duration `json:"oldest_pending_age_ns"`
	// Wedged is true when a write or fsync failure has permanently
	// stopped the log: every Stage/Append fails until a restart replays
	// what actually survived. A wedged instance must go unready.
	Wedged bool `json:"wedged"`
}

// batch is one group commit: every record staged while it was open
// becomes durable (or fails) with a single fsync.
type batch struct {
	done   chan struct{}
	opened time.Time
	err    error
}

// Ticket is a staged record's claim on the next group commit.
type Ticket struct{ b *batch }

// Wait blocks until the record's batch has been fsynced and returns the
// sync outcome. A record is durable if and only if Wait returns nil.
func (t *Ticket) Wait() error {
	<-t.b.done
	return t.b.err
}

// Log is an append-only segmented write-ahead log. Stage/Append are safe
// for concurrent use; one background syncer goroutine runs the group
// commits.
type Log struct {
	cfg Config

	mu        sync.Mutex
	f         *os.File
	seq       uint64 // active segment sequence
	off       int64  // active segment size (bytes written, staged included)
	segOpened time.Time
	segments  int
	cur       *batch // open batch collecting staged records (nil = none)
	closed    bool
	// wedged is the log's fatal-failure latch. A failed write leaves a
	// partial frame on disk; a failed fsync leaves records whose
	// durability is unknowable (after an fsync EIO the kernel may mark
	// the dirty pages clean, so a LATER fsync can succeed while the data
	// is gone). Either way, nothing may be acknowledged past the failure
	// — the log refuses all further work and restart-side replay decides
	// what actually survived.
	wedged error
	// sealed holds rotated-out segments awaiting their final fsync +
	// close, which happen inside the next durability verdict (syncAll)
	// rather than at rotation time — see rotateLocked.
	sealed     []*os.File
	barrier    Pos
	barrierAt  int64 // AppendedBytes when the barrier was last advanced
	appended   int64
	appends    uint64
	syncs      uint64
	syncErrs   uint64
	rotations  uint64
	lastSync   time.Time
	lastHealth error

	// syncMu serializes durability verdicts (syncAll). The kernel
	// reports a writeback error to only ONE of several concurrent fsyncs
	// on the same file, so two racing commits could split an EIO — one
	// wedging the log while the other falsely acknowledges its batch.
	// One verdict at a time, and none after a wedge.
	syncMu sync.Mutex

	kick chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup
}

// segName renders a segment file name; the fixed-width decimal keeps
// lexical order equal to numeric order.
func segName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// parseSegName inverts segName; ok is false for foreign files.
func parseSegName(name string) (uint64, bool) {
	var seq uint64
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(mid) != 16 {
		return 0, false
	}
	for _, r := range mid {
		if r < '0' || r > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(r-'0')
	}
	return seq, true
}

// listSegments returns the segment sequences present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// nextFreshSeq picks the first segment sequence for an empty log,
// skipping past any *.quarantined segments left by replay repair.
func nextFreshSeq(dir string) (uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var next uint64 = 1
	for _, e := range ents {
		name := strings.TrimSuffix(e.Name(), ".quarantined")
		if seq, ok := parseSegName(name); ok && seq >= next {
			next = seq + 1
		}
	}
	return next, nil
}

// fsyncDir syncs a directory so renames/creates/removes inside it
// survive power loss. Filesystems that cannot sync a directory
// (EINVAL/ENOTSUP) are tolerated; real write errors are not.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, errors.ErrUnsupported) {
			return nil
		}
		// Some filesystems report EINVAL for directory fsync; treat any
		// *Sync* failure on the handle that still allowed the open as
		// unsupported only when the PathError says so.
		var pe *os.PathError
		if errors.As(err, &pe) && (pe.Err == os.ErrInvalid || pe.Err.Error() == "invalid argument" || pe.Err.Error() == "operation not supported") {
			return nil
		}
		return err
	}
	return nil
}

// Open opens (creating if needed) the log in cfg.Dir, replays every
// intact record through apply in append order, repairs the tail (the
// first torn or invalid record and everything after it is truncated
// away — see Replay), and leaves the log ready to append. apply may be
// nil when the caller only wants the write side of a fresh log.
//
// An apply error aborts Open: the caller's state machine could not
// absorb a record the log had acknowledged, which is not a WAL-level
// problem to paper over.
func Open(cfg Config, apply func(pos Pos, payload []byte) error) (*Log, ReplayInfo, error) {
	if err := cfg.normalize(); err != nil {
		return nil, ReplayInfo{}, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, ReplayInfo{}, fmt.Errorf("wal: open: %w", err)
	}
	info, err := replay(cfg, apply, true)
	if err != nil {
		return nil, info, err
	}
	l := &Log{
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	seqs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, info, fmt.Errorf("wal: open: %w", err)
	}
	l.segments = len(seqs)
	if len(seqs) == 0 {
		// Start past any quarantined segments so positions in records we
		// acknowledge from here on never collide with positions a previous
		// incarnation may have handed out inside a now-quarantined file.
		first, err := nextFreshSeq(cfg.Dir)
		if err != nil {
			return nil, info, fmt.Errorf("wal: open: %w", err)
		}
		if err := l.newSegmentLocked(first); err != nil {
			return nil, info, err
		}
	} else {
		last := seqs[len(seqs)-1]
		f, err := os.OpenFile(filepath.Join(cfg.Dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, info, fmt.Errorf("wal: open segment %d: %w", last, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, info, fmt.Errorf("wal: open segment %d: %w", last, err)
		}
		l.f, l.seq, l.off = f, last, st.Size()
		l.segOpened = cfg.now()
	}
	// Resume the barrier at the start of the oldest retained segment:
	// everything below it was reclaimed by a previous incarnation.
	if len(seqs) > 0 {
		l.barrier = Pos{Seg: seqs[0], Off: 0}
	} else {
		l.barrier = Pos{Seg: l.seq, Off: segHeaderBytes}
	}
	l.wg.Add(1)
	go l.syncLoop()
	return l, info, nil
}

// newSegmentLocked creates segment seq, writes and syncs its header, and
// syncs the directory so the file's existence is durable before any
// record can land in it. Caller holds l.mu (or is initializing).
func (l *Log) newSegmentLocked(seq uint64) error {
	path := filepath.Join(l.cfg.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", seq, err)
	}
	var hdr [segHeaderBytes]byte
	copy(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	// On any failure past this point the half-created file must go away:
	// rotation retries the same seq, and a leftover would turn one
	// transient create error into a permanent "file exists".
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: segment %d header: %w", seq, err)
	}
	if err := l.cfg.Fsync(f); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: segment %d header sync: %w", seq, err)
	}
	if err := fsyncDir(l.cfg.Dir); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: segment %d dir sync: %w", seq, err)
	}
	l.f, l.seq, l.off = f, seq, segHeaderBytes
	l.segOpened = l.cfg.now()
	l.segments++
	return nil
}

// rotateLocked opens the next segment and queues the old one for
// sealing: its final fsync + close happen inside the next durability
// verdict (syncAll), not here — an fsync under l.mu would stall every
// Stage behind the disk, and an fsync concurrent with an in-flight
// group commit could split a writeback error between the two (see
// syncMu). The new segment is created BEFORE the old one is given up,
// so a failed create leaves the old segment open and active: the log
// stays fully usable and rotation simply retries on the next Stage.
func (l *Log) rotateLocked() error {
	old := l.f
	if err := l.newSegmentLocked(l.seq + 1); err != nil {
		return err
	}
	l.sealed = append(l.sealed, old)
	l.rotations++
	return nil
}

// Stage frames and buffers one record into the active segment and
// returns its position plus a Ticket for the group commit that will
// make it durable. Stage itself is fast (one buffered write); the
// caller decides when to block on durability via Ticket.Wait. The
// record is NOT durable until Wait returns nil.
func (l *Log) Stage(payload []byte) (Pos, *Ticket, error) {
	if int64(len(payload)) > l.cfg.MaxRecordBytes {
		return Pos{}, nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), l.cfg.MaxRecordBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Pos{}, nil, ErrClosed
	}
	if l.wedged != nil {
		return Pos{}, nil, fmt.Errorf("wal: wedged by earlier failure: %w", l.wedged)
	}
	if l.off >= l.cfg.SegmentBytes ||
		(l.cfg.SegmentAge > 0 && l.off > segHeaderBytes && l.cfg.now().Sub(l.segOpened) >= l.cfg.SegmentAge) {
		if err := l.rotateLocked(); err != nil {
			return Pos{}, nil, err
		}
	}
	var hdr [recHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	pos := Pos{Seg: l.seq, Off: l.off}
	if _, err := l.f.Write(hdr[:]); err != nil {
		l.wedged = err
		return Pos{}, nil, fmt.Errorf("wal: stage: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		// A partial frame may now sit at l.off. Replay will truncate it
		// as torn — which is only safe if nothing valid ever lands after
		// it, so the log wedges rather than appending past damage.
		l.wedged = err
		return Pos{}, nil, fmt.Errorf("wal: stage: %w", err)
	}
	n := int64(recHeaderBytes + len(payload))
	l.off += n
	l.appended += n
	l.appends++
	if l.cur == nil {
		l.cur = &batch{done: make(chan struct{}), opened: l.cfg.now()}
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return pos, &Ticket{b: l.cur}, nil
}

// Append stages one record and blocks until its group commit completes:
// when Append returns nil, the record is durable.
func (l *Log) Append(payload []byte) (Pos, error) {
	pos, t, err := l.Stage(payload)
	if err != nil {
		return Pos{}, err
	}
	return pos, t.Wait()
}

// syncLoop is the group-commit engine: each kick marks an open batch;
// after the coalescing window, one fsync covers every record staged
// into it, and the batch's waiters are released together.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	for {
		select {
		case <-l.quit:
			return
		case <-l.kick:
		}
		if w := l.cfg.FsyncWindow; w > 0 {
			timer := time.NewTimer(w)
			select {
			case <-l.quit:
				timer.Stop()
				// Fall through to sync the final batch before exiting.
			case <-timer.C:
			}
		}
		l.commitOnce()
		select {
		case <-l.quit:
			return
		default:
		}
	}
}

// commitOnce takes the open batch (if any), runs one durability
// verdict, and releases the batch with the outcome.
func (l *Log) commitOnce() {
	l.mu.Lock()
	b := l.cur
	l.cur = nil
	l.mu.Unlock()
	if b == nil {
		return
	}
	b.err = l.syncAll()
	close(b.done)
}

// syncAll is the single durability verdict: fsync every rotated-out
// segment awaiting its seal, then the active one, under syncMu so no
// two verdicts (and no verdict after a wedge) ever run concurrently.
// l.mu is NOT held across the fsyncs — appenders keep staging the next
// batch while this one commits (commit pipelining), and a slow disk
// never blocks Stage or the service mutexes above it.
//
// A failed fsync wedges the log exactly like a failed write: on Linux
// an fsync EIO marks the un-written dirty pages clean, so a later
// fsync of the same file can succeed while the data is gone — if
// appends continued, a record could be acknowledged physically AFTER a
// lost one, and restart replay (which truncates at the first invalid
// frame) would silently discard it. Nothing is acknowledged past a
// failed verdict; the wedge clears only via restart + replay.
func (l *Log) syncAll() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if werr := l.wedged; werr != nil {
		l.syncErrs++
		l.mu.Unlock()
		return fmt.Errorf("wal: wedged by earlier failure: %w", werr)
	}
	sealed := l.sealed
	l.sealed = nil
	f := l.f
	l.mu.Unlock()

	var err error
	for _, s := range sealed {
		if serr := l.cfg.Fsync(s); serr != nil && err == nil {
			err = serr
		}
	}
	if err == nil && f != nil {
		err = l.cfg.Fsync(f)
	}

	l.mu.Lock()
	l.syncs++
	if err != nil {
		l.syncErrs++
		l.lastHealth = err
		// ErrClosed can only mean a Sync raced Close's teardown (segments
		// are otherwise closed solely here, under syncMu, after detach):
		// the batch still fails, but a shut log is not a wedged one.
		if l.wedged == nil && !errors.Is(err, os.ErrClosed) {
			l.wedged = err
		}
	} else {
		l.lastSync = l.cfg.now()
		l.lastHealth = nil
	}
	l.mu.Unlock()
	// Sealed segments can close now: on success their records are
	// durable; on failure the log is wedged and they hold nothing
	// acknowledgeable. A close error cannot lose synced data.
	for _, s := range sealed {
		s.Close()
	}
	return err
}

// Sync forces an immediate flush + fsync of everything staged so far
// (the final-drain path: durability now, no coalescing).
func (l *Log) Sync() error {
	l.mu.Lock()
	b := l.cur
	l.cur = nil
	l.mu.Unlock()
	err := l.syncAll()
	if b != nil {
		b.err = err
		close(b.done)
	}
	return err
}

// Head returns the position the NEXT record would be staged at. Every
// already-staged record's position is strictly before Head.
func (l *Log) Head() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{Seg: l.seq, Off: l.off}
}

// Barrier returns the current reclaim barrier.
func (l *Log) Barrier() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.barrier
}

// ReclaimBefore advances the barrier to p and deletes every segment
// that lies wholly below it (seg < p.Seg). The caller guarantees that
// every record before p is reflected in a durable checkpoint; records
// in p's own segment survive (replay skips them via the checkpoint's
// ledger). The directory is synced after removal so the reclaim itself
// is crash-consistent.
func (l *Log) ReclaimBefore(p Pos) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p.Before(l.barrier) {
		return 0, nil // never move the barrier backwards
	}
	l.barrier = p
	l.barrierAt = l.appended
	seqs, err := listSegments(l.cfg.Dir)
	if err != nil {
		return 0, fmt.Errorf("wal: reclaim: %w", err)
	}
	for _, seq := range seqs {
		if seq >= p.Seg || seq == l.seq {
			continue
		}
		if rerr := os.Remove(filepath.Join(l.cfg.Dir, segName(seq))); rerr != nil {
			return removed, fmt.Errorf("wal: reclaim segment %d: %w", seq, rerr)
		}
		removed++
		l.segments--
	}
	if removed > 0 {
		if derr := fsyncDir(l.cfg.Dir); derr != nil {
			return removed, fmt.Errorf("wal: reclaim dir sync: %w", derr)
		}
	}
	return removed, nil
}

// Stats snapshots the log's health counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:          l.segments,
		SegmentSeq:        l.seq,
		AppendedBytes:     l.appended,
		BytesSinceBarrier: l.appended - l.barrierAt,
		Appends:           l.appends,
		Syncs:             l.syncs,
		SyncErrors:        l.syncErrs,
		Rotations:         l.rotations,
		LastSyncAge:       -1,
		OldestPendingAge:  0,
		Wedged:            l.wedged != nil,
	}
	now := l.cfg.now()
	if !l.lastSync.IsZero() {
		st.LastSyncAge = now.Sub(l.lastSync)
	}
	if l.cur != nil {
		st.OldestPendingAge = now.Sub(l.cur.opened)
	}
	return st
}

// Close syncs everything staged, releases any waiting batch, stops the
// syncer, and closes the active segment. Further Stage/Append calls
// fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	b := l.cur
	l.cur = nil
	l.mu.Unlock()
	err := l.syncAll()
	if b != nil {
		b.err = err
		close(b.done)
	}
	close(l.quit)
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Dir returns the log's directory (for quarantine after a handoff).
func (l *Log) Dir() string { return l.cfg.Dir }
