package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment assembles a syntactically valid segment image from
// payloads, for use as fuzz seed corpus.
func buildSegment(seq uint64, payloads ...[]byte) []byte {
	var buf bytes.Buffer
	var hdr [segHeaderBytes]byte
	copy(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	buf.Write(hdr[:])
	for _, p := range payloads {
		var rec [recHeaderBytes]byte
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(p, crcTable))
		buf.Write(rec[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// FuzzReplay feeds arbitrary bytes to the segment scanner as segment 1.
// Whatever the mutation — truncation, torn frames, bit flips, hostile
// length fields — replay must not panic, must not return an error (a
// damaged tail is data, not failure), and must be idempotent: two scans
// of the same bytes yield identical records and truncation points.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildSegment(1))
	f.Add(buildSegment(1, []byte("alpha"), []byte("beta"), bytes.Repeat([]byte{0xab}, 300)))
	// Torn tail: valid records then half a header.
	f.Add(append(buildSegment(1, []byte("intact")), 0x07, 0x00))
	// Wrong sequence number in the header.
	f.Add(buildSegment(42, []byte("misfiled")))
	// Hostile length field: claims 4 GiB.
	hostile := buildSegment(1)
	var rec [recHeaderBytes]byte
	binary.LittleEndian.PutUint32(rec[0:4], 0xfffffff0)
	f.Add(append(hostile, rec[:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		scan := func() ([]replayed, ReplayInfo) {
			var out []replayed
			info, err := Replay(dir, func(pos Pos, payload []byte) error {
				out = append(out, replayed{pos, append([]byte(nil), payload...)})
				return nil
			})
			if err != nil {
				t.Fatalf("replay errored on damaged input: %v", err)
			}
			return out, info
		}
		first, info1 := scan()
		second, info2 := scan()
		if len(first) != len(second) || info1.Truncated != info2.Truncated || info1.TruncatedAt != info2.TruncatedAt {
			t.Fatalf("replay not idempotent: %d/%v vs %d/%v", len(first), info1.TruncatedAt, len(second), info2.TruncatedAt)
		}
		for i := range first {
			if first[i].pos != second[i].pos || !bytes.Equal(first[i].payload, second[i].payload) {
				t.Fatalf("replay not idempotent at record %d", i)
			}
		}
		// Opening for repair must also succeed, and the repaired log must
		// replay the same intact prefix then accept appends.
		l, rinfo, err := Open(Config{Dir: dir}, nil)
		if err != nil {
			t.Fatalf("open-with-repair failed: %v", err)
		}
		if rinfo.Records != len(first) {
			t.Fatalf("repair replayed %d records, read-only replay saw %d", rinfo.Records, len(first))
		}
		if _, err := l.Append([]byte("post-repair")); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		final, info3 := scan()
		if info3.Truncated {
			t.Fatalf("log still torn after repair: %+v", info3)
		}
		if len(final) != len(first)+1 {
			t.Fatalf("after repair+append: %d records, want %d", len(final), len(first)+1)
		}
	})
}
