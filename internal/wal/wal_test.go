package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collect replays dir into an ordered list of (pos, payload copies).
type replayed struct {
	pos     Pos
	payload []byte
}

func collect(t *testing.T, dir string) ([]replayed, ReplayInfo) {
	t.Helper()
	var out []replayed
	info, err := Replay(dir, func(pos Pos, payload []byte) error {
		out = append(out, replayed{pos, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out, info
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, info, err := Open(Config{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 {
		t.Fatalf("fresh log replayed %d records", info.Records)
	}
	var want [][]byte
	var positions []Pos
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i))))
		want = append(want, p)
		pos, err := l.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		positions = append(positions, pos)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, rinfo := collect(t, dir)
	if rinfo.Truncated {
		t.Fatalf("clean log reported truncation at %v", rinfo.TruncatedAt)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i].payload, want[i]) {
			t.Fatalf("record %d: payload mismatch", i)
		}
		if got[i].pos != positions[i] {
			t.Fatalf("record %d: pos %v on replay, %v at append — positions must be stable", i, got[i].pos, positions[i])
		}
	}

	// Replay is idempotent: a second scan yields the identical sequence.
	again, _ := collect(t, dir)
	if len(again) != len(got) {
		t.Fatalf("second replay %d records, first %d", len(again), len(got))
	}
	for i := range got {
		if again[i].pos != got[i].pos || !bytes.Equal(again[i].payload, got[i].payload) {
			t.Fatalf("replay not idempotent at record %d", i)
		}
	}
}

func TestReopenAppendsContinue(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(Config{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 1 {
		t.Fatalf("reopen replayed %d records, want 1", info.Records)
	}
	if _, err := l2.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir)
	if len(got) != 2 || string(got[0].payload) != "first" || string(got[1].payload) != "second" {
		t.Fatalf("reopened log replayed %d records", len(got))
	}
}

func TestSegmentRotationAndReclaim(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir, SegmentBytes: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	var lastPos Pos
	for i := 0; i < 20; i++ {
		pos, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		lastPos = pos
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", st.Segments)
	}
	all, _ := collect(t, dir)
	if len(all) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(all))
	}

	// Reclaim everything below the last record's segment: older segment
	// files disappear, the survivors still replay.
	removed, err := l.ReclaimBefore(Pos{Seg: lastPos.Seg, Off: 0})
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("reclaim removed nothing")
	}
	left, _ := collect(t, dir)
	if len(left) == 0 || len(left) >= 20 {
		t.Fatalf("after reclaim %d records remain (want a proper subset)", len(left))
	}
	for _, r := range left {
		if r.pos.Seg < lastPos.Seg {
			t.Fatalf("record %v survived below the barrier segment %d", r.pos, lastPos.Seg)
		}
	}
	// The barrier never moves backwards.
	if n, err := l.ReclaimBefore(Pos{Seg: 1, Off: 0}); err != nil || n != 0 {
		t.Fatalf("backwards reclaim removed %d (%v)", n, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAgeRotation(t *testing.T) {
	dir := t.TempDir()
	clock := time.Unix(1000, 0)
	cfg := Config{Dir: dir, SegmentAge: time.Minute, now: func() time.Time { return clock }}
	l, _, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("young")); err != nil {
		t.Fatal(err)
	}
	before := l.Stats().SegmentSeq
	clock = clock.Add(2 * time.Minute)
	if _, err := l.Append([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if after := l.Stats().SegmentSeq; after != before+1 {
		t.Fatalf("age rotation did not advance the segment (seq %d -> %d)", before, after)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := collect(t, dir); len(got) != 2 {
		t.Fatalf("replayed %d records after age rotation, want 2", len(got))
	}
}

// TestTornTailTruncated crashes mid-record (simulated by appending junk
// bytes to the active segment) and verifies Open repairs: the intact
// prefix replays, the tail is truncated, and new appends land cleanly.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear: half a record header worth of garbage at the tail.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var n int
	l2, info, err := Open(Config{Dir: dir}, func(Pos, []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || !info.Truncated {
		t.Fatalf("repair replay: %d records, truncated=%v; want 5, true", n, info.Truncated)
	}
	if _, err := l2.Append([]byte("after-repair")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, rinfo := collect(t, dir)
	if rinfo.Truncated {
		t.Fatalf("repaired log still truncated at %v", rinfo.TruncatedAt)
	}
	if len(got) != 6 || string(got[5].payload) != "after-repair" {
		t.Fatalf("after repair: %d records", len(got))
	}
}

// TestBitFlipTruncatesAndQuarantines corrupts a record in the FIRST of
// several segments: replay must stop there and Open must quarantine the
// later segments rather than let un-replayable acknowledged records
// silently reappear after future appends.
func TestBitFlipTruncatesAndQuarantines(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 50)
	for i := 0; i < 8; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Segments < 2 {
		t.Fatal("test needs >= 2 segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in segment 1.
	path := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[segHeaderBytes+recHeaderBytes+10] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var n int
	_, info, err := Open(Config{Dir: dir}, func(Pos, []byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("replayed %d records past a bit flip in the first record", n)
	}
	if !info.Truncated || info.Quarantined == 0 {
		t.Fatalf("info = %+v; want truncation plus quarantined later segments", info)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".quarantined" {
			quarantined++
		}
	}
	if quarantined != info.Quarantined {
		t.Fatalf("%d *.quarantined files on disk, info says %d", quarantined, info.Quarantined)
	}
}

// TestGroupCommit runs concurrent appenders: every append must be
// durable on return, and the batched fsync must actually batch (fewer
// syncs than appends under a positive window).
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir, FsyncWindow: 2 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != workers*per {
		t.Fatalf("appends %d, want %d", st.Appends, workers*per)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := collect(t, dir); len(got) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(got), workers*per)
	}
}

func TestStageTicketDurability(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pos, ticket, err := l.Stage([]byte("staged"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ticket.Wait(); err != nil {
		t.Fatal(err)
	}
	if head := l.Head(); !pos.Before(head) {
		t.Fatalf("staged pos %v not before head %v", pos, head)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := collect(t, dir); len(got) != 1 || got[0].pos != pos {
		t.Fatalf("staged record did not survive: %v", got)
	}
}

func TestRecordCap(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir, MaxRecordBytes: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(bytes.Repeat([]byte("z"), 17)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestClosedLogRefuses(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Config{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("late")); err == nil {
		t.Fatal("append after Close succeeded")
	}
	// Close is idempotent.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFsyncFailureWedges: a failed group-commit fsync must wedge the
// log exactly like a failed write. After an fsync EIO the kernel can
// mark the lost pages clean, so a later fsync would SUCCEED and
// acknowledge records physically after the lost ones — which replay
// (truncate at first invalid frame) would then silently discard. The
// only safe answer is: fail the batch, refuse everything after.
func TestFsyncFailureWedges(t *testing.T) {
	dir := t.TempDir()
	var failing atomic.Bool
	injected := errors.New("injected fsync EIO")
	cfg := Config{Dir: dir, Fsync: func(f *os.File) error {
		if failing.Load() {
			return injected
		}
		return f.Sync()
	}}
	l, _, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}

	failing.Store(true)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, injected) {
		t.Fatalf("append through failed fsync: err %v, want %v", err, injected)
	}
	if st := l.Stats(); !st.Wedged || st.SyncErrors == 0 {
		t.Fatalf("failed fsync did not wedge: %+v", st)
	}

	// The disk "recovers" — fsync would succeed again, exactly the
	// EIO-marks-pages-clean hazard. The log must still refuse: a success
	// now could acknowledge a record after the lost one.
	failing.Store(false)
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("wedged log accepted an append after fsync recovered")
	}
	if _, _, err := l.Stage([]byte("staged")); err == nil {
		t.Fatal("wedged log staged a record")
	}
	l.Close() // errors (wedged) — the assertion is replay below

	// Restart-side replay keeps exactly the acknowledged prefix.
	var got []string
	l2, _, err := Open(Config{Dir: dir}, func(_ Pos, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, p := range got {
		if p != "before" && p != "doomed" {
			t.Fatalf("replayed unexpected record %q", p)
		}
	}
	if len(got) == 0 || got[0] != "before" {
		t.Fatalf("acknowledged record lost: replayed %v", got)
	}
}

// TestRotateCreateFailureRecovers: when rotation cannot create the next
// segment (transient create error), the old segment must stay open and
// active — appends fail while the condition lasts, then succeed again
// once it clears, with no restart and nothing acknowledged lost.
func TestRotateCreateFailureRecovers(t *testing.T) {
	dir := t.TempDir()
	var failing atomic.Bool
	injected := errors.New("injected create-time fsync failure")
	// Fail the new segment's HEADER sync: newSegmentLocked then fails
	// before the segment is installed, exercising the rotation-retry
	// path. Group commits target already-created files and are guarded
	// by size: record syncs pass through.
	cfg := Config{Dir: dir, SegmentBytes: 128, Fsync: func(f *os.File) error {
		if failing.Load() {
			if st, err := f.Stat(); err == nil && st.Size() == segHeaderBytes {
				return injected
			}
		}
		return f.Sync()
	}}
	l, _, err := Open(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("r"), 110) // header(16)+rec(8+110) ≥ 128: next Stage rotates
	if _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	// Next append needs a rotation; make segment creation fail.
	failing.Store(true)
	if _, err := l.Append(payload); !errors.Is(err, injected) {
		t.Fatalf("append during create failure: err %v, want %v", err, injected)
	}
	if st := l.Stats(); st.Wedged {
		t.Fatalf("transient create failure wedged the log: %+v", st)
	}
	// Condition clears: the same log must rotate and append cleanly.
	failing.Store(false)
	if _, err := l.Append(payload); err != nil {
		t.Fatalf("append after create failure cleared: %v", err)
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatalf("rotation never completed: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := collect(t, dir); len(got) != 2 {
		t.Fatalf("replayed %d records, want the 2 acknowledged", len(got))
	}
}

func TestReplayMissingDir(t *testing.T) {
	info, err := Replay(filepath.Join(t.TempDir(), "never-created"), nil)
	if err != nil {
		t.Fatalf("missing dir should replay empty, got %v", err)
	}
	if info.Records != 0 {
		t.Fatalf("missing dir replayed %d records", info.Records)
	}
}

func TestStatsStallSignal(t *testing.T) {
	dir := t.TempDir()
	clock := time.Unix(5000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	// A huge window keeps the syncer asleep so the staged batch ages.
	l, _, err := Open(Config{Dir: dir, FsyncWindow: time.Hour, now: now}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, err := l.Stage([]byte("pending")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	clock = clock.Add(30 * time.Second)
	mu.Unlock()
	st := l.Stats()
	if st.OldestPendingAge < 30*time.Second {
		t.Fatalf("oldest pending age %v, want >= 30s", st.OldestPendingAge)
	}
}
