// Package sim executes programs functionally: architectural registers and
// data memory, one instruction at a time, in program order. It produces the
// dynamic instruction stream (Records) that drives everything downstream —
// the timing pipeline replays it as the correct path, the path profiler
// computes branch histories over it, and the fast-sampling mode of the
// convergence experiment samples it directly.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"profileme/internal/isa"
)

// HaltPC is the sentinel return address installed in the link register at
// startup; a control transfer to it ends the program (a "return from main").
const HaltPC uint64 = 0xffff_ffff_ffff_fff0

// Record describes one dynamically executed (correct-path) instruction.
type Record struct {
	Seq    uint64 // dynamic instruction number, starting at 0
	PC     uint64
	Inst   isa.Inst
	Taken  bool   // control only: did it redirect the PC?
	Target uint64 // the PC of the next executed instruction
	EA     uint64 // memory ops only: effective address
}

// Data memory is paged: each page holds the 64-bit words of memPageWords
// consecutive byte addresses, so every address still names an independent
// word — exactly the semantics of the flat map this replaces (unaligned
// effective addresses included) — but the per-instruction map lookup on
// the execute hot path drops to a shift-and-mask plus a last-page cache
// hit for the common sequential access.
const (
	memPageShift = 6
	memPageWords = 1 << memPageShift
	memPageMask  = memPageWords - 1
)

type memPage [memPageWords]uint64

// Machine is the architectural state. Create with New; step with Step or
// Run. Not safe for concurrent use.
type Machine struct {
	prog   *isa.Program
	regs   [isa.NumRegs]uint64
	pages  map[uint64]*memPage
	lastPg *memPage // last page touched (nil until first access)
	lastPK uint64   // its page key
	pc     uint64
	seq    uint64
	halted bool
}

// ErrNoInst is returned when execution reaches a PC with no instruction.
var ErrNoInst = errors.New("sim: PC outside program image")

// New returns a machine loaded with prog: PC at the entry point, data
// memory initialized from the image, the link register set to HaltPC and
// the stack pointer parked above the data segment.
func New(prog *isa.Program) *Machine {
	m := &Machine{prog: prog, pages: make(map[uint64]*memPage, len(prog.Data)/memPageWords+16)}
	for a, v := range prog.Data {
		m.store(a, v)
	}
	m.pc = prog.Entry
	m.regs[isa.RegRA] = HaltPC
	m.regs[isa.RegSP] = 0x7f_0000
	return m
}

// load reads the word at byte address addr (unmapped reads as zero).
func (m *Machine) load(addr uint64) uint64 {
	key := addr >> memPageShift
	if pg := m.lastPg; pg != nil && m.lastPK == key {
		return pg[addr&memPageMask]
	}
	pg := m.pages[key]
	if pg == nil {
		return 0
	}
	m.lastPg, m.lastPK = pg, key
	return pg[addr&memPageMask]
}

// store writes the word at byte address addr, faulting a page in if needed.
func (m *Machine) store(addr, v uint64) {
	key := addr >> memPageShift
	pg := m.lastPg
	if pg == nil || m.lastPK != key {
		pg = m.pages[key]
		if pg == nil {
			pg = new(memPage)
			m.pages[key] = pg
		}
		m.lastPg, m.lastPK = pg, key
	}
	pg[addr&memPageMask] = v
}

// PC returns the current program counter.
func (m *Machine) PC() uint64 { return m.pc }

// Halted reports whether the program has ended.
func (m *Machine) Halted() bool { return m.halted }

// Executed returns the number of instructions executed so far.
func (m *Machine) Executed() uint64 { return m.seq }

// Reg returns the value of architectural register r.
func (m *Machine) Reg(r isa.Reg) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return m.regs[r]
}

// SetReg writes architectural register r (writes to the zero register are
// discarded).
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if r != isa.RegZero {
		m.regs[r] = v
	}
}

// Load reads data memory (uninitialized locations read as zero).
func (m *Machine) Load(addr uint64) uint64 { return m.load(addr) }

// Store writes data memory.
func (m *Machine) Store(addr, v uint64) { m.store(addr, v) }

// MemWord is one (address, value) pair of a memory snapshot.
type MemWord struct {
	Addr, Val uint64
}

// Snapshot returns the architectural state in canonical form: the register
// file plus every nonzero data-memory word, sorted by address. Zero-valued
// words are omitted because an untouched location also reads as zero, so
// the canonical form is independent of which locations were ever written —
// and therefore of the memory representation. The differential test
// harness digests this to pin final-state equivalence across simulator
// optimizations.
func (m *Machine) Snapshot() (regs [isa.NumRegs]uint64, mem []MemWord) {
	regs = m.regs
	regs[isa.RegZero] = 0
	for key, pg := range m.pages {
		base := key << memPageShift
		for off, v := range pg {
			if v != 0 {
				mem = append(mem, MemWord{Addr: base + uint64(off), Val: v})
			}
		}
	}
	sort.Slice(mem, func(i, j int) bool { return mem[i].Addr < mem[j].Addr })
	return regs, mem
}

// Step executes one instruction and returns its record. After the program
// halts, Step keeps returning (Record{}, false, nil).
func (m *Machine) Step() (Record, bool, error) {
	if m.halted {
		return Record{}, false, nil
	}
	in, ok := m.prog.At(m.pc)
	if !ok {
		return Record{}, false, fmt.Errorf("%w: %#x", ErrNoInst, m.pc)
	}
	r := Record{Seq: m.seq, PC: m.pc, Inst: in}
	next := m.pc + isa.InstBytes

	src2 := func() uint64 {
		if in.UseImm {
			return uint64(in.Imm)
		}
		return m.Reg(in.Rb)
	}

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		m.SetReg(in.Rc, m.Reg(in.Ra)+src2())
	case isa.OpSub:
		m.SetReg(in.Rc, m.Reg(in.Ra)-src2())
	case isa.OpAnd:
		m.SetReg(in.Rc, m.Reg(in.Ra)&src2())
	case isa.OpOr:
		m.SetReg(in.Rc, m.Reg(in.Ra)|src2())
	case isa.OpXor:
		m.SetReg(in.Rc, m.Reg(in.Ra)^src2())
	case isa.OpSll:
		m.SetReg(in.Rc, m.Reg(in.Ra)<<(src2()&63))
	case isa.OpSrl:
		m.SetReg(in.Rc, m.Reg(in.Ra)>>(src2()&63))
	case isa.OpSra:
		m.SetReg(in.Rc, uint64(int64(m.Reg(in.Ra))>>(src2()&63)))
	case isa.OpCmpEq:
		m.SetReg(in.Rc, b2u(m.Reg(in.Ra) == src2()))
	case isa.OpCmpLt:
		m.SetReg(in.Rc, b2u(int64(m.Reg(in.Ra)) < int64(src2())))
	case isa.OpCmpLe:
		m.SetReg(in.Rc, b2u(int64(m.Reg(in.Ra)) <= int64(src2())))
	case isa.OpCmpULt:
		m.SetReg(in.Rc, b2u(m.Reg(in.Ra) < src2()))
	case isa.OpLda:
		m.SetReg(in.Rc, m.Reg(in.Rb)+uint64(in.Imm))
	case isa.OpMul:
		m.SetReg(in.Rc, m.Reg(in.Ra)*src2())
	case isa.OpFAdd:
		m.SetReg(in.Rc, m.Reg(in.Ra)+src2())
	case isa.OpFMul:
		m.SetReg(in.Rc, m.Reg(in.Ra)*src2())
	case isa.OpFDiv:
		d := src2()
		if d == 0 {
			m.SetReg(in.Rc, 0)
		} else {
			m.SetReg(in.Rc, m.Reg(in.Ra)/d)
		}

	case isa.OpLd:
		r.EA = m.Reg(in.Rb) + uint64(in.Imm)
		m.SetReg(in.Rc, m.load(r.EA))
	case isa.OpPref:
		r.EA = m.Reg(in.Rb) + uint64(in.Imm) // cache touch only
	case isa.OpSt:
		r.EA = m.Reg(in.Rb) + uint64(in.Imm)
		m.store(r.EA, m.Reg(in.Ra))

	case isa.OpBr:
		r.Taken, next = true, in.Target
	case isa.OpBeq:
		if m.Reg(in.Ra) == 0 {
			r.Taken, next = true, in.Target
		}
	case isa.OpBne:
		if m.Reg(in.Ra) != 0 {
			r.Taken, next = true, in.Target
		}
	case isa.OpBlt:
		if int64(m.Reg(in.Ra)) < 0 {
			r.Taken, next = true, in.Target
		}
	case isa.OpBge:
		if int64(m.Reg(in.Ra)) >= 0 {
			r.Taken, next = true, in.Target
		}
	case isa.OpBle:
		if int64(m.Reg(in.Ra)) <= 0 {
			r.Taken, next = true, in.Target
		}
	case isa.OpBgt:
		if int64(m.Reg(in.Ra)) > 0 {
			r.Taken, next = true, in.Target
		}
	case isa.OpJsr:
		m.SetReg(in.Rc, m.pc+isa.InstBytes)
		r.Taken, next = true, in.Target
	case isa.OpJmp:
		r.Taken, next = true, m.Reg(in.Rb)
	case isa.OpRet:
		r.Taken, next = true, m.Reg(in.Rb)

	default:
		return Record{}, false, fmt.Errorf("sim: pc %#x: unimplemented op %v", m.pc, in.Op)
	}

	r.Target = next
	m.seq++
	if next == HaltPC {
		m.halted = true
	} else {
		m.pc = next
	}
	return r, true, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Run executes until the program halts, an error occurs, or max
// instructions have run (max <= 0 means no limit), calling visit for each
// record. visit may be nil. It returns the number of instructions executed.
func (m *Machine) Run(max uint64, visit func(Record)) (uint64, error) {
	var n uint64
	for !m.halted && (max <= 0 || n < max) {
		r, ok, err := m.Step()
		if err != nil {
			return n, err
		}
		if !ok {
			break
		}
		if visit != nil {
			visit(r)
		}
		n++
	}
	return n, nil
}

// Trace executes up to max instructions (<= 0 for no limit) and returns
// the records. Intended for small programs and tests; large runs should
// stream with Run.
func Trace(prog *isa.Program, max uint64) ([]Record, error) {
	m := New(prog)
	var recs []Record
	_, err := m.Run(max, func(r Record) { recs = append(recs, r) })
	return recs, err
}

// Source yields the dynamic instruction stream one record at a time. The
// timing pipeline consumes this interface so it can run against a live
// machine, a pre-recorded slice, or a transformed stream.
type Source interface {
	// Next returns the next record; ok is false at end of stream.
	Next() (r Record, ok bool)
}

// MachineSource adapts a Machine to a Source with an instruction budget.
type MachineSource struct {
	m   *Machine
	max uint64
	n   uint64
	err error
}

// NewMachineSource wraps m; max <= 0 means no instruction limit.
func NewMachineSource(m *Machine, max uint64) *MachineSource {
	return &MachineSource{m: m, max: max}
}

// Next implements Source. Errors (e.g. a runaway PC) end the stream; check
// Err after draining.
func (s *MachineSource) Next() (Record, bool) {
	if s.err != nil || s.m.Halted() || (s.max > 0 && s.n >= s.max) {
		return Record{}, false
	}
	r, ok, err := s.m.Step()
	if err != nil {
		s.err = err
		return Record{}, false
	}
	if !ok {
		return Record{}, false
	}
	s.n++
	return r, true
}

// Err returns the error that ended the stream, if any.
func (s *MachineSource) Err() error { return s.err }

// SliceSource adapts a pre-recorded trace to a Source.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource returns a Source over recs.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.i >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}
