package sim

import (
	"errors"
	"testing"

	"profileme/internal/asm"
	"profileme/internal/isa"
)

func TestStraightLineALU(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    lda r1, 6(zero)
    lda r2, 7(zero)
    mul r3, r1, r2
    add r4, r3, #100
    sub r5, r4, r1
    and r6, r4, #0xf
    or  r7, r6, #0x10
    xor r8, r7, r7
    sll r9, r1, #4
    srl r10, r9, #2
    ret
.endp`)
	m := New(p)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("not halted")
	}
	want := map[isa.Reg]uint64{
		1: 6, 2: 7, 3: 42, 4: 142, 5: 136, 6: 142 & 0xf, 7: 0xe | 0x10,
		8: 0, 9: 96, 10: 24,
	}
	for r, v := range want {
		if got := m.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestSignedOps(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    lda r1, -8(zero)
    sra r2, r1, #1
    cmplt r3, r1, #0
    cmple r4, r1, #-8
    cmpeq r5, r1, #-8
    cmpult r6, r1, #1
    ret
.endp`)
	m := New(p)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if int64(m.Reg(2)) != -4 {
		t.Errorf("sra = %d", int64(m.Reg(2)))
	}
	if m.Reg(3) != 1 || m.Reg(4) != 1 || m.Reg(5) != 1 {
		t.Errorf("signed compares: %d %d %d", m.Reg(3), m.Reg(4), m.Reg(5))
	}
	if m.Reg(6) != 0 { // unsigned: -8 is huge
		t.Errorf("cmpult = %d", m.Reg(6))
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..10 with a counted loop.
	p := asm.MustAssemble(`
.proc main
    lda r1, 10(zero)
    lda r2, 0(zero)
loop:
    add r2, r2, r1
    sub r1, r1, #1
    bne r1, loop
    ret
.endp`)
	m := New(p)
	n, err := m.Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reg(2) != 55 {
		t.Fatalf("sum = %d", m.Reg(2))
	}
	if n != 2+3*10+1 {
		t.Fatalf("executed %d instructions", n)
	}
}

func TestMemoryAndData(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    lda r1, vec(zero)
    ld  r2, 0(r1)
    ld  r3, 8(r1)
    add r4, r2, r3
    st  r4, 16(r1)
    ld  r5, 16(r1)
    ret
.endp
.data
.org 0x4000
vec: .word 11, 31, 0
`)
	m := New(p)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m.Reg(5) != 42 {
		t.Fatalf("r5 = %d", m.Reg(5))
	}
	if m.Load(0x4010) != 42 {
		t.Fatalf("mem = %d", m.Load(0x4010))
	}
}

func TestCallAndReturn(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    add r20, ra, #0      ; preserve the halt return address
    lda r1, 5(zero)
    jsr ra, double
    add r3, r2, #1
    ret (r20)
.endp
.proc double
    add r2, r1, r1
    ret (ra)
.endp`)
	m := New(p)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m.Reg(3) != 11 {
		t.Fatalf("r3 = %d", m.Reg(3))
	}
}

func TestIndirectJumpTable(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    lda r1, case1(zero)
    jmp (r1)
    lda r9, 111(zero)   ; skipped
case1:
    lda r9, 222(zero)
    ret
.endp`)
	m := New(p)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m.Reg(9) != 222 {
		t.Fatalf("r9 = %d", m.Reg(9))
	}
}

func TestRecordFields(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    lda r1, 0x4000(zero)
    ld  r2, 8(r1)
    beq r2, skip
    st  r2, 0(r1)
skip:
    ret
.endp
.data
.org 0x4000
.word 0, 7
`)
	recs, err := Trace(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("%d records", len(recs))
	}
	ld := recs[1]
	if ld.EA != 0x4008 {
		t.Fatalf("load EA = %#x", ld.EA)
	}
	br := recs[2]
	if br.Taken || br.Target != br.PC+4 {
		t.Fatalf("not-taken branch record = %+v", br)
	}
	st := recs[3]
	if st.EA != 0x4000 {
		t.Fatalf("store EA = %#x", st.EA)
	}
	ret := recs[4]
	if !ret.Taken || ret.Target != HaltPC {
		t.Fatalf("ret record = %+v", ret)
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("seq gap at %d", i)
		}
	}
}

func TestTakenBranchRecord(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    lda r1, 1(zero)
    bne r1, over
    nop
over:
    ret
.endp`)
	recs, err := Trace(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	br := recs[1]
	if !br.Taken || br.Target != 12 {
		t.Fatalf("branch record = %+v", br)
	}
	if recs[2].PC != 12 {
		t.Fatal("nop was not skipped")
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    lda zero, 99(zero)
    add zero, zero, #5
    add r1, zero, #0
    ret
.endp`)
	m := New(p)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m.Reg(isa.RegZero) != 0 || m.Reg(1) != 0 {
		t.Fatal("zero register was written")
	}
}

func TestRunLimit(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
loop:
    br loop
.endp`)
	m := New(p)
	n, err := m.Run(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || m.Halted() {
		t.Fatalf("n=%d halted=%v", n, m.Halted())
	}
}

func TestPCOutsideImage(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    nop
.endp`) // falls off the end
	m := New(p)
	_, err := m.Run(0, nil)
	if !errors.Is(err, ErrNoInst) {
		t.Fatalf("err = %v", err)
	}
}

func TestStepAfterHalt(t *testing.T) {
	p := asm.MustAssemble(".proc main\n ret\n.endp")
	m := New(p)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	r, ok, err := m.Step()
	if ok || err != nil || r.Seq != 0 {
		t.Fatalf("step after halt = %+v, %v, %v", r, ok, err)
	}
}

func TestFDivByZero(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    lda r1, 10(zero)
    fdiv r2, r1, zero
    fdiv r3, r1, #2
    ret
.endp`)
	m := New(p)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m.Reg(2) != 0 || m.Reg(3) != 5 {
		t.Fatalf("fdiv results: %d %d", m.Reg(2), m.Reg(3))
	}
}

func TestMachineSource(t *testing.T) {
	p := asm.MustAssemble(`
.proc main
    nop
    nop
    nop
    ret
.endp`)
	s := NewMachineSource(New(p), 2)
	var n int
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 || s.Err() != nil {
		t.Fatalf("n=%d err=%v", n, s.Err())
	}

	s2 := NewMachineSource(New(p), 0)
	n = 0
	for {
		_, ok := s2.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("unlimited source yielded %d", n)
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Record{{Seq: 0}, {Seq: 1}}
	s := NewSliceSource(recs)
	r, ok := s.Next()
	if !ok || r.Seq != 0 {
		t.Fatal("first")
	}
	r, ok = s.Next()
	if !ok || r.Seq != 1 {
		t.Fatal("second")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("end")
	}
}

func TestRecursiveFactorial(t *testing.T) {
	// Recursion with a manual stack: fact(n) via sp-based frames.
	p := asm.MustAssemble(`
.proc main
    add r20, ra, #0      ; preserve the halt return address
    lda r1, 6(zero)
    jsr ra, fact
    ret (r20)
.endp
.proc fact
    bne r1, recurse
    lda r2, 1(zero)
    ret (ra)
recurse:
    sub sp, sp, #16
    st  ra, 0(sp)
    st  r1, 8(sp)
    sub r1, r1, #1
    jsr ra, fact
    ld  r1, 8(sp)
    ld  ra, 0(sp)
    add sp, sp, #16
    mul r2, r2, r1
    ret (ra)
.endp`)
	m := New(p)
	if _, err := m.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	if m.Reg(2) != 720 {
		t.Fatalf("fact(6) = %d", m.Reg(2))
	}
}
